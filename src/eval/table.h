#ifndef HIMPACT_EVAL_TABLE_H_
#define HIMPACT_EVAL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Aligned text tables for the experiment binaries: every bench prints
/// the paper-style table it reproduces through this printer, and
/// EXPERIMENTS.md quotes the output verbatim.

namespace himpact {

/// A simple column-aligned table accumulated row by row.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row.
  Table& NewRow();

  /// Appends a cell to the current row.
  Table& Cell(const std::string& value);
  Table& Cell(const char* value);
  Table& Cell(std::uint64_t value);
  Table& Cell(int value);

  /// Appends a floating cell with `precision` decimals.
  Table& Cell(double value, int precision = 3);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Renders the table as CSV (header row first; cells containing
  /// commas or quotes are quoted per RFC 4180).
  std::string ToCsv() const;

  /// Prints to stdout (with a trailing newline). When the environment
  /// variable `HIMPACT_CSV` is set (non-empty), prints CSV instead so
  /// experiment output can be piped straight into plotting tools.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for ad-hoc output).
std::string FormatDouble(double value, int precision = 3);

}  // namespace himpact

#endif  // HIMPACT_EVAL_TABLE_H_
