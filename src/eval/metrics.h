#ifndef HIMPACT_EVAL_METRICS_H_
#define HIMPACT_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

/// \file
/// Error metrics and summary statistics for the experiment harness.

namespace himpact {

/// `|estimate - truth| / truth` (0 when both are 0; +inf when only truth
/// is 0).
double RelativeError(double estimate, double truth);

/// Signed relative error `(estimate - truth) / truth`.
double SignedRelativeError(double estimate, double truth);

/// Summary statistics over a sample of per-trial errors.
struct ErrorStats {
  std::size_t count = 0;
  double mean = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Computes summary statistics (empty input yields zeros).
ErrorStats Summarize(std::vector<double> errors);

/// Fraction of `errors` that are <= `bound`.
double FractionWithin(const std::vector<double>& errors, double bound);

/// Precision/recall of a reported set against a ground-truth set.
struct SetQuality {
  double precision = 1.0;  // |reported ∩ truth| / |reported|
  double recall = 1.0;     // |reported ∩ truth| / |truth|
};

/// Computes precision/recall over id sets (duplicates ignored).
SetQuality CompareSets(const std::vector<std::uint64_t>& reported,
                       const std::vector<std::uint64_t>& truth);

}  // namespace himpact

#endif  // HIMPACT_EVAL_METRICS_H_
