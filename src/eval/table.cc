#include "eval/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace himpact {

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::NewRow() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::Cell(const std::string& value) {
  HIMPACT_CHECK_MSG(!rows_.empty(), "call NewRow() before Cell()");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::Cell(const char* value) { return Cell(std::string(value)); }

Table& Table::Cell(std::uint64_t value) {
  return Cell(std::to_string(value));
}

Table& Table::Cell(int value) { return Cell(std::to_string(value)); }

Table& Table::Cell(double value, int precision) {
  return Cell(FormatDouble(value, precision));
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += cell;
      out.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  append_row(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (const std::size_t w : widths) rule.emplace_back(w, '-');
  append_row(rule);
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string Table::ToCsv() const {
  const auto append_cell = [](std::string& out, const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      out += cell;
      return;
    }
    out += '"';
    for (const char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
  };
  std::string out;
  const auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out += ',';
      append_cell(out, c < row.size() ? row[c] : std::string());
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void Table::Print() const {
  const char* csv = std::getenv("HIMPACT_CSV");
  if (csv != nullptr && csv[0] != '\0') {
    std::fputs(ToCsv().c_str(), stdout);
    return;
  }
  std::fputs(ToString().c_str(), stdout);
}

}  // namespace himpact
