#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace himpact {

double RelativeError(double estimate, double truth) {
  if (truth == 0.0) {
    return estimate == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::fabs(estimate - truth) / truth;
}

double SignedRelativeError(double estimate, double truth) {
  if (truth == 0.0) {
    if (estimate == 0.0) return 0.0;
    return estimate > 0.0 ? std::numeric_limits<double>::infinity()
                          : -std::numeric_limits<double>::infinity();
  }
  return (estimate - truth) / truth;
}

ErrorStats Summarize(std::vector<double> errors) {
  ErrorStats stats;
  stats.count = errors.size();
  if (errors.empty()) return stats;
  std::sort(errors.begin(), errors.end());
  double sum = 0.0;
  for (const double e : errors) sum += e;
  stats.mean = sum / static_cast<double>(errors.size());
  stats.max = errors.back();
  stats.p50 = errors[errors.size() / 2];
  stats.p95 = errors[std::min(errors.size() - 1,
                              static_cast<std::size_t>(
                                  0.95 * static_cast<double>(errors.size())))];
  return stats;
}

double FractionWithin(const std::vector<double>& errors, double bound) {
  if (errors.empty()) return 1.0;
  std::size_t within = 0;
  for (const double e : errors) {
    if (e <= bound) ++within;
  }
  return static_cast<double>(within) / static_cast<double>(errors.size());
}

SetQuality CompareSets(const std::vector<std::uint64_t>& reported,
                       const std::vector<std::uint64_t>& truth) {
  const std::unordered_set<std::uint64_t> reported_set(reported.begin(),
                                                       reported.end());
  const std::unordered_set<std::uint64_t> truth_set(truth.begin(),
                                                    truth.end());
  std::size_t hits = 0;
  for (const std::uint64_t id : reported_set) {
    if (truth_set.contains(id)) ++hits;
  }
  SetQuality quality;
  if (!reported_set.empty()) {
    quality.precision =
        static_cast<double>(hits) / static_cast<double>(reported_set.size());
  }
  if (!truth_set.empty()) {
    quality.recall =
        static_cast<double>(hits) / static_cast<double>(truth_set.size());
  }
  return quality;
}

}  // namespace himpact
