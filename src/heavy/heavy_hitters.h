#ifndef HIMPACT_HEAVY_HEAVY_HITTERS_H_
#define HIMPACT_HEAVY_HEAVY_HITTERS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "hash/k_independent.h"
#include "heavy/one_heavy_hitter.h"
#include "stream/types.h"

/// \file
/// Algorithm 8 ("Heavy Hitters", Theorem 18): find every author whose
/// H-index is an eps-fraction of the stream's total H-impact
/// `h*(S) = sum_a h*(a)`, without tracking every author.
///
/// Authors are hashed by `x = log(1/(eps delta))` pairwise-independent
/// functions into `l = 2/eps^2` buckets; each of the `x*l` buckets runs a
/// 1-Heavy-Hitter detector (Algorithm 7) on the sub-stream of papers
/// hashed to it. With probability `1-delta`, each heavy author lands in
/// some bucket where the other authors contribute at most an eps-factor
/// of noise, so its bucket detector fires; detections are deduplicated by
/// author across the grid (median H-index estimate).

namespace himpact {

/// One reported heavy hitter.
struct HeavyHitterReport {
  AuthorId author = 0;
  /// Median of the detecting buckets' H-index estimates.
  double h_estimate = 0.0;
  /// Number of (row, bucket) detectors that reported this author.
  int detections = 0;
};

/// The Algorithm 8 heavy-hitters sketch.
class HeavyHitters {
 public:
  /// Tuning knobs.
  struct Options {
    /// Heaviness threshold / approximation parameter.
    double eps = 0.25;
    /// Failure probability.
    double delta = 0.1;
    /// Upper bound on the number of papers (per-bucket histogram bound).
    std::uint64_t max_papers = 1u << 20;
    /// If positive, overrides the bucket count `l = 2/eps^2`.
    std::size_t num_buckets_override = 0;
    /// If positive, overrides the row count `x = log(1/(eps delta))`.
    std::size_t num_rows_override = 0;
    /// Options forwarded to every per-bucket detector; its eps/delta
    /// default to this sketch's.
    double detector_eps = 0.0;    // 0 -> use eps
    double detector_delta = 0.0;  // 0 -> use delta
  };

  /// Validates options and builds the sketch. Requires `0 < eps < 1`,
  /// `0 < delta < 1`, `max_papers >= 2`.
  static StatusOr<HeavyHitters> Create(const Options& options,
                                       std::uint64_t seed);

  /// Observes one paper tuple: hashed per author, per row.
  void AddPaper(const PaperTuple& paper);

  /// Batched `AddPaper`, strictly in-order (every cell detector draws
  /// reservoir coins from its own rng, and the cells a paper touches
  /// depend on its authors). Byte-identical to the scalar sequence; the
  /// win is the inlined call and the row hashes staying hot.
  void AddPaperBatch(std::span<const PaperTuple> papers);

  /// Merges another sketch built with identical options *and seed* (the
  /// row hashes must map every author to the same cells); each (row,
  /// bucket) detector is merged pairwise. Afterwards the sketch reflects
  /// both shards' paper streams: cell counters are exact sums, cell
  /// samples are uniform over the union sub-streams, so `Report()` /
  /// `ReportHeavy()` keep the Theorem 18 guarantee on the merged stream.
  void Merge(const HeavyHitters& other);

  /// Detected heavy-hitter *candidates*: every author some bucket's
  /// 1-HH detector fired on, deduplicated and sorted by descending
  /// H-index estimate, capped at `ceil(1/eps)` entries (there can be at
  /// most `1/eps` true heavy hitters). A bucket containing one small
  /// author is legitimately dominated by it, so candidates can include
  /// non-heavy authors; use `ReportHeavy()` for the Theorem 18 output.
  std::vector<HeavyHitterReport> Report() const;

  /// Estimates the stream's total H-impact `h*(S) = sum_a h*(a)` as the
  /// median over rows of the per-row sum of bucket H-index estimates.
  /// Accurate when authors are spread across buckets (the Theorem 18
  /// regime, `#heavy authors <= 1/eps << l` buckets); an *under*estimate
  /// when many small authors share buckets, since a bucket's combined
  /// H-index is below the sum of its authors'.
  double TotalImpactEstimate() const;

  /// The Theorem 18 output: candidates whose estimated H-index clears
  /// `threshold_scale * eps * TotalImpactEstimate()`. The default scale
  /// `(1-eps)/2` absorbs both the detector's one-sided (1-eps) error and
  /// the total-impact underestimate.
  std::vector<HeavyHitterReport> ReportHeavy(double threshold_scale) const;
  std::vector<HeavyHitterReport> ReportHeavy() const {
    return ReportHeavy((1.0 - options_.eps) / 2.0);
  }

  /// Estimates the L2 mass `||h||_2 = sqrt(sum_a h*(a)^2)` of the
  /// H-index vector (median over rows of the root-sum-of-squares of
  /// bucket estimates). Same accuracy regime as `TotalImpactEstimate()`.
  double TotalImpactL2Estimate() const;

  /// The paper's concluding "L2 heavy hitters" variation: candidates
  /// with `h(a) >= threshold_scale * eps * ||h||_2`. Because
  /// `||h||_2 <= ||h||_1`, L2-heaviness is a weaker bar than Theorem
  /// 18's L1 version — more users qualify, which is exactly why the
  /// paper flags it as the more permissive notion to pursue.
  std::vector<HeavyHitterReport> ReportL2Heavy(double threshold_scale) const;
  std::vector<HeavyHitterReport> ReportL2Heavy() const {
    return ReportL2Heavy((1.0 - options_.eps) / 2.0);
  }

  /// Number of hash rows `x`.
  std::size_t num_rows() const { return num_rows_; }

  /// Number of buckets per row `l`.
  std::size_t num_buckets() const { return num_buckets_; }

  /// Number of papers observed.
  std::uint64_t num_papers() const { return num_papers_; }

  /// Space across all cells and hash functions.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (options + every cell detector's state). The
  /// hash rows and cell structures are re-derived from the seed chain.
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a sketch from a `SerializeTo` checkpoint.
  static StatusOr<HeavyHitters> DeserializeFrom(ByteReader& reader);

 private:
  HeavyHitters(const Options& options, std::uint64_t seed);

  Options options_;
  std::uint64_t seed_;  // construction seed (checkpoint reconstruction)
  std::size_t num_rows_;
  std::size_t num_buckets_;
  std::uint64_t num_papers_ = 0;
  std::vector<PairwiseRangeHash> row_hashes_;
  std::vector<OneHeavyHitter> cells_;  // num_rows_ x num_buckets_
};

}  // namespace himpact

#endif  // HIMPACT_HEAVY_HEAVY_HITTERS_H_
