#ifndef HIMPACT_HEAVY_CASH_REGISTER_HEAVY_H_
#define HIMPACT_HEAVY_CASH_REGISTER_HEAVY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hash/k_independent.h"
#include "heavy/heavy_hitters.h"
#include "sketch/distinct.h"
#include "sketch/l0_sampler.h"
#include "stream/types.h"

/// \file
/// Heavy hitters by H-index over a *cash-register* stream: responses
/// arrive one update at a time as `(paper, authors, +delta)`, never as a
/// final citation count.
///
/// The paper's abstract claims this model but Section 4's algorithms
/// consume aggregated tuples; this class composes the paper's own
/// building blocks to close the gap:
///
///   - authors are hashed into an `x × l` grid exactly as in Algorithm 8;
///   - each cell runs Algorithm 5's unbiased-sampling estimator (a few
///     l0-samplers + a distinct count) over its sub-stream, yielding the
///     cell's H-index estimate from sampled `(paper, citations)` pairs;
///   - author attribution uses a *twin* l0-sampler per sampler, built
///     with identical coins but fed the weight `delta * (author + 1)`.
///     Because recovery depends only on the update index pattern, the
///     twin recovers the same paper, and `twin_value / value - 1` is the
///     author who received those responses;
///   - a cell is attributed to an author (Algorithm 7's majority test)
///     when a `(1 - eps)` fraction of its h-supporting samples decode to
///     that author.
///
/// Guarantees are inherited per part (Theorem 18's isolation + Theorem
/// 14's per-cell estimation); the attribution step assumes each update
/// credits one author (co-authored papers contribute one update per
/// listed author, as in Algorithm 8's per-author insertion).

namespace himpact {

/// Algorithm-8-style heavy hitters fed by unaggregated response events.
class CashRegisterHeavyHitters {
 public:
  /// Tuning knobs.
  struct Options {
    /// Heaviness / approximation parameter.
    double eps = 0.25;
    /// Failure probability.
    double delta = 0.1;
    /// Paper-id universe (ids must be < universe).
    std::uint64_t universe = 1u << 16;
    /// l0-samplers per cell (the per-cell Algorithm 5 sample size).
    std::size_t samplers_per_cell = 12;
    /// Overrides for the grid (0 = the Theorem 18 formulas).
    std::size_t num_buckets_override = 0;
    std::size_t num_rows_override = 0;
    /// Per-sampler failure probability.
    double sampler_delta = 0.1;
  };

  /// Validates options and builds the sketch.
  static StatusOr<CashRegisterHeavyHitters> Create(const Options& options,
                                                   std::uint64_t seed);

  /// Observes `delta` new responses for `paper` credited to `authors`
  /// (one grid insertion per author per row, as in Algorithm 8).
  /// Requires `paper < universe`, `delta > 0`, at least one author.
  void Update(PaperId paper, const AuthorList& authors, std::int64_t delta);

  /// Detected heavy-hitter candidates, deduplicated by author, sorted by
  /// descending H-index estimate, capped at `ceil(1/eps)`.
  std::vector<HeavyHitterReport> Report() const;

  /// Number of grid rows / buckets.
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_buckets() const { return num_buckets_; }

  /// Total updates observed.
  std::uint64_t num_updates() const { return num_updates_; }

  /// Space across the whole grid.
  SpaceUsage EstimateSpace() const;

 private:
  /// Per-cell state: value samplers, attribution twins, distinct count.
  struct Cell {
    std::vector<L0Sampler> value_samplers;
    std::vector<L0Sampler> author_samplers;  // twins, same coins
    DistinctCounter distinct;

    Cell(const Options& options, std::uint64_t seed);
    void Update(PaperId paper, AuthorId author, std::int64_t delta);
    SpaceUsage EstimateSpace() const;
  };

  /// Runs the per-cell detection: H-index estimate + majority author.
  struct CellDetection {
    bool found = false;
    AuthorId author = 0;
    double h_estimate = 0.0;
  };
  CellDetection DetectCell(const Cell& cell) const;

  CashRegisterHeavyHitters(const Options& options, std::uint64_t seed);

  Options options_;
  std::size_t num_rows_;
  std::size_t num_buckets_;
  std::uint64_t num_updates_ = 0;
  std::vector<PairwiseRangeHash> row_hashes_;
  std::vector<Cell> cells_;  // num_rows_ x num_buckets_
};

}  // namespace himpact

#endif  // HIMPACT_HEAVY_CASH_REGISTER_HEAVY_H_
