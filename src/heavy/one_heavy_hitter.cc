#include "heavy/one_heavy_hitter.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {
namespace {

std::size_t SampleSize(const OneHeavyHitter::Options& options) {
  if (options.sample_size_override > 0) return options.sample_size_override;
  // s = 2 log(log(n) / delta) (Algorithm 7, step 1), floored at a small
  // constant so tiny configurations still have a usable sample.
  const double log_n =
      std::log2(static_cast<double>(std::max<std::uint64_t>(4, options.max_papers)));
  const double s = 2.0 * std::log2(std::max(2.0, log_n / options.delta));
  return static_cast<std::size_t>(std::max(8.0, std::ceil(s)));
}

}  // namespace

StatusOr<OneHeavyHitter> OneHeavyHitter::Create(const Options& options,
                                                std::uint64_t seed) {
  if (!(options.eps > 0.0 && options.eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (!(options.delta > 0.0 && options.delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (options.max_papers < 2) {
    return Status::InvalidArgument("max_papers must be >= 2");
  }
  return OneHeavyHitter(options, seed);
}

OneHeavyHitter::OneHeavyHitter(const Options& options, std::uint64_t seed)
    : options_(options),
      sample_size_(SampleSize(options)),
      grid_(options.max_papers, options.eps),
      rng_(SplitMix64(seed ^ 0x8ad8a41b5b1f1a2dULL)) {
  bucket_.assign(static_cast<std::size_t>(grid_.num_levels()), 0);
  samples_.reserve(bucket_.size());
  for (std::size_t i = 0; i < bucket_.size(); ++i) {
    samples_.emplace_back(sample_size_);
  }
}

void OneHeavyHitter::AddPaper(const PaperTuple& paper) {
  ++num_papers_;
  if (paper.citations == 0) return;
  int level = grid_.LevelFloor(static_cast<double>(paper.citations));
  if (level < 0) return;
  if (level >= grid_.num_levels()) level = grid_.num_levels() - 1;
  // The paper qualifies for every threshold up to `level`: bump the exact
  // bucket (counters are suffix sums, as in Algorithm 1) and offer the
  // paper to each qualifying threshold's reservoir.
  ++bucket_[static_cast<std::size_t>(level)];
  const SampledPaper sampled{paper.paper, paper.authors};
  for (int i = 0; i <= level; ++i) {
    samples_[static_cast<std::size_t>(i)].Add(sampled, rng_);
  }
}

int OneHeavyHitter::WinningLevel() const {
  std::uint64_t suffix = 0;
  for (int i = grid_.num_levels() - 1; i >= 0; --i) {
    suffix += bucket_[static_cast<std::size_t>(i)];
    if (static_cast<double>(suffix) >= grid_.Power(i)) return i;
  }
  return -1;
}

double OneHeavyHitter::StreamHEstimate() const {
  const int level = WinningLevel();
  return level < 0 ? 0.0 : grid_.Power(level);
}

std::optional<OneHeavyHitterResult> OneHeavyHitter::Detect() const {
  const int level = WinningLevel();
  if (level < 0) return std::nullopt;
  const auto& sample = samples_[static_cast<std::size_t>(level)].sample();
  if (sample.empty()) return std::nullopt;

  // Majority-author test (Algorithm 7, step 10): some author must appear
  // in at least a (1-eps) fraction of the sampled papers.
  std::unordered_map<AuthorId, std::size_t> author_counts;
  for (const SampledPaper& paper : sample) {
    for (const AuthorId author : paper.authors) {
      ++author_counts[author];
    }
  }
  const double needed =
      (1.0 - options_.eps) * static_cast<double>(sample.size());
  const AuthorId* best_author = nullptr;
  std::size_t best_count = 0;
  for (const auto& [author, count] : author_counts) {
    if (count > best_count) {
      best_count = count;
      best_author = &author;
    }
  }
  if (best_author == nullptr ||
      static_cast<double>(best_count) < needed) {
    return std::nullopt;
  }
  return OneHeavyHitterResult{*best_author, grid_.Power(level)};
}

SpaceUsage OneHeavyHitter::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = bucket_.size();
  usage.bytes = sizeof(*this) + bucket_.capacity() * sizeof(std::uint64_t);
  for (const auto& sample : samples_) usage += sample.EstimateSpace();
  return usage;
}

}  // namespace himpact
