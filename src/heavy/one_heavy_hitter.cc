#include "heavy/one_heavy_hitter.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {
namespace {

std::size_t SampleSize(const OneHeavyHitter::Options& options) {
  if (options.sample_size_override > 0) return options.sample_size_override;
  // s = 2 log(log(n) / delta) (Algorithm 7, step 1), floored at a small
  // constant so tiny configurations still have a usable sample.
  const double log_n =
      std::log2(static_cast<double>(std::max<std::uint64_t>(4, options.max_papers)));
  const double s = 2.0 * std::log2(std::max(2.0, log_n / options.delta));
  return static_cast<std::size_t>(std::max(8.0, std::ceil(s)));
}

}  // namespace

StatusOr<OneHeavyHitter> OneHeavyHitter::Create(const Options& options,
                                                std::uint64_t seed) {
  if (!(options.eps > 0.0 && options.eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (!(options.delta > 0.0 && options.delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (options.max_papers < 2) {
    return Status::InvalidArgument("max_papers must be >= 2");
  }
  return OneHeavyHitter(options, seed);
}

OneHeavyHitter::OneHeavyHitter(const Options& options, std::uint64_t seed)
    : options_(options),
      seed_(seed),
      sample_size_(SampleSize(options)),
      grid_(options.max_papers, options.eps),
      rng_(SplitMix64(seed ^ 0x8ad8a41b5b1f1a2dULL)) {
  bucket_.assign(static_cast<std::size_t>(grid_.num_levels()), 0);
  samples_.reserve(bucket_.size());
  for (std::size_t i = 0; i < bucket_.size(); ++i) {
    samples_.emplace_back(sample_size_);
  }
}

void OneHeavyHitter::AddPaper(const PaperTuple& paper) {
  ++num_papers_;
  if (paper.citations == 0) return;
  int level = grid_.LevelFloor(static_cast<double>(paper.citations));
  if (level < 0) return;
  if (level >= grid_.num_levels()) level = grid_.num_levels() - 1;
  // The paper qualifies for every threshold up to `level`: bump the exact
  // bucket (counters are suffix sums, as in Algorithm 1) and offer the
  // paper to each qualifying threshold's reservoir.
  ++bucket_[static_cast<std::size_t>(level)];
  const SampledPaper sampled{paper.paper, paper.authors};
  for (int i = 0; i <= level; ++i) {
    samples_[static_cast<std::size_t>(i)].Add(sampled, rng_);
  }
}

void OneHeavyHitter::AddPaperBatch(std::span<const PaperTuple> papers) {
  // Order-dependent (reservoir coins): apply in order. AddPaper() lives
  // in this TU, so the call inlines.
  for (const PaperTuple& paper : papers) AddPaper(paper);
}

void OneHeavyHitter::Merge(const OneHeavyHitter& other) {
  HIMPACT_CHECK_MSG(
      options_.eps == other.options_.eps &&
          options_.delta == other.options_.delta &&
          options_.max_papers == other.options_.max_papers &&
          sample_size_ == other.sample_size_ &&
          bucket_.size() == other.bucket_.size(),
      "merging OneHeavyHitters with different parameters");
  num_papers_ += other.num_papers_;
  for (std::size_t i = 0; i < bucket_.size(); ++i) {
    bucket_[i] += other.bucket_[i];
  }
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    samples_[i].Merge(other.samples_[i], rng_);
  }
}

int OneHeavyHitter::WinningLevel() const {
  std::uint64_t suffix = 0;
  for (int i = grid_.num_levels() - 1; i >= 0; --i) {
    suffix += bucket_[static_cast<std::size_t>(i)];
    if (static_cast<double>(suffix) >= grid_.Power(i)) return i;
  }
  return -1;
}

double OneHeavyHitter::StreamHEstimate() const {
  const int level = WinningLevel();
  return level < 0 ? 0.0 : grid_.Power(level);
}

std::optional<OneHeavyHitterResult> OneHeavyHitter::Detect() const {
  const int level = WinningLevel();
  if (level < 0) return std::nullopt;
  const auto& sample = samples_[static_cast<std::size_t>(level)].sample();
  if (sample.empty()) return std::nullopt;

  // Majority-author test (Algorithm 7, step 10): some author must appear
  // in at least a (1-eps) fraction of the sampled papers.
  std::unordered_map<AuthorId, std::size_t> author_counts;
  for (const SampledPaper& paper : sample) {
    for (const AuthorId author : paper.authors) {
      ++author_counts[author];
    }
  }
  const double needed =
      (1.0 - options_.eps) * static_cast<double>(sample.size());
  const AuthorId* best_author = nullptr;
  std::size_t best_count = 0;
  for (const auto& [author, count] : author_counts) {
    if (count > best_count) {
      best_count = count;
      best_author = &author;
    }
  }
  if (best_author == nullptr ||
      static_cast<double>(best_count) < needed) {
    return std::nullopt;
  }
  return OneHeavyHitterResult{*best_author, grid_.Power(level)};
}

namespace {
constexpr std::uint64_t kOneHeavyHitterMagic = 0x48494d504f484831ULL;

void WriteSampledPaper(ByteWriter& writer,
                       const OneHeavyHitter::SampledPaper& paper) {
  writer.U64(paper.paper);
  writer.U64(static_cast<std::uint64_t>(paper.authors.size()));
  for (const AuthorId author : paper.authors) writer.U64(author);
}

Status ReadSampledPaper(ByteReader& reader,
                        OneHeavyHitter::SampledPaper* paper) {
  std::uint64_t paper_id = 0;
  std::uint64_t num_authors = 0;
  if (!reader.U64(&paper_id) || !reader.U64(&num_authors)) {
    return Status::InvalidArgument("truncated sampled paper");
  }
  if (num_authors > static_cast<std::uint64_t>(kMaxAuthorsPerPaper)) {
    return Status::InvalidArgument("sampled paper has too many authors");
  }
  paper->paper = paper_id;
  paper->authors = AuthorList();
  for (std::uint64_t i = 0; i < num_authors; ++i) {
    std::uint64_t author = 0;
    if (!reader.U64(&author)) {
      return Status::InvalidArgument("truncated sampled paper");
    }
    paper->authors.PushBack(author);
  }
  return Status::OK();
}
}  // namespace

void OneHeavyHitter::SerializeTo(ByteWriter& writer) const {
  writer.U64(kOneHeavyHitterMagic);
  writer.F64(options_.eps);
  writer.F64(options_.delta);
  writer.U64(options_.max_papers);
  writer.U64(options_.sample_size_override);
  writer.U64(seed_);
  SerializeStateTo(writer);
}

StatusOr<OneHeavyHitter> OneHeavyHitter::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kOneHeavyHitterMagic) {
    return Status::InvalidArgument("not a OneHeavyHitter checkpoint");
  }
  Options options;
  std::uint64_t sample_size_override = 0;
  std::uint64_t seed = 0;
  if (!reader.F64(&options.eps) || !reader.F64(&options.delta) ||
      !reader.U64(&options.max_papers) || !reader.U64(&sample_size_override) ||
      !reader.U64(&seed)) {
    return Status::InvalidArgument("truncated OneHeavyHitter checkpoint");
  }
  // A corrupt eps drives the grid's level count, and a corrupt override
  // drives every reservoir's capacity; both must stay allocation-sane.
  if (!(options.eps > 1e-4) || !(options.eps < 1.0) ||
      !(options.delta > 1e-12) || !(options.delta < 1.0) ||
      options.max_papers < 2 ||
      sample_size_override > (std::uint64_t{1} << 24)) {
    return Status::InvalidArgument("corrupt OneHeavyHitter options");
  }
  options.sample_size_override =
      static_cast<std::size_t>(sample_size_override);
  StatusOr<OneHeavyHitter> detector = Create(options, seed);
  if (!detector.ok()) return detector.status();
  const Status status = detector.value().DeserializeStateFrom(reader);
  if (!status.ok()) return status;
  return detector;
}

void OneHeavyHitter::SerializeStateTo(ByteWriter& writer) const {
  std::uint64_t rng_state[4];
  rng_.SaveState(rng_state);
  for (const std::uint64_t word : rng_state) writer.U64(word);
  writer.U64(num_papers_);
  writer.U64(bucket_.size());
  for (const std::uint64_t count : bucket_) writer.U64(count);
  writer.U64(samples_.size());
  for (const auto& sample : samples_) {
    sample.SerializeTo(writer, WriteSampledPaper);
  }
}

Status OneHeavyHitter::DeserializeStateFrom(ByteReader& reader) {
  std::uint64_t rng_state[4] = {0, 0, 0, 0};
  std::uint64_t num_papers = 0;
  std::uint64_t num_buckets = 0;
  if (!reader.U64(&rng_state[0]) || !reader.U64(&rng_state[1]) ||
      !reader.U64(&rng_state[2]) || !reader.U64(&rng_state[3]) ||
      !reader.U64(&num_papers) || !reader.U64(&num_buckets)) {
    return Status::InvalidArgument("truncated OneHeavyHitter state");
  }
  if (num_buckets != bucket_.size()) {
    return Status::InvalidArgument("OneHeavyHitter bucket-count mismatch");
  }
  std::vector<std::uint64_t> bucket;
  bucket.reserve(num_buckets);
  for (std::uint64_t i = 0; i < num_buckets; ++i) {
    std::uint64_t count = 0;
    if (!reader.U64(&count)) {
      return Status::InvalidArgument("truncated OneHeavyHitter state");
    }
    bucket.push_back(count);
  }
  std::uint64_t num_samples = 0;
  if (!reader.U64(&num_samples) || num_samples != samples_.size()) {
    return Status::InvalidArgument("OneHeavyHitter reservoir-count mismatch");
  }
  std::vector<ReservoirSampler<SampledPaper>> samples;
  samples.reserve(num_samples);
  for (std::uint64_t i = 0; i < num_samples; ++i) {
    StatusOr<ReservoirSampler<SampledPaper>> sample =
        ReservoirSampler<SampledPaper>::DeserializeFrom(reader,
                                                        ReadSampledPaper);
    if (!sample.ok()) return sample.status();
    if (sample.value().capacity() != sample_size_) {
      return Status::InvalidArgument(
          "OneHeavyHitter reservoir capacity mismatch");
    }
    samples.push_back(std::move(sample).value());
  }
  if (!rng_.RestoreState(rng_state)) {
    return Status::InvalidArgument("corrupt OneHeavyHitter rng state");
  }
  num_papers_ = num_papers;
  bucket_ = std::move(bucket);
  samples_ = std::move(samples);
  return Status::OK();
}

SpaceUsage OneHeavyHitter::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = bucket_.size();
  usage.bytes = sizeof(*this) + bucket_.capacity() * sizeof(std::uint64_t);
  for (const auto& sample : samples_) usage += sample.EstimateSpace();
  return usage;
}

}  // namespace himpact
