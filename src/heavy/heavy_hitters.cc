#include "heavy/heavy_hitters.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {
namespace {

std::size_t NumBuckets(const HeavyHitters::Options& options) {
  if (options.num_buckets_override > 0) return options.num_buckets_override;
  return static_cast<std::size_t>(
      std::ceil(2.0 / (options.eps * options.eps)));
}

std::size_t NumRows(const HeavyHitters::Options& options) {
  if (options.num_rows_override > 0) return options.num_rows_override;
  const double rows = std::log2(1.0 / (options.eps * options.delta));
  return static_cast<std::size_t>(std::max(1.0, std::ceil(rows)));
}

}  // namespace

StatusOr<HeavyHitters> HeavyHitters::Create(const Options& options,
                                            std::uint64_t seed) {
  if (!(options.eps > 0.0 && options.eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (!(options.delta > 0.0 && options.delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (options.max_papers < 2) {
    return Status::InvalidArgument("max_papers must be >= 2");
  }
  return HeavyHitters(options, seed);
}

HeavyHitters::HeavyHitters(const Options& options, std::uint64_t seed)
    : options_(options),
      seed_(seed),
      num_rows_(NumRows(options)),
      num_buckets_(NumBuckets(options)) {
  std::uint64_t row_seed = SplitMix64(seed ^ 0xe7037ed1a0b428dbULL);
  row_hashes_.reserve(num_rows_);
  for (std::size_t j = 0; j < num_rows_; ++j) {
    row_seed = SplitMix64(row_seed);
    row_hashes_.emplace_back(num_buckets_, row_seed);
  }

  OneHeavyHitter::Options detector_options;
  detector_options.eps =
      options.detector_eps > 0.0 ? options.detector_eps : options.eps;
  detector_options.delta =
      options.detector_delta > 0.0 ? options.detector_delta : options.delta;
  detector_options.max_papers = options.max_papers;

  std::uint64_t cell_seed = SplitMix64(seed ^ 0x589965cc75374cc3ULL);
  cells_.reserve(num_rows_ * num_buckets_);
  for (std::size_t c = 0; c < num_rows_ * num_buckets_; ++c) {
    cell_seed = SplitMix64(cell_seed);
    StatusOr<OneHeavyHitter> cell =
        OneHeavyHitter::Create(detector_options, cell_seed);
    HIMPACT_CHECK_MSG(cell.ok(), "detector options were pre-validated");
    cells_.push_back(std::move(cell).value());
  }
}

void HeavyHitters::AddPaper(const PaperTuple& paper) {
  ++num_papers_;
  for (std::size_t j = 0; j < num_rows_; ++j) {
    // One insertion per (row, author): an author's sub-stream inside its
    // bucket contains all of that author's papers (Algorithm 8, step 5).
    for (const AuthorId author : paper.authors) {
      const std::size_t bucket =
          static_cast<std::size_t>(row_hashes_[j](author));
      cells_[j * num_buckets_ + bucket].AddPaper(paper);
    }
  }
}

void HeavyHitters::AddPaperBatch(std::span<const PaperTuple> papers) {
  // Order-dependent per cell (each detector's reservoir rng): apply in
  // order. AddPaper() lives in this TU, so the call inlines.
  for (const PaperTuple& paper : papers) AddPaper(paper);
}

void HeavyHitters::Merge(const HeavyHitters& other) {
  HIMPACT_CHECK_MSG(
      options_.eps == other.options_.eps &&
          options_.delta == other.options_.delta &&
          options_.max_papers == other.options_.max_papers &&
          num_rows_ == other.num_rows_ &&
          num_buckets_ == other.num_buckets_ && seed_ == other.seed_,
      "merging HeavyHitters with different parameters or seeds");
  num_papers_ += other.num_papers_;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    cells_[c].Merge(other.cells_[c]);
  }
}

std::vector<HeavyHitterReport> HeavyHitters::Report() const {
  // Collect detections per author across the grid.
  std::map<AuthorId, std::vector<double>> detections;
  for (const OneHeavyHitter& cell : cells_) {
    const std::optional<OneHeavyHitterResult> result = cell.Detect();
    if (result.has_value()) {
      detections[result->author].push_back(result->h_estimate);
    }
  }

  std::vector<HeavyHitterReport> reports;
  reports.reserve(detections.size());
  for (auto& [author, estimates] : detections) {
    std::sort(estimates.begin(), estimates.end());
    HeavyHitterReport report;
    report.author = author;
    report.h_estimate = estimates[estimates.size() / 2];
    report.detections = static_cast<int>(estimates.size());
    reports.push_back(report);
  }
  std::sort(reports.begin(), reports.end(),
            [](const HeavyHitterReport& a, const HeavyHitterReport& b) {
              return a.h_estimate > b.h_estimate ||
                     (a.h_estimate == b.h_estimate && a.author < b.author);
            });
  const std::size_t cap =
      static_cast<std::size_t>(std::ceil(1.0 / options_.eps));
  if (reports.size() > cap) reports.resize(cap);
  return reports;
}

double HeavyHitters::TotalImpactEstimate() const {
  std::vector<double> row_totals;
  row_totals.reserve(num_rows_);
  for (std::size_t j = 0; j < num_rows_; ++j) {
    double total = 0.0;
    for (std::size_t k = 0; k < num_buckets_; ++k) {
      total += cells_[j * num_buckets_ + k].StreamHEstimate();
    }
    row_totals.push_back(total);
  }
  std::sort(row_totals.begin(), row_totals.end());
  return row_totals.empty() ? 0.0 : row_totals[row_totals.size() / 2];
}

std::vector<HeavyHitterReport> HeavyHitters::ReportHeavy(
    double threshold_scale) const {
  const double threshold =
      threshold_scale * options_.eps * TotalImpactEstimate();
  std::vector<HeavyHitterReport> heavy;
  for (const HeavyHitterReport& report : Report()) {
    if (report.h_estimate >= threshold) heavy.push_back(report);
  }
  return heavy;
}

double HeavyHitters::TotalImpactL2Estimate() const {
  std::vector<double> row_norms;
  row_norms.reserve(num_rows_);
  for (std::size_t j = 0; j < num_rows_; ++j) {
    double sum_squares = 0.0;
    for (std::size_t k = 0; k < num_buckets_; ++k) {
      const double h = cells_[j * num_buckets_ + k].StreamHEstimate();
      sum_squares += h * h;
    }
    row_norms.push_back(std::sqrt(sum_squares));
  }
  std::sort(row_norms.begin(), row_norms.end());
  return row_norms.empty() ? 0.0 : row_norms[row_norms.size() / 2];
}

std::vector<HeavyHitterReport> HeavyHitters::ReportL2Heavy(
    double threshold_scale) const {
  const double threshold =
      threshold_scale * options_.eps * TotalImpactL2Estimate();
  std::vector<HeavyHitterReport> heavy;
  for (const HeavyHitterReport& report : Report()) {
    if (report.h_estimate >= threshold) heavy.push_back(report);
  }
  return heavy;
}

namespace {
constexpr std::uint64_t kHeavyHittersMagic = 0x48494d5048485331ULL;
}  // namespace

void HeavyHitters::SerializeTo(ByteWriter& writer) const {
  writer.U64(kHeavyHittersMagic);
  writer.F64(options_.eps);
  writer.F64(options_.delta);
  writer.U64(options_.max_papers);
  writer.U64(options_.num_buckets_override);
  writer.U64(options_.num_rows_override);
  writer.F64(options_.detector_eps);
  writer.F64(options_.detector_delta);
  writer.U64(seed_);
  writer.U64(num_papers_);
  writer.U64(cells_.size());
  for (const OneHeavyHitter& cell : cells_) {
    cell.SerializeStateTo(writer);
  }
}

StatusOr<HeavyHitters> HeavyHitters::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kHeavyHittersMagic) {
    return Status::InvalidArgument("not a HeavyHitters checkpoint");
  }
  Options options;
  std::uint64_t num_buckets_override = 0;
  std::uint64_t num_rows_override = 0;
  std::uint64_t seed = 0;
  std::uint64_t num_papers = 0;
  std::uint64_t num_cells = 0;
  if (!reader.F64(&options.eps) || !reader.F64(&options.delta) ||
      !reader.U64(&options.max_papers) || !reader.U64(&num_buckets_override) ||
      !reader.U64(&num_rows_override) || !reader.F64(&options.detector_eps) ||
      !reader.F64(&options.detector_delta) || !reader.U64(&seed) ||
      !reader.U64(&num_papers) || !reader.U64(&num_cells)) {
    return Status::InvalidArgument("truncated HeavyHitters checkpoint");
  }
  // eps drives l = 2/eps^2 buckets, each holding a full detector; bound
  // everything allocation-relevant before the constructor runs. Each
  // cell's serialized state is at least 7 words, so the cell count must
  // be consistent with the remaining bytes.
  if (!(options.eps > 1e-3) || !(options.eps < 1.0) ||
      !(options.delta > 1e-12) || !(options.delta < 1.0) ||
      options.max_papers < 2 ||
      num_buckets_override > (std::uint64_t{1} << 20) ||
      num_rows_override > (std::uint64_t{1} << 10) ||
      (options.detector_eps != 0.0 &&
       (!(options.detector_eps > 1e-4) || !(options.detector_eps < 1.0))) ||
      (options.detector_delta != 0.0 &&
       (!(options.detector_delta > 1e-12) ||
        !(options.detector_delta < 1.0)))) {
    return Status::InvalidArgument("corrupt HeavyHitters options");
  }
  if (num_cells * 7 * 8 > reader.remaining()) {
    return Status::InvalidArgument(
        "HeavyHitters checkpoint smaller than its declared geometry");
  }
  options.num_buckets_override =
      static_cast<std::size_t>(num_buckets_override);
  options.num_rows_override = static_cast<std::size_t>(num_rows_override);
  StatusOr<HeavyHitters> sketch = Create(options, seed);
  if (!sketch.ok()) return sketch.status();
  HeavyHitters& out = sketch.value();
  if (num_cells != out.cells_.size()) {
    return Status::InvalidArgument("HeavyHitters cell-count mismatch");
  }
  for (OneHeavyHitter& cell : out.cells_) {
    const Status status = cell.DeserializeStateFrom(reader);
    if (!status.ok()) return status;
  }
  out.num_papers_ = num_papers;
  return sketch;
}

SpaceUsage HeavyHitters::EstimateSpace() const {
  SpaceUsage usage;
  for (const auto& hash : row_hashes_) usage += hash.EstimateSpace();
  for (const auto& cell : cells_) usage += cell.EstimateSpace();
  usage.bytes += sizeof(*this);
  return usage;
}

}  // namespace himpact
