#include "heavy/baseline.h"

#include <algorithm>
#include <unordered_map>

#include "core/exact.h"

namespace himpact {
namespace {

std::unordered_map<AuthorId, IncrementalExactHIndex> PerAuthorExact(
    const PaperStream& papers) {
  std::unordered_map<AuthorId, IncrementalExactHIndex> per_author;
  for (const PaperTuple& paper : papers) {
    for (const AuthorId author : paper.authors) {
      per_author[author].Add(paper.citations);
    }
  }
  return per_author;
}

}  // namespace

std::vector<AuthorHIndex> ExactAuthorHIndices(const PaperStream& papers) {
  const auto per_author = PerAuthorExact(papers);
  std::vector<AuthorHIndex> result;
  result.reserve(per_author.size());
  for (const auto& [author, tracker] : per_author) {
    result.push_back(AuthorHIndex{author, tracker.HIndex()});
  }
  std::sort(result.begin(), result.end(),
            [](const AuthorHIndex& a, const AuthorHIndex& b) {
              return a.h_index > b.h_index ||
                     (a.h_index == b.h_index && a.author < b.author);
            });
  return result;
}

std::uint64_t TotalHImpact(const PaperStream& papers) {
  std::uint64_t total = 0;
  for (const AuthorHIndex& entry : ExactAuthorHIndices(papers)) {
    total += entry.h_index;
  }
  return total;
}

std::vector<AuthorHIndex> ExactHeavyHitters(const PaperStream& papers,
                                            double eps) {
  const std::vector<AuthorHIndex> all = ExactAuthorHIndices(papers);
  std::uint64_t total = 0;
  for (const AuthorHIndex& entry : all) total += entry.h_index;

  std::vector<AuthorHIndex> heavy;
  for (const AuthorHIndex& entry : all) {
    if (static_cast<double>(entry.h_index) >=
        eps * static_cast<double>(total)) {
      heavy.push_back(entry);
    }
  }
  return heavy;
}

}  // namespace himpact
