#ifndef HIMPACT_HEAVY_ONE_HEAVY_HITTER_H_
#define HIMPACT_HEAVY_ONE_HEAVY_HITTER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/math_util.h"
#include "common/status.h"
#include "random/rng.h"
#include "sketch/reservoir.h"
#include "stream/types.h"

/// \file
/// Algorithm 7 ("1-Heavy Hitter", Theorem 17): given a stream of papers
/// with authors and citation counts, decide whether a *single* author
/// dominates the stream's H-impact — i.e. whether some author `a` has
/// `h(a) >= (1-eps) h*(S)` where `h*(S)` sums the H-indices of all
/// authors in the stream.
///
/// The detector runs Algorithm 1's exponential histogram over the papers
/// and, per threshold `(1+eps)^i`, keeps a uniform reservoir sample
/// `T_i` of `s = 2 log(log(n)/delta)` qualifying papers. At the end the
/// winning threshold's sample is examined: if a `(1-eps)` fraction of its
/// papers share an author, that author (with the histogram's H-index
/// estimate) is returned; otherwise the stream is declared noisy.
///
/// Algorithm 8 instantiates one detector per hash bucket.

namespace himpact {

/// A detected dominant author and its H-index estimate.
struct OneHeavyHitterResult {
  AuthorId author = 0;
  double h_estimate = 0.0;
};

/// The Algorithm 7 detector.
class OneHeavyHitter {
 public:
  /// Tuning knobs.
  struct Options {
    /// Approximation / domination parameter.
    double eps = 0.1;
    /// Failure probability.
    double delta = 0.05;
    /// Upper bound on the number of papers (the histogram's `n`).
    std::uint64_t max_papers = 1u << 20;
    /// If positive, overrides the sample size `s`.
    std::size_t sample_size_override = 0;
  };

  /// Validates options and builds a detector. Requires `0 < eps < 1`,
  /// `0 < delta < 1`, `max_papers >= 2`.
  static StatusOr<OneHeavyHitter> Create(const Options& options,
                                         std::uint64_t seed);

  /// Observes one paper tuple.
  void AddPaper(const PaperTuple& paper);

  /// Batched `AddPaper`. Reservoir admissions consume `rng_` draws, so
  /// the loop is strictly in-order to keep the coin sequence — and hence
  /// the serialized state — byte-identical to the scalar sequence.
  void AddPaperBatch(std::span<const PaperTuple> papers);

  /// Merges another detector built with identical options (the grids and
  /// reservoir capacities must line up). The histogram counters add
  /// exactly; each threshold's reservoir is merged into a uniform sample
  /// of the union sub-stream (see `ReservoirSampler::Merge`), so the
  /// Theorem 17 majority test keeps its guarantee over the concatenated
  /// stream. Counter state is exact; sample contents are re-randomized.
  void Merge(const OneHeavyHitter& other);

  /// Runs the end-of-stream test: the dominant author and the stream's
  /// H-index estimate, or `nullopt` (the paper's FAIL) if no author
  /// covers a `(1-eps)` fraction of the winning threshold's sample.
  std::optional<OneHeavyHitterResult> Detect() const;

  /// The histogram's H-index estimate of the whole (bucket) stream,
  /// regardless of whether one author dominates.
  double StreamHEstimate() const;

  /// Number of papers observed.
  std::uint64_t num_papers() const { return num_papers_; }

  /// The per-threshold sample size `s`.
  std::size_t sample_size() const { return sample_size_; }

  /// One reservoir entry: a sampled paper id with its author list
  /// (public so the checkpoint codec can name it).
  struct SampledPaper {
    PaperId paper;
    AuthorList authors;
  };

  /// Space: counters plus all reservoirs.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (options + counters + reservoirs + rng state).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a detector from a `SerializeTo` checkpoint.
  static StatusOr<OneHeavyHitter> DeserializeFrom(ByteReader& reader);

  /// Appends only the mutable state; `HeavyHitters` re-derives its cell
  /// detectors from its own seed chain and checkpoints just this.
  void SerializeStateTo(ByteWriter& writer) const;

  /// Restores the state written by `SerializeStateTo` into this detector,
  /// which must have been constructed with the same options and seed.
  Status DeserializeStateFrom(ByteReader& reader);

 private:
  OneHeavyHitter(const Options& options, std::uint64_t seed);

  /// Index of the winning level (-1 if no level qualifies).
  int WinningLevel() const;

  Options options_;
  std::uint64_t seed_;  // construction seed (checkpoint reconstruction)
  std::size_t sample_size_;
  GeometricGrid grid_;
  mutable Rng rng_;
  std::uint64_t num_papers_ = 0;
  std::vector<std::uint64_t> bucket_;  // exact-level counts (suffix = c_i)
  // One reservoir per threshold: a uniform sample of papers whose count
  // reached (1+eps)^i.
  std::vector<ReservoirSampler<SampledPaper>> samples_;
};

}  // namespace himpact

#endif  // HIMPACT_HEAVY_ONE_HEAVY_HITTER_H_
