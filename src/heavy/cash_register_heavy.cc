#include "heavy/cash_register_heavy.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/math_util.h"
#include "hash/mix.h"

namespace himpact {
namespace {

std::size_t NumBuckets(const CashRegisterHeavyHitters::Options& options) {
  if (options.num_buckets_override > 0) return options.num_buckets_override;
  return static_cast<std::size_t>(
      std::ceil(2.0 / (options.eps * options.eps)));
}

std::size_t NumRows(const CashRegisterHeavyHitters::Options& options) {
  if (options.num_rows_override > 0) return options.num_rows_override;
  const double rows = std::log2(1.0 / (options.eps * options.delta));
  return static_cast<std::size_t>(std::max(1.0, std::ceil(rows)));
}

}  // namespace

CashRegisterHeavyHitters::Cell::Cell(const Options& options,
                                     std::uint64_t seed)
    : distinct(std::min(options.eps, 0.5), options.delta,
               SplitMix64(seed ^ 0x3c6ef372fe94f82bULL)) {
  std::uint64_t sampler_seed = SplitMix64(seed ^ 0xbb67ae8584caa73bULL);
  value_samplers.reserve(options.samplers_per_cell);
  author_samplers.reserve(options.samplers_per_cell);
  for (std::size_t i = 0; i < options.samplers_per_cell; ++i) {
    sampler_seed = SplitMix64(sampler_seed);
    // Identical seeds: the twin subsamples and decodes the same papers,
    // so a successful value sample always has a matching author sample.
    value_samplers.emplace_back(options.universe, options.sampler_delta,
                                sampler_seed);
    author_samplers.emplace_back(options.universe, options.sampler_delta,
                                 sampler_seed);
  }
}

void CashRegisterHeavyHitters::Cell::Update(PaperId paper, AuthorId author,
                                            std::int64_t delta) {
  for (std::size_t i = 0; i < value_samplers.size(); ++i) {
    value_samplers[i].Update(paper, delta);
    author_samplers[i].Update(
        paper, delta * static_cast<std::int64_t>(author + 1));
  }
  distinct.Add(paper);
}

SpaceUsage CashRegisterHeavyHitters::Cell::EstimateSpace() const {
  SpaceUsage usage = distinct.EstimateSpace();
  for (const L0Sampler& sampler : value_samplers) {
    usage += sampler.EstimateSpace();
  }
  for (const L0Sampler& sampler : author_samplers) {
    usage += sampler.EstimateSpace();
  }
  return usage;
}

StatusOr<CashRegisterHeavyHitters> CashRegisterHeavyHitters::Create(
    const Options& options, std::uint64_t seed) {
  if (!(options.eps > 0.0 && options.eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (!(options.delta > 0.0 && options.delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (options.universe < 1) {
    return Status::InvalidArgument("universe must be >= 1");
  }
  if (options.samplers_per_cell < 1) {
    return Status::InvalidArgument("samplers_per_cell must be >= 1");
  }
  if (!(options.sampler_delta > 0.0 && options.sampler_delta < 1.0)) {
    return Status::InvalidArgument("sampler_delta must be in (0, 1)");
  }
  return CashRegisterHeavyHitters(options, seed);
}

CashRegisterHeavyHitters::CashRegisterHeavyHitters(const Options& options,
                                                   std::uint64_t seed)
    : options_(options),
      num_rows_(NumRows(options)),
      num_buckets_(NumBuckets(options)) {
  std::uint64_t row_seed = SplitMix64(seed ^ 0xa54ff53a5f1d36f1ULL);
  row_hashes_.reserve(num_rows_);
  for (std::size_t j = 0; j < num_rows_; ++j) {
    row_seed = SplitMix64(row_seed);
    row_hashes_.emplace_back(num_buckets_, row_seed);
  }
  std::uint64_t cell_seed = SplitMix64(seed ^ 0x510e527fade682d1ULL);
  cells_.reserve(num_rows_ * num_buckets_);
  for (std::size_t c = 0; c < num_rows_ * num_buckets_; ++c) {
    cell_seed = SplitMix64(cell_seed);
    cells_.emplace_back(options, cell_seed);
  }
}

void CashRegisterHeavyHitters::Update(PaperId paper,
                                      const AuthorList& authors,
                                      std::int64_t delta) {
  HIMPACT_CHECK(paper < options_.universe);
  HIMPACT_CHECK(delta > 0);
  HIMPACT_CHECK(!authors.empty());
  ++num_updates_;
  for (std::size_t j = 0; j < num_rows_; ++j) {
    for (const AuthorId author : authors) {
      const std::size_t bucket =
          static_cast<std::size_t>(row_hashes_[j](author));
      cells_[j * num_buckets_ + bucket].Update(paper, author, delta);
    }
  }
}

CashRegisterHeavyHitters::CellDetection CashRegisterHeavyHitters::DetectCell(
    const Cell& cell) const {
  CellDetection detection;
  // Draw paired samples: (paper, citations) plus the decoded author.
  struct PairedSample {
    std::int64_t citations;
    AuthorId author;
  };
  std::vector<PairedSample> samples;
  for (std::size_t i = 0; i < cell.value_samplers.size(); ++i) {
    const StatusOr<L0Sample> value = cell.value_samplers[i].Sample();
    const StatusOr<L0Sample> tagged = cell.author_samplers[i].Sample();
    if (!value.ok() || !tagged.ok()) continue;
    if (value.value().index != tagged.value().index) continue;  // paranoia
    const std::int64_t citations = value.value().value;
    if (citations <= 0) continue;
    // twin_value = citations * (author + 1) when every update to this
    // paper credited the same author within this bucket.
    if (tagged.value().value % citations != 0) continue;
    const std::int64_t author_plus_1 = tagged.value().value / citations;
    if (author_plus_1 < 1) continue;
    samples.push_back(PairedSample{
        citations, static_cast<AuthorId>(author_plus_1 - 1)});
  }
  if (samples.empty()) return detection;

  // Algorithm 5's estimate from the sampled values.
  const double y = cell.distinct.Estimate();
  const double x = static_cast<double>(samples.size());
  std::vector<std::int64_t> values;
  values.reserve(samples.size());
  for (const PairedSample& sample : samples) values.push_back(sample.citations);
  std::sort(values.begin(), values.end());
  const GeometricGrid grid(options_.universe, options_.eps);
  double h_estimate = 0.0;
  for (int i = 0; i < grid.num_levels(); ++i) {
    const double threshold = grid.Power(i);
    const auto first_ge = std::lower_bound(
        values.begin(), values.end(),
        static_cast<std::int64_t>(std::ceil(threshold)));
    const double r_i =
        static_cast<double>(values.end() - first_ge) * y / x;
    if (r_i >= threshold * (1.0 - options_.eps)) h_estimate = threshold;
  }
  if (h_estimate <= 0.0) return detection;

  // Algorithm 7's majority test over the h-supporting samples.
  std::map<AuthorId, int> author_counts;
  int supporting = 0;
  for (const PairedSample& sample : samples) {
    if (static_cast<double>(sample.citations) >=
        h_estimate / (1.0 + options_.eps)) {
      ++supporting;
      ++author_counts[sample.author];
    }
  }
  if (supporting == 0) return detection;
  AuthorId best_author = 0;
  int best_count = 0;
  for (const auto& [author, count] : author_counts) {
    if (count > best_count) {
      best_count = count;
      best_author = author;
    }
  }
  if (static_cast<double>(best_count) <
      (1.0 - options_.eps) * static_cast<double>(supporting)) {
    return detection;
  }
  detection.found = true;
  detection.author = best_author;
  detection.h_estimate = h_estimate;
  return detection;
}

std::vector<HeavyHitterReport> CashRegisterHeavyHitters::Report() const {
  std::map<AuthorId, std::vector<double>> detections;
  for (const Cell& cell : cells_) {
    const CellDetection detection = DetectCell(cell);
    if (detection.found) {
      detections[detection.author].push_back(detection.h_estimate);
    }
  }
  std::vector<HeavyHitterReport> reports;
  reports.reserve(detections.size());
  for (auto& [author, estimates] : detections) {
    std::sort(estimates.begin(), estimates.end());
    HeavyHitterReport report;
    report.author = author;
    report.h_estimate = estimates[estimates.size() / 2];
    report.detections = static_cast<int>(estimates.size());
    reports.push_back(report);
  }
  std::sort(reports.begin(), reports.end(),
            [](const HeavyHitterReport& a, const HeavyHitterReport& b) {
              return a.h_estimate > b.h_estimate ||
                     (a.h_estimate == b.h_estimate && a.author < b.author);
            });
  const std::size_t cap =
      static_cast<std::size_t>(std::ceil(1.0 / options_.eps));
  if (reports.size() > cap) reports.resize(cap);
  return reports;
}

SpaceUsage CashRegisterHeavyHitters::EstimateSpace() const {
  SpaceUsage usage;
  for (const auto& hash : row_hashes_) usage += hash.EstimateSpace();
  for (const Cell& cell : cells_) usage += cell.EstimateSpace();
  usage.bytes += sizeof(*this);
  return usage;
}

}  // namespace himpact
