#ifndef HIMPACT_HEAVY_BASELINE_H_
#define HIMPACT_HEAVY_BASELINE_H_

#include <cstdint>
#include <vector>

#include "sketch/space_saving.h"
#include "stream/expand.h"
#include "stream/types.h"

/// \file
/// Baselines the heavy-hitter experiments compare Algorithm 8 against:
///  - the exact (linear-space, per-author) H-index computation, which
///    defines ground truth for precision/recall;
///  - a count-based heavy hitter (SpaceSaving on total citations), which
///    the T10 experiment uses to show that "most cited" is not
///    "highest H-index" — the gap that motivates Section 4.

namespace himpact {

/// An author with its exact H-index.
struct AuthorHIndex {
  AuthorId author = 0;
  std::uint64_t h_index = 0;
};

/// Computes every author's exact H-index from a paper stream
/// (linear space; the ground truth for the heavy-hitter experiments).
std::vector<AuthorHIndex> ExactAuthorHIndices(const PaperStream& papers);

/// The total H-impact `h*(S) = sum_a h*(a)` of the stream.
std::uint64_t TotalHImpact(const PaperStream& papers);

/// Authors whose exact H-index is at least `eps * h*(S)` — the paper's
/// heavy-hitter set — sorted by descending H-index.
std::vector<AuthorHIndex> ExactHeavyHitters(const PaperStream& papers,
                                            double eps);

/// Count-based heavy-hitter baseline: SpaceSaving over each author's
/// *total* citations. Returns the top `k` authors by (approximate) total
/// citation count.
class CountHeavyHitterBaseline {
 public:
  /// Requires `capacity >= 1`.
  explicit CountHeavyHitterBaseline(std::size_t capacity)
      : summary_(capacity) {}

  /// Observes one paper: every listed author is credited `citations`.
  void AddPaper(const PaperTuple& paper) {
    for (const AuthorId author : paper.authors) {
      summary_.Update(author, paper.citations);
    }
  }

  /// Top authors by approximate total citations, descending.
  std::vector<HeavyEntry> Top(std::size_t k) const {
    std::vector<HeavyEntry> entries = summary_.Entries();
    if (entries.size() > k) entries.resize(k);
    return entries;
  }

  /// Space used by the summary.
  SpaceUsage EstimateSpace() const { return summary_.EstimateSpace(); }

 private:
  SpaceSaving summary_;
};

}  // namespace himpact

#endif  // HIMPACT_HEAVY_BASELINE_H_
