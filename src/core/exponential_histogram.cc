#include "core/exponential_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "hash/simd_kernels.h"

namespace himpact {
namespace {

constexpr std::uint64_t kExpHistogramMagic = 0x48494d5045585031ULL;  // HIMPEXP1

}  // namespace

StatusOr<ExponentialHistogramEstimator> ExponentialHistogramEstimator::Create(
    double eps, std::uint64_t max_h) {
  if (!(eps > 0.0 && eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (max_h < 1) {
    return Status::InvalidArgument("max_h must be >= 1");
  }
  return ExponentialHistogramEstimator(eps, max_h);
}

ExponentialHistogramEstimator::ExponentialHistogramEstimator(
    double eps, std::uint64_t max_h)
    : eps_(eps), max_h_(max_h), grid_(max_h, eps) {
  bucket_.assign(static_cast<std::size_t>(grid_.num_levels()), 0);
}

void ExponentialHistogramEstimator::Add(std::uint64_t value) {
  if (value == 0) return;  // contributes to no guess
  int level = grid_.LevelFloor(static_cast<double>(value));
  HIMPACT_DCHECK(level >= 0);
  // Values above the grid cap still count toward every guess.
  if (level >= grid_.num_levels()) level = grid_.num_levels() - 1;
  ++bucket_[static_cast<std::size_t>(level)];
}

void ExponentialHistogramEstimator::AddBatch(
    std::span<const std::uint64_t> values) {
  // Hoist the grid into locals and run a branchless last-power-<=x
  // search (conditional moves instead of the data-dependent branches of
  // GeometricGrid::LevelFloor, which mispredict ~50% on shuffled
  // values), four values interleaved so the independent searches
  // pipeline. The search window narrows on the same halving schedule
  // for every value, so one loop drives all four lanes. A zero value
  // resolves to lane level 0 and is excluded by its 0/1 increment —
  // bucket counters are sums, so the final state is byte-identical to
  // the scalar sequence.
  const double* const powers = grid_.powers().data();
  const std::size_t levels = static_cast<std::size_t>(grid_.num_levels());
  std::uint64_t* const buckets = bucket_.data();
  const std::size_t n = values.size();
#ifdef HIMPACT_HAVE_AVX2_KERNELS
  if (simd::Avx2Active() && SimdLevelForced()) {
    // Same halving schedule, gathered 8 lanes at a time; level indices
    // land in a tile and the 0/1 increments stay scalar (they touch the
    // shared bucket array). Forced-dispatch only: the serial gather
    // chain measures ~0.8x of the cmov search on gather-bound hosts
    // (BENCH f6_simd_kernels), so ambient dispatch keeps the scalar
    // search while tests and explicit HIMPACT_SIMD runs cover the
    // kernel. Both produce byte-identical bucket state.
    constexpr std::size_t kTile = 256;
    std::uint64_t tile[kTile];
    for (std::size_t base = 0; base < n; base += kTile) {
      const std::size_t m = std::min(kTile, n - base);
      simd::EhLevelSearchAvx2(powers, levels, values.data() + base, tile, m);
      for (std::size_t j = 0; j < m; ++j) {
        buckets[tile[j]] += values[base + j] != 0;
      }
    }
    return;
  }
#endif
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double x0 = static_cast<double>(values[i]);
    const double x1 = static_cast<double>(values[i + 1]);
    const double x2 = static_cast<double>(values[i + 2]);
    const double x3 = static_cast<double>(values[i + 3]);
    std::size_t b0 = 0;
    std::size_t b1 = 0;
    std::size_t b2 = 0;
    std::size_t b3 = 0;
    std::size_t len = levels;
    while (len > 1) {
      const std::size_t half = len >> 1;
      b0 += powers[b0 + half] <= x0 ? half : 0;
      b1 += powers[b1 + half] <= x1 ? half : 0;
      b2 += powers[b2 + half] <= x2 ? half : 0;
      b3 += powers[b3 + half] <= x3 ? half : 0;
      len -= half;
    }
    // powers[0] = 1, so any value >= 1 lands on a valid level and
    // values above the grid cap clamp to the top level, like Add().
    buckets[b0] += values[i] != 0;
    buckets[b1] += values[i + 1] != 0;
    buckets[b2] += values[i + 2] != 0;
    buckets[b3] += values[i + 3] != 0;
  }
  for (; i < n; ++i) {
    const double x = static_cast<double>(values[i]);
    std::size_t b = 0;
    std::size_t len = levels;
    while (len > 1) {
      const std::size_t half = len >> 1;
      b += powers[b + half] <= x ? half : 0;
      len -= half;
    }
    buckets[b] += values[i] != 0;
  }
}

double ExponentialHistogramEstimator::Estimate() const {
  // Walk the guesses from the largest down, accumulating the nested
  // counters c_i as suffix sums; accept the first satisfied guess.
  std::uint64_t suffix = 0;
  for (int i = grid_.num_levels() - 1; i >= 0; --i) {
    suffix += bucket_[static_cast<std::size_t>(i)];
    if (static_cast<double>(suffix) >= grid_.Power(i)) {
      return grid_.Power(i);
    }
  }
  return 0.0;
}

SpaceUsage ExponentialHistogramEstimator::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = bucket_.size();
  usage.bytes = sizeof(*this) +
                bucket_.capacity() * sizeof(std::uint64_t) +
                grid_.powers().capacity() * sizeof(double);
  return usage;
}

double ExponentialHistogramEstimator::TheoreticalSpaceWords() const {
  return 2.0 / eps_ *
         std::log2(static_cast<double>(std::max<std::uint64_t>(2, max_h_)));
}

void ExponentialHistogramEstimator::SerializeTo(ByteWriter& writer) const {
  writer.U64(kExpHistogramMagic);
  writer.F64(eps_);
  writer.U64(max_h_);
  writer.U64(bucket_.size());
  for (const std::uint64_t count : bucket_) writer.U64(count);
}

StatusOr<ExponentialHistogramEstimator>
ExponentialHistogramEstimator::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  double eps = 0.0;
  std::uint64_t max_h = 0;
  std::uint64_t count = 0;
  if (!reader.U64(&magic) || magic != kExpHistogramMagic) {
    return Status::InvalidArgument("not an ExponentialHistogram checkpoint");
  }
  if (!reader.F64(&eps) || !reader.U64(&max_h) || !reader.U64(&count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  StatusOr<ExponentialHistogramEstimator> estimator = Create(eps, max_h);
  if (!estimator.ok()) return estimator.status();
  if (count != estimator.value().bucket_.size()) {
    return Status::InvalidArgument("checkpoint counter count mismatch");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!reader.U64(&estimator.value().bucket_[i])) {
      return Status::InvalidArgument("truncated checkpoint counters");
    }
  }
  return estimator;
}

void ExponentialHistogramEstimator::Merge(
    const ExponentialHistogramEstimator& other) {
  HIMPACT_CHECK_MSG(eps_ == other.eps_ && max_h_ == other.max_h_,
                    "merging estimators with different parameters");
  for (std::size_t i = 0; i < bucket_.size(); ++i) {
    bucket_[i] += other.bucket_[i];
  }
}

std::uint64_t ExponentialHistogramEstimator::Counter(int level) const {
  HIMPACT_CHECK(level >= 0 && level < grid_.num_levels());
  std::uint64_t suffix = 0;
  for (int i = grid_.num_levels() - 1; i >= level; --i) {
    suffix += bucket_[static_cast<std::size_t>(i)];
  }
  return suffix;
}

}  // namespace himpact
