#include "core/exponential_histogram.h"

#include <cmath>

#include "common/check.h"

namespace himpact {
namespace {

constexpr std::uint64_t kExpHistogramMagic = 0x48494d5045585031ULL;  // HIMPEXP1

}  // namespace

StatusOr<ExponentialHistogramEstimator> ExponentialHistogramEstimator::Create(
    double eps, std::uint64_t max_h) {
  if (!(eps > 0.0 && eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (max_h < 1) {
    return Status::InvalidArgument("max_h must be >= 1");
  }
  return ExponentialHistogramEstimator(eps, max_h);
}

ExponentialHistogramEstimator::ExponentialHistogramEstimator(
    double eps, std::uint64_t max_h)
    : eps_(eps), max_h_(max_h), grid_(max_h, eps) {
  bucket_.assign(static_cast<std::size_t>(grid_.num_levels()), 0);
}

void ExponentialHistogramEstimator::Add(std::uint64_t value) {
  if (value == 0) return;  // contributes to no guess
  int level = grid_.LevelFloor(static_cast<double>(value));
  HIMPACT_DCHECK(level >= 0);
  // Values above the grid cap still count toward every guess.
  if (level >= grid_.num_levels()) level = grid_.num_levels() - 1;
  ++bucket_[static_cast<std::size_t>(level)];
}

double ExponentialHistogramEstimator::Estimate() const {
  // Walk the guesses from the largest down, accumulating the nested
  // counters c_i as suffix sums; accept the first satisfied guess.
  std::uint64_t suffix = 0;
  for (int i = grid_.num_levels() - 1; i >= 0; --i) {
    suffix += bucket_[static_cast<std::size_t>(i)];
    if (static_cast<double>(suffix) >= grid_.Power(i)) {
      return grid_.Power(i);
    }
  }
  return 0.0;
}

SpaceUsage ExponentialHistogramEstimator::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = bucket_.size();
  usage.bytes = sizeof(*this) +
                bucket_.capacity() * sizeof(std::uint64_t) +
                grid_.powers().capacity() * sizeof(double);
  return usage;
}

double ExponentialHistogramEstimator::TheoreticalSpaceWords() const {
  return 2.0 / eps_ *
         std::log2(static_cast<double>(std::max<std::uint64_t>(2, max_h_)));
}

void ExponentialHistogramEstimator::SerializeTo(ByteWriter& writer) const {
  writer.U64(kExpHistogramMagic);
  writer.F64(eps_);
  writer.U64(max_h_);
  writer.U64(bucket_.size());
  for (const std::uint64_t count : bucket_) writer.U64(count);
}

StatusOr<ExponentialHistogramEstimator>
ExponentialHistogramEstimator::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  double eps = 0.0;
  std::uint64_t max_h = 0;
  std::uint64_t count = 0;
  if (!reader.U64(&magic) || magic != kExpHistogramMagic) {
    return Status::InvalidArgument("not an ExponentialHistogram checkpoint");
  }
  if (!reader.F64(&eps) || !reader.U64(&max_h) || !reader.U64(&count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  StatusOr<ExponentialHistogramEstimator> estimator = Create(eps, max_h);
  if (!estimator.ok()) return estimator.status();
  if (count != estimator.value().bucket_.size()) {
    return Status::InvalidArgument("checkpoint counter count mismatch");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!reader.U64(&estimator.value().bucket_[i])) {
      return Status::InvalidArgument("truncated checkpoint counters");
    }
  }
  return estimator;
}

void ExponentialHistogramEstimator::Merge(
    const ExponentialHistogramEstimator& other) {
  HIMPACT_CHECK_MSG(eps_ == other.eps_ && max_h_ == other.max_h_,
                    "merging estimators with different parameters");
  for (std::size_t i = 0; i < bucket_.size(); ++i) {
    bucket_[i] += other.bucket_[i];
  }
}

std::uint64_t ExponentialHistogramEstimator::Counter(int level) const {
  HIMPACT_CHECK(level >= 0 && level < grid_.num_levels());
  std::uint64_t suffix = 0;
  for (int i = grid_.num_levels() - 1; i >= level; --i) {
    suffix += bucket_[static_cast<std::size_t>(i)];
  }
  return suffix;
}

}  // namespace himpact
