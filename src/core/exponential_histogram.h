#ifndef HIMPACT_CORE_EXPONENTIAL_HISTOGRAM_H_
#define HIMPACT_CORE_EXPONENTIAL_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/math_util.h"
#include "common/status.h"
#include "core/estimator.h"

/// \file
/// Algorithm 1 ("Exponential Histogram", Theorem 5): for every guess
/// `(1+eps)^i` of the H-index, count the stream elements that are
/// `>= (1+eps)^i`; report the greatest guess whose counter reached it.
///
/// Deterministic, one pass, `2/eps * log n` words, and
/// `(1-eps) h* <= h <= h*` on adversarially ordered aggregate streams.

namespace himpact {

/// Deterministic `(1-eps)`-approximate H-index over an aggregate stream.
class ExponentialHistogramEstimator final : public AggregateHIndexEstimator {
 public:
  /// Validates parameters and builds the estimator.
  ///
  /// `max_h` is the trivial upper bound for the H-index (the paper uses
  /// the vector dimension `n`); guesses cover `[1, max_h]`.
  /// Requires `0 < eps < 1` and `max_h >= 1`.
  static StatusOr<ExponentialHistogramEstimator> Create(double eps,
                                                        std::uint64_t max_h);

  /// Observes one publication's response count.
  ///
  /// Implementation note: Algorithm 1 increments every counter with
  /// threshold `<= value`; because the counters are nested
  /// (`c_i >= c_{i+1}`), we store per-level bucket counts and recover the
  /// counters as suffix sums at query time. The outputs are identical and
  /// the per-update cost drops from O(levels) to O(log levels).
  void Add(std::uint64_t value) override;

  /// Batched `Add`: identical final state to calling `Add` per element
  /// (the buckets are order-invariant sums), with the grid lookup inlined
  /// and hoisted out of the per-event virtual dispatch. Zero allocations.
  void AddBatch(std::span<const std::uint64_t> values);

  /// The greatest guess `(1+eps)^i` with `c_i >= (1+eps)^i` (0 if none).
  double Estimate() const override;

  /// Space: the counters plus the grid bookkeeping.
  SpaceUsage EstimateSpace() const override;

  /// The value the paper's space theorem predicts (`2/eps * log2(max_h)`
  /// words), for the T1 experiment's "bound vs measured" columns.
  double TheoreticalSpaceWords() const;

  /// The counter value `c_i` (number of elements >= `(1+eps)^i`).
  std::uint64_t Counter(int level) const;

  /// Merges another estimator built with identical `(eps, max_h)` into
  /// this one; afterwards this estimator reflects the concatenation of
  /// both streams (the counters are plain sums, so sharded streams can
  /// be estimated distributedly). Requires identical construction
  /// parameters.
  void Merge(const ExponentialHistogramEstimator& other);

  /// Appends a checkpoint of parameters and counters to `writer`.
  void SerializeTo(ByteWriter& writer) const;

  /// Restores an estimator from a `SerializeTo` checkpoint. Rejects
  /// truncated or foreign buffers with `kInvalidArgument`.
  static StatusOr<ExponentialHistogramEstimator> DeserializeFrom(
      ByteReader& reader);

  /// The guess grid in use.
  const GeometricGrid& grid() const { return grid_; }

 private:
  ExponentialHistogramEstimator(double eps, std::uint64_t max_h);

  double eps_;
  std::uint64_t max_h_;
  GeometricGrid grid_;
  // bucket_[i] = #elements whose floor grid level is exactly i;
  // c_i = sum of bucket_[i..].
  std::vector<std::uint64_t> bucket_;
};

}  // namespace himpact

#endif  // HIMPACT_CORE_EXPONENTIAL_HISTOGRAM_H_
