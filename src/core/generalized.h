#ifndef HIMPACT_CORE_GENERALIZED_H_
#define HIMPACT_CORE_GENERALIZED_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/math_util.h"
#include "common/status.h"
#include "core/estimator.h"

/// \file
/// Section 5 extension: generalized phi-impact indices.
///
/// The paper closes by noting its techniques "extend naturally" to
/// H-index variations "based on different functions of the number of
/// responses with respect to the number of publications, like k
/// publications with k^2 responses each". This module implements that
/// family: for a non-decreasing threshold function `phi`, the phi-index
/// of a vector `V` is the largest `k` such that at least `k` entries of
/// `V` are `>= phi(k)`.
///
///   - `phi(k) = k`      recovers the H-index;
///   - `phi(k) = k^2`    is the paper's quadratic example;
///   - `phi(k) = c * k`  is the linear-scaled family (wu-index for c=10).
///
/// The streaming estimator generalizes Algorithm 1: one counter per guess
/// `k_i = (1+eps)^i` counting the elements `>= phi(k_i)`, reporting the
/// greatest satisfied guess. The Theorem 5 proof carries over verbatim
/// because it only uses monotonicity of the guesses.

namespace himpact {

/// The threshold family: phi(k) = scale * k^power.
struct PhiSpec {
  double power = 1.0;
  double scale = 1.0;

  /// The H-index threshold phi(k) = k.
  static PhiSpec HIndex() { return PhiSpec{1.0, 1.0}; }

  /// The paper's quadratic example phi(k) = k^2.
  static PhiSpec Squared() { return PhiSpec{2.0, 1.0}; }

  /// The linear-scaled family phi(k) = c * k (wu-index uses c = 10).
  static PhiSpec Scaled(double c) { return PhiSpec{1.0, c}; }

  /// Evaluates phi(k).
  double operator()(double k) const;
};

/// Computes the exact phi-index of `values` (largest k with at least k
/// entries >= phi(k)). O(n log n) via sorting. Requires phi non-decreasing
/// (guaranteed by PhiSpec with power, scale >= 0).
std::uint64_t ExactPhiIndex(const std::vector<std::uint64_t>& values,
                            const PhiSpec& phi);

/// Streaming `(1-eps)`-approximate phi-index over an aggregate stream
/// (the Algorithm 1 generalization).
class PhiIndexEstimator final : public AggregateHIndexEstimator {
 public:
  /// Validates parameters; `max_k` bounds the index (the number of
  /// publications suffices). Requires `0 < eps < 1`, `max_k >= 1`,
  /// `phi.power >= 0`, `phi.scale > 0`.
  static StatusOr<PhiIndexEstimator> Create(double eps, std::uint64_t max_k,
                                            const PhiSpec& phi);

  /// Observes one publication's response count.
  void Add(std::uint64_t value) override;

  /// The greatest guess `(1+eps)^i` with at least that many elements
  /// `>= phi((1+eps)^i)` (0 if none).
  double Estimate() const override;

  /// Space: one counter per guess.
  SpaceUsage EstimateSpace() const override;

  /// The threshold family in use.
  const PhiSpec& phi() const { return phi_; }

  /// Appends a checkpoint of parameters and counters to `writer`.
  void SerializeTo(ByteWriter& writer) const;

  /// Restores an estimator from a `SerializeTo` checkpoint.
  static StatusOr<PhiIndexEstimator> DeserializeFrom(ByteReader& reader);

 private:
  PhiIndexEstimator(double eps, std::uint64_t max_k, const PhiSpec& phi);

  double eps_;
  std::uint64_t max_k_;
  PhiSpec phi_;
  GeometricGrid grid_;                   // guesses k_i = (1+eps)^i
  std::vector<double> thresholds_;       // phi(k_i)
  std::vector<std::uint64_t> counters_;  // c_i = #elements >= phi(k_i)
};

}  // namespace himpact

#endif  // HIMPACT_CORE_GENERALIZED_H_
