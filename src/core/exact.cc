#include "core/exact.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace himpact {

std::uint64_t ExactHIndex(const std::vector<std::uint64_t>& values) {
  const std::uint64_t n = values.size();
  if (n == 0) return 0;
  // buckets[c] = number of values equal to c, with values > n collapsed
  // into bucket n (they can never raise the H-index above n).
  std::vector<std::uint64_t> buckets(n + 1, 0);
  for (const std::uint64_t v : values) {
    ++buckets[std::min(v, n)];
  }
  std::uint64_t at_least = 0;
  for (std::uint64_t i = n;; --i) {
    at_least += buckets[i];
    if (at_least >= i) return i;
    if (i == 0) break;
  }
  return 0;
}

std::uint64_t HIndexSupportSize(const std::vector<std::uint64_t>& values) {
  const std::uint64_t h = ExactHIndex(values);
  if (h == 0) return 0;
  std::uint64_t support = 0;
  for (const std::uint64_t v : values) {
    if (v >= h) ++support;
  }
  return support;
}

void IncrementalExactHIndex::Add(std::uint64_t value) {
  const std::uint64_t h = heap_.size();
  if (value <= h) return;  // cannot raise the H-index above h
  heap_.push_back(value);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  // Now |heap_| = h + 1. The H-index becomes h + 1 iff all h + 1 retained
  // values are >= h + 1; otherwise the minimum (== some value <= h) can
  // never count toward a future, larger H-index and is evicted.
  if (heap_.front() < h + 1) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.pop_back();
  }
}

SpaceUsage IncrementalExactHIndex::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = heap_.size();
  usage.bytes = sizeof(*this) + heap_.capacity() * sizeof(std::uint64_t);
  return usage;
}

namespace {
constexpr std::uint64_t kIncrementalExactMagic = 0x48494d5049455831ULL;
constexpr std::uint64_t kExactCashRegisterMagic = 0x48494d5045435231ULL;
}  // namespace

void IncrementalExactHIndex::SerializeTo(ByteWriter& writer) const {
  writer.U64(kIncrementalExactMagic);
  writer.U64(heap_.size());
  for (const std::uint64_t value : heap_) writer.U64(value);
}

StatusOr<IncrementalExactHIndex> IncrementalExactHIndex::DeserializeFrom(
    ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kIncrementalExactMagic) {
    return Status::InvalidArgument("not an IncrementalExactHIndex checkpoint");
  }
  std::uint64_t size = 0;
  if (!reader.U64(&size)) {
    return Status::InvalidArgument("truncated IncrementalExactHIndex");
  }
  if (size * 8 > reader.remaining()) {
    return Status::InvalidArgument("corrupt IncrementalExactHIndex size");
  }
  IncrementalExactHIndex tracker;
  tracker.heap_.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    std::uint64_t value = 0;
    if (!reader.U64(&value)) {
      return Status::InvalidArgument("truncated IncrementalExactHIndex");
    }
    // Invariant: every retained value counts toward H-index == size.
    if (value < size) {
      return Status::InvalidArgument(
          "IncrementalExactHIndex heap entry below its H-index");
    }
    tracker.heap_.push_back(value);
  }
  if (!std::is_heap(tracker.heap_.begin(), tracker.heap_.end(),
                    std::greater<>())) {
    return Status::InvalidArgument("corrupt IncrementalExactHIndex heap");
  }
  return tracker;
}

void ExactCashRegisterHIndex::Update(std::uint64_t paper, std::int64_t delta) {
  HIMPACT_CHECK_MSG(delta >= 0, "cash-register updates must be non-negative");
  if (delta == 0) return;
  std::uint64_t& count = counts_[paper];
  const std::uint64_t old_count = count;
  count += static_cast<std::uint64_t>(delta);

  if (old_count > 0) {
    auto it = histogram_.find(old_count);
    if (--(it->second) == 0) histogram_.erase(it);
  }
  ++histogram_[count];

  // Track |{papers with count >= h+1}| across the threshold crossing.
  if (old_count < h_ + 1 && count >= h_ + 1) ++ge_h_plus_1_;

  // Advance h while h+1 papers reach h+1 citations. Each advance peels
  // the papers sitting exactly at the new h off the >= h+1 tally.
  while (ge_h_plus_1_ >= h_ + 1) {
    ++h_;
    const auto it = histogram_.find(h_);
    const std::uint64_t exactly_h = it == histogram_.end() ? 0 : it->second;
    HIMPACT_DCHECK(ge_h_plus_1_ >= exactly_h);
    ge_h_plus_1_ -= exactly_h;
  }
}

std::uint64_t ExactCashRegisterHIndex::Count(std::uint64_t paper) const {
  const auto it = counts_.find(paper);
  return it == counts_.end() ? 0 : it->second;
}

void ExactCashRegisterHIndex::SerializeTo(ByteWriter& writer) const {
  writer.U64(kExactCashRegisterMagic);
  writer.U64(counts_.size());
  // Sort for a deterministic byte stream (map iteration order is not
  // stable across standard libraries).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(
      counts_.begin(), counts_.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [paper, count] : sorted) {
    writer.U64(paper);
    writer.U64(count);
  }
}

StatusOr<ExactCashRegisterHIndex> ExactCashRegisterHIndex::DeserializeFrom(
    ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kExactCashRegisterMagic) {
    return Status::InvalidArgument("not an ExactCashRegisterHIndex checkpoint");
  }
  std::uint64_t num_papers = 0;
  if (!reader.U64(&num_papers)) {
    return Status::InvalidArgument("truncated ExactCashRegisterHIndex");
  }
  if (num_papers * 16 > reader.remaining()) {
    return Status::InvalidArgument("corrupt ExactCashRegisterHIndex size");
  }
  ExactCashRegisterHIndex tracker;
  for (std::uint64_t i = 0; i < num_papers; ++i) {
    std::uint64_t paper = 0;
    std::uint64_t count = 0;
    if (!reader.U64(&paper) || !reader.U64(&count)) {
      return Status::InvalidArgument("truncated ExactCashRegisterHIndex");
    }
    if (count == 0 ||
        count > static_cast<std::uint64_t>(
                    std::numeric_limits<std::int64_t>::max())) {
      return Status::InvalidArgument(
          "corrupt ExactCashRegisterHIndex paper count");
    }
    if (tracker.counts_.contains(paper)) {
      return Status::InvalidArgument(
          "duplicate paper in ExactCashRegisterHIndex checkpoint");
    }
    // Replaying each aggregate count through Update rebuilds the
    // histogram and the H-index incrementally — one code path to trust.
    tracker.Update(paper, static_cast<std::int64_t>(count));
  }
  return tracker;
}

SpaceUsage ExactCashRegisterHIndex::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = counts_.size() * 2 + histogram_.size() * 2 + 2;
  usage.bytes = sizeof(*this) +
                counts_.size() * sizeof(std::uint64_t) * 3 +
                histogram_.size() * sizeof(std::uint64_t) * 3;
  return usage;
}

}  // namespace himpact
