#ifndef HIMPACT_CORE_SLIDING_WINDOW_HINDEX_H_
#define HIMPACT_CORE_SLIDING_WINDOW_HINDEX_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/math_util.h"
#include "common/status.h"
#include "core/estimator.h"
#include "sketch/dgim.h"

/// \file
/// Section 5 extension: H-index over the most recent `window`
/// publications ("variations that take publication dates into account").
///
/// Construction: Algorithm 1's exponential histogram, with each guess
/// counter replaced by a DGIM sliding-window counter. The guess grid
/// contributes a `(1-eps_g)` factor and each DGIM count a `(1±eps_c)`
/// factor; with both set to `eps/3` the combined estimate satisfies
/// roughly `(1-eps) h*_W <= estimate <= (1+eps/3) h*_W`, where `h*_W` is
/// the exact H-index of the last `window` elements. Unlike the whole-
/// stream algorithms, a windowed estimate can slightly *overestimate*
/// (DGIM counts carry two-sided error).
///
/// Space: `O(levels * 1/eps * log window)` buckets — still exponentially
/// smaller than buffering the window.

namespace himpact {

/// Sliding-window `(1±eps)`-approximate H-index over an aggregate stream.
class SlidingWindowHIndex final : public AggregateHIndexEstimator {
 public:
  /// Validates parameters. `max_h` bounds the windowed H-index (the
  /// window size itself always works). Requires `0 < eps < 1`,
  /// `window >= 1`, `max_h >= 1`.
  static StatusOr<SlidingWindowHIndex> Create(double eps,
                                              std::uint64_t window,
                                              std::uint64_t max_h = 0);

  /// Observes the next publication's response count (advances the
  /// window by one position).
  void Add(std::uint64_t value) override;

  /// The H-index estimate over the last `window` elements.
  double Estimate() const override;

  /// Space across all per-guess DGIM counters.
  SpaceUsage EstimateSpace() const override;

  /// The window length.
  std::uint64_t window() const { return window_; }

  /// Appends a checkpoint (parameters plus every DGIM counter).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores an estimator from a `SerializeTo` checkpoint.
  static StatusOr<SlidingWindowHIndex> DeserializeFrom(ByteReader& reader);

 private:
  SlidingWindowHIndex(double eps, std::uint64_t window, std::uint64_t max_h);

  double eps_;
  std::uint64_t window_;
  GeometricGrid grid_;                 // guesses, grown by eps/3
  std::vector<DgimCounter> counters_;  // windowed c_i per guess
};

}  // namespace himpact

#endif  // HIMPACT_CORE_SLIDING_WINDOW_HINDEX_H_
