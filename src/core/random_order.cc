#include "core/random_order.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace himpact {
namespace {

double PaperBeta(double eps, std::uint64_t n, const RandomOrderOptions& options) {
  if (options.beta_override > 0.0) return options.beta_override;
  const double loglog =
      std::max(1.0, std::log2(std::log2(static_cast<double>(
                        std::max<std::uint64_t>(16, n)))));
  return options.beta_scale * 150.0 / (eps * eps * eps) * loglog;
}

}  // namespace

StatusOr<RandomOrderEstimator> RandomOrderEstimator::Create(
    double eps, std::uint64_t n, const RandomOrderOptions& options) {
  if (!(eps > 0.0 && eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (n < 1) {
    return Status::InvalidArgument("n must be >= 1");
  }
  if (options.beta_scale <= 0.0) {
    return Status::InvalidArgument("beta_scale must be > 0");
  }
  StatusOr<ShiftingWindowEstimator> fallback =
      ShiftingWindowEstimator::Create(eps);
  if (!fallback.ok()) return fallback.status();
  return RandomOrderEstimator(eps, n, options, std::move(fallback).value());
}

RandomOrderEstimator::RandomOrderEstimator(double eps, std::uint64_t n,
                                           const RandomOrderOptions& options,
                                           ShiftingWindowEstimator fallback)
    : eps_(eps),
      n_(n),
      beta_(PaperBeta(eps, n, options)),
      fallback_(std::move(fallback)) {
  // First window: guess 0 with length beta * (1+eps)^0.
  window_end_ = static_cast<std::uint64_t>(std::max(1.0, std::round(beta_)));
  guess_ = 0;
}

void RandomOrderEstimator::Add(std::uint64_t value) {
  fallback_.Add(value);
  if (sampler_done_) return;

  ++position_;
  const double v = static_cast<double>(value);
  const double threshold = static_cast<double>(n_) /
                           std::pow(1.0 + eps_, guess_);
  const double threshold_next = threshold / (1.0 + eps_);
  if (v >= threshold) ++count_;
  if (v >= threshold_next) ++count_next_;

  if (position_ < window_end_) return;

  // End of the window for the current guess: apply the acceptance test
  // with x = beta (2+eps)/(1+eps) (Algorithm 4, step 8).
  const double x = beta_ * (2.0 + eps_) / (1.0 + eps_);
  const double c = static_cast<double>(count_);
  if (c >= (1.0 - eps_ / 3.0) * x && c <= (1.0 + eps_) * x) {
    accepted_guess_ = threshold;
    sampler_done_ = true;
    return;
  }
  // Move to the next (smaller) guess: the carried counter c' already
  // holds this window's tally at the next threshold, giving the overlap
  // of Lemma 11's union window.
  count_ = count_next_;
  count_next_ = 0;
  ++guess_;
  const double next_window = beta_ * std::pow(1.0 + eps_, guess_);
  const double next_threshold = static_cast<double>(n_) /
                                std::pow(1.0 + eps_, guess_);
  if (next_threshold < beta_ || position_ >= n_) {
    // Guesses below beta belong to the Algorithm 2 fallback regime.
    sampler_done_ = true;
    return;
  }
  window_end_ = position_ + static_cast<std::uint64_t>(
                                std::max(1.0, std::round(next_window)));
}

namespace {
constexpr std::uint64_t kRandomOrderMagic = 0x48494d52414e4431ULL;
}  // namespace

void RandomOrderEstimator::SerializeTo(ByteWriter& writer) const {
  writer.U64(kRandomOrderMagic);
  writer.F64(eps_);
  writer.U64(n_);
  writer.F64(beta_);
  writer.U64(position_);
  writer.U64(window_end_);
  writer.I64(guess_);
  writer.U64(count_);
  writer.U64(count_next_);
  writer.F64(accepted_guess_);
  writer.U64(sampler_done_ ? 1 : 0);
  fallback_.SerializeTo(writer);
}

StatusOr<RandomOrderEstimator> RandomOrderEstimator::DeserializeFrom(
    ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kRandomOrderMagic) {
    return Status::InvalidArgument("not a RandomOrderEstimator checkpoint");
  }
  double eps = 0.0;
  std::uint64_t n = 0;
  double beta = 0.0;
  std::uint64_t position = 0;
  std::uint64_t window_end = 0;
  std::int64_t guess = 0;
  std::uint64_t count = 0;
  std::uint64_t count_next = 0;
  double accepted_guess = 0.0;
  std::uint64_t sampler_done = 0;
  if (!reader.F64(&eps) || !reader.U64(&n) || !reader.F64(&beta) ||
      !reader.U64(&position) || !reader.U64(&window_end) ||
      !reader.I64(&guess) || !reader.U64(&count) ||
      !reader.U64(&count_next) || !reader.F64(&accepted_guess) ||
      !reader.U64(&sampler_done)) {
    return Status::InvalidArgument(
        "truncated RandomOrderEstimator checkpoint");
  }
  if (!(eps > 0.0) || !(eps < 1.0) || n < 1 || !(beta > 0.0) ||
      !std::isfinite(beta) || sampler_done > 1 || guess < 0 ||
      guess > (std::int64_t{1} << 32)) {
    return Status::InvalidArgument("corrupt RandomOrderEstimator parameters");
  }
  RandomOrderOptions options;
  options.beta_override = beta;
  StatusOr<RandomOrderEstimator> estimator = Create(eps, n, options);
  if (!estimator.ok()) return estimator.status();
  StatusOr<ShiftingWindowEstimator> fallback =
      ShiftingWindowEstimator::DeserializeFrom(reader);
  if (!fallback.ok()) return fallback.status();
  RandomOrderEstimator& out = estimator.value();
  out.position_ = position;
  out.window_end_ = window_end;
  out.guess_ = static_cast<int>(guess);
  out.count_ = count;
  out.count_next_ = count_next;
  out.accepted_guess_ = accepted_guess;
  out.sampler_done_ = sampler_done == 1;
  out.fallback_ = std::move(fallback).value();
  return estimator;
}

double RandomOrderEstimator::Estimate() const {
  return std::max(accepted_guess_, fallback_.Estimate());
}

SpaceUsage RandomOrderEstimator::EstimateSpace() const {
  SpaceUsage usage = fallback_.EstimateSpace();
  usage.words += SamplerSpaceWords();
  usage.bytes += sizeof(*this) - sizeof(fallback_);
  return usage;
}

}  // namespace himpact
