#ifndef HIMPACT_CORE_EXACT_H_
#define HIMPACT_CORE_EXACT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/space.h"
#include "common/status.h"
#include "core/estimator.h"

/// \file
/// Exact H-index computation (Definition 1): the offline reference every
/// streaming estimator is measured against, plus linear-space *online*
/// exact maintainers for both stream models. The latter are the
/// store-everything baselines whose space the paper's algorithms beat.

namespace himpact {

/// Computes `h*(V)` of Definition 1 for the values in `V`.
///
/// Runs in O(n) time and O(n) extra space via counting (no sort): bucket
/// values capped at `n`, then walk candidate `i` downward accumulating
/// `|{j : V[j] >= i}|` until it reaches `i`.
std::uint64_t ExactHIndex(const std::vector<std::uint64_t>& values);

/// Returns the H-index support size `|H(V)| = |{i : V[i] >= h*(V)}|`
/// (Definition 1's support set), used by tests for invariants.
std::uint64_t HIndexSupportSize(const std::vector<std::uint64_t>& values);

/// Exact online H-index over an aggregate stream (insert-only).
///
/// Maintains a min-heap of the `h` values currently counted toward the
/// H-index: O(h*) space, O(log h*) amortized per insert. The H-index of
/// an insert-only stream is monotone non-decreasing, which is what makes
/// the evicted values safely forgettable.
class IncrementalExactHIndex final : public AggregateHIndexEstimator {
 public:
  IncrementalExactHIndex() = default;

  void Add(std::uint64_t value) override;
  double Estimate() const override {
    return static_cast<double>(HIndex());
  }
  SpaceUsage EstimateSpace() const override;

  /// The exact H-index of the values added so far.
  std::uint64_t HIndex() const { return heap_.size(); }

  /// Appends a checkpoint (the retained min-heap verbatim).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a tracker from a `SerializeTo` checkpoint.
  static StatusOr<IncrementalExactHIndex> DeserializeFrom(ByteReader& reader);

 private:
  std::vector<std::uint64_t> heap_;  // min-heap, |heap_| == current h
};

/// Exact online H-index over a cash-register stream (positive updates).
///
/// Maintains per-paper counts plus a count histogram so the H-index is
/// updated in O(1) amortized per event. Space is Theta(#distinct papers).
class ExactCashRegisterHIndex final : public CashRegisterHIndexEstimator {
 public:
  ExactCashRegisterHIndex() = default;

  /// Requires `delta >= 0` (cash-register model).
  void Update(std::uint64_t paper, std::int64_t delta) override;
  double Estimate() const override {
    return static_cast<double>(HIndex());
  }
  SpaceUsage EstimateSpace() const override;

  /// The exact H-index of the aggregated counts so far.
  std::uint64_t HIndex() const { return h_; }

  /// The current citation count of `paper` (0 if never seen).
  std::uint64_t Count(std::uint64_t paper) const;

  /// Number of distinct papers seen.
  std::uint64_t NumPapers() const { return counts_.size(); }

  /// Appends a checkpoint (per-paper counts, sorted by paper id; the
  /// histogram and H-index are re-derived on restore).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a tracker from a `SerializeTo` checkpoint.
  static StatusOr<ExactCashRegisterHIndex> DeserializeFrom(ByteReader& reader);

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
  std::unordered_map<std::uint64_t, std::uint64_t> histogram_;  // count -> #papers
  std::uint64_t h_ = 0;
  std::uint64_t ge_h_plus_1_ = 0;  // #papers with count >= h_ + 1
};

}  // namespace himpact

#endif  // HIMPACT_CORE_EXACT_H_
