#include "core/quantile_baseline.h"

namespace himpact {

StatusOr<QuantileHIndexBaseline> QuantileHIndexBaseline::Create(
    std::size_t k, std::uint64_t seed) {
  if (k < 8) {
    return Status::InvalidArgument("k must be >= 8");
  }
  return QuantileHIndexBaseline(k, seed);
}

QuantileHIndexBaseline::QuantileHIndexBaseline(std::size_t k,
                                               std::uint64_t seed)
    : sketch_(k, seed) {}

void QuantileHIndexBaseline::Add(std::uint64_t value) { sketch_.Add(value); }

double QuantileHIndexBaseline::Estimate() const {
  // #{v >= k} is non-increasing in k while the identity grows, so the
  // crossing point is found by binary search on k in [0, n].
  std::uint64_t lo = 0;
  std::uint64_t hi = sketch_.n();
  while (lo < hi) {
    const std::uint64_t mid = (lo + hi + 1) / 2;
    if (sketch_.CountGreaterEqual(mid) >= static_cast<double>(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return static_cast<double>(lo);
}

SpaceUsage QuantileHIndexBaseline::EstimateSpace() const {
  return sketch_.EstimateSpace();
}

}  // namespace himpact
