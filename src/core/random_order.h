#ifndef HIMPACT_CORE_RANDOM_ORDER_H_
#define HIMPACT_CORE_RANDOM_ORDER_H_

#include <cstdint>

#include "common/status.h"
#include "core/estimator.h"
#include "core/shifting_window.h"

/// \file
/// Algorithms 3 + 4 ("Random Order Stream", Theorem 9): on a uniformly
/// randomly ordered aggregate stream of known length `n`, the H-index can
/// be `(1±eps)`-estimated with essentially constant space.
///
/// Two subroutines run in parallel:
///  - Algorithm 4 (Sampling Without Replacement) walks guesses
///    `n/(1+eps)^i` from the largest down. Guess `i` is scored on a
///    stream window of length `beta (1+eps)^i`; the carried counter pair
///    `(c, c')` makes consecutive windows overlap exactly as in the
///    paper. A guess is accepted when its count lands in
///    `[(1-eps/3) x, (1+eps) x]` with `x = beta (2+eps)/(1+eps)`.
///    This uses six words and succeeds (w.p. `1-delta`) whenever
///    `h* >= beta / eps`.
///  - Algorithm 2 (shifting window) covers the complementary case
///    `h* < beta / eps`, where each of its words only needs
///    `log(beta/eps)` bits.
/// The final estimate is the max of the two (Algorithm 3).
///
/// The paper's `beta = 150 eps^-3 log log n` is very conservative;
/// `RandomOrderOptions::beta_scale` lets experiments shrink it (T3
/// studies when the guarantee actually kicks in).

namespace himpact {

/// Tuning knobs for `RandomOrderEstimator`.
struct RandomOrderOptions {
  /// Failure probability target (enters beta only through its role in the
  /// concentration bound; the paper folds it into the constant).
  double delta = 0.1;

  /// Multiplier on the paper's beta. 1.0 reproduces the paper.
  double beta_scale = 1.0;

  /// If positive, overrides beta entirely (used by tests).
  double beta_override = 0.0;
};

/// `(1±eps)` H-index estimator for random-order aggregate streams of a
/// known length.
class RandomOrderEstimator final : public AggregateHIndexEstimator {
 public:
  /// Validates parameters and builds the estimator for a stream of
  /// exactly `n` elements. Requires `0 < eps < 1`, `n >= 1`.
  static StatusOr<RandomOrderEstimator> Create(
      double eps, std::uint64_t n, const RandomOrderOptions& options = {});

  /// Observes the next stream element. Requires at most `n` calls.
  void Add(std::uint64_t value) override;

  /// `max(h1, h2)` per Algorithm 3.
  double Estimate() const override;

  /// Space of both subroutines. The Algorithm 4 part alone is
  /// `SamplerSpaceWords()` = 6 words.
  SpaceUsage EstimateSpace() const override;

  /// The six words of Algorithm 4 (Theorem 9, first bullet).
  std::uint64_t SamplerSpaceWords() const { return 6; }

  /// The beta in effect.
  double beta() const { return beta_; }

  /// The guess accepted by Algorithm 4, or 0 if none (yet).
  double sampler_estimate() const { return accepted_guess_; }

  /// The fallback estimate from Algorithm 2.
  double fallback_estimate() const { return fallback_.Estimate(); }

  /// Appends a checkpoint (parameters + the six sampler words + the
  /// Algorithm 2 fallback state).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores an estimator from a `SerializeTo` checkpoint.
  static StatusOr<RandomOrderEstimator> DeserializeFrom(ByteReader& reader);

 private:
  RandomOrderEstimator(double eps, std::uint64_t n,
                       const RandomOrderOptions& options,
                       ShiftingWindowEstimator fallback);

  double eps_;
  std::uint64_t n_;
  double beta_;

  // --- Algorithm 4 state (the "six words") ---
  std::uint64_t position_ = 0;       // k: elements consumed
  std::uint64_t window_end_ = 0;     // r: end of the current window
  int guess_ = 0;                    // i: current guess index
  std::uint64_t count_ = 0;          // c
  std::uint64_t count_next_ = 0;     // c'
  double accepted_guess_ = 0.0;      // accepted n/(1+eps)^i, 0 if none
  bool sampler_done_ = false;

  // --- Algorithm 2 fallback for small h* ---
  ShiftingWindowEstimator fallback_;
};

}  // namespace himpact

#endif  // HIMPACT_CORE_RANDOM_ORDER_H_
