#include "core/shifting_window.h"

#include <cmath>

#include "common/check.h"

namespace himpact {

StatusOr<ShiftingWindowEstimator> ShiftingWindowEstimator::Create(
    double eps, double internal_eps_divisor) {
  if (!(eps > 0.0 && eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (!(internal_eps_divisor >= 1.0)) {
    return Status::InvalidArgument("internal_eps_divisor must be >= 1");
  }
  return ShiftingWindowEstimator(eps, internal_eps_divisor);
}

ShiftingWindowEstimator::ShiftingWindowEstimator(double eps,
                                                 double internal_eps_divisor)
    : eps_(eps), internal_eps_(eps / internal_eps_divisor) {
  // Window of x = ceil(log_{1+eps'}(1/eps')) + 1 consecutive counters
  // (the set X of Algorithm 2). The +1 keeps both ends of Claim 7's
  // bracket in view.
  const int r = static_cast<int>(
      std::ceil(std::log(1.0 / internal_eps_) / std::log1p(internal_eps_)));
  const int window = r + 1;
  double power = 1.0;
  for (int j = 0; j < window; ++j) {
    counters_.push_back(0);
    powers_.push_back(power);
    power *= (1.0 + internal_eps_);
  }
}

double ShiftingWindowEstimator::PowerOf(int level) const {
  HIMPACT_DCHECK(level >= base_level_ &&
                 level < base_level_ + static_cast<int>(counters_.size()));
  return powers_[static_cast<std::size_t>(level - base_level_)];
}

void ShiftingWindowEstimator::Add(std::uint64_t value) {
  if (value == 0) return;
  const double v = static_cast<double>(value);
  // Thresholds grow with the window index, so the satisfied guesses form
  // a prefix of the window.
  for (std::size_t j = 0; j < counters_.size(); ++j) {
    if (v < powers_[j]) break;
    ++counters_[j];
  }
  // Shift while the second counter certifies its guess: the lowest guess
  // is then obsolete and a new top guess opens (Algorithm 2, step 3).
  while (counters_.size() >= 2 && static_cast<double>(counters_[1]) >= powers_[1]) {
    counters_.pop_front();
    powers_.pop_front();
    ++base_level_;
    ++num_shifts_;
    counters_.push_back(0);
    powers_.push_back(powers_.back() * (1.0 + internal_eps_));
  }
}

void ShiftingWindowEstimator::AddBatch(std::span<const std::uint64_t> values) {
  // Order-dependent (shifts change which counters later elements touch):
  // apply in order. The prefix increment walks deque iterators instead of
  // `operator[]` — each subscript re-derives the block/offset pair, while
  // the iterators advance in place. Same operations on the same state in
  // the same order, so the result is byte-identical to scalar Add calls.
  for (const std::uint64_t value : values) {
    if (value == 0) continue;
    const double v = static_cast<double>(value);
    auto counter = counters_.begin();
    auto power = powers_.begin();
    for (; counter != counters_.end(); ++counter, ++power) {
      if (v < *power) break;
      ++*counter;
    }
    while (counters_.size() >= 2 &&
           static_cast<double>(counters_[1]) >= powers_[1]) {
      counters_.pop_front();
      powers_.pop_front();
      ++base_level_;
      ++num_shifts_;
      counters_.push_back(0);
      powers_.push_back(powers_.back() * (1.0 + internal_eps_));
    }
  }
}

double ShiftingWindowEstimator::Estimate() const {
  for (std::size_t j = counters_.size(); j-- > 0;) {
    if (static_cast<double>(counters_[j]) >= powers_[j]) {
      return powers_[j];
    }
  }
  return 0.0;
}

SpaceUsage ShiftingWindowEstimator::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = counters_.size() + 3;  // counters + base/shift bookkeeping
  usage.bytes = sizeof(*this) +
                counters_.size() * sizeof(std::uint64_t) +
                powers_.size() * sizeof(double);
  return usage;
}

double ShiftingWindowEstimator::TheoreticalSpaceWords() const {
  return 6.0 / eps_ * std::log2(3.0 / eps_);
}

namespace {
constexpr std::uint64_t kShiftingWindowMagic = 0x48494d5053574e31ULL;
}  // namespace

void ShiftingWindowEstimator::SerializeTo(ByteWriter& writer) const {
  writer.U64(kShiftingWindowMagic);
  writer.F64(eps_);
  writer.F64(internal_eps_);
  writer.I64(base_level_);
  writer.U64(num_shifts_);
  writer.U64(counters_.size());
  for (const std::uint64_t count : counters_) writer.U64(count);
  // Powers are serialized verbatim so restored thresholds are
  // bit-identical to the live instance (they are built incrementally and
  // would drift if recomputed via pow()).
  for (const double power : powers_) writer.F64(power);
}

StatusOr<ShiftingWindowEstimator> ShiftingWindowEstimator::DeserializeFrom(
    ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kShiftingWindowMagic) {
    return Status::InvalidArgument("not a ShiftingWindow checkpoint");
  }
  double eps = 0.0;
  double internal_eps = 0.0;
  std::int64_t base_level = 0;
  std::uint64_t num_shifts = 0;
  std::uint64_t size = 0;
  if (!reader.F64(&eps) || !reader.F64(&internal_eps) ||
      !reader.I64(&base_level) || !reader.U64(&num_shifts) ||
      !reader.U64(&size)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  if (!(eps > 0.0 && eps < 1.0) || !(internal_eps > 0.0) ||
      internal_eps > eps || base_level < 0) {
    return Status::InvalidArgument("corrupt checkpoint parameters");
  }
  StatusOr<ShiftingWindowEstimator> estimator =
      Create(eps, eps / internal_eps);
  if (!estimator.ok()) return estimator.status();
  ShiftingWindowEstimator& out = estimator.value();
  if (size != out.counters_.size()) {
    return Status::InvalidArgument("checkpoint window size mismatch");
  }
  out.internal_eps_ = internal_eps;
  out.base_level_ = static_cast<int>(base_level);
  out.num_shifts_ = num_shifts;
  for (std::uint64_t i = 0; i < size; ++i) {
    if (!reader.U64(&out.counters_[i])) {
      return Status::InvalidArgument("truncated checkpoint counters");
    }
  }
  for (std::uint64_t i = 0; i < size; ++i) {
    if (!reader.F64(&out.powers_[i])) {
      return Status::InvalidArgument("truncated checkpoint powers");
    }
  }
  return estimator;
}

}  // namespace himpact
