#include "core/cash_register.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {
namespace {

std::size_t NumSamplers(double eps, double delta, std::uint64_t universe,
                        const CashRegisterOptions& options) {
  if (options.num_samplers_override > 0) return options.num_samplers_override;
  const double base = 3.0 / (eps * eps) * std::log(2.0 / delta);
  if (options.mode == CashRegisterMode::kAdditive) {
    return static_cast<std::size_t>(std::ceil(base));
  }
  return static_cast<std::size_t>(
      std::ceil(base * static_cast<double>(universe) / options.beta));
}

}  // namespace

StatusOr<CashRegisterEstimator> CashRegisterEstimator::Create(
    double eps, double delta, std::uint64_t universe, std::uint64_t seed,
    const CashRegisterOptions& options) {
  if (!(eps > 0.0 && eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (universe < 1) {
    return Status::InvalidArgument("universe must be >= 1");
  }
  if (options.mode == CashRegisterMode::kMultiplicative &&
      !(options.beta > 0.0)) {
    return Status::InvalidArgument(
        "multiplicative mode requires a positive beta lower bound");
  }
  if (!(options.sampler_delta > 0.0 && options.sampler_delta < 1.0)) {
    return Status::InvalidArgument("sampler_delta must be in (0, 1)");
  }
  const std::size_t x = NumSamplers(eps, delta, universe, options);
  if (x < 1) {
    return Status::InvalidArgument("sampler count must be >= 1");
  }
  CashRegisterEstimator estimator(eps, delta, universe, seed, 0);
  estimator.sampler_delta_ = options.sampler_delta;
  std::uint64_t sampler_seed = SplitMix64(seed ^ 0xb5297a4d3f84d5b5ULL);
  estimator.samplers_.reserve(x);
  for (std::size_t i = 0; i < x; ++i) {
    sampler_seed = SplitMix64(sampler_seed);
    estimator.samplers_.emplace_back(universe, options.sampler_delta,
                                     sampler_seed);
  }
  return estimator;
}

CashRegisterEstimator::CashRegisterEstimator(double eps, double delta,
                                             std::uint64_t universe,
                                             std::uint64_t seed,
                                             std::size_t num_samplers)
    : eps_(eps),
      delta_(delta),
      universe_(universe),
      seed_(seed),
      sampler_delta_(0.05),
      distinct_(std::min(eps, 0.5), delta,
                SplitMix64(seed ^ 0x94d049bb133111ebULL)) {
  samplers_.reserve(num_samplers);
}

void CashRegisterEstimator::Update(std::uint64_t paper, std::int64_t delta) {
  HIMPACT_CHECK(paper < universe_);
  if (delta == 0) return;
  for (L0Sampler& sampler : samplers_) {
    sampler.Update(paper, delta);
  }
  distinct_.Add(paper);
}

void CashRegisterEstimator::UpdateBatch(std::span<const CitationEvent> events,
                                        BatchArena& arena) {
  // Validate and compact once, then run sampler-outer loops: each
  // l0-sampler hashes the whole batch while its level structures are in
  // cache, instead of every sampler being touched per event. All
  // sub-sketches are linear, so reordering across events per sampler
  // leaves the serialized state identical to the scalar sequence.
  std::uint64_t* const papers = arena.U64(events.size());
  std::int64_t* const deltas = arena.I64(events.size());
  std::size_t m = 0;
  for (const CitationEvent& event : events) {
    HIMPACT_CHECK(event.paper < universe_);
    if (event.delta == 0) continue;
    papers[m] = event.paper;
    deltas[m] = event.delta;
    ++m;
  }
  if (m == 0) return;
  for (L0Sampler& sampler : samplers_) {
    sampler.UpdateBatch(papers, deltas, m);
  }
  distinct_.AddBatch(papers, m);
}

void CashRegisterEstimator::Merge(const CashRegisterEstimator& other) {
  HIMPACT_CHECK_MSG(eps_ == other.eps_ && universe_ == other.universe_ &&
                        seed_ == other.seed_ &&
                        samplers_.size() == other.samplers_.size(),
                    "merging CashRegisterEstimators with different parameters");
  for (std::size_t i = 0; i < samplers_.size(); ++i) {
    samplers_[i].Merge(other.samplers_[i]);
  }
  distinct_.Merge(other.distinct_);
}

double CashRegisterEstimator::Estimate() const {
  // Draw from every sampler; failed instances simply shrink the sample.
  std::vector<std::int64_t> values;
  values.reserve(samplers_.size());
  for (const L0Sampler& sampler : samplers_) {
    const StatusOr<L0Sample> sample = sampler.Sample();
    if (sample.ok()) values.push_back(sample.value().value);
  }
  last_success_ = values.size();
  if (values.empty()) return 0.0;

  const double y = distinct_.Estimate();
  const double x = static_cast<double>(values.size());

  // r_i = |{samples with value >= (1+eps)^i}| * y / x; accept the largest
  // guess with r_i >= (1+eps)^i (1 - eps) (Algorithm 5, step 6).
  std::sort(values.begin(), values.end());
  const GeometricGrid grid(universe_, eps_);
  double best = 0.0;
  for (int i = 0; i < grid.num_levels(); ++i) {
    const double threshold = grid.Power(i);
    const auto first_ge = std::lower_bound(
        values.begin(), values.end(),
        static_cast<std::int64_t>(std::ceil(threshold)));
    const double r_i =
        static_cast<double>(values.end() - first_ge) * y / x;
    if (r_i >= threshold * (1.0 - eps_)) {
      best = threshold;
    }
  }
  return best;
}

namespace {
constexpr std::uint64_t kCashRegisterMagic = 0x48494d5043415348ULL;
}  // namespace

void CashRegisterEstimator::SerializeTo(ByteWriter& writer) const {
  writer.U64(kCashRegisterMagic);
  writer.F64(eps_);
  writer.F64(delta_);
  writer.U64(universe_);
  writer.U64(seed_);
  writer.F64(sampler_delta_);
  writer.U64(samplers_.size());
  for (const L0Sampler& sampler : samplers_) {
    sampler.SerializeStateTo(writer);
  }
  distinct_.SerializeStateTo(writer);
}

StatusOr<CashRegisterEstimator> CashRegisterEstimator::DeserializeFrom(
    ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kCashRegisterMagic) {
    return Status::InvalidArgument("not a CashRegisterEstimator checkpoint");
  }
  double eps = 0.0;
  double delta = 0.0;
  std::uint64_t universe = 0;
  std::uint64_t seed = 0;
  double sampler_delta = 0.0;
  std::uint64_t num_samplers = 0;
  if (!reader.F64(&eps) || !reader.F64(&delta) || !reader.U64(&universe) ||
      !reader.U64(&seed) || !reader.F64(&sampler_delta) ||
      !reader.U64(&num_samplers)) {
    return Status::InvalidArgument(
        "truncated CashRegisterEstimator checkpoint");
  }
  // Create() re-validates eps/delta/universe; bound the extra fields that
  // drive allocation before any sampler is constructed. Each sampler's
  // serialized state carries at least one word per level, so the sampler
  // count must be consistent with the remaining bytes.
  if (!(eps > 1e-3) || !(eps < 1.0) || !(delta > 1e-12) || !(delta < 1.0) ||
      universe < 1 || !(sampler_delta > 1e-9) || !(sampler_delta < 1.0)) {
    return Status::InvalidArgument(
        "corrupt CashRegisterEstimator parameters");
  }
  const double per_sampler_cells =
      [&] {
        // floor() mirrors L0Sampler's size_t truncation of sparsity.
        const double sparsity = std::floor(
            std::max(8.0, 2.0 * std::log2(1.0 / sampler_delta) + 4.0));
        const double rows = std::max(
            2.0, std::ceil(std::log2(sparsity / (sampler_delta / 2.0))));
        const double levels = static_cast<double>(
            CeilLog2(std::max<std::uint64_t>(2, universe)) + 1);
        return levels * rows * 2.0 * sparsity;
      }();
  if (num_samplers < 1 ||
      static_cast<double>(num_samplers) * per_sampler_cells * 32.0 >
          static_cast<double>(reader.remaining())) {
    return Status::InvalidArgument(
        "CashRegisterEstimator checkpoint smaller than its declared "
        "geometry");
  }
  CashRegisterOptions options;
  options.num_samplers_override = static_cast<std::size_t>(num_samplers);
  options.sampler_delta = sampler_delta;
  StatusOr<CashRegisterEstimator> estimator =
      Create(eps, delta, universe, seed, options);
  if (!estimator.ok()) return estimator.status();
  for (L0Sampler& sampler : estimator.value().samplers_) {
    const Status status = sampler.DeserializeStateFrom(reader);
    if (!status.ok()) return status;
  }
  const Status status =
      estimator.value().distinct_.DeserializeStateFrom(reader);
  if (!status.ok()) return status;
  return estimator;
}

SpaceUsage CashRegisterEstimator::EstimateSpace() const {
  SpaceUsage usage = distinct_.EstimateSpace();
  for (const L0Sampler& sampler : samplers_) {
    usage += sampler.EstimateSpace();
  }
  usage.bytes += sizeof(*this);
  return usage;
}

}  // namespace himpact
