#ifndef HIMPACT_CORE_CASH_REGISTER_H_
#define HIMPACT_CORE_CASH_REGISTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/batch.h"
#include "common/math_util.h"
#include "common/status.h"
#include "core/estimator.h"
#include "sketch/distinct.h"
#include "sketch/l0_sampler.h"
#include "stream/types.h"

/// \file
/// Algorithms 5/6 ("Unbiased Sampling", Theorem 14): H-index estimation
/// over a *cash-register* stream, where responses arrive unaggregated as
/// updates `(paper, +z)` to the citation vector `V`.
///
/// The estimator keeps `x` independent l0-samplers over `V` plus an
/// `(1±eps)` distinct-count estimate `y` of `|support(V)|`. At query
/// time, each sampler yields a near-uniform non-zero coordinate and its
/// value; for every guess `(1+eps)^i`, the fraction of samples with value
/// `>= (1+eps)^i`, scaled by `y`, estimates the number of papers with
/// that many citations, and the largest self-consistent guess is the
/// H-index estimate (Algorithm 5, steps 3–7).
///
/// Theorem 14 gives two regimes, selected by `CashRegisterOptions::mode`:
///  - additive (no lower bound on `h*`): `x = 3 eps^-2 ln(2/delta)`
///    samplers, error `<= eps * n`;
///  - multiplicative (requires `h* >= beta`):
///    `x = 3 eps^-2 (n/beta) ln(2/delta)` samplers, error `<= eps * h*`.

namespace himpact {

/// Which Theorem 14 error regime to configure for.
enum class CashRegisterMode {
  kAdditive,
  kMultiplicative,
};

/// Tuning knobs for `CashRegisterEstimator`.
struct CashRegisterOptions {
  CashRegisterMode mode = CashRegisterMode::kAdditive;

  /// Lower bound `beta <= h*` (multiplicative mode only).
  double beta = 0.0;

  /// If positive, overrides the number of l0-samplers (tests/ablations).
  std::size_t num_samplers_override = 0;

  /// Per-sampler failure probability (Lemma 4's delta).
  double sampler_delta = 0.05;
};

/// Randomized H-index estimator for cash-register streams.
class CashRegisterEstimator final : public CashRegisterHIndexEstimator {
 public:
  /// Validates parameters and builds the estimator over papers
  /// `[0, universe)`. Requires `0 < eps < 1`, `0 < delta < 1`,
  /// `universe >= 1`, and `beta > 0` in multiplicative mode.
  static StatusOr<CashRegisterEstimator> Create(
      double eps, double delta, std::uint64_t universe, std::uint64_t seed,
      const CashRegisterOptions& options = {});

  /// Observes `delta` new responses for `paper`.
  /// Requires `paper < universe`.
  void Update(std::uint64_t paper, std::int64_t delta) override;

  /// Batched `Update`: splits the events once into parallel paper/delta
  /// arrays borrowed from `arena` (validating and dropping zero-delta
  /// events up front), then walks each l0-sampler over the whole batch so
  /// a sampler's levels stay hot across events. Every sub-sketch is
  /// linear, so the final state is byte-identical to the scalar sequence.
  /// Zero allocations once the arena has warmed up.
  void UpdateBatch(std::span<const CitationEvent> events, BatchArena& arena);

  /// Merges another estimator built with identical parameters and seed
  /// (every sub-sketch is linear); afterwards this estimator reflects
  /// both shards' update streams. Requires identical construction
  /// arguments.
  void Merge(const CashRegisterEstimator& other);

  /// The Algorithm 5 estimate (0 when no sample qualifies).
  double Estimate() const override;

  /// Space across all samplers and the distinct counter.
  SpaceUsage EstimateSpace() const override;

  /// Number of l0-sampler instances (`x` in the paper).
  std::size_t num_samplers() const { return samplers_.size(); }

  /// Number of samplers that produced a sample at the last `Estimate()`
  /// call (exposed for the T4/T5 experiments).
  std::size_t last_successful_samples() const { return last_success_; }

  /// The distinct-count estimate `y`.
  double DistinctEstimate() const { return distinct_.Estimate(); }

  /// Appends a checkpoint (construction parameters + sampler and distinct
  /// counter states). The samplers themselves are re-derived from the
  /// seed chain on restore; only their mutable cells ride along.
  void SerializeTo(ByteWriter& writer) const;

  /// Restores an estimator from a `SerializeTo` checkpoint.
  static StatusOr<CashRegisterEstimator> DeserializeFrom(ByteReader& reader);

 private:
  CashRegisterEstimator(double eps, double delta, std::uint64_t universe,
                        std::uint64_t seed, std::size_t num_samplers);

  double eps_;
  double delta_;
  std::uint64_t universe_;
  std::uint64_t seed_;     // construction seed (merge compatibility check)
  double sampler_delta_;   // per-sampler delta (checkpoint reconstruction)
  std::vector<L0Sampler> samplers_;
  DistinctCounter distinct_;
  mutable std::size_t last_success_ = 0;
};

}  // namespace himpact

#endif  // HIMPACT_CORE_CASH_REGISTER_H_
