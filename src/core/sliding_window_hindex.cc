#include "core/sliding_window_hindex.h"

#include "common/check.h"

namespace himpact {

StatusOr<SlidingWindowHIndex> SlidingWindowHIndex::Create(
    double eps, std::uint64_t window, std::uint64_t max_h) {
  if (!(eps > 0.0 && eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (window < 1) {
    return Status::InvalidArgument("window must be >= 1");
  }
  if (max_h == 0) max_h = window;  // the window bounds the H-index
  return SlidingWindowHIndex(eps, window, max_h);
}

SlidingWindowHIndex::SlidingWindowHIndex(double eps, std::uint64_t window,
                                         std::uint64_t max_h)
    : eps_(eps), window_(window), grid_(max_h, eps / 3.0) {
  counters_.reserve(static_cast<std::size_t>(grid_.num_levels()));
  for (int i = 0; i < grid_.num_levels(); ++i) {
    counters_.emplace_back(window, eps / 3.0);
  }
}

void SlidingWindowHIndex::Add(std::uint64_t value) {
  // Every DGIM counter must tick each position so expiry stays in sync;
  // the qualifying guesses (a prefix of the grid) receive a one.
  const int level =
      value == 0 ? -1 : grid_.LevelFloor(static_cast<double>(value));
  for (int i = 0; i < grid_.num_levels(); ++i) {
    counters_[static_cast<std::size_t>(i)].Add(i <= level);
  }
}

double SlidingWindowHIndex::Estimate() const {
  for (int i = grid_.num_levels() - 1; i >= 0; --i) {
    if (counters_[static_cast<std::size_t>(i)].Estimate() >= grid_.Power(i)) {
      return grid_.Power(i);
    }
  }
  return 0.0;
}

namespace {
constexpr std::uint64_t kSlidingWindowMagic = 0x48494d5053574831ULL;
}  // namespace

void SlidingWindowHIndex::SerializeTo(ByteWriter& writer) const {
  writer.U64(kSlidingWindowMagic);
  writer.F64(eps_);
  writer.U64(window_);
  writer.U64(static_cast<std::uint64_t>(grid_.num_levels()));
  writer.U64(counters_.size());
  for (const DgimCounter& counter : counters_) {
    counter.SerializeTo(writer);
  }
}

StatusOr<SlidingWindowHIndex> SlidingWindowHIndex::DeserializeFrom(
    ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kSlidingWindowMagic) {
    return Status::InvalidArgument("not a SlidingWindowHIndex checkpoint");
  }
  double eps = 0.0;
  std::uint64_t window = 0, levels = 0, count = 0;
  if (!reader.F64(&eps) || !reader.U64(&window) || !reader.U64(&levels) ||
      !reader.U64(&count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  // The grid cap is implied by the counter count: the constructor built
  // one DGIM per level, so rebuild with max_h derived from the grid.
  StatusOr<SlidingWindowHIndex> estimator = Create(eps, window);
  if (!estimator.ok()) return estimator.status();
  SlidingWindowHIndex& out = estimator.value();
  if (levels != static_cast<std::uint64_t>(out.grid_.num_levels()) ||
      count != out.counters_.size()) {
    return Status::InvalidArgument("checkpoint level count mismatch");
  }
  out.counters_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    StatusOr<DgimCounter> counter = DgimCounter::DeserializeFrom(reader);
    if (!counter.ok()) return counter.status();
    out.counters_.push_back(std::move(counter).value());
  }
  return estimator;
}

SpaceUsage SlidingWindowHIndex::EstimateSpace() const {
  SpaceUsage usage;
  for (const DgimCounter& counter : counters_) {
    usage += counter.EstimateSpace();
  }
  usage.bytes += sizeof(*this);
  return usage;
}

}  // namespace himpact
