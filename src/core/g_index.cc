#include "core/g_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace himpact {

std::uint64_t ExactGIndex(const std::vector<std::uint64_t>& values) {
  if (values.empty()) return 0;
  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::uint64_t best = 0;
  std::uint64_t prefix = 0;
  for (std::uint64_t g = 1; g <= sorted.size(); ++g) {
    prefix += sorted[g - 1];
    if (prefix >= g * g) best = g;
    // Once the prefix is behind g^2 and the remaining values are below
    // g, no larger g can catch up: each further step adds < g to the
    // prefix but > g to g^2.
    if (prefix < g * g && sorted[g - 1] < g) break;
  }
  return best;
}

StatusOr<GIndexEstimator> GIndexEstimator::Create(double eps,
                                                  std::uint64_t max_value) {
  if (!(eps > 0.0 && eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (max_value < 1) {
    return Status::InvalidArgument("max_value must be >= 1");
  }
  return GIndexEstimator(eps, max_value);
}

GIndexEstimator::GIndexEstimator(double eps, std::uint64_t max_value)
    : eps_(eps), max_value_(max_value), grid_(max_value, eps) {
  count_.assign(static_cast<std::size_t>(grid_.num_levels()), 0);
  sum_.assign(static_cast<std::size_t>(grid_.num_levels()), 0);
}

void GIndexEstimator::Add(std::uint64_t value) {
  ++num_papers_;
  if (value == 0) return;
  int level = grid_.LevelFloor(static_cast<double>(value));
  HIMPACT_DCHECK(level >= 0);
  if (level >= grid_.num_levels()) level = grid_.num_levels() - 1;
  ++count_[static_cast<std::size_t>(level)];
  sum_[static_cast<std::size_t>(level)] += value;
}

double GIndexEstimator::Estimate() const {
  // Walk buckets from the most-cited down, reconstructing the sorted
  // prefix sum S(g); inside a bucket every value is approximated by the
  // bucket average. The predicate S(g) >= g^2 is monotone-decreasing in
  // g's tail, so per bucket a binary search finds the largest satisfied
  // g in its count range.
  double best = 0.0;
  double prefix_count = 0.0;
  double prefix_sum = 0.0;
  for (int i = grid_.num_levels() - 1; i >= 0; --i) {
    const std::uint64_t bucket_count = count_[static_cast<std::size_t>(i)];
    if (bucket_count == 0) continue;
    const double average =
        static_cast<double>(sum_[static_cast<std::size_t>(i)]) /
        static_cast<double>(bucket_count);
    const double lo = prefix_count;
    const double hi = prefix_count + static_cast<double>(bucket_count);
    // S(g) = prefix_sum + (g - lo) * average for g in (lo, hi].
    std::uint64_t g_lo = static_cast<std::uint64_t>(lo) + 1;
    std::uint64_t g_hi = static_cast<std::uint64_t>(hi);
    while (g_lo <= g_hi) {
      const std::uint64_t mid = g_lo + (g_hi - g_lo) / 2;
      const double s =
          prefix_sum + (static_cast<double>(mid) - lo) * average;
      if (s >= static_cast<double>(mid) * static_cast<double>(mid)) {
        best = std::max(best, static_cast<double>(mid));
        g_lo = mid + 1;
      } else {
        g_hi = mid - 1;
      }
    }
    prefix_count = hi;
    prefix_sum += static_cast<double>(sum_[static_cast<std::size_t>(i)]);
  }
  // Zero-citation papers extend the sorted prefix without adding to the
  // sum: g may reach min(num_papers, sqrt(total)), as in {100, 0, ..., 0}
  // where g = 10 with one cited paper.
  const double zero_extended =
      std::min(static_cast<double>(num_papers_),
               std::floor(std::sqrt(prefix_sum)));
  if (zero_extended > prefix_count) best = std::max(best, zero_extended);
  return best;
}

SpaceUsage GIndexEstimator::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = count_.size() + sum_.size();
  usage.bytes = sizeof(*this) +
                count_.capacity() * sizeof(std::uint64_t) +
                sum_.capacity() * sizeof(std::uint64_t);
  return usage;
}

}  // namespace himpact
