#ifndef HIMPACT_CORE_SHIFTING_WINDOW_H_
#define HIMPACT_CORE_SHIFTING_WINDOW_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/estimator.h"

/// \file
/// Algorithm 2 ("Shifting Window", Theorem 6): the exponential histogram
/// of Algorithm 1 does not need all `log_{1+eps} n` counters live at
/// once — only a window of `O(1/eps * log 1/eps)` consecutive guesses
/// around the current H-index. When the second-lowest counter certifies
/// its guess, the window shifts up by one and a fresh counter is opened
/// at the top.
///
/// A counter opened late misses stream elements seen before its creation;
/// Claims 7–8 bound that loss by an eps-fraction of the H-index provided
/// the internal grid parameter is `eps/3`, which is why Theorem 6's space
/// is `6/eps * log(3/eps)` words for a `(1-eps)` guarantee. The space no
/// longer depends on the stream length at all.

namespace himpact {

/// Deterministic `(1-eps)`-approximate H-index in `O(1/eps log 1/eps)`
/// words over an adversarially ordered aggregate stream.
class ShiftingWindowEstimator final : public AggregateHIndexEstimator {
 public:
  /// Validates parameters and builds the estimator.
  ///
  /// `internal_eps_divisor` is the Claim 7/8 replacement factor (3 in the
  /// paper); the A1 ablation sweeps it to show why plain `eps` is not
  /// enough. Requires `0 < eps < 1`, `internal_eps_divisor >= 1`.
  static StatusOr<ShiftingWindowEstimator> Create(
      double eps, double internal_eps_divisor = 3.0);

  /// Observes one publication's response count.
  void Add(std::uint64_t value) override;

  /// Batched `Add`. The window shifts depend on the order counters fill,
  /// so the loop stays strictly in-order; the win over per-event calls is
  /// skipping the virtual dispatch and letting the compiler keep the
  /// window deques hot. Byte-identical to the scalar sequence.
  void AddBatch(std::span<const std::uint64_t> values);

  /// The greatest in-window guess whose counter reached it (0 if the
  /// stream had no positive element).
  double Estimate() const override;

  /// Space: the shifting window of counters plus O(1) bookkeeping.
  SpaceUsage EstimateSpace() const override;

  /// Theorem 6's bound, `6/eps * log2(3/eps)` words (T1 experiment).
  double TheoreticalSpaceWords() const;

  /// The lowest grid level currently held in the window.
  int window_base() const { return base_level_; }

  /// Number of counters in the window.
  std::size_t window_size() const { return counters_.size(); }

  /// Total number of window shifts performed (exposed for tests).
  std::uint64_t num_shifts() const { return num_shifts_; }

  /// Appends a checkpoint of parameters and window state to `writer`.
  void SerializeTo(ByteWriter& writer) const;

  /// Restores an estimator from a `SerializeTo` checkpoint.
  static StatusOr<ShiftingWindowEstimator> DeserializeFrom(ByteReader& reader);

 private:
  ShiftingWindowEstimator(double eps, double internal_eps_divisor);

  /// `(1+eps')^level` for the internal grid.
  double PowerOf(int level) const;

  double eps_;           // user-facing guarantee parameter
  double internal_eps_;  // grid growth, eps / internal_eps_divisor
  int base_level_ = 0;   // grid level of counters_.front()
  std::uint64_t num_shifts_ = 0;
  std::deque<std::uint64_t> counters_;  // levels base_level_ .. base+size-1
  std::deque<double> powers_;           // (1+eps')^level, parallel to counters_
};

}  // namespace himpact

#endif  // HIMPACT_CORE_SHIFTING_WINDOW_H_
