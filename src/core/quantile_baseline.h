#ifndef HIMPACT_CORE_QUANTILE_BASELINE_H_
#define HIMPACT_CORE_QUANTILE_BASELINE_H_

#include <cstdint>

#include "common/status.h"
#include "core/estimator.h"
#include "sketch/kll.h"

/// \file
/// Generic-machinery baseline: H-index from a quantile (rank) sketch.
///
/// The H-index is the fixed point of the tail-rank function,
/// `h* = max{k : #{v >= k} >= k}`, so any rank sketch can estimate it by
/// a search over `k`. The catch — and the reason the paper's tailored
/// algorithms matter — is the error model: a KLL rank query errs by
/// `+- eps_r * n`, so the recovered fixed point errs *additively* in `n`,
/// while Theorems 5/6 give a multiplicative `(1-eps)` guarantee in
/// comparable space. The A4 experiment measures this gap.

namespace himpact {

/// H-index via a KLL rank sketch (additive-error baseline).
class QuantileHIndexBaseline final : public AggregateHIndexEstimator {
 public:
  /// `k` is the KLL accuracy knob (rank error ~ 1.77 n / k).
  /// Requires `k >= 8`.
  static StatusOr<QuantileHIndexBaseline> Create(std::size_t k,
                                                 std::uint64_t seed);

  /// Observes one publication's response count.
  void Add(std::uint64_t value) override;

  /// The largest `k` with estimated `#{v >= k} >= k` (binary search over
  /// the sketch's monotone tail-count).
  double Estimate() const override;

  /// Space used by the sketch.
  SpaceUsage EstimateSpace() const override;

  /// The underlying sketch (for the A4 experiment's introspection).
  const KllSketch& sketch() const { return sketch_; }

 private:
  QuantileHIndexBaseline(std::size_t k, std::uint64_t seed);

  KllSketch sketch_;
};

}  // namespace himpact

#endif  // HIMPACT_CORE_QUANTILE_BASELINE_H_
