#include "core/generalized.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace himpact {

double PhiSpec::operator()(double k) const {
  return scale * std::pow(k, power);
}

std::uint64_t ExactPhiIndex(const std::vector<std::uint64_t>& values,
                            const PhiSpec& phi) {
  if (values.empty()) return 0;
  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  // After sorting descending, at least k entries are >= phi(k) iff
  // sorted[k-1] >= phi(k); the predicate is monotone in k, so scan for
  // the largest satisfied k.
  std::uint64_t best = 0;
  for (std::uint64_t k = 1; k <= sorted.size(); ++k) {
    if (static_cast<double>(sorted[k - 1]) >= phi(static_cast<double>(k))) {
      best = k;
    } else {
      break;
    }
  }
  return best;
}

StatusOr<PhiIndexEstimator> PhiIndexEstimator::Create(double eps,
                                                      std::uint64_t max_k,
                                                      const PhiSpec& phi) {
  if (!(eps > 0.0 && eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (max_k < 1) {
    return Status::InvalidArgument("max_k must be >= 1");
  }
  if (!(phi.power >= 0.0)) {
    return Status::InvalidArgument("phi.power must be >= 0");
  }
  if (!(phi.scale > 0.0)) {
    return Status::InvalidArgument("phi.scale must be > 0");
  }
  return PhiIndexEstimator(eps, max_k, phi);
}

PhiIndexEstimator::PhiIndexEstimator(double eps, std::uint64_t max_k,
                                     const PhiSpec& phi)
    : eps_(eps), max_k_(max_k), phi_(phi), grid_(max_k, eps) {
  thresholds_.reserve(static_cast<std::size_t>(grid_.num_levels()));
  for (int i = 0; i < grid_.num_levels(); ++i) {
    thresholds_.push_back(phi_(grid_.Power(i)));
  }
  counters_.assign(thresholds_.size(), 0);
}

void PhiIndexEstimator::Add(std::uint64_t value) {
  if (value == 0) return;
  // Thresholds are non-decreasing, so the satisfied guesses form a
  // prefix; binary-search its end and bump those counters. (The counter
  // loop is O(levels) worst case but the prefix is usually short for
  // super-linear phi.)
  const double v = static_cast<double>(value);
  const auto end = std::upper_bound(thresholds_.begin(), thresholds_.end(), v);
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(end - thresholds_.begin()); ++i) {
    ++counters_[i];
  }
}

double PhiIndexEstimator::Estimate() const {
  for (std::size_t i = counters_.size(); i-- > 0;) {
    if (static_cast<double>(counters_[i]) >=
        grid_.Power(static_cast<int>(i))) {
      return grid_.Power(static_cast<int>(i));
    }
  }
  return 0.0;
}

namespace {
constexpr std::uint64_t kPhiIndexMagic = 0x48494d5050484931ULL;
}  // namespace

void PhiIndexEstimator::SerializeTo(ByteWriter& writer) const {
  writer.U64(kPhiIndexMagic);
  writer.F64(eps_);
  writer.U64(max_k_);
  writer.F64(phi_.power);
  writer.F64(phi_.scale);
  writer.U64(counters_.size());
  for (const std::uint64_t count : counters_) writer.U64(count);
}

StatusOr<PhiIndexEstimator> PhiIndexEstimator::DeserializeFrom(
    ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kPhiIndexMagic) {
    return Status::InvalidArgument("not a PhiIndexEstimator checkpoint");
  }
  double eps = 0.0;
  std::uint64_t max_k = 0;
  PhiSpec phi;
  std::uint64_t count = 0;
  if (!reader.F64(&eps) || !reader.U64(&max_k) || !reader.F64(&phi.power) ||
      !reader.F64(&phi.scale) || !reader.U64(&count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  StatusOr<PhiIndexEstimator> estimator = Create(eps, max_k, phi);
  if (!estimator.ok()) return estimator.status();
  if (count != estimator.value().counters_.size()) {
    return Status::InvalidArgument("checkpoint counter count mismatch");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!reader.U64(&estimator.value().counters_[i])) {
      return Status::InvalidArgument("truncated checkpoint counters");
    }
  }
  return estimator;
}

SpaceUsage PhiIndexEstimator::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = counters_.size();
  usage.bytes = sizeof(*this) +
                counters_.capacity() * sizeof(std::uint64_t) +
                thresholds_.capacity() * sizeof(double);
  return usage;
}

}  // namespace himpact
