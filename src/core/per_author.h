#ifndef HIMPACT_CORE_PER_AUTHOR_H_
#define HIMPACT_CORE_PER_AUTHOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/space.h"
#include "stream/types.h"

/// \file
/// Per-author H-index tracking over a paper stream (the "computing
/// H-index for each author" extension of Section 2.3): one aggregate
/// estimator instance per author, created on first sight.
///
/// This is the natural deployment of Algorithms 1/2 when the stream
/// interleaves many users: per-author space is the estimator's bound,
/// total space is `#authors x` that bound. (Finding only the top authors
/// *without* per-author state is what Section 4's heavy hitters solve.)

namespace himpact {

/// Tracks one aggregate H-index estimator per author.
///
/// `Estimator` must provide `Add(uint64_t)`, `Estimate() const`, and
/// `EstimateSpace() const` (any `AggregateHIndexEstimator`, or the exact
/// `IncrementalExactHIndex`).
template <typename Estimator>
class PerAuthorHIndex {
 public:
  /// `factory` builds a fresh estimator for a newly seen author.
  explicit PerAuthorHIndex(std::function<Estimator()> factory)
      : factory_(std::move(factory)) {}

  /// Observes one paper: its citation count feeds every listed author.
  void AddPaper(const PaperTuple& paper) {
    for (const AuthorId author : paper.authors) {
      Get(author).Add(paper.citations);
    }
  }

  /// Observes one (author, count) pair directly.
  void Add(AuthorId author, std::uint64_t citations) {
    Get(author).Add(citations);
  }

  /// The estimate for `author` (0 if never seen).
  double Estimate(AuthorId author) const {
    const auto it = estimators_.find(author);
    return it == estimators_.end() ? 0.0 : it->second.Estimate();
  }

  /// Number of distinct authors tracked.
  std::size_t num_authors() const { return estimators_.size(); }

  /// The `k` authors with the largest estimates, descending.
  std::vector<std::pair<AuthorId, double>> TopK(std::size_t k) const {
    std::vector<std::pair<AuthorId, double>> all;
    all.reserve(estimators_.size());
    for (const auto& [author, estimator] : estimators_) {
      all.emplace_back(author, estimator.Estimate());
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      return a.second > b.second || (a.second == b.second && a.first < b.first);
    });
    if (all.size() > k) all.resize(k);
    return all;
  }

  /// Total space across all per-author estimators.
  SpaceUsage EstimateSpace() const {
    SpaceUsage usage;
    for (const auto& [author, estimator] : usage_range()) {
      (void)author;
      usage += estimator.EstimateSpace();
    }
    return usage;
  }

 private:
  const std::unordered_map<AuthorId, Estimator>& usage_range() const {
    return estimators_;
  }

  Estimator& Get(AuthorId author) {
    const auto it = estimators_.find(author);
    if (it != estimators_.end()) return it->second;
    return estimators_.emplace(author, factory_()).first->second;
  }

  std::function<Estimator()> factory_;
  std::unordered_map<AuthorId, Estimator> estimators_;
};

}  // namespace himpact

#endif  // HIMPACT_CORE_PER_AUTHOR_H_
