#ifndef HIMPACT_CORE_G_INDEX_H_
#define HIMPACT_CORE_G_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/math_util.h"
#include "common/status.h"
#include "core/estimator.h"

/// \file
/// The g-index (Egghe 2006) as a streaming extension: the largest `g`
/// such that the `g` most-cited papers have at least `g^2` citations in
/// total. Where Section 5's `phi(k) = k^2` variant thresholds papers
/// *individually*, the g-index thresholds the *running total* of the top
/// papers — it rewards a few blockbusters in a way the H-index cannot.
///
/// Streaming construction: the Algorithm 1 value grid again, but each
/// bucket keeps a (count, sum) pair. At query time the buckets are
/// walked from the top; within a bucket, values are interpolated at the
/// bucket average (all values in a bucket agree to a `(1+eps)` factor,
/// so the reconstructed top-`g` sum is a `(1 +/- eps)`-approximation and
/// the recovered index a `(1 - O(eps))`-approximation of g*).

namespace himpact {

/// Computes the exact g-index of `values` (sorted-prefix definition,
/// `g <= n`; no zero-padding variant).
std::uint64_t ExactGIndex(const std::vector<std::uint64_t>& values);

/// Streaming `(1 - O(eps))`-approximate g-index over an aggregate stream.
class GIndexEstimator final : public AggregateHIndexEstimator {
 public:
  /// `max_value` bounds the citation counts the grid must cover (values
  /// above it are clamped into the top bucket; the g-index itself is
  /// additionally capped by the paper count). Requires `0 < eps < 1`,
  /// `max_value >= 1`.
  static StatusOr<GIndexEstimator> Create(double eps,
                                          std::uint64_t max_value);

  /// Observes one publication's citation count.
  void Add(std::uint64_t value) override;

  /// The largest (interpolated, floored) `g` whose reconstructed top-`g`
  /// citation total reaches `g^2`.
  double Estimate() const override;

  /// Space: two words per grid level.
  SpaceUsage EstimateSpace() const override;

  /// Number of papers observed (the cap on `g`).
  std::uint64_t num_papers() const { return num_papers_; }

 private:
  GIndexEstimator(double eps, std::uint64_t max_value);

  double eps_;
  std::uint64_t max_value_;
  std::uint64_t num_papers_ = 0;
  GeometricGrid grid_;
  std::vector<std::uint64_t> count_;  // per exact grid level
  std::vector<std::uint64_t> sum_;    // per exact grid level
};

}  // namespace himpact

#endif  // HIMPACT_CORE_G_INDEX_H_
