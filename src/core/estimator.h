#ifndef HIMPACT_CORE_ESTIMATOR_H_
#define HIMPACT_CORE_ESTIMATOR_H_

#include <cstdint>

#include "common/space.h"

/// \file
/// Common interfaces for H-index estimators, so tests and the bench
/// harness can sweep algorithms generically.

namespace himpact {

/// An estimator consuming an aggregate stream: one response count per
/// publication, in arbitrary (or random) arrival order.
class AggregateHIndexEstimator {
 public:
  virtual ~AggregateHIndexEstimator() = default;

  /// Observes one publication's response count.
  virtual void Add(std::uint64_t value) = 0;

  /// Current H-index estimate (0 when nothing qualifies).
  virtual double Estimate() const = 0;

  /// Space used by the estimator state.
  virtual SpaceUsage EstimateSpace() const = 0;
};

/// An estimator consuming a cash-register stream of `(paper, +delta)`
/// response updates.
class CashRegisterHIndexEstimator {
 public:
  virtual ~CashRegisterHIndexEstimator() = default;

  /// Observes `delta` new responses for `paper`.
  virtual void Update(std::uint64_t paper, std::int64_t delta) = 0;

  /// Current H-index estimate (0 when nothing qualifies).
  virtual double Estimate() const = 0;

  /// Space used by the estimator state.
  virtual SpaceUsage EstimateSpace() const = 0;
};

}  // namespace himpact

#endif  // HIMPACT_CORE_ESTIMATOR_H_
