#ifndef HIMPACT_CORE_ESTIMATOR_H_
#define HIMPACT_CORE_ESTIMATOR_H_

#include <cstdint>

#include "common/space.h"

/// \file
/// Common interfaces for H-index estimators, so tests and the bench
/// harness can sweep algorithms generically.
///
/// Contracts every implementation honors (and the sharded engine in
/// `engine/sharded_engine.h` relies on):
///
/// * **Single-writer**: `Add`/`Update` are not thread-safe; an instance
///   is owned by exactly one thread at a time. Concurrency comes from
///   running one instance per shard and merging (see below), never from
///   sharing an instance.
/// * **Infallible hot path**: ingestion never fails and never throws;
///   all parameter validation happens in the `Create` factory.
/// * **Mergeability is per-type, not part of this interface.** Concrete
///   estimators that support sharding expose
///   `Merge(const T& other)` — requiring identical construction
///   parameters and seeds on both sides — plus
///   `SerializeTo(ByteWriter&)` / `static DeserializeFrom(ByteReader&)`
///   for checkpoints. The catalogue of which merges are exact, which
///   are `(1±ε)`-preserving, and which types cannot merge at all is in
///   `docs/ALGORITHMS.md` ("Mergeability").

namespace himpact {

/// An estimator consuming an aggregate stream: one response count per
/// publication, in arbitrary (or random) arrival order.
class AggregateHIndexEstimator {
 public:
  virtual ~AggregateHIndexEstimator() = default;

  /// Observes one publication's response count. Infallible; not
  /// thread-safe (single-writer contract, see file comment).
  virtual void Add(std::uint64_t value) = 0;

  /// Current H-index estimate (0 when nothing qualifies).
  virtual double Estimate() const = 0;

  /// Space used by the estimator state.
  virtual SpaceUsage EstimateSpace() const = 0;
};

/// An estimator consuming a cash-register stream of `(paper, +delta)`
/// response updates.
class CashRegisterHIndexEstimator {
 public:
  virtual ~CashRegisterHIndexEstimator() = default;

  /// Observes `delta` new responses for `paper`. Infallible; not
  /// thread-safe. All updates for one paper must reach the same
  /// instance — this is why the sharded engine partitions cash-register
  /// streams by paper id.
  virtual void Update(std::uint64_t paper, std::int64_t delta) = 0;

  /// Current H-index estimate (0 when nothing qualifies).
  virtual double Estimate() const = 0;

  /// Space used by the estimator state.
  virtual SpaceUsage EstimateSpace() const = 0;
};

}  // namespace himpact

#endif  // HIMPACT_CORE_ESTIMATOR_H_
