#ifndef HIMPACT_RANDOM_ZIPF_H_
#define HIMPACT_RANDOM_ZIPF_H_

#include <cstdint>
#include <vector>

#include "random/rng.h"

/// \file
/// Heavy-tailed integer distributions used to synthesize citation counts
/// and cascade sizes: bounded Zipf, discrete Pareto, and a discretized
/// log-normal. Citation-count data is famously heavy-tailed, which is why
/// the paper's motivating settings (citations, retweets, likes) stress the
/// exponential-bucketing machinery; these samplers generate such streams.

namespace himpact {

/// Samples from the Zipf distribution on `{1, ..., n}` with exponent `s`:
/// `P[X = k] proportional to k^-s`.
///
/// Uses rejection-inversion (Hörmann–Derflinger), so construction is O(1)
/// and sampling is O(1) expected regardless of `n`.
class ZipfSampler {
 public:
  /// Requires `n >= 1` and `s > 0`.
  ZipfSampler(std::uint64_t n, double s);

  /// Draws one sample in `[1, n]`.
  std::uint64_t Sample(Rng& rng) const;

  /// The support bound `n`.
  std::uint64_t n() const { return n_; }

  /// The exponent `s`.
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double u) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;  // s == 1 handled via the limit form inside H.
};

/// Samples from a discrete Pareto ("zeta-like tail") distribution:
/// `X = floor(x_min * U^(-1/alpha))`, capped at `max_value`.
///
/// A convenient model of citation counts with tunable tail index `alpha`.
class DiscreteParetoSampler {
 public:
  /// Requires `x_min >= 1`, `alpha > 0`, `max_value >= x_min`.
  DiscreteParetoSampler(std::uint64_t x_min, double alpha,
                        std::uint64_t max_value);

  /// Draws one sample in `[x_min, max_value]`.
  std::uint64_t Sample(Rng& rng) const;

 private:
  std::uint64_t x_min_;
  double alpha_;
  std::uint64_t max_value_;
};

/// Samples `round(exp(N(mu, sigma^2)))`, clamped to `[1, max_value]`.
///
/// Log-normal is the standard model for per-paper citation counts within a
/// field (Radicchi et al.); used by the academic workload generator.
class DiscreteLogNormalSampler {
 public:
  /// Requires `sigma >= 0`, `max_value >= 1`.
  DiscreteLogNormalSampler(double mu, double sigma, std::uint64_t max_value);

  /// Draws one sample in `[1, max_value]`.
  std::uint64_t Sample(Rng& rng) const;

 private:
  double mu_;
  double sigma_;
  std::uint64_t max_value_;
};

/// Draws a standard normal via Box–Muller (one value per call; the spare
/// is intentionally discarded to keep the sampler stateless).
double SampleStandardNormal(Rng& rng);

}  // namespace himpact

#endif  // HIMPACT_RANDOM_ZIPF_H_
