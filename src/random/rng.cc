#include "random/rng.h"

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {
namespace {

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro256** requires a non-zero state; SplitMix64 seeding guarantees
  // that with overwhelming probability, and we re-seed defensively if not.
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    sm = SplitMix64(sm + 0x9e3779b97f4a7c15ULL);
    word = sm;
  }
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x853c49e6748fea9bULL;
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformU64(std::uint64_t bound) {
  HIMPACT_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = NextU64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<unsigned __int128>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  HIMPACT_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<std::int64_t>(NextU64());
  }
  return lo + static_cast<std::int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace himpact
