#include "random/zipf.h"

#include <cmath>

#include "common/check.h"

namespace himpact {

// --- ZipfSampler -----------------------------------------------------------
//
// Rejection-inversion sampling for the Zipf distribution (W. Hörmann and
// G. Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions", 1996). H(x) is the integral of x^-s; samples are
// drawn from the continuous envelope and accepted against the discrete pmf.

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  HIMPACT_CHECK(n >= 1);
  HIMPACT_CHECK(s > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s));
}

double ZipfSampler::H(double x) const {
  // Integral of t^-s dt, with the s -> 1 limit handled explicitly.
  if (std::fabs(s_ - 1.0) < 1e-12) {
    return std::log(x);
  }
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double u) const {
  if (std::fabs(s_ - 1.0) < 1e-12) {
    return std::exp(u);
  }
  return std::pow(1.0 + u * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng.UniformDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= threshold_) {
      return k;
    }
    if (u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
      return k;
    }
  }
}

// --- DiscreteParetoSampler ---------------------------------------------------

DiscreteParetoSampler::DiscreteParetoSampler(std::uint64_t x_min, double alpha,
                                             std::uint64_t max_value)
    : x_min_(x_min), alpha_(alpha), max_value_(max_value) {
  HIMPACT_CHECK(x_min >= 1);
  HIMPACT_CHECK(alpha > 0.0);
  HIMPACT_CHECK(max_value >= x_min);
}

std::uint64_t DiscreteParetoSampler::Sample(Rng& rng) const {
  // Inverse-CDF of the continuous Pareto, floored. UniformDouble() is in
  // [0, 1); use 1-u in (0, 1] so the power is finite.
  const double u = 1.0 - rng.UniformDouble();
  const double x = static_cast<double>(x_min_) * std::pow(u, -1.0 / alpha_);
  if (x >= static_cast<double>(max_value_)) return max_value_;
  return static_cast<std::uint64_t>(x);
}

// --- DiscreteLogNormalSampler ------------------------------------------------

DiscreteLogNormalSampler::DiscreteLogNormalSampler(double mu, double sigma,
                                                   std::uint64_t max_value)
    : mu_(mu), sigma_(sigma), max_value_(max_value) {
  HIMPACT_CHECK(sigma >= 0.0);
  HIMPACT_CHECK(max_value >= 1);
}

std::uint64_t DiscreteLogNormalSampler::Sample(Rng& rng) const {
  const double z = SampleStandardNormal(rng);
  const double x = std::exp(mu_ + sigma_ * z);
  if (x <= 1.0) return 1;
  if (x >= static_cast<double>(max_value_)) return max_value_;
  return static_cast<std::uint64_t>(x + 0.5);
}

double SampleStandardNormal(Rng& rng) {
  // Box–Muller; u1 is bounded away from zero to keep log finite.
  double u1 = rng.UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = rng.UniformDouble();
  const double two_pi = 6.283185307179586;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

}  // namespace himpact
