#ifndef HIMPACT_RANDOM_RNG_H_
#define HIMPACT_RANDOM_RNG_H_

#include <cstdint>
#include <vector>

/// \file
/// Deterministic, seedable PRNG (xoshiro256**) used across the library.
///
/// All randomized components take an explicit seed so every experiment in
/// EXPERIMENTS.md is exactly reproducible. `std::mt19937` is avoided for
/// speed and to keep the random substrate self-contained.

namespace himpact {

/// A xoshiro256** generator seeded via SplitMix64.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64 random bits.
  std::uint64_t NextU64();

  /// Uniform integer in `[0, bound)`. Requires `bound > 0`.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t UniformU64(std::uint64_t bound);

  /// Uniform integer in `[lo, hi]`. Requires `lo <= hi`.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in `[0, 1)` with 53 bits of precision.
  double UniformDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Forks an independent generator (seeded from this one's stream).
  Rng Fork();

  /// Copies the four xoshiro256** state words into `out` (checkpointing).
  void SaveState(std::uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }

  /// Restores a state previously captured by `SaveState`. Returns false
  /// (leaving the generator untouched) for the all-zero state, which
  /// xoshiro256** cannot escape — callers reject such checkpoints.
  bool RestoreState(const std::uint64_t state[4]) {
    if ((state[0] | state[1] | state[2] | state[3]) == 0) return false;
    for (int i = 0; i < 4; ++i) state_[i] = state[i];
    return true;
  }

 private:
  std::uint64_t state_[4];
};

/// Shuffles `values` in place (Fisher–Yates).
template <typename T>
void Shuffle(std::vector<T>& values, Rng& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.UniformU64(static_cast<std::uint64_t>(i)));
    using std::swap;
    swap(values[i - 1], values[j]);
  }
}

}  // namespace himpact

#endif  // HIMPACT_RANDOM_RNG_H_
