#include "workload/citation_vectors.h"

#include <algorithm>

#include "common/check.h"
#include "random/zipf.h"

namespace himpact {

const char* VectorKindName(VectorKind kind) {
  switch (kind) {
    case VectorKind::kZipf:
      return "zipf";
    case VectorKind::kUniform:
      return "uniform";
    case VectorKind::kConstant:
      return "constant";
    case VectorKind::kAllDistinct:
      return "all-distinct";
    case VectorKind::kPlanted:
      return "planted";
    case VectorKind::kSmoothPlanted:
      return "smooth-planted";
  }
  return "unknown";
}

const char* OrderPolicyName(OrderPolicy policy) {
  switch (policy) {
    case OrderPolicy::kAsGenerated:
      return "as-generated";
    case OrderPolicy::kAscending:
      return "ascending";
    case OrderPolicy::kDescending:
      return "descending";
    case OrderPolicy::kRandom:
      return "random";
  }
  return "unknown";
}

AggregateStream MakeVector(const VectorSpec& spec, Rng& rng) {
  HIMPACT_CHECK(spec.n >= 1);
  AggregateStream values;
  values.reserve(spec.n);
  switch (spec.kind) {
    case VectorKind::kZipf: {
      const ZipfSampler zipf(spec.max_value, spec.zipf_s);
      for (std::uint64_t i = 0; i < spec.n; ++i) {
        values.push_back(zipf.Sample(rng));
      }
      break;
    }
    case VectorKind::kUniform: {
      for (std::uint64_t i = 0; i < spec.n; ++i) {
        values.push_back(rng.UniformU64(spec.max_value + 1));
      }
      break;
    }
    case VectorKind::kConstant: {
      values.assign(spec.n, spec.max_value);
      break;
    }
    case VectorKind::kAllDistinct: {
      for (std::uint64_t i = 1; i <= spec.n; ++i) {
        values.push_back(i);
      }
      break;
    }
    case VectorKind::kPlanted: {
      HIMPACT_CHECK(spec.target_h <= spec.n);
      // Exactly `target_h` values in [target_h, 2*target_h], the rest
      // strictly below target_h, so the exact H-index is target_h
      // (0 values qualify for target_h + 1 unless target_h == 0).
      for (std::uint64_t i = 0; i < spec.target_h; ++i) {
        values.push_back(spec.target_h + rng.UniformU64(spec.target_h + 1));
      }
      const std::uint64_t low_cap =
          spec.target_h == 0 ? 1 : spec.target_h;
      for (std::uint64_t i = spec.target_h; i < spec.n; ++i) {
        values.push_back(rng.UniformU64(low_cap));
      }
      break;
    }
    case VectorKind::kSmoothPlanted: {
      HIMPACT_CHECK(2 * spec.target_h <= spec.n);
      for (std::uint64_t i = 0; i < spec.n; ++i) {
        values.push_back(i < 2 * spec.target_h ? 2 * spec.target_h - i : 0);
      }
      break;
    }
  }
  return values;
}

void ApplyOrder(AggregateStream& values, OrderPolicy policy, Rng& rng) {
  switch (policy) {
    case OrderPolicy::kAsGenerated:
      break;
    case OrderPolicy::kAscending:
      std::sort(values.begin(), values.end());
      break;
    case OrderPolicy::kDescending:
      std::sort(values.begin(), values.end(), std::greater<>());
      break;
    case OrderPolicy::kRandom:
      Shuffle(values, rng);
      break;
  }
}

}  // namespace himpact
