#ifndef HIMPACT_WORKLOAD_CASCADE_H_
#define HIMPACT_WORKLOAD_CASCADE_H_

#include <cstdint>
#include <vector>

#include "random/rng.h"
#include "stream/expand.h"

/// \file
/// A Twitter-like retweet firehose: tweets (papers) with power-law
/// cascade sizes whose retweet events (cash-register updates) interleave
/// over time. Used by the cash-register experiments (T4/T5) and the
/// `social_firehose` example.

namespace himpact {

/// Configuration for `MakeRetweetFirehose`.
struct CascadeConfig {
  /// Number of tweets (the vector dimension / paper universe).
  std::uint64_t num_tweets = 10000;

  /// Pareto tail index for cascade sizes.
  double cascade_alpha = 1.2;

  /// Minimum / maximum retweets per tweet.
  std::uint64_t min_retweets = 1;
  std::uint64_t max_retweets = 100000;

  /// Mean batch size when retweets arrive in bursts (1 = unit updates).
  double mean_batch = 1.0;
};

/// The generated firehose plus its ground truth.
struct RetweetFirehose {
  /// The cash-register stream of (tweet, +retweets) events, shuffled.
  CashRegisterStream events;
  /// Ground-truth final retweet count per tweet.
  std::vector<std::uint64_t> totals;
  /// Exact H-index of `totals`.
  std::uint64_t exact_h = 0;
};

/// Generates the firehose.
RetweetFirehose MakeRetweetFirehose(const CascadeConfig& config, Rng& rng);

}  // namespace himpact

#endif  // HIMPACT_WORKLOAD_CASCADE_H_
