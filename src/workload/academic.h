#ifndef HIMPACT_WORKLOAD_ACADEMIC_H_
#define HIMPACT_WORKLOAD_ACADEMIC_H_

#include <cstdint>
#include <vector>

#include "random/rng.h"
#include "stream/expand.h"
#include "stream/types.h"

/// \file
/// A synthetic academic corpus: authors with heavy-tailed productivity,
/// per-paper citation counts drawn log-normally around an author-skill
/// level, and optional co-authorship. Used by the heavy-hitter
/// experiments (T8/T9/T10) and the `academic_impact` example.
///
/// Optionally plants "star" authors with a prescribed paper count and
/// per-paper citations, giving exactly known heavy hitters.

namespace himpact {

/// Configuration for `MakeAcademicCorpus`.
struct AcademicConfig {
  /// Number of background (non-planted) authors.
  std::uint64_t num_authors = 1000;

  /// Pareto tail index for papers-per-author (smaller = heavier tail).
  double productivity_alpha = 1.5;

  /// Minimum / maximum papers per author.
  std::uint64_t min_papers = 1;
  std::uint64_t max_papers = 200;

  /// Log-normal parameters for per-paper citations.
  double citation_mu = 1.0;
  double citation_sigma = 1.2;
  std::uint64_t max_citations = 100000;

  /// Probability that a paper has a second (uniformly random) co-author.
  double coauthor_probability = 0.0;
};

/// A planted star author.
struct PlantedAuthor {
  AuthorId author = 0;
  /// The star writes `num_papers` papers each with `citations_per_paper`
  /// citations, so its exact H-index is
  /// `min(num_papers, citations_per_paper)`.
  std::uint64_t num_papers = 50;
  std::uint64_t citations_per_paper = 50;
};

/// Generates the corpus as a paper stream in shuffled arrival order.
/// Planted authors use ids disjoint from `[0, num_authors)` (caller's
/// responsibility). Paper ids are consecutive from 0.
PaperStream MakeAcademicCorpus(const AcademicConfig& config,
                               const std::vector<PlantedAuthor>& planted,
                               Rng& rng);

/// Flattens a paper stream into the single-user aggregate stream of one
/// author's citation counts (papers not by `author` are skipped).
AggregateStream AuthorCitationVector(const PaperStream& papers,
                                     AuthorId author);

}  // namespace himpact

#endif  // HIMPACT_WORKLOAD_ACADEMIC_H_
