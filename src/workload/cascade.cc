#include "workload/cascade.h"

#include "common/check.h"
#include "core/exact.h"
#include "random/zipf.h"

namespace himpact {

RetweetFirehose MakeRetweetFirehose(const CascadeConfig& config, Rng& rng) {
  HIMPACT_CHECK(config.num_tweets >= 1);
  HIMPACT_CHECK(config.min_retweets >= 1);
  HIMPACT_CHECK(config.max_retweets >= config.min_retweets);

  RetweetFirehose firehose;
  const DiscreteParetoSampler cascade(config.min_retweets,
                                      config.cascade_alpha,
                                      config.max_retweets);
  firehose.totals.reserve(config.num_tweets);
  for (std::uint64_t t = 0; t < config.num_tweets; ++t) {
    firehose.totals.push_back(cascade.Sample(rng));
  }
  if (config.mean_batch > 1.0) {
    firehose.events =
        ExpandToBatchedCashRegister(firehose.totals, config.mean_batch, rng);
  } else {
    firehose.events = ExpandToCashRegister(
        firehose.totals, InterleavePolicy::kShuffled, rng);
  }
  firehose.exact_h = ExactHIndex(firehose.totals);
  return firehose;
}

}  // namespace himpact
