#ifndef HIMPACT_WORKLOAD_PREFERENTIAL_H_
#define HIMPACT_WORKLOAD_PREFERENTIAL_H_

#include <cstdint>
#include <vector>

#include "random/rng.h"
#include "stream/expand.h"
#include "stream/types.h"

/// \file
/// A growing citation network with preferential attachment (Price's
/// model): papers arrive over time and each new paper cites `m` earlier
/// papers chosen proportionally to (current citations + a). This yields
/// the empirically observed power-law citation distribution *and* —
/// unlike the i.i.d. generators — a temporally faithful cash-register
/// stream: each citation event `(cited paper, +1)` happens at the moment
/// the citing paper appears, so early papers accumulate impact first,
/// exactly the arrival pattern the cash-register model (Section 2.3)
/// describes.

namespace himpact {

/// Configuration for `MakeCitationNetwork`.
struct PreferentialConfig {
  /// Number of papers published.
  std::uint64_t num_papers = 10000;

  /// Citations made by each new paper (to distinct earlier papers).
  int citations_per_paper = 5;

  /// Additive attractiveness (Price's `a`): higher = flatter tail.
  double initial_attractiveness = 1.0;

  /// Number of authors; each paper gets one uniformly random author
  /// (0 disables author assignment).
  std::uint64_t num_authors = 0;
};

/// The generated network.
struct CitationNetwork {
  /// Citation events in publication order: event k is "paper X gets one
  /// more citation" at the moment its k-th citer appears.
  CashRegisterStream events;

  /// Final citation count per paper (index = paper id).
  std::vector<std::uint64_t> totals;

  /// Exact H-index of `totals`.
  std::uint64_t exact_h = 0;

  /// Per-paper author (empty when `num_authors == 0`).
  std::vector<AuthorId> author_of;

  /// The corpus as an aggregate paper stream (publication order), for
  /// feeding the heavy-hitter algorithms. Empty when `num_authors == 0`.
  PaperStream papers;
};

/// Generates the network. Requires `num_papers >= 2`,
/// `citations_per_paper >= 1`, `initial_attractiveness > 0`.
CitationNetwork MakeCitationNetwork(const PreferentialConfig& config,
                                    Rng& rng);

}  // namespace himpact

#endif  // HIMPACT_WORKLOAD_PREFERENTIAL_H_
