#include "workload/academic.h"

#include <algorithm>

#include "common/check.h"
#include "random/zipf.h"

namespace himpact {

PaperStream MakeAcademicCorpus(const AcademicConfig& config,
                               const std::vector<PlantedAuthor>& planted,
                               Rng& rng) {
  HIMPACT_CHECK(config.min_papers >= 1);
  HIMPACT_CHECK(config.max_papers >= config.min_papers);

  PaperStream papers;
  const DiscreteParetoSampler productivity(
      config.min_papers, config.productivity_alpha, config.max_papers);
  const DiscreteLogNormalSampler citations(
      config.citation_mu, config.citation_sigma, config.max_citations);

  PaperId next_paper = 0;
  for (AuthorId author = 0; author < config.num_authors; ++author) {
    const std::uint64_t num_papers = productivity.Sample(rng);
    for (std::uint64_t p = 0; p < num_papers; ++p) {
      PaperTuple paper;
      paper.paper = next_paper++;
      paper.authors.PushBack(author);
      if (config.coauthor_probability > 0.0 &&
          rng.Bernoulli(config.coauthor_probability) &&
          config.num_authors >= 2) {
        AuthorId coauthor = rng.UniformU64(config.num_authors);
        if (coauthor == author) {
          coauthor = (coauthor + 1) % config.num_authors;
        }
        paper.authors.PushBack(coauthor);
      }
      paper.citations = citations.Sample(rng);
      papers.push_back(paper);
    }
  }

  for (const PlantedAuthor& star : planted) {
    for (std::uint64_t p = 0; p < star.num_papers; ++p) {
      PaperTuple paper;
      paper.paper = next_paper++;
      paper.authors.PushBack(star.author);
      paper.citations = star.citations_per_paper;
      papers.push_back(paper);
    }
  }

  Shuffle(papers, rng);
  return papers;
}

AggregateStream AuthorCitationVector(const PaperStream& papers,
                                     AuthorId author) {
  AggregateStream values;
  for (const PaperTuple& paper : papers) {
    if (paper.authors.Contains(author)) {
      values.push_back(paper.citations);
    }
  }
  return values;
}

}  // namespace himpact
