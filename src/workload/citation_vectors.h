#ifndef HIMPACT_WORKLOAD_CITATION_VECTORS_H_
#define HIMPACT_WORKLOAD_CITATION_VECTORS_H_

#include <cstdint>
#include <vector>

#include "random/rng.h"
#include "stream/expand.h"

/// \file
/// Single-user aggregate workloads: synthetic response-count vectors with
/// controlled distributions and arrival orders, for the T1/T2/F1/T3
/// experiments and the property tests.

namespace himpact {

/// Families of response-count distributions.
enum class VectorKind {
  /// Zipf(s = 1.1) citation counts — the classic heavy tail.
  kZipf,
  /// Uniform counts in [0, max].
  kUniform,
  /// All counts equal (h* = min(count, n)).
  kConstant,
  /// Counts 1..n, each once (h* ~ n/2).
  kAllDistinct,
  /// Planted: exactly `target` values >= `target`, the rest below.
  /// The sub-`target` values are uniform, so the tail-count function
  /// `#{v >= theta}` can jump steeply just below h* when `n >> target`.
  kPlanted,
  /// Smooth planted: the deterministic ramp `2*target, 2*target-1, ...,
  /// 1` padded with zeros, giving `#{v >= theta} = 2*target - theta + 1`
  /// — a slope-(-1) tail count around h* = `target`. This is the
  /// "generic" shape Algorithm 4's acceptance band assumes (its window
  /// test brackets `#{v >= theta} ~ theta` near h*; on plateaued inputs
  /// like kPlanted with n >> target it rejects every guess and the
  /// Algorithm 2 fallback answers instead).
  kSmoothPlanted,
};

/// Returns a printable name for `kind` (bench tables).
const char* VectorKindName(VectorKind kind);

/// Arrival orders for an aggregate stream.
enum class OrderPolicy {
  kAsGenerated,
  kAscending,   // adversarial: small values first
  kDescending,  // adversarial: large values first
  kRandom,      // uniformly random permutation
};

/// Returns a printable name for `policy` (bench tables).
const char* OrderPolicyName(OrderPolicy policy);

/// Parameters for `MakeVector`.
struct VectorSpec {
  VectorKind kind = VectorKind::kZipf;
  std::uint64_t n = 10000;
  /// Maximum response count (cap for the heavy-tailed kinds; the value
  /// itself for kConstant).
  std::uint64_t max_value = 1u << 20;
  /// Zipf exponent (kZipf only).
  double zipf_s = 1.1;
  /// Planted H-index (kPlanted only); must be <= n.
  std::uint64_t target_h = 100;
};

/// Generates a response-count vector per `spec`.
AggregateStream MakeVector(const VectorSpec& spec, Rng& rng);

/// Applies an arrival order in place.
void ApplyOrder(AggregateStream& values, OrderPolicy policy, Rng& rng);

}  // namespace himpact

#endif  // HIMPACT_WORKLOAD_CITATION_VECTORS_H_
