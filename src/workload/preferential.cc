#include "workload/preferential.h"

#include <algorithm>

#include "common/check.h"
#include "core/exact.h"

namespace himpact {

CitationNetwork MakeCitationNetwork(const PreferentialConfig& config,
                                    Rng& rng) {
  HIMPACT_CHECK(config.num_papers >= 2);
  HIMPACT_CHECK(config.citations_per_paper >= 1);
  HIMPACT_CHECK(config.initial_attractiveness > 0.0);

  CitationNetwork network;
  network.totals.assign(config.num_papers, 0);
  // Endpoint urn: one entry per citation received; sampling an entry is
  // sampling proportionally to the citation count, and mixing with a
  // uniform paper pick realizes P(cite p) ∝ c_p + a in O(1) per draw.
  std::vector<PaperId> endpoint_urn;
  endpoint_urn.reserve(config.num_papers *
                       static_cast<std::size_t>(config.citations_per_paper));

  if (config.num_authors > 0) {
    network.author_of.reserve(config.num_papers);
  }

  std::vector<PaperId> chosen;
  for (PaperId paper = 0; paper < config.num_papers; ++paper) {
    if (config.num_authors > 0) {
      network.author_of.push_back(rng.UniformU64(config.num_authors));
    }
    if (paper == 0) continue;  // nothing to cite yet

    const int citations =
        static_cast<int>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(config.citations_per_paper), paper));
    chosen.clear();
    int attempts = 0;
    while (static_cast<int>(chosen.size()) < citations &&
           attempts < citations * 20) {
      ++attempts;
      const double a_mass =
          config.initial_attractiveness * static_cast<double>(paper);
      const double total_mass =
          a_mass + static_cast<double>(endpoint_urn.size());
      PaperId target;
      if (rng.UniformDouble() * total_mass < a_mass) {
        target = rng.UniformU64(paper);  // uniform over existing papers
      } else {
        target = endpoint_urn[static_cast<std::size_t>(
            rng.UniformU64(endpoint_urn.size()))];
      }
      if (std::find(chosen.begin(), chosen.end(), target) != chosen.end()) {
        continue;  // cite distinct papers
      }
      chosen.push_back(target);
    }
    for (const PaperId target : chosen) {
      network.events.push_back(CitationEvent{target, 1});
      ++network.totals[target];
      endpoint_urn.push_back(target);
    }
  }

  network.exact_h = ExactHIndex(network.totals);

  if (config.num_authors > 0) {
    network.papers.reserve(config.num_papers);
    for (PaperId paper = 0; paper < config.num_papers; ++paper) {
      PaperTuple tuple;
      tuple.paper = paper;
      tuple.authors.PushBack(network.author_of[paper]);
      tuple.citations = network.totals[paper];
      network.papers.push_back(tuple);
    }
  }
  return network;
}

}  // namespace himpact
