#ifndef HIMPACT_IO_CHECKPOINT_H_
#define HIMPACT_IO_CHECKPOINT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/envelope.h"
#include "common/status.h"

/// \file
/// Crash-safe file checkpointing for sketch state.
///
/// Writes are atomic: the envelope-framed bytes go to a temporary file in
/// the same directory, are fsync'd, and are renamed over the target, so a
/// crash mid-write leaves either the previous checkpoint or the new one —
/// never a torn file. Reads validate the envelope (magic, version, tag,
/// length, CRC32) before any sketch decoder sees a byte, and
/// `RestoreOrFallback` degrades to a freshly built estimator when the
/// checkpoint is missing or damaged, logging the reason. See
/// docs/CHECKPOINTS.md for the workflow.

namespace himpact {

/// Reads an entire file. `kUnavailable` when it does not exist,
/// `kInternal` on I/O errors.
StatusOr<std::vector<std::uint8_t>> ReadFileBytes(const std::string& path);

/// Atomically replaces `path` with `bytes`: write to `path.tmp.<pid>`,
/// fsync, rename, fsync the directory. `kInternal` on any I/O failure
/// (the temporary file is cleaned up).
Status WriteFileAtomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Seals `payload` in a `tag`-typed envelope and writes it atomically.
Status WriteCheckpointFile(const std::string& path, CheckpointTag tag,
                           const std::vector<std::uint8_t>& payload);

/// Reads `path` and opens its envelope, requiring `expected_tag`.
/// `kUnavailable` when the file is missing; `kInvalidArgument` when the
/// envelope is damaged or of the wrong type.
StatusOr<std::vector<std::uint8_t>> ReadCheckpointFile(
    const std::string& path, CheckpointTag expected_tag);

/// Serializes `sketch` (via its `SerializeTo`) and checkpoints it.
template <typename Sketch>
Status CheckpointSketch(const std::string& path, CheckpointTag tag,
                        const Sketch& sketch) {
  ByteWriter writer;
  sketch.SerializeTo(writer);
  return WriteCheckpointFile(path, tag, writer.buffer());
}

/// Restores a sketch from a checkpoint file via its static
/// `DeserializeFrom`. Unlike raw deserialization — which permits chaining
/// several sketches in one buffer — a checkpoint file holds exactly one
/// sketch, so trailing bytes after the decode are rejected here.
template <typename Sketch>
StatusOr<Sketch> RestoreSketch(const std::string& path, CheckpointTag tag) {
  StatusOr<std::vector<std::uint8_t>> payload =
      ReadCheckpointFile(path, tag);
  if (!payload.ok()) return payload.status();
  ByteReader reader(payload.value());
  StatusOr<Sketch> sketch = Sketch::DeserializeFrom(reader);
  if (!sketch.ok()) return sketch.status();
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "checkpoint payload has trailing bytes after the sketch");
  }
  return sketch;
}

/// `RestoreSketch`, degrading to `make_fresh()` when the checkpoint is
/// missing or damaged. The failure is reported to `log` (pass nullptr to
/// silence) and the returned pair's second element is false, so callers
/// can distinguish a resumed run from a cold start.
template <typename Sketch, typename MakeFresh>
std::pair<Sketch, bool> RestoreOrFallback(const std::string& path,
                                          CheckpointTag tag,
                                          MakeFresh&& make_fresh,
                                          std::FILE* log) {
  StatusOr<Sketch> restored = RestoreSketch<Sketch>(path, tag);
  if (restored.ok()) {
    return {std::move(restored).value(), true};
  }
  if (log != nullptr) {
    std::fprintf(log, "checkpoint unavailable (%s): %s; starting fresh\n",
                 path.c_str(), restored.status().message().c_str());
  }
  return {make_fresh(), false};
}

}  // namespace himpact

#endif  // HIMPACT_IO_CHECKPOINT_H_
