#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "fault/fault.h"

namespace himpact {

MmapFile::~MmapFile() {
  if (data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), valid_(other.valid_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.valid_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr && size_ > 0) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    valid_ = other.valid_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.valid_ = false;
  }
  return *this;
}

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  if (FaultRegistry::Global().ShouldFire(FaultPoint::kSegmentMapFail)) {
    return Status::Internal("injected segment-map-fail on " + path);
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::Unavailable("no such file: " + path);
    }
    return Status::Internal("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("fstat(" + path + "): " + std::strerror(err));
  }
  MmapFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  file.valid_ = true;
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::Internal("mmap(" + path + "): " + std::strerror(err));
    }
    file.data_ = static_cast<const std::uint8_t*>(addr);
  }
  // The mapping outlives the descriptor; closing keeps the fd budget flat
  // no matter how many generations a stripe accumulates.
  ::close(fd);
  return file;
}

}  // namespace himpact
