#ifndef HIMPACT_IO_MMAP_FILE_H_
#define HIMPACT_IO_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

/// \file
/// Read-only memory-mapped file with RAII unmapping.
///
/// The segment store (src/storage) keeps sealed segment files mapped so a
/// cold `get` pages in only the blocks it touches; the OS page cache —
/// not the registry's memory budget — owns the resident set. The
/// `kSegmentMapFail` fault point fires inside `Open` so every caller's
/// degraded path (frozen-floor answers, chain fallback) is testable
/// without filling the disk or revoking permissions.

namespace himpact {

/// A read-only mapping of an entire file. Movable, not copyable; the
/// mapping is released on destruction.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. `kUnavailable` when the file does not exist,
  /// `kInternal` on open/stat/mmap failure (including an armed
  /// `segment-map-fail` fault). An empty file maps successfully with
  /// `size() == 0`.
  static StatusOr<MmapFile> Open(const std::string& path);

  /// Base of the mapping (nullptr for an empty or unopened file).
  const std::uint8_t* data() const { return data_; }

  /// Mapped length in bytes.
  std::size_t size() const { return size_; }

  /// True iff `Open` succeeded on this instance.
  bool valid() const { return valid_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool valid_ = false;
};

}  // namespace himpact

#endif  // HIMPACT_IO_MMAP_FILE_H_
