#ifndef HIMPACT_IO_WAL_H_
#define HIMPACT_IO_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

/// \file
/// Write-ahead log: durable, replayable record stream between
/// checkpoints.
///
/// A WAL directory holds numbered segment files `wal-<seq>.log`, each a
/// back-to-back run of `kWalRecord` envelopes (`common/envelope.h`:
/// magic, version, tag, length, CRC32, payload). The payload encoding
/// is owned by the layer above (`service/wal_apply.h`); this layer only
/// guarantees that what `ReadWalRecords` returns is a prefix of what
/// `WalWriter::Append` was given, ending at the last record whose frame
/// survived the crash intact.
///
/// Durability is tiered by fsync policy:
///
///   always  write + fsync per append      loses nothing acked
///   group   buffer, flush + fsync by      loses at most the open
///           byte / age watermark          group on power cut
///   never   buffer, flush by watermark,   loses the page cache on
///           fsync only on rotate/close    power cut, nothing on crash
///
/// A crash can tear the final record mid-write; the reader repairs
/// rather than rejects: it scans each segment to the last valid record,
/// truncates the torn tail in place, and — because a corrupt frame
/// hides the boundaries of everything after it — drops any later
/// segments instead of replaying records whose predecessors are lost.
/// The log is therefore always a clean prefix of the applied stream,
/// never a sample of it.
///
/// Rotation is keyed to checkpoints: after a successful save the
/// session calls `Rotate()`, which deletes every segment and starts a
/// fresh one, so WAL size is bounded by checkpoint cadence. Replay
/// tolerates stale records (a crash between save and rotate) because
/// the apply layer gates each record on per-stripe sequence numbers.
///
/// Failure posture: any disk error while appending (or an armed
/// `wal-append-fail` / `wal-torn-tail` fault) moves the writer into a
/// permanent *degraded* state — appends become no-ops, the service
/// keeps running on checkpoint-only durability, and `health` reports
/// the downgrade. Durability loss is loud but never fatal.
/// See docs/CHECKPOINTS.md for the byte-level rules.

namespace himpact {

/// When appended records reach the disk platter.
enum class WalFsync : int {
  kAlways = 0,  ///< write + fsync every record
  kGroup = 1,   ///< flush + fsync when the group watermark trips
  kNever = 2,   ///< flush by watermark; fsync only on rotate/close
};

/// Parses "always" / "group" / "never"; false on anything else.
bool ParseWalFsyncText(const char* text, WalFsync* out);

/// The canonical flag spelling of `policy`.
const char* WalFsyncName(WalFsync policy);

struct WalOptions {
  std::string dir;                        ///< segment directory (must exist)
  WalFsync fsync = WalFsync::kGroup;
  std::uint64_t group_bytes = 64 * 1024;  ///< flush when buffered >= this
  std::uint64_t group_ms = 50;            ///< ... or oldest buffered age >=
};

struct WalCounters {
  std::uint64_t records = 0;          ///< records accepted by Append
  std::uint64_t bytes = 0;            ///< framed bytes accepted
  std::uint64_t flushes = 0;          ///< buffered groups written out
  std::uint64_t fsyncs = 0;
  std::uint64_t rotations = 0;
  std::uint64_t append_failures = 0;  ///< failed appends (incl. post-degrade)
};

/// Appends framed records to the newest segment of a WAL directory.
/// Single-writer: not thread-safe (the service session owns it).
class WalWriter {
 public:
  /// Opens `options.dir` for writing: scans existing `wal-<seq>.log`
  /// names and creates segment `<max seq>+1`, so an open never touches
  /// records a concurrent recovery might still want.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const WalOptions& options);

  /// Flushes, fsyncs, and closes the open segment.
  ~WalWriter();

  /// Frames `payload` as a `kWalRecord` envelope and appends it under
  /// the configured fsync policy. On any disk failure (or armed WAL
  /// fault) the writer degrades permanently and returns the error once;
  /// later appends are counted, dropped no-ops returning OK so the
  /// caller's hot path stays branch-free about durability.
  Status Append(const std::vector<std::uint8_t>& payload);

  /// Writes out the buffered group (fsync unless policy is `never`).
  Status Flush();

  /// Checkpoint hook: flushes, closes and deletes every segment in the
  /// directory, then opens a fresh one. A degraded writer only deletes
  /// (the records are covered by the checkpoint that triggered this;
  /// reclaiming the space is still correct) and stays degraded.
  Status Rotate();

  /// True once any append has failed; the service is running on
  /// checkpoint-only durability.
  bool degraded() const { return degraded_; }

  const WalCounters& counters() const { return counters_; }

  /// Sequence number of the open segment.
  std::uint64_t segment_seq() const { return seq_; }

  const WalOptions& options() const { return options_; }

 private:
  explicit WalWriter(WalOptions options) : options_(std::move(options)) {}

  Status OpenSegment();
  Status WriteAll(const std::uint8_t* data, std::size_t size);
  Status SyncFd();
  void Degrade();

  WalOptions options_;
  int fd_ = -1;
  std::uint64_t seq_ = 0;
  std::vector<std::uint8_t> buffer_;        ///< pending group
  std::uint64_t buffer_oldest_nanos_ = 0;   ///< FaultClock stamp of first
  bool degraded_ = false;
  WalCounters counters_;
};

/// What recovery found (and fixed) in a WAL directory.
struct WalReplayStats {
  std::uint64_t segments = 0;           ///< segment files scanned
  std::uint64_t records = 0;            ///< valid records returned
  std::uint64_t torn_tails = 0;         ///< segments truncated in place
  std::uint64_t dropped_segments = 0;   ///< segments after a corrupt frame
  std::uint64_t discarded_bytes = 0;    ///< bytes cut or dropped
};

/// Scans `dir`'s segments in sequence order and returns every record
/// payload up to the first invalid frame. The torn segment is
/// truncated to its last valid record (repair, not rejection) and any
/// later segments are deleted so a second recovery sees the same
/// prefix. A missing or empty directory is OK and yields no records.
StatusOr<std::vector<std::vector<std::uint8_t>>> ReadWalRecords(
    const std::string& dir, WalReplayStats* stats);

}  // namespace himpact

#endif  // HIMPACT_IO_WAL_H_
