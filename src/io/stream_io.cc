#include "io/stream_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace himpact {

bool IsSkippableLine(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;  // all whitespace
}

namespace {

bool IsSkippable(const std::string& line) { return IsSkippableLine(line); }

Status OpenFailure(const std::string& path) {
  return Status::Unavailable("cannot open file: " + path);
}

Status ParseFailure(const std::string& path, std::size_t line_number,
                    const std::string& line) {
  std::ostringstream message;
  message << path << ":" << line_number << ": malformed line: " << line;
  return Status::InvalidArgument(message.str());
}

}  // namespace

Status WriteAggregateFile(const std::string& path,
                          const AggregateStream& values) {
  std::ofstream out(path);
  if (!out) return OpenFailure(path);
  out << "# himpact aggregate stream: one response count per line\n";
  for (const std::uint64_t v : values) {
    out << v << '\n';
  }
  out.flush();
  if (!out) return Status::Unavailable("write failed: " + path);
  return Status::OK();
}

StatusOr<AggregateStream> ReadAggregateFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenFailure(path);
  AggregateStream values;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsSkippable(line)) continue;
    std::istringstream fields(line);
    std::uint64_t value = 0;
    if (!(fields >> value)) return ParseFailure(path, line_number, line);
    std::string rest;
    if (fields >> rest) return ParseFailure(path, line_number, line);
    values.push_back(value);
  }
  return values;
}

Status WriteCashRegisterFile(const std::string& path,
                             const CashRegisterStream& events) {
  std::ofstream out(path);
  if (!out) return OpenFailure(path);
  out << "# himpact cash-register stream: <paper-id> <delta> per line\n";
  for (const CitationEvent& event : events) {
    out << event.paper << ' ' << event.delta << '\n';
  }
  out.flush();
  if (!out) return Status::Unavailable("write failed: " + path);
  return Status::OK();
}

StatusOr<CashRegisterStream> ReadCashRegisterFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenFailure(path);
  CashRegisterStream events;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsSkippable(line)) continue;
    std::istringstream fields(line);
    CitationEvent event;
    if (!(fields >> event.paper >> event.delta)) {
      return ParseFailure(path, line_number, line);
    }
    std::string rest;
    if (fields >> rest) return ParseFailure(path, line_number, line);
    events.push_back(event);
  }
  return events;
}

Status WritePaperFile(const std::string& path, const PaperStream& papers) {
  std::ofstream out(path);
  if (!out) return OpenFailure(path);
  out << "# himpact paper stream: <paper-id> <citations> "
         "<author>[,<author>...] per line\n";
  for (const PaperTuple& paper : papers) {
    out << paper.paper << ' ' << paper.citations << ' ';
    for (int i = 0; i < paper.authors.size(); ++i) {
      if (i > 0) out << ',';
      out << paper.authors[i];
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::Unavailable("write failed: " + path);
  return Status::OK();
}

StatusOr<PaperTuple> ParsePaperLine(const std::string& line) {
  std::istringstream fields(line);
  PaperTuple paper;
  std::string author_list;
  if (!(fields >> paper.paper >> paper.citations >> author_list)) {
    return Status::InvalidArgument("malformed paper line: " + line);
  }
  std::string rest;
  if (fields >> rest) {
    return Status::InvalidArgument("malformed paper line: " + line);
  }

  std::size_t start = 0;
  while (start <= author_list.size()) {
    const std::size_t comma = author_list.find(',', start);
    const std::string token =
        author_list.substr(start, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - start);
    if (token.empty() || paper.authors.size() >= kMaxAuthorsPerPaper) {
      return Status::InvalidArgument("malformed author list: " + line);
    }
    char* end = nullptr;
    const unsigned long long author = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("malformed author list: " + line);
    }
    paper.authors.PushBack(static_cast<AuthorId>(author));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (paper.authors.empty()) {
    return Status::InvalidArgument("malformed author list: " + line);
  }
  return paper;
}

StatusOr<PaperStream> ReadPaperFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenFailure(path);
  PaperStream papers;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsSkippable(line)) continue;
    StatusOr<PaperTuple> paper = ParsePaperLine(line);
    if (!paper.ok()) return ParseFailure(path, line_number, line);
    papers.push_back(std::move(paper).value());
  }
  return papers;
}

}  // namespace himpact
