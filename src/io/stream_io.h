#ifndef HIMPACT_IO_STREAM_IO_H_
#define HIMPACT_IO_STREAM_IO_H_

#include <string>

#include "common/status.h"
#include "stream/expand.h"
#include "stream/types.h"

/// \file
/// Text-file formats for the three stream kinds, so datasets can be
/// generated once and replayed into any estimator (and exchanged with
/// other tooling). All formats are line-based; blank lines and lines
/// starting with `#` are ignored.
///
///   - aggregate:      one response count per line
///   - cash register:  "<paper-id> <delta>" per line
///   - papers:         "<paper-id> <citations> <author>[,<author>...]"

namespace himpact {

/// Writes an aggregate stream (one count per line).
Status WriteAggregateFile(const std::string& path,
                          const AggregateStream& values);

/// Reads an aggregate stream. Fails with `kInvalidArgument` on malformed
/// lines and `kUnavailable` if the file cannot be opened.
StatusOr<AggregateStream> ReadAggregateFile(const std::string& path);

/// Writes a cash-register stream ("paper delta" per line).
Status WriteCashRegisterFile(const std::string& path,
                             const CashRegisterStream& events);

/// Reads a cash-register stream.
StatusOr<CashRegisterStream> ReadCashRegisterFile(const std::string& path);

/// Writes a paper stream ("paper citations author[,author...]" per line).
Status WritePaperFile(const std::string& path, const PaperStream& papers);

/// Reads a paper stream.
StatusOr<PaperStream> ReadPaperFile(const std::string& path);

/// Parses one paper line ("paper citations author[,author...]").
/// Exposed so tools reading from stdin share the file format's parser.
StatusOr<PaperTuple> ParsePaperLine(const std::string& line);

/// True for lines every reader skips (blank or `#` comments).
bool IsSkippableLine(const std::string& line);

}  // namespace himpact

#endif  // HIMPACT_IO_STREAM_IO_H_
