#include "io/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/bytes.h"
#include "common/envelope.h"
#include "fault/fault.h"
#include "io/checkpoint.h"

namespace himpact {
namespace {

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";

/// Largest payload a scanner will believe. Generous versus the few
/// dozen bytes a real record needs; mostly here so a bit flip in the
/// length field cannot drive a multi-gigabyte allocation.
constexpr std::uint64_t kMaxRecordPayload = 1ull << 30;

std::string StrError(int err) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%s (errno %d)",
                std::strerror(err), err);
  return buffer;
}

std::string SegmentPath(const std::string& dir, std::uint64_t seq) {
  return dir + "/" + kSegmentPrefix + std::to_string(seq) + kSegmentSuffix;
}

/// `wal-<seq>.log` -> seq; nullopt for any other name.
bool ParseSegmentName(const char* name, std::uint64_t* seq) {
  const std::size_t prefix_len = sizeof(kSegmentPrefix) - 1;
  const std::size_t suffix_len = sizeof(kSegmentSuffix) - 1;
  const std::size_t len = std::strlen(name);
  if (len <= prefix_len + suffix_len) return false;
  if (std::memcmp(name, kSegmentPrefix, prefix_len) != 0) return false;
  if (std::memcmp(name + len - suffix_len, kSegmentSuffix, suffix_len) != 0) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long value =
      std::strtoull(name + prefix_len, &end, 10);
  if (errno != 0 || end != name + len - suffix_len) return false;
  *seq = value;
  return true;
}

/// Every `wal-<seq>.log` in `dir`, ascending by seq. Missing directory
/// yields an empty list (recovery treats "no WAL" as "nothing to do").
StatusOr<std::vector<std::pair<std::uint64_t, std::string>>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    if (errno == ENOENT) return segments;
    return Status::Internal("opendir(" + dir + "): " + StrError(errno));
  }
  while (const struct dirent* entry = ::readdir(handle)) {
    std::uint64_t seq = 0;
    if (ParseSegmentName(entry->d_name, &seq)) {
      segments.emplace_back(seq, SegmentPath(dir, seq));
    }
  }
  ::closedir(handle);
  std::sort(segments.begin(), segments.end());
  return segments;
}

/// Parses one envelope frame at `data + pos`. Returns true and fills
/// `payload_len` when the frame (header and CRC-verified payload) is
/// intact; false on any damage — truncation, bad magic/version/tag,
/// absurd length, CRC mismatch — which recovery treats as the torn
/// point, not an error.
bool FrameAt(const std::vector<std::uint8_t>& data, std::size_t pos,
             std::size_t* payload_len) {
  if (data.size() - pos < kEnvelopeHeaderBytes) return false;
  const std::vector<std::uint8_t> header(
      data.begin() + static_cast<std::ptrdiff_t>(pos),
      data.begin() + static_cast<std::ptrdiff_t>(pos + kEnvelopeHeaderBytes));
  ByteReader reader(header);
  std::uint32_t magic = 0, version = 0, tag = 0, crc = 0;
  std::uint64_t length = 0;
  if (!reader.U32(&magic) || !reader.U32(&version) || !reader.U32(&tag) ||
      !reader.U64(&length) || !reader.U32(&crc)) {
    return false;
  }
  if (magic != kEnvelopeMagic || version != kEnvelopeVersion ||
      tag != static_cast<std::uint32_t>(CheckpointTag::kWalRecord) ||
      length > kMaxRecordPayload) {
    return false;
  }
  if (data.size() - pos - kEnvelopeHeaderBytes < length) return false;
  if (Crc32(data.data() + pos + kEnvelopeHeaderBytes,
            static_cast<std::size_t>(length)) != crc) {
    return false;
  }
  *payload_len = static_cast<std::size_t>(length);
  return true;
}

}  // namespace

bool ParseWalFsyncText(const char* text, WalFsync* out) {
  if (std::strcmp(text, "always") == 0) {
    *out = WalFsync::kAlways;
  } else if (std::strcmp(text, "group") == 0) {
    *out = WalFsync::kGroup;
  } else if (std::strcmp(text, "never") == 0) {
    *out = WalFsync::kNever;
  } else {
    return false;
  }
  return true;
}

const char* WalFsyncName(WalFsync policy) {
  switch (policy) {
    case WalFsync::kAlways: return "always";
    case WalFsync::kGroup: return "group";
    case WalFsync::kNever: return "never";
  }
  return "group";
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(
    const WalOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("WAL directory must not be empty");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir(" + options.dir + "): " + StrError(errno));
  }
  auto segments_or = ListSegments(options.dir);
  if (!segments_or.ok()) return segments_or.status();
  std::uint64_t next_seq = 1;
  if (!segments_or.value().empty()) {
    next_seq = segments_or.value().back().first + 1;
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(options));
  writer->seq_ = next_seq;
  Status opened = writer->OpenSegment();
  if (!opened.ok()) return opened;
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (!degraded_ && !buffer_.empty()) {
      (void)WriteAll(buffer_.data(), buffer_.size());
    }
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::OpenSegment() {
  const std::string path = SegmentPath(options_.dir, seq_);
  // O_EXCL: the name was chosen past every existing seq, so a collision
  // means another writer owns this directory — refuse, don't clobber.
  fd_ = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::Internal("open(" + path + "): " + StrError(errno));
  }
  return Status::OK();
}

Status WalWriter::WriteAll(const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("WAL write: " + StrError(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status WalWriter::SyncFd() {
  if (::fsync(fd_) != 0) {
    return Status::Internal("WAL fsync: " + StrError(errno));
  }
  ++counters_.fsyncs;
  return Status::OK();
}

void WalWriter::Degrade() {
  degraded_ = true;
  buffer_.clear();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::Append(const std::vector<std::uint8_t>& payload) {
  if (degraded_) {
    // Already loudly degraded; keep the hot path quiet but counted.
    ++counters_.append_failures;
    return Status::OK();
  }
  const std::vector<std::uint8_t> framed =
      SealEnvelope(CheckpointTag::kWalRecord, payload);

  if (FaultRegistry::Global().ShouldFire(FaultPoint::kWalAppendFail)) {
    // Best-effort: land what was already grouped, then give up the log.
    if (!buffer_.empty()) (void)WriteAll(buffer_.data(), buffer_.size());
    ::fsync(fd_);
    ++counters_.append_failures;
    Degrade();
    return Status::Internal("WAL append failed (injected)");
  }
  if (FaultRegistry::Global().ShouldFire(FaultPoint::kWalTornTail)) {
    // The power-cut shape: everything before this record intact, this
    // record cut mid-frame. Flush the group first so the tear is the
    // newest thing on disk, exactly like a real crash.
    if (!buffer_.empty()) (void)WriteAll(buffer_.data(), buffer_.size());
    (void)WriteAll(framed.data(), framed.size() / 2);
    ::fsync(fd_);
    ++counters_.append_failures;
    Degrade();
    return Status::Internal("WAL append torn (injected)");
  }

  Status result = Status::OK();
  if (options_.fsync == WalFsync::kAlways) {
    result = WriteAll(framed.data(), framed.size());
    if (result.ok()) result = SyncFd();
    if (result.ok()) ++counters_.flushes;
  } else {
    if (buffer_.empty()) buffer_oldest_nanos_ = FaultClock::NowNanos();
    buffer_.insert(buffer_.end(), framed.begin(), framed.end());
    const std::uint64_t age_ms =
        (FaultClock::NowNanos() - buffer_oldest_nanos_) / 1'000'000ull;
    if (buffer_.size() >= options_.group_bytes || age_ms >= options_.group_ms) {
      result = Flush();
    }
  }
  if (!result.ok()) {
    ++counters_.append_failures;
    Degrade();
    return result;
  }
  ++counters_.records;
  counters_.bytes += framed.size();
  return Status::OK();
}

Status WalWriter::Flush() {
  if (degraded_ || buffer_.empty()) return Status::OK();
  Status result = WriteAll(buffer_.data(), buffer_.size());
  if (result.ok() && options_.fsync != WalFsync::kNever) result = SyncFd();
  if (!result.ok()) {
    ++counters_.append_failures;
    Degrade();
    return result;
  }
  buffer_.clear();
  ++counters_.flushes;
  return Status::OK();
}

Status WalWriter::Rotate() {
  // The caller just landed a checkpoint covering every record appended
  // so far (the session appends before it saves), so the whole log —
  // including the open segment — is reclaimable.
  if (!degraded_) {
    Status flushed = Flush();
    if (!flushed.ok()) return flushed;  // Flush degraded us; fall through
  }
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  auto segments_or = ListSegments(options_.dir);
  if (segments_or.ok()) {
    for (const auto& segment : segments_or.value()) {
      if (segment.first <= seq_) ::unlink(segment.second.c_str());
    }
  }
  ++counters_.rotations;
  if (degraded_) return Status::OK();  // space reclaimed; log stays lost
  ++seq_;
  Status opened = OpenSegment();
  if (!opened.ok()) {
    ++counters_.append_failures;
    Degrade();
  }
  return opened;
}

StatusOr<std::vector<std::vector<std::uint8_t>>> ReadWalRecords(
    const std::string& dir, WalReplayStats* stats) {
  WalReplayStats local;
  WalReplayStats* out = stats != nullptr ? stats : &local;
  *out = WalReplayStats{};
  std::vector<std::vector<std::uint8_t>> records;

  auto segments_or = ListSegments(dir);
  if (!segments_or.ok()) return segments_or.status();
  const auto& segments = segments_or.value();

  bool torn = false;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string& path = segments[i].second;
    if (torn) {
      // Frames after a corrupt one have unknowable boundaries, and
      // replaying a later segment without its predecessors would apply
      // a gapped suffix. Delete so a second recovery sees the same
      // clean prefix this one returns.
      struct stat info;
      if (::stat(path.c_str(), &info) == 0) {
        out->discarded_bytes += static_cast<std::uint64_t>(info.st_size);
      }
      ::unlink(path.c_str());
      ++out->dropped_segments;
      continue;
    }
    auto bytes_or = ReadFileBytes(path);
    if (!bytes_or.ok()) {
      // Unreadable segment: treat like a corrupt frame at offset 0.
      torn = true;
      ::unlink(path.c_str());
      ++out->dropped_segments;
      continue;
    }
    const std::vector<std::uint8_t>& data = bytes_or.value();
    ++out->segments;
    std::size_t pos = 0;
    while (pos < data.size()) {
      std::size_t payload_len = 0;
      if (!FrameAt(data, pos, &payload_len)) break;
      records.emplace_back(
          data.begin() + static_cast<std::ptrdiff_t>(pos) +
              static_cast<std::ptrdiff_t>(kEnvelopeHeaderBytes),
          data.begin() + static_cast<std::ptrdiff_t>(pos) +
              static_cast<std::ptrdiff_t>(kEnvelopeHeaderBytes + payload_len));
      ++out->records;
      pos += kEnvelopeHeaderBytes + payload_len;
    }
    if (pos < data.size()) {
      // Torn tail: cut the file back to its last intact record so the
      // next scan (and the next next one) agrees with this one.
      torn = true;
      out->discarded_bytes += data.size() - pos;
      ++out->torn_tails;
      if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
        return Status::Internal("truncate(" + path + "): " + StrError(errno));
      }
    }
  }
  return records;
}

}  // namespace himpact
