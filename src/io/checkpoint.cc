#include "io/checkpoint.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "fault/fault.h"

namespace himpact {
namespace {

/// Directory part of `path` ("." when there is no separator), for the
/// post-rename directory fsync that makes the new name itself durable.
std::string DirectoryOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status IoError(const std::string& action, const std::string& path) {
  return Status::Internal(action + " " + path + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<std::vector<std::uint8_t>> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::Unavailable("no such file: " + path);
    }
    return IoError("open", path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = IoError("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  ::close(fd);
  return bytes;
}

Status WriteFileAtomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open", tmp_path);

  // Fault hook: a firing `torn-checkpoint` writes only half the payload
  // to the temp file and fails before the rename, modeling a crash (or
  // full disk) mid-write. The destination keeps its previous good
  // contents — which is exactly the crash-safety property restores rely
  // on — and the error is retryable (see fault/backoff.h).
  if (FaultRegistry::Global().AnyArmed() &&
      FaultRegistry::Global().ShouldFire(FaultPoint::kTornCheckpoint)) {
    const std::size_t half = bytes.size() / 2;
    std::size_t torn_written = 0;
    while (torn_written < half) {
      const ssize_t n =
          ::write(fd, bytes.data() + torn_written, half - torn_written);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      torn_written += static_cast<std::size_t>(n);
    }
    ::close(fd);
    return Status::Internal("injected torn checkpoint write: " + tmp_path);
  }

  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = IoError("write", tmp_path);
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return status;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status status = IoError("fsync", tmp_path);
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    const Status status = IoError("close", tmp_path);
    ::unlink(tmp_path.c_str());
    return status;
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const Status status = IoError("rename", tmp_path);
    ::unlink(tmp_path.c_str());
    return status;
  }
  // The rename is only durable once the directory entry is flushed too.
  const std::string dir = DirectoryOf(path);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

Status WriteCheckpointFile(const std::string& path, CheckpointTag tag,
                           const std::vector<std::uint8_t>& payload) {
  return WriteFileAtomic(path, SealEnvelope(tag, payload));
}

StatusOr<std::vector<std::uint8_t>> ReadCheckpointFile(
    const std::string& path, CheckpointTag expected_tag) {
  StatusOr<std::vector<std::uint8_t>> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return OpenEnvelope(bytes.value(), expected_tag);
}

}  // namespace himpact
