#ifndef HIMPACT_COMMON_MATH_UTIL_H_
#define HIMPACT_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <vector>

/// \file
/// Numeric helpers shared by the streaming estimators: geometric
/// `(1+eps)^i` guess grids, integer logarithms, and ceiling division.
///
/// All of the paper's algorithms quantize candidate H-index values onto the
/// grid `{(1+eps)^0, (1+eps)^1, ...}`; `GeometricGrid` centralizes that
/// logic so every estimator rounds identically.

namespace himpact {

/// Number of bits in the machine word used for the paper's space accounting
/// ("each word consists of log n bits"). We report both the paper's
/// idealized word counts and concrete 64-bit words.
inline constexpr int kBitsPerWord = 64;

/// Returns `ceil(a / b)` for positive integers. Requires `b > 0`.
constexpr std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Returns `floor(log2(x))`. Requires `x > 0`.
int FloorLog2(std::uint64_t x);

/// Returns `ceil(log2(x))`. Requires `x > 0`.
int CeilLog2(std::uint64_t x);

/// Returns `log(x) / log(1 + eps)` (the real-valued guess index of `x`).
/// Requires `x > 0` and `eps > 0`.
double LogOnePlusEps(double x, double eps);

/// Returns the smallest number of grid levels `L` such that
/// `(1+eps)^(L-1) >= max_value`, i.e. the grid `{(1+eps)^0 ..
/// (1+eps)^(L-1)}` covers `[1, max_value]`. Requires `max_value >= 1`.
int NumGeometricLevels(std::uint64_t max_value, double eps);

/// The geometric guess grid `(1+eps)^i` for `i = 0 .. num_levels-1`.
///
/// Powers are precomputed by repeated multiplication so that every
/// estimator sees bit-identical thresholds; this matters when comparing an
/// estimator's chosen level against a reference computation in tests.
class GeometricGrid {
 public:
  /// Builds the grid covering `[1, max_value]`. Requires `eps > 0` and
  /// `max_value >= 1`.
  GeometricGrid(std::uint64_t max_value, double eps);

  /// The grid growth parameter `eps`.
  double eps() const { return eps_; }

  /// Number of levels in the grid.
  int num_levels() const { return static_cast<int>(powers_.size()); }

  /// `(1+eps)^i`. Requires `0 <= i < num_levels()`.
  double Power(int i) const { return powers_[static_cast<std::size_t>(i)]; }

  /// Largest level `i` with `(1+eps)^i <= x`, or -1 when `x < 1`.
  int LevelFloor(double x) const;

  /// All levels as a vector (for table printing in benches).
  const std::vector<double>& powers() const { return powers_; }

 private:
  double eps_;
  std::vector<double> powers_;
};

}  // namespace himpact

#endif  // HIMPACT_COMMON_MATH_UTIL_H_
