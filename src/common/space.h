#ifndef HIMPACT_COMMON_SPACE_H_
#define HIMPACT_COMMON_SPACE_H_

#include <cstdint>

#include "common/math_util.h"

/// \file
/// Space accounting used by the T1/F3 experiments.
///
/// The paper measures space in "words of log n bits". Every sketch and
/// estimator in this library reports a `SpaceUsage` so the bench harness
/// can print measured space next to the theorem's bound.

namespace himpact {

/// Measured space of a sketch/estimator instance.
struct SpaceUsage {
  /// Number of logical words the algorithm maintains (counters, samples,
  /// hash seeds); this is the quantity the paper's theorems bound.
  std::uint64_t words = 0;

  /// Concrete resident bytes of the C++ object graph (including vector
  /// capacity), for honesty about constant factors.
  std::uint64_t bytes = 0;

  /// Sums component usages (used by estimators composed of sub-sketches).
  SpaceUsage& operator+=(const SpaceUsage& other) {
    words += other.words;
    bytes += other.bytes;
    return *this;
  }
};

/// Adds two usages.
inline SpaceUsage operator+(SpaceUsage a, const SpaceUsage& b) {
  a += b;
  return a;
}

}  // namespace himpact

#endif  // HIMPACT_COMMON_SPACE_H_
