#ifndef HIMPACT_COMMON_ENVELOPE_H_
#define HIMPACT_COMMON_ENVELOPE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

/// \file
/// Framed checkpoint envelope: magic, format version, per-type tag,
/// payload length, and CRC32.
///
/// The raw `ByteWriter`/`ByteReader` codec (`bytes.h`) is deliberately
/// headerless so sketches can be chained back to back inside one payload.
/// Anything that leaves the process — a checkpoint file, a shard sketch
/// shipped to a merger — is wrapped in this envelope instead, so that a
/// truncated, bit-flipped, or wrong-type buffer is rejected with a clean
/// `Status` before any sketch decoder runs. See docs/CHECKPOINTS.md for
/// the byte-level layout and compatibility rules.

namespace himpact {

/// 'HICP' little-endian: the first four bytes of every checkpoint.
inline constexpr std::uint32_t kEnvelopeMagic = 0x50434948u;

/// Current envelope format version. Bump on any layout change; readers
/// reject versions they do not know (see docs/CHECKPOINTS.md).
inline constexpr std::uint32_t kEnvelopeVersion = 1;

/// Serialized envelope header size in bytes:
/// magic(4) + version(4) + tag(4) + length(8) + crc32(4).
inline constexpr std::size_t kEnvelopeHeaderBytes = 24;

/// Per-type tags so a checkpoint of one sketch type is never fed to
/// another type's decoder. Values are part of the on-disk format: never
/// reuse or renumber, only append.
enum class CheckpointTag : std::uint32_t {
  kExponentialHistogram = 1,
  kShiftingWindow = 2,
  kDgim = 3,
  kSlidingWindowHIndex = 4,
  kPhiIndex = 5,
  kOneSparse = 6,
  kSSparse = 7,
  kL0Sampler = 8,
  kDistinct = 9,
  kBjkst = 10,
  kHyperLogLog = 11,
  kKll = 12,
  kCountMin = 13,
  kCountSketch = 14,
  kSpaceSaving = 15,
  kMisraGries = 16,
  kReservoir = 17,
  kCashRegister = 18,
  kRandomOrder = 19,
  kOneHeavyHitter = 20,
  kHeavyHitters = 21,
  kIncrementalExact = 22,
  kExactCashRegister = 23,
  kCliSession = 24,
  kEngineManifest = 25,
  kEngineShard = 26,
  kServiceManifest = 27,
  kServiceStripe = 28,
  kSegmentRecord = 29,
  kDeltaManifest = 30,
  kDeltaHead = 31,
  kWalRecord = 32,
};

/// CRC32 (IEEE 802.3 polynomial, the zlib/PNG variant) of `data`.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t size);
std::uint32_t Crc32(const std::vector<std::uint8_t>& data);

/// Wraps `payload` in a framed envelope carrying `tag`.
std::vector<std::uint8_t> SealEnvelope(CheckpointTag tag,
                                       const std::vector<std::uint8_t>& payload);

/// Validates and strips the envelope, returning the payload.
///
/// Fails with `kInvalidArgument` when the buffer is shorter than a
/// header, the magic or version is wrong, the tag is not `expected_tag`,
/// the recorded payload length does not exactly match the bytes present
/// (both truncation and trailing garbage are rejected), or the CRC32 does
/// not match the payload.
StatusOr<std::vector<std::uint8_t>> OpenEnvelope(
    const std::vector<std::uint8_t>& bytes, CheckpointTag expected_tag);

}  // namespace himpact

#endif  // HIMPACT_COMMON_ENVELOPE_H_
