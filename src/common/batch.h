#ifndef HIMPACT_COMMON_BATCH_H_
#define HIMPACT_COMMON_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file
/// Scratch memory for the batched ingest fast path (docs/PERFORMANCE.md).
///
/// Batch contract, shared by every `AddBatch` / `UpdateBatch` /
/// `AddPaperBatch` method in the codebase:
///
///  1. **Equivalence**: a batch call must leave the estimator in a state
///     byte-identical (per `SerializeTo`) to applying the same events with
///     the scalar method, in order. Batch methods may restructure loops
///     (hash-once, component-outer iteration) only where the underlying
///     state is order-invariant; order-dependent estimators (KLL's
///     compaction RNG, SpaceSaving's heap, the reservoir grids) keep
///     strictly in-order loops.
///  2. **Zero allocation**: batch methods do not allocate per batch beyond
///     what the equivalent scalar sequence would (growing containers such
///     as KLL compactors still grow). Methods that need scratch arrays
///     take a caller-owned `BatchArena` and borrow from it.
///  3. **Single writer**: like the scalar hot path, batch methods are not
///     thread-safe; one writer per estimator (the sharded engine gives
///     each worker its own estimator and its own arena).

namespace himpact {

/// Caller-owned, reusable scratch memory for batch updates.
///
/// The arena hands out uninitialized `uint64_t` / `int64_t` arrays backed
/// by buffers that grow monotonically and are reused across batches, so a
/// steady-state ingest loop performs no allocations. Ownership rule: the
/// caller that drives the batch loop (engine worker, bench harness) owns
/// the arena and passes it down; estimators never allocate their own.
///
/// At most one `U64` and one `I64` borrow may be live at a time — a second
/// call to the same method invalidates the pointer returned by the first.
/// Every current batch method needs at most one array of each type.
class BatchArena {
 public:
  BatchArena() = default;

  // Movable (workers are moved into threads), not copyable.
  BatchArena(const BatchArena&) = delete;
  BatchArena& operator=(const BatchArena&) = delete;
  BatchArena(BatchArena&&) = default;
  BatchArena& operator=(BatchArena&&) = default;

  /// Borrows `n` uninitialized uint64 slots valid until the next `U64`
  /// call (or destruction). Capacity is retained across batches.
  std::uint64_t* U64(std::size_t n) {
    if (u64_.size() < n) u64_.resize(n);
    return u64_.data();
  }

  /// Borrows `n` uninitialized int64 slots valid until the next `I64`
  /// call (or destruction).
  std::int64_t* I64(std::size_t n) {
    if (i64_.size() < n) i64_.resize(n);
    return i64_.data();
  }

  /// Bytes currently held (for stats surfaces).
  std::size_t CapacityBytes() const {
    return u64_.capacity() * sizeof(std::uint64_t) +
           i64_.capacity() * sizeof(std::int64_t);
  }

 private:
  std::vector<std::uint64_t> u64_;
  std::vector<std::int64_t> i64_;
};

}  // namespace himpact

#endif  // HIMPACT_COMMON_BATCH_H_
