#ifndef HIMPACT_COMMON_CHECK_H_
#define HIMPACT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Lightweight invariant-checking macros.
///
/// `HIMPACT_CHECK` is always on (used for programmer errors that would
/// otherwise corrupt sketch state); `HIMPACT_DCHECK` compiles away in
/// release builds and is used on hot paths.

#define HIMPACT_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HIMPACT_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define HIMPACT_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HIMPACT_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, (msg));                        \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define HIMPACT_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define HIMPACT_DCHECK(cond) HIMPACT_CHECK(cond)
#endif

#endif  // HIMPACT_COMMON_CHECK_H_
