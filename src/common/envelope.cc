#include "common/envelope.h"

#include <array>

#include "common/bytes.h"

namespace himpact {
namespace {

/// The 256-entry CRC32 table for the reflected IEEE 802.3 polynomial,
/// built once at static-init time.
std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  return table;
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  const auto& table = CrcTable();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

std::uint32_t Crc32(const std::vector<std::uint8_t>& data) {
  return Crc32(data.data(), data.size());
}

std::vector<std::uint8_t> SealEnvelope(
    CheckpointTag tag, const std::vector<std::uint8_t>& payload) {
  ByteWriter writer;
  writer.U32(kEnvelopeMagic);
  writer.U32(kEnvelopeVersion);
  writer.U32(static_cast<std::uint32_t>(tag));
  writer.U64(payload.size());
  writer.U32(Crc32(payload));
  writer.Bytes(payload.data(), payload.size());
  return writer.Take();
}

StatusOr<std::vector<std::uint8_t>> OpenEnvelope(
    const std::vector<std::uint8_t>& bytes, CheckpointTag expected_tag) {
  ByteReader reader(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t tag = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
  if (!reader.U32(&magic) || !reader.U32(&version) || !reader.U32(&tag) ||
      !reader.U64(&length) || !reader.U32(&crc)) {
    return Status::InvalidArgument("checkpoint shorter than envelope header");
  }
  if (magic != kEnvelopeMagic) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  if (version != kEnvelopeVersion) {
    return Status::InvalidArgument("unsupported checkpoint format version");
  }
  if (tag != static_cast<std::uint32_t>(expected_tag)) {
    return Status::InvalidArgument("checkpoint holds a different sketch type");
  }
  // Exactly `length` payload bytes must follow: a shorter buffer is a
  // truncated checkpoint, a longer one carries trailing garbage.
  if (length != reader.remaining()) {
    return Status::InvalidArgument(
        "checkpoint payload length mismatch (truncated or trailing bytes)");
  }
  std::vector<std::uint8_t> payload;
  if (!reader.Bytes(static_cast<std::size_t>(length), &payload)) {
    return Status::InvalidArgument("truncated checkpoint payload");
  }
  if (Crc32(payload) != crc) {
    return Status::InvalidArgument("checkpoint CRC32 mismatch");
  }
  return payload;
}

}  // namespace himpact
