#include "common/math_util.h"

#include <cmath>

#include "common/check.h"

namespace himpact {

int FloorLog2(std::uint64_t x) {
  HIMPACT_CHECK(x > 0);
  int log = 0;
  while (x >>= 1) ++log;
  return log;
}

int CeilLog2(std::uint64_t x) {
  HIMPACT_CHECK(x > 0);
  const int floor_log = FloorLog2(x);
  return (std::uint64_t{1} << floor_log) == x ? floor_log : floor_log + 1;
}

double LogOnePlusEps(double x, double eps) {
  HIMPACT_CHECK(x > 0.0);
  HIMPACT_CHECK(eps > 0.0);
  return std::log(x) / std::log1p(eps);
}

int NumGeometricLevels(std::uint64_t max_value, double eps) {
  HIMPACT_CHECK(max_value >= 1);
  HIMPACT_CHECK(eps > 0.0);
  int levels = 1;
  double power = 1.0;
  const double max = static_cast<double>(max_value);
  while (power < max) {
    power *= (1.0 + eps);
    ++levels;
  }
  return levels;
}

GeometricGrid::GeometricGrid(std::uint64_t max_value, double eps)
    : eps_(eps) {
  const int levels = NumGeometricLevels(max_value, eps);
  powers_.reserve(static_cast<std::size_t>(levels));
  double power = 1.0;
  for (int i = 0; i < levels; ++i) {
    powers_.push_back(power);
    power *= (1.0 + eps);
  }
}

int GeometricGrid::LevelFloor(double x) const {
  if (x < 1.0) return -1;
  // Binary search for the last power <= x.
  int lo = 0;
  int hi = num_levels() - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (powers_[static_cast<std::size_t>(mid)] <= x) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return powers_[static_cast<std::size_t>(lo)] <= x ? lo : -1;
}

}  // namespace himpact
