#ifndef HIMPACT_COMMON_FLAGS_H_
#define HIMPACT_COMMON_FLAGS_H_

#include <cstdint>

/// \file
/// Strict numeric text parsing shared by every binary that reads flags
/// or a line protocol (`hstream_cli`, `hstream_serve`, the bench
/// drivers, `service/protocol.h`).
///
/// Two layers: the `*Text` functions convert a whole token and report
/// success without any I/O (protocol parsers turn failures into `ERR`
/// replies); the `*Flag` functions wrap them with the "bad value for
/// --flag" stderr diagnostics the CLIs share, plus explicit range checks
/// so absurd values (0 shards, 2^40 batches) are rejected up front
/// instead of producing undefined behavior downstream.

namespace himpact {

/// Parses an unsigned decimal integer occupying the whole token.
/// Rejects empty strings, signs (strtoull silently wraps "-1"), trailing
/// junk, and out-of-range values. No output on failure.
bool ParseUint64Text(const char* text, std::uint64_t* out);

/// Parses a floating-point number occupying the whole token. Rejects
/// empty strings, trailing junk, and overflow. No output on failure.
bool ParseDoubleText(const char* text, double* out);

/// `ParseDoubleText` with the shared CLI diagnostic
/// ("bad value for <flag>: ...") printed to stderr on failure.
bool ParseDoubleFlag(const char* flag, const char* text, double* out);

/// `ParseUint64Text` with the shared CLI diagnostic on failure.
bool ParseUint64Flag(const char* flag, const char* text, std::uint64_t* out);

/// `ParseUint64Flag` that additionally requires `min <= value <= max`,
/// printing the accepted range on failure.
bool ParseUint64FlagInRange(const char* flag, const char* text,
                            std::uint64_t min, std::uint64_t max,
                            std::uint64_t* out);

}  // namespace himpact

#endif  // HIMPACT_COMMON_FLAGS_H_
