#ifndef HIMPACT_COMMON_BYTES_H_
#define HIMPACT_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <vector>

/// \file
/// Little-endian byte buffers for sketch serialization.
///
/// Streaming deployments checkpoint sketch state across restarts and ship
/// shard sketches to a merger; `ByteWriter`/`ByteReader` are the codec
/// the estimators' `SerializeTo` / `DeserializeFrom` methods share. The
/// format is fixed-width little-endian with per-type magic tags — simple
/// enough to parse from any language.

namespace himpact {

/// Appends fixed-width values to a growable byte buffer.
class ByteWriter {
 public:
  /// Appends a 64-bit unsigned value (little-endian).
  void U64(std::uint64_t value) {
    for (int b = 0; b < 8; ++b) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
    }
  }

  /// Appends a 64-bit signed value (two's complement).
  void I64(std::int64_t value) {
    U64(static_cast<std::uint64_t>(value));
  }

  /// Appends a double (IEEE-754 bit pattern).
  void F64(double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    U64(bits);
  }

  /// The accumulated bytes.
  const std::vector<std::uint8_t>& buffer() const { return buffer_; }

  /// Moves the buffer out.
  std::vector<std::uint8_t> Take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Reads fixed-width values back; every read reports success so callers
/// can reject truncated or corrupt buffers.
class ByteReader {
 public:
  /// Wraps (does not copy) the byte buffer; it must outlive the reader.
  explicit ByteReader(const std::vector<std::uint8_t>& buffer)
      : buffer_(buffer) {}

  /// Reads a 64-bit unsigned value. Returns false at end of buffer.
  bool U64(std::uint64_t* value) {
    if (position_ + 8 > buffer_.size()) return false;
    std::uint64_t out = 0;
    for (int b = 0; b < 8; ++b) {
      out |= static_cast<std::uint64_t>(buffer_[position_ + b]) << (8 * b);
    }
    position_ += 8;
    *value = out;
    return true;
  }

  /// Reads a 64-bit signed value.
  bool I64(std::int64_t* value) {
    std::uint64_t bits;
    if (!U64(&bits)) return false;
    *value = static_cast<std::int64_t>(bits);
    return true;
  }

  /// Reads a double.
  bool F64(double* value) {
    std::uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(value, &bits, sizeof(*value));
    return true;
  }

  /// True iff every byte has been consumed.
  bool AtEnd() const { return position_ == buffer_.size(); }

 private:
  const std::vector<std::uint8_t>& buffer_;
  std::size_t position_ = 0;
};

}  // namespace himpact

#endif  // HIMPACT_COMMON_BYTES_H_
