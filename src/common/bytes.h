#ifndef HIMPACT_COMMON_BYTES_H_
#define HIMPACT_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <vector>

/// \file
/// Little-endian byte buffers for sketch serialization.
///
/// Streaming deployments checkpoint sketch state across restarts and ship
/// shard sketches to a merger; `ByteWriter`/`ByteReader` are the codec
/// the estimators' `SerializeTo` / `DeserializeFrom` methods share. The
/// format is fixed-width little-endian with per-type magic tags — simple
/// enough to parse from any language.

namespace himpact {

/// Appends fixed-width values to a growable byte buffer.
class ByteWriter {
 public:
  /// Appends a single byte.
  void U8(std::uint8_t value) { buffer_.push_back(value); }

  /// Appends a 32-bit unsigned value (little-endian).
  void U32(std::uint32_t value) {
    for (int b = 0; b < 4; ++b) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
    }
  }

  /// Appends a 64-bit unsigned value (little-endian).
  void U64(std::uint64_t value) {
    for (int b = 0; b < 8; ++b) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
    }
  }

  /// Appends a 64-bit signed value (two's complement).
  void I64(std::int64_t value) {
    U64(static_cast<std::uint64_t>(value));
  }

  /// Appends a double (IEEE-754 bit pattern).
  void F64(double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    U64(bits);
  }

  /// Appends `n` raw bytes verbatim.
  void Bytes(const std::uint8_t* data, std::size_t n) {
    buffer_.insert(buffer_.end(), data, data + n);
  }

  /// The accumulated bytes.
  const std::vector<std::uint8_t>& buffer() const { return buffer_; }

  /// Moves the buffer out.
  std::vector<std::uint8_t> Take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Reads fixed-width values back; every read reports success so callers
/// can reject truncated or corrupt buffers.
class ByteReader {
 public:
  /// Wraps (does not copy) the byte buffer; it must outlive the reader.
  explicit ByteReader(const std::vector<std::uint8_t>& buffer)
      : buffer_(buffer) {}

  /// Reads a single byte. Returns false at end of buffer.
  bool U8(std::uint8_t* value) {
    if (remaining() < 1) return false;
    *value = buffer_[position_];
    ++position_;
    return true;
  }

  /// Reads a 32-bit unsigned value. Returns false at end of buffer.
  bool U32(std::uint32_t* value) {
    if (remaining() < 4) return false;
    std::uint32_t out = 0;
    for (int b = 0; b < 4; ++b) {
      out |= static_cast<std::uint32_t>(buffer_[position_ + b]) << (8 * b);
    }
    position_ += 4;
    *value = out;
    return true;
  }

  /// Reads a 64-bit unsigned value. Returns false at end of buffer.
  bool U64(std::uint64_t* value) {
    if (remaining() < 8) return false;
    std::uint64_t out = 0;
    for (int b = 0; b < 8; ++b) {
      out |= static_cast<std::uint64_t>(buffer_[position_ + b]) << (8 * b);
    }
    position_ += 8;
    *value = out;
    return true;
  }

  /// Reads a 64-bit signed value.
  bool I64(std::int64_t* value) {
    std::uint64_t bits;
    if (!U64(&bits)) return false;
    *value = static_cast<std::int64_t>(bits);
    return true;
  }

  /// Reads a double.
  bool F64(double* value) {
    std::uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(value, &bits, sizeof(*value));
    return true;
  }

  /// Reads exactly `n` raw bytes into `out` (replacing its contents).
  /// Returns false — consuming nothing — if fewer than `n` bytes remain.
  /// The bounds check is overflow-safe: `n` is compared against the bytes
  /// left rather than added to the cursor.
  bool Bytes(std::size_t n, std::vector<std::uint8_t>* out) {
    if (n > remaining()) return false;
    const auto first =
        buffer_.begin() + static_cast<std::ptrdiff_t>(position_);
    out->assign(first, first + static_cast<std::ptrdiff_t>(n));
    position_ += n;
    return true;
  }

  /// Number of unconsumed bytes.
  std::size_t remaining() const { return buffer_.size() - position_; }

  /// True iff every byte has been consumed.
  bool AtEnd() const { return position_ == buffer_.size(); }

 private:
  const std::vector<std::uint8_t>& buffer_;
  std::size_t position_ = 0;
};

}  // namespace himpact

#endif  // HIMPACT_COMMON_BYTES_H_
