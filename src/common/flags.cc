#include "common/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace himpact {

bool ParseUint64Text(const char* text, std::uint64_t* out) {
  // strtoull silently accepts a leading '-' (wrapping the value), so
  // reject any sign explicitly.
  if (text == nullptr || text[0] == '\0' || text[0] == '-' ||
      text[0] == '+') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool ParseDoubleText(const char* text, double* out) {
  if (text == nullptr || text[0] == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool ParseDoubleFlag(const char* flag, const char* text, double* out) {
  if (ParseDoubleText(text, out)) return true;
  std::fprintf(stderr, "bad value for %s: '%s' (expected a number)\n", flag,
               text == nullptr ? "" : text);
  return false;
}

bool ParseUint64Flag(const char* flag, const char* text, std::uint64_t* out) {
  if (ParseUint64Text(text, out)) return true;
  std::fprintf(stderr,
               "bad value for %s: '%s' (expected an unsigned integer)\n",
               flag, text == nullptr ? "" : text);
  return false;
}

bool ParseUint64FlagInRange(const char* flag, const char* text,
                            std::uint64_t min, std::uint64_t max,
                            std::uint64_t* out) {
  if (!ParseUint64Flag(flag, text, out)) return false;
  if (*out < min || *out > max) {
    std::fprintf(stderr,
                 "bad value for %s: '%s' (want %llu..%llu)\n", flag, text,
                 static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max));
    return false;
  }
  return true;
}

}  // namespace himpact
