#ifndef HIMPACT_COMMON_STATUS_H_
#define HIMPACT_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

/// \file
/// Minimal Status / StatusOr error-handling vocabulary.
///
/// The library does not use exceptions (see DESIGN.md); fallible factory
/// functions return `StatusOr<T>` and infallible hot-path operations are
/// plain member functions.

namespace himpact {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kOutOfRange = 3,
  kInternal = 4,
  kUnavailable = 5,
  kResourceExhausted = 6,
  kDeadlineExceeded = 7,
};

/// Result of an operation: either OK or a code plus a human-readable message.
///
/// `Status` is cheap to copy for the OK case (empty message) and is used for
/// parameter validation in sketch/estimator factories.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }

  /// Returns an `kInvalidArgument` status with the given message.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }

  /// Returns a `kFailedPrecondition` status with the given message.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }

  /// Returns a `kOutOfRange` status with the given message.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }

  /// Returns a `kInternal` status with the given message.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  /// Returns a `kUnavailable` status with the given message. Used by
  /// randomized primitives (e.g. the l0-sampler) that are allowed to FAIL
  /// with probability delta.
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  /// Returns a `kResourceExhausted` status with the given message. Used
  /// by the admission layer when load is shed at a watermark (the wire
  /// reply is `RESOURCE_EXHAUSTED`; see docs/ROBUSTNESS.md).
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  /// Returns a `kDeadlineExceeded` status with the given message. Used
  /// when a per-operation deadline expires before the operation could
  /// complete (partial answers remain valid lower bounds).
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The human-readable message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or a non-OK `Status` explaining its absence.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit on purpose: mirrors absl::StatusOr).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {
    HIMPACT_CHECK_MSG(!status_.ok(), "StatusOr built from OK status");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status (OK iff a value is present).
  const Status& status() const { return status_; }

  /// The contained value. Requires `ok()`.
  const T& value() const& {
    HIMPACT_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }

  /// The contained value (move form). Requires `ok()`.
  T&& value() && {
    HIMPACT_CHECK_MSG(ok(), status_.message().c_str());
    return *std::move(value_);
  }

  /// Mutable access to the contained value. Requires `ok()`.
  T& value() & {
    HIMPACT_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace himpact

#endif  // HIMPACT_COMMON_STATUS_H_
