#include "fault/fault.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace himpact {
namespace {

const char* const kPointNames[kNumFaultPoints] = {
    "alloc-fail", "torn-checkpoint", "worker-stall", "ring-full",
    "clock-skew", "net-accept-fail", "net-partial-write",
    "segment-map-fail", "segment-torn-delta", "wal-append-fail",
    "wal-torn-tail",
};

/// Parses one `name[:skip[:max_fires[:param]]]` clause into its parts.
Status ParseClause(const std::string& clause, FaultPoint* point,
                   FaultSpec* spec) {
  std::size_t start = 0;
  std::string fields[4];
  int num_fields = 0;
  while (num_fields < 4) {
    const std::size_t colon = clause.find(':', start);
    if (colon == std::string::npos) {
      fields[num_fields++] = clause.substr(start);
      break;
    }
    fields[num_fields++] = clause.substr(start, colon - start);
    start = colon + 1;
    if (num_fields == 4) {
      return Status::InvalidArgument("too many fields in fault clause '" +
                                     clause + "'");
    }
  }
  const std::optional<FaultPoint> parsed = FaultRegistry::FromName(fields[0]);
  if (!parsed.has_value()) {
    return Status::InvalidArgument("unknown fault point '" + fields[0] + "'");
  }
  *point = *parsed;
  *spec = FaultSpec{};
  std::uint64_t* const targets[3] = {&spec->skip, &spec->max_fires,
                                     &spec->param};
  for (int i = 1; i < num_fields; ++i) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(fields[i].c_str(), &end, 10);
    if (fields[i].empty() || end == nullptr || *end != '\0' || errno != 0) {
      return Status::InvalidArgument("bad number '" + fields[i] +
                                     "' in fault clause '" + clause + "'");
    }
    *targets[i - 1] = value;
  }
  return Status::OK();
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::Arm(FaultPoint point, const FaultSpec& spec) {
  Slot& slot = slots_[static_cast<int>(point)];
  slot.skip.store(spec.skip, std::memory_order_relaxed);
  slot.max_fires.store(spec.max_fires, std::memory_order_relaxed);
  slot.param.store(spec.param, std::memory_order_relaxed);
  slot.hits.store(0, std::memory_order_relaxed);
  slot.fires.store(0, std::memory_order_relaxed);
  armed_mask_.fetch_or(1u << static_cast<int>(point),
                       std::memory_order_release);
}

void FaultRegistry::Disarm(FaultPoint point) {
  armed_mask_.fetch_and(~(1u << static_cast<int>(point)),
                        std::memory_order_release);
}

void FaultRegistry::Reset() {
  armed_mask_.store(0, std::memory_order_release);
  for (Slot& slot : slots_) {
    slot.skip.store(0, std::memory_order_relaxed);
    slot.max_fires.store(0, std::memory_order_relaxed);
    slot.param.store(0, std::memory_order_relaxed);
    slot.hits.store(0, std::memory_order_relaxed);
    slot.fires.store(0, std::memory_order_relaxed);
  }
}

bool FaultRegistry::ShouldFireSlow(FaultPoint point) {
  const std::uint32_t mask = 1u << static_cast<int>(point);
  if ((armed_mask_.load(std::memory_order_acquire) & mask) == 0) return false;
  Slot& slot = slots_[static_cast<int>(point)];
  const std::uint64_t hit = slot.hits.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t skip = slot.skip.load(std::memory_order_relaxed);
  const std::uint64_t max_fires =
      slot.max_fires.load(std::memory_order_relaxed);
  if (hit < skip || hit - skip >= max_fires) return false;
  slot.fires.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t FaultRegistry::param(FaultPoint point) const {
  if (!armed(point)) return 0;
  return slots_[static_cast<int>(point)].param.load(std::memory_order_relaxed);
}

std::uint64_t FaultRegistry::hits(FaultPoint point) const {
  return slots_[static_cast<int>(point)].hits.load(std::memory_order_relaxed);
}

std::uint64_t FaultRegistry::fires(FaultPoint point) const {
  return slots_[static_cast<int>(point)].fires.load(std::memory_order_relaxed);
}

bool FaultRegistry::armed(FaultPoint point) const {
  return (armed_mask_.load(std::memory_order_acquire) &
          (1u << static_cast<int>(point))) != 0;
}

Status FaultRegistry::ArmFromText(const std::string& text) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string clause = text.substr(start, comma - start);
    if (!clause.empty()) {
      FaultPoint point = FaultPoint::kAllocFail;
      FaultSpec spec;
      const Status parsed = ParseClause(clause, &point, &spec);
      if (!parsed.ok()) return parsed;
      Arm(point, spec);
    }
    if (comma == text.size()) break;
    start = comma + 1;
  }
  return Status::OK();
}

Status FaultRegistry::ArmFromEnv() {
  const char* text = std::getenv("HIMPACT_FAULTS");
  if (text == nullptr || text[0] == '\0') return Status::OK();
  return ArmFromText(text);
}

const char* FaultRegistry::Name(FaultPoint point) {
  return kPointNames[static_cast<int>(point)];
}

std::optional<FaultPoint> FaultRegistry::FromName(const std::string& name) {
  for (int i = 0; i < kNumFaultPoints; ++i) {
    if (name == kPointNames[i]) return static_cast<FaultPoint>(i);
  }
  return std::nullopt;
}

std::uint64_t FaultClock::NowNanos() {
  const std::uint64_t base = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  FaultRegistry& registry = FaultRegistry::Global();
  if (registry.AnyArmed() && registry.ShouldFire(FaultPoint::kClockSkew)) {
    return base + registry.param(FaultPoint::kClockSkew);
  }
  return base;
}

void SleepForMicros(std::uint64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace himpact
