#ifndef HIMPACT_FAULT_BACKOFF_H_
#define HIMPACT_FAULT_BACKOFF_H_

#include <cstdint>

#include "common/status.h"
#include "fault/fault.h"
#include "hash/mix.h"

/// \file
/// Retry with jittered exponential backoff for transient failures.
///
/// `JitteredBackoff` produces the classic doubling delay sequence with
/// deterministic +/-50% jitter (SplitMix64 of a caller seed, so tests
/// replay exactly); `RetryWithBackoff` wraps a fallible operation and
/// retries `kInternal`/`kUnavailable` failures, sleeping the backoff
/// between attempts. The engine's and service's checkpoint writers use
/// it so a transient I/O fault (or an injected `torn-checkpoint`) costs
/// a retry, not a lost checkpoint; non-transient failures
/// (`kInvalidArgument`, `kFailedPrecondition`) are returned immediately
/// because retrying cannot fix them.

namespace himpact {

/// Retry policy: attempts and backoff shape.
struct RetryOptions {
  /// Total tries (first attempt included). 1 disables retrying.
  std::uint32_t max_attempts = 3;
  /// Delay before the first retry; doubles per retry.
  std::uint64_t base_backoff_nanos = 1'000'000;  // 1 ms
  /// Cap on any single delay.
  std::uint64_t max_backoff_nanos = 50'000'000;  // 50 ms
  /// Jitter seed (deterministic sequences for tests).
  std::uint64_t seed = 0x5242ULL;
};

/// The delay generator: exponential growth, +/-50% deterministic jitter.
class JitteredBackoff {
 public:
  explicit JitteredBackoff(const RetryOptions& options)
      : options_(options), state_(options.seed) {}

  /// Delay to sleep before the next retry, in nanoseconds.
  std::uint64_t NextDelayNanos() {
    std::uint64_t base = options_.base_backoff_nanos;
    for (std::uint32_t i = 0; i < retries_ && base < options_.max_backoff_nanos;
         ++i) {
      base <<= 1;
    }
    if (base > options_.max_backoff_nanos) base = options_.max_backoff_nanos;
    ++retries_;
    // Jitter in [base/2, 3*base/2): decorrelates retry storms from
    // concurrent writers without changing the expected delay.
    state_ = SplitMix64(state_);
    if (base == 0) return 0;
    return base / 2 + state_ % base;
  }

  /// Retries generated so far.
  std::uint32_t retries() const { return retries_; }

 private:
  RetryOptions options_;
  std::uint64_t state_;
  std::uint32_t retries_ = 0;
};

/// True for failures worth retrying (transient by contract).
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kUnavailable;
}

/// Runs `operation` (a `Status()` callable) up to `max_attempts` times,
/// sleeping a jittered backoff between retryable failures. Returns the
/// first success, the first non-retryable failure, or the last failure.
template <typename Operation>
Status RetryWithBackoff(const RetryOptions& options, Operation&& operation) {
  JitteredBackoff backoff(options);
  Status status = Status::OK();
  for (std::uint32_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    status = operation();
    if (status.ok() || !IsRetryable(status)) return status;
    if (attempt + 1 < options.max_attempts) {
      SleepForMicros(backoff.NextDelayNanos() / 1000);
    }
  }
  return status;
}

}  // namespace himpact

#endif  // HIMPACT_FAULT_BACKOFF_H_
