#ifndef HIMPACT_FAULT_FAULT_H_
#define HIMPACT_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"

/// \file
/// Process-wide runtime fault injection registry.
///
/// Production code compiles permanent, named injection points into its
/// hot paths (`FaultRegistry::ShouldFire`); tests, the overload bench,
/// and operators arm them — programmatically or through the
/// `HIMPACT_FAULTS` environment variable — to force the failure modes
/// the fault-tolerance layer must survive: allocation failure, torn
/// checkpoint writes, stalled shard workers, full ingest rings, and
/// clock skew. Every probe is hit-counted whether or not it fires, so a
/// test can assert both "the fault was reached" and "the fault fired
/// exactly N times". See docs/ROBUSTNESS.md for the catalogue and the
/// guarantees each point is paired with.
///
/// Cost when nothing is armed: one relaxed atomic load of a bitmask per
/// probe (the per-point hit counters are only touched once the point is
/// armed), so the hooks are safe to leave in release hot paths.
///
/// Env syntax (comma-separated, one clause per point):
///
///   HIMPACT_FAULTS="<point>[:<skip>[:<max_fires>[:<param>]]],..."
///
/// e.g. `torn-checkpoint:0:1` fires the first write only, and
/// `worker-stall:100:2:500000` stalls the 101st and 102nd probes for
/// 500000 microseconds each. Omitted fields default to skip=0,
/// max_fires=unlimited, param=0.

namespace himpact {

/// The compiled-in injection points.
enum class FaultPoint : int {
  /// A state allocation (per-user sketch promotion) fails; the owner
  /// must degrade, not crash. Param: unused.
  kAllocFail = 0,
  /// A checkpoint file write tears mid-stream: half the bytes land in
  /// the temporary file and the write reports `kInternal`. Param: unused.
  kTornCheckpoint = 1,
  /// A shard worker (engine) or stripe owner (service) stalls. Param:
  /// stall duration in microseconds.
  kWorkerStall = 2,
  /// An SPSC ring reports full regardless of its true occupancy,
  /// forcing the producer's backoff/shed path. Param: unused.
  kRingFull = 3,
  /// `FaultClock::NowNanos` jumps forward. Param: skew in nanoseconds.
  kClockSkew = 4,
  /// The TCP front end's `accept()` reports a transient failure
  /// (EMFILE-style): the accept batch is abandoned for this wakeup and
  /// the listener must stay registered. Param: unused.
  kNetAcceptFail = 5,
  /// A connection `write()` is clamped to one byte, forcing the
  /// partial-write continuation path (buffered remainder + EPOLLOUT
  /// re-arm). Param: unused.
  kNetPartialWrite = 6,
  /// A segment-store mmap or block page-in fails; a cold `get` must
  /// degrade to the frozen-floor answer, never crash. Param: unused.
  kSegmentMapFail = 7,
  /// An incremental-checkpoint delta segment write tears mid-stream
  /// (half the bytes land, the write reports `kInternal`); restore must
  /// fall back to the previous good chain. Param: unused.
  kSegmentTornDelta = 8,
  /// A write-ahead-log append fails at the disk layer. The WAL must
  /// degrade to checkpoint-only durability — keep serving, flag the
  /// loss of the log in `health` — never drop writes silently or
  /// crash. Param: unused.
  kWalAppendFail = 9,
  /// A write-ahead-log append lands only the first half of the framed
  /// record on disk (the classic power-cut torn tail) and then degrades
  /// like `kWalAppendFail`; the reopening scanner must repair the tail
  /// and replay every record before it. Param: unused.
  kWalTornTail = 10,
};

/// Number of fault points (array sizing).
inline constexpr int kNumFaultPoints = 11;

/// When an armed point fires: probes `skip..skip+max_fires-1` (0-based
/// hit indices counted from arming) fire, the rest pass through.
struct FaultSpec {
  std::uint64_t skip = 0;
  std::uint64_t max_fires = ~0ull;
  std::uint64_t param = 0;
};

/// The process-wide registry of armed faults and probe counters.
///
/// Thread-safe: probes are lock-free; arming/disarming uses release
/// stores so a probe observes a fully written spec. Arming is expected
/// to happen at startup or between test phases, not concurrently with
/// itself.
class FaultRegistry {
 public:
  /// The process-wide instance every compiled-in probe consults.
  static FaultRegistry& Global();

  /// Arms `point` with `spec`, resetting its hit/fire counters.
  void Arm(FaultPoint point, const FaultSpec& spec);

  /// Disarms `point` (probes pass through; counters keep their values).
  void Disarm(FaultPoint point);

  /// Disarms every point and zeroes all counters.
  void Reset();

  /// True iff any point is armed (the one-load fast path).
  bool AnyArmed() const {
    return armed_mask_.load(std::memory_order_relaxed) != 0;
  }

  /// The probe: counts a hit against `point` and returns true iff the
  /// point is armed and this hit falls inside the spec's fire window.
  bool ShouldFire(FaultPoint point) {
    if (!AnyArmed()) return false;
    return ShouldFireSlow(point);
  }

  /// The armed spec's param (0 when the point is not armed).
  std::uint64_t param(FaultPoint point) const;

  /// Probes observed at `point` since it was last armed (or `Reset`).
  std::uint64_t hits(FaultPoint point) const;

  /// Probes at `point` that actually fired.
  std::uint64_t fires(FaultPoint point) const;

  /// True iff `point` is currently armed.
  bool armed(FaultPoint point) const;

  /// Parses and arms a `HIMPACT_FAULTS`-syntax clause list (see file
  /// comment). `kInvalidArgument` names the offending clause; points
  /// armed before the bad clause stay armed.
  Status ArmFromText(const std::string& text);

  /// Reads the `HIMPACT_FAULTS` environment variable and arms it via
  /// `ArmFromText`; OK (and a no-op) when the variable is unset/empty.
  Status ArmFromEnv();

  /// The canonical name of `point` ("alloc-fail", "torn-checkpoint",
  /// "worker-stall", "ring-full", "clock-skew", "net-accept-fail",
  /// "net-partial-write", "segment-map-fail", "segment-torn-delta",
  /// "wal-append-fail", "wal-torn-tail").
  static const char* Name(FaultPoint point);

  /// Parses a canonical point name.
  static std::optional<FaultPoint> FromName(const std::string& name);

 private:
  struct Slot {
    std::atomic<std::uint64_t> skip{0};
    std::atomic<std::uint64_t> max_fires{0};
    std::atomic<std::uint64_t> param{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
  };

  bool ShouldFireSlow(FaultPoint point);

  std::atomic<std::uint32_t> armed_mask_{0};
  Slot slots_[kNumFaultPoints];
};

/// The time source for watchdogs, deadlines, and backoff: the steady
/// clock plus whatever skew the `kClockSkew` fault injects. All
/// fault-tolerance timing reads this clock so skew faults exercise
/// every timeout path at once.
struct FaultClock {
  /// Monotone now, in nanoseconds (plus injected skew when armed).
  static std::uint64_t NowNanos();
};

/// Sleeps the calling thread for `micros` microseconds (the stall
/// primitive used by `kWorkerStall` hooks).
void SleepForMicros(std::uint64_t micros);

}  // namespace himpact

#endif  // HIMPACT_FAULT_FAULT_H_
