#ifndef HIMPACT_FAULT_ADMISSION_H_
#define HIMPACT_FAULT_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "fault/backoff.h"
#include "fault/fault.h"

/// \file
/// Bounded admission for the service boundary.
///
/// An `AdmissionController` gates operations with two watermarks:
///
///  * **In-flight depth** — at most `max_inflight` operations may be
///    inside the service at once; the excess is shed immediately with
///    `kResourceExhausted` (surfaced as `RESOURCE_EXHAUSTED` on the
///    wire) and counted. Shedding is loud by construction: there is no
///    code path that drops an operation without bumping `shed()`.
///  * **Per-op deadline** — each admitted operation carries an absolute
///    `FaultClock` deadline; long multi-stripe scans check it between
///    stripes and abandon the rest with `kDeadlineExceeded`, returning
///    whatever partial (monotone lower-bound) answer they assembled.
///
/// Both watermarks are optional (0 disables), in which case admission
/// is two relaxed atomic increments — cheap enough to leave on every
/// operation so the counters stay trustworthy.
///
/// Usage is RAII:
///
/// ```
/// AdmissionTicket ticket(controller_.get());
/// if (!ticket.ok()) return Status::ResourceExhausted("...");
/// ... do the work, consulting ticket.deadline_nanos() ...
/// ```

namespace himpact {

/// Overload-protection configuration for a service boundary.
struct OverloadOptions {
  /// Maximum concurrent operations before shedding (0 = unlimited).
  std::uint64_t max_inflight = 0;
  /// Per-operation time budget in nanoseconds (0 = none).
  std::uint64_t op_deadline_nanos = 0;
  /// Retry policy for the boundary's checkpoint writer (transient write
  /// failures back off with jitter instead of failing the save).
  RetryOptions checkpoint_retry;
};

/// Aggregate admission counters, for `Stats()`/`health` reporting.
struct AdmissionCounters {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t inflight = 0;
};

/// The thread-safe admission gate.
class AdmissionController {
 public:
  explicit AdmissionController(const OverloadOptions& options)
      : options_(options) {}

  /// Attempts to admit one operation. On success the caller MUST call
  /// `Release()` exactly once; on failure a shed is counted.
  bool TryAdmit() {
    if (options_.max_inflight != 0) {
      const std::uint64_t depth =
          inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (depth > options_.max_inflight) {
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        shed_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Releases one admitted operation.
  void Release() {
    if (options_.max_inflight != 0) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  /// The absolute `FaultClock` deadline for an operation admitted now
  /// (0 when deadlines are disabled).
  std::uint64_t DeadlineFromNow() const {
    if (options_.op_deadline_nanos == 0) return 0;
    return FaultClock::NowNanos() + options_.op_deadline_nanos;
  }

  /// True iff `deadline_nanos` is set and has passed. Callers report
  /// the miss with `CountDeadlineExceeded()` so no deadline abandon is
  /// silent.
  static bool DeadlinePassed(std::uint64_t deadline_nanos) {
    return deadline_nanos != 0 && FaultClock::NowNanos() > deadline_nanos;
  }

  /// Counts one operation abandoned (fully or partially) on deadline.
  void CountDeadlineExceeded() {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Snapshot of the counters.
  AdmissionCounters Counters() const {
    AdmissionCounters counters;
    counters.admitted = admitted_.load(std::memory_order_relaxed);
    counters.shed = shed_.load(std::memory_order_relaxed);
    counters.deadline_exceeded =
        deadline_exceeded_.load(std::memory_order_relaxed);
    counters.inflight = inflight_.load(std::memory_order_relaxed);
    return counters;
  }

  /// The configured watermarks.
  const OverloadOptions& options() const { return options_; }

 private:
  OverloadOptions options_;
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
};

/// RAII admission: admits on construction, releases on destruction.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionController* controller)
      : controller_(controller) {
    if (controller_ == nullptr) {
      admitted_ = true;
      return;
    }
    admitted_ = controller_->TryAdmit();
    if (admitted_) deadline_nanos_ = controller_->DeadlineFromNow();
  }

  ~AdmissionTicket() {
    if (admitted_ && controller_ != nullptr) controller_->Release();
  }

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  /// True iff the operation was admitted.
  bool ok() const { return admitted_; }

  /// The operation's absolute deadline (0 = none).
  std::uint64_t deadline_nanos() const { return deadline_nanos_; }

 private:
  AdmissionController* controller_;
  bool admitted_ = false;
  std::uint64_t deadline_nanos_ = 0;
};

}  // namespace himpact

#endif  // HIMPACT_FAULT_ADMISSION_H_
