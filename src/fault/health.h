#ifndef HIMPACT_FAULT_HEALTH_H_
#define HIMPACT_FAULT_HEALTH_H_

#include <cstdint>

/// \file
/// The per-shard health state machine of the fault-tolerance layer.
///
/// A `HealthTracker` watches one worker's (pushed, consumed) counter
/// pair through periodic polls and classifies the worker as
///
///   healthy --(backlog > lag watermark)--> lagging
///   lagging --(no progress for stall timeout)--> stalled
///   any     --(caught up / progressing again)--> healthy or lagging
///
/// The tracker is pure and deterministic — counters and timestamps are
/// passed in, nothing is read from a clock — so the transitions are
/// unit-testable without threads. The engine embeds one tracker per
/// shard and polls it from the producer thread with `FaultClock` time
/// (`engine/sharded_engine.h`); merge-on-query skips shards the tracker
/// reports stalled and tags the answer as a monotone lower bound (see
/// docs/ROBUSTNESS.md, "Degraded answers").
///
/// `stalled` requires both a non-empty backlog and no consumed-counter
/// progress for the stall timeout: an idle worker with an empty ring is
/// healthy, not stalled, no matter how long it sits.

namespace himpact {

/// Worker health, from the watchdog's point of view.
enum class ShardHealth : std::uint8_t {
  /// Consuming, and the backlog is under the lag watermark.
  kHealthy = 0,
  /// Consuming, but the backlog is above the lag watermark.
  kLagging = 1,
  /// Non-empty backlog with no progress for the stall timeout.
  kStalled = 2,
};

/// The health verb / log name of a state ("healthy", "lagging",
/// "stalled").
inline const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kLagging:
      return "lagging";
    case ShardHealth::kStalled:
      return "stalled";
  }
  return "unknown";
}

/// Watchdog thresholds.
struct HealthOptions {
  /// Backlog (pushed - consumed) above which a progressing worker is
  /// reported lagging.
  std::uint64_t lag_watermark = 1024;
  /// No-progress window after which a backlogged worker is reported
  /// stalled.
  std::uint64_t stall_timeout_nanos = 100'000'000;  // 100 ms
};

/// The state machine for one worker. Poll from a single thread.
class HealthTracker {
 public:
  HealthTracker() = default;
  explicit HealthTracker(const HealthOptions& options) : options_(options) {}

  /// Feeds one observation and returns the resulting state.
  ShardHealth Poll(std::uint64_t pushed, std::uint64_t consumed,
                   std::uint64_t now_nanos) {
    backlog_ = pushed - consumed;
    const bool progressed =
        !observed_once_ || consumed != last_consumed_ || backlog_ == 0;
    if (progressed) {
      last_progress_nanos_ = now_nanos;
      last_consumed_ = consumed;
      observed_once_ = true;
      state_ = backlog_ > options_.lag_watermark ? ShardHealth::kLagging
                                                 : ShardHealth::kHealthy;
      return state_;
    }
    if (now_nanos - last_progress_nanos_ >= options_.stall_timeout_nanos) {
      state_ = ShardHealth::kStalled;
    } else if (backlog_ > options_.lag_watermark) {
      state_ = ShardHealth::kLagging;
    }
    return state_;
  }

  /// The most recent `Poll` classification.
  ShardHealth state() const { return state_; }

  /// Backlog at the most recent poll.
  std::uint64_t backlog() const { return backlog_; }

  /// Timestamp of the most recent poll that observed progress.
  std::uint64_t last_progress_nanos() const { return last_progress_nanos_; }

  /// The thresholds in force.
  const HealthOptions& options() const { return options_; }

 private:
  HealthOptions options_;
  ShardHealth state_ = ShardHealth::kHealthy;
  std::uint64_t last_consumed_ = 0;
  std::uint64_t last_progress_nanos_ = 0;
  std::uint64_t backlog_ = 0;
  bool observed_once_ = false;
};

}  // namespace himpact

#endif  // HIMPACT_FAULT_HEALTH_H_
