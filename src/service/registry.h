#ifndef HIMPACT_SERVICE_REGISTRY_H_
#define HIMPACT_SERVICE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/exponential_histogram.h"
#include "storage/segment_store.h"
#include "stream/types.h"

/// \file
/// Sharded per-user tiered state for the multi-tenant H-impact service.
///
/// The registry owns one state record per user, partitioned across
/// lock-striped shards ("stripes") by a SplitMix64 hash of the user id,
/// and keeps total memory under a configured budget with four tiers:
///
///  * **cold** — a user seen fewer than `promote_threshold` times keeps
///    its raw response counts and an exactly maintained H-index. Most
///    users of a heavy-tailed population stay here forever, in a few
///    dozen bytes each.
///  * **hot** — once a user crosses the threshold, the raw values are
///    replayed into a per-user Algorithm 1 sketch
///    (`ExponentialHistogramEstimator`, `2/eps log max_h` words
///    regardless of further volume) and the raw values are dropped.
///  * **segment** — with a segment directory configured
///    (`ServiceOptions::segment_dir`), an over-budget stripe demotes
///    its least-recently-updated users by *paging them out*: the full
///    cold/hot state is serialized into the stripe's mmap-backed
///    segment store (storage/segment_store.h) and the per-user RAM
///    footprint drops to a bare record. A `get` pages the record back
///    in and answers from the real state — byte-identical to the
///    pre-eviction answer — and a new event restores the state to RAM
///    and continues it live, so nothing is forgotten; RAM is bounded by
///    paging, not by loss. A failed page-in degrades to the frozen
///    floor (below), never crashes.
///  * **frozen** — without a segment directory (or when a paged
///    reactivation fails), demotion falls back to forgetting: the
///    sketch's estimate is frozen as a floor, the sketch itself is
///    merged into the stripe's *archive* sketch (so its mass is not
///    lost to aggregate queries), and the per-user footprint drops to a
///    bare record. A frozen user that becomes active again is
///    re-promoted to a fresh hot sketch; because an H-index is monotone
///    non-decreasing, `max(floor, fresh estimate)` remains a valid
///    lower bound with the usual one-sided Algorithm 1 guarantee on the
///    post-reactivation stream. See docs/SERVICE.md for the accounting
///    and staleness rules.
///
/// Thread safety: every public method is safe to call from any thread;
/// each stripe is guarded by its own mutex, so operations on users in
/// different stripes proceed in parallel. Single operations never take
/// more than one stripe lock (cross-stripe queries lock stripes one at
/// a time), so the registry cannot deadlock against itself.

namespace himpact {

/// Configuration of the service layer (registry + query service).
struct ServiceOptions {
  /// Approximation parameter of the per-user hot-tier sketches.
  double eps = 0.1;
  /// Upper bound on any single user's H-index (the sketch guess cap).
  std::uint64_t max_h = 1u << 20;
  /// Number of lock stripes (hash shards) for per-user state.
  std::size_t num_stripes = 8;
  /// Events after which a cold user is promoted to a hot sketch.
  std::uint64_t promote_threshold = 64;
  /// Total per-user state budget across all stripes, in bytes.
  std::uint64_t memory_budget_bytes = 64ull << 20;
  /// Per-stripe leaderboard capacity; `TopK(k)` requires `k <=`
  /// this (the maintained board is the TopK source of truth).
  std::size_t leaderboard_capacity = 64;
  /// Feed every event through an Algorithm 8 heavy-hitters grid too
  /// (service-level; the registry itself ignores this).
  bool enable_heavy_hitters = true;
  /// Heavy-hitters grid parameters (see heavy/heavy_hitters.h).
  double hh_eps = 0.25;
  double hh_delta = 0.1;
  std::uint64_t hh_max_papers = 1u << 20;
  /// Seed for the heavy-hitters hash grid.
  std::uint64_t seed = 2017;
  /// Directory for the per-stripe segment stores (the paged cold tier).
  /// Empty disables paging: demotion freezes users instead. Runtime-only
  /// — NOT part of the checkpoint manifest, so a checkpoint restores
  /// into a service with any (or no) segment directory.
  std::string segment_dir;
  /// Longest incremental delta chain a checkpoint path may grow before
  /// `CheckpointTo(kIncremental)` escalates to a full save (and the
  /// session's background collapse job starts folding earlier, at half
  /// this). 0 disables the inline escalation. Runtime-only, like
  /// `segment_dir` — not part of the checkpoint manifest.
  std::uint64_t max_chain_len = 64;
};

/// Which tier a user's state currently occupies. Values are the
/// checkpoint and wire encoding: append only, never renumber.
enum class UserTier : std::uint8_t {
  kCold = 0,
  kHot = 1,
  kFrozen = 2,
  kSegment = 3,
};

/// One leaderboard row.
struct LeaderboardEntry {
  AuthorId user = 0;
  double estimate = 0.0;
};

/// Point-lookup result for one user.
struct UserSnapshot {
  AuthorId user = 0;
  UserTier tier = UserTier::kCold;
  std::uint64_t events = 0;
  double estimate = 0.0;
};

/// Aggregate registry counters (all stripes summed).
struct RegistryStats {
  std::uint64_t total_events = 0;
  std::uint64_t num_users = 0;
  std::uint64_t cold_users = 0;
  std::uint64_t hot_users = 0;
  std::uint64_t frozen_users = 0;
  std::uint64_t segment_users = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t budget_bytes = 0;
  /// Sketch allocations vetoed by the `alloc-fail` fault point. Each one
  /// kept the user on its previous (exact or frozen-floor) state, so
  /// estimates stay valid lower bounds; see docs/ROBUSTNESS.md.
  std::uint64_t alloc_failures = 0;
  /// `TopK` answers served from the epoch-tagged merged-board cache vs
  /// recomputed because some stripe's board epoch advanced (see
  /// docs/PERFORMANCE.md, "Epoch-cached merge-on-query").
  std::uint64_t topk_cache_hits = 0;
  std::uint64_t topk_cache_misses = 0;
  /// Segment-store aggregates (zero when no segment_dir is configured).
  /// Sealed segment files / bytes are state-like; the page-in and
  /// failure counts are runtime counters surfaced via `health`.
  std::uint64_t segment_files = 0;
  std::uint64_t segment_bytes = 0;
  std::uint64_t segment_pending_records = 0;
  std::uint64_t segment_seals = 0;
  std::uint64_t page_ins = 0;
  std::uint64_t page_in_cache_hits = 0;
  std::uint64_t page_in_failures = 0;
  /// Sealed bytes whose records have been superseded (a user re-paged
  /// and re-demoted under a newer generation) or forgotten — space a
  /// future segment compactor would reclaim. Today it is only freed
  /// when a restore rebuilds the stripe's store.
  std::uint64_t segment_dead_bytes = 0;
};

/// The sharded, budgeted, tiered per-user store.
class TieredUserRegistry {
 public:
  /// Validates options and builds an empty registry.
  static StatusOr<TieredUserRegistry> Create(const ServiceOptions& options);

  TieredUserRegistry(TieredUserRegistry&&) noexcept = default;
  TieredUserRegistry& operator=(TieredUserRegistry&&) noexcept = default;

  /// Observes one response count for `user` (one paper / post with
  /// `value` responses, aggregate model) and returns the user's updated
  /// H-index estimate. Thread-safe; may promote the user or demote
  /// colder users to stay under budget.
  double Add(AuthorId user, std::uint64_t value);

  /// The user's current H-index estimate (0 if never seen). For cold
  /// users this is exact; for hot users it carries Algorithm 1's
  /// one-sided `(1-eps)` guarantee; for frozen users it is the frozen
  /// lower bound. Thread-safe.
  double PointHIndex(AuthorId user) const;

  /// Detailed lookup; returns false if the user was never seen.
  bool Lookup(AuthorId user, UserSnapshot* out) const;

  /// The `k` users with the largest maintained estimates, descending
  /// (ties broken by smaller user id). Served from the per-stripe
  /// leaderboards; requires `k <= leaderboard_capacity`. Epoch-cached:
  /// the merged, sorted board is kept alongside the stripe epochs that
  /// produced it and only re-merged when some stripe's board changed
  /// since (docs/PERFORMANCE.md); hit/miss counts surface in `Stats()`.
  std::vector<LeaderboardEntry> TopK(std::size_t k) const;

  /// `TopK` under an absolute `FaultClock` deadline (0 behaves like
  /// `TopK`): a stripe whose lock cannot be acquired before the deadline
  /// — e.g. one wedged behind a stalled writer — is skipped and counted
  /// in `*stripes_skipped`. Because maintained estimates only grow, the
  /// partial board is a valid lower-bound leaderboard over the merged
  /// stripes (see docs/ROBUSTNESS.md, "Degraded answers"). Deliberately
  /// bypasses the `TopK` cache in both directions: a partial answer is
  /// never cached, and a degraded call never serves a (possibly
  /// wedged-stripe-covering) cached board as a fresh degraded answer.
  std::vector<LeaderboardEntry> TopKDegraded(
      std::size_t k, std::uint64_t deadline_nanos,
      std::size_t* stripes_skipped) const;

  /// Aggregate counters across stripes. Thread-safe; the snapshot is
  /// per-stripe consistent, not a global atomic cut.
  RegistryStats Stats() const;

  /// Seals every stripe's pending cold-tier demotion records into
  /// segment files (stripes without a store or without pending records
  /// are skipped). Thread-safe — takes each stripe lock in turn, so it
  /// can run on a background worker (the session's `kTierDemotion`
  /// maintenance job) to move seal I/O off the serving thread; the next
  /// checkpoint's inline flush then finds less to write. Failed seals
  /// keep their records pending (counted, retried later), exactly like
  /// the checkpoint-time flush. Returns the number of stripes whose
  /// pending buffer was sealed.
  std::size_t FlushSegmentStores();

  /// Number of lock stripes.
  std::size_t num_stripes() const { return stripes_.size(); }

  /// The stripe index `user` hashes to (stable across restarts).
  std::size_t StripeOf(AuthorId user) const;

  /// Monotone per-stripe mutation epoch: bumped by every `Add` landing
  /// on stripe `i` and by `DeserializeStripe`. Incremental checkpoints
  /// compare it against the epoch captured at the last save to skip
  /// clean stripes. Lock-free (acquire).
  std::uint64_t DirtyEpoch(std::size_t i) const;

  /// Events ever applied to stripe `i` (each `Add` counts one; restored
  /// state carries the count forward). This is the WAL replay gate: a
  /// logged record is re-applied iff its recorded post-apply stripe
  /// sequence exceeds this value, the per-stripe analogue of a page
  /// LSN — checkpoints are per-stripe consistent cuts, so a single
  /// global sequence could not decide correctly. Takes the stripe lock.
  std::uint64_t StripeEvents(std::size_t i) const;

  /// The registry's configuration.
  const ServiceOptions& options() const { return options_; }

  /// Serializes stripe `i` (users, archive sketch, leaderboard,
  /// counters) into `writer`. Takes that stripe's lock.
  void SerializeStripe(std::size_t i, ByteWriter& writer) const;

  /// Restores stripe `i` from a `SerializeStripe` payload, replacing
  /// its current contents. Rejects foreign or corrupt payloads (and
  /// payloads recorded for a different stripe index or stripe count)
  /// with `kInvalidArgument`, leaving the stripe unchanged.
  Status DeserializeStripe(std::size_t i, ByteReader& reader);

 private:
  struct UserState {
    UserTier tier = UserTier::kCold;
    std::uint64_t events = 0;
    std::uint64_t last_touch = 0;
    /// Carried lower bound (frozen estimate survives demotion cycles).
    double floor = 0.0;
    /// Cold tier: exactly maintained H-index of `values`.
    std::uint64_t cold_h = 0;
    /// Cold tier: the raw response counts, replayed on promotion.
    std::vector<std::uint64_t> values;
    /// Hot tier: the per-user Algorithm 1 sketch.
    std::unique_ptr<ExponentialHistogramEstimator> sketch;
  };

  struct Stripe {
    explicit Stripe(ExponentialHistogramEstimator archive_sketch)
        : archive(std::move(archive_sketch)) {}

    mutable std::mutex mu;
    std::unordered_map<AuthorId, UserState> users;
    /// Merged sketches of every demoted user (their mass is retained
    /// here even after the per-user state is frozen).
    ExponentialHistogramEstimator archive;
    /// Maintained top-`leaderboard_capacity` users of this stripe, in
    /// insertion order (sorted on query).
    std::vector<LeaderboardEntry> board;
    std::uint64_t events = 0;
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t touch_clock = 0;
    std::uint64_t resident_bytes = 0;
    /// Irreducible residency observed by the last budget scan that
    /// could not reach its target: everything evictable was demoted and
    /// this much remained (per-user records, boards, the archive).
    /// While `resident_bytes` stays within a slack band above this
    /// floor, further scans are pointless and are skipped — without it,
    /// a population whose bare metadata exceeds the budget degrades to
    /// a full victim scan per Add. Reset to 0 whenever a scan meets its
    /// target again (restores shrink residency below old floors).
    std::uint64_t unmeetable_floor_bytes = 0;
    /// Sketch allocations vetoed by the `alloc-fail` fault point
    /// (runtime counter; deliberately not checkpointed).
    std::uint64_t alloc_failures = 0;
    /// The paged cold tier (null when segment_dir is empty). Guarded by
    /// `mu` — the store itself is not thread-safe.
    std::unique_ptr<SegmentStore> store;
    /// Mutation epoch for incremental checkpoints: bumped (release,
    /// under `mu`) by every Add and by stripe restore. Runtime-only.
    std::atomic<std::uint64_t> dirty{0};
    /// Board epoch: bumped (release, under `mu`) whenever `board`
    /// changes — entry added, replaced, or its estimate raised — and on
    /// stripe restore. `TopK` reads it (acquire, lock-free) to decide
    /// whether its cached merged board is still current. Reading the
    /// epoch *before* copying the board makes a concurrent mutation tag
    /// the cache as already stale — never stale-served-as-fresh.
    std::atomic<std::uint64_t> version{0};
  };

  /// `TopK`'s epoch-tagged cache of the full merged, sorted board. Held
  /// behind a unique_ptr (std::mutex is immovable; the registry moves).
  /// Lock order: `cache.mu` then stripe `mu`s — nothing takes the
  /// reverse, so the pair cannot deadlock.
  struct TopKCache {
    std::mutex mu;
    bool valid = false;
    /// Stripe board epochs captured *before* the merge that produced
    /// `entries` (conservative tags).
    std::vector<std::uint64_t> versions;
    /// The full merged board, sorted; any `k <= leaderboard_capacity`
    /// is served as its prefix.
    std::vector<LeaderboardEntry> entries;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  explicit TieredUserRegistry(const ServiceOptions& options);

  // Per-entry byte model (approximate but consistent, used for budget
  // accounting): a fixed overhead per tracked user plus the tier's
  // variable storage.
  static std::uint64_t BaseBytes();
  static std::uint64_t ColdExtraBytes(const UserState& state);
  static std::uint64_t HotExtraBytes(const UserState& state);
  std::uint64_t EntryBytes(const UserState& state) const;

  double EstimateLocked(const UserState& state) const;
  void PromoteLocked(Stripe& stripe, UserState& state);
  void DemoteLocked(Stripe& stripe, AuthorId user, UserState& state);
  void UpdateBoardLocked(Stripe& stripe, AuthorId user, double estimate);
  void EnforceBudgetLocked(Stripe& stripe);
  ExponentialHistogramEstimator MakeSketch() const;
  Status AttachSegmentStores();
  /// Pages a segment-resident user's state back into RAM (tier returns
  /// to cold/hot, the record is forgotten); on page-in failure degrades
  /// to a frozen-style fresh sketch over the suffix (floor kept).
  void ReactivateLocked(Stripe& stripe, AuthorId user, UserState& state);
  /// A segment-resident user's estimate from its paged-in record — the
  /// cold-get path; the RAM floor on page-in failure.
  double SegmentEstimateLocked(Stripe& stripe, AuthorId user,
                               const UserState& state) const;

  ServiceOptions options_;
  std::uint64_t stripe_budget_bytes_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::unique_ptr<TopKCache> topk_cache_;
};

}  // namespace himpact

#endif  // HIMPACT_SERVICE_REGISTRY_H_
