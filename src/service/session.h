#ifndef HIMPACT_SERVICE_SESSION_H_
#define HIMPACT_SERVICE_SESSION_H_

#include <cstdint>
#include <functional>
#include <string>

#include "service/service.h"

/// \file
/// One protocol session over `HImpactService`: the line-in/reply-out
/// dispatch that `hstream_serve` runs on stdin and the TCP front end
/// (net/server.h) runs per connection — the same code path, so both
/// transports answer byte-identically and the kill-and-resume drill's
/// determinism argument covers them together.
///
/// The session owns the transport-independent robustness bookkeeping:
/// malformed-line quarantine (`rejected_lines`), the auto-checkpoint
/// cadence (`--checkpoint`/`--checkpoint-every`), and the `health`
/// verb's JSON — to which a transport may contribute an extra field
/// block (the TCP server reports its connection-lifecycle counters
/// there).

namespace himpact {

/// Auto-checkpoint configuration for a session. Both fields must be
/// set together or not at all (`hstream_serve` rejects half-armed
/// combinations at flag parsing).
struct SessionOptions {
  std::string checkpoint;              // empty -> no automatic checkpoints
  std::uint64_t checkpoint_every = 0;  // mutations per auto-checkpoint
};

/// Quarantine and checkpoint counters surfaced by the `health` verb.
struct SessionCounters {
  std::uint64_t rejected_lines = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_failures = 0;
};

/// The line dispatcher. Not thread-safe: one session runs on one
/// transport thread (the stdin loop or the event loop).
class ServiceSession {
 public:
  ServiceSession(HImpactService* service, const SessionOptions& options)
      : service_(service), options_(options) {}

  /// Handles one protocol line. `reply` receives the full
  /// newline-terminated reply block (never empty — one reply per line,
  /// the quarantine invariant). Returns false when the session must end
  /// (`quit`); the transport closes after delivering the reply.
  bool HandleLine(const std::string& line, std::string* reply);

  /// Extra JSON fields appended inside the `health` object, preceded by
  /// a comma (e.g. the TCP server's `"net":{...}` block). Must emit
  /// `"name":value` fragments only.
  void set_extra_health_fields(std::function<std::string()> fields) {
    extra_health_fields_ = std::move(fields);
  }

  /// Writes a final checkpoint if auto-checkpointing is armed (the
  /// graceful-drain hook). OK and a no-op when unarmed.
  Status FinalCheckpoint();

  const SessionCounters& counters() const { return counters_; }

 private:
  void MaybeCheckpoint();
  std::string StatsReply() const;
  std::string HealthReply() const;

  HImpactService* service_;
  SessionOptions options_;
  SessionCounters counters_;
  std::uint64_t mutations_since_checkpoint_ = 0;
  std::function<std::string()> extra_health_fields_;
};

}  // namespace himpact

#endif  // HIMPACT_SERVICE_SESSION_H_
