#ifndef HIMPACT_SERVICE_SESSION_H_
#define HIMPACT_SERVICE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "engine/task_runtime.h"
#include "io/wal.h"
#include "service/protocol.h"
#include "service/service.h"

/// \file
/// One protocol session over `HImpactService`: the request-in/reply-out
/// dispatch that `hstream_serve` runs on stdin and the TCP front end
/// (net/server.h) runs per connection — the same code path, so both
/// transports answer byte-identically and the kill-and-resume drill's
/// determinism argument covers them together.
///
/// Requests arrive either as text lines (`HandleLine`) or as binary
/// frames (`HandleFrame`, net/wire.h). Both funnel into the shared
/// `HandleCommand`, which produces the transport-neutral
/// `CommandResult`; only the final rendering differs — so a command
/// answers identically whichever encoding carried it (the text/binary
/// parity property, docs/PROTOCOL.md).
///
/// The session owns the transport-independent robustness bookkeeping:
/// malformed-input quarantine (`rejected_lines` / `rejected_frames`),
/// the auto-checkpoint cadence (`--checkpoint`/`--checkpoint-every`),
/// and the `health` verb's JSON — to which a transport may contribute
/// an extra field block (the TCP server reports its
/// connection-lifecycle counters there).
///
/// With a WAL attached (`AttachWal`), the session is also the
/// durability sequencer: every applied mutation is appended to the log
/// *before* the checkpoint cadence runs, and every successful save to
/// the auto-checkpoint path rotates the log — so at any instant the
/// checkpoint plus the surviving WAL segments cover the full applied
/// history (the invariant `ReplayWal` recovery rests on). The session
/// is also the submitter of the background maintenance jobs, which run
/// on the shared work-stealing task runtime (engine/task_runtime.h)
/// rather than ad-hoc threads:
///
///   - `kDeltaCollapse`: once the incremental chain reaches half of
///     `ServiceOptions::max_chain_len`, a job folds it into a fresh
///     full save while the session keeps serving (cadence saves are
///     deferred, not blocked, while it runs);
///   - `kTierDemotion`: halfway through each checkpoint cadence, a job
///     seals pending cold-tier demotion records so the checkpoint's
///     inline flush finds less I/O to do.

namespace himpact {

/// Auto-checkpoint configuration for a session. Both fields must be
/// set together or not at all (`hstream_serve` rejects half-armed
/// combinations at flag parsing).
struct SessionOptions {
  std::string checkpoint;              // empty -> no automatic checkpoints
  std::uint64_t checkpoint_every = 0;  // mutations per auto-checkpoint
  /// How auto-checkpoints write: `kIncremental` extends the delta chain
  /// at `checkpoint` (each cadence tick rewrites only dirty stripes;
  /// the first save roots the chain with a full write). The final
  /// drain checkpoint honors the same mode.
  SaveMode checkpoint_mode = SaveMode::kFull;
};

/// Quarantine and checkpoint counters surfaced by the `health` verb.
struct SessionCounters {
  std::uint64_t rejected_lines = 0;
  std::uint64_t rejected_frames = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_failures = 0;
  /// Cadence checkpoints deferred because a background chain collapse
  /// held the checkpoint operation lock (retried on the next mutation).
  std::uint64_t checkpoints_deferred = 0;
};

/// The command dispatcher. Not thread-safe: one session runs on one
/// transport thread (the stdin loop or the event loop). The background
/// maintenance jobs it may submit touch only the thread-safe
/// `HImpactService` checkpoint/flush surface and the session's atomic
/// counters.
class ServiceSession {
 public:
  ServiceSession(HImpactService* service, const SessionOptions& options)
      : service_(service), options_(options) {}

  /// Waits for any in-flight background maintenance jobs.
  ~ServiceSession();

  ServiceSession(const ServiceSession&) = delete;
  ServiceSession& operator=(const ServiceSession&) = delete;

  /// Attaches the write-ahead log. Not owned; the caller keeps `wal`
  /// alive for the session's lifetime. Applied mutations are appended
  /// before the checkpoint cadence runs; successful saves to the
  /// auto-checkpoint path rotate the log.
  void AttachWal(WalWriter* wal) { wal_ = wal; }

  /// Handles one text-protocol line. `reply` receives the full
  /// newline-terminated reply block (never empty — one reply per line,
  /// the quarantine invariant). Returns false when the session must end
  /// (`quit`); the transport closes after delivering the reply.
  bool HandleLine(const std::string& line, std::string* reply);

  /// Handles one complete binary request frame (prelude + payload, as
  /// extracted by `Connection::NextFrame`). `reply` receives a complete
  /// reply frame (never empty — one reply frame per request frame, the
  /// same quarantine invariant as the text path: undecodable frames are
  /// counted in `rejected_frames` and answered with a structured error
  /// frame). Returns false when the session must end (`quit`).
  bool HandleFrame(const std::string& frame, std::string* reply);

  /// Executes one decoded command against the service — the shared core
  /// of `HandleLine` and `HandleFrame`, and the step the text/binary
  /// parity tests drive directly. Returns false on `quit`.
  bool HandleCommand(const Command& command, CommandResult* result);

  /// Extra JSON fields appended inside the `health` object, preceded by
  /// a comma (e.g. the TCP server's `"net":{...}` block). Must emit
  /// `"name":value` fragments only.
  void set_extra_health_fields(std::function<std::string()> fields) {
    extra_health_fields_ = std::move(fields);
  }

  /// Writes a final checkpoint if auto-checkpointing is armed (the
  /// graceful-drain hook). Joins any in-flight chain collapse first so
  /// the final save is the newest state on disk, and rotates the WAL on
  /// success. OK and a no-op when unarmed.
  Status FinalCheckpoint();

  const SessionCounters& counters() const { return counters_; }

 private:
  void MaybeCheckpoint();
  /// Appends one applied mutation to the WAL (no-op without one).
  void AppendWal(const Command& command);
  /// Rotates the WAL after a successful save covering it (no-op
  /// without one); failures are logged, never surfaced to replies.
  void RotateWal();
  /// Submits the background chain collapse (`kDeltaCollapse`) when the
  /// incremental chain has grown to half of `max_chain_len` and none is
  /// in flight.
  void MaybeCollapseChain();
  /// Submits the background cold-tier seal flush (`kTierDemotion`)
  /// halfway through the checkpoint cadence when paging is enabled and
  /// none is in flight.
  void MaybeFlushColdTier();
  void WaitForMaintenance();
  std::string StatsJson() const;
  std::string HealthJson() const;

  HImpactService* service_;
  SessionOptions options_;
  SessionCounters counters_;
  std::uint64_t mutations_since_checkpoint_ = 0;
  std::function<std::string()> extra_health_fields_;
  WalWriter* wal_ = nullptr;
  bool wal_failure_logged_ = false;
  /// Background maintenance jobs (see file comment), submitted to the
  /// shared task runtime. The `running` flags gate one job of each
  /// class in flight; the handles let teardown and `FinalCheckpoint`
  /// wait for completion.
  TaskHandle collapse_handle_;
  TaskHandle flush_handle_;
  std::atomic<bool> collapse_running_{false};
  std::atomic<bool> flush_running_{false};
  std::atomic<std::uint64_t> chain_collapses_{0};
  std::atomic<std::uint64_t> chain_collapse_failures_{0};
  std::atomic<std::uint64_t> coldtier_flushes_{0};
};

}  // namespace himpact

#endif  // HIMPACT_SERVICE_SESSION_H_
