#include "service/session.h"

#include <cstdio>

#include "net/wire.h"
#include "service/wal_apply.h"

namespace himpact {
namespace {

std::string U64(std::uint64_t value) {
  return std::to_string(static_cast<unsigned long long>(value));
}

/// Copies a non-OK status into a result, preserving the code so the
/// renderers can keep the RESOURCE_EXHAUSTED / DEADLINE_EXCEEDED wire
/// spellings distinct from plain ERR.
void SetError(const Status& status, CommandResult* result) {
  result->code = status.code();
  result->message = status.message();
}

}  // namespace

ServiceSession::~ServiceSession() { WaitForMaintenance(); }

void ServiceSession::MaybeCheckpoint() {
  if (options_.checkpoint.empty() || options_.checkpoint_every == 0) return;
  ++mutations_since_checkpoint_;
  MaybeFlushColdTier();
  if (mutations_since_checkpoint_ < options_.checkpoint_every) return;
  if (collapse_running_.load(std::memory_order_acquire)) {
    // A background collapse holds the checkpoint operation lock;
    // blocking the serving thread on it would stall replies. Leave the
    // cadence counter ripe so the save retries on the next mutation —
    // the WAL (when attached) keeps covering the gap meanwhile.
    --mutations_since_checkpoint_;
    ++counters_.checkpoints_deferred;
    return;
  }
  mutations_since_checkpoint_ = 0;
  const Status saved =
      service_->CheckpointTo(options_.checkpoint, options_.checkpoint_mode);
  if (saved.ok()) {
    ++counters_.checkpoints;
    // Every record appended so far preceded this save (appends happen
    // before the cadence runs), so the whole log is covered: rotate.
    RotateWal();
    MaybeCollapseChain();
  } else {
    // Failures go to stderr (and a counter), never the reply stream:
    // replies must stay deterministic for the kill-and-resume drill.
    ++counters_.checkpoint_failures;
    std::fprintf(stderr, "auto-checkpoint failed: %s\n",
                 saved.message().c_str());
  }
}

Status ServiceSession::FinalCheckpoint() {
  WaitForMaintenance();
  if (options_.checkpoint.empty() || options_.checkpoint_every == 0) {
    return Status::OK();
  }
  const Status saved =
      service_->CheckpointTo(options_.checkpoint, options_.checkpoint_mode);
  if (saved.ok()) {
    ++counters_.checkpoints;
    RotateWal();
  } else {
    ++counters_.checkpoint_failures;
  }
  return saved;
}

void ServiceSession::AppendWal(const Command& command) {
  if (wal_ == nullptr || wal_->degraded()) return;
  const Status appended =
      command.kind == CommandKind::kAdd
          ? AppendWalAdd(wal_, *service_, command.user, command.value)
          : AppendWalPaper(wal_, *service_, command.paper);
  if (!appended.ok() && !wal_failure_logged_) {
    // Loud once, then the degraded flag in `health` carries the state:
    // the server keeps serving on checkpoint-only durability.
    wal_failure_logged_ = true;
    std::fprintf(stderr,
                 "WAL append failed; durability degraded to "
                 "checkpoint-only: %s\n",
                 appended.message().c_str());
  }
}

void ServiceSession::RotateWal() {
  if (wal_ == nullptr) return;
  const Status rotated = wal_->Rotate();
  if (!rotated.ok() && !wal_failure_logged_) {
    wal_failure_logged_ = true;
    std::fprintf(stderr,
                 "WAL rotation failed; durability degraded to "
                 "checkpoint-only: %s\n",
                 rotated.message().c_str());
  }
}

void ServiceSession::MaybeCollapseChain() {
  const std::uint64_t max_chain = service_->options().max_chain_len;
  if (max_chain == 0 || options_.checkpoint.empty() ||
      options_.checkpoint_mode != SaveMode::kIncremental) {
    return;
  }
  // Fire at half the cap so the background fold normally lands well
  // before the inline escalation in CheckpointIncremental (the
  // unconditional backstop) would ever trigger.
  if (service_->chain_generation() < (max_chain + 1) / 2) return;
  if (collapse_running_.load(std::memory_order_acquire)) return;
  collapse_running_.store(true, std::memory_order_release);
  collapse_handle_ = TaskRuntime::Shared().Submit(
      JobClass::kDeltaCollapse, [this, path = options_.checkpoint] {
        const Status folded = service_->CheckpointTo(path, SaveMode::kFull);
        if (folded.ok()) {
          chain_collapses_.fetch_add(1, std::memory_order_relaxed);
        } else {
          chain_collapse_failures_.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "background chain collapse failed: %s\n",
                       folded.message().c_str());
        }
        collapse_running_.store(false, std::memory_order_release);
      });
}

void ServiceSession::MaybeFlushColdTier() {
  if (options_.checkpoint_every < 2) return;
  if (service_->options().segment_dir.empty()) return;
  // Fire once per cadence, at the halfway point: far enough from the
  // last save for demotions to have accumulated, early enough that the
  // seal normally lands before the next checkpoint's inline flush.
  if (mutations_since_checkpoint_ != options_.checkpoint_every / 2) return;
  if (flush_running_.load(std::memory_order_acquire)) return;
  flush_running_.store(true, std::memory_order_release);
  flush_handle_ =
      TaskRuntime::Shared().Submit(JobClass::kTierDemotion, [this] {
        if (service_->FlushColdTier() > 0) {
          coldtier_flushes_.fetch_add(1, std::memory_order_relaxed);
        }
        flush_running_.store(false, std::memory_order_release);
      });
}

void ServiceSession::WaitForMaintenance() {
  collapse_handle_.Wait();
  flush_handle_.Wait();
}

std::string ServiceSession::StatsJson() const {
  const ServiceStats stats = service_->Stats();
  const RegistryStats& r = stats.registry;
  std::string json = "{\"events\":" + U64(r.total_events);
  json += ",\"users\":" + U64(r.num_users);
  json += ",\"cold\":" + U64(r.cold_users);
  json += ",\"hot\":" + U64(r.hot_users);
  json += ",\"frozen\":" + U64(r.frozen_users);
  json += ",\"segment\":" + U64(r.segment_users);
  json += ",\"promotions\":" + U64(r.promotions);
  json += ",\"demotions\":" + U64(r.demotions);
  json += ",\"resident_bytes\":" + U64(r.resident_bytes);
  json += ",\"budget_bytes\":" + U64(r.budget_bytes);
  json += ",\"hh_papers\":" + U64(stats.hh_papers);
  json += ",\"topk_cache_hits\":" + U64(r.topk_cache_hits);
  json += ",\"topk_cache_misses\":" + U64(r.topk_cache_misses);
  json += ",\"hh_report_cache_hits\":" + U64(stats.hh_report_cache_hits);
  json += ",\"hh_report_cache_misses\":" + U64(stats.hh_report_cache_misses);
  // WAL writer counters ride along for operators sampling STATS; they
  // are runtime-dependent (unlike the state fields above), so twin
  // comparisons must key on "events", not the whole line.
  if (wal_ != nullptr) {
    json += ",\"wal_records\":" + U64(wal_->counters().records);
    json += ",\"wal_bytes\":" + U64(wal_->counters().bytes);
    json += ",\"wal_degraded\":";
    json += wal_->degraded() ? "1" : "0";
  }
  json += "}";
  return json;
}

std::string ServiceSession::HealthJson() const {
  const AdmissionCounters admission = service_->admission().Counters();
  const ServiceStats stats = service_->Stats();
  const RegistryStats& r = stats.registry;
  const CheckpointCounters& c = stats.checkpoint;
  std::string json = "{\"inflight\":" + U64(admission.inflight);
  json += ",\"admitted\":" + U64(admission.admitted);
  json += ",\"shed\":" + U64(admission.shed);
  json += ",\"deadline_exceeded\":" + U64(admission.deadline_exceeded);
  json += ",\"rejected_lines\":" + U64(counters_.rejected_lines);
  json += ",\"rejected_frames\":" + U64(counters_.rejected_frames);
  json += ",\"alloc_failures\":" + U64(r.alloc_failures);
  json += ",\"checkpoints\":" + U64(counters_.checkpoints);
  json += ",\"checkpoint_failures\":" + U64(counters_.checkpoint_failures);
  // The cold-tier runtime counters live here, not in `stats`: `stats`
  // stays a pure function of restored state (the byte-identity property
  // the drill leans on) while page-in traffic is runtime-dependent.
  json += ",\"segment_files\":" + U64(r.segment_files);
  json += ",\"segment_bytes\":" + U64(r.segment_bytes);
  json += ",\"segment_pending\":" + U64(r.segment_pending_records);
  json += ",\"segment_seals\":" + U64(r.segment_seals);
  json += ",\"page_ins\":" + U64(r.page_ins);
  json += ",\"page_in_cache_hits\":" + U64(r.page_in_cache_hits);
  json += ",\"page_in_failures\":" + U64(r.page_in_failures);
  json += ",\"full_saves\":" + U64(c.full_saves);
  json += ",\"incremental_saves\":" + U64(c.incremental_saves);
  json += ",\"incremental_fallbacks\":" + U64(c.incremental_fallbacks);
  json += ",\"stripes_written\":" + U64(c.stripes_written);
  json += ",\"stripes_skipped_clean\":" + U64(c.stripes_skipped_clean);
  json += ",\"stripes_skipped_dedup\":" + U64(c.stripes_skipped_dedup);
  json += ",\"restore_chain_fallbacks\":" + U64(c.restore_chain_fallbacks);
  json += ",\"chain_generation\":" + U64(c.chain_generation);
  json += ",\"chain_escalations\":" + U64(c.chain_escalations);
  json += ",\"chain_collapses\":" +
          U64(chain_collapses_.load(std::memory_order_relaxed));
  json += ",\"chain_collapse_failures\":" +
          U64(chain_collapse_failures_.load(std::memory_order_relaxed));
  json += ",\"checkpoints_deferred\":" + U64(counters_.checkpoints_deferred);
  json += ",\"coldtier_flushes\":" +
          U64(coldtier_flushes_.load(std::memory_order_relaxed));
  // Background maintenance pool counters (process-wide: the shared
  // runtime serves every session in this process).
  {
    const TaskRuntimeStats rt = TaskRuntime::Shared().Stats();
    json += ",\"task_runtime\":{\"workers\":" +
            U64(TaskRuntime::Shared().num_workers());
    json += ",\"stolen\":" + U64(rt.stolen);
    json += ",\"injected\":" + U64(rt.injected);
    json += ",\"completed\":{";
    for (std::size_t i = 0; i < kNumJobClasses; ++i) {
      if (i > 0) json += ",";
      json += "\"";
      json += JobClassName(static_cast<JobClass>(i));
      json += "\":" + U64(rt.completed[i]);
    }
    json += "}}";
  }
  // Cold-tier space accounting (the compaction signal): live sealed
  // bytes vs bytes superseded by newer generations or forgotten.
  json += ",\"storage\":{\"live_bytes\":" + U64(r.segment_bytes);
  json += ",\"dead_bytes\":" + U64(r.segment_dead_bytes);
  json += "}";
  if (wal_ != nullptr) {
    const WalCounters& w = wal_->counters();
    json += ",\"wal\":{\"enabled\":true";
    json += ",\"degraded\":";
    json += wal_->degraded() ? "true" : "false";
    json += ",\"fsync\":\"";
    json += WalFsyncName(wal_->options().fsync);
    json += "\"";
    json += ",\"records\":" + U64(w.records);
    json += ",\"bytes\":" + U64(w.bytes);
    json += ",\"flushes\":" + U64(w.flushes);
    json += ",\"fsyncs\":" + U64(w.fsyncs);
    json += ",\"rotations\":" + U64(w.rotations);
    json += ",\"append_failures\":" + U64(w.append_failures);
    json += ",\"segment_seq\":" + U64(wal_->segment_seq());
    json += "}";
  } else {
    json += ",\"wal\":{\"enabled\":false}";
  }
  if (extra_health_fields_) {
    json += ",";
    json += extra_health_fields_();
  }
  json += "}";
  return json;
}

bool ServiceSession::HandleCommand(const Command& command,
                                   CommandResult* result) {
  *result = CommandResult{};
  result->kind = command.kind;
  switch (command.kind) {
    case CommandKind::kAdd: {
      StatusOr<double> estimate =
          service_->TryRecordResponseCount(command.user, command.value);
      if (estimate.ok()) {
        result->estimate = estimate.value();
        AppendWal(command);  // applied events log before the cadence runs
        MaybeCheckpoint();
      } else {
        SetError(estimate.status(), result);
        if (estimate.status().code() == StatusCode::kDeadlineExceeded) {
          AppendWal(command);  // the write was applied, late
          MaybeCheckpoint();
        }
      }
      return true;
    }
    case CommandKind::kPaper: {
      const Status ingested = service_->TryIngestPaper(command.paper);
      if (ingested.ok()) {
        result->num_authors =
            static_cast<std::uint32_t>(command.paper.authors.size());
        AppendWal(command);
        MaybeCheckpoint();
      } else {
        SetError(ingested, result);
        if (ingested.code() == StatusCode::kDeadlineExceeded) {
          AppendWal(command);
          MaybeCheckpoint();
        }
      }
      return true;
    }
    case CommandKind::kGet: {
      result->user = command.user;
      UserSnapshot snapshot;
      if (service_->Lookup(command.user, &snapshot)) {
        result->estimate = snapshot.estimate;
        result->tier = static_cast<int>(snapshot.tier);
        result->events = snapshot.events;
      }
      // Unseen users keep the defaults: estimate 0, kTierNone, 0 events.
      return true;
    }
    case CommandKind::kTop: {
      const std::size_t k = static_cast<std::size_t>(command.value);
      if (k > service_->options().leaderboard_capacity) {
        SetError(Status::InvalidArgument(
                     "k exceeds leaderboard capacity (" +
                     std::to_string(service_->options().leaderboard_capacity) +
                     ")"),
                 result);
        return true;
      }
      StatusOr<TopKResult> top = service_->TryTopK(k);
      if (!top.ok()) {
        SetError(top.status(), result);
        return true;
      }
      // A deadline-degraded scan carries stripes_skipped > 0 (rendered
      // TOP-LB on the text wire): the entries are a valid lower-bound
      // board over the stripes that answered in time.
      result->stripes_skipped = top.value().stripes_skipped;
      result->entries.reserve(top.value().entries.size());
      for (const LeaderboardEntry& entry : top.value().entries) {
        result->entries.emplace_back(entry.user, entry.estimate);
      }
      return true;
    }
    case CommandKind::kHeavy: {
      for (const HeavyHitterReport& report : service_->HeavyReport()) {
        result->entries.emplace_back(report.author, report.h_estimate);
      }
      return true;
    }
    case CommandKind::kStats:
      result->text = StatsJson();
      return true;
    case CommandKind::kHealth:
      result->text = HealthJson();
      return true;
    case CommandKind::kSave: {
      const Status saved =
          service_->CheckpointTo(command.path, command.save_mode);
      if (saved.ok()) {
        result->text = command.path;
        // Rotation is only safe when the save landed where a restart
        // would restore from; a side save to another path does not
        // cover the log.
        if (!options_.checkpoint.empty() &&
            command.path == options_.checkpoint) {
          RotateWal();
        }
      } else {
        SetError(Status::InvalidArgument(saved.message()), result);
      }
      return true;
    }
    case CommandKind::kQuit:
      return false;
    case CommandKind::kInvalid:
      break;
  }
  SetError(Status::Internal("unreachable"), result);
  return true;
}

bool ServiceSession::HandleLine(const std::string& line, std::string* reply) {
  StatusOr<Command> parsed = ParseCommandLine(line);
  if (!parsed.ok()) {
    // Quarantine, never abort: the bad line is counted and dropped, and
    // the loop keeps its one-reply-per-line invariant.
    ++counters_.rejected_lines;
    *reply = "ERR " + parsed.status().message() + "\n";
    return true;
  }
  CommandResult result;
  const bool keep_going = HandleCommand(parsed.value(), &result);
  *reply = FormatTextReply(result);
  return keep_going;
}

bool ServiceSession::HandleFrame(const std::string& frame,
                                 std::string* reply) {
  StatusOr<Command> decoded = DecodeRequestFrame(frame);
  if (!decoded.ok()) {
    // Same quarantine contract as the text path, rendered as a
    // structured error frame (status kErr, opcode 0x00).
    ++counters_.rejected_frames;
    *reply = EncodeErrorFrame(decoded.status().message());
    return true;
  }
  CommandResult result;
  const bool keep_going = HandleCommand(decoded.value(), &result);
  *reply = EncodeReplyFrame(result);
  return keep_going;
}

}  // namespace himpact
