#include "service/session.h"

#include <cstdio>

#include "net/wire.h"

namespace himpact {
namespace {

std::string U64(std::uint64_t value) {
  return std::to_string(static_cast<unsigned long long>(value));
}

/// Copies a non-OK status into a result, preserving the code so the
/// renderers can keep the RESOURCE_EXHAUSTED / DEADLINE_EXCEEDED wire
/// spellings distinct from plain ERR.
void SetError(const Status& status, CommandResult* result) {
  result->code = status.code();
  result->message = status.message();
}

}  // namespace

void ServiceSession::MaybeCheckpoint() {
  if (options_.checkpoint.empty() || options_.checkpoint_every == 0) return;
  if (++mutations_since_checkpoint_ < options_.checkpoint_every) return;
  mutations_since_checkpoint_ = 0;
  const Status saved =
      service_->CheckpointTo(options_.checkpoint, options_.checkpoint_mode);
  if (saved.ok()) {
    ++counters_.checkpoints;
  } else {
    // Failures go to stderr (and a counter), never the reply stream:
    // replies must stay deterministic for the kill-and-resume drill.
    ++counters_.checkpoint_failures;
    std::fprintf(stderr, "auto-checkpoint failed: %s\n",
                 saved.message().c_str());
  }
}

Status ServiceSession::FinalCheckpoint() {
  if (options_.checkpoint.empty() || options_.checkpoint_every == 0) {
    return Status::OK();
  }
  const Status saved =
      service_->CheckpointTo(options_.checkpoint, options_.checkpoint_mode);
  if (saved.ok()) {
    ++counters_.checkpoints;
  } else {
    ++counters_.checkpoint_failures;
  }
  return saved;
}

std::string ServiceSession::StatsJson() const {
  const ServiceStats stats = service_->Stats();
  const RegistryStats& r = stats.registry;
  std::string json = "{\"events\":" + U64(r.total_events);
  json += ",\"users\":" + U64(r.num_users);
  json += ",\"cold\":" + U64(r.cold_users);
  json += ",\"hot\":" + U64(r.hot_users);
  json += ",\"frozen\":" + U64(r.frozen_users);
  json += ",\"segment\":" + U64(r.segment_users);
  json += ",\"promotions\":" + U64(r.promotions);
  json += ",\"demotions\":" + U64(r.demotions);
  json += ",\"resident_bytes\":" + U64(r.resident_bytes);
  json += ",\"budget_bytes\":" + U64(r.budget_bytes);
  json += ",\"hh_papers\":" + U64(stats.hh_papers);
  json += ",\"topk_cache_hits\":" + U64(r.topk_cache_hits);
  json += ",\"topk_cache_misses\":" + U64(r.topk_cache_misses);
  json += ",\"hh_report_cache_hits\":" + U64(stats.hh_report_cache_hits);
  json += ",\"hh_report_cache_misses\":" + U64(stats.hh_report_cache_misses);
  json += "}";
  return json;
}

std::string ServiceSession::HealthJson() const {
  const AdmissionCounters admission = service_->admission().Counters();
  const ServiceStats stats = service_->Stats();
  const RegistryStats& r = stats.registry;
  const CheckpointCounters& c = stats.checkpoint;
  std::string json = "{\"inflight\":" + U64(admission.inflight);
  json += ",\"admitted\":" + U64(admission.admitted);
  json += ",\"shed\":" + U64(admission.shed);
  json += ",\"deadline_exceeded\":" + U64(admission.deadline_exceeded);
  json += ",\"rejected_lines\":" + U64(counters_.rejected_lines);
  json += ",\"rejected_frames\":" + U64(counters_.rejected_frames);
  json += ",\"alloc_failures\":" + U64(r.alloc_failures);
  json += ",\"checkpoints\":" + U64(counters_.checkpoints);
  json += ",\"checkpoint_failures\":" + U64(counters_.checkpoint_failures);
  // The cold-tier runtime counters live here, not in `stats`: `stats`
  // stays a pure function of restored state (the byte-identity property
  // the drill leans on) while page-in traffic is runtime-dependent.
  json += ",\"segment_files\":" + U64(r.segment_files);
  json += ",\"segment_bytes\":" + U64(r.segment_bytes);
  json += ",\"segment_pending\":" + U64(r.segment_pending_records);
  json += ",\"segment_seals\":" + U64(r.segment_seals);
  json += ",\"page_ins\":" + U64(r.page_ins);
  json += ",\"page_in_cache_hits\":" + U64(r.page_in_cache_hits);
  json += ",\"page_in_failures\":" + U64(r.page_in_failures);
  json += ",\"full_saves\":" + U64(c.full_saves);
  json += ",\"incremental_saves\":" + U64(c.incremental_saves);
  json += ",\"incremental_fallbacks\":" + U64(c.incremental_fallbacks);
  json += ",\"stripes_written\":" + U64(c.stripes_written);
  json += ",\"stripes_skipped_clean\":" + U64(c.stripes_skipped_clean);
  json += ",\"stripes_skipped_dedup\":" + U64(c.stripes_skipped_dedup);
  json += ",\"restore_chain_fallbacks\":" + U64(c.restore_chain_fallbacks);
  json += ",\"chain_generation\":" + U64(c.chain_generation);
  if (extra_health_fields_) {
    json += ",";
    json += extra_health_fields_();
  }
  json += "}";
  return json;
}

bool ServiceSession::HandleCommand(const Command& command,
                                   CommandResult* result) {
  *result = CommandResult{};
  result->kind = command.kind;
  switch (command.kind) {
    case CommandKind::kAdd: {
      StatusOr<double> estimate =
          service_->TryRecordResponseCount(command.user, command.value);
      if (estimate.ok()) {
        result->estimate = estimate.value();
        MaybeCheckpoint();
      } else {
        SetError(estimate.status(), result);
        if (estimate.status().code() == StatusCode::kDeadlineExceeded) {
          MaybeCheckpoint();  // the write was applied, late
        }
      }
      return true;
    }
    case CommandKind::kPaper: {
      const Status ingested = service_->TryIngestPaper(command.paper);
      if (ingested.ok()) {
        result->num_authors =
            static_cast<std::uint32_t>(command.paper.authors.size());
        MaybeCheckpoint();
      } else {
        SetError(ingested, result);
        if (ingested.code() == StatusCode::kDeadlineExceeded) {
          MaybeCheckpoint();
        }
      }
      return true;
    }
    case CommandKind::kGet: {
      result->user = command.user;
      UserSnapshot snapshot;
      if (service_->Lookup(command.user, &snapshot)) {
        result->estimate = snapshot.estimate;
        result->tier = static_cast<int>(snapshot.tier);
        result->events = snapshot.events;
      }
      // Unseen users keep the defaults: estimate 0, kTierNone, 0 events.
      return true;
    }
    case CommandKind::kTop: {
      const std::size_t k = static_cast<std::size_t>(command.value);
      if (k > service_->options().leaderboard_capacity) {
        SetError(Status::InvalidArgument(
                     "k exceeds leaderboard capacity (" +
                     std::to_string(service_->options().leaderboard_capacity) +
                     ")"),
                 result);
        return true;
      }
      StatusOr<TopKResult> top = service_->TryTopK(k);
      if (!top.ok()) {
        SetError(top.status(), result);
        return true;
      }
      // A deadline-degraded scan carries stripes_skipped > 0 (rendered
      // TOP-LB on the text wire): the entries are a valid lower-bound
      // board over the stripes that answered in time.
      result->stripes_skipped = top.value().stripes_skipped;
      result->entries.reserve(top.value().entries.size());
      for (const LeaderboardEntry& entry : top.value().entries) {
        result->entries.emplace_back(entry.user, entry.estimate);
      }
      return true;
    }
    case CommandKind::kHeavy: {
      for (const HeavyHitterReport& report : service_->HeavyReport()) {
        result->entries.emplace_back(report.author, report.h_estimate);
      }
      return true;
    }
    case CommandKind::kStats:
      result->text = StatsJson();
      return true;
    case CommandKind::kHealth:
      result->text = HealthJson();
      return true;
    case CommandKind::kSave: {
      const Status saved =
          service_->CheckpointTo(command.path, command.save_mode);
      if (saved.ok()) {
        result->text = command.path;
      } else {
        SetError(Status::InvalidArgument(saved.message()), result);
      }
      return true;
    }
    case CommandKind::kQuit:
      return false;
    case CommandKind::kInvalid:
      break;
  }
  SetError(Status::Internal("unreachable"), result);
  return true;
}

bool ServiceSession::HandleLine(const std::string& line, std::string* reply) {
  StatusOr<Command> parsed = ParseCommandLine(line);
  if (!parsed.ok()) {
    // Quarantine, never abort: the bad line is counted and dropped, and
    // the loop keeps its one-reply-per-line invariant.
    ++counters_.rejected_lines;
    *reply = "ERR " + parsed.status().message() + "\n";
    return true;
  }
  CommandResult result;
  const bool keep_going = HandleCommand(parsed.value(), &result);
  *reply = FormatTextReply(result);
  return keep_going;
}

bool ServiceSession::HandleFrame(const std::string& frame,
                                 std::string* reply) {
  StatusOr<Command> decoded = DecodeRequestFrame(frame);
  if (!decoded.ok()) {
    // Same quarantine contract as the text path, rendered as a
    // structured error frame (status kErr, opcode 0x00).
    ++counters_.rejected_frames;
    *reply = EncodeErrorFrame(decoded.status().message());
    return true;
  }
  CommandResult result;
  const bool keep_going = HandleCommand(decoded.value(), &result);
  *reply = EncodeReplyFrame(result);
  return keep_going;
}

}  // namespace himpact
