#include "service/session.h"

#include <cstdio>

#include "service/protocol.h"

namespace himpact {
namespace {

/// The wire spelling of a shed/deadline status ("RESOURCE_EXHAUSTED ..."
/// or "DEADLINE_EXCEEDED ..."); anything else degrades to ERR.
std::string StatusReply(const Status& status) {
  const char* code = "ERR";
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      code = "RESOURCE_EXHAUSTED";
      break;
    case StatusCode::kDeadlineExceeded:
      code = "DEADLINE_EXCEEDED";
      break;
    default:
      break;
  }
  return std::string(code) + " " + status.message() + "\n";
}

std::string U64(std::uint64_t value) {
  return std::to_string(static_cast<unsigned long long>(value));
}

}  // namespace

void ServiceSession::MaybeCheckpoint() {
  if (options_.checkpoint.empty() || options_.checkpoint_every == 0) return;
  if (++mutations_since_checkpoint_ < options_.checkpoint_every) return;
  mutations_since_checkpoint_ = 0;
  const Status saved = service_->CheckpointTo(options_.checkpoint);
  if (saved.ok()) {
    ++counters_.checkpoints;
  } else {
    // Failures go to stderr (and a counter), never the reply stream:
    // replies must stay deterministic for the kill-and-resume drill.
    ++counters_.checkpoint_failures;
    std::fprintf(stderr, "auto-checkpoint failed: %s\n",
                 saved.message().c_str());
  }
}

Status ServiceSession::FinalCheckpoint() {
  if (options_.checkpoint.empty() || options_.checkpoint_every == 0) {
    return Status::OK();
  }
  const Status saved = service_->CheckpointTo(options_.checkpoint);
  if (saved.ok()) {
    ++counters_.checkpoints;
  } else {
    ++counters_.checkpoint_failures;
  }
  return saved;
}

std::string ServiceSession::StatsReply() const {
  const ServiceStats stats = service_->Stats();
  const RegistryStats& r = stats.registry;
  std::string reply = "STATS {\"events\":" + U64(r.total_events);
  reply += ",\"users\":" + U64(r.num_users);
  reply += ",\"cold\":" + U64(r.cold_users);
  reply += ",\"hot\":" + U64(r.hot_users);
  reply += ",\"frozen\":" + U64(r.frozen_users);
  reply += ",\"promotions\":" + U64(r.promotions);
  reply += ",\"demotions\":" + U64(r.demotions);
  reply += ",\"resident_bytes\":" + U64(r.resident_bytes);
  reply += ",\"budget_bytes\":" + U64(r.budget_bytes);
  reply += ",\"hh_papers\":" + U64(stats.hh_papers);
  reply += ",\"topk_cache_hits\":" + U64(r.topk_cache_hits);
  reply += ",\"topk_cache_misses\":" + U64(r.topk_cache_misses);
  reply += ",\"hh_report_cache_hits\":" + U64(stats.hh_report_cache_hits);
  reply += ",\"hh_report_cache_misses\":" + U64(stats.hh_report_cache_misses);
  reply += "}\n";
  return reply;
}

std::string ServiceSession::HealthReply() const {
  const AdmissionCounters admission = service_->admission().Counters();
  const std::uint64_t alloc_failures =
      service_->Stats().registry.alloc_failures;
  std::string reply = "HEALTH {\"inflight\":" + U64(admission.inflight);
  reply += ",\"admitted\":" + U64(admission.admitted);
  reply += ",\"shed\":" + U64(admission.shed);
  reply += ",\"deadline_exceeded\":" + U64(admission.deadline_exceeded);
  reply += ",\"rejected_lines\":" + U64(counters_.rejected_lines);
  reply += ",\"alloc_failures\":" + U64(alloc_failures);
  reply += ",\"checkpoints\":" + U64(counters_.checkpoints);
  reply += ",\"checkpoint_failures\":" + U64(counters_.checkpoint_failures);
  if (extra_health_fields_) {
    reply += ",";
    reply += extra_health_fields_();
  }
  reply += "}\n";
  return reply;
}

bool ServiceSession::HandleLine(const std::string& line, std::string* reply) {
  StatusOr<Command> parsed = ParseCommandLine(line);
  if (!parsed.ok()) {
    // Quarantine, never abort: the bad line is counted and dropped, and
    // the loop keeps its one-reply-per-line invariant.
    ++counters_.rejected_lines;
    *reply = "ERR " + parsed.status().message() + "\n";
    return true;
  }
  const Command& command = parsed.value();
  switch (command.kind) {
    case CommandKind::kAdd: {
      StatusOr<double> estimate =
          service_->TryRecordResponseCount(command.user, command.value);
      if (estimate.ok()) {
        *reply = "OK " + FormatEstimate(estimate.value()) + "\n";
        MaybeCheckpoint();
      } else {
        *reply = StatusReply(estimate.status());
        if (estimate.status().code() == StatusCode::kDeadlineExceeded) {
          MaybeCheckpoint();  // the write was applied, late
        }
      }
      return true;
    }
    case CommandKind::kPaper: {
      const Status ingested = service_->TryIngestPaper(command.paper);
      if (ingested.ok()) {
        *reply = "OK " +
                 std::to_string(static_cast<int>(
                     command.paper.authors.size())) +
                 "\n";
        MaybeCheckpoint();
      } else {
        *reply = StatusReply(ingested);
        if (ingested.code() == StatusCode::kDeadlineExceeded) {
          MaybeCheckpoint();
        }
      }
      return true;
    }
    case CommandKind::kGet: {
      UserSnapshot snapshot;
      if (service_->Lookup(command.user, &snapshot)) {
        *reply = "H " + U64(command.user) + " " +
                 FormatEstimate(snapshot.estimate) + " " +
                 TierName(static_cast<int>(snapshot.tier)) + " " +
                 U64(snapshot.events) + "\n";
      } else {
        *reply = "H " + U64(command.user) + " 0 none 0\n";
      }
      return true;
    }
    case CommandKind::kTop: {
      const std::size_t k = static_cast<std::size_t>(command.value);
      if (k > service_->options().leaderboard_capacity) {
        *reply = "ERR k exceeds leaderboard capacity (" +
                 std::to_string(service_->options().leaderboard_capacity) +
                 ")\n";
        return true;
      }
      StatusOr<TopKResult> top = service_->TryTopK(k);
      if (!top.ok()) {
        *reply = StatusReply(top.status());
        return true;
      }
      // A deadline-degraded scan is tagged TOP-LB <skipped stripes>:
      // the entries are a valid lower-bound board over the stripes that
      // answered in time.
      if (top.value().stripes_skipped > 0) {
        *reply = "TOP-LB " + std::to_string(top.value().stripes_skipped);
      } else {
        *reply = "TOP";
      }
      for (const LeaderboardEntry& entry : top.value().entries) {
        *reply += " " + U64(entry.user) + ":" + FormatEstimate(entry.estimate);
      }
      *reply += "\n";
      return true;
    }
    case CommandKind::kHeavy: {
      *reply = "HEAVY";
      for (const HeavyHitterReport& report : service_->HeavyReport()) {
        *reply +=
            " " + U64(report.author) + ":" + FormatEstimate(report.h_estimate);
      }
      *reply += "\n";
      return true;
    }
    case CommandKind::kStats:
      *reply = StatsReply();
      return true;
    case CommandKind::kHealth:
      *reply = HealthReply();
      return true;
    case CommandKind::kSave: {
      const Status saved = service_->CheckpointTo(command.path);
      if (saved.ok()) {
        *reply = "OK saved " + command.path + "\n";
      } else {
        *reply = "ERR " + saved.message() + "\n";
      }
      return true;
    }
    case CommandKind::kQuit:
      *reply = "BYE\n";
      return false;
  }
  *reply = "ERR unreachable\n";
  return true;
}

}  // namespace himpact
