#ifndef HIMPACT_SERVICE_SERVICE_H_
#define HIMPACT_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/admission.h"
#include "heavy/heavy_hitters.h"
#include "service/latency.h"
#include "service/protocol.h"
#include "service/registry.h"
#include "stream/types.h"

/// \file
/// The multi-tenant H-impact query service.
///
/// `HImpactService` composes the tiered per-user registry
/// (service/registry.h) with a striped Algorithm 8 heavy-hitters grid
/// and per-operation latency capture, and adds service-level
/// checkpoint/restore. It is the layer `hstream_serve`, the examples,
/// and the F4 load harness sit on: ingest threads call
/// `RecordResponseCount` / `IngestPaper` while query threads call
/// `PointHIndex` / `TopK` / `HeavyReport` / `Stats` concurrently.
///
/// Checkpoint layout (mirrors the engine's manifest convention from
/// engine/sharded_engine.h): one `kServiceStripe` envelope per stripe at
/// `path.stripe-<i>` holding that stripe's registry state plus its
/// heavy-hitters shard, written *before* a final `kServiceManifest`
/// envelope at `path` that records the configuration — so a manifest
/// that opens implies the stripes it references were durably written.
/// `RestoreFrom` decodes everything into fresh state and only then
/// swaps it in; a damaged checkpoint leaves the service unchanged.
///
/// Incremental checkpoints (`CheckpointTo(path, SaveMode::kIncremental)`)
/// extend a full save instead of rewriting it: only stripes whose dirty
/// epoch (registry) or ingest epoch (heavy hitters) moved since the last
/// save to `path` are re-serialized, into one delta segment
/// `path.delta-<g>` (storage/delta_chain.h) with a coverage manifest
/// chaining back to the full files; a content-hash match additionally
/// dedups a stripe whose epoch moved but whose payload did not. The head
/// pointer `path.head` is rewritten atomically last, so a torn delta
/// write leaves the previous chain restorable. `RestoreFrom` walks the
/// chain from the head and falls back generation by generation (to the
/// bare full save in the worst case) on damage. See docs/CHECKPOINTS.md.

namespace himpact {

/// Decoded `kServiceManifest` contents.
struct ServiceManifest {
  ServiceOptions options;
  std::uint64_t total_events = 0;
};

/// Checkpoint-path counters (runtime-only, surfaced via `health`).
struct CheckpointCounters {
  std::uint64_t full_saves = 0;
  std::uint64_t incremental_saves = 0;
  /// Incremental saves that had no chain to extend (first save to the
  /// path, or a save to a different path) and wrote a full checkpoint.
  std::uint64_t incremental_fallbacks = 0;
  std::uint64_t stripes_written = 0;
  std::uint64_t stripes_skipped_clean = 0;  // dirty epoch unchanged
  std::uint64_t stripes_skipped_dedup = 0;  // epoch moved, payload hash same
  std::uint64_t bytes_full = 0;
  std::uint64_t bytes_incremental = 0;
  /// Damaged deltas skipped while walking the chain during a restore.
  std::uint64_t restore_chain_fallbacks = 0;
  /// Generation of the live chain (0 = full save only).
  std::uint64_t chain_generation = 0;
  /// Incremental saves escalated to a full save because the chain hit
  /// `ServiceOptions::max_chain_len` (the inline backstop that bounds
  /// restore walks even when the background collapse job is off).
  std::uint64_t chain_escalations = 0;
};

/// Aggregate service counters for `Stats()` reporting.
struct ServiceStats {
  RegistryStats registry;
  CheckpointCounters checkpoint;
  /// Papers observed by the heavy-hitters grid (0 when disabled).
  std::uint64_t hh_papers = 0;
  /// `HeavyReport` answers served from the epoch-tagged merged-grid
  /// cache vs recomputed because some heavy-hitters stripe advanced
  /// (see docs/PERFORMANCE.md, "Epoch-cached merge-on-query").
  std::uint64_t hh_report_cache_hits = 0;
  std::uint64_t hh_report_cache_misses = 0;
  /// Admission-gate counters (admitted / shed / deadline_exceeded /
  /// inflight) for the `Try*` boundary.
  AdmissionCounters admission;
};

/// A top-k answer that may be degraded: when `stripes_skipped > 0` the
/// deadline cut the scan short and `entries` covers only the merged
/// stripes — still a valid lower-bound leaderboard, explicitly tagged.
struct TopKResult {
  std::vector<LeaderboardEntry> entries;
  std::size_t stripes_skipped = 0;
};

/// A thread-safe multi-tenant H-impact store with point, top-k, and
/// heavy-hitter queries.
class HImpactService {
 public:
  /// Validates options and builds an empty service. `overload`
  /// configures the admission gate for the `Try*` boundary (default:
  /// unlimited, no deadlines). Overload config is runtime-only — it is
  /// NOT part of the checkpoint manifest, so a checkpoint restores into
  /// a service with any watermarks.
  static StatusOr<HImpactService> Create(const ServiceOptions& options,
                                         const OverloadOptions& overload = {});

  HImpactService(HImpactService&&) noexcept = default;
  HImpactService& operator=(HImpactService&&) noexcept = default;

  /// Observes one response count for `user` (the aggregate model: one
  /// paper / post whose total responses are `value`) and returns the
  /// user's updated H-index estimate. A synthetic paper id is minted
  /// for the heavy-hitters grid. Thread-safe.
  double RecordResponseCount(AuthorId user, std::uint64_t value);

  /// Observes one multi-author paper tuple: each author's registry
  /// state absorbs the paper's response count, and the tuple is fed
  /// once to the heavy-hitters grid. Thread-safe.
  void IngestPaper(const PaperTuple& paper);

  /// WAL-replay surface (service/wal_apply.cc): re-applies one logged
  /// paper where only the authors with `apply_mask[i]` set still miss
  /// it (the restored checkpoint may have captured some authors'
  /// stripes after the paper and others before). The tuple is fed to
  /// the heavy-hitters grid iff `feed_hh` — the replayer passes the
  /// first author's gate verdict, matching `IngestPaper`'s
  /// partition-by-first-author attribution. Thread-safe.
  void ReplayPaper(const PaperTuple& paper,
                   const std::vector<bool>& apply_mask, bool feed_hh);

  /// The user's current H-index estimate (0 if never seen).
  double PointHIndex(AuthorId user) const;

  /// Detailed per-user lookup; false if the user was never seen.
  bool Lookup(AuthorId user, UserSnapshot* out) const;

  /// The `k` users with the largest maintained estimates.
  std::vector<LeaderboardEntry> TopK(std::size_t k) const;

  /// Heavy-hitter candidates from the merged grid (empty when the grid
  /// is disabled). Merging on query mirrors the engine's
  /// merge-on-query discipline; cost is proportional to grid size.
  /// Epoch-cached: the merged report is kept alongside the per-stripe
  /// ingest epochs that produced it and only recomputed when some
  /// stripe absorbed papers since (docs/PERFORMANCE.md); hit/miss
  /// counts surface in `Stats()`.
  std::vector<HeavyHitterReport> HeavyReport() const;

  /// Aggregate counters (per-stripe consistent snapshot).
  ServiceStats Stats() const;

  /// Admission-gated ingest: `kResourceExhausted` when the in-flight
  /// watermark sheds the call (state untouched), `kDeadlineExceeded`
  /// when the write was applied but missed its deadline (the mutation
  /// is NOT rolled back — the error marks the response late, and the
  /// miss is counted). Otherwise the updated estimate.
  StatusOr<double> TryRecordResponseCount(AuthorId user, std::uint64_t value);

  /// Admission-gated paper ingest; same shed/deadline semantics as
  /// `TryRecordResponseCount`.
  Status TryIngestPaper(const PaperTuple& paper);

  /// Admission-gated point query; `kResourceExhausted` on shed,
  /// `kDeadlineExceeded` when the lookup outlived its budget (the value
  /// is withheld — the caller asked for a bounded-latency answer).
  StatusOr<double> TryPointHIndex(AuthorId user);

  /// Admission-gated top-k. Under its deadline this degrades instead of
  /// blocking: stripes it cannot lock in time are skipped (and counted
  /// in the result tag and the deadline_exceeded counter), so a wedged
  /// stripe costs coverage, not availability. `kResourceExhausted` only
  /// on shed.
  StatusOr<TopKResult> TryTopK(std::size_t k);

  /// Latency histograms, populated by the calls above.
  const LatencyRecorder& ingest_latency() const { return *ingest_latency_; }
  const LatencyRecorder& point_latency() const { return *point_latency_; }
  const LatencyRecorder& topk_latency() const { return *topk_latency_; }

  /// Writes per-stripe envelopes to `path.stripe-<i>`, then the
  /// manifest to `path`. Concurrent ingest is allowed (each stripe is
  /// snapshotted under its own lock), so the checkpoint is per-stripe
  /// consistent rather than a global cut. Equivalent to
  /// `CheckpointTo(path, SaveMode::kFull)`.
  Status CheckpointTo(const std::string& path) const;

  /// `SaveMode::kFull` rewrites everything and roots a new chain;
  /// `SaveMode::kIncremental` writes a delta of the stripes dirtied
  /// since the last save to `path` (falling back to a full save when no
  /// chain to `path` exists — counted, never an error). Thread-safe
  /// against ingest; concurrent checkpoints serialize on the chain lock.
  Status CheckpointTo(const std::string& path, SaveMode mode) const;

  /// Reads and decodes the manifest at `path`.
  static StatusOr<ServiceManifest> ReadManifest(const std::string& path);

  /// Restores service state from a `CheckpointTo` checkpoint whose
  /// configuration matches this service's options
  /// (`kFailedPrecondition` otherwise). All-or-nothing: decodes into
  /// fresh state before swapping it in. Chain-aware: with a readable
  /// `path.head` the newest restorable delta generation wins, falling
  /// back generation by generation (counted) to the plain full save on
  /// damage; without a head this is exactly the legacy full restore.
  Status RestoreFrom(const std::string& path);

  /// The per-stripe envelope path (`path.stripe-<i>`).
  static std::string StripePath(const std::string& path, std::size_t i);

  /// The registry's (and service's) configuration.
  const ServiceOptions& options() const { return registry_.options(); }

  /// Read access to the underlying registry (tests, examples).
  const TieredUserRegistry& registry() const { return registry_; }

  /// Seals pending cold-tier demotion records across all stripes
  /// (`TieredUserRegistry::FlushSegmentStores`). Thread-safe; the
  /// session's background `kTierDemotion` maintenance job calls this
  /// off the serving thread. Returns the number of stripes sealed.
  std::size_t FlushColdTier() { return registry_.FlushSegmentStores(); }

  /// Generation of the live incremental chain (0 = full save only, or
  /// no chain yet). The session's background collapse job polls this
  /// to decide when folding the chain into a fresh full save is due.
  std::uint64_t chain_generation() const {
    std::lock_guard<std::mutex> lock(chain_->mu);
    return chain_->valid ? chain_->generation : 0;
  }

  /// The admission gate guarding the `Try*` boundary.
  const AdmissionController& admission() const { return *admission_; }

 private:
  /// One heavy-hitters shard; all shards share options and seed so the
  /// on-query merge is legal (see HeavyHitters::Merge).
  struct HhStripe {
    mutable std::mutex mu;
    std::optional<HeavyHitters> hh;
    /// Mints synthetic paper ids for `RecordResponseCount`:
    /// `next_paper * num_stripes + stripe_index` is unique globally and
    /// deterministic per stripe (checkpointed so resumed runs continue
    /// the same id sequence).
    std::uint64_t next_paper = 0;
    /// Ingest epoch: bumped (release, under `mu`) after every AddPaper.
    /// `HeavyReport` reads it (acquire, lock-free) to decide whether
    /// its cached merged report is still current; reading the epoch
    /// *before* merging makes mid-merge ingest tag the cache stale.
    std::atomic<std::uint64_t> version{0};
  };

  /// `HeavyReport`'s epoch-tagged cache of the merged-grid report.
  /// Behind a unique_ptr (std::mutex is immovable; the service moves).
  /// Lock order: `cache.mu` then stripe `mu`s, never the reverse.
  struct HhReportCache {
    std::mutex mu;
    bool valid = false;
    /// Stripe ingest epochs captured *before* the merge that produced
    /// `reports` (conservative tags).
    std::vector<std::uint64_t> versions;
    std::vector<HeavyHitterReport> reports;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// What the last successful save to `path` looked like: the per-stripe
  /// epochs captured *before* each stripe was serialized (conservative —
  /// a mutation racing the serialization re-dirties the stripe), the
  /// payload hashes, and which generation holds each stripe. Behind a
  /// unique_ptr (std::mutex is immovable; the service moves). Checkpoint
  /// and restore operations serialize on `mu`; they take stripe locks
  /// inside it, never the reverse.
  struct ChainState {
    /// Operation-level lock: held for the full duration of a
    /// checkpoint or restore so a background chain collapse and a
    /// session-thread save never interleave their file writes. `mu`
    /// below stays brief so `Stats()` / `chain_generation()` remain
    /// responsive during a long full save. Lock order: `op_mu`, then
    /// `mu`, then stripe locks — never the reverse.
    mutable std::mutex op_mu;
    mutable std::mutex mu;
    bool valid = false;
    std::string path;
    std::uint64_t generation = 0;
    std::vector<std::uint64_t> reg_epochs;
    std::vector<std::uint64_t> hh_epochs;
    std::vector<std::uint64_t> hashes;
    std::vector<std::uint64_t> loc_gens;
    CheckpointCounters counters;
  };

  /// One stripe's checkpoint payload plus the epochs captured before it
  /// was serialized and its content hash.
  struct StripeSnapshot {
    std::vector<std::uint8_t> payload;
    std::uint64_t reg_epoch = 0;
    std::uint64_t hh_epoch = 0;
    std::uint64_t hash = 0;
  };

  HImpactService(TieredUserRegistry registry, const OverloadOptions& overload);

  std::vector<std::unique_ptr<HhStripe>> MakeHhStripes() const;
  StripeSnapshot SnapshotStripe(std::size_t i) const;
  Status CheckpointFull(const std::string& path) const;
  Status CheckpointIncremental(const std::string& path) const;
  /// Decodes one stripe payload (registry stripe + heavy-hitters shard)
  /// into the fresh state being assembled by a restore.
  Status DecodeStripePayload(std::size_t i,
                             const std::vector<std::uint8_t>& payload,
                             TieredUserRegistry& registry,
                             std::vector<std::unique_ptr<HhStripe>>& hh) const;
  /// Loads every stripe's payload as covered by delta generation `g`'s
  /// manifest, verifying content hashes; any damage fails the whole
  /// generation (the caller falls back to `g - 1`).
  Status LoadChainPayloads(const std::string& path, std::uint64_t g,
                           std::vector<std::vector<std::uint8_t>>* payloads,
                           std::vector<std::uint64_t>* loc_gens,
                           std::vector<std::uint64_t>* hashes) const;

  TieredUserRegistry registry_;
  std::vector<std::unique_ptr<HhStripe>> hh_stripes_;
  std::unique_ptr<HhReportCache> hh_report_cache_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<LatencyRecorder> ingest_latency_;
  std::unique_ptr<LatencyRecorder> point_latency_;
  std::unique_ptr<LatencyRecorder> topk_latency_;
  std::unique_ptr<ChainState> chain_;
};

}  // namespace himpact

#endif  // HIMPACT_SERVICE_SERVICE_H_
