#include "service/registry.h"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/envelope.h"
#include "fault/fault.h"
#include "hash/mix.h"

namespace himpact {
namespace {

constexpr std::uint64_t kStripeMagic = 0x48494d5053524731ULL;  // HIMPSRG1

/// Fixed per-user overhead charged against the memory budget: the state
/// record itself plus an allowance for the hash-map node and bucket.
constexpr std::uint64_t kMapNodeOverheadBytes = 48;

/// A segment record's decoded payload: the full cold/hot state the user
/// held the moment it was paged out.
struct SegmentRecordState {
  UserTier tier = UserTier::kCold;  // kCold or kHot only
  std::uint64_t events = 0;
  double floor = 0.0;
  std::uint64_t cold_h = 0;
  std::vector<std::uint64_t> values;
  std::optional<ExponentialHistogramEstimator> sketch;
};

/// Serializes the evicted state into a `kSegmentRecord` envelope.
/// Layout: tier u8 (0 cold / 1 hot), events u64, floor f64, cold_h u64,
/// then cold values (count + u64s) or the hot sketch. `last_touch` is
/// deliberately excluded (stripe-local clock, refreshed on page-in).
std::vector<std::uint8_t> EncodeSegmentRecord(const UserTier tier,
                                              const std::uint64_t events,
                                              const double floor,
                                              const std::uint64_t cold_h,
                                              const std::vector<std::uint64_t>&
                                                  values,
                                              const ExponentialHistogramEstimator*
                                                  sketch) {
  ByteWriter writer;
  writer.U8(static_cast<std::uint8_t>(tier));
  writer.U64(events);
  writer.F64(floor);
  writer.U64(cold_h);
  if (tier == UserTier::kCold) {
    writer.U64(values.size());
    for (const std::uint64_t v : values) writer.U64(v);
  } else {
    sketch->SerializeTo(writer);
  }
  return SealEnvelope(CheckpointTag::kSegmentRecord, writer.buffer());
}

/// Opens and decodes a `kSegmentRecord` envelope.
StatusOr<SegmentRecordState> DecodeSegmentRecord(
    const std::vector<std::uint8_t>& envelope) {
  StatusOr<std::vector<std::uint8_t>> payload =
      OpenEnvelope(envelope, CheckpointTag::kSegmentRecord);
  if (!payload.ok()) return payload.status();
  ByteReader reader(payload.value());
  SegmentRecordState state;
  std::uint8_t tier = 0;
  if (!reader.U8(&tier) || !reader.U64(&state.events) ||
      !reader.F64(&state.floor) || !reader.U64(&state.cold_h)) {
    return Status::InvalidArgument("truncated segment record");
  }
  if (tier > static_cast<std::uint8_t>(UserTier::kHot)) {
    return Status::InvalidArgument("bad segment record tier");
  }
  state.tier = static_cast<UserTier>(tier);
  if (state.tier == UserTier::kCold) {
    std::uint64_t n = 0;
    if (!reader.U64(&n) || n > reader.remaining() / sizeof(std::uint64_t)) {
      return Status::InvalidArgument("bad segment record value count");
    }
    state.values.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t v = 0; v < n; ++v) {
      std::uint64_t value = 0;
      if (!reader.U64(&value)) {
        return Status::InvalidArgument("truncated segment record values");
      }
      state.values.push_back(value);
    }
  } else {
    StatusOr<ExponentialHistogramEstimator> sketch =
        ExponentialHistogramEstimator::DeserializeFrom(reader);
    if (!sketch.ok()) return sketch.status();
    state.sketch = std::move(sketch).value();
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("segment record has trailing bytes");
  }
  return state;
}

}  // namespace

StatusOr<TieredUserRegistry> TieredUserRegistry::Create(
    const ServiceOptions& options) {
  if (!(options.eps > 0.0 && options.eps < 1.0)) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (options.max_h < 1) {
    return Status::InvalidArgument("max_h must be >= 1");
  }
  if (options.num_stripes < 1 || options.num_stripes > 4096) {
    return Status::InvalidArgument("num_stripes must be in 1..4096");
  }
  if (options.promote_threshold < 1) {
    return Status::InvalidArgument("promote_threshold must be >= 1");
  }
  if (options.memory_budget_bytes < 1) {
    return Status::InvalidArgument("memory_budget_bytes must be >= 1");
  }
  if (options.leaderboard_capacity < 1) {
    return Status::InvalidArgument("leaderboard_capacity must be >= 1");
  }
  if (options.enable_heavy_hitters) {
    if (!(options.hh_eps > 0.0 && options.hh_eps < 1.0)) {
      return Status::InvalidArgument("hh_eps must be in (0, 1)");
    }
    if (!(options.hh_delta > 0.0 && options.hh_delta < 1.0)) {
      return Status::InvalidArgument("hh_delta must be in (0, 1)");
    }
    if (options.hh_max_papers < 1) {
      return Status::InvalidArgument("hh_max_papers must be >= 1");
    }
  }
  TieredUserRegistry registry(options);
  Status attached = registry.AttachSegmentStores();
  if (!attached.ok()) return attached;
  return registry;
}

Status TieredUserRegistry::AttachSegmentStores() {
  if (options_.segment_dir.empty()) return Status::OK();
  for (std::size_t i = 0; i < stripes_.size(); ++i) {
    SegmentStoreOptions store_options;
    store_options.dir = options_.segment_dir;
    store_options.stripe = i;
    StatusOr<std::unique_ptr<SegmentStore>> store =
        SegmentStore::Open(store_options);
    if (!store.ok()) {
      return Status(store.status().code(),
                    "segment store for stripe " + std::to_string(i) + ": " +
                        store.status().message());
    }
    stripes_[i]->store = std::move(store).value();
  }
  return Status::OK();
}

std::uint64_t TieredUserRegistry::DirtyEpoch(std::size_t i) const {
  HIMPACT_CHECK(i < stripes_.size());
  return stripes_[i]->dirty.load(std::memory_order_acquire);
}

std::uint64_t TieredUserRegistry::StripeEvents(std::size_t i) const {
  HIMPACT_CHECK(i < stripes_.size());
  std::lock_guard<std::mutex> lock(stripes_[i]->mu);
  return stripes_[i]->events;
}

TieredUserRegistry::TieredUserRegistry(const ServiceOptions& options)
    : options_(options),
      stripe_budget_bytes_(std::max<std::uint64_t>(
          1, options.memory_budget_bytes / options.num_stripes)) {
  stripes_.reserve(options_.num_stripes);
  for (std::size_t i = 0; i < options_.num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(MakeSketch()));
  }
  topk_cache_ = std::make_unique<TopKCache>();
}

ExponentialHistogramEstimator TieredUserRegistry::MakeSketch() const {
  return std::move(
             ExponentialHistogramEstimator::Create(options_.eps,
                                                   options_.max_h))
      .value();
}

std::size_t TieredUserRegistry::StripeOf(AuthorId user) const {
  return static_cast<std::size_t>(SplitMix64(user) % stripes_.size());
}

std::uint64_t TieredUserRegistry::BaseBytes() {
  return sizeof(UserState) + kMapNodeOverheadBytes;
}

std::uint64_t TieredUserRegistry::ColdExtraBytes(const UserState& state) {
  return state.values.capacity() * sizeof(std::uint64_t);
}

std::uint64_t TieredUserRegistry::HotExtraBytes(const UserState& state) {
  return state.sketch->EstimateSpace().bytes;
}

std::uint64_t TieredUserRegistry::EntryBytes(const UserState& state) const {
  switch (state.tier) {
    case UserTier::kCold:
      return BaseBytes() + ColdExtraBytes(state);
    case UserTier::kHot:
      return BaseBytes() + HotExtraBytes(state);
    case UserTier::kFrozen:
    case UserTier::kSegment:
      return BaseBytes();
  }
  return BaseBytes();
}

double TieredUserRegistry::EstimateLocked(const UserState& state) const {
  double estimate = state.floor;
  switch (state.tier) {
    case UserTier::kCold:
      estimate = std::max(estimate, static_cast<double>(state.cold_h));
      break;
    case UserTier::kHot:
      estimate = std::max(estimate, state.sketch->Estimate());
      break;
    case UserTier::kFrozen:
    case UserTier::kSegment:
      // The floor alone; a segment-resident user's *real* estimate comes
      // from SegmentEstimateLocked (page-in), which falls back here.
      break;
  }
  return estimate;
}

void TieredUserRegistry::PromoteLocked(Stripe& stripe, UserState& state) {
  // Fault hook: a firing `alloc-fail` models the promotion sketch's
  // allocation failing. The promotion is abandoned — the user keeps its
  // exact cold state (a correct answer, just costlier) and the next
  // event over the threshold retries.
  if (FaultRegistry::Global().AnyArmed() &&
      FaultRegistry::Global().ShouldFire(FaultPoint::kAllocFail)) {
    ++stripe.alloc_failures;
    return;
  }
  auto sketch =
      std::make_unique<ExponentialHistogramEstimator>(MakeSketch());
  for (const std::uint64_t value : state.values) sketch->Add(value);
  // The exact cold H-index is a valid lower bound forever (H-indexes
  // are monotone), so carry it as the floor under the sketch estimate.
  state.floor = std::max(state.floor, static_cast<double>(state.cold_h));
  state.values.clear();
  state.values.shrink_to_fit();
  state.sketch = std::move(sketch);
  state.tier = UserTier::kHot;
  ++stripe.promotions;
}

void TieredUserRegistry::DemoteLocked(Stripe& stripe, AuthorId user,
                                      UserState& state) {
  if (state.tier == UserTier::kFrozen || state.tier == UserTier::kSegment) {
    return;  // already demoted
  }
  state.floor = std::max(state.floor, EstimateLocked(state));

  if (stripe.store != nullptr) {
    // Paged demotion: serialize the full cold/hot state into the
    // stripe's segment store and keep only the bare record in RAM. The
    // record retains all of the user's mass, so — unlike freezing — the
    // archive is NOT touched (the state is paged, not forgotten).
    std::vector<std::uint8_t> record =
        EncodeSegmentRecord(state.tier, state.events, state.floor,
                            state.cold_h, state.values, state.sketch.get());
    Status put = stripe.store->Put(user, std::move(record));
    if (put.ok()) {
      state.values.clear();
      state.values.shrink_to_fit();
      state.sketch.reset();
      state.tier = UserTier::kSegment;
      ++stripe.demotions;
      return;
    }
    // Put cannot currently fail (seals retry via the pending buffer),
    // but if it ever does, fall through to the frozen path below.
  }

  switch (state.tier) {
    case UserTier::kHot:
      // Keep the demoted user's mass queryable in aggregate: merge the
      // per-user sketch into the stripe archive before dropping it.
      stripe.archive.Merge(*state.sketch);
      state.sketch.reset();
      break;
    case UserTier::kCold:
      for (const std::uint64_t value : state.values) {
        stripe.archive.Add(value);
      }
      state.values.clear();
      state.values.shrink_to_fit();
      break;
    case UserTier::kFrozen:
    case UserTier::kSegment:
      return;  // unreachable (filtered above)
  }
  state.tier = UserTier::kFrozen;
  ++stripe.demotions;
}

void TieredUserRegistry::ReactivateLocked(Stripe& stripe, AuthorId user,
                                          UserState& state) {
  StatusOr<std::vector<std::uint8_t>> record = stripe.store->Get(user);
  StatusOr<SegmentRecordState> decoded =
      record.ok() ? DecodeSegmentRecord(record.value())
                  : StatusOr<SegmentRecordState>(record.status());
  if (decoded.ok()) {
    SegmentRecordState& paged = decoded.value();
    // The RAM record kept counting events while paged out; keep the
    // larger counter (post-page-out events were floor-only updates only
    // if a failure path ran, so normally they are equal).
    state.events = std::max(state.events, paged.events);
    state.floor = std::max(state.floor, paged.floor);
    state.cold_h = paged.cold_h;
    state.values = std::move(paged.values);
    if (paged.tier == UserTier::kHot) {
      state.sketch = std::make_unique<ExponentialHistogramEstimator>(
          std::move(*paged.sketch));
    }
    state.tier = paged.tier;
    stripe.store->Forget(user);
    ++stripe.promotions;
    return;
  }
  // Page-in failed (I/O error, armed `segment-map-fail`, or a corrupt
  // record): degrade exactly like a frozen reactivation — fresh sketch
  // over the suffix with the floor carried — rather than crash or lose
  // the event. Under `alloc-fail` stay segment-resident serving the
  // floor; the next event retries the page-in.
  if (FaultRegistry::Global().AnyArmed() &&
      FaultRegistry::Global().ShouldFire(FaultPoint::kAllocFail)) {
    ++stripe.alloc_failures;
    return;
  }
  stripe.store->Forget(user);
  state.sketch = std::make_unique<ExponentialHistogramEstimator>(MakeSketch());
  state.tier = UserTier::kHot;
  ++stripe.promotions;
}

double TieredUserRegistry::SegmentEstimateLocked(
    Stripe& stripe, AuthorId user, const UserState& state) const {
  StatusOr<std::vector<std::uint8_t>> record = stripe.store->Get(user);
  if (record.ok()) {
    StatusOr<SegmentRecordState> decoded = DecodeSegmentRecord(record.value());
    if (decoded.ok()) {
      const SegmentRecordState& paged = decoded.value();
      double estimate = std::max(state.floor, paged.floor);
      if (paged.tier == UserTier::kCold) {
        estimate = std::max(estimate, static_cast<double>(paged.cold_h));
      } else {
        estimate = std::max(estimate, paged.sketch->Estimate());
      }
      return estimate;
    }
  }
  // Degraded answer: the RAM floor (captured at page-out) is a valid
  // lower bound; never crash a query on a bad page-in.
  return state.floor;
}

void TieredUserRegistry::UpdateBoardLocked(Stripe& stripe, AuthorId user,
                                           double estimate) {
  for (LeaderboardEntry& entry : stripe.board) {
    if (entry.user == user) {
      if (estimate > entry.estimate) {
        entry.estimate = estimate;
        stripe.version.fetch_add(1, std::memory_order_release);
      }
      return;
    }
  }
  if (stripe.board.size() < options_.leaderboard_capacity) {
    stripe.board.push_back({user, estimate});
    stripe.version.fetch_add(1, std::memory_order_release);
    return;
  }
  // Replace the smallest entry if this estimate beats it. Because
  // maintained estimates are monotone non-decreasing and the board is
  // touched on every Add, the board min never decreases, so any user
  // that ever cleared the bar is (and stays) on the board.
  std::size_t min_index = 0;
  for (std::size_t i = 1; i < stripe.board.size(); ++i) {
    if (stripe.board[i].estimate < stripe.board[min_index].estimate) {
      min_index = i;
    }
  }
  if (estimate > stripe.board[min_index].estimate) {
    stripe.board[min_index] = {user, estimate};
    stripe.version.fetch_add(1, std::memory_order_release);
  }
}

void TieredUserRegistry::EnforceBudgetLocked(Stripe& stripe) {
  if (stripe.resident_bytes <= stripe_budget_bytes_) return;
  // Hysteresis: demote down to 90% of the budget so one oversized add
  // does not trigger a scan per event.
  const std::uint64_t target = stripe_budget_bytes_ - stripe_budget_bytes_ / 10;
  // When the last scan proved the target unreachable (irreducible
  // per-user records alone exceed it), rescanning on every Add is a
  // full map walk + sort for nothing. Skip until enough *evictable*
  // bytes have accumulated above that floor to make a scan pay for
  // itself; the band is 10% of the budget, matching the hysteresis.
  if (stripe.unmeetable_floor_bytes > 0 &&
      stripe.resident_bytes <
          stripe.unmeetable_floor_bytes + stripe_budget_bytes_ / 10) {
    return;
  }
  // Oldest-first victim list (hot and cold users both shed their
  // variable storage when demoted; frozen and segment-resident users
  // are already minimal).
  std::vector<std::pair<std::uint64_t, AuthorId>> victims;
  victims.reserve(stripe.users.size());
  for (const auto& [user, state] : stripe.users) {
    if (state.tier == UserTier::kCold || state.tier == UserTier::kHot) {
      victims.emplace_back(state.last_touch, user);
    }
  }
  std::sort(victims.begin(), victims.end());
  for (const auto& [touch, user] : victims) {
    if (stripe.resident_bytes <= target) break;
    UserState& state = stripe.users.find(user)->second;
    const std::uint64_t before = EntryBytes(state);
    DemoteLocked(stripe, user, state);
    stripe.resident_bytes -= before - EntryBytes(state);
  }
  // If every user is demoted the budget may still be exceeded by the
  // irreducible per-user records; nothing more to shed without
  // forgetting users outright. Remember that level so the next Adds do
  // not rescan until real evictable state builds up again.
  stripe.unmeetable_floor_bytes =
      stripe.resident_bytes > target ? stripe.resident_bytes : 0;
}

double TieredUserRegistry::Add(AuthorId user, std::uint64_t value) {
  Stripe& stripe = *stripes_[StripeOf(user)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  // Fault hook: a firing `worker-stall` wedges this stripe for the armed
  // parameter (microseconds) while holding its lock — queries against
  // the same stripe block behind it, which is what per-op deadlines and
  // degraded queries exist to survive.
  if (FaultRegistry::Global().AnyArmed() &&
      FaultRegistry::Global().ShouldFire(FaultPoint::kWorkerStall)) {
    SleepForMicros(FaultRegistry::Global().param(FaultPoint::kWorkerStall));
  }
  ++stripe.events;
  // Incremental checkpoints diff this epoch; every event dirties the
  // stripe (the board epoch alone misses adds that leave the board
  // unchanged).
  stripe.dirty.fetch_add(1, std::memory_order_release);

  auto [it, inserted] = stripe.users.try_emplace(user);
  UserState& state = it->second;
  const std::uint64_t before = inserted ? 0 : EntryBytes(state);
  ++state.events;
  state.last_touch = ++stripe.touch_clock;

  if (state.tier == UserTier::kSegment) {
    if (stripe.store == nullptr) {
      // Restored into a service without a segment directory: the paged
      // record is unreachable, so the user is effectively frozen (floor
      // only) and takes the frozen reactivation path below.
      state.tier = UserTier::kFrozen;
    } else {
      // A new event pages the full state back into RAM and continues it
      // live (tier returns to cold/hot below).
      ReactivateLocked(stripe, user, state);
    }
  }

  switch (state.tier) {
    case UserTier::kCold: {
      state.values.push_back(value);
      // One value arrived, so the exact H-index can rise by at most 1:
      // a single count-above-threshold scan settles it.
      if (value >= state.cold_h + 1) {
        std::uint64_t at_least = 0;
        for (const std::uint64_t v : state.values) {
          if (v >= state.cold_h + 1) ++at_least;
        }
        if (at_least >= state.cold_h + 1) ++state.cold_h;
      }
      if (state.events >= options_.promote_threshold) {
        PromoteLocked(stripe, state);
      }
      break;
    }
    case UserTier::kHot:
      state.sketch->Add(value);
      break;
    case UserTier::kFrozen: {
      // Reactivation: fresh sketch over the post-demotion suffix; the
      // frozen floor keeps the estimate a valid lower bound. Under an
      // `alloc-fail` fault the reactivation is skipped — the user keeps
      // serving its floor and the next event retries.
      if (FaultRegistry::Global().AnyArmed() &&
          FaultRegistry::Global().ShouldFire(FaultPoint::kAllocFail)) {
        ++stripe.alloc_failures;
        break;
      }
      state.sketch =
          std::make_unique<ExponentialHistogramEstimator>(MakeSketch());
      state.sketch->Add(value);
      state.tier = UserTier::kHot;
      ++stripe.promotions;
      break;
    }
    case UserTier::kSegment:
      // Only reachable when the page-in was vetoed by `alloc-fail`: the
      // user keeps serving its floor and the next event retries.
      break;
  }

  stripe.resident_bytes += EntryBytes(state) - before;
  const double estimate = EstimateLocked(state);
  UpdateBoardLocked(stripe, user, estimate);
  EnforceBudgetLocked(stripe);
  return estimate;
}

double TieredUserRegistry::PointHIndex(AuthorId user) const {
  Stripe& stripe = *stripes_[StripeOf(user)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.users.find(user);
  if (it == stripe.users.end()) return 0.0;
  // The cold-get path: a segment-resident user's answer comes from its
  // paged-in record, byte-identical to the pre-eviction answer.
  if (it->second.tier == UserTier::kSegment && stripe.store != nullptr) {
    return SegmentEstimateLocked(stripe, user, it->second);
  }
  return EstimateLocked(it->second);
}

bool TieredUserRegistry::Lookup(AuthorId user, UserSnapshot* out) const {
  Stripe& stripe = *stripes_[StripeOf(user)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.users.find(user);
  if (it == stripe.users.end()) return false;
  out->user = user;
  out->tier = it->second.tier;
  out->events = it->second.events;
  if (it->second.tier == UserTier::kSegment && stripe.store != nullptr) {
    out->estimate = SegmentEstimateLocked(stripe, user, it->second);
  } else {
    out->estimate = EstimateLocked(it->second);
  }
  return true;
}

std::vector<LeaderboardEntry> TieredUserRegistry::TopK(std::size_t k) const {
  HIMPACT_CHECK_MSG(k <= options_.leaderboard_capacity,
                    "TopK k exceeds leaderboard_capacity");
  TopKCache& cache = *topk_cache_;
  std::lock_guard<std::mutex> cache_lock(cache.mu);

  // Capture every stripe's board epoch BEFORE touching any board. A
  // write that lands mid-merge bumps its epoch past the captured tag,
  // so the next query re-merges; the cache can be stale-tagged-fresh
  // never, only fresh-tagged-stale (one redundant re-merge).
  std::vector<std::uint64_t> versions;
  versions.reserve(stripes_.size());
  for (const auto& stripe : stripes_) {
    versions.push_back(stripe->version.load(std::memory_order_acquire));
  }

  const bool hit = cache.valid && cache.versions == versions;
  if (hit) {
    ++cache.hits;
  } else {
    std::vector<LeaderboardEntry> merged;
    for (const auto& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe->mu);
      merged.insert(merged.end(), stripe->board.begin(), stripe->board.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const LeaderboardEntry& a, const LeaderboardEntry& b) {
                if (a.estimate != b.estimate) return a.estimate > b.estimate;
                return a.user < b.user;
              });
    cache.entries = std::move(merged);
    cache.versions = std::move(versions);
    cache.valid = true;
    ++cache.misses;
  }

  // The cache holds the FULL merged sorted board, so any k up to the
  // leaderboard capacity is a prefix of it.
  const std::size_t n = std::min(k, cache.entries.size());
  return std::vector<LeaderboardEntry>(cache.entries.begin(),
                                       cache.entries.begin() +
                                           static_cast<std::ptrdiff_t>(n));
}

std::vector<LeaderboardEntry> TieredUserRegistry::TopKDegraded(
    std::size_t k, std::uint64_t deadline_nanos,
    std::size_t* stripes_skipped) const {
  HIMPACT_CHECK_MSG(k <= options_.leaderboard_capacity,
                    "TopK k exceeds leaderboard_capacity");
  *stripes_skipped = 0;
  std::vector<LeaderboardEntry> merged;
  for (const auto& stripe : stripes_) {
    std::unique_lock<std::mutex> lock(stripe->mu, std::try_to_lock);
    while (!lock.owns_lock()) {
      if (deadline_nanos != 0 && FaultClock::NowNanos() >= deadline_nanos) {
        break;
      }
      std::this_thread::yield();
      lock.try_lock();
    }
    if (!lock.owns_lock()) {
      ++*stripes_skipped;
      continue;
    }
    merged.insert(merged.end(), stripe->board.begin(), stripe->board.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const LeaderboardEntry& a, const LeaderboardEntry& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.user < b.user;
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

RegistryStats TieredUserRegistry::Stats() const {
  RegistryStats stats;
  stats.budget_bytes = options_.memory_budget_bytes;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stats.total_events += stripe->events;
    stats.num_users += stripe->users.size();
    for (const auto& [user, state] : stripe->users) {
      switch (state.tier) {
        case UserTier::kCold:
          ++stats.cold_users;
          break;
        case UserTier::kHot:
          ++stats.hot_users;
          break;
        case UserTier::kFrozen:
          ++stats.frozen_users;
          break;
        case UserTier::kSegment:
          ++stats.segment_users;
          break;
      }
    }
    stats.promotions += stripe->promotions;
    stats.demotions += stripe->demotions;
    stats.resident_bytes += stripe->resident_bytes;
    stats.alloc_failures += stripe->alloc_failures;
    if (stripe->store != nullptr) {
      stats.segment_files += stripe->store->segment_files();
      stats.segment_bytes += stripe->store->segment_bytes();
      stats.segment_pending_records += stripe->store->pending_records();
      const SegmentStoreCounters& counters = stripe->store->counters();
      stats.segment_seals += counters.seals;
      stats.page_ins += counters.page_ins;
      stats.page_in_cache_hits += counters.cache_hits;
      stats.page_in_failures += counters.page_in_failures;
      stats.segment_dead_bytes += stripe->store->dead_record_bytes();
    }
  }
  {
    std::lock_guard<std::mutex> lock(topk_cache_->mu);
    stats.topk_cache_hits = topk_cache_->hits;
    stats.topk_cache_misses = topk_cache_->misses;
  }
  return stats;
}

std::size_t TieredUserRegistry::FlushSegmentStores() {
  std::size_t sealed = 0;
  for (auto& stripe_ptr : stripes_) {
    Stripe& stripe = *stripe_ptr;
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.store == nullptr || stripe.store->pending_records() == 0) {
      continue;
    }
    if (stripe.store->Flush().ok()) ++sealed;
  }
  return sealed;
}

void TieredUserRegistry::SerializeStripe(std::size_t i,
                                         ByteWriter& writer) const {
  HIMPACT_CHECK(i < stripes_.size());
  Stripe& stripe = *stripes_[i];
  std::lock_guard<std::mutex> lock(stripe.mu);

  // Seal pending segment records first: a stripe checkpoint stores only
  // the tier byte for segment-resident users, so every record it
  // references must be durable on disk. Best-effort — a failed seal
  // keeps the records pending (still servable from RAM) and the users'
  // floors in the checkpoint remain valid lower bounds.
  if (stripe.store != nullptr) (void)stripe.store->Flush();

  writer.U64(kStripeMagic);
  writer.U64(static_cast<std::uint64_t>(i));
  writer.U64(static_cast<std::uint64_t>(stripes_.size()));
  writer.U64(stripe.events);
  writer.U64(stripe.promotions);
  writer.U64(stripe.demotions);
  writer.U64(stripe.touch_clock);
  stripe.archive.SerializeTo(writer);

  // Users in sorted id order so the encoding is deterministic (the map
  // iteration order is not).
  std::vector<AuthorId> ids;
  ids.reserve(stripe.users.size());
  for (const auto& [user, state] : stripe.users) ids.push_back(user);
  std::sort(ids.begin(), ids.end());
  writer.U64(ids.size());
  for (const AuthorId user : ids) {
    const UserState& state = stripe.users.find(user)->second;
    writer.U64(user);
    writer.U8(static_cast<std::uint8_t>(state.tier));
    writer.U64(state.events);
    writer.U64(state.last_touch);
    writer.F64(state.floor);
    writer.U64(state.cold_h);
    switch (state.tier) {
      case UserTier::kCold:
        writer.U64(state.values.size());
        for (const std::uint64_t v : state.values) writer.U64(v);
        break;
      case UserTier::kHot:
        state.sketch->SerializeTo(writer);
        break;
      case UserTier::kFrozen:
      case UserTier::kSegment:
        // No variable payload: a frozen user's state IS the fixed
        // fields; a segment user's full state lives in its (flushed)
        // segment file.
        break;
    }
  }

  // The leaderboard in stored order, so a restored registry answers
  // TopK byte-identically (ordering among ties is positional).
  writer.U64(stripe.board.size());
  for (const LeaderboardEntry& entry : stripe.board) {
    writer.U64(entry.user);
    writer.F64(entry.estimate);
  }
}

Status TieredUserRegistry::DeserializeStripe(std::size_t i,
                                             ByteReader& reader) {
  HIMPACT_CHECK(i < stripes_.size());

  std::uint64_t magic = 0;
  std::uint64_t index = 0;
  std::uint64_t num_stripes = 0;
  if (!reader.U64(&magic) || magic != kStripeMagic) {
    return Status::InvalidArgument("not a registry stripe checkpoint");
  }
  if (!reader.U64(&index) || !reader.U64(&num_stripes)) {
    return Status::InvalidArgument("truncated stripe header");
  }
  if (index != i || num_stripes != stripes_.size()) {
    return Status::InvalidArgument(
        "stripe checkpoint recorded for a different stripe layout");
  }

  // Decode into scratch state first; commit only a fully valid stripe.
  std::uint64_t events = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t touch_clock = 0;
  if (!reader.U64(&events) || !reader.U64(&promotions) ||
      !reader.U64(&demotions) || !reader.U64(&touch_clock)) {
    return Status::InvalidArgument("truncated stripe counters");
  }
  StatusOr<ExponentialHistogramEstimator> archive =
      ExponentialHistogramEstimator::DeserializeFrom(reader);
  if (!archive.ok()) return archive.status();

  std::uint64_t num_users = 0;
  if (!reader.U64(&num_users)) {
    return Status::InvalidArgument("truncated user count");
  }
  std::unordered_map<AuthorId, UserState> users;
  users.reserve(static_cast<std::size_t>(num_users));
  std::uint64_t resident_bytes = 0;
  for (std::uint64_t u = 0; u < num_users; ++u) {
    std::uint64_t user = 0;
    std::uint8_t tier = 0;
    UserState state;
    if (!reader.U64(&user) || !reader.U8(&tier) ||
        !reader.U64(&state.events) || !reader.U64(&state.last_touch) ||
        !reader.F64(&state.floor) || !reader.U64(&state.cold_h)) {
      return Status::InvalidArgument("truncated user record");
    }
    if (tier > static_cast<std::uint8_t>(UserTier::kSegment)) {
      return Status::InvalidArgument("unknown user tier");
    }
    state.tier = static_cast<UserTier>(tier);
    switch (state.tier) {
      case UserTier::kCold: {
        std::uint64_t n = 0;
        if (!reader.U64(&n) || n > reader.remaining() / sizeof(std::uint64_t)) {
          return Status::InvalidArgument("bad cold value count");
        }
        state.values.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t v = 0; v < n; ++v) {
          std::uint64_t value = 0;
          if (!reader.U64(&value)) {
            return Status::InvalidArgument("truncated cold values");
          }
          state.values.push_back(value);
        }
        break;
      }
      case UserTier::kHot: {
        StatusOr<ExponentialHistogramEstimator> sketch =
            ExponentialHistogramEstimator::DeserializeFrom(reader);
        if (!sketch.ok()) return sketch.status();
        state.sketch = std::make_unique<ExponentialHistogramEstimator>(
            std::move(sketch).value());
        break;
      }
      case UserTier::kFrozen:
      case UserTier::kSegment:
        break;
    }
    resident_bytes += EntryBytes(state);
    if (!users.emplace(user, std::move(state)).second) {
      return Status::InvalidArgument("duplicate user in stripe checkpoint");
    }
  }

  std::uint64_t board_size = 0;
  if (!reader.U64(&board_size) ||
      board_size > options_.leaderboard_capacity) {
    return Status::InvalidArgument("bad leaderboard size");
  }
  std::vector<LeaderboardEntry> board;
  board.reserve(static_cast<std::size_t>(board_size));
  for (std::uint64_t b = 0; b < board_size; ++b) {
    LeaderboardEntry entry;
    if (!reader.U64(&entry.user) || !reader.F64(&entry.estimate)) {
      return Status::InvalidArgument("truncated leaderboard");
    }
    board.push_back(entry);
  }

  Stripe& stripe = *stripes_[i];
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.events = events;
  stripe.promotions = promotions;
  stripe.demotions = demotions;
  stripe.touch_clock = touch_clock;
  stripe.archive = std::move(archive).value();
  stripe.users = std::move(users);
  stripe.board = std::move(board);
  stripe.resident_bytes = resident_bytes;
  // Residency was rebuilt from scratch; any unmeetable-budget floor the
  // previous population established no longer describes this one.
  stripe.unmeetable_floor_bytes = 0;
  // The board was wholesale-replaced: advance the epoch so a TopK cache
  // tagged with the pre-restore epoch cannot serve the old board. (The
  // epoch itself is runtime-only — deliberately not checkpointed — so a
  // restored stripe's counter keeps climbing from wherever it was.)
  stripe.version.fetch_add(1, std::memory_order_release);
  // A restore rewrites the stripe wholesale, so the next incremental
  // checkpoint must re-serialize it.
  stripe.dirty.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

}  // namespace himpact
