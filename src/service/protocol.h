#ifndef HIMPACT_SERVICE_PROTOCOL_H_
#define HIMPACT_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "stream/types.h"

/// \file
/// The `hstream_serve` line protocol: one command per line on stdin,
/// one reply per line on stdout.
///
///   add <user> <value>      -> OK <estimate>
///   paper <id> <citations> <author>[,<author>...]
///                           -> OK <num_authors>
///   get <user>              -> H <user> <estimate> <tier> <events>
///   top <k>                 -> TOP <user>:<estimate> ...
///   heavy                   -> HEAVY <user>:<estimate> ...
///   stats                   -> STATS {<json>}
///   health                  -> HEALTH {<json>}
///   save <path> [full|incr] -> OK saved <path>
///   quit                    -> BYE
///
/// `save` defaults to a full checkpoint; `save <path> incr` asks for an
/// incremental delta against the last save to the same path (falling
/// back to a full save when there is no chain to extend — see
/// docs/CHECKPOINTS.md).
///
/// Overloaded servers reply `RESOURCE_EXHAUSTED shed` (watermark hit,
/// command not applied) or `DEADLINE_EXCEEDED ...` (see
/// docs/ROBUSTNESS.md) instead of the success form; both are counted,
/// never silent.
///
/// Malformed input yields `ERR <reason>` and the server keeps reading
/// (a load generator must not be able to wedge the service with one bad
/// line) while bumping a `rejected_lines` quarantine counter reported
/// by `health`. Parsing is strict — unknown verbs, missing or trailing
/// tokens, and non-numeric operands are all rejected — and pure (no
/// I/O), so the same parser is unit-tested directly and driven through
/// the binary end to end.
///
/// The same verbs also travel as length-prefixed binary frames
/// (net/wire.h, spec in docs/PROTOCOL.md). Both wire formats meet at
/// `Command` (requests) and `CommandResult` (replies), so a command
/// answers identically whichever encoding carried it.

namespace himpact {

/// The protocol verbs. Values are the binary protocol's opcode bytes
/// (net/wire.h, docs/PROTOCOL.md) — one value space for both wire
/// formats. `kInvalid` is never a request: it marks the reply to a
/// frame whose opcode could not be decoded at all.
enum class CommandKind : unsigned char {
  kInvalid = 0x00,
  kAdd = 0x01,
  kPaper = 0x02,
  kGet = 0x03,
  kTop = 0x04,
  kHeavy = 0x05,
  kStats = 0x06,
  kHealth = 0x07,
  kSave = 0x08,
  kQuit = 0x09,
};

/// How a `save` writes its checkpoint. `kFull` rewrites every stripe;
/// `kIncremental` extends the delta chain rooted at the last full save
/// to the same path, rewriting only stripes whose dirty epoch moved
/// (service/service.h, docs/CHECKPOINTS.md). The value is the text
/// token's wire meaning, not an opcode: the binary `save` frame is
/// always full.
enum class SaveMode : unsigned char {
  kFull = 0,
  kIncremental = 1,
};

/// One parsed protocol line.
struct Command {
  CommandKind kind = CommandKind::kQuit;
  AuthorId user = 0;         // add, get
  std::uint64_t value = 0;   // add (response count), top (k)
  PaperTuple paper;          // paper
  std::string path;          // save
  SaveMode save_mode = SaveMode::kFull;  // save
};

/// Parses one protocol line. `kInvalidArgument` (with a reason suitable
/// for an `ERR` reply) on malformed input; blank lines are invalid.
StatusOr<Command> ParseCommandLine(const std::string& line);

/// The `tier` value a `get` reply carries for a user the service has
/// never seen (rendered as "none" on the text wire, 0xFF on the binary
/// one).
inline constexpr int kTierNone = -1;

/// Transport-neutral outcome of one command: what the service answered,
/// before any wire rendering. `ServiceSession::HandleCommand` produces
/// one per command; `FormatTextReply` renders it as the text protocol
/// line and `EncodeReplyFrame` (net/wire.h) as a binary reply frame.
/// Both renderings are lossless over these fields, which is what the
/// text/binary parity tests lean on: decode(binary reply) re-rendered
/// as text is byte-identical to the text reply.
struct CommandResult {
  CommandKind kind = CommandKind::kQuit;
  /// `kOk`, or the error class: `kInvalidArgument` renders as `ERR`,
  /// `kResourceExhausted` / `kDeadlineExceeded` keep their own wire
  /// spellings (docs/ROBUSTNESS.md), anything else degrades to `ERR`.
  StatusCode code = StatusCode::kOk;
  /// Error reason (non-OK results only).
  std::string message;
  double estimate = 0.0;          // add, get
  std::uint32_t num_authors = 0;  // paper
  AuthorId user = 0;              // get (echoed)
  int tier = kTierNone;           // get (0/1/2, kTierNone if unseen)
  std::uint64_t events = 0;       // get
  std::uint64_t stripes_skipped = 0;  // top (tags TOP-LB)
  /// top / heavy entries, in reply order: (user, estimate) pairs.
  std::vector<std::pair<AuthorId, double>> entries;
  /// stats / health JSON object (braces included), or the save path.
  std::string text;
};

/// Renders a `CommandResult` as the newline-terminated text-protocol
/// reply. This is *the* text reply encoder: the stdin loop and the TCP
/// text path both emit exactly these bytes.
std::string FormatTextReply(const CommandResult& result);

/// Formats an H-index estimate the way every reply does (shortest
/// round-trippable form via %.6g — estimates are small grid powers, so
/// this is deterministic and stable across runs).
std::string FormatEstimate(double estimate);

/// The tier names used in `get` replies: "cold", "hot", "frozen",
/// "segment".
const char* TierName(int tier);

}  // namespace himpact

#endif  // HIMPACT_SERVICE_PROTOCOL_H_
