#ifndef HIMPACT_SERVICE_PROTOCOL_H_
#define HIMPACT_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "stream/types.h"

/// \file
/// The `hstream_serve` line protocol: one command per line on stdin,
/// one reply per line on stdout.
///
///   add <user> <value>      -> OK <estimate>
///   paper <id> <citations> <author>[,<author>...]
///                           -> OK <num_authors>
///   get <user>              -> H <user> <estimate> <tier> <events>
///   top <k>                 -> TOP <user>:<estimate> ...
///   heavy                   -> HEAVY <user>:<estimate> ...
///   stats                   -> STATS {<json>}
///   health                  -> HEALTH {<json>}
///   save <path>             -> OK saved <path>
///   quit                    -> BYE
///
/// Overloaded servers reply `RESOURCE_EXHAUSTED shed` (watermark hit,
/// command not applied) or `DEADLINE_EXCEEDED ...` (see
/// docs/ROBUSTNESS.md) instead of the success form; both are counted,
/// never silent.
///
/// Malformed input yields `ERR <reason>` and the server keeps reading
/// (a load generator must not be able to wedge the service with one bad
/// line) while bumping a `rejected_lines` quarantine counter reported
/// by `health`. Parsing is strict — unknown verbs, missing or trailing
/// tokens, and non-numeric operands are all rejected — and pure (no
/// I/O), so the same parser is unit-tested directly and driven through
/// the binary end to end.

namespace himpact {

/// The protocol verbs.
enum class CommandKind {
  kAdd,
  kPaper,
  kGet,
  kTop,
  kHeavy,
  kStats,
  kHealth,
  kSave,
  kQuit,
};

/// One parsed protocol line.
struct Command {
  CommandKind kind = CommandKind::kQuit;
  AuthorId user = 0;         // add, get
  std::uint64_t value = 0;   // add (response count), top (k)
  PaperTuple paper;          // paper
  std::string path;          // save
};

/// Parses one protocol line. `kInvalidArgument` (with a reason suitable
/// for an `ERR` reply) on malformed input; blank lines are invalid.
StatusOr<Command> ParseCommandLine(const std::string& line);

/// Formats an H-index estimate the way every reply does (shortest
/// round-trippable form via %.6g — estimates are small grid powers, so
/// this is deterministic and stable across runs).
std::string FormatEstimate(double estimate);

/// The tier names used in `get` replies: "cold", "hot", "frozen".
const char* TierName(int tier);

}  // namespace himpact

#endif  // HIMPACT_SERVICE_PROTOCOL_H_
