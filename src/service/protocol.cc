#include "service/protocol.h"

#include <cstdio>
#include <vector>

#include "common/flags.h"

namespace himpact {
namespace {

/// Splits on single spaces; empty tokens (doubled or leading/trailing
/// spaces) are preserved so the strict parser can reject them.
std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    if (space == std::string::npos) {
      tokens.push_back(line.substr(start));
      break;
    }
    tokens.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return tokens;
}

Status BadLine(const std::string& reason) {
  return Status::InvalidArgument(reason);
}

bool ParseTokenU64(const std::string& token, std::uint64_t* out) {
  return ParseUint64Text(token.c_str(), out);
}

/// Parses the `paper` author list: comma-separated ids, at least one,
/// at most kMaxAuthorsPerPaper, no duplicates.
Status ParseAuthors(const std::string& token, AuthorList* out) {
  std::size_t start = 0;
  while (start <= token.size()) {
    std::size_t comma = token.find(',', start);
    if (comma == std::string::npos) comma = token.size();
    const std::string id_text = token.substr(start, comma - start);
    std::uint64_t id = 0;
    if (!ParseTokenU64(id_text, &id)) {
      return BadLine("bad author id '" + id_text + "'");
    }
    if (out->size() >= kMaxAuthorsPerPaper) {
      return BadLine("too many authors (max " +
                     std::to_string(kMaxAuthorsPerPaper) + ")");
    }
    if (out->Contains(id)) {
      return BadLine("duplicate author id '" + id_text + "'");
    }
    out->PushBack(id);
    if (comma == token.size()) break;
    start = comma + 1;
  }
  if (out->empty()) return BadLine("empty author list");
  return Status::OK();
}

}  // namespace

StatusOr<Command> ParseCommandLine(const std::string& line) {
  // Embedded NULs are rejected up front: the numeric token parsers are
  // C-string based, so "add 5 6\0junk" would otherwise silently drop
  // everything after the NUL and parse as a valid command.
  if (line.find('\0') != std::string::npos) {
    return BadLine("embedded NUL byte");
  }
  const std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty() || tokens[0].empty()) {
    return BadLine("empty command");
  }
  const std::string& verb = tokens[0];
  Command command;

  if (verb == "add") {
    if (tokens.size() != 3) return BadLine("usage: add <user> <value>");
    command.kind = CommandKind::kAdd;
    if (!ParseTokenU64(tokens[1], &command.user)) {
      return BadLine("bad user id '" + tokens[1] + "'");
    }
    if (!ParseTokenU64(tokens[2], &command.value)) {
      return BadLine("bad value '" + tokens[2] + "'");
    }
    return command;
  }
  if (verb == "paper") {
    if (tokens.size() != 4) {
      return BadLine("usage: paper <id> <citations> <author>[,<author>...]");
    }
    command.kind = CommandKind::kPaper;
    if (!ParseTokenU64(tokens[1], &command.paper.paper)) {
      return BadLine("bad paper id '" + tokens[1] + "'");
    }
    if (!ParseTokenU64(tokens[2], &command.paper.citations)) {
      return BadLine("bad citation count '" + tokens[2] + "'");
    }
    Status authors = ParseAuthors(tokens[3], &command.paper.authors);
    if (!authors.ok()) return authors;
    return command;
  }
  if (verb == "get") {
    if (tokens.size() != 2) return BadLine("usage: get <user>");
    command.kind = CommandKind::kGet;
    if (!ParseTokenU64(tokens[1], &command.user)) {
      return BadLine("bad user id '" + tokens[1] + "'");
    }
    return command;
  }
  if (verb == "top") {
    if (tokens.size() != 2) return BadLine("usage: top <k>");
    command.kind = CommandKind::kTop;
    if (!ParseTokenU64(tokens[1], &command.value) || command.value == 0) {
      return BadLine("bad k '" + tokens[1] + "'");
    }
    return command;
  }
  if (verb == "heavy") {
    if (tokens.size() != 1) return BadLine("usage: heavy");
    command.kind = CommandKind::kHeavy;
    return command;
  }
  if (verb == "stats") {
    if (tokens.size() != 1) return BadLine("usage: stats");
    command.kind = CommandKind::kStats;
    return command;
  }
  if (verb == "health") {
    if (tokens.size() != 1) return BadLine("usage: health");
    command.kind = CommandKind::kHealth;
    return command;
  }
  if (verb == "save") {
    if (tokens.size() < 2 || tokens.size() > 3 || tokens[1].empty()) {
      return BadLine("usage: save <path> [full|incr]");
    }
    command.kind = CommandKind::kSave;
    command.path = tokens[1];
    if (tokens.size() == 3) {
      if (tokens[2] == "full") {
        command.save_mode = SaveMode::kFull;
      } else if (tokens[2] == "incr") {
        command.save_mode = SaveMode::kIncremental;
      } else {
        return BadLine("bad save mode '" + tokens[2] + "' (full|incr)");
      }
    }
    return command;
  }
  if (verb == "quit") {
    if (tokens.size() != 1) return BadLine("usage: quit");
    command.kind = CommandKind::kQuit;
    return command;
  }
  return BadLine("unknown command '" + verb + "'");
}

std::string FormatEstimate(double estimate) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", estimate);
  return buffer;
}

const char* TierName(int tier) {
  switch (tier) {
    case kTierNone:
      return "none";
    case 0:
      return "cold";
    case 1:
      return "hot";
    case 2:
      return "frozen";
    case 3:
      return "segment";
    default:
      return "unknown";
  }
}

std::string FormatTextReply(const CommandResult& result) {
  if (result.code != StatusCode::kOk) {
    // The wire spelling of a shed/deadline status; anything else
    // degrades to ERR (docs/ROBUSTNESS.md).
    const char* code = "ERR";
    switch (result.code) {
      case StatusCode::kResourceExhausted:
        code = "RESOURCE_EXHAUSTED";
        break;
      case StatusCode::kDeadlineExceeded:
        code = "DEADLINE_EXCEEDED";
        break;
      default:
        break;
    }
    return std::string(code) + " " + result.message + "\n";
  }
  const auto u64 = [](std::uint64_t value) {
    return std::to_string(static_cast<unsigned long long>(value));
  };
  switch (result.kind) {
    case CommandKind::kAdd:
      return "OK " + FormatEstimate(result.estimate) + "\n";
    case CommandKind::kPaper:
      return "OK " + std::to_string(result.num_authors) + "\n";
    case CommandKind::kGet:
      return "H " + u64(result.user) + " " + FormatEstimate(result.estimate) +
             " " + TierName(result.tier) + " " + u64(result.events) + "\n";
    case CommandKind::kTop: {
      std::string reply = result.stripes_skipped > 0
                              ? "TOP-LB " + u64(result.stripes_skipped)
                              : "TOP";
      for (const auto& [user, estimate] : result.entries) {
        reply += " " + u64(user) + ":" + FormatEstimate(estimate);
      }
      return reply + "\n";
    }
    case CommandKind::kHeavy: {
      std::string reply = "HEAVY";
      for (const auto& [user, estimate] : result.entries) {
        reply += " " + u64(user) + ":" + FormatEstimate(estimate);
      }
      return reply + "\n";
    }
    case CommandKind::kStats:
      return "STATS " + result.text + "\n";
    case CommandKind::kHealth:
      return "HEALTH " + result.text + "\n";
    case CommandKind::kSave:
      return "OK saved " + result.text + "\n";
    case CommandKind::kQuit:
      return "BYE\n";
    case CommandKind::kInvalid:
      break;  // an OK result never carries kInvalid
  }
  return "ERR unreachable\n";
}

}  // namespace himpact
