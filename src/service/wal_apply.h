#ifndef HIMPACT_SERVICE_WAL_APPLY_H_
#define HIMPACT_SERVICE_WAL_APPLY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/wal.h"
#include "service/service.h"
#include "stream/types.h"

/// \file
/// The service-level WAL record encoding and replay gate.
///
/// `io/wal.h` moves opaque payloads; this layer defines what is inside
/// them — one applied ingest event per record, fixed-width LE fields
/// in the `net/wire.h` style:
///
///   add    0x01 | user u64 | value u64 | stripe_seq u64
///   paper  0x02 | paper u64 | citations u64 | nauthors u8 |
///            nauthors x (author u64 | stripe_seq u64)
///
/// `stripe_seq` is the author's stripe's event count *after* this event
/// applied — the per-stripe analogue of an ARIES page LSN. Replay
/// re-applies a logged event on a stripe iff `stripe_seq >
/// TieredUserRegistry::StripeEvents(stripe)`. A single global sequence
/// could not decide correctly: checkpoints snapshot stripes one at a
/// time under concurrent applies (per-stripe consistent, not a global
/// cut), so the same record can be already-covered on one author's
/// stripe and missing from another's. The per-stripe gate applies
/// exactly the missing halves (`HImpactService::ReplayPaper`); in
/// single-threaded operation every gate of a record agrees and replay
/// reduces to "apply everything after the checkpoint", byte-identical
/// to the uncrashed run.
///
/// Replay goes through the service's public apply surface
/// (`RecordResponseCount` / `ReplayPaper`), not the admission-gated
/// `Try*` boundary: a logged record was admitted when it was applied
/// the first time, and shedding it on replay would un-apply durable
/// history. Malformed payloads (version skew, bit flips that survived
/// the envelope CRC by luck) are counted and skipped, never fatal.
/// See docs/CHECKPOINTS.md for the recovery matrix.

namespace himpact {

/// Record type bytes (on-disk format: append only, never renumber).
inline constexpr std::uint8_t kWalEventAdd = 0x01;
inline constexpr std::uint8_t kWalEventPaper = 0x02;

/// Encodes one applied `RecordResponseCount` with the post-apply event
/// count of the user's stripe.
std::vector<std::uint8_t> EncodeWalAdd(AuthorId user, std::uint64_t value,
                                       std::uint64_t stripe_seq);

/// Encodes one applied `IngestPaper`; `stripe_seqs[i]` is author i's
/// stripe's post-apply event count (co-authors sharing a stripe get
/// consecutive values, in author order). Requires `stripe_seqs.size()
/// == paper.authors.size()`.
std::vector<std::uint8_t> EncodeWalPaper(
    const PaperTuple& paper, const std::vector<std::uint64_t>& stripe_seqs);

/// Computes the post-apply stripe sequences for `paper` and appends the
/// encoded record to `wal`. Must run on the (single) ingest thread
/// after the event applied and before the next event applies, so the
/// registry's stripe counts still equal the post-apply state of this
/// event. The add flavor likewise.
Status AppendWalAdd(WalWriter* wal, const HImpactService& service,
                    AuthorId user, std::uint64_t value);
Status AppendWalPaper(WalWriter* wal, const HImpactService& service,
                      const PaperTuple& paper);

/// What replay did with the repaired log.
struct WalApplyStats {
  std::uint64_t applied_adds = 0;
  std::uint64_t applied_papers = 0;    ///< papers applied on every stripe
  std::uint64_t partial_papers = 0;    ///< papers applied on a strict subset
  std::uint64_t skipped_records = 0;   ///< fully covered by the checkpoint
  std::uint64_t malformed_records = 0; ///< undecodable payloads, skipped
};

/// Repairs and reads the WAL at `dir` (`ReadWalRecords`), then replays
/// every record through `service` under the per-stripe gate. Call after
/// `RestoreFrom` (or on a fresh service when no checkpoint opened) and
/// before serving. `read_stats` / `apply_stats` may be null.
Status ReplayWal(const std::string& dir, HImpactService* service,
                 WalReplayStats* read_stats, WalApplyStats* apply_stats);

}  // namespace himpact

#endif  // HIMPACT_SERVICE_WAL_APPLY_H_
