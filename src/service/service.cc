#include "service/service.h"

#include <cstdio>
#include <unordered_map>
#include <utility>

#include "common/bytes.h"
#include "common/check.h"
#include "fault/backoff.h"
#include "io/checkpoint.h"
#include "storage/codec.h"
#include "storage/delta_chain.h"

namespace himpact {
namespace {

constexpr std::uint64_t kServiceManifestMagic =
    0x48494d5053564d31ULL;  // HIMPSVM1

HeavyHitters::Options HhOptions(const ServiceOptions& options) {
  HeavyHitters::Options hh;
  hh.eps = options.hh_eps;
  hh.delta = options.hh_delta;
  hh.max_papers = options.hh_max_papers;
  return hh;
}

}  // namespace

StatusOr<HImpactService> HImpactService::Create(
    const ServiceOptions& options, const OverloadOptions& overload) {
  StatusOr<TieredUserRegistry> registry = TieredUserRegistry::Create(options);
  if (!registry.ok()) return registry.status();
  if (options.enable_heavy_hitters) {
    // Validate the heavy-hitters parameters before building per-stripe
    // grids (Create is the only entry point that reports bad options).
    StatusOr<HeavyHitters> probe =
        HeavyHitters::Create(HhOptions(options), options.seed);
    if (!probe.ok()) return probe.status();
  }
  return HImpactService(std::move(registry).value(), overload);
}

HImpactService::HImpactService(TieredUserRegistry registry,
                               const OverloadOptions& overload)
    : registry_(std::move(registry)),
      hh_stripes_(MakeHhStripes()),
      hh_report_cache_(std::make_unique<HhReportCache>()),
      admission_(std::make_unique<AdmissionController>(overload)),
      ingest_latency_(std::make_unique<LatencyRecorder>()),
      point_latency_(std::make_unique<LatencyRecorder>()),
      topk_latency_(std::make_unique<LatencyRecorder>()),
      chain_(std::make_unique<ChainState>()) {}

std::vector<std::unique_ptr<HImpactService::HhStripe>>
HImpactService::MakeHhStripes() const {
  std::vector<std::unique_ptr<HhStripe>> stripes;
  stripes.reserve(registry_.num_stripes());
  for (std::size_t i = 0; i < registry_.num_stripes(); ++i) {
    auto stripe = std::make_unique<HhStripe>();
    if (options().enable_heavy_hitters) {
      // Every stripe shares options *and seed*, the HeavyHitters::Merge
      // precondition, so HeavyReport can merge the shards on query.
      stripe->hh = std::move(HeavyHitters::Create(HhOptions(options()),
                                                  options().seed))
                       .value();
    }
    stripes.push_back(std::move(stripe));
  }
  return stripes;
}

double HImpactService::RecordResponseCount(AuthorId user,
                                           std::uint64_t value) {
  ScopedLatency timer(*ingest_latency_);
  const double estimate = registry_.Add(user, value);
  if (options().enable_heavy_hitters) {
    HhStripe& stripe = *hh_stripes_[registry_.StripeOf(user)];
    std::lock_guard<std::mutex> lock(stripe.mu);
    PaperTuple tuple;
    tuple.paper = stripe.next_paper * registry_.num_stripes() +
                  registry_.StripeOf(user);
    ++stripe.next_paper;
    tuple.authors.PushBack(user);
    tuple.citations = value;
    stripe.hh->AddPaper(tuple);
    stripe.version.fetch_add(1, std::memory_order_release);
  }
  return estimate;
}

void HImpactService::IngestPaper(const PaperTuple& paper) {
  ScopedLatency timer(*ingest_latency_);
  if (paper.authors.empty()) return;
  for (const AuthorId author : paper.authors) {
    registry_.Add(author, paper.citations);
  }
  if (options().enable_heavy_hitters) {
    // The tuple is fed once (not per author): AddPaper hashes every
    // author internally. Partition by first author for determinism.
    HhStripe& stripe = *hh_stripes_[registry_.StripeOf(paper.authors[0])];
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.hh->AddPaper(paper);
    stripe.version.fetch_add(1, std::memory_order_release);
  }
}

void HImpactService::ReplayPaper(const PaperTuple& paper,
                                 const std::vector<bool>& apply_mask,
                                 bool feed_hh) {
  if (paper.authors.empty()) return;
  for (int a = 0; a < paper.authors.size(); ++a) {
    const auto m = static_cast<std::size_t>(a);
    if (m < apply_mask.size() && apply_mask[m]) {
      registry_.Add(paper.authors[a], paper.citations);
    }
  }
  if (feed_hh && options().enable_heavy_hitters) {
    HhStripe& stripe = *hh_stripes_[registry_.StripeOf(paper.authors[0])];
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.hh->AddPaper(paper);
    stripe.version.fetch_add(1, std::memory_order_release);
  }
}

double HImpactService::PointHIndex(AuthorId user) const {
  ScopedLatency timer(*point_latency_);
  return registry_.PointHIndex(user);
}

bool HImpactService::Lookup(AuthorId user, UserSnapshot* out) const {
  ScopedLatency timer(*point_latency_);
  return registry_.Lookup(user, out);
}

std::vector<LeaderboardEntry> HImpactService::TopK(std::size_t k) const {
  ScopedLatency timer(*topk_latency_);
  return registry_.TopK(k);
}

std::vector<HeavyHitterReport> HImpactService::HeavyReport() const {
  if (!options().enable_heavy_hitters) return {};
  HhReportCache& cache = *hh_report_cache_;
  std::lock_guard<std::mutex> cache_lock(cache.mu);

  // Capture every stripe's ingest epoch BEFORE merging any grid: a
  // paper that lands mid-merge bumps its epoch past the captured tag,
  // so the next query re-merges (the cache can be tagged conservatively
  // stale, never stale-served-as-fresh).
  std::vector<std::uint64_t> versions;
  versions.reserve(hh_stripes_.size());
  for (const auto& stripe : hh_stripes_) {
    versions.push_back(stripe->version.load(std::memory_order_acquire));
  }

  if (cache.valid && cache.versions == versions) {
    ++cache.hits;
    return cache.reports;
  }

  std::optional<HeavyHitters> merged;
  for (const auto& stripe : hh_stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    if (!merged.has_value()) {
      merged = *stripe->hh;
    } else {
      merged->Merge(*stripe->hh);
    }
  }
  cache.reports = merged->Report();
  cache.versions = std::move(versions);
  cache.valid = true;
  ++cache.misses;
  return cache.reports;
}

ServiceStats HImpactService::Stats() const {
  ServiceStats stats;
  stats.registry = registry_.Stats();
  if (options().enable_heavy_hitters) {
    for (const auto& stripe : hh_stripes_) {
      std::lock_guard<std::mutex> lock(stripe->mu);
      stats.hh_papers += stripe->hh->num_papers();
    }
  }
  {
    std::lock_guard<std::mutex> lock(hh_report_cache_->mu);
    stats.hh_report_cache_hits = hh_report_cache_->hits;
    stats.hh_report_cache_misses = hh_report_cache_->misses;
  }
  {
    std::lock_guard<std::mutex> lock(chain_->mu);
    stats.checkpoint = chain_->counters;
  }
  stats.admission = admission_->Counters();
  return stats;
}

StatusOr<double> HImpactService::TryRecordResponseCount(AuthorId user,
                                                        std::uint64_t value) {
  AdmissionTicket ticket(admission_.get());
  if (!ticket.ok()) {
    return Status::ResourceExhausted("ingest shed: in-flight watermark hit");
  }
  const double estimate = RecordResponseCount(user, value);
  if (AdmissionController::DeadlinePassed(ticket.deadline_nanos())) {
    admission_->CountDeadlineExceeded();
    return Status::DeadlineExceeded("ingest applied but missed its deadline");
  }
  return estimate;
}

Status HImpactService::TryIngestPaper(const PaperTuple& paper) {
  AdmissionTicket ticket(admission_.get());
  if (!ticket.ok()) {
    return Status::ResourceExhausted("ingest shed: in-flight watermark hit");
  }
  IngestPaper(paper);
  if (AdmissionController::DeadlinePassed(ticket.deadline_nanos())) {
    admission_->CountDeadlineExceeded();
    return Status::DeadlineExceeded("ingest applied but missed its deadline");
  }
  return Status::OK();
}

StatusOr<double> HImpactService::TryPointHIndex(AuthorId user) {
  AdmissionTicket ticket(admission_.get());
  if (!ticket.ok()) {
    return Status::ResourceExhausted("query shed: in-flight watermark hit");
  }
  const double estimate = PointHIndex(user);
  if (AdmissionController::DeadlinePassed(ticket.deadline_nanos())) {
    admission_->CountDeadlineExceeded();
    return Status::DeadlineExceeded("point query missed its deadline");
  }
  return estimate;
}

StatusOr<TopKResult> HImpactService::TryTopK(std::size_t k) {
  AdmissionTicket ticket(admission_.get());
  if (!ticket.ok()) {
    return Status::ResourceExhausted("query shed: in-flight watermark hit");
  }
  ScopedLatency timer(*topk_latency_);
  TopKResult result;
  result.entries =
      registry_.TopKDegraded(k, ticket.deadline_nanos(),
                             &result.stripes_skipped);
  if (result.stripes_skipped > 0) admission_->CountDeadlineExceeded();
  return result;
}

std::string HImpactService::StripePath(const std::string& path,
                                       std::size_t i) {
  return path + ".stripe-" + std::to_string(i);
}

Status HImpactService::CheckpointTo(const std::string& path) const {
  return CheckpointTo(path, SaveMode::kFull);
}

Status HImpactService::CheckpointTo(const std::string& path,
                                    SaveMode mode) const {
  // One checkpoint or restore at a time: the background chain-collapse
  // job and the session thread must never interleave their head /
  // stripe / delta writes (see ChainState::op_mu).
  std::lock_guard<std::mutex> op_lock(chain_->op_mu);
  if (mode == SaveMode::kIncremental) return CheckpointIncremental(path);
  return CheckpointFull(path);
}

HImpactService::StripeSnapshot HImpactService::SnapshotStripe(
    std::size_t i) const {
  StripeSnapshot snap;
  // Epochs are captured BEFORE the stripe is serialized: a mutation that
  // races the serialization moves the live epoch past the captured one,
  // so the next incremental save re-serializes the stripe — the capture
  // can only be conservative, never miss a change.
  snap.reg_epoch = registry_.DirtyEpoch(i);
  snap.hh_epoch = hh_stripes_[i]->version.load(std::memory_order_acquire);
  ByteWriter writer;
  registry_.SerializeStripe(i, writer);
  writer.U8(options().enable_heavy_hitters ? 1 : 0);
  if (options().enable_heavy_hitters) {
    const HhStripe& stripe = *hh_stripes_[i];
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.hh->SerializeTo(writer);
    writer.U64(stripe.next_paper);
  }
  snap.payload = writer.Take();
  snap.hash = Fnv1a64(snap.payload);
  return snap;
}

Status HImpactService::CheckpointFull(const std::string& path) const {
  const std::size_t n = registry_.num_stripes();
  // Head first: pinning generation 0 cuts any existing delta chain over
  // before the full files are rewritten, so a crash mid-save restores
  // legacy-style from whatever mix of old/new stripe files survives
  // (per-stripe consistent, same as a crash always was) instead of
  // chasing deltas whose hashes no longer match.
  Status head = RetryWithBackoff(admission_->options().checkpoint_retry, [&] {
    return WriteHead(HeadPath(path), 0);
  });
  if (!head.ok()) return head;

  // Stripes next, manifest last: an openable manifest implies every
  // stripe it references was durably written (same discipline as the
  // sharded engine's checkpoint).
  std::vector<std::uint64_t> reg_epochs(n), hh_epochs(n), hashes(n);
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    StripeSnapshot snap = SnapshotStripe(i);
    Status written =
        RetryWithBackoff(admission_->options().checkpoint_retry, [&] {
          return WriteCheckpointFile(StripePath(path, i),
                                     CheckpointTag::kServiceStripe,
                                     snap.payload);
        });
    if (!written.ok()) return written;
    reg_epochs[i] = snap.reg_epoch;
    hh_epochs[i] = snap.hh_epoch;
    hashes[i] = snap.hash;
    bytes += snap.payload.size();
  }

  ByteWriter manifest;
  manifest.U64(kServiceManifestMagic);
  const ServiceOptions& opts = options();
  manifest.F64(opts.eps);
  manifest.U64(opts.max_h);
  manifest.U64(static_cast<std::uint64_t>(opts.num_stripes));
  manifest.U64(opts.promote_threshold);
  manifest.U64(opts.memory_budget_bytes);
  manifest.U64(static_cast<std::uint64_t>(opts.leaderboard_capacity));
  manifest.U8(opts.enable_heavy_hitters ? 1 : 0);
  manifest.F64(opts.hh_eps);
  manifest.F64(opts.hh_delta);
  manifest.U64(opts.hh_max_papers);
  manifest.U64(opts.seed);
  manifest.U64(registry_.Stats().total_events);
  Status written =
      RetryWithBackoff(admission_->options().checkpoint_retry, [&] {
        return WriteCheckpointFile(path, CheckpointTag::kServiceManifest,
                                   manifest.buffer());
      });
  if (!written.ok()) return written;

  std::lock_guard<std::mutex> lock(chain_->mu);
  chain_->valid = true;
  chain_->path = path;
  chain_->generation = 0;
  chain_->reg_epochs = std::move(reg_epochs);
  chain_->hh_epochs = std::move(hh_epochs);
  chain_->hashes = std::move(hashes);
  chain_->loc_gens.assign(n, 0);
  ++chain_->counters.full_saves;
  chain_->counters.stripes_written += n;
  chain_->counters.bytes_full += bytes;
  chain_->counters.chain_generation = 0;
  return Status::OK();
}

Status HImpactService::CheckpointIncremental(const std::string& path) const {
  std::unique_lock<std::mutex> lock(chain_->mu);
  if (!chain_->valid || chain_->path != path) {
    // No chain to extend (first save to this path, or a different
    // path): a full save roots one. Counted, never an error.
    ++chain_->counters.incremental_fallbacks;
    lock.unlock();
    return CheckpointFull(path);
  }
  if (options().max_chain_len > 0 &&
      chain_->generation + 1 > options().max_chain_len) {
    // The chain is at its cap: one more delta would push a restore
    // walk past --max-chain-len generations. Escalate to a full save
    // so restore cost stays bounded even when the background collapse
    // job is disabled or behind.
    ++chain_->counters.chain_escalations;
    lock.unlock();
    return CheckpointFull(path);
  }

  const std::size_t n = registry_.num_stripes();
  const std::uint64_t generation = chain_->generation + 1;
  DeltaManifest manifest;
  manifest.generation = generation;
  manifest.parent = chain_->generation;
  manifest.total_events = registry_.Stats().total_events;
  manifest.stripes.resize(n);

  // Stage the post-save chain state; commit only after both writes land
  // (a failed or torn delta leaves the previous chain authoritative).
  std::vector<std::uint64_t> reg_epochs = chain_->reg_epochs;
  std::vector<std::uint64_t> hh_epochs = chain_->hh_epochs;
  std::vector<std::uint64_t> hashes = chain_->hashes;
  std::vector<std::uint64_t> loc_gens = chain_->loc_gens;
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> records;
  std::uint64_t written = 0;
  std::uint64_t skipped_clean = 0;
  std::uint64_t skipped_dedup = 0;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (registry_.DirtyEpoch(i) == chain_->reg_epochs[i] &&
        hh_stripes_[i]->version.load(std::memory_order_acquire) ==
            chain_->hh_epochs[i]) {
      // Clean since the last save: the manifest re-points at wherever
      // the stripe already lives.
      manifest.stripes[i] = {chain_->loc_gens[i], chain_->hashes[i]};
      ++skipped_clean;
      continue;
    }
    StripeSnapshot snap = SnapshotStripe(i);
    reg_epochs[i] = snap.reg_epoch;
    hh_epochs[i] = snap.hh_epoch;
    if (snap.hash == chain_->hashes[i]) {
      // The epoch moved but the payload converged back to what the
      // chain already holds (hash dedup across generations): keep the
      // old location, advance the stored epoch so the stripe reads
      // clean next time.
      manifest.stripes[i] = {chain_->loc_gens[i], chain_->hashes[i]};
      ++skipped_dedup;
      continue;
    }
    manifest.stripes[i] = {generation, snap.hash};
    hashes[i] = snap.hash;
    loc_gens[i] = generation;
    bytes += snap.payload.size();
    records.emplace_back(
        i, SealEnvelope(CheckpointTag::kServiceStripe, snap.payload));
    ++written;
  }

  Status delta = RetryWithBackoff(admission_->options().checkpoint_retry, [&] {
    return WriteDeltaSegment(DeltaPath(path, generation), manifest, records);
  });
  if (!delta.ok()) return delta;
  Status head = RetryWithBackoff(admission_->options().checkpoint_retry, [&] {
    return WriteHead(HeadPath(path), generation);
  });
  if (!head.ok()) return head;

  chain_->generation = generation;
  chain_->reg_epochs = std::move(reg_epochs);
  chain_->hh_epochs = std::move(hh_epochs);
  chain_->hashes = std::move(hashes);
  chain_->loc_gens = std::move(loc_gens);
  ++chain_->counters.incremental_saves;
  chain_->counters.stripes_written += written;
  chain_->counters.stripes_skipped_clean += skipped_clean;
  chain_->counters.stripes_skipped_dedup += skipped_dedup;
  chain_->counters.bytes_incremental += bytes;
  chain_->counters.chain_generation = generation;
  return Status::OK();
}

StatusOr<ServiceManifest> HImpactService::ReadManifest(
    const std::string& path) {
  StatusOr<std::vector<std::uint8_t>> payload =
      ReadCheckpointFile(path, CheckpointTag::kServiceManifest);
  if (!payload.ok()) return payload.status();
  ByteReader reader(payload.value());

  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kServiceManifestMagic) {
    return Status::InvalidArgument("not a service manifest");
  }
  ServiceManifest manifest;
  ServiceOptions& opts = manifest.options;
  std::uint64_t num_stripes = 0;
  std::uint64_t leaderboard_capacity = 0;
  std::uint8_t hh_enabled = 0;
  if (!reader.F64(&opts.eps) || !reader.U64(&opts.max_h) ||
      !reader.U64(&num_stripes) || !reader.U64(&opts.promote_threshold) ||
      !reader.U64(&opts.memory_budget_bytes) ||
      !reader.U64(&leaderboard_capacity) || !reader.U8(&hh_enabled) ||
      !reader.F64(&opts.hh_eps) || !reader.F64(&opts.hh_delta) ||
      !reader.U64(&opts.hh_max_papers) || !reader.U64(&opts.seed) ||
      !reader.U64(&manifest.total_events)) {
    return Status::InvalidArgument("truncated service manifest");
  }
  if (hh_enabled > 1) {
    return Status::InvalidArgument("bad heavy-hitters flag in manifest");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("service manifest has trailing bytes");
  }
  opts.num_stripes = static_cast<std::size_t>(num_stripes);
  opts.leaderboard_capacity = static_cast<std::size_t>(leaderboard_capacity);
  opts.enable_heavy_hitters = hh_enabled == 1;
  return manifest;
}

Status HImpactService::DecodeStripePayload(
    std::size_t i, const std::vector<std::uint8_t>& payload,
    TieredUserRegistry& registry,
    std::vector<std::unique_ptr<HhStripe>>& hh) const {
  ByteReader reader(payload);
  Status stripe_status = registry.DeserializeStripe(i, reader);
  if (!stripe_status.ok()) return stripe_status;
  std::uint8_t hh_flag = 0;
  if (!reader.U8(&hh_flag)) {
    return Status::InvalidArgument("truncated stripe heavy-hitters flag");
  }
  if ((hh_flag == 1) != options().enable_heavy_hitters) {
    return Status::InvalidArgument(
        "stripe heavy-hitters flag disagrees with the manifest");
  }
  if (hh_flag == 1) {
    StatusOr<HeavyHitters> grid = HeavyHitters::DeserializeFrom(reader);
    if (!grid.ok()) return grid.status();
    if (!reader.U64(&hh[i]->next_paper)) {
      return Status::InvalidArgument("truncated stripe paper counter");
    }
    hh[i]->hh = std::move(grid).value();
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("stripe payload has trailing bytes");
  }
  return Status::OK();
}

Status HImpactService::LoadChainPayloads(
    const std::string& path, std::uint64_t g,
    std::vector<std::vector<std::uint8_t>>* payloads,
    std::vector<std::uint64_t>* loc_gens,
    std::vector<std::uint64_t>* hashes) const {
  const std::size_t n = registry_.num_stripes();
  StatusOr<SegmentReader> newest = OpenDeltaSegment(DeltaPath(path, g));
  if (!newest.ok()) return newest.status();
  StatusOr<DeltaManifest> manifest = ReadDeltaManifest(newest.value());
  if (!manifest.ok()) return manifest.status();
  if (manifest.value().generation != g ||
      manifest.value().stripes.size() != n) {
    return Status::InvalidArgument(
        "delta manifest does not cover this generation / stripe layout");
  }
  std::unordered_map<std::uint64_t, SegmentReader> readers;
  readers.emplace(g, std::move(newest).value());
  for (std::size_t i = 0; i < n; ++i) {
    const DeltaStripeLoc& loc = manifest.value().stripes[i];
    std::vector<std::uint8_t> payload;
    if (loc.generation == 0) {
      StatusOr<std::vector<std::uint8_t>> full = ReadCheckpointFile(
          StripePath(path, i), CheckpointTag::kServiceStripe);
      if (!full.ok()) return full.status();
      payload = std::move(full).value();
    } else {
      if (loc.generation > g) {
        return Status::InvalidArgument(
            "delta manifest points past its own generation");
      }
      auto it = readers.find(loc.generation);
      if (it == readers.end()) {
        StatusOr<SegmentReader> reader =
            OpenDeltaSegment(DeltaPath(path, loc.generation));
        if (!reader.ok()) return reader.status();
        it = readers.emplace(loc.generation, std::move(reader).value()).first;
      }
      StatusOr<std::vector<std::uint8_t>> sealed =
          ReadDeltaStripeEnvelope(it->second, i);
      if (!sealed.ok()) return sealed.status();
      StatusOr<std::vector<std::uint8_t>> opened =
          OpenEnvelope(sealed.value(), CheckpointTag::kServiceStripe);
      if (!opened.ok()) return opened.status();
      payload = std::move(opened).value();
    }
    if (Fnv1a64(payload) != loc.payload_hash) {
      return Status::InvalidArgument(
          "stripe payload hash disagrees with the delta manifest");
    }
    (*loc_gens)[i] = loc.generation;
    (*hashes)[i] = loc.payload_hash;
    payloads->push_back(std::move(payload));
  }
  return Status::OK();
}

Status HImpactService::RestoreFrom(const std::string& path) {
  std::lock_guard<std::mutex> op_lock(chain_->op_mu);
  StatusOr<ServiceManifest> manifest = ReadManifest(path);
  if (!manifest.ok()) return manifest.status();
  const ServiceOptions& recorded = manifest.value().options;
  const ServiceOptions& mine = options();
  if (recorded.eps != mine.eps || recorded.max_h != mine.max_h ||
      recorded.num_stripes != mine.num_stripes ||
      recorded.promote_threshold != mine.promote_threshold ||
      recorded.memory_budget_bytes != mine.memory_budget_bytes ||
      recorded.leaderboard_capacity != mine.leaderboard_capacity ||
      recorded.enable_heavy_hitters != mine.enable_heavy_hitters ||
      recorded.hh_eps != mine.hh_eps || recorded.hh_delta != mine.hh_delta ||
      recorded.hh_max_papers != mine.hh_max_papers ||
      recorded.seed != mine.seed) {
    return Status::FailedPrecondition(
        "service checkpoint was recorded with different options");
  }

  // Decode every stripe into fresh state; commit only if all succeed.
  StatusOr<TieredUserRegistry> fresh_registry =
      TieredUserRegistry::Create(mine);
  if (!fresh_registry.ok()) return fresh_registry.status();
  std::vector<std::unique_ptr<HhStripe>> fresh_hh = MakeHhStripes();

  // Pick the payload set: the newest restorable delta generation if a
  // head pins a chain, else (or after exhausting damaged deltas) the
  // plain full files — the `RestoreOrFallback` discipline, per
  // generation.
  const std::size_t n = mine.num_stripes;
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::uint64_t> loc_gens(n, 0);
  std::vector<std::uint64_t> hashes(n, 0);
  std::uint64_t generation = 0;
  std::uint64_t chain_fallbacks = 0;
  StatusOr<std::uint64_t> head = ReadHead(HeadPath(path));
  if (head.ok()) {
    for (std::uint64_t g = head.value(); g > 0; --g) {
      payloads.clear();
      loc_gens.assign(n, 0);
      hashes.assign(n, 0);
      Status loaded = LoadChainPayloads(path, g, &payloads, &loc_gens,
                                        &hashes);
      if (loaded.ok()) {
        generation = g;
        break;
      }
      ++chain_fallbacks;
    }
  }
  if (generation == 0) {
    // Legacy (headless) checkpoint, head at 0, or every delta damaged:
    // the full files are the payload set.
    payloads.clear();
    loc_gens.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      StatusOr<std::vector<std::uint8_t>> payload = ReadCheckpointFile(
          StripePath(path, i), CheckpointTag::kServiceStripe);
      if (!payload.ok()) return payload.status();
      hashes[i] = Fnv1a64(payload.value());
      payloads.push_back(std::move(payload).value());
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    Status decoded =
        DecodeStripePayload(i, payloads[i], fresh_registry.value(), fresh_hh);
    if (!decoded.ok()) return decoded;
  }

  registry_ = std::move(fresh_registry).value();
  hh_stripes_ = std::move(fresh_hh);
  // The fresh stripes restart their ingest epochs at 0. A cache tagged
  // with the pre-restore epochs could coincidentally match (e.g. an
  // all-zeros tag captured before any ingest), so invalidate
  // explicitly — the hh-stripe epochs themselves give no restore
  // signal, unlike the registry's (bumped by DeserializeStripe).
  {
    std::lock_guard<std::mutex> lock(hh_report_cache_->mu);
    hh_report_cache_->valid = false;
    hh_report_cache_->versions.clear();
    hh_report_cache_->reports.clear();
  }
  // The in-RAM state now equals the restored generation's on-disk
  // payloads, so root the chain here: a subsequent incremental save to
  // the same path extends it instead of rewriting everything.
  {
    std::lock_guard<std::mutex> lock(chain_->mu);
    chain_->valid = true;
    chain_->path = path;
    chain_->generation = generation;
    chain_->reg_epochs.resize(n);
    chain_->hh_epochs.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      chain_->reg_epochs[i] = registry_.DirtyEpoch(i);
      chain_->hh_epochs[i] =
          hh_stripes_[i]->version.load(std::memory_order_acquire);
    }
    chain_->hashes = std::move(hashes);
    chain_->loc_gens = std::move(loc_gens);
    chain_->counters.restore_chain_fallbacks += chain_fallbacks;
    chain_->counters.chain_generation = generation;
  }
  // Operators watch this line: a creeping generation means checkpoints
  // are incremental-only and restores are walking an ever-longer chain
  // (the collapse job or --max-chain-len escalation should be cutting
  // it back).
  std::fprintf(stderr,
               "hstream: restored %s at chain generation %llu"
               " (%llu damaged generation(s) skipped)\n",
               path.c_str(), static_cast<unsigned long long>(generation),
               static_cast<unsigned long long>(chain_fallbacks));
  return Status::OK();
}

}  // namespace himpact
