#include "service/service.h"

#include <utility>

#include "common/bytes.h"
#include "common/check.h"
#include "fault/backoff.h"
#include "io/checkpoint.h"

namespace himpact {
namespace {

constexpr std::uint64_t kServiceManifestMagic =
    0x48494d5053564d31ULL;  // HIMPSVM1

HeavyHitters::Options HhOptions(const ServiceOptions& options) {
  HeavyHitters::Options hh;
  hh.eps = options.hh_eps;
  hh.delta = options.hh_delta;
  hh.max_papers = options.hh_max_papers;
  return hh;
}

}  // namespace

StatusOr<HImpactService> HImpactService::Create(
    const ServiceOptions& options, const OverloadOptions& overload) {
  StatusOr<TieredUserRegistry> registry = TieredUserRegistry::Create(options);
  if (!registry.ok()) return registry.status();
  if (options.enable_heavy_hitters) {
    // Validate the heavy-hitters parameters before building per-stripe
    // grids (Create is the only entry point that reports bad options).
    StatusOr<HeavyHitters> probe =
        HeavyHitters::Create(HhOptions(options), options.seed);
    if (!probe.ok()) return probe.status();
  }
  return HImpactService(std::move(registry).value(), overload);
}

HImpactService::HImpactService(TieredUserRegistry registry,
                               const OverloadOptions& overload)
    : registry_(std::move(registry)),
      hh_stripes_(MakeHhStripes()),
      hh_report_cache_(std::make_unique<HhReportCache>()),
      admission_(std::make_unique<AdmissionController>(overload)),
      ingest_latency_(std::make_unique<LatencyRecorder>()),
      point_latency_(std::make_unique<LatencyRecorder>()),
      topk_latency_(std::make_unique<LatencyRecorder>()) {}

std::vector<std::unique_ptr<HImpactService::HhStripe>>
HImpactService::MakeHhStripes() const {
  std::vector<std::unique_ptr<HhStripe>> stripes;
  stripes.reserve(registry_.num_stripes());
  for (std::size_t i = 0; i < registry_.num_stripes(); ++i) {
    auto stripe = std::make_unique<HhStripe>();
    if (options().enable_heavy_hitters) {
      // Every stripe shares options *and seed*, the HeavyHitters::Merge
      // precondition, so HeavyReport can merge the shards on query.
      stripe->hh = std::move(HeavyHitters::Create(HhOptions(options()),
                                                  options().seed))
                       .value();
    }
    stripes.push_back(std::move(stripe));
  }
  return stripes;
}

double HImpactService::RecordResponseCount(AuthorId user,
                                           std::uint64_t value) {
  ScopedLatency timer(*ingest_latency_);
  const double estimate = registry_.Add(user, value);
  if (options().enable_heavy_hitters) {
    HhStripe& stripe = *hh_stripes_[registry_.StripeOf(user)];
    std::lock_guard<std::mutex> lock(stripe.mu);
    PaperTuple tuple;
    tuple.paper = stripe.next_paper * registry_.num_stripes() +
                  registry_.StripeOf(user);
    ++stripe.next_paper;
    tuple.authors.PushBack(user);
    tuple.citations = value;
    stripe.hh->AddPaper(tuple);
    stripe.version.fetch_add(1, std::memory_order_release);
  }
  return estimate;
}

void HImpactService::IngestPaper(const PaperTuple& paper) {
  ScopedLatency timer(*ingest_latency_);
  if (paper.authors.empty()) return;
  for (const AuthorId author : paper.authors) {
    registry_.Add(author, paper.citations);
  }
  if (options().enable_heavy_hitters) {
    // The tuple is fed once (not per author): AddPaper hashes every
    // author internally. Partition by first author for determinism.
    HhStripe& stripe = *hh_stripes_[registry_.StripeOf(paper.authors[0])];
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.hh->AddPaper(paper);
    stripe.version.fetch_add(1, std::memory_order_release);
  }
}

double HImpactService::PointHIndex(AuthorId user) const {
  ScopedLatency timer(*point_latency_);
  return registry_.PointHIndex(user);
}

bool HImpactService::Lookup(AuthorId user, UserSnapshot* out) const {
  ScopedLatency timer(*point_latency_);
  return registry_.Lookup(user, out);
}

std::vector<LeaderboardEntry> HImpactService::TopK(std::size_t k) const {
  ScopedLatency timer(*topk_latency_);
  return registry_.TopK(k);
}

std::vector<HeavyHitterReport> HImpactService::HeavyReport() const {
  if (!options().enable_heavy_hitters) return {};
  HhReportCache& cache = *hh_report_cache_;
  std::lock_guard<std::mutex> cache_lock(cache.mu);

  // Capture every stripe's ingest epoch BEFORE merging any grid: a
  // paper that lands mid-merge bumps its epoch past the captured tag,
  // so the next query re-merges (the cache can be tagged conservatively
  // stale, never stale-served-as-fresh).
  std::vector<std::uint64_t> versions;
  versions.reserve(hh_stripes_.size());
  for (const auto& stripe : hh_stripes_) {
    versions.push_back(stripe->version.load(std::memory_order_acquire));
  }

  if (cache.valid && cache.versions == versions) {
    ++cache.hits;
    return cache.reports;
  }

  std::optional<HeavyHitters> merged;
  for (const auto& stripe : hh_stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    if (!merged.has_value()) {
      merged = *stripe->hh;
    } else {
      merged->Merge(*stripe->hh);
    }
  }
  cache.reports = merged->Report();
  cache.versions = std::move(versions);
  cache.valid = true;
  ++cache.misses;
  return cache.reports;
}

ServiceStats HImpactService::Stats() const {
  ServiceStats stats;
  stats.registry = registry_.Stats();
  if (options().enable_heavy_hitters) {
    for (const auto& stripe : hh_stripes_) {
      std::lock_guard<std::mutex> lock(stripe->mu);
      stats.hh_papers += stripe->hh->num_papers();
    }
  }
  {
    std::lock_guard<std::mutex> lock(hh_report_cache_->mu);
    stats.hh_report_cache_hits = hh_report_cache_->hits;
    stats.hh_report_cache_misses = hh_report_cache_->misses;
  }
  stats.admission = admission_->Counters();
  return stats;
}

StatusOr<double> HImpactService::TryRecordResponseCount(AuthorId user,
                                                        std::uint64_t value) {
  AdmissionTicket ticket(admission_.get());
  if (!ticket.ok()) {
    return Status::ResourceExhausted("ingest shed: in-flight watermark hit");
  }
  const double estimate = RecordResponseCount(user, value);
  if (AdmissionController::DeadlinePassed(ticket.deadline_nanos())) {
    admission_->CountDeadlineExceeded();
    return Status::DeadlineExceeded("ingest applied but missed its deadline");
  }
  return estimate;
}

Status HImpactService::TryIngestPaper(const PaperTuple& paper) {
  AdmissionTicket ticket(admission_.get());
  if (!ticket.ok()) {
    return Status::ResourceExhausted("ingest shed: in-flight watermark hit");
  }
  IngestPaper(paper);
  if (AdmissionController::DeadlinePassed(ticket.deadline_nanos())) {
    admission_->CountDeadlineExceeded();
    return Status::DeadlineExceeded("ingest applied but missed its deadline");
  }
  return Status::OK();
}

StatusOr<double> HImpactService::TryPointHIndex(AuthorId user) {
  AdmissionTicket ticket(admission_.get());
  if (!ticket.ok()) {
    return Status::ResourceExhausted("query shed: in-flight watermark hit");
  }
  const double estimate = PointHIndex(user);
  if (AdmissionController::DeadlinePassed(ticket.deadline_nanos())) {
    admission_->CountDeadlineExceeded();
    return Status::DeadlineExceeded("point query missed its deadline");
  }
  return estimate;
}

StatusOr<TopKResult> HImpactService::TryTopK(std::size_t k) {
  AdmissionTicket ticket(admission_.get());
  if (!ticket.ok()) {
    return Status::ResourceExhausted("query shed: in-flight watermark hit");
  }
  ScopedLatency timer(*topk_latency_);
  TopKResult result;
  result.entries =
      registry_.TopKDegraded(k, ticket.deadline_nanos(),
                             &result.stripes_skipped);
  if (result.stripes_skipped > 0) admission_->CountDeadlineExceeded();
  return result;
}

std::string HImpactService::StripePath(const std::string& path,
                                       std::size_t i) {
  return path + ".stripe-" + std::to_string(i);
}

Status HImpactService::CheckpointTo(const std::string& path) const {
  // Stripes first, manifest last: an openable manifest implies every
  // stripe it references was durably written (same discipline as the
  // sharded engine's checkpoint).
  for (std::size_t i = 0; i < registry_.num_stripes(); ++i) {
    ByteWriter writer;
    registry_.SerializeStripe(i, writer);
    writer.U8(options().enable_heavy_hitters ? 1 : 0);
    if (options().enable_heavy_hitters) {
      const HhStripe& stripe = *hh_stripes_[i];
      std::lock_guard<std::mutex> lock(stripe.mu);
      stripe.hh->SerializeTo(writer);
      writer.U64(stripe.next_paper);
    }
    Status written =
        RetryWithBackoff(admission_->options().checkpoint_retry, [&] {
          return WriteCheckpointFile(StripePath(path, i),
                                     CheckpointTag::kServiceStripe,
                                     writer.buffer());
        });
    if (!written.ok()) return written;
  }

  ByteWriter manifest;
  manifest.U64(kServiceManifestMagic);
  const ServiceOptions& opts = options();
  manifest.F64(opts.eps);
  manifest.U64(opts.max_h);
  manifest.U64(static_cast<std::uint64_t>(opts.num_stripes));
  manifest.U64(opts.promote_threshold);
  manifest.U64(opts.memory_budget_bytes);
  manifest.U64(static_cast<std::uint64_t>(opts.leaderboard_capacity));
  manifest.U8(opts.enable_heavy_hitters ? 1 : 0);
  manifest.F64(opts.hh_eps);
  manifest.F64(opts.hh_delta);
  manifest.U64(opts.hh_max_papers);
  manifest.U64(opts.seed);
  manifest.U64(registry_.Stats().total_events);
  return RetryWithBackoff(admission_->options().checkpoint_retry, [&] {
    return WriteCheckpointFile(path, CheckpointTag::kServiceManifest,
                               manifest.buffer());
  });
}

StatusOr<ServiceManifest> HImpactService::ReadManifest(
    const std::string& path) {
  StatusOr<std::vector<std::uint8_t>> payload =
      ReadCheckpointFile(path, CheckpointTag::kServiceManifest);
  if (!payload.ok()) return payload.status();
  ByteReader reader(payload.value());

  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kServiceManifestMagic) {
    return Status::InvalidArgument("not a service manifest");
  }
  ServiceManifest manifest;
  ServiceOptions& opts = manifest.options;
  std::uint64_t num_stripes = 0;
  std::uint64_t leaderboard_capacity = 0;
  std::uint8_t hh_enabled = 0;
  if (!reader.F64(&opts.eps) || !reader.U64(&opts.max_h) ||
      !reader.U64(&num_stripes) || !reader.U64(&opts.promote_threshold) ||
      !reader.U64(&opts.memory_budget_bytes) ||
      !reader.U64(&leaderboard_capacity) || !reader.U8(&hh_enabled) ||
      !reader.F64(&opts.hh_eps) || !reader.F64(&opts.hh_delta) ||
      !reader.U64(&opts.hh_max_papers) || !reader.U64(&opts.seed) ||
      !reader.U64(&manifest.total_events)) {
    return Status::InvalidArgument("truncated service manifest");
  }
  if (hh_enabled > 1) {
    return Status::InvalidArgument("bad heavy-hitters flag in manifest");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("service manifest has trailing bytes");
  }
  opts.num_stripes = static_cast<std::size_t>(num_stripes);
  opts.leaderboard_capacity = static_cast<std::size_t>(leaderboard_capacity);
  opts.enable_heavy_hitters = hh_enabled == 1;
  return manifest;
}

Status HImpactService::RestoreFrom(const std::string& path) {
  StatusOr<ServiceManifest> manifest = ReadManifest(path);
  if (!manifest.ok()) return manifest.status();
  const ServiceOptions& recorded = manifest.value().options;
  const ServiceOptions& mine = options();
  if (recorded.eps != mine.eps || recorded.max_h != mine.max_h ||
      recorded.num_stripes != mine.num_stripes ||
      recorded.promote_threshold != mine.promote_threshold ||
      recorded.memory_budget_bytes != mine.memory_budget_bytes ||
      recorded.leaderboard_capacity != mine.leaderboard_capacity ||
      recorded.enable_heavy_hitters != mine.enable_heavy_hitters ||
      recorded.hh_eps != mine.hh_eps || recorded.hh_delta != mine.hh_delta ||
      recorded.hh_max_papers != mine.hh_max_papers ||
      recorded.seed != mine.seed) {
    return Status::FailedPrecondition(
        "service checkpoint was recorded with different options");
  }

  // Decode every stripe into fresh state; commit only if all succeed.
  StatusOr<TieredUserRegistry> fresh_registry =
      TieredUserRegistry::Create(mine);
  if (!fresh_registry.ok()) return fresh_registry.status();
  std::vector<std::unique_ptr<HhStripe>> fresh_hh = MakeHhStripes();

  for (std::size_t i = 0; i < mine.num_stripes; ++i) {
    StatusOr<std::vector<std::uint8_t>> payload = ReadCheckpointFile(
        StripePath(path, i), CheckpointTag::kServiceStripe);
    if (!payload.ok()) return payload.status();
    ByteReader reader(payload.value());
    Status stripe_status = fresh_registry.value().DeserializeStripe(i, reader);
    if (!stripe_status.ok()) return stripe_status;
    std::uint8_t hh_flag = 0;
    if (!reader.U8(&hh_flag)) {
      return Status::InvalidArgument("truncated stripe heavy-hitters flag");
    }
    if ((hh_flag == 1) != mine.enable_heavy_hitters) {
      return Status::InvalidArgument(
          "stripe heavy-hitters flag disagrees with the manifest");
    }
    if (hh_flag == 1) {
      StatusOr<HeavyHitters> hh = HeavyHitters::DeserializeFrom(reader);
      if (!hh.ok()) return hh.status();
      if (!reader.U64(&fresh_hh[i]->next_paper)) {
        return Status::InvalidArgument("truncated stripe paper counter");
      }
      fresh_hh[i]->hh = std::move(hh).value();
    }
    if (!reader.AtEnd()) {
      return Status::InvalidArgument("stripe payload has trailing bytes");
    }
  }

  registry_ = std::move(fresh_registry).value();
  hh_stripes_ = std::move(fresh_hh);
  // The fresh stripes restart their ingest epochs at 0. A cache tagged
  // with the pre-restore epochs could coincidentally match (e.g. an
  // all-zeros tag captured before any ingest), so invalidate
  // explicitly — the hh-stripe epochs themselves give no restore
  // signal, unlike the registry's (bumped by DeserializeStripe).
  {
    std::lock_guard<std::mutex> lock(hh_report_cache_->mu);
    hh_report_cache_->valid = false;
    hh_report_cache_->versions.clear();
    hh_report_cache_->reports.clear();
  }
  return Status::OK();
}

}  // namespace himpact
