#include "service/wal_apply.h"

#include <unordered_map>
#include <utility>

#include "common/bytes.h"

namespace himpact {
namespace {

/// Decoded form of one WAL payload (either flavor).
struct WalEvent {
  std::uint8_t type = 0;
  // add
  AuthorId user = 0;
  std::uint64_t value = 0;
  std::uint64_t stripe_seq = 0;
  // paper
  PaperTuple paper;
  std::vector<std::uint64_t> stripe_seqs;
};

bool DecodeWalEvent(const std::vector<std::uint8_t>& payload,
                    WalEvent* event) {
  ByteReader reader(payload);
  if (!reader.U8(&event->type)) return false;
  if (event->type == kWalEventAdd) {
    return reader.U64(&event->user) && reader.U64(&event->value) &&
           reader.U64(&event->stripe_seq) && reader.AtEnd();
  }
  if (event->type == kWalEventPaper) {
    std::uint8_t nauthors = 0;
    if (!reader.U64(&event->paper.paper) ||
        !reader.U64(&event->paper.citations) || !reader.U8(&nauthors)) {
      return false;
    }
    if (nauthors == 0 || nauthors > kMaxAuthorsPerPaper) return false;
    for (std::uint8_t a = 0; a < nauthors; ++a) {
      AuthorId author = 0;
      std::uint64_t seq = 0;
      if (!reader.U64(&author) || !reader.U64(&seq)) return false;
      event->paper.authors.PushBack(author);
      event->stripe_seqs.push_back(seq);
    }
    return reader.AtEnd();
  }
  return false;
}

}  // namespace

std::vector<std::uint8_t> EncodeWalAdd(AuthorId user, std::uint64_t value,
                                       std::uint64_t stripe_seq) {
  ByteWriter writer;
  writer.U8(kWalEventAdd);
  writer.U64(user);
  writer.U64(value);
  writer.U64(stripe_seq);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeWalPaper(
    const PaperTuple& paper, const std::vector<std::uint64_t>& stripe_seqs) {
  ByteWriter writer;
  writer.U8(kWalEventPaper);
  writer.U64(paper.paper);
  writer.U64(paper.citations);
  writer.U8(static_cast<std::uint8_t>(paper.authors.size()));
  for (int a = 0; a < paper.authors.size(); ++a) {
    writer.U64(paper.authors[a]);
    writer.U64(stripe_seqs[static_cast<std::size_t>(a)]);
  }
  return writer.Take();
}

Status AppendWalAdd(WalWriter* wal, const HImpactService& service,
                    AuthorId user, std::uint64_t value) {
  const TieredUserRegistry& registry = service.registry();
  const std::uint64_t seq = registry.StripeEvents(registry.StripeOf(user));
  return wal->Append(EncodeWalAdd(user, value, seq));
}

Status AppendWalPaper(WalWriter* wal, const HImpactService& service,
                      const PaperTuple& paper) {
  const TieredUserRegistry& registry = service.registry();
  // Post-apply counts: a stripe carrying k of this paper's authors had
  // its count advanced k times, so in author order the authors took
  // `events - k + 1 .. events`. Walking remaining-counts downward
  // reproduces exactly the sequence each author's Add observed.
  std::unordered_map<std::size_t, std::uint64_t> remaining;
  for (const AuthorId author : paper.authors) {
    ++remaining[registry.StripeOf(author)];
  }
  std::unordered_map<std::size_t, std::uint64_t> events;
  for (const auto& [stripe, count] : remaining) {
    events[stripe] = registry.StripeEvents(stripe);
  }
  std::vector<std::uint64_t> seqs;
  seqs.reserve(static_cast<std::size_t>(paper.authors.size()));
  for (const AuthorId author : paper.authors) {
    const std::size_t stripe = registry.StripeOf(author);
    seqs.push_back(events[stripe] - remaining[stripe] + 1);
    --remaining[stripe];
  }
  return wal->Append(EncodeWalPaper(paper, seqs));
}

Status ReplayWal(const std::string& dir, HImpactService* service,
                 WalReplayStats* read_stats, WalApplyStats* apply_stats) {
  WalApplyStats local;
  WalApplyStats* out = apply_stats != nullptr ? apply_stats : &local;
  *out = WalApplyStats{};

  auto records_or = ReadWalRecords(dir, read_stats);
  if (!records_or.ok()) return records_or.status();

  const TieredUserRegistry& registry = service->registry();
  for (const std::vector<std::uint8_t>& payload : records_or.value()) {
    WalEvent event;
    if (!DecodeWalEvent(payload, &event)) {
      ++out->malformed_records;
      continue;
    }
    if (event.type == kWalEventAdd) {
      const std::size_t stripe = registry.StripeOf(event.user);
      if (event.stripe_seq > registry.StripeEvents(stripe)) {
        service->RecordResponseCount(event.user, event.value);
        ++out->applied_adds;
      } else {
        ++out->skipped_records;
      }
      continue;
    }
    // Paper: gate each author against its stripe, tracking the applies
    // this record itself will make so same-stripe co-authors gate
    // against the right running count.
    std::unordered_map<std::size_t, std::uint64_t> simulated;
    std::vector<bool> mask(static_cast<std::size_t>(event.paper.authors.size()),
                           false);
    std::size_t applied = 0;
    for (int a = 0; a < event.paper.authors.size(); ++a) {
      const std::size_t stripe = registry.StripeOf(event.paper.authors[a]);
      auto [it, inserted] = simulated.try_emplace(stripe, 0);
      if (inserted) it->second = registry.StripeEvents(stripe);
      if (event.stripe_seqs[static_cast<std::size_t>(a)] > it->second) {
        mask[static_cast<std::size_t>(a)] = true;
        ++it->second;
        ++applied;
      }
    }
    if (applied == 0) {
      ++out->skipped_records;
      continue;
    }
    // The grid tuple was fed once, attributed to the first author's
    // stripe (IngestPaper's partition rule), so its gate verdict
    // decides whether the grid still misses the paper.
    service->ReplayPaper(event.paper, mask, mask[0]);
    if (applied == mask.size()) {
      ++out->applied_papers;
    } else {
      ++out->partial_papers;
    }
  }
  return Status::OK();
}

}  // namespace himpact
