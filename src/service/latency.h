#ifndef HIMPACT_SERVICE_LATENCY_H_
#define HIMPACT_SERVICE_LATENCY_H_

#include <atomic>
#include <chrono>
#include <cstdint>

/// \file
/// Lock-free latency capture for the query service.
///
/// `LatencyRecorder` is a fixed-size log-linear histogram of nanosecond
/// durations (8 sub-buckets per power of two, so quantile estimates are
/// within ~12.5% of the true sample), updated with relaxed atomic
/// increments so recording on the hot path costs two uncontended
/// fetch-adds and never takes a lock. Readers (`Stats()` reporting, the
/// load harness) walk the bucket counts for approximate quantiles; the
/// counts are monotone, so a concurrent read sees some valid recent
/// prefix of the recorded samples.

namespace himpact {

/// A histogram of operation latencies with approximate quantiles.
class LatencyRecorder {
 public:
  /// Records one operation that took `nanos` nanoseconds.
  void Record(std::uint64_t nanos) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
    buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Number of operations recorded.
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Mean latency in nanoseconds (0 before the first record).
  double MeanNanos() const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) /
           static_cast<double>(n);
  }

  /// Approximate `q`-quantile (e.g. 0.5, 0.99) in nanoseconds: the
  /// midpoint of the histogram bucket containing the target rank. 0 when
  /// nothing was recorded. Requires `0 < q <= 1`.
  double QuantileNanos(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(n));
    if (target >= n) target = n - 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b].load(std::memory_order_relaxed);
      if (seen > target) return BucketMidNanos(b);
    }
    return BucketMidNanos(kNumBuckets - 1);
  }

  /// Convenience: `QuantileNanos` in microseconds.
  double QuantileMicros(double q) const { return QuantileNanos(q) / 1e3; }

 private:
  // Buckets 0..7 hold exact nanosecond values 0..7; above that each
  // power of two is split into 8 sub-buckets by the top three mantissa
  // bits: bucket = 8 + (exp-3)*8 + mantissa for values in [2^exp, 2^(exp+1)).
  static constexpr std::size_t kNumBuckets = 8 + 61 * 8;

  static std::size_t BucketOf(std::uint64_t nanos) {
    if (nanos < 8) return static_cast<std::size_t>(nanos);
    const int exp = 63 - __builtin_clzll(nanos);
    const std::uint64_t mantissa = (nanos >> (exp - 3)) & 0x7u;
    return 8 + static_cast<std::size_t>(exp - 3) * 8 +
           static_cast<std::size_t>(mantissa);
  }

  static double BucketMidNanos(std::size_t bucket) {
    if (bucket < 8) return static_cast<double>(bucket);
    const std::size_t exp = 3 + (bucket - 8) / 8;
    const std::size_t mantissa = (bucket - 8) % 8;
    const double lower =
        static_cast<double>((8ull + mantissa) << (exp - 3));
    const double width = static_cast<double>(1ull << (exp - 3));
    return lower + width / 2.0;
  }

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_nanos_{0};
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
};

/// Measures one scope's wall-clock duration into a recorder.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyRecorder& recorder)
      : recorder_(recorder), start_(std::chrono::steady_clock::now()) {}

  ~ScopedLatency() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    recorder_.Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  LatencyRecorder& recorder_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace himpact

#endif  // HIMPACT_SERVICE_LATENCY_H_
