#ifndef HIMPACT_ENGINE_SPSC_RING_H_
#define HIMPACT_ENGINE_SPSC_RING_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/check.h"
#include "fault/fault.h"

/// \file
/// Bounded single-producer/single-consumer ring buffer — the per-shard
/// event queue of the sharded ingestion engine.
///
/// Lock-free in the classic Lamport style: the producer owns `tail_`, the
/// consumer owns `head_`, and each side keeps a local cache of the other
/// side's index so the hot path touches a shared cache line only when its
/// cached view says the ring might be full (producer) or empty
/// (consumer). Capacity is rounded up to a power of two so slot indexing
/// is a mask, and the indices are free-running 64-bit counters (no
/// wrap-around ambiguity at any realistic stream length).
///
/// Full-ring waiting is bounded: `PushBounded` spins with a cpu-relax a
/// bounded number of times, then yields a bounded number of times, then
/// gives up and reports failure — counting a producer stall — so a
/// stalled consumer can never make the producer burn a core silently.
/// Callers escalate to sleeping or shedding (see
/// `engine/sharded_engine.h`). The `ring-full` fault point
/// (fault/fault.h) forces the full-ring path deterministically for
/// tests.

namespace himpact {

/// A bounded SPSC queue of trivially copyable-ish events. Exactly one
/// thread may call the producer methods (`TryPush`, `PushBounded`) and
/// exactly one thread the consumer methods (`PopBatch`); any thread may
/// call `capacity()` and the counters.
template <typename T>
class SpscRing {
 public:
  /// Creates a ring holding at least `min_capacity` items (rounded up to
  /// a power of two). Requires `min_capacity >= 1`.
  explicit SpscRing(std::size_t min_capacity) {
    HIMPACT_CHECK(min_capacity >= 1);
    std::size_t capacity = 1;
    while (capacity < min_capacity) capacity <<= 1;
    slots_.resize(capacity);
    mask_ = capacity - 1;
  }

  /// Attempts to enqueue one item; returns false when the ring is full
  /// (or the `ring-full` fault is firing). Producer thread only.
  bool TryPush(const T& item) {
    if (FaultRegistry::Global().AnyArmed() &&
        FaultRegistry::Global().ShouldFire(FaultPoint::kRingFull)) {
      return false;
    }
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = item;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// `TryPush` with a bounded wait when the ring is full: up to
  /// `max_spins` cpu-relax spins, then up to `max_yields` scheduler
  /// yields. Returns false (after counting one producer stall) if the
  /// ring is still full — the caller decides whether to sleep, retry,
  /// or shed; this method never waits unboundedly. Producer thread only.
  bool PushBounded(const T& item, std::size_t max_spins,
                   std::size_t max_yields) {
    if (TryPush(item)) return true;
    for (std::size_t spin = 0; spin < max_spins; ++spin) {
      CpuRelax();
      if (TryPush(item)) return true;
    }
    for (std::size_t yielded = 0; yielded < max_yields; ++yielded) {
      std::this_thread::yield();
      if (TryPush(item)) return true;
    }
    producer_stalls_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Dequeues up to `max_items` items into `out`, returning how many were
  /// taken (0 when the ring is empty at the time of the call). Consumer
  /// thread only.
  std::size_t PopBatch(T* out, std::size_t max_items) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == head) return 0;
    }
    std::size_t taken = static_cast<std::size_t>(cached_tail_ - head);
    if (taken > max_items) taken = max_items;
    for (std::size_t i = 0; i < taken; ++i) {
      out[i] = slots_[static_cast<std::size_t>(head + i) & mask_];
    }
    head_.store(head + taken, std::memory_order_release);
    return taken;
  }

  /// Number of item slots.
  std::size_t capacity() const { return mask_ + 1; }

  /// Times `PushBounded` exhausted both its spin and yield budgets
  /// without finding a free slot. Readable from any thread.
  std::uint64_t producer_stalls() const {
    return producer_stalls_.load(std::memory_order_relaxed);
  }

  /// One polite busy-wait iteration (PAUSE on x86, YIELD on ARM).
  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  std::size_t mask_ = 0;
  std::vector<T> slots_;
  // Producer-owned index and its cache of the consumer's index; separate
  // cache lines so the two sides do not false-share.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::uint64_t cached_head_ = 0;
  // Consumer-owned index and its cache of the producer's index.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::uint64_t cached_tail_ = 0;
  alignas(64) std::atomic<std::uint64_t> producer_stalls_{0};
};

}  // namespace himpact

#endif  // HIMPACT_ENGINE_SPSC_RING_H_
