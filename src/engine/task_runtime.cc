#include "engine/task_runtime.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace himpact {
namespace {

// Which worker (of which runtime) the current thread is. Lets Submit
// route a job from inside a running job to the submitting worker's own
// deque instead of the injector.
thread_local TaskRuntime* tl_runtime = nullptr;
thread_local std::size_t tl_worker = 0;

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t pow2 = 8;
  while (pow2 < n) pow2 <<= 1;
  return pow2;
}

}  // namespace

const char* JobClassName(JobClass job_class) {
  switch (job_class) {
    case JobClass::kGeneric:
      return "generic";
    case JobClass::kCheckpoint:
      return "checkpoint";
    case JobClass::kDeltaCollapse:
      return "delta_collapse";
    case JobClass::kTierDemotion:
      return "tier_demotion";
    case JobClass::kMergeWarm:
      return "merge_warm";
  }
  return "generic";
}

bool TaskHandle::done() const {
  if (state_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void TaskHandle::Wait() {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
}

// ---------------------------------------------------------------------------
// Chase-Lev deque

TaskRuntime::Deque::Deque(std::size_t capacity) {
  ring_.store(new Ring(RoundUpPow2(capacity)), std::memory_order_seq_cst);
}

TaskRuntime::Deque::~Deque() {
  // The runtime drains before destruction, so no jobs remain.
  delete ring_.load(std::memory_order_seq_cst);
}

void TaskRuntime::Deque::Push(Job* job) {
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  const std::int64_t t = top_.load(std::memory_order_seq_cst);
  Ring* ring = ring_.load(std::memory_order_seq_cst);
  if (b - t > static_cast<std::int64_t>(ring->mask)) {
    // Full: grow 2x. Only the owner is here; thieves may concurrently
    // read the OLD ring, which stays alive in retired_ and holds the
    // identical values for every index in [top, bottom).
    Ring* bigger = new Ring((ring->mask + 1) * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slots[static_cast<std::size_t>(i) & bigger->mask].store(
          ring->slots[static_cast<std::size_t>(i) & ring->mask].load(
              std::memory_order_seq_cst),
          std::memory_order_seq_cst);
    }
    retired_.emplace_back(ring);
    ring_.store(bigger, std::memory_order_seq_cst);
    ring = bigger;
  }
  ring->slots[static_cast<std::size_t>(b) & ring->mask].store(
      job, std::memory_order_seq_cst);
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

TaskRuntime::Job* TaskRuntime::Deque::Pop() {
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst) - 1;
  Ring* ring = ring_.load(std::memory_order_seq_cst);
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {
    // Empty; restore the canonical empty shape (top == bottom).
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return nullptr;
  }
  Job* job = ring->slots[static_cast<std::size_t>(b) & ring->mask].load(
      std::memory_order_seq_cst);
  if (t == b) {
    // Last element: race the thieves for it via the top CAS.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      job = nullptr;  // a thief won
    }
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }
  return job;
}

TaskRuntime::Job* TaskRuntime::Deque::Steal() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Ring* ring = ring_.load(std::memory_order_seq_cst);
  Job* job = ring->slots[static_cast<std::size_t>(t) & ring->mask].load(
      std::memory_order_seq_cst);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
    return nullptr;  // lost to the owner or another thief; caller rescans
  }
  return job;
}

// ---------------------------------------------------------------------------
// Runtime

TaskRuntime::TaskRuntime(const TaskRuntimeOptions& options) {
  std::size_t num_workers = options.num_workers;
  if (num_workers == 0) {
    num_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.push_back(
        std::make_unique<Worker>(options.initial_deque_capacity));
  }
  threads_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskRuntime::~TaskRuntime() { Shutdown(); }

TaskHandle TaskRuntime::Submit(JobClass job_class, std::function<void()> fn) {
  HIMPACT_CHECK_MSG(!shut_down_.load(std::memory_order_seq_cst),
                    "Submit on a shut-down TaskRuntime");
  auto state = std::make_shared<TaskHandle::State>();
  Job* job = new Job{std::move(fn), job_class, state};
  pending_.fetch_add(1, std::memory_order_seq_cst);
  submitted_[static_cast<std::size_t>(job_class)].fetch_add(
      1, std::memory_order_relaxed);
  if (tl_runtime == this) {
    workers_[tl_worker]->deque.Push(job);
  } else {
    {
      std::lock_guard<std::mutex> lock(inject_mutex_);
      injector_.push_back(job);
    }
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  SignalWork();
  TaskHandle handle;
  handle.state_ = std::move(state);
  return handle;
}

void TaskRuntime::WaitIdle() {
  HIMPACT_CHECK_MSG(tl_runtime != this,
                    "WaitIdle from inside a job would self-deadlock");
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_seq_cst) == 0;
  });
}

void TaskRuntime::Shutdown() {
  if (shut_down_.load(std::memory_order_seq_cst)) return;
  // Drain BEFORE flagging: running jobs may legally submit follow-up
  // work while the drain runs; only post-drain submits are fatal.
  WaitIdle();
  shut_down_.store(true, std::memory_order_seq_cst);
  stop_.store(true, std::memory_order_seq_cst);
  {
    // Take the lock before notifying so a worker between its final
    // sweep and its wait cannot miss the stop flag.
    std::lock_guard<std::mutex> lock(park_mutex_);
    park_cv_.notify_all();
  }
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
}

TaskRuntimeStats TaskRuntime::Stats() const {
  TaskRuntimeStats stats;
  for (std::size_t i = 0; i < kNumJobClasses; ++i) {
    stats.submitted[i] = submitted_[i].load(std::memory_order_relaxed);
    stats.completed[i] = completed_[i].load(std::memory_order_relaxed);
  }
  stats.executed_local = executed_local_.load(std::memory_order_relaxed);
  stats.stolen = stolen_.load(std::memory_order_relaxed);
  stats.injected = injected_.load(std::memory_order_relaxed);
  return stats;
}

TaskRuntime& TaskRuntime::Shared() {
  // Leaked on purpose (see header): sessions may wait on background
  // handles during static teardown, after locals would have died.
  static TaskRuntime* shared = new TaskRuntime(TaskRuntimeOptions{});
  return *shared;
}

void TaskRuntime::SignalWork() {
  work_epoch_.fetch_add(1, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(park_mutex_);
  park_cv_.notify_all();
}

TaskRuntime::Job* TaskRuntime::TakeInjected() {
  std::lock_guard<std::mutex> lock(inject_mutex_);
  if (injector_.empty()) return nullptr;
  Job* job = injector_.front();
  injector_.pop_front();
  return job;
}

TaskRuntime::Job* TaskRuntime::StealFrom(std::size_t thief) {
  const std::size_t n = workers_.size();
  for (std::size_t i = 1; i < n; ++i) {
    Job* job = workers_[(thief + i) % n]->deque.Steal();
    if (job != nullptr) return job;
  }
  return nullptr;
}

void TaskRuntime::Execute(Job* job) {
  job->fn();
  completed_[static_cast<std::size_t>(job->job_class)].fetch_add(
      1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(job->state->mutex);
    job->state->done = true;
  }
  job->state->cv.notify_all();
  delete job;
  if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    // Last in-flight job: wake WaitIdle under its lock (see header).
    std::lock_guard<std::mutex> lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

void TaskRuntime::WorkerLoop(std::size_t index) {
  tl_runtime = this;
  tl_worker = index;
  Worker& self = *workers_[index];
  while (true) {
    Job* job = self.deque.Pop();
    if (job != nullptr) {
      executed_local_.fetch_add(1, std::memory_order_relaxed);
      Execute(job);
      continue;
    }
    job = TakeInjected();
    if (job != nullptr) {
      Execute(job);
      continue;
    }
    job = StealFrom(index);
    if (job != nullptr) {
      stolen_.fetch_add(1, std::memory_order_relaxed);
      Execute(job);
      continue;
    }
    // Full sweep came up empty. Capture the epoch BEFORE the stop
    // check so a submit racing this gap forces a wake-or-no-sleep.
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_seq_cst);
    if (stop_.load(std::memory_order_seq_cst)) break;
    std::unique_lock<std::mutex> lock(park_mutex_);
    park_cv_.wait_for(lock, std::chrono::milliseconds(1), [this, epoch] {
      return stop_.load(std::memory_order_seq_cst) ||
             work_epoch_.load(std::memory_order_seq_cst) != epoch;
    });
  }
  tl_runtime = nullptr;
}

}  // namespace himpact
