#ifndef HIMPACT_ENGINE_STATS_H_
#define HIMPACT_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>

/// \file
/// Per-shard counters for the sharded ingestion engine.
///
/// The live counters are atomics updated from two threads (the producer
/// counts pushes, queue-full stalls, and rejected offers; the shard
/// worker counts consumed events and batches); `ShardCounters` is the
/// plain snapshot form handed to reporting code. The overload-related
/// counters exist so no backpressure event is silent: every full-ring
/// wait, bounded-wait exhaustion, and shed offer is visible in the
/// snapshot (see docs/ROBUSTNESS.md).

namespace himpact {

/// A point-in-time snapshot of one shard's counters.
struct ShardCounters {
  /// Events handed to this shard by the producer.
  std::uint64_t events_pushed = 0;
  /// Events the shard worker has applied to its estimator.
  std::uint64_t events_consumed = 0;
  /// Dequeue batches the worker has processed (possibly shorter than the
  /// configured batch size when the ring ran dry).
  std::uint64_t batches = 0;
  /// Times the producer found this shard's ring full and had to wait.
  std::uint64_t queue_full_stalls = 0;
  /// Times a bounded push exhausted both its spin and yield budgets
  /// (the ring's producer-stall counter; see engine/spsc_ring.h).
  std::uint64_t producer_stalls = 0;
  /// Non-blocking offers (`TryIngest`) rejected because the ring was
  /// full — the caller shed or retried; the event was NOT enqueued.
  std::uint64_t offers_rejected = 0;
  /// Nanoseconds the worker has spent inside `Traits::ApplyBatch` (the
  /// estimator hot path, excluding dequeue and idle waits). Divide by
  /// `events_consumed` for the shard's ns/event.
  std::uint64_t apply_nanos = 0;
  /// Largest dequeue batch the worker has applied so far (how close the
  /// drain runs to the configured `batch_size`).
  std::uint64_t max_batch = 0;
};

/// The live, thread-shared form. Producer-side fields are written only by
/// the ingesting thread, consumer-side fields only by the shard worker;
/// either side (and reporters) may read everything.
struct ShardStats {
  alignas(64) std::atomic<std::uint64_t> pushed{0};
  std::atomic<std::uint64_t> queue_full_stalls{0};
  std::atomic<std::uint64_t> offers_rejected{0};
  alignas(64) std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> apply_nanos{0};
  std::atomic<std::uint64_t> max_batch{0};

  ShardCounters Snapshot() const {
    ShardCounters counters;
    counters.events_pushed = pushed.load(std::memory_order_acquire);
    counters.events_consumed = consumed.load(std::memory_order_acquire);
    counters.batches = batches.load(std::memory_order_relaxed);
    counters.queue_full_stalls =
        queue_full_stalls.load(std::memory_order_relaxed);
    counters.offers_rejected =
        offers_rejected.load(std::memory_order_relaxed);
    counters.apply_nanos = apply_nanos.load(std::memory_order_relaxed);
    counters.max_batch = max_batch.load(std::memory_order_relaxed);
    return counters;
  }
};

}  // namespace himpact

#endif  // HIMPACT_ENGINE_STATS_H_
