#ifndef HIMPACT_ENGINE_TRAITS_H_
#define HIMPACT_ENGINE_TRAITS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/batch.h"
#include "common/bytes.h"
#include "common/status.h"
#include "hash/mix.h"
#include "stream/types.h"

/// \file
/// Ready-made `ShardedEngine` traits for the repo's three stream shapes.
///
/// Each traits type fixes the event type, the partition key, and how an
/// event is applied; the estimator stays a template parameter so any
/// mergeable estimator of the right interface can be sharded. Partition
/// keys are finalized with `SplitMix64` inside the engine, so correlated
/// raw keys still spread across shards.
///
/// `ApplyBatch` is the devirtualized hot path (docs/PERFORMANCE.md): the
/// engine worker hands a whole dequeued batch to the *concrete* estimator
/// in one statically dispatched call. When the estimator exposes a batch
/// method (`AddBatch` / `UpdateBatch` / `AddPaperBatch` — detected at
/// compile time with a `requires` expression), the batch goes straight to
/// it; otherwise the traits fall back to a tight scalar loop, which is
/// still virtual-call-free because `Estimator` is the concrete type.
///
/// Sharding caveat per stream shape:
///  - Aggregate streams partition by *value*, so any value-mergeable
///    estimator (ExponentialHistogramEstimator, KLL, HLL, ...) works.
///  - Cash-register streams partition by *paper id*: all updates to one
///    paper land on one shard, which per-paper estimators
///    (CashRegisterEstimator's samplers, CountMin) tolerate because their
///    merges are linear.
///  - Paper streams partition by *paper id*; HeavyHitters' merge demands
///    identical seeds across shards so author buckets line up.

namespace himpact {

/// Aggregate stream (Definition 1): each event is one paper's final
/// citation count. `Estimator` needs `Add(uint64_t)`, `Merge`,
/// `SerializeTo`, and static `DeserializeFrom`.
template <typename E>
struct AggregateEngineTraits {
  using Event = std::uint64_t;
  using Estimator = E;
  static std::uint64_t Key(const Event& value) { return value; }
  static void Apply(Estimator& estimator, const Event& value) {
    estimator.Add(value);
  }
  static void ApplyBatch(Estimator& estimator, const Event* events,
                         std::size_t n, BatchArena& arena) {
    (void)arena;
    if constexpr (requires {
                    estimator.AddBatch(std::span<const Event>(events, n));
                  }) {
      estimator.AddBatch(std::span<const Event>(events, n));
    } else {
      for (std::size_t i = 0; i < n; ++i) estimator.Add(events[i]);
    }
  }
  static void Merge(Estimator& into, const Estimator& from) {
    into.Merge(from);
  }
  static void Serialize(const Estimator& estimator, ByteWriter& writer) {
    estimator.SerializeTo(writer);
  }
  static StatusOr<Estimator> Deserialize(ByteReader& reader) {
    return Estimator::DeserializeFrom(reader);
  }
};

/// Cash-register stream (Definition 2): incremental citation updates.
/// Partitioned by paper id so each paper's counter lives on one shard.
/// `Estimator` needs `Update(uint64_t, int64_t)`, `Merge`, `SerializeTo`,
/// and static `DeserializeFrom`.
template <typename E>
struct CashRegisterEngineTraits {
  using Event = CitationEvent;
  using Estimator = E;
  static std::uint64_t Key(const Event& event) { return event.paper; }
  static void Apply(Estimator& estimator, const Event& event) {
    estimator.Update(event.paper, event.delta);
  }
  static void ApplyBatch(Estimator& estimator, const Event* events,
                         std::size_t n, BatchArena& arena) {
    if constexpr (requires {
                    estimator.UpdateBatch(std::span<const Event>(events, n),
                                          arena);
                  }) {
      estimator.UpdateBatch(std::span<const Event>(events, n), arena);
    } else {
      (void)arena;
      for (std::size_t i = 0; i < n; ++i) {
        estimator.Update(events[i].paper, events[i].delta);
      }
    }
  }
  static void Merge(Estimator& into, const Estimator& from) {
    into.Merge(from);
  }
  static void Serialize(const Estimator& estimator, ByteWriter& writer) {
    estimator.SerializeTo(writer);
  }
  static StatusOr<Estimator> Deserialize(ByteReader& reader) {
    return Estimator::DeserializeFrom(reader);
  }
};

/// Multi-author paper stream (Section 6): full paper tuples. Partitioned
/// by paper id. `Estimator` needs `AddPaper(const PaperTuple&)`, `Merge`,
/// `SerializeTo`, and static `DeserializeFrom`.
template <typename E>
struct PaperEngineTraits {
  using Event = PaperTuple;
  using Estimator = E;
  static std::uint64_t Key(const Event& event) { return event.paper; }
  static void Apply(Estimator& estimator, const Event& event) {
    estimator.AddPaper(event);
  }
  static void ApplyBatch(Estimator& estimator, const Event* events,
                         std::size_t n, BatchArena& arena) {
    (void)arena;
    if constexpr (requires {
                    estimator.AddPaperBatch(std::span<const Event>(events, n));
                  }) {
      estimator.AddPaperBatch(std::span<const Event>(events, n));
    } else {
      for (std::size_t i = 0; i < n; ++i) estimator.AddPaper(events[i]);
    }
  }
  static void Merge(Estimator& into, const Estimator& from) {
    into.Merge(from);
  }
  static void Serialize(const Estimator& estimator, ByteWriter& writer) {
    estimator.SerializeTo(writer);
  }
  static StatusOr<Estimator> Deserialize(ByteReader& reader) {
    return Estimator::DeserializeFrom(reader);
  }
};

}  // namespace himpact

#endif  // HIMPACT_ENGINE_TRAITS_H_
