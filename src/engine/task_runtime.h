#ifndef HIMPACT_ENGINE_TASK_RUNTIME_H_
#define HIMPACT_ENGINE_TASK_RUNTIME_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// Work-stealing background task runtime.
///
/// `TaskRuntime` generalizes the ad-hoc background threads that grew
/// around the engine and service layers (the session's detached
/// delta-chain collapse worker, inline checkpoint serialization, inline
/// cold-tier seal writes) into one pool of workers fed by Chase-Lev
/// work-stealing deques:
///
///   - each worker owns a deque; jobs submitted *from* a worker go to
///     its own deque (LIFO pop, cache-warm), and idle workers steal
///     from the opposite end (FIFO, oldest first);
///   - jobs submitted from outside the pool land in a mutex-protected
///     injector queue that every worker drains between deque sweeps;
///   - jobs carry a `JobClass` so operators can see *what* the
///     background pool spends its time on (per-class counters), and so
///     the scheduling policy has a hook if classes ever need isolation
///     beyond counters.
///
/// Threading/memory model: the deque is the textbook Chase-Lev
/// structure with every access through `std::atomic` at seq_cst.
/// Sequential consistency costs one fence per push/pop — irrelevant at
/// background-job granularity — and keeps the structure free of
/// standalone `atomic_thread_fence`, which ThreadSanitizer does not
/// model (docs/PERFORMANCE.md, "Task runtime").
///
/// Blocking contract: a job may wait for other jobs it submitted ONLY
/// when the runtime has more than one worker (on a single-worker
/// runtime the waiting job occupies the only thread that could run
/// them). `WaitIdle`/`Shutdown` must be called from outside the pool.

namespace himpact {

/// What a background job does, for accounting and policy. Classes map
/// to the maintenance work the serving layers offload (see
/// docs/PERFORMANCE.md for who submits what):
enum class JobClass : int {
  kGeneric = 0,        // tests, benches, uncategorized work
  kCheckpoint = 1,     // per-shard engine checkpoint serialization+write
  kDeltaCollapse = 2,  // session background delta-chain fold to full
  kTierDemotion = 3,   // cold-tier seal flush of pending demotion records
  kMergeWarm = 4,      // pre-warming the engine merge-on-query cache
};

inline constexpr std::size_t kNumJobClasses = 5;

/// Stable lowercase name for reports ("generic", "checkpoint", ...).
const char* JobClassName(JobClass job_class);

/// Pool geometry. `num_workers == 0` resolves to
/// `std::thread::hardware_concurrency()` (at least 1).
struct TaskRuntimeOptions {
  std::size_t num_workers = 0;
  /// Initial per-worker deque capacity (rounded up to a power of two).
  /// Deques grow without bound; this only sizes the first ring.
  std::size_t initial_deque_capacity = 256;
};

/// Monotone counters, snapshot via `TaskRuntime::Stats()`.
struct TaskRuntimeStats {
  std::array<std::uint64_t, kNumJobClasses> submitted{};
  std::array<std::uint64_t, kNumJobClasses> completed{};
  /// Jobs a worker popped from its own deque.
  std::uint64_t executed_local = 0;
  /// Jobs taken from another worker's deque.
  std::uint64_t stolen = 0;
  /// Jobs that entered through the injector queue (external submits).
  std::uint64_t injected = 0;
};

/// Completion handle for one submitted job. Copyable (shared state);
/// a default-constructed handle is empty (`valid() == false`).
class TaskHandle {
 public:
  TaskHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the job's function has returned. Empty handles are done.
  bool done() const;

  /// Blocks until the job completes. Returns immediately for empty or
  /// already-completed handles. Must not be called from a job running
  /// on a single-worker runtime (see the blocking contract above).
  void Wait();

 private:
  friend class TaskRuntime;
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
  };
  std::shared_ptr<State> state_;
};

/// The pool. Workers start in the constructor and join in `Shutdown()`
/// (or the destructor, which drains pending jobs first).
class TaskRuntime {
 public:
  explicit TaskRuntime(const TaskRuntimeOptions& options = {});
  ~TaskRuntime();

  TaskRuntime(const TaskRuntime&) = delete;
  TaskRuntime& operator=(const TaskRuntime&) = delete;

  /// Enqueues `fn` to run on some worker. Thread-safe from any thread;
  /// submissions from inside a job go to the submitting worker's own
  /// deque (stealable by idle workers), external submissions go through
  /// the injector queue.
  TaskHandle Submit(JobClass job_class, std::function<void()> fn);

  /// Blocks until every submitted job (including jobs submitted by
  /// running jobs) has completed. Call from outside the pool only.
  void WaitIdle();

  /// Drains all pending work (`WaitIdle`) then stops and joins the
  /// workers. Idempotent; `Submit` after `Shutdown` is a fatal error.
  void Shutdown();

  std::size_t num_workers() const { return workers_.size(); }

  /// Snapshot of the runtime counters. Thread-safe; individually
  /// consistent (each counter is read atomically, the set is not).
  TaskRuntimeStats Stats() const;

  /// Process-wide shared runtime for background maintenance (sized to
  /// the host, minimum 1 worker). Constructed on first use and
  /// intentionally never destroyed, so late-exiting sessions can still
  /// wait on handles during static teardown.
  static TaskRuntime& Shared();

 private:
  struct Job {
    std::function<void()> fn;
    JobClass job_class = JobClass::kGeneric;
    std::shared_ptr<TaskHandle::State> state;
  };

  /// Chase-Lev work-stealing deque of `Job*`. Owner pushes and pops at
  /// the bottom; thieves CAS the top. All atomics seq_cst (see file
  /// comment). The ring grows owner-side; retired rings are kept alive
  /// until destruction because a concurrent thief may still hold the
  /// old pointer — the copied range is identical in both rings, and the
  /// CAS on `top_` still hands each index to exactly one taker.
  class Deque {
   public:
    explicit Deque(std::size_t capacity);
    ~Deque();

    void Push(Job* job);  // owner only
    Job* Pop();           // owner only
    Job* Steal();         // any thread

   private:
    struct Ring {
      explicit Ring(std::size_t n) : mask(n - 1), slots(n) {}
      const std::size_t mask;
      std::vector<std::atomic<Job*>> slots;
    };

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Ring*> ring_;
    std::vector<std::unique_ptr<Ring>> retired_;  // owner-only
  };

  struct Worker {
    explicit Worker(std::size_t deque_capacity) : deque(deque_capacity) {}
    Deque deque;
  };

  void WorkerLoop(std::size_t index);
  void Execute(Job* job);
  Job* TakeInjected();
  Job* StealFrom(std::size_t thief);
  void SignalWork();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex inject_mutex_;
  std::deque<Job*> injector_;

  // Parking: workers sleep here when a full sweep finds nothing. The
  // epoch counter closes the race between a worker's final sweep and a
  // concurrent submit — a submit bumps the epoch, so a sleeper whose
  // captured epoch went stale wakes (or never sleeps); the bounded
  // wait_for is the backstop for a steal racing the sweep itself.
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};

  // Idle tracking for WaitIdle: jobs in flight (submitted, not yet
  // completed). The completing worker takes idle_mutex_ before
  // notifying so a waiter cannot miss the final decrement.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<std::uint64_t> pending_{0};

  std::atomic<bool> stop_{false};
  std::atomic<bool> shut_down_{false};

  std::array<std::atomic<std::uint64_t>, kNumJobClasses> submitted_{};
  std::array<std::atomic<std::uint64_t>, kNumJobClasses> completed_{};
  std::atomic<std::uint64_t> executed_local_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace himpact

#endif  // HIMPACT_ENGINE_TASK_RUNTIME_H_
