#ifndef HIMPACT_ENGINE_SHARDED_ENGINE_H_
#define HIMPACT_ENGINE_SHARDED_ENGINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/batch.h"
#include "common/bytes.h"
#include "common/check.h"
#include "common/envelope.h"
#include "common/status.h"
#include "engine/spsc_ring.h"
#include "engine/stats.h"
#include "engine/task_runtime.h"
#include "fault/backoff.h"
#include "fault/fault.h"
#include "fault/health.h"
#include "hash/mix.h"
#include "io/checkpoint.h"

/// \file
/// Parallel sharded ingestion engine.
///
/// `ShardedEngine<Traits>` hash-partitions a stream of events across N
/// worker shards. Each shard owns a private estimator instance (built by
/// a caller-supplied factory so every shard gets identical parameters and
/// seed), fed through a bounded SPSC ring buffer with batched dequeue.
/// Queries are answered by merging the shard estimators — which is why
/// only mergeable estimators can be sharded (see docs/ALGORITHMS.md,
/// "Mergeability").
///
/// Hot path (docs/PERFORMANCE.md): workers drain the ring in batches and
/// hand each whole batch to the concrete estimator through
/// `Traits::ApplyBatch` — static dispatch, no per-event virtual call —
/// with a worker-owned `BatchArena` for scratch. Merge-on-query is
/// epoch-cached: each shard's `consumed` counter is its version, and
/// `MergedEstimatorCached()` reuses the last merged snapshot while no
/// version advanced.
///
/// Threading model: exactly one producer thread calls `Ingest`; each
/// shard has one worker thread applying events. `Drain()` is a barrier
/// (every pushed event applied) after which the producer may read shard
/// estimators, take a merged snapshot, or checkpoint, and then resume
/// ingesting. All waiting is yield-based so the engine degrades
/// gracefully when shards outnumber cores.
///
/// Checkpoint layout (crash-safe, PR 1 conventions): one manifest
/// envelope at `<path>` plus N per-shard framed envelopes at
/// `<path>.shard-<i>`, each written atomically — and, since the runtime
/// fault-tolerance layer, each retried with jittered backoff on
/// transient I/O failure (fault/backoff.h).
///
/// Fault tolerance (docs/ROBUSTNESS.md): each shard carries a
/// `HealthTracker` polled by the producer (`PollHealth`), `TryIngest`
/// offers an event without blocking so callers can shed at a full ring,
/// and `MergedEstimatorDegraded` answers queries within a deadline by
/// merging only the shards that caught up — a monotone lower bound on
/// the full answer, tagged with how much was skipped.

namespace himpact {

/// Skew-aware dynamic rebalancing (off by default — the legacy static
/// `SplitMix64(key) % num_shards` routing is byte-for-byte preserved
/// when disabled).
///
/// When enabled, the producer routes events through a power-of-two
/// slot table (`route_slots` slots; slot = low bits of the mixed key)
/// instead of the modulo, and every `check_interval_events` ingests it
/// compares per-shard load using the workers' `apply_nanos` counters —
/// actual time spent applying events, which captures per-event cost
/// skew as well as event-count skew. When the hottest shard's load
/// exceeds `hot_ratio` times the mean, the hottest slot routed to it
/// either MOVES to the coldest shard, or — when that one slot alone
/// carries the majority of the hot shard's events, so no placement
/// helps — is marked SPLIT and round-robins across all shards.
///
/// Splitting is safe for exactly the estimators the engine already
/// requires: merge-on-query composes disjoint sub-streams, and the
/// merged result is invariant to how events were partitioned (the
/// merge-associativity property, tests/merge_associativity_test.cc) —
/// so spreading one slot's events over every shard changes only load,
/// never answers. All rebalancing state is producer-side: workers are
/// untouched and the hot path gains one table load.
struct RebalanceOptions {
  bool enabled = false;
  /// Producer ingests between load checks.
  std::uint64_t check_interval_events = 1u << 16;
  /// A shard is "hot" when its apply-time delta since the last check
  /// exceeds `hot_ratio` times the mean across shards.
  double hot_ratio = 2.0;
  /// Route-table size (rounded up to a power of two). More slots give
  /// finer-grained moves; 256 makes a slot ~0.4% of the keyspace.
  std::size_t route_slots = 256;
};

/// Monotone counters for the rebalancer (producer-thread reads only,
/// like the route table itself).
struct RebalanceStats {
  std::uint64_t checks = 0;      // load comparisons run
  std::uint64_t slot_moves = 0;  // slot reassigned hot -> cold shard
  std::uint64_t slot_splits = 0;  // slot marked round-robin
};

/// Engine geometry. `num_shards` workers, each behind a ring of
/// `queue_capacity` events (rounded up to a power of two), dequeued in
/// batches of up to `batch_size`.
///
/// The producer-wait knobs bound how long `Ingest` busy-waits at a full
/// ring before sleeping (`producer_sleep_micros` per nap), and `health`
/// configures the per-shard watchdog (fault/health.h). Checkpoint writes
/// retry transient failures per `checkpoint_retry`. `rebalance`
/// opts into skew-aware dynamic routing (see `RebalanceOptions`).
struct EngineOptions {
  std::size_t num_shards = 2;
  std::size_t queue_capacity = 4096;
  std::size_t batch_size = 256;
  std::size_t producer_spin_limit = 64;
  std::size_t producer_yield_limit = 64;
  std::uint64_t producer_sleep_micros = 50;
  HealthOptions health;
  RetryOptions checkpoint_retry;
  RebalanceOptions rebalance;
};

/// Result of a degraded (deadline-bounded) merge-on-query: the merge of
/// every shard that caught up within the deadline. Because each shard
/// estimator summarizes a disjoint sub-stream and H-impact estimates are
/// monotone in the stream, the partial merge is a valid lower bound on
/// the full answer; `skipped_events` bounds how much of the stream the
/// answer has not seen. `estimator` is empty only when no shard caught
/// up at all.
template <typename Estimator>
struct DegradedSnapshot {
  std::optional<Estimator> estimator;
  std::size_t shards_merged = 0;
  std::size_t shards_skipped = 0;
  std::uint64_t skipped_events = 0;
};

/// What an engine checkpoint's manifest records.
struct EngineManifest {
  std::uint64_t num_shards = 0;
  std::uint64_t total_events = 0;
};

/// A `Traits` type adapts one estimator family to the engine:
///
/// ```
/// struct MyTraits {
///   using Event = ...;       // copyable stream element
///   using Estimator = ...;   // copyable, mergeable estimator
///   static std::uint64_t Key(const Event&);          // partition key
///   static void Apply(Estimator&, const Event&);     // ingest one event
///   static void Merge(Estimator&, const Estimator&); // into <- from
///   // Only needed when CheckpointTo/RestoreFrom are used:
///   static void Serialize(const Estimator&, ByteWriter&);
///   static StatusOr<Estimator> Deserialize(ByteReader&);
/// };
/// ```
///
/// Ready-made traits for the repo's estimators live in engine/traits.h.
template <typename Traits>
class ShardedEngine {
 public:
  using Event = typename Traits::Event;
  using Estimator = typename Traits::Estimator;

  /// Builds an engine whose shard `i` runs `factory(i)`. The factory must
  /// hand every shard identical parameters and seed, or later merges will
  /// die on a compatibility check. Workers are not started yet; call
  /// `Start()`.
  template <typename Factory>
  static StatusOr<ShardedEngine> Create(const EngineOptions& options,
                                        Factory&& factory) {
    if (options.num_shards < 1) {
      return Status::InvalidArgument("num_shards must be >= 1");
    }
    if (options.batch_size < 1) {
      return Status::InvalidArgument("batch_size must be >= 1");
    }
    if (options.queue_capacity < options.batch_size) {
      return Status::InvalidArgument("queue_capacity must be >= batch_size");
    }
    if (options.rebalance.enabled) {
      if (options.rebalance.check_interval_events < 1) {
        return Status::InvalidArgument(
            "rebalance.check_interval_events must be >= 1");
      }
      if (!(options.rebalance.hot_ratio >= 1.0)) {
        return Status::InvalidArgument("rebalance.hot_ratio must be >= 1.0");
      }
    }
    ShardedEngine engine(options);
    engine.shards_.reserve(options.num_shards);
    for (std::size_t i = 0; i < options.num_shards; ++i) {
      engine.shards_.push_back(std::make_unique<Shard>(
          options.queue_capacity, options.health, factory(i)));
    }
    engine.ResetRouteState();
    return StatusOr<ShardedEngine>(std::move(engine));
  }

  ShardedEngine(ShardedEngine&& other) noexcept
      : options_(other.options_),
        shards_(std::move(other.shards_)),
        workers_(std::move(other.workers_)),
        stop_(std::move(other.stop_)),
        started_(other.started_),
        route_(std::move(other.route_)),
        slot_events_(std::move(other.slot_events_)),
        last_apply_nanos_(std::move(other.last_apply_nanos_)),
        events_since_check_(other.events_since_check_),
        split_rr_(other.split_rr_),
        rebalance_stats_(other.rebalance_stats_),
        last_merge_seconds_(other.last_merge_seconds_),
        merge_cache_(std::move(other.merge_cache_)),
        merge_cache_versions_(std::move(other.merge_cache_versions_)),
        merge_cache_hits_(other.merge_cache_hits_),
        merge_cache_misses_(other.merge_cache_misses_),
        last_merge_cache_hit_(other.last_merge_cache_hit_) {
    other.started_ = false;
    // The moved-from engine keeps its shards_ empty; make its cache
    // unable to answer for shards it no longer owns.
    other.InvalidateMergeCache();
  }

  ShardedEngine& operator=(ShardedEngine&& other) noexcept {
    if (this != &other) {
      if (started_) Finish();
      options_ = other.options_;
      shards_ = std::move(other.shards_);
      workers_ = std::move(other.workers_);
      stop_ = std::move(other.stop_);
      started_ = other.started_;
      route_ = std::move(other.route_);
      slot_events_ = std::move(other.slot_events_);
      last_apply_nanos_ = std::move(other.last_apply_nanos_);
      events_since_check_ = other.events_since_check_;
      split_rr_ = other.split_rr_;
      rebalance_stats_ = other.rebalance_stats_;
      last_merge_seconds_ = other.last_merge_seconds_;
      merge_cache_ = std::move(other.merge_cache_);
      merge_cache_versions_ = std::move(other.merge_cache_versions_);
      merge_cache_hits_ = other.merge_cache_hits_;
      merge_cache_misses_ = other.merge_cache_misses_;
      last_merge_cache_hit_ = other.last_merge_cache_hit_;
      other.started_ = false;
      other.InvalidateMergeCache();
    }
    return *this;
  }

  ~ShardedEngine() {
    if (started_) Finish();
  }

  /// Spawns one worker thread per shard. Idempotent. The engine may be
  /// moved while running: workers reference only heap state.
  void Start() {
    if (started_) return;
    stop_->store(false, std::memory_order_release);
    workers_.reserve(shards_.size());
    for (auto& shard : shards_) {
      workers_.emplace_back(
          [raw = shard.get(), stop = stop_.get(),
           batch_size = options_.batch_size] {
            WorkerLoop(*raw, *stop, batch_size);
          });
    }
    started_ = true;
  }

  /// Enqueues one event on its key's shard, escalating from bounded
  /// spins to bounded yields to short sleeps while that shard's ring is
  /// full (each full encounter counts one stall; each exhausted bounded
  /// wait counts a producer stall in the ring). Blocking by contract —
  /// it does not return until the event is enqueued — but never burns a
  /// core unboundedly. Producer thread only; requires `Start()` to have
  /// been called. Callers that must not block use `TryIngest`.
  void Ingest(const Event& event) {
    Shard& shard = *shards_[ShardOf(Traits::Key(event))];
    if (!shard.ring.PushBounded(event, options_.producer_spin_limit,
                                options_.producer_yield_limit)) {
      shard.stats.queue_full_stalls.fetch_add(1, std::memory_order_relaxed);
      do {
        SleepForMicros(options_.producer_sleep_micros);
      } while (!shard.ring.PushBounded(event, options_.producer_spin_limit,
                                       options_.producer_yield_limit));
    }
    shard.stats.pushed.fetch_add(1, std::memory_order_release);
    MaybeRebalance();
  }

  /// Non-blocking offer: spins briefly at a full ring but never yields
  /// or sleeps. Returns false (counting a rejected offer — the event was
  /// NOT enqueued) so the caller can shed load explicitly. Producer
  /// thread only.
  bool TryIngest(const Event& event) {
    Shard& shard = *shards_[ShardOf(Traits::Key(event))];
    if (!shard.ring.PushBounded(event, options_.producer_spin_limit, 0)) {
      shard.stats.offers_rejected.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    shard.stats.pushed.fetch_add(1, std::memory_order_release);
    MaybeRebalance();
    return true;
  }

  /// Blocks until every pushed event has been applied to its shard's
  /// estimator. Producer thread only. After `Drain()` returns (and until
  /// the next `Ingest`), shard estimators are stable and safe to read
  /// from the producer thread.
  void Drain() {
    for (auto& shard : shards_) {
      const std::uint64_t pushed =
          shard->stats.pushed.load(std::memory_order_relaxed);
      while (shard->stats.consumed.load(std::memory_order_acquire) < pushed) {
        std::this_thread::yield();
      }
    }
  }

  /// `Drain` with a deadline: returns true if every shard caught up
  /// within `timeout_nanos` of the call, false if the wait was cut
  /// short. Producer thread only. Timing goes through `FaultClock` so
  /// the clock-skew fault point exercises this path.
  bool DrainWithDeadline(std::uint64_t timeout_nanos) {
    const std::uint64_t deadline = FaultClock::NowNanos() + timeout_nanos;
    for (auto& shard : shards_) {
      const std::uint64_t pushed =
          shard->stats.pushed.load(std::memory_order_relaxed);
      while (shard->stats.consumed.load(std::memory_order_acquire) < pushed) {
        if (FaultClock::NowNanos() >= deadline) return false;
        std::this_thread::yield();
      }
    }
    return true;
  }

  /// Advances every shard's health state machine from its current
  /// counters. Producer (or any single watchdog) thread only; the
  /// resulting states are published for any thread to read via
  /// `shard_health`.
  void PollHealth() {
    const std::uint64_t now = FaultClock::NowNanos();
    for (auto& shard : shards_) {
      const std::uint64_t pushed =
          shard->stats.pushed.load(std::memory_order_acquire);
      const std::uint64_t consumed =
          shard->stats.consumed.load(std::memory_order_acquire);
      const ShardHealth state = shard->health.Poll(pushed, consumed, now);
      shard->published_health.store(static_cast<int>(state),
                                    std::memory_order_release);
    }
  }

  /// Shard `i`'s health as of the last `PollHealth()` call (healthy
  /// before the first poll). Safe from any thread.
  ShardHealth shard_health(std::size_t i) const {
    return static_cast<ShardHealth>(
        shards_[i]->published_health.load(std::memory_order_acquire));
  }

  /// Deadline-bounded merge-on-query: waits up to `timeout_nanos` total
  /// for shards to catch up, merging each shard that did and skipping —
  /// entirely — each shard that did not (a lagging worker may still be
  /// mutating its estimator, so a partial shard cannot be read safely).
  /// The result is a monotone lower bound on `MergedEstimator()`s
  /// answer, tagged with the skipped backlog as a staleness bound.
  /// Producer thread only, engine running or quiescent.
  DegradedSnapshot<Estimator> MergedEstimatorDegraded(
      std::uint64_t timeout_nanos) {
    const std::uint64_t deadline = FaultClock::NowNanos() + timeout_nanos;
    DegradedSnapshot<Estimator> snapshot;
    for (auto& shard : shards_) {
      const std::uint64_t pushed =
          shard->stats.pushed.load(std::memory_order_relaxed);
      bool caught_up = true;
      std::uint64_t consumed =
          shard->stats.consumed.load(std::memory_order_acquire);
      while (consumed < pushed) {
        if (FaultClock::NowNanos() >= deadline) {
          caught_up = false;
          break;
        }
        std::this_thread::yield();
        consumed = shard->stats.consumed.load(std::memory_order_acquire);
      }
      if (!caught_up) {
        ++snapshot.shards_skipped;
        snapshot.skipped_events += pushed - consumed;
        continue;
      }
      // The consumed acquire-load above synchronizes with the worker's
      // release after its last apply, so this estimator read is stable.
      if (!snapshot.estimator.has_value()) {
        snapshot.estimator = shard->estimator;
      } else {
        Traits::Merge(*snapshot.estimator, shard->estimator);
      }
      ++snapshot.shards_merged;
    }
    return snapshot;
  }

  /// Drains, stops, and joins all workers. Idempotent; the engine can be
  /// restarted with `Start()` afterwards.
  void Finish() {
    if (!started_) return;
    Drain();
    stop_->store(true, std::memory_order_release);
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    started_ = false;
  }

  /// Number of shards.
  std::size_t num_shards() const { return shards_.size(); }

  /// Engine geometry.
  const EngineOptions& options() const { return options_; }

  /// Shard `i`'s estimator. Requires quiescence (after `Drain()` or
  /// `Finish()`, before the next `Ingest`).
  const Estimator& shard_estimator(std::size_t i) const {
    return shards_[i]->estimator;
  }

  /// Merged view of all shards, epoch-cached: each shard's `consumed`
  /// counter doubles as its version, and the cached merge is reused while
  /// every version still matches — repeated queries on a quiescent engine
  /// cost one version sweep instead of a full re-merge. Any advanced
  /// shard triggers a full re-merge (merges are additive, not
  /// subtractive, so partial refresh is not possible).
  ///
  /// Returns a reference into the engine; valid until the next
  /// cache-invalidating call (`MergedEstimator*`, `RestoreFrom`, move).
  /// Requires quiescence, producer thread only — same contract as
  /// `MergedEstimator()`. Records the (hit or miss) latency in
  /// `last_merge_seconds()` and counts the outcome in
  /// `merge_cache_hits()` / `merge_cache_misses()`.
  const Estimator& MergedEstimatorCached() const {
    const auto start = std::chrono::steady_clock::now();
    bool hit = merge_cache_.has_value() &&
               merge_cache_versions_.size() == shards_.size();
    if (hit) {
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (merge_cache_versions_[i] !=
            shards_[i]->stats.consumed.load(std::memory_order_acquire)) {
          hit = false;
          break;
        }
      }
    }
    if (!hit) {
      // Record the version vector BEFORE reading the estimators: under
      // the required quiescence both are stable, and if the contract is
      // ever violated the cache tags a state at least as old as what it
      // stores — a later query re-merges instead of serving stale data.
      merge_cache_versions_.resize(shards_.size());
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        merge_cache_versions_[i] =
            shards_[i]->stats.consumed.load(std::memory_order_acquire);
      }
      Estimator merged = shards_[0]->estimator;
      for (std::size_t i = 1; i < shards_.size(); ++i) {
        Traits::Merge(merged, shards_[i]->estimator);
      }
      merge_cache_ = std::move(merged);
      ++merge_cache_misses_;
    } else {
      ++merge_cache_hits_;
    }
    last_merge_cache_hit_ = hit;
    last_merge_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return *merge_cache_;
  }

  /// Merged view of all shards, by value (the pre-cache API; callers that
  /// can hold a reference should prefer `MergedEstimatorCached()`). Same
  /// contract; serves the copy from the epoch cache.
  Estimator MergedEstimator() const { return MergedEstimatorCached(); }

  /// Drops the cached merge; the next `MergedEstimator*` call re-merges.
  /// Called internally by `RestoreFrom` (restored `consumed` counters
  /// could coincidentally equal the cached versions); public for tests
  /// and benches that need a guaranteed cold merge.
  void InvalidateMergeCache() const {
    merge_cache_.reset();
    merge_cache_versions_.clear();
  }

  /// Cache outcomes of `MergedEstimator*` calls since construction.
  std::uint64_t merge_cache_hits() const { return merge_cache_hits_; }
  std::uint64_t merge_cache_misses() const { return merge_cache_misses_; }

  /// Whether the most recent `MergedEstimator*` call was a cache hit.
  bool last_merge_cache_hit() const { return last_merge_cache_hit_; }

  /// Wall-clock seconds the most recent `MergedEstimator*` call spent
  /// (version sweep only on a hit; full merge on a miss; 0 before the
  /// first call).
  double last_merge_seconds() const { return last_merge_seconds_; }

  /// Sentinel in the dynamic route table: events on this slot
  /// round-robin across all shards.
  static constexpr std::uint32_t kRouteSplit = 0xffffffffu;

  /// Rebalancer counters (all zero while rebalancing is disabled).
  /// Producer thread only, like the route table they describe.
  const RebalanceStats& rebalance_stats() const { return rebalance_stats_; }

  /// Dynamic-routing introspection for tests and benches: the slot
  /// count (0 when static routing is active — rebalance disabled or a
  /// single shard) and slot `i`'s target (`kRouteSplit` for a split
  /// slot). Producer thread only.
  std::size_t route_slots() const { return route_.size(); }
  std::uint32_t route_entry(std::size_t slot) const { return route_[slot]; }

  /// Snapshot of shard `i`'s counters. Safe from any thread.
  ShardCounters shard_counters(std::size_t i) const {
    ShardCounters counters = shards_[i]->stats.Snapshot();
    counters.producer_stalls = shards_[i]->ring.producer_stalls();
    return counters;
  }

  /// Total events pushed across shards. Producer thread only.
  std::uint64_t total_events() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->stats.pushed.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Checkpoints the engine as a manifest at `path` plus one framed
  /// envelope per shard at `path.shard-<i>`, each written atomically and
  /// retried with jittered backoff on transient I/O failure. Requires
  /// quiescence.
  Status CheckpointTo(const std::string& path) const {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const Status status = CheckpointShard(path, i);
      if (!status.ok()) return status;
    }
    return WriteManifest(path);
  }

  /// `CheckpointTo` with the per-shard serialization and writes fanned
  /// out as `kCheckpoint` jobs on `runtime` — the shard payloads are
  /// independent, so they serialize and write in parallel while this
  /// thread waits. The manifest (the commit point of the crash-safety
  /// argument) is still written last, by the calling thread, only after
  /// every shard landed. Same quiescence contract and on-disk layout as
  /// the serial overload; the first shard failure wins.
  Status CheckpointTo(const std::string& path, TaskRuntime& runtime) const {
    std::vector<Status> results(shards_.size(), Status::OK());
    std::vector<TaskHandle> handles;
    handles.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      handles.push_back(
          runtime.Submit(JobClass::kCheckpoint, [this, &path, &results, i] {
            results[i] = CheckpointShard(path, i);
          }));
    }
    for (TaskHandle& handle : handles) handle.Wait();
    for (const Status& status : results) {
      if (!status.ok()) return status;
    }
    return WriteManifest(path);
  }

  /// Submits a `kMergeWarm` job that refreshes the merge-on-query cache
  /// (`MergedEstimatorCached`) off the producer thread, so the next
  /// foreground query is a version-sweep hit instead of a full
  /// re-merge. The cached-merge quiescence contract transfers to the
  /// job: do not ingest or query until the returned handle completes.
  TaskHandle WarmMergeCacheAsync(TaskRuntime& runtime) const {
    return runtime.Submit(JobClass::kMergeWarm,
                          [this] { (void)MergedEstimatorCached(); });
  }

  /// Reads just the manifest of an engine checkpoint, so callers can
  /// learn the shard count before constructing a matching engine.
  /// `kUnavailable` when no checkpoint exists.
  static StatusOr<EngineManifest> ReadManifest(const std::string& path) {
    StatusOr<std::vector<std::uint8_t>> payload =
        ReadCheckpointFile(path, CheckpointTag::kEngineManifest);
    if (!payload.ok()) return payload.status();
    ByteReader reader(payload.value());
    std::uint64_t magic = 0;
    EngineManifest out;
    if (!reader.U64(&magic) || magic != kEngineManifestMagic ||
        !reader.U64(&out.num_shards) || !reader.U64(&out.total_events) ||
        !reader.AtEnd()) {
      return Status::InvalidArgument("corrupt engine manifest");
    }
    return out;
  }

  /// Restores shard estimators (and counters) from a `CheckpointTo`
  /// checkpoint. The engine must not be running, and its shard count must
  /// match the manifest's (use `ReadManifest` to size the engine first).
  Status RestoreFrom(const std::string& path) {
    HIMPACT_CHECK_MSG(!started_, "RestoreFrom requires a stopped engine");
    StatusOr<EngineManifest> manifest = ReadManifest(path);
    if (!manifest.ok()) return manifest.status();
    if (manifest.value().num_shards != shards_.size()) {
      return Status::InvalidArgument(
          "engine checkpoint shard count does not match this engine");
    }
    std::vector<Estimator> restored;
    std::vector<std::uint64_t> restored_events;
    restored.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      StatusOr<std::vector<std::uint8_t>> payload =
          ReadCheckpointFile(ShardPath(path, i), CheckpointTag::kEngineShard);
      if (!payload.ok()) return payload.status();
      ByteReader reader(payload.value());
      std::uint64_t magic = 0;
      std::uint64_t shard_index = 0;
      std::uint64_t num_shards = 0;
      std::uint64_t events = 0;
      if (!reader.U64(&magic) || magic != kEngineShardMagic ||
          !reader.U64(&shard_index) || shard_index != i ||
          !reader.U64(&num_shards) || num_shards != shards_.size() ||
          !reader.U64(&events)) {
        return Status::InvalidArgument("corrupt engine shard checkpoint");
      }
      StatusOr<Estimator> estimator = Traits::Deserialize(reader);
      if (!estimator.ok()) return estimator.status();
      if (!reader.AtEnd()) {
        return Status::InvalidArgument(
            "engine shard checkpoint has trailing bytes");
      }
      restored.push_back(std::move(estimator).value());
      restored_events.push_back(events);
    }
    // All pieces decoded: only now mutate the engine.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->estimator = std::move(restored[i]);
      shards_[i]->stats.pushed.store(restored_events[i],
                                     std::memory_order_relaxed);
      shards_[i]->stats.consumed.store(restored_events[i],
                                       std::memory_order_relaxed);
    }
    // The restored `consumed` counters could coincidentally equal the
    // cached version vector while the estimators changed; never let the
    // cache answer for a different history.
    InvalidateMergeCache();
    // Restored shards carry a different load history than the live run
    // that built the current route table; start routing fresh.
    ResetRouteState();
    return Status::OK();
  }

  /// The per-shard envelope path used by `CheckpointTo`.
  static std::string ShardPath(const std::string& path, std::size_t shard) {
    return path + ".shard-" + std::to_string(shard);
  }

 private:
  struct Shard {
    Shard(std::size_t queue_capacity, const HealthOptions& health_options,
          Estimator est)
        : ring(queue_capacity),
          health(health_options),
          estimator(std::move(est)) {}
    SpscRing<Event> ring;
    ShardStats stats;
    HealthTracker health;
    // Last `PollHealth` verdict, published for cross-thread reads.
    std::atomic<int> published_health{static_cast<int>(ShardHealth::kHealthy)};
    Estimator estimator;
  };

  inline static constexpr std::uint64_t kEngineManifestMagic =
      0x48494d50454e4731ULL;  // "HIMPENG1"
  inline static constexpr std::uint64_t kEngineShardMagic =
      0x48494d5053484431ULL;  // "HIMPSHD1"

  explicit ShardedEngine(const EngineOptions& options) : options_(options) {}

  /// One shard's framed envelope: serialize + atomic write with retry.
  /// Reads only that shard's quiescent state, so the parallel
  /// checkpoint overload runs one of these per `kCheckpoint` job.
  Status CheckpointShard(const std::string& path, std::size_t i) const {
    ByteWriter writer;
    writer.U64(kEngineShardMagic);
    writer.U64(static_cast<std::uint64_t>(i));
    writer.U64(static_cast<std::uint64_t>(shards_.size()));
    writer.U64(shards_[i]->stats.pushed.load(std::memory_order_relaxed));
    Traits::Serialize(shards_[i]->estimator, writer);
    return RetryWithBackoff(options_.checkpoint_retry, [&] {
      return WriteCheckpointFile(ShardPath(path, i),
                                 CheckpointTag::kEngineShard,
                                 writer.buffer());
    });
  }

  Status WriteManifest(const std::string& path) const {
    ByteWriter manifest;
    manifest.U64(kEngineManifestMagic);
    manifest.U64(static_cast<std::uint64_t>(shards_.size()));
    manifest.U64(total_events());
    return RetryWithBackoff(options_.checkpoint_retry, [&] {
      return WriteCheckpointFile(path, CheckpointTag::kEngineManifest,
                                 manifest.buffer());
    });
  }

  /// Routes one key. Static routing (rebalance disabled, or a single
  /// shard) is the legacy modulo; dynamic routing goes through the slot
  /// table and counts the slot for the next load check. Producer thread
  /// only, like its callers.
  std::size_t ShardOf(std::uint64_t key) {
    if (shards_.size() == 1) return 0;
    const std::uint64_t mixed = SplitMix64(key);
    if (route_.empty()) {
      return static_cast<std::size_t>(mixed % shards_.size());
    }
    const std::size_t slot =
        static_cast<std::size_t>(mixed) & (route_.size() - 1);
    ++slot_events_[slot];
    const std::uint32_t target = route_[slot];
    if (target == kRouteSplit) {
      return static_cast<std::size_t>(split_rr_++ % shards_.size());
    }
    return static_cast<std::size_t>(target);
  }

  /// Rebuilds the dynamic-routing state from the options: identity-ish
  /// initial placement (slot i -> shard i mod N), zeroed slot counters,
  /// and the load baseline re-taken from the workers' current
  /// `apply_nanos` (so a restore does not see pre-restore work as a
  /// fresh load delta). `route_` stays empty when rebalancing is off —
  /// that emptiness IS the static/dynamic dispatch in `ShardOf`.
  void ResetRouteState() {
    route_.clear();
    slot_events_.clear();
    last_apply_nanos_.clear();
    events_since_check_ = 0;
    split_rr_ = 0;
    rebalance_stats_ = RebalanceStats{};
    if (!options_.rebalance.enabled || shards_.size() < 2) return;
    std::size_t slots = 8;
    while (slots < options_.rebalance.route_slots) slots <<= 1;
    route_.resize(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      route_[i] = static_cast<std::uint32_t>(i % shards_.size());
    }
    slot_events_.assign(slots, 0);
    last_apply_nanos_.resize(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      last_apply_nanos_[i] =
          shards_[i]->stats.apply_nanos.load(std::memory_order_relaxed);
    }
  }

  void MaybeRebalance() {
    if (route_.empty()) return;
    if (++events_since_check_ < options_.rebalance.check_interval_events) {
      return;
    }
    Rebalance();
  }

  /// One load check (see `RebalanceOptions` for the policy). Reads the
  /// workers' `apply_nanos` counters relaxed — the signal intentionally
  /// lags consumption a little; a backlog only sharpens the skew it
  /// reports. Producer thread only.
  void Rebalance() {
    events_since_check_ = 0;
    ++rebalance_stats_.checks;
    const std::size_t n = shards_.size();
    std::uint64_t total = 0;
    std::size_t hot = 0;
    std::size_t cold = 0;
    std::vector<std::uint64_t> delta(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t now =
          shards_[i]->stats.apply_nanos.load(std::memory_order_relaxed);
      delta[i] = now - last_apply_nanos_[i];
      last_apply_nanos_[i] = now;
      total += delta[i];
      if (delta[i] > delta[hot]) hot = i;
      if (delta[i] < delta[cold]) cold = i;
    }
    const double mean = static_cast<double>(total) / static_cast<double>(n);
    if (total > 0 && hot != cold &&
        static_cast<double>(delta[hot]) >
            options_.rebalance.hot_ratio * mean) {
      // The hot shard's busiest slot is the candidate. Slots already
      // split route nowhere in particular, so they never re-match here.
      std::uint64_t hot_events = 0;
      std::size_t busiest = route_.size();
      for (std::size_t s = 0; s < route_.size(); ++s) {
        if (route_[s] != static_cast<std::uint32_t>(hot)) continue;
        hot_events += slot_events_[s];
        if (busiest == route_.size() ||
            slot_events_[s] > slot_events_[busiest]) {
          busiest = s;
        }
      }
      if (busiest < route_.size() && slot_events_[busiest] > 0) {
        if (slot_events_[busiest] * 2 >= hot_events) {
          // This one slot alone carries the hot shard: no placement
          // can help, so spread its events across every shard.
          route_[busiest] = kRouteSplit;
          ++rebalance_stats_.slot_splits;
        } else {
          route_[busiest] = static_cast<std::uint32_t>(cold);
          ++rebalance_stats_.slot_moves;
        }
      }
    }
    std::fill(slot_events_.begin(), slot_events_.end(), 0);
  }

  static void WorkerLoop(Shard& shard, const std::atomic<bool>& stop,
                         std::size_t batch_size) {
    std::vector<Event> batch(batch_size);
    BatchArena arena;  // worker-owned scratch, reused for every batch
    while (true) {
      // Fault hook: a firing `worker-stall` freezes this worker for the
      // armed parameter (microseconds), simulating a wedged shard so the
      // health watchdog and degraded queries can be exercised.
      if (FaultRegistry::Global().AnyArmed() &&
          FaultRegistry::Global().ShouldFire(FaultPoint::kWorkerStall)) {
        SleepForMicros(
            FaultRegistry::Global().param(FaultPoint::kWorkerStall));
      }
      const std::size_t n = shard.ring.PopBatch(batch.data(), batch.size());
      if (n == 0) {
        // `stop` is set only after the producer stops pushing (Finish
        // drains first), so an empty ring after seeing the flag is final.
        if (stop.load(std::memory_order_acquire)) break;
        std::this_thread::yield();
        continue;
      }
      // The whole batch goes to the concrete estimator in one statically
      // dispatched call (engine/traits.h). The two clock reads cost ~40ns
      // per batch — noise next to applying hundreds of events — and buy
      // an exact ns/event figure for the stats surface.
      const auto apply_start = std::chrono::steady_clock::now();
      Traits::ApplyBatch(shard.estimator, batch.data(), n, arena);
      const auto apply_nanos =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - apply_start)
              .count();
      shard.stats.apply_nanos.fetch_add(
          static_cast<std::uint64_t>(apply_nanos), std::memory_order_relaxed);
      // Single writer: a plain load+store max is race-free here.
      if (n > shard.stats.max_batch.load(std::memory_order_relaxed)) {
        shard.stats.max_batch.store(n, std::memory_order_relaxed);
      }
      shard.stats.consumed.fetch_add(n, std::memory_order_release);
      shard.stats.batches.fetch_add(1, std::memory_order_relaxed);
    }
  }

  EngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::unique_ptr<std::atomic<bool>> stop_ =
      std::make_unique<std::atomic<bool>>(false);
  bool started_ = false;

  // Skew-aware dynamic routing (producer thread only; empty `route_`
  // means static modulo routing — see ShardOf/ResetRouteState).
  std::vector<std::uint32_t> route_;
  std::vector<std::uint64_t> slot_events_;
  std::vector<std::uint64_t> last_apply_nanos_;
  std::uint64_t events_since_check_ = 0;
  std::uint64_t split_rr_ = 0;
  RebalanceStats rebalance_stats_;

  mutable double last_merge_seconds_ = 0.0;

  // Epoch-cached merge-on-query (producer-thread state, guarded by the
  // same quiescence contract as the shard estimators themselves): the
  // merged snapshot plus the per-shard `consumed` versions it reflects.
  mutable std::optional<Estimator> merge_cache_;
  mutable std::vector<std::uint64_t> merge_cache_versions_;
  mutable std::uint64_t merge_cache_hits_ = 0;
  mutable std::uint64_t merge_cache_misses_ = 0;
  mutable bool last_merge_cache_hit_ = false;
};

}  // namespace himpact

#endif  // HIMPACT_ENGINE_SHARDED_ENGINE_H_
