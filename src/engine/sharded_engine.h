#ifndef HIMPACT_ENGINE_SHARDED_ENGINE_H_
#define HIMPACT_ENGINE_SHARDED_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "common/envelope.h"
#include "common/status.h"
#include "engine/spsc_ring.h"
#include "engine/stats.h"
#include "hash/mix.h"
#include "io/checkpoint.h"

/// \file
/// Parallel sharded ingestion engine.
///
/// `ShardedEngine<Traits>` hash-partitions a stream of events across N
/// worker shards. Each shard owns a private estimator instance (built by
/// a caller-supplied factory so every shard gets identical parameters and
/// seed), fed through a bounded SPSC ring buffer with batched dequeue.
/// Queries are answered by merging the shard estimators — which is why
/// only mergeable estimators can be sharded (see docs/ALGORITHMS.md,
/// "Mergeability").
///
/// Threading model: exactly one producer thread calls `Ingest`; each
/// shard has one worker thread applying events. `Drain()` is a barrier
/// (every pushed event applied) after which the producer may read shard
/// estimators, take a merged snapshot, or checkpoint, and then resume
/// ingesting. All waiting is yield-based so the engine degrades
/// gracefully when shards outnumber cores.
///
/// Checkpoint layout (crash-safe, PR 1 conventions): one manifest
/// envelope at `<path>` plus N per-shard framed envelopes at
/// `<path>.shard-<i>`, each written atomically. Shards are written
/// before the manifest so a torn checkpoint is detected by manifest
/// validation on restore.

namespace himpact {

/// Engine geometry. `num_shards` workers, each behind a ring of
/// `queue_capacity` events (rounded up to a power of two), dequeued in
/// batches of up to `batch_size`.
struct EngineOptions {
  std::size_t num_shards = 2;
  std::size_t queue_capacity = 4096;
  std::size_t batch_size = 256;
};

/// What an engine checkpoint's manifest records.
struct EngineManifest {
  std::uint64_t num_shards = 0;
  std::uint64_t total_events = 0;
};

/// A `Traits` type adapts one estimator family to the engine:
///
/// ```
/// struct MyTraits {
///   using Event = ...;       // copyable stream element
///   using Estimator = ...;   // copyable, mergeable estimator
///   static std::uint64_t Key(const Event&);          // partition key
///   static void Apply(Estimator&, const Event&);     // ingest one event
///   static void Merge(Estimator&, const Estimator&); // into <- from
///   // Only needed when CheckpointTo/RestoreFrom are used:
///   static void Serialize(const Estimator&, ByteWriter&);
///   static StatusOr<Estimator> Deserialize(ByteReader&);
/// };
/// ```
///
/// Ready-made traits for the repo's estimators live in engine/traits.h.
template <typename Traits>
class ShardedEngine {
 public:
  using Event = typename Traits::Event;
  using Estimator = typename Traits::Estimator;

  /// Builds an engine whose shard `i` runs `factory(i)`. The factory must
  /// hand every shard identical parameters and seed, or later merges will
  /// die on a compatibility check. Workers are not started yet; call
  /// `Start()`.
  template <typename Factory>
  static StatusOr<ShardedEngine> Create(const EngineOptions& options,
                                        Factory&& factory) {
    if (options.num_shards < 1) {
      return Status::InvalidArgument("num_shards must be >= 1");
    }
    if (options.batch_size < 1) {
      return Status::InvalidArgument("batch_size must be >= 1");
    }
    if (options.queue_capacity < options.batch_size) {
      return Status::InvalidArgument("queue_capacity must be >= batch_size");
    }
    ShardedEngine engine(options);
    engine.shards_.reserve(options.num_shards);
    for (std::size_t i = 0; i < options.num_shards; ++i) {
      engine.shards_.push_back(
          std::make_unique<Shard>(options.queue_capacity, factory(i)));
    }
    return StatusOr<ShardedEngine>(std::move(engine));
  }

  ShardedEngine(ShardedEngine&& other) noexcept
      : options_(other.options_),
        shards_(std::move(other.shards_)),
        workers_(std::move(other.workers_)),
        stop_(std::move(other.stop_)),
        started_(other.started_),
        last_merge_seconds_(other.last_merge_seconds_) {
    other.started_ = false;
  }

  ShardedEngine& operator=(ShardedEngine&& other) noexcept {
    if (this != &other) {
      if (started_) Finish();
      options_ = other.options_;
      shards_ = std::move(other.shards_);
      workers_ = std::move(other.workers_);
      stop_ = std::move(other.stop_);
      started_ = other.started_;
      last_merge_seconds_ = other.last_merge_seconds_;
      other.started_ = false;
    }
    return *this;
  }

  ~ShardedEngine() {
    if (started_) Finish();
  }

  /// Spawns one worker thread per shard. Idempotent. The engine may be
  /// moved while running: workers reference only heap state.
  void Start() {
    if (started_) return;
    stop_->store(false, std::memory_order_release);
    workers_.reserve(shards_.size());
    for (auto& shard : shards_) {
      workers_.emplace_back(
          [raw = shard.get(), stop = stop_.get(),
           batch_size = options_.batch_size] {
            WorkerLoop(*raw, *stop, batch_size);
          });
    }
    started_ = true;
  }

  /// Enqueues one event on its key's shard, yielding (and counting a
  /// stall) while that shard's ring is full. Producer thread only;
  /// requires `Start()` to have been called (otherwise a full ring would
  /// spin forever).
  void Ingest(const Event& event) {
    Shard& shard = *shards_[ShardOf(Traits::Key(event))];
    if (!shard.ring.TryPush(event)) {
      shard.stats.queue_full_stalls.fetch_add(1, std::memory_order_relaxed);
      do {
        std::this_thread::yield();
      } while (!shard.ring.TryPush(event));
    }
    shard.stats.pushed.fetch_add(1, std::memory_order_release);
  }

  /// Blocks until every pushed event has been applied to its shard's
  /// estimator. Producer thread only. After `Drain()` returns (and until
  /// the next `Ingest`), shard estimators are stable and safe to read
  /// from the producer thread.
  void Drain() {
    for (auto& shard : shards_) {
      const std::uint64_t pushed =
          shard->stats.pushed.load(std::memory_order_relaxed);
      while (shard->stats.consumed.load(std::memory_order_acquire) < pushed) {
        std::this_thread::yield();
      }
    }
  }

  /// Drains, stops, and joins all workers. Idempotent; the engine can be
  /// restarted with `Start()` afterwards.
  void Finish() {
    if (!started_) return;
    Drain();
    stop_->store(true, std::memory_order_release);
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    started_ = false;
  }

  /// Number of shards.
  std::size_t num_shards() const { return shards_.size(); }

  /// Engine geometry.
  const EngineOptions& options() const { return options_; }

  /// Shard `i`'s estimator. Requires quiescence (after `Drain()` or
  /// `Finish()`, before the next `Ingest`).
  const Estimator& shard_estimator(std::size_t i) const {
    return shards_[i]->estimator;
  }

  /// Merged view of all shards: a copy of shard 0's estimator with every
  /// other shard merged in. Requires quiescence. Records the merge
  /// latency, readable via `last_merge_seconds()`.
  Estimator MergedEstimator() const {
    const auto start = std::chrono::steady_clock::now();
    Estimator merged = shards_[0]->estimator;
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      Traits::Merge(merged, shards_[i]->estimator);
    }
    last_merge_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return merged;
  }

  /// Wall-clock seconds the most recent `MergedEstimator()` call spent
  /// merging (0 before the first call).
  double last_merge_seconds() const { return last_merge_seconds_; }

  /// Snapshot of shard `i`'s counters. Safe from any thread.
  ShardCounters shard_counters(std::size_t i) const {
    return shards_[i]->stats.Snapshot();
  }

  /// Total events pushed across shards. Producer thread only.
  std::uint64_t total_events() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->stats.pushed.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Checkpoints the engine as a manifest at `path` plus one framed
  /// envelope per shard at `path.shard-<i>`, each written atomically.
  /// Requires quiescence.
  Status CheckpointTo(const std::string& path) const {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      ByteWriter writer;
      writer.U64(kEngineShardMagic);
      writer.U64(static_cast<std::uint64_t>(i));
      writer.U64(static_cast<std::uint64_t>(shards_.size()));
      writer.U64(shards_[i]->stats.pushed.load(std::memory_order_relaxed));
      Traits::Serialize(shards_[i]->estimator, writer);
      const Status status = WriteCheckpointFile(
          ShardPath(path, i), CheckpointTag::kEngineShard, writer.buffer());
      if (!status.ok()) return status;
    }
    ByteWriter manifest;
    manifest.U64(kEngineManifestMagic);
    manifest.U64(static_cast<std::uint64_t>(shards_.size()));
    manifest.U64(total_events());
    return WriteCheckpointFile(path, CheckpointTag::kEngineManifest,
                               manifest.buffer());
  }

  /// Reads just the manifest of an engine checkpoint, so callers can
  /// learn the shard count before constructing a matching engine.
  /// `kUnavailable` when no checkpoint exists.
  static StatusOr<EngineManifest> ReadManifest(const std::string& path) {
    StatusOr<std::vector<std::uint8_t>> payload =
        ReadCheckpointFile(path, CheckpointTag::kEngineManifest);
    if (!payload.ok()) return payload.status();
    ByteReader reader(payload.value());
    std::uint64_t magic = 0;
    EngineManifest out;
    if (!reader.U64(&magic) || magic != kEngineManifestMagic ||
        !reader.U64(&out.num_shards) || !reader.U64(&out.total_events) ||
        !reader.AtEnd()) {
      return Status::InvalidArgument("corrupt engine manifest");
    }
    return out;
  }

  /// Restores shard estimators (and counters) from a `CheckpointTo`
  /// checkpoint. The engine must not be running, and its shard count must
  /// match the manifest's (use `ReadManifest` to size the engine first).
  Status RestoreFrom(const std::string& path) {
    HIMPACT_CHECK_MSG(!started_, "RestoreFrom requires a stopped engine");
    StatusOr<EngineManifest> manifest = ReadManifest(path);
    if (!manifest.ok()) return manifest.status();
    if (manifest.value().num_shards != shards_.size()) {
      return Status::InvalidArgument(
          "engine checkpoint shard count does not match this engine");
    }
    std::vector<Estimator> restored;
    std::vector<std::uint64_t> restored_events;
    restored.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      StatusOr<std::vector<std::uint8_t>> payload =
          ReadCheckpointFile(ShardPath(path, i), CheckpointTag::kEngineShard);
      if (!payload.ok()) return payload.status();
      ByteReader reader(payload.value());
      std::uint64_t magic = 0;
      std::uint64_t shard_index = 0;
      std::uint64_t num_shards = 0;
      std::uint64_t events = 0;
      if (!reader.U64(&magic) || magic != kEngineShardMagic ||
          !reader.U64(&shard_index) || shard_index != i ||
          !reader.U64(&num_shards) || num_shards != shards_.size() ||
          !reader.U64(&events)) {
        return Status::InvalidArgument("corrupt engine shard checkpoint");
      }
      StatusOr<Estimator> estimator = Traits::Deserialize(reader);
      if (!estimator.ok()) return estimator.status();
      if (!reader.AtEnd()) {
        return Status::InvalidArgument(
            "engine shard checkpoint has trailing bytes");
      }
      restored.push_back(std::move(estimator).value());
      restored_events.push_back(events);
    }
    // All pieces decoded: only now mutate the engine.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->estimator = std::move(restored[i]);
      shards_[i]->stats.pushed.store(restored_events[i],
                                     std::memory_order_relaxed);
      shards_[i]->stats.consumed.store(restored_events[i],
                                       std::memory_order_relaxed);
    }
    return Status::OK();
  }

  /// The per-shard envelope path used by `CheckpointTo`.
  static std::string ShardPath(const std::string& path, std::size_t shard) {
    return path + ".shard-" + std::to_string(shard);
  }

 private:
  struct Shard {
    Shard(std::size_t queue_capacity, Estimator est)
        : ring(queue_capacity), estimator(std::move(est)) {}
    SpscRing<Event> ring;
    ShardStats stats;
    Estimator estimator;
  };

  inline static constexpr std::uint64_t kEngineManifestMagic =
      0x48494d50454e4731ULL;  // "HIMPENG1"
  inline static constexpr std::uint64_t kEngineShardMagic =
      0x48494d5053484431ULL;  // "HIMPSHD1"

  explicit ShardedEngine(const EngineOptions& options) : options_(options) {}

  std::size_t ShardOf(std::uint64_t key) const {
    if (shards_.size() == 1) return 0;
    return static_cast<std::size_t>(SplitMix64(key) % shards_.size());
  }

  static void WorkerLoop(Shard& shard, const std::atomic<bool>& stop,
                         std::size_t batch_size) {
    std::vector<Event> batch(batch_size);
    while (true) {
      const std::size_t n = shard.ring.PopBatch(batch.data(), batch.size());
      if (n == 0) {
        // `stop` is set only after the producer stops pushing (Finish
        // drains first), so an empty ring after seeing the flag is final.
        if (stop.load(std::memory_order_acquire)) break;
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        Traits::Apply(shard.estimator, batch[i]);
      }
      shard.stats.consumed.fetch_add(n, std::memory_order_release);
      shard.stats.batches.fetch_add(1, std::memory_order_relaxed);
    }
  }

  EngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::unique_ptr<std::atomic<bool>> stop_ =
      std::make_unique<std::atomic<bool>>(false);
  bool started_ = false;
  mutable double last_merge_seconds_ = 0.0;
};

}  // namespace himpact

#endif  // HIMPACT_ENGINE_SHARDED_ENGINE_H_
