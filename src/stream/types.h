#ifndef HIMPACT_STREAM_TYPES_H_
#define HIMPACT_STREAM_TYPES_H_

#include <cstdint>
#include <initializer_list>

#include "common/check.h"

/// \file
/// Stream element types for the author/paper/citation model of Section 2.2.
///
/// A paper is a tuple `(p, a^p_1..a^p_y, c_p)`; the paper assumes a fixed
/// maximum number of authors `x` per paper, which we fix at
/// `kMaxAuthorsPerPaper` to keep `PaperTuple` allocation-free.
///
/// Both element types are small and trivially copyable on purpose: the
/// sharded engine (`engine/sharded_engine.h`) moves them through
/// fixed-size SPSC ring buffers by value, and the text formats in
/// `io/stream_io.h` round-trip them field by field. The partition key
/// for sharding is `paper` in both cases (see `engine/traits.h`), so
/// every update to one paper lands on the same shard.

namespace himpact {

/// Identifier of an author (a user in the impact setting).
using AuthorId = std::uint64_t;

/// Identifier of a paper (a publication/tweet/post).
using PaperId = std::uint64_t;

/// The paper's bound `x` on authors per paper (Section 2.2).
inline constexpr int kMaxAuthorsPerPaper = 8;

/// A fixed-capacity inline list of a paper's authors.
class AuthorList {
 public:
  AuthorList() = default;

  /// Builds from an initializer list. Requires size <= kMaxAuthorsPerPaper.
  AuthorList(std::initializer_list<AuthorId> authors) {
    for (const AuthorId author : authors) PushBack(author);
  }

  /// Appends an author. Requires `size() < kMaxAuthorsPerPaper`.
  void PushBack(AuthorId author) {
    HIMPACT_CHECK(size_ < kMaxAuthorsPerPaper);
    authors_[static_cast<std::size_t>(size_)] = author;
    ++size_;
  }

  /// Number of authors.
  int size() const { return size_; }

  /// True iff no authors are present.
  bool empty() const { return size_ == 0; }

  /// The `i`-th author. Requires `0 <= i < size()`.
  AuthorId operator[](int i) const {
    HIMPACT_DCHECK(i >= 0 && i < size_);
    return authors_[static_cast<std::size_t>(i)];
  }

  /// Iterators over the authors present.
  const AuthorId* begin() const { return authors_; }
  const AuthorId* end() const { return authors_ + size_; }

  /// True iff `author` appears in the list.
  bool Contains(AuthorId author) const {
    for (const AuthorId a : *this) {
      if (a == author) return true;
    }
    return false;
  }

 private:
  AuthorId authors_[kMaxAuthorsPerPaper] = {};
  int size_ = 0;
};

/// One aggregate-model stream element: a paper with its final citation
/// count (Section 2.3, aggregate model).
struct PaperTuple {
  PaperId paper = 0;
  AuthorList authors;
  std::uint64_t citations = 0;
};

/// One cash-register stream element: an update `c_p += delta` for paper
/// `p` (Section 2.3, cash-register model). `delta` is positive in the
/// cash-register model; the sketches beneath also accept deletions.
struct CitationEvent {
  PaperId paper = 0;
  std::int64_t delta = 1;
};

}  // namespace himpact

#endif  // HIMPACT_STREAM_TYPES_H_
