#ifndef HIMPACT_STREAM_EXPAND_H_
#define HIMPACT_STREAM_EXPAND_H_

#include <cstdint>
#include <vector>

#include "random/rng.h"
#include "stream/types.h"

/// \file
/// Adapters between the paper's stream models (Section 2.3):
/// aggregate value streams, random-order streams, and cash-register
/// update streams.

namespace himpact {

/// An aggregate stream of one user: the sequence of per-publication
/// response counts `R(i, j)` in arrival order.
using AggregateStream = std::vector<std::uint64_t>;

/// A cash-register stream: a sequence of `(paper, +delta)` updates.
using CashRegisterStream = std::vector<CitationEvent>;

/// A stream of papers with authors (the heavy-hitter input of Section 4).
using PaperStream = std::vector<PaperTuple>;

/// How a cash-register expansion interleaves the unit updates of
/// different papers.
enum class InterleavePolicy {
  /// All updates of paper 0 first, then paper 1, ... (adversarial for
  /// samplers that rely on mixing).
  kContiguous,
  /// Updates are globally shuffled (the natural "responses arrive over
  /// time" order).
  kShuffled,
  /// Round-robin over papers, one unit at a time (maximally interleaved).
  kRoundRobin,
};

/// Expands aggregate counts into a cash-register stream of unit updates:
/// paper `j` (0-based) receives `values[j]` updates of `+1`.
CashRegisterStream ExpandToCashRegister(const AggregateStream& values,
                                        InterleavePolicy policy, Rng& rng);

/// Expands aggregate counts into a cash-register stream with geometric
/// batch sizes (models bursts: each event carries `delta >= 1`).
CashRegisterStream ExpandToBatchedCashRegister(const AggregateStream& values,
                                               double mean_batch, Rng& rng);

/// Returns a uniformly random permutation of `values` (the random-order
/// model of Section 3.2).
AggregateStream ToRandomOrder(AggregateStream values, Rng& rng);

/// Aggregates a cash-register stream back into per-paper totals (the
/// offline reference used by tests and experiments). Paper ids must be
/// `< num_papers`.
std::vector<std::uint64_t> AggregateCitations(const CashRegisterStream& stream,
                                              std::uint64_t num_papers);

}  // namespace himpact

#endif  // HIMPACT_STREAM_EXPAND_H_
