#include "stream/expand.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace himpact {

CashRegisterStream ExpandToCashRegister(const AggregateStream& values,
                                        InterleavePolicy policy, Rng& rng) {
  std::uint64_t total = 0;
  for (const std::uint64_t v : values) total += v;

  CashRegisterStream stream;
  stream.reserve(total);
  switch (policy) {
    case InterleavePolicy::kContiguous:
    case InterleavePolicy::kShuffled: {
      for (std::size_t paper = 0; paper < values.size(); ++paper) {
        for (std::uint64_t u = 0; u < values[paper]; ++u) {
          stream.push_back(CitationEvent{paper, 1});
        }
      }
      if (policy == InterleavePolicy::kShuffled) {
        Shuffle(stream, rng);
      }
      break;
    }
    case InterleavePolicy::kRoundRobin: {
      std::vector<std::uint64_t> remaining = values;
      bool any = true;
      while (any) {
        any = false;
        for (std::size_t paper = 0; paper < remaining.size(); ++paper) {
          if (remaining[paper] > 0) {
            --remaining[paper];
            stream.push_back(CitationEvent{paper, 1});
            any = true;
          }
        }
      }
      break;
    }
  }
  return stream;
}

CashRegisterStream ExpandToBatchedCashRegister(const AggregateStream& values,
                                               double mean_batch, Rng& rng) {
  HIMPACT_CHECK(mean_batch >= 1.0);
  CashRegisterStream stream;
  for (std::size_t paper = 0; paper < values.size(); ++paper) {
    std::uint64_t remaining = values[paper];
    while (remaining > 0) {
      // Geometric batch with the requested mean, capped by the remainder.
      std::uint64_t batch = 1;
      while (batch < remaining && rng.Bernoulli(1.0 - 1.0 / mean_batch)) {
        ++batch;
      }
      batch = std::min(batch, remaining);
      stream.push_back(
          CitationEvent{paper, static_cast<std::int64_t>(batch)});
      remaining -= batch;
    }
  }
  Shuffle(stream, rng);
  return stream;
}

AggregateStream ToRandomOrder(AggregateStream values, Rng& rng) {
  Shuffle(values, rng);
  return values;
}

std::vector<std::uint64_t> AggregateCitations(const CashRegisterStream& stream,
                                              std::uint64_t num_papers) {
  std::vector<std::uint64_t> totals(num_papers, 0);
  for (const CitationEvent& event : stream) {
    HIMPACT_CHECK(event.paper < num_papers);
    HIMPACT_CHECK(event.delta >= 0 ||
                  totals[event.paper] >=
                      static_cast<std::uint64_t>(-event.delta));
    totals[event.paper] =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(
            totals[event.paper]) + event.delta);
  }
  return totals;
}

}  // namespace himpact
