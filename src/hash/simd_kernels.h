#ifndef HIMPACT_HASH_SIMD_KERNELS_H_
#define HIMPACT_HASH_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "hash/cpu_features.h"

/// \file
/// Hand-vectorized batch kernels behind the `cpu_features.h` dispatch.
///
/// Every kernel here is value-exact: it computes the same canonical field
/// elements / bucket indices as the scalar batch path it replaces, so the
/// sketch state after a batch is byte-identical whichever path ran
/// (`batch_equivalence_test` asserts this under both dispatch levels).
/// The exactness argument, per kernel:
///
///   - Mersenne-61 products are formed as full 64x64->128 multiplies from
///     32-bit limbs (`_mm256_mul_epu32`), then folded with the same
///     shift/mask/conditional-subtract schedule as `ModMersenne61` — all
///     integer ops, no rounding anywhere.
///   - Barrett reduction mirrors `BarrettMod` (reciprocal multiply,
///     wrapping `x - q*d`, fixup subtracts). The quotient undershoots by
///     at most 3, so three conditional-subtract rounds replace the scalar
///     fixup loop. Vector lanes compare signed, hence the `d < 2^31`
///     guard at the dispatch sites: every compared value then fits well
///     below 2^62.
///   - Tabulation hashing is pure XOR of gathered table words.
///   - The EH level search runs the identical `powers[b+half] <= x`
///     halving schedule with `_CMP_LE_OQ` compares on the same doubles.
///
/// The kernels only exist on x86_64 (`HIMPACT_HAVE_AVX2_KERNELS`); they
/// are compiled with `__attribute__((target("avx2")))` so the rest of the
/// translation unit — and the build — stays baseline-ISA. Callers must
/// check `Avx2Active()` before calling.

namespace himpact::simd {

#if defined(__x86_64__) || defined(_M_X64)
#define HIMPACT_HAVE_AVX2_KERNELS 1

/// Tabulation hash of `n` keys. `tables` is the contiguous 8x256 table
/// block (`tables[byte * 256 + value]`), as laid out by `TabulationHash`.
void TabulationHashBatchAvx2(const std::uint64_t* tables,
                             const std::uint64_t* keys, std::uint64_t* out,
                             std::size_t n);

/// Degree-1 Horner over GF(2^61-1) then Barrett reduction into
/// `[0, range)`: the k == 2 fast path of `PairwiseRangeHash::HashBatch`.
/// Requires `range < 2^31` and `barrett == ~0ULL / range`.
void PairwiseRangeHashBatchAvx2(std::uint64_t a0, std::uint64_t a1,
                                std::uint64_t range, std::uint64_t barrett,
                                const std::uint64_t* keys, std::uint64_t* out,
                                std::size_t n);

/// One count-sketch row over a key tile: 2-wise bucket polynomial
/// (Barrett-reduced into `[0, width)`) and 4-wise sign polynomial
/// (parity mapped to +/-1). Requires `width < 2^31` and
/// `barrett == ~0ULL / width`. `bucket_coeffs` holds a_0, a_1;
/// `sign_coeffs` holds a_0..a_3.
void CountSketchRowHashBatchAvx2(const std::uint64_t* bucket_coeffs,
                                 const std::uint64_t* sign_coeffs,
                                 std::uint64_t width, std::uint64_t barrett,
                                 const std::uint64_t* keys,
                                 std::uint64_t* buckets, std::int64_t* signs,
                                 std::size_t n);

/// Last-power-<=x level search over the EH geometric grid: for each
/// value, the index of the largest `powers[i] <= (double)value` reachable
/// by the halving schedule (identical to the scalar branchless search in
/// `ExponentialHistogramEstimator::AddBatch`). Requires `levels >= 1`.
void EhLevelSearchAvx2(const double* powers, std::size_t levels,
                       const std::uint64_t* values, std::uint64_t* out_levels,
                       std::size_t n);

#endif  // x86_64

/// True when the AVX2 kernels are compiled in and the active dispatch
/// level selects them. Callers gate every kernel call on this.
inline bool Avx2Active() {
#ifdef HIMPACT_HAVE_AVX2_KERNELS
  return ActiveSimdLevel() == SimdLevel::kAvx2;
#else
  return false;
#endif
}

}  // namespace himpact::simd

#endif  // HIMPACT_HASH_SIMD_KERNELS_H_
