#include "hash/simd_kernels.h"

#ifdef HIMPACT_HAVE_AVX2_KERNELS

#include <immintrin.h>

#include "hash/k_independent.h"

// Every function in this file carries target("avx2") so the build stays
// baseline-ISA outside it; dispatch (cpu_features.h) guarantees these
// bodies only execute on hosts with AVX2.
#define HIMPACT_AVX2 __attribute__((target("avx2")))

namespace himpact::simd {
namespace {

// 64x64 -> 128-bit multiply per lane from 32-bit limbs. With
// a*b = (aH*bH)<<64 + (aH*bL + aL*bH)<<32 + aL*bL, the carry chain below
// never overflows 64 bits: hl + (ll>>32) <= (2^32-1)^2 + 2^32-1 < 2^64,
// and likewise for the cross-term accumulation.
struct U128x4 {
  __m256i hi;
  __m256i lo;
};

HIMPACT_AVX2 inline U128x4 Mul64(__m256i a, __m256i b) {
  const __m256i mask32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i hl = _mm256_mul_epu32(a_hi, b);
  const __m256i lh = _mm256_mul_epu32(a, b_hi);
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i t = _mm256_add_epi64(hl, _mm256_srli_epi64(ll, 32));
  const __m256i t2 = _mm256_add_epi64(lh, _mm256_and_si256(t, mask32));
  U128x4 out;
  out.lo = _mm256_or_si256(_mm256_slli_epi64(t2, 32),
                           _mm256_and_si256(ll, mask32));
  out.hi = _mm256_add_epi64(hh, _mm256_add_epi64(_mm256_srli_epi64(t, 32),
                                                 _mm256_srli_epi64(t2, 32)));
  return out;
}

// x - d where x >= d, else x. Signed compare: all call sites keep both
// operands < 2^62, so the sign bit is never set.
HIMPACT_AVX2 inline __m256i CondSub(__m256i x, __m256i d) {
  const __m256i lt = _mm256_cmpgt_epi64(d, x);  // lanes where x < d
  return _mm256_sub_epi64(x, _mm256_andnot_si256(lt, d));
}

HIMPACT_AVX2 inline __m256i M61v() {
  return _mm256_set1_epi64x(static_cast<long long>(kMersenne61));
}

// x mod (2^61-1) for arbitrary u64 x: one fold (hi <= 7) plus one
// conditional subtract; canonical result in [0, 2^61-1).
HIMPACT_AVX2 inline __m256i ModRawM61(__m256i x) {
  const __m256i m61 = M61v();
  const __m256i sum =
      _mm256_add_epi64(_mm256_and_si256(x, m61), _mm256_srli_epi64(x, 61));
  return CondSub(sum, m61);
}

// (a * b) mod (2^61-1) for a, b < 2^61: the 122-bit product folds as
// x>>61 = (hi<<3)|(lo>>61) < 2^61, so lo61 + fold < 2^62 and two
// conditional subtracts canonicalize — the same schedule as the scalar
// ModMersenne61 (whose second fold term is zero for these inputs).
HIMPACT_AVX2 inline __m256i MulModM61(__m256i a, __m256i b) {
  const __m256i m61 = M61v();
  const U128x4 p = Mul64(a, b);
  const __m256i fold = _mm256_or_si256(_mm256_slli_epi64(p.hi, 3),
                                       _mm256_srli_epi64(p.lo, 61));
  const __m256i sum = _mm256_add_epi64(_mm256_and_si256(p.lo, m61), fold);
  return CondSub(CondSub(sum, m61), m61);
}

// (a + b) mod (2^61-1) for canonical a, b.
HIMPACT_AVX2 inline __m256i AddModM61(__m256i a, __m256i b) {
  return CondSub(_mm256_add_epi64(a, b), M61v());
}

// u64 -> f64, 4 lanes. AVX2 has no packed u64 convert, so the lanes
// convert scalar-wise — exactly the scalar path's static_cast. (The
// 2^52 magic-constant OR/SUB trick measured slower here: its per-group
// range test breaks the search loop's scheduling.)
HIMPACT_AVX2 inline __m256d U64ToPd(const std::uint64_t* v) {
  return _mm256_set_pd(static_cast<double>(v[3]), static_cast<double>(v[2]),
                       static_cast<double>(v[1]), static_cast<double>(v[0]));
}

// BarrettMod(x, d, m) for x < 2^61, d < 2^31, m = ~0ULL/d. The scalar
// quotient undershoots by at most 3, so r = x - q*d < 4d < 2^33 and
// three conditional-subtract rounds replace the fixup loop exactly.
// q*d mod 2^64 needs only two 32x32 multiplies because d < 2^32.
HIMPACT_AVX2 inline __m256i BarrettModV(__m256i x, __m256i d, __m256i m) {
  const __m256i q = Mul64(x, m).hi;
  const __m256i qd = _mm256_add_epi64(
      _mm256_mul_epu32(q, d),
      _mm256_slli_epi64(_mm256_mul_epu32(_mm256_srli_epi64(q, 32), d), 32));
  __m256i r = _mm256_sub_epi64(x, qd);
  r = CondSub(r, d);
  r = CondSub(r, d);
  return CondSub(r, d);
}

}  // namespace

HIMPACT_AVX2 void TabulationHashBatchAvx2(const std::uint64_t* tables,
                                          const std::uint64_t* keys,
                                          std::uint64_t* out, std::size_t n) {
  const __m256i byte_mask = _mm256_set1_epi64x(0xff);
  const auto* base = reinterpret_cast<const long long*>(tables);
  std::size_t i = 0;
  // Two 4-lane groups in flight so the eight serial gathers per group
  // overlap across groups instead of back-to-back stalling.
  for (; i + 8 <= n; i += 8) {
    const __m256i xa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i xb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 4));
    __m256i ha = _mm256_setzero_si256();
    __m256i hb = _mm256_setzero_si256();
    for (int byte = 0; byte < 8; ++byte) {
      const long long* table = base + byte * 256;
      const __m256i ia = _mm256_and_si256(
          _mm256_srli_epi64(xa, 8 * byte), byte_mask);
      const __m256i ib = _mm256_and_si256(
          _mm256_srli_epi64(xb, 8 * byte), byte_mask);
      ha = _mm256_xor_si256(ha, _mm256_i64gather_epi64(table, ia, 8));
      hb = _mm256_xor_si256(hb, _mm256_i64gather_epi64(table, ib, 8));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), ha);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), hb);
  }
  for (; i < n; ++i) {
    const std::uint64_t x = keys[i];
    std::uint64_t h = 0;
    for (int byte = 0; byte < 8; ++byte) {
      h ^= tables[byte * 256 + ((x >> (8 * byte)) & 0xff)];
    }
    out[i] = h;
  }
}

HIMPACT_AVX2 void PairwiseRangeHashBatchAvx2(
    std::uint64_t a0, std::uint64_t a1, std::uint64_t range,
    std::uint64_t barrett, const std::uint64_t* keys, std::uint64_t* out,
    std::size_t n) {
  const __m256i va0 = _mm256_set1_epi64x(static_cast<long long>(a0));
  const __m256i va1 = _mm256_set1_epi64x(static_cast<long long>(a1));
  const __m256i vd = _mm256_set1_epi64x(static_cast<long long>(range));
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(barrett));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i xr = ModRawM61(x);
    const __m256i acc = AddModM61(MulModM61(va1, xr), va0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        BarrettModV(acc, vd, vm));
  }
  for (; i < n; ++i) {
    const std::uint64_t xr = keys[i] % kMersenne61;
    std::uint64_t acc = ModMersenne61(static_cast<unsigned __int128>(a1) * xr);
    acc += a0;
    if (acc >= kMersenne61) acc -= kMersenne61;
    out[i] = BarrettMod(acc, range, barrett);
  }
}

HIMPACT_AVX2 void CountSketchRowHashBatchAvx2(
    const std::uint64_t* bucket_coeffs, const std::uint64_t* sign_coeffs,
    std::uint64_t width, std::uint64_t barrett, const std::uint64_t* keys,
    std::uint64_t* buckets, std::int64_t* signs, std::size_t n) {
  const __m256i vb0 =
      _mm256_set1_epi64x(static_cast<long long>(bucket_coeffs[0]));
  const __m256i vb1 =
      _mm256_set1_epi64x(static_cast<long long>(bucket_coeffs[1]));
  const __m256i vs0 =
      _mm256_set1_epi64x(static_cast<long long>(sign_coeffs[0]));
  const __m256i vs1 =
      _mm256_set1_epi64x(static_cast<long long>(sign_coeffs[1]));
  const __m256i vs2 =
      _mm256_set1_epi64x(static_cast<long long>(sign_coeffs[2]));
  const __m256i vs3 =
      _mm256_set1_epi64x(static_cast<long long>(sign_coeffs[3]));
  const __m256i vd = _mm256_set1_epi64x(static_cast<long long>(width));
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(barrett));
  const __m256i one = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i xr = ModRawM61(x);
    const __m256i b = AddModM61(MulModM61(vb1, xr), vb0);
    __m256i s = AddModM61(MulModM61(vs3, xr), vs2);
    s = AddModM61(MulModM61(s, xr), vs1);
    s = AddModM61(MulModM61(s, xr), vs0);
    // sign = 1 - 2 * (s & 1): +1 on even parity, -1 on odd.
    const __m256i sign =
        _mm256_sub_epi64(one, _mm256_slli_epi64(_mm256_and_si256(s, one), 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(buckets + i),
                        BarrettModV(b, vd, vm));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(signs + i), sign);
  }
  for (; i < n; ++i) {
    const std::uint64_t xr = keys[i] % kMersenne61;
    std::uint64_t b = ModMersenne61(
        static_cast<unsigned __int128>(bucket_coeffs[1]) * xr);
    b += bucket_coeffs[0];
    if (b >= kMersenne61) b -= kMersenne61;
    std::uint64_t s = sign_coeffs[3];
    for (int c = 2; c >= 0; --c) {
      s = ModMersenne61(static_cast<unsigned __int128>(s) * xr) +
          sign_coeffs[c];
      if (s >= kMersenne61) s -= kMersenne61;
    }
    buckets[i] = BarrettMod(b, width, barrett);
    signs[i] = (s & 1) == 0 ? 1 : -1;
  }
}

HIMPACT_AVX2 void EhLevelSearchAvx2(const double* powers, std::size_t levels,
                                    const std::uint64_t* values,
                                    std::uint64_t* out_levels, std::size_t n) {
  std::size_t i = 0;
  // Two 4-lane groups: each group's search is a serial chain of gathers
  // (the next index depends on the previous compare), so a single group
  // is latency-bound; a second independent group interleaves into the
  // chain's idle slots. The halving schedule is data-independent, so one
  // `len` drives both.
  for (; i + 8 <= n; i += 8) {
    const __m256d xa = U64ToPd(values + i);
    const __m256d xb = U64ToPd(values + i + 4);
    __m256i ba = _mm256_setzero_si256();
    __m256i bb = _mm256_setzero_si256();
    std::size_t len = levels;
    while (len > 1) {
      const std::size_t half = len >> 1;
      const __m256i vh = _mm256_set1_epi64x(static_cast<long long>(half));
      const __m256d pa =
          _mm256_i64gather_pd(powers, _mm256_add_epi64(ba, vh), 8);
      const __m256d pb =
          _mm256_i64gather_pd(powers, _mm256_add_epi64(bb, vh), 8);
      const __m256i lea =
          _mm256_castpd_si256(_mm256_cmp_pd(pa, xa, _CMP_LE_OQ));
      const __m256i leb =
          _mm256_castpd_si256(_mm256_cmp_pd(pb, xb, _CMP_LE_OQ));
      ba = _mm256_add_epi64(ba, _mm256_and_si256(lea, vh));
      bb = _mm256_add_epi64(bb, _mm256_and_si256(leb, vh));
      len -= half;
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_levels + i), ba);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_levels + i + 4), bb);
  }
  for (; i < n; ++i) {
    const double x = static_cast<double>(values[i]);
    std::size_t b = 0;
    std::size_t len = levels;
    while (len > 1) {
      const std::size_t half = len >> 1;
      b += powers[b + half] <= x ? half : 0;
      len -= half;
    }
    out_levels[i] = b;
  }
}

}  // namespace himpact::simd

#endif  // HIMPACT_HAVE_AVX2_KERNELS
