#include "hash/tabulation.h"

#include "hash/mix.h"

namespace himpact {

TabulationHash::TabulationHash(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& table : tables_) {
    for (auto& entry : table) {
      state = SplitMix64(state + 0x2545f4914f6cdd1dULL);
      entry = state;
    }
  }
}

}  // namespace himpact
