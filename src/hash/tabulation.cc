#include "hash/tabulation.h"

#include "hash/mix.h"
#include "hash/simd_kernels.h"

namespace himpact {

TabulationHash::TabulationHash(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& table : tables_) {
    for (auto& entry : table) {
      state = SplitMix64(state + 0x2545f4914f6cdd1dULL);
      entry = state;
    }
  }
}

void TabulationHash::HashBatch(const std::uint64_t* keys, std::uint64_t* out,
                               std::size_t n) const {
#ifdef HIMPACT_HAVE_AVX2_KERNELS
  if (simd::Avx2Active()) {
    // tables_ is a contiguous 8x256 block, exactly the layout the
    // gather kernel indexes.
    simd::TabulationHashBatchAvx2(tables_[0].data(), keys, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = (*this)(keys[i]);
}

}  // namespace himpact
