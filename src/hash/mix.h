#ifndef HIMPACT_HASH_MIX_H_
#define HIMPACT_HASH_MIX_H_

#include <cstdint>

/// \file
/// Cheap 64-bit finalization mixers. These are not independence-bearing
/// hash families; they are used to derive seeds and to decorrelate stream
/// identifiers before feeding the k-independent families in
/// `hash/k_independent.h`.

namespace himpact {

/// The SplitMix64 finalizer: a bijective mix of a 64-bit value.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// MurmurHash3's 64-bit finalizer (also bijective).
constexpr std::uint64_t FMix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace himpact

#endif  // HIMPACT_HASH_MIX_H_
