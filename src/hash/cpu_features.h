#ifndef HIMPACT_HASH_CPU_FEATURES_H_
#define HIMPACT_HASH_CPU_FEATURES_H_

/// \file
/// Runtime CPU feature detection and SIMD dispatch control.
///
/// The batch kernels (tabulation hashing, count-min/count-sketch row
/// tiles, EH level search) each keep a scalar implementation that is the
/// semantic ground truth and an optional hand-vectorized AVX2 variant.
/// Dispatch happens once per process through `ActiveSimdLevel()`:
///
///   1. `SetSimdLevelOverride()` — programmatic override, used by
///      `batch_equivalence_test` to force both paths in one process;
///   2. `HIMPACT_SIMD=scalar|avx2` — environment override, read once;
///   3. cpuid detection (`__builtin_cpu_supports`), clamped to what the
///      host actually offers.
///
/// Requesting a level above the detected one clamps down to detection,
/// never up: the override can only disable vector paths, not fabricate
/// them on hardware without the instructions.

namespace himpact {

/// Instruction-set levels the batch kernels dispatch over. Levels are
/// ordered: a kernel compiled for level L runs at any level >= L.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// The highest level supported by this CPU (cpuid, cached after the
/// first call; never affected by overrides).
SimdLevel DetectedSimdLevel();

/// The level the batch kernels actually dispatch to right now:
/// min(DetectedSimdLevel(), override-or-env request). Cached after first
/// resolution; `SetSimdLevelOverride` invalidates the cache.
SimdLevel ActiveSimdLevel();

/// True when the active level was pinned explicitly — programmatic
/// override or the `HIMPACT_SIMD` env var — rather than chosen by
/// detection. Kernels whose vector variant loses to its scalar twin on
/// measured hosts (the EH gather search) only dispatch to the vector
/// path under forcing: production defaults keep the faster path, while
/// tests and explicit env runs still exercise the kernel.
bool SimdLevelForced();

/// Forces dispatch to `min(level, DetectedSimdLevel())` process-wide.
/// Intended for tests that must exercise both paths deterministically.
/// Not thread-safe against concurrent hashing: call only from test
/// setup, before kernels run on other threads.
void SetSimdLevelOverride(SimdLevel level);

/// Clears the programmatic override; the env var / detection order
/// applies again on the next `ActiveSimdLevel()` call.
void ClearSimdLevelOverride();

/// Stable lowercase name for reports ("scalar", "avx2").
const char* SimdLevelName(SimdLevel level);

}  // namespace himpact

#endif  // HIMPACT_HASH_CPU_FEATURES_H_
