#ifndef HIMPACT_HASH_TABULATION_H_
#define HIMPACT_HASH_TABULATION_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/space.h"

/// \file
/// Simple tabulation hashing (Zobrist hashing): 8 lookup tables of 256
/// random words XORed together byte-by-byte.
///
/// Simple tabulation is 3-independent and behaves like a fully random
/// function for many streaming applications (Patrascu–Thorup); we use it
/// where speed matters more than provable independence (the distinct
/// counters and the throughput benchmarks' fast path).

namespace himpact {

/// A tabulation hash function over 64-bit keys.
class TabulationHash {
 public:
  /// Fills the tables pseudo-randomly from `seed`.
  explicit TabulationHash(std::uint64_t seed);

  /// Hashes `x` to a 64-bit value.
  std::uint64_t operator()(std::uint64_t x) const {
    std::uint64_t h = 0;
    for (int byte = 0; byte < 8; ++byte) {
      h ^= tables_[static_cast<std::size_t>(byte)]
                  [static_cast<std::size_t>((x >> (8 * byte)) & 0xff)];
    }
    return h;
  }

  /// Hashes `n` keys, `out[i] == (*this)(keys[i])` exactly. Dispatches
  /// to the AVX2 gather kernel (`simd_kernels.h`) when active; the
  /// kernel XORs the same table words, so outputs are identical either
  /// way. Batch callers (HLL, KMV) hash a tile through this and then
  /// apply in stream order.
  void HashBatch(const std::uint64_t* keys, std::uint64_t* out,
                 std::size_t n) const;

  /// Space used by the table description.
  SpaceUsage EstimateSpace() const {
    SpaceUsage usage;
    usage.words = 8 * 256;
    usage.bytes = sizeof(*this);
    return usage;
  }

 private:
  std::array<std::array<std::uint64_t, 256>, 8> tables_;
};

}  // namespace himpact

#endif  // HIMPACT_HASH_TABULATION_H_
