#include "hash/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace himpact {
namespace {

// Cached levels use -1 as "not yet resolved". Resolution is idempotent,
// so a racy double-resolve writes the same value twice.
std::atomic<int> g_detected{-1};
std::atomic<int> g_active{-1};
// -2 = no override; otherwise the requested SimdLevel value.
std::atomic<int> g_override{-2};

SimdLevel Detect() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel EnvRequest() {
  const char* env = std::getenv("HIMPACT_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return SimdLevel::kScalar;
  }
  // Unset, "avx2", or unrecognized: take everything detection offers.
  return SimdLevel::kAvx2;
}

bool EnvPinned() { return std::getenv("HIMPACT_SIMD") != nullptr; }

}  // namespace

SimdLevel DetectedSimdLevel() {
  int level = g_detected.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(Detect());
    g_detected.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

SimdLevel ActiveSimdLevel() {
  int level = g_active.load(std::memory_order_relaxed);
  if (level < 0) {
    const int detected = static_cast<int>(DetectedSimdLevel());
    const int request = g_override.load(std::memory_order_relaxed);
    const int wanted =
        request >= 0 ? request : static_cast<int>(EnvRequest());
    level = wanted < detected ? wanted : detected;
    g_active.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

bool SimdLevelForced() {
  return g_override.load(std::memory_order_relaxed) >= 0 || EnvPinned();
}

void SetSimdLevelOverride(SimdLevel level) {
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
  g_active.store(-1, std::memory_order_relaxed);
}

void ClearSimdLevelOverride() {
  g_override.store(-2, std::memory_order_relaxed);
  g_active.store(-1, std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      return "scalar";
  }
  return "scalar";
}

}  // namespace himpact
