#include "hash/k_independent.h"

#include "common/check.h"
#include "hash/mix.h"
#include "hash/simd_kernels.h"

namespace himpact {

namespace {

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b) {
  return ModMersenne61(static_cast<unsigned __int128>(a) * b);
}

}  // namespace

KIndependentHash::KIndependentHash(int k, std::uint64_t seed) {
  HIMPACT_CHECK(k >= 1);
  coefficients_.reserve(static_cast<std::size_t>(k));
  std::uint64_t state = seed;
  for (int i = 0; i < k; ++i) {
    // Rejection-free: SplitMix64 output reduced into the field is close
    // enough to uniform for our purposes (bias < 2^-60).
    state = SplitMix64(state + 0x632be59bd9b4e019ULL);
    std::uint64_t coeff = state % kMersenne61;
    // The leading coefficient must be non-zero to keep full independence.
    if (i == k - 1 && coeff == 0) coeff = 1;
    coefficients_.push_back(coeff);
  }
}

std::uint64_t KIndependentHash::operator()(std::uint64_t x) const {
  const std::uint64_t xr = x % kMersenne61;
  // Horner evaluation, highest coefficient first.
  std::uint64_t acc = 0;
  for (std::size_t i = coefficients_.size(); i-- > 0;) {
    acc = MulMod(acc, xr);
    acc += coefficients_[i];
    if (acc >= kMersenne61) acc -= kMersenne61;
  }
  return acc;
}

SpaceUsage KIndependentHash::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = coefficients_.size();
  usage.bytes = sizeof(*this) + coefficients_.capacity() * sizeof(std::uint64_t);
  return usage;
}

PairwiseRangeHash::PairwiseRangeHash(std::uint64_t range, std::uint64_t seed)
    : hash_(/*k=*/2, seed), range_(range) {
  HIMPACT_CHECK(range >= 1);
}

void PairwiseRangeHash::HashBatch(const std::uint64_t* keys,
                                  std::uint64_t* out, std::size_t n) const {
  const std::vector<std::uint64_t>& c = hash_.coefficients();
  if (c.size() == 2) {
    const std::uint64_t a0 = c[0];
    const std::uint64_t a1 = c[1];
    const std::uint64_t range = range_;
    const std::uint64_t barrett = ~std::uint64_t{0} / range;
#ifdef HIMPACT_HAVE_AVX2_KERNELS
    // The vector Barrett compares lanes signed, which is only safe while
    // every intermediate stays below 2^62; range < 2^31 guarantees that.
    if (range < (std::uint64_t{1} << 31) && simd::Avx2Active()) {
      simd::PairwiseRangeHashBatchAvx2(a0, a1, range, barrett, keys, out, n);
      return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t xr = keys[i] % kMersenne61;
      // Horner: acc = a1; acc = acc * xr + a0 (mod 2^61 - 1).
      std::uint64_t acc =
          ModMersenne61(static_cast<unsigned __int128>(a1) * xr);
      acc += a0;
      if (acc >= kMersenne61) acc -= kMersenne61;
      out[i] = BarrettMod(acc, range, barrett);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = (*this)(keys[i]);
}

}  // namespace himpact
