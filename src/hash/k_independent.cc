#include "hash/k_independent.h"

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {

namespace {

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b) {
  return ModMersenne61(static_cast<unsigned __int128>(a) * b);
}

}  // namespace

KIndependentHash::KIndependentHash(int k, std::uint64_t seed) {
  HIMPACT_CHECK(k >= 1);
  coefficients_.reserve(static_cast<std::size_t>(k));
  std::uint64_t state = seed;
  for (int i = 0; i < k; ++i) {
    // Rejection-free: SplitMix64 output reduced into the field is close
    // enough to uniform for our purposes (bias < 2^-60).
    state = SplitMix64(state + 0x632be59bd9b4e019ULL);
    std::uint64_t coeff = state % kMersenne61;
    // The leading coefficient must be non-zero to keep full independence.
    if (i == k - 1 && coeff == 0) coeff = 1;
    coefficients_.push_back(coeff);
  }
}

std::uint64_t KIndependentHash::operator()(std::uint64_t x) const {
  const std::uint64_t xr = x % kMersenne61;
  // Horner evaluation, highest coefficient first.
  std::uint64_t acc = 0;
  for (std::size_t i = coefficients_.size(); i-- > 0;) {
    acc = MulMod(acc, xr);
    acc += coefficients_[i];
    if (acc >= kMersenne61) acc -= kMersenne61;
  }
  return acc;
}

SpaceUsage KIndependentHash::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = coefficients_.size();
  usage.bytes = sizeof(*this) + coefficients_.capacity() * sizeof(std::uint64_t);
  return usage;
}

PairwiseRangeHash::PairwiseRangeHash(std::uint64_t range, std::uint64_t seed)
    : hash_(/*k=*/2, seed), range_(range) {
  HIMPACT_CHECK(range >= 1);
}

}  // namespace himpact
