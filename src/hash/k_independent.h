#ifndef HIMPACT_HASH_K_INDEPENDENT_H_
#define HIMPACT_HASH_K_INDEPENDENT_H_

#include <cstdint>
#include <vector>

#include "common/space.h"

/// \file
/// k-wise independent hash families via degree-(k-1) polynomials over the
/// Mersenne prime field GF(2^61 - 1).
///
/// These are the hash families the paper's randomized algorithms rely on:
/// pairwise independence for the heavy-hitter bucketing (Theorem 18) and
/// the l0-sampler level hashing (Lemma 4), and higher independence for the
/// s-sparse recovery fingerprints.

namespace himpact {

/// The Mersenne prime 2^61 - 1 used as the field modulus.
inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// Exact `x % d` for a runtime divisor via Barrett reduction: `m` must be
/// `~0ULL / d` (precomputed once per divisor). The reciprocal multiply
/// undershoots the quotient by at most a few, so the fixup loop runs 0-3
/// iterations and the result is exact for all inputs — this replaces a
/// ~25-cycle hardware divide with two multiplies on hot paths.
inline std::uint64_t BarrettMod(std::uint64_t x, std::uint64_t d,
                                std::uint64_t m) {
  const std::uint64_t q = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(x) * m) >> 64);
  std::uint64_t r = x - q * d;
  while (r >= d) r -= d;
  return r;
}

/// Reduces `x` modulo 2^61 - 1 given `x < 2^122` (as a 128-bit value).
inline std::uint64_t ModMersenne61(unsigned __int128 x) {
  // Fold twice: any 128-bit value fits in 61 bits after two folds plus a
  // conditional subtraction.
  std::uint64_t lo = static_cast<std::uint64_t>(x & kMersenne61);
  std::uint64_t hi = static_cast<std::uint64_t>(x >> 61);
  std::uint64_t sum =
      lo + (hi & kMersenne61) +
      static_cast<std::uint64_t>(static_cast<unsigned __int128>(hi) >> 61);
  if (sum >= kMersenne61) sum -= kMersenne61;
  if (sum >= kMersenne61) sum -= kMersenne61;
  return sum;
}

/// A hash function drawn from a k-wise independent family
/// `h(x) = sum_i a_i x^i mod (2^61 - 1)`, with output in `[0, 2^61 - 1)`.
///
/// Instances are immutable once constructed; copying is cheap (k words).
class KIndependentHash {
 public:
  /// Draws a function from the k-wise independent family using `seed`.
  /// Requires `k >= 1`.
  KIndependentHash(int k, std::uint64_t seed);

  /// Evaluates the polynomial at `x` (first reduced into the field).
  std::uint64_t operator()(std::uint64_t x) const;

  /// The independence parameter `k`.
  int k() const { return static_cast<int>(coefficients_.size()); }

  /// The polynomial coefficients `a_0 .. a_{k-1}` (all `< 2^61 - 1`).
  /// Exposed so batch hot paths can hoist them into registers; evaluating
  /// the polynomial by hand must reproduce `operator()` exactly.
  const std::vector<std::uint64_t>& coefficients() const {
    return coefficients_;
  }

  /// Space used by the function description.
  SpaceUsage EstimateSpace() const;

 private:
  std::vector<std::uint64_t> coefficients_;  // a_0 .. a_{k-1}
};

/// Pairwise (2-wise) independent hash into the range `[0, range)`.
///
/// Used for the bucketing array of Algorithm 8 and the row hashing of the
/// s-sparse recovery structure.
class PairwiseRangeHash {
 public:
  /// Draws a pairwise-independent function onto `[0, range)`.
  /// Requires `range >= 1`.
  PairwiseRangeHash(std::uint64_t range, std::uint64_t seed);

  /// Maps `x` to a bucket in `[0, range)`.
  std::uint64_t operator()(std::uint64_t x) const {
    return hash_(x) % range_;
  }

  /// Maps `n` keys to buckets, `out[i] == (*this)(keys[i])` exactly.
  ///
  /// The pairwise (degree-1) polynomial runs with both coefficients
  /// hoisted into registers — two multiplies and a reduction per key
  /// instead of a cross-TU call plus a Horner loop over a heap-allocated
  /// coefficient vector — and dispatches to the AVX2 kernel
  /// (`simd_kernels.h`) when active and the range fits the vector
  /// Barrett's `< 2^31` bound. Both paths compute identical bucket
  /// values; any k != 2 falls back to the general scalar path.
  void HashBatch(const std::uint64_t* keys, std::uint64_t* out,
                 std::size_t n) const;

  /// The bucket count.
  std::uint64_t range() const { return range_; }

  /// Space used by the function description.
  SpaceUsage EstimateSpace() const { return hash_.EstimateSpace(); }

 private:
  KIndependentHash hash_;
  std::uint64_t range_;
};

}  // namespace himpact

#endif  // HIMPACT_HASH_K_INDEPENDENT_H_
