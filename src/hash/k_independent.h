#ifndef HIMPACT_HASH_K_INDEPENDENT_H_
#define HIMPACT_HASH_K_INDEPENDENT_H_

#include <cstdint>
#include <vector>

#include "common/space.h"

/// \file
/// k-wise independent hash families via degree-(k-1) polynomials over the
/// Mersenne prime field GF(2^61 - 1).
///
/// These are the hash families the paper's randomized algorithms rely on:
/// pairwise independence for the heavy-hitter bucketing (Theorem 18) and
/// the l0-sampler level hashing (Lemma 4), and higher independence for the
/// s-sparse recovery fingerprints.

namespace himpact {

/// The Mersenne prime 2^61 - 1 used as the field modulus.
inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// Reduces `x` modulo 2^61 - 1 given `x < 2^122` (as a 128-bit value).
std::uint64_t ModMersenne61(unsigned __int128 x);

/// A hash function drawn from a k-wise independent family
/// `h(x) = sum_i a_i x^i mod (2^61 - 1)`, with output in `[0, 2^61 - 1)`.
///
/// Instances are immutable once constructed; copying is cheap (k words).
class KIndependentHash {
 public:
  /// Draws a function from the k-wise independent family using `seed`.
  /// Requires `k >= 1`.
  KIndependentHash(int k, std::uint64_t seed);

  /// Evaluates the polynomial at `x` (first reduced into the field).
  std::uint64_t operator()(std::uint64_t x) const;

  /// The independence parameter `k`.
  int k() const { return static_cast<int>(coefficients_.size()); }

  /// Space used by the function description.
  SpaceUsage EstimateSpace() const;

 private:
  std::vector<std::uint64_t> coefficients_;  // a_0 .. a_{k-1}
};

/// Pairwise (2-wise) independent hash into the range `[0, range)`.
///
/// Used for the bucketing array of Algorithm 8 and the row hashing of the
/// s-sparse recovery structure.
class PairwiseRangeHash {
 public:
  /// Draws a pairwise-independent function onto `[0, range)`.
  /// Requires `range >= 1`.
  PairwiseRangeHash(std::uint64_t range, std::uint64_t seed);

  /// Maps `x` to a bucket in `[0, range)`.
  std::uint64_t operator()(std::uint64_t x) const {
    return hash_(x) % range_;
  }

  /// The bucket count.
  std::uint64_t range() const { return range_; }

  /// Space used by the function description.
  SpaceUsage EstimateSpace() const { return hash_.EstimateSpace(); }

 private:
  KIndependentHash hash_;
  std::uint64_t range_;
};

}  // namespace himpact

#endif  // HIMPACT_HASH_K_INDEPENDENT_H_
