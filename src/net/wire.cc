#include "net/wire.h"

#include <cstring>

namespace himpact {
namespace {

// ---------------------------------------------------------------------
// Little-endian primitives. Byte-at-a-time shifts, so the codec is
// endian- and alignment-agnostic.

void AppendU8(std::string* out, unsigned char value) {
  out->push_back(static_cast<char>(value));
}

void AppendU32(std::string* out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void AppendU64(std::string* out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void AppendF64(std::string* out, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

// A bounded read cursor over a frame payload. Reads past the end trip
// `ok` instead of reading garbage; the decoders turn that into one
// structured error.
struct Cursor {
  const char* data;
  std::size_t size;
  std::size_t off = 0;
  bool ok = true;

  std::size_t remaining() const { return size - off; }

  unsigned char U8() {
    if (off + 1 > size) {
      ok = false;
      return 0;
    }
    return static_cast<unsigned char>(data[off++]);
  }

  std::uint32_t U32() {
    if (off + 4 > size) {
      ok = false;
      return 0;
    }
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(data[off++]))
               << shift;
    }
    return value;
  }

  std::uint64_t U64() {
    if (off + 8 > size) {
      ok = false;
      return 0;
    }
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(data[off++]))
               << shift;
    }
    return value;
  }

  double F64() {
    const std::uint64_t bits = U64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }
};

Status BadFrame(const std::string& reason) {
  return Status::InvalidArgument(reason);
}

/// Wraps a finished payload in the frozen six-byte prelude.
std::string Frame(unsigned char magic, const std::string& payload) {
  std::string frame;
  frame.reserve(kWirePreludeBytes + payload.size());
  AppendU8(&frame, magic);
  AppendU8(&frame, kWireVersion);
  AppendU32(&frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

/// Validates the prelude of a complete frame and returns a cursor over
/// its payload. Shared by the request and reply decoders — the rules
/// (magic, version, declared length = actual payload bytes) are
/// identical in both directions.
Status OpenFrame(const std::string& frame, unsigned char magic,
                 Cursor* payload) {
  if (frame.size() < kWirePreludeBytes) {
    return BadFrame("truncated frame prelude");
  }
  const unsigned char got_magic = static_cast<unsigned char>(frame[0]);
  if (got_magic != magic) {
    return BadFrame("bad magic byte 0x" + std::to_string(got_magic));
  }
  const unsigned char version = static_cast<unsigned char>(frame[1]);
  if (version != kWireVersion) {
    return BadFrame("unsupported protocol version " +
                    std::to_string(version) + " (this server speaks " +
                    std::to_string(kWireVersion) + ")");
  }
  const std::uint32_t length = WirePayloadLength(frame.data());
  if (frame.size() != kWirePreludeBytes + length) {
    return BadFrame("declared payload length " + std::to_string(length) +
                    " does not match frame size");
  }
  payload->data = frame.data() + kWirePreludeBytes;
  payload->size = length;
  return Status::OK();
}

WireStatus StatusByte(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kResourceExhausted:
      return WireStatus::kResourceExhausted;
    case StatusCode::kDeadlineExceeded:
      return WireStatus::kDeadlineExceeded;
    default:
      return WireStatus::kErr;
  }
}

}  // namespace

std::uint32_t WirePayloadLength(const char* prelude) {
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(
                  static_cast<unsigned char>(prelude[2 + i]))
              << (8 * i);
  }
  return length;
}

std::string EncodeRequestFrame(const Command& command) {
  std::string payload;
  AppendU8(&payload, static_cast<unsigned char>(command.kind));
  switch (command.kind) {
    case CommandKind::kAdd:
      AppendU64(&payload, command.user);
      AppendU64(&payload, command.value);
      break;
    case CommandKind::kPaper:
      AppendU64(&payload, command.paper.paper);
      AppendU64(&payload, command.paper.citations);
      AppendU8(&payload,
               static_cast<unsigned char>(command.paper.authors.size()));
      for (const AuthorId author : command.paper.authors) {
        AppendU64(&payload, author);
      }
      break;
    case CommandKind::kGet:
      AppendU64(&payload, command.user);
      break;
    case CommandKind::kTop:
      AppendU64(&payload, command.value);
      break;
    case CommandKind::kSave:
      payload += command.path;
      break;
    case CommandKind::kHeavy:
    case CommandKind::kStats:
    case CommandKind::kHealth:
    case CommandKind::kQuit:
    case CommandKind::kInvalid:
      break;  // no operands (kInvalid is never encoded as a request)
  }
  return Frame(kWireRequestMagic, payload);
}

StatusOr<Command> DecodeRequestFrame(const std::string& frame) {
  Cursor payload{nullptr, 0};
  const Status opened = OpenFrame(frame, kWireRequestMagic, &payload);
  if (!opened.ok()) return opened;
  if (payload.size == 0) return BadFrame("empty payload (missing opcode)");

  const unsigned char opcode = payload.U8();
  Command command;
  switch (static_cast<WireOpcode>(opcode)) {
    case WireOpcode::kAdd: {
      command.kind = CommandKind::kAdd;
      command.user = payload.U64();
      command.value = payload.U64();
      break;
    }
    case WireOpcode::kPaper: {
      command.kind = CommandKind::kPaper;
      command.paper.paper = payload.U64();
      command.paper.citations = payload.U64();
      const unsigned char count = payload.U8();
      if (!payload.ok) break;
      if (count == 0) return BadFrame("empty author list");
      if (count > kMaxAuthorsPerPaper) {
        return BadFrame("too many authors (max " +
                        std::to_string(kMaxAuthorsPerPaper) + ")");
      }
      for (unsigned char i = 0; i < count && payload.ok; ++i) {
        const AuthorId author = payload.U64();
        if (!payload.ok) break;
        if (command.paper.authors.Contains(author)) {
          return BadFrame("duplicate author id " + std::to_string(author));
        }
        command.paper.authors.PushBack(author);
      }
      break;
    }
    case WireOpcode::kGet: {
      command.kind = CommandKind::kGet;
      command.user = payload.U64();
      break;
    }
    case WireOpcode::kTop: {
      command.kind = CommandKind::kTop;
      command.value = payload.U64();
      if (payload.ok && command.value == 0) return BadFrame("bad k 0");
      break;
    }
    case WireOpcode::kHeavy:
      command.kind = CommandKind::kHeavy;
      break;
    case WireOpcode::kStats:
      command.kind = CommandKind::kStats;
      break;
    case WireOpcode::kHealth:
      command.kind = CommandKind::kHealth;
      break;
    case WireOpcode::kSave: {
      command.kind = CommandKind::kSave;
      command.path.assign(payload.data + payload.off, payload.remaining());
      payload.off = payload.size;
      if (command.path.empty()) return BadFrame("empty save path");
      if (command.path.find('\0') != std::string::npos) {
        return BadFrame("NUL byte in save path");
      }
      break;
    }
    case WireOpcode::kQuit:
      command.kind = CommandKind::kQuit;
      break;
    default:
      return BadFrame("unknown opcode 0x" + std::to_string(opcode));
  }
  if (!payload.ok) return BadFrame("short operands for opcode");
  // Strictness parity with the text parser: trailing operand bytes are
  // rejected, not ignored.
  if (payload.remaining() != 0) {
    return BadFrame("trailing bytes after operands");
  }
  return command;
}

std::string EncodeReplyFrame(const CommandResult& result) {
  std::string payload;
  AppendU8(&payload, static_cast<unsigned char>(StatusByte(result.code)));
  AppendU8(&payload, static_cast<unsigned char>(result.kind));
  if (result.code != StatusCode::kOk) {
    payload += result.message;
    return Frame(kWireReplyMagic, payload);
  }
  switch (result.kind) {
    case CommandKind::kAdd:
      AppendF64(&payload, result.estimate);
      break;
    case CommandKind::kPaper:
      AppendU8(&payload, static_cast<unsigned char>(result.num_authors));
      break;
    case CommandKind::kGet:
      AppendU64(&payload, result.user);
      AppendF64(&payload, result.estimate);
      AppendU8(&payload, result.tier == kTierNone
                             ? kWireTierNone
                             : static_cast<unsigned char>(result.tier));
      AppendU64(&payload, result.events);
      break;
    case CommandKind::kTop:
      AppendU32(&payload, static_cast<std::uint32_t>(result.stripes_skipped));
      AppendU32(&payload, static_cast<std::uint32_t>(result.entries.size()));
      for (const auto& [user, estimate] : result.entries) {
        AppendU64(&payload, user);
        AppendF64(&payload, estimate);
      }
      break;
    case CommandKind::kHeavy:
      AppendU32(&payload, static_cast<std::uint32_t>(result.entries.size()));
      for (const auto& [user, estimate] : result.entries) {
        AppendU64(&payload, user);
        AppendF64(&payload, estimate);
      }
      break;
    case CommandKind::kStats:
    case CommandKind::kHealth:
    case CommandKind::kSave:
      payload += result.text;
      break;
    case CommandKind::kQuit:
    case CommandKind::kInvalid:
      break;  // empty body (an OK result never carries kInvalid)
  }
  return Frame(kWireReplyMagic, payload);
}

std::string EncodeErrorFrame(const std::string& reason) {
  CommandResult result;
  result.kind = CommandKind::kInvalid;
  result.code = StatusCode::kInvalidArgument;
  result.message = reason;
  return EncodeReplyFrame(result);
}

StatusOr<CommandResult> DecodeReplyFrame(const std::string& frame) {
  Cursor payload{nullptr, 0};
  const Status opened = OpenFrame(frame, kWireReplyMagic, &payload);
  if (!opened.ok()) return opened;
  if (payload.size < 2) return BadFrame("reply payload shorter than header");

  const unsigned char status = payload.U8();
  const unsigned char opcode = payload.U8();
  CommandResult result;
  switch (static_cast<WireStatus>(status)) {
    case WireStatus::kOk:
      result.code = StatusCode::kOk;
      break;
    case WireStatus::kErr:
      result.code = StatusCode::kInvalidArgument;
      break;
    case WireStatus::kResourceExhausted:
      result.code = StatusCode::kResourceExhausted;
      break;
    case WireStatus::kDeadlineExceeded:
      result.code = StatusCode::kDeadlineExceeded;
      break;
    default:
      return BadFrame("unknown status byte 0x" + std::to_string(status));
  }
  if (opcode > static_cast<unsigned char>(CommandKind::kQuit)) {
    return BadFrame("unknown opcode 0x" + std::to_string(opcode));
  }
  result.kind = static_cast<CommandKind>(opcode);
  if (result.kind == CommandKind::kInvalid &&
      result.code == StatusCode::kOk) {
    return BadFrame("OK reply with opcode 0");
  }

  if (result.code != StatusCode::kOk) {
    result.message.assign(payload.data + payload.off, payload.remaining());
    return result;
  }
  switch (result.kind) {
    case CommandKind::kAdd:
      result.estimate = payload.F64();
      break;
    case CommandKind::kPaper:
      result.num_authors = payload.U8();
      break;
    case CommandKind::kGet: {
      result.user = payload.U64();
      result.estimate = payload.F64();
      const unsigned char tier = payload.U8();
      result.events = payload.U64();
      if (payload.ok && tier != kWireTierNone && tier > 3) {
        return BadFrame("unknown tier byte 0x" + std::to_string(tier));
      }
      result.tier = tier == kWireTierNone ? kTierNone : static_cast<int>(tier);
      break;
    }
    case CommandKind::kTop:
    case CommandKind::kHeavy: {
      if (result.kind == CommandKind::kTop) {
        result.stripes_skipped = payload.U32();
      }
      const std::uint32_t count = payload.U32();
      if (payload.ok && payload.remaining() != count * 16ull) {
        return BadFrame("entry count does not match payload size");
      }
      result.entries.reserve(count);
      for (std::uint32_t i = 0; i < count && payload.ok; ++i) {
        const AuthorId user = payload.U64();
        const double estimate = payload.F64();
        result.entries.emplace_back(user, estimate);
      }
      break;
    }
    case CommandKind::kStats:
    case CommandKind::kHealth:
    case CommandKind::kSave:
      result.text.assign(payload.data + payload.off, payload.remaining());
      payload.off = payload.size;
      break;
    case CommandKind::kQuit:
    case CommandKind::kInvalid:
      break;
  }
  if (!payload.ok) return BadFrame("short reply body for opcode");
  if (payload.remaining() != 0) return BadFrame("trailing bytes after body");
  return result;
}

}  // namespace himpact
