#ifndef HIMPACT_NET_CONNECTION_H_
#define HIMPACT_NET_CONNECTION_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/socket.h"

/// \file
/// Per-connection state for the TCP front end (net/server.h): bounded
/// read/write buffers, request framing, and the activity/deadline
/// bookkeeping the event loop's lifecycle policies (idle eviction,
/// slow-loris kill, oversize kill, backpressure) are driven by. The
/// buffer mechanics are pure — no syscalls — so the framing and
/// watermark rules are unit-testable without sockets.
///
/// A connection speaks one of two framings, latched from its first
/// byte (docs/PROTOCOL.md "Protocol selection"): newline-delimited
/// text lines (`NextLine`) or length-prefixed binary frames
/// (`NextFrame`, net/wire.h). Both share the same buffers and the same
/// oversize / partial-read / backpressure semantics — `max_line_bytes`
/// bounds a whole binary frame exactly as it bounds a text line.
///
/// Lifecycle (enforced by the server, recorded here):
///
///   reading ──complete request──▶ handler ──reply──▶ writing
///      │  write backlog over the high watermark pauses input
///      │  (stop reading: TCP backpressure reaches the client)
///      └─ oversize / bad magic / quit / EOF / deadline ──▶
///        close-after-flush

namespace himpact {

/// Buffer policy shared by every connection of a server.
struct ConnectionLimits {
  /// A request longer than this kills the connection with one
  /// structured error reply — a text line with no newline seen, or a
  /// binary frame whose declared prelude + payload size exceeds it.
  std::size_t max_line_bytes = 1 << 16;
  /// Pending-reply high watermark: above it the server stops reading
  /// from the connection until the backlog drains below
  /// `write_resume_bytes`.
  std::size_t write_buffer_limit = 1 << 18;
  std::size_t write_resume_bytes = 1 << 17;
};

/// Result of asking a connection for its next framed request line.
enum class LineResult {
  kLine,      // a complete line was extracted
  kNone,      // no complete line buffered (yet)
  kOversize,  // pending bytes exceed max_line_bytes with no newline
};

/// Which framing this connection speaks, latched from its first byte:
/// 0xB1 (the binary request magic, outside ASCII) selects binary,
/// anything else falls back to the text line protocol.
enum class WireProtocol {
  kUndetected,  // no bytes received yet
  kText,
  kBinary,
};

/// Result of asking a binary connection for its next complete frame.
enum class FrameResult {
  kFrame,     // a complete frame (prelude + payload) was extracted
  kNone,      // frame still incomplete (partial prelude or payload)
  kOversize,  // declared frame size exceeds max_line_bytes
  kBadMagic,  // next pending byte is not the request magic — desynced
};

/// One accepted client connection.
class Connection {
 public:
  Connection(UniqueFd fd, std::uint64_t now_nanos)
      : fd_(std::move(fd)),
        last_activity_nanos_(now_nanos) {}

  int fd() const { return fd_.get(); }

  /// Appends freshly read bytes. Counts as activity; the first pending
  /// byte of a not-yet-complete request starts the per-request clock.
  void AppendInput(const char* data, std::size_t n, std::uint64_t now_nanos);

  /// Extracts the next complete request line (newline stripped, any
  /// carriage return left for the strict parser to reject). `kOversize`
  /// once the pending fragment outgrows `limits.max_line_bytes`.
  LineResult NextLine(const ConnectionLimits& limits, std::string* line);

  /// Extracts the next complete binary frame (prelude + payload,
  /// exactly as `DecodeRequestFrame` expects). `kBadMagic` when the
  /// next pending byte is not 0xB1 — the stream is desynced and cannot
  /// be reframed, so the server kills the connection after one error
  /// frame. `kOversize` as soon as the *declared* size exceeds
  /// `limits.max_line_bytes`, without waiting for the payload bytes (a
  /// hostile length prefix must not make the server buffer 4 GiB). A
  /// frame with an unsupported version byte is still extracted whole —
  /// the frozen prelude makes its length trustworthy — and rejected
  /// per-frame by the decoder.
  FrameResult NextFrame(const ConnectionLimits& limits, std::string* frame);

  /// The framing this connection speaks; latched by the server from
  /// the first received byte.
  WireProtocol protocol() const { return protocol_; }
  void set_protocol(WireProtocol protocol) { protocol_ = protocol; }

  /// Peeks the first unconsumed input byte (protocol detection).
  /// False when no input is pending.
  bool PeekByte(unsigned char* byte) const {
    if (!HasPartialRequest()) return false;
    *byte = static_cast<unsigned char>(rbuf_[rbuf_off_]);
    return true;
  }

  /// Queues reply bytes for the socket writer.
  void QueueReply(const std::string& reply) { wbuf_.append(reply); }

  /// Unwritten reply bytes / their location.
  std::size_t PendingWriteBytes() const { return wbuf_.size() - wbuf_off_; }
  const char* PendingWriteData() const { return wbuf_.data() + wbuf_off_; }

  /// Consumes `n` written bytes; counts as activity. Compacts the
  /// buffer once everything queued has left.
  void ConsumeWritten(std::size_t n, std::uint64_t now_nanos);

  /// Backpressure predicates against the shared watermarks.
  bool WriteBacklogged(const ConnectionLimits& limits) const {
    return PendingWriteBytes() > limits.write_buffer_limit;
  }
  bool WriteResumable(const ConnectionLimits& limits) const {
    return PendingWriteBytes() <= limits.write_resume_bytes;
  }

  /// Nanoseconds since the last read or write progress.
  std::uint64_t IdleNanos(std::uint64_t now_nanos) const {
    return now_nanos > last_activity_nanos_
               ? now_nanos - last_activity_nanos_
               : 0;
  }
  std::uint64_t last_activity_nanos() const { return last_activity_nanos_; }

  /// True while an incomplete request line is pending — the slow-loris
  /// signature — and how long its first byte has been waiting.
  bool HasPartialRequest() const { return rbuf_off_ < rbuf_.size(); }
  std::uint64_t RequestAgeNanos(std::uint64_t now_nanos) const {
    return HasPartialRequest() && now_nanos > request_start_nanos_
               ? now_nanos - request_start_nanos_
               : 0;
  }

  /// Close once the pending replies have been flushed (quit, EOF,
  /// oversize kill, drain).
  bool close_after_flush() const { return close_after_flush_; }
  void set_close_after_flush() { close_after_flush_ = true; }

  /// Peer half-closed its write side; buffered requests still answer.
  bool read_eof() const { return read_eof_; }
  void set_read_eof() { read_eof_ = true; }

  /// Input processing paused under write backpressure.
  bool paused() const { return paused_; }
  void set_paused(bool paused) { paused_ = paused; }

  /// EPOLLOUT currently armed for this connection.
  bool want_write() const { return want_write_; }
  void set_want_write(bool want) { want_write_ = want; }

 private:
  UniqueFd fd_;
  WireProtocol protocol_ = WireProtocol::kUndetected;
  std::string rbuf_;
  std::size_t rbuf_off_ = 0;  // consumed prefix (compacted lazily)
  std::string wbuf_;
  std::size_t wbuf_off_ = 0;
  std::uint64_t last_activity_nanos_ = 0;
  std::uint64_t request_start_nanos_ = 0;
  bool close_after_flush_ = false;
  bool read_eof_ = false;
  bool paused_ = false;
  bool want_write_ = false;
};

}  // namespace himpact

#endif  // HIMPACT_NET_CONNECTION_H_
