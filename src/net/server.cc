#include "net/server.h"

#include <cerrno>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <unistd.h>

#include "fault/fault.h"
#include "net/wire.h"

namespace himpact {
namespace {

// Wake-pipe command bytes (written from signal handlers, so the whole
// control channel is single bytes).
constexpr char kWakeDrain = 'd';
constexpr char kWakeStop = 's';

// The one-line notice a shed connection gets before close. Matches the
// wire spelling of the admission gate's per-op shed so clients need one
// error vocabulary for both overload layers.
constexpr char kShedReply[] = "RESOURCE_EXHAUSTED shed\n";

constexpr int kMaxEpollEvents = 256;

// Sweep cadence: the epoll_wait timeout, which bounds how stale a
// deadline check can be. 50ms is far under every default deadline.
constexpr int kSweepMillis = 50;

// Input pulled from one socket per pump pass before replies are flushed
// and other connections get a turn. Bounds per-connection memory and
// keeps one flooding client from starving the rest of the loop.
constexpr std::size_t kMaxReadPerPass = 1 << 16;

Status ErrnoStatus(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

NetServer::NetServer(const NetServerOptions& options, LineHandler handler,
                     FrameHandler frame_handler)
    : options_(options),
      handler_(std::move(handler)),
      frame_handler_(std::move(frame_handler)) {
  OverloadOptions overload;
  overload.max_inflight = options_.max_connections;
  admission_ = std::make_unique<AdmissionController>(overload);
}

NetServer::~NetServer() = default;

StatusOr<std::unique_ptr<NetServer>> NetServer::Create(
    const NetServerOptions& options, LineHandler handler,
    FrameHandler frame_handler) {
  if (options.max_connections == 0) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (options.limits.write_resume_bytes > options.limits.write_buffer_limit) {
    return Status::InvalidArgument(
        "write_resume_bytes must not exceed write_buffer_limit");
  }
  std::unique_ptr<NetServer> server(
      new NetServer(options, std::move(handler), std::move(frame_handler)));
  const Status init = server->Init();
  if (!init.ok()) return init;
  return server;
}

Status NetServer::Init() {
  auto listener = CreateListener(options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  auto port = BoundPort(listener_.get());
  if (!port.ok()) return port.status();
  port_ = port.value();

  epoll_ = UniqueFd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) return ErrnoStatus("epoll_create1");

  int wake[2] = {-1, -1};
  if (::pipe2(wake, O_NONBLOCK | O_CLOEXEC) != 0) {
    return ErrnoStatus("pipe2");
  }
  wake_read_ = UniqueFd(wake[0]);
  wake_write_ = UniqueFd(wake[1]);

  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN;
  event.data.fd = listener_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.get(), &event) != 0) {
    return ErrnoStatus("epoll_ctl(listener)");
  }
  event.data.fd = wake_read_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_read_.get(), &event) != 0) {
    return ErrnoStatus("epoll_ctl(wake)");
  }
  return Status::OK();
}

void NetServer::RequestDrain() {
  // write(2) on the pipe is async-signal-safe; a full pipe means a wake
  // is already pending, which is just as good.
  (void)!::write(wake_write_.get(), &kWakeDrain, 1);
}

void NetServer::Stop() {
  (void)!::write(wake_write_.get(), &kWakeStop, 1);
}

NetServerCounters NetServer::Counters() const {
  NetServerCounters counters;
  counters.accepted = accepted_.load(std::memory_order_relaxed);
  counters.shed_at_accept = shed_at_accept_.load(std::memory_order_relaxed);
  counters.evicted_idle = evicted_idle_.load(std::memory_order_relaxed);
  counters.killed_oversize = killed_oversize_.load(std::memory_order_relaxed);
  counters.killed_bad_magic = killed_bad_magic_.load(std::memory_order_relaxed);
  counters.binary_connections =
      binary_connections_.load(std::memory_order_relaxed);
  counters.drained = drained_.load(std::memory_order_relaxed);
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.partial_writes = partial_writes_.load(std::memory_order_relaxed);
  counters.accept_failures = accept_failures_.load(std::memory_order_relaxed);
  counters.connections = admission_->Counters().inflight;
  return counters;
}

std::string NetServer::CountersJson() const {
  const NetServerCounters c = Counters();
  std::string json = "{";
  const auto field = [&json](const char* name, std::uint64_t value,
                             bool first = false) {
    if (!first) json += ",";
    json += "\"";
    json += name;
    json += "\":";
    json += std::to_string(value);
  };
  field("connections", c.connections, /*first=*/true);
  field("accepted", c.accepted);
  field("shed_at_accept", c.shed_at_accept);
  field("evicted_idle", c.evicted_idle);
  field("killed_oversize", c.killed_oversize);
  field("killed_bad_magic", c.killed_bad_magic);
  field("binary_connections", c.binary_connections);
  field("drained", c.drained);
  field("requests", c.requests);
  field("partial_writes", c.partial_writes);
  field("accept_failures", c.accept_failures);
  json += "}";
  return json;
}

Status NetServer::Run() {
  epoll_event events[kMaxEpollEvents];
  last_sweep_nanos_ = FaultClock::NowNanos();
  for (;;) {
    const int n =
        ::epoll_wait(epoll_.get(), events, kMaxEpollEvents, kSweepMillis);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("epoll_wait");
    }
    std::uint64_t now = FaultClock::NowNanos();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listener_.get() && listener_.valid()) {
        AcceptBatch(now);
        continue;
      }
      if (fd == wake_read_.get()) {
        char commands[64];
        ssize_t got = 0;
        bool stop = false;
        bool drain = false;
        while ((got = ::read(wake_read_.get(), commands, sizeof(commands))) >
               0) {
          for (ssize_t j = 0; j < got; ++j) {
            stop |= commands[j] == kWakeStop;
            drain |= commands[j] == kWakeDrain;
          }
        }
        if (stop) stopped_ = true;
        if (drain && !draining_) BeginDrain(now);
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection* conn = it->second.get();
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(fd);
        continue;
      }
      // Both readable and writable land in the same pump: it flushes,
      // unpauses below the resume watermark, and pulls new input.
      PumpConnection(conn, now);
    }
    if (stopped_) return Status::OK();
    now = FaultClock::NowNanos();
    if (now - last_sweep_nanos_ >=
        static_cast<std::uint64_t>(kSweepMillis) * 1000 * 1000) {
      SweepDeadlines(now);
      last_sweep_nanos_ = now;
    }
    if (draining_ && connections_.empty()) {
      if (drain_callback_) drain_callback_();
      return Status::OK();
    }
  }
}

void NetServer::AcceptBatch(std::uint64_t now) {
  if (draining_) return;
  FaultRegistry& faults = FaultRegistry::Global();
  for (;;) {
    if (faults.AnyArmed() && faults.ShouldFire(FaultPoint::kNetAcceptFail)) {
      // Simulated transient accept failure (EMFILE-style): abandon this
      // batch, count it, and leave the listener registered — pending
      // connections are picked up on the next wakeup.
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto accepted = AcceptConnection(listener_.get());
    if (!accepted.ok()) {
      if (accepted.status().code() != StatusCode::kUnavailable) {
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    UniqueFd fd = std::move(accepted).value();
    if (!admission_->TryAdmit()) {
      // At the cap: replace the oldest sufficiently-idle connection
      // (slow-loris eviction) or shed the newcomer at the socket —
      // either way the overload never reaches the parser.
      if (!EvictOldestIdle(now) || !admission_->TryAdmit()) {
        ShedAtAccept(std::move(fd));
        continue;
      }
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    event.data.fd = fd.get();
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd.get(), &event) != 0) {
      admission_->Release();
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const int raw = fd.get();
    connections_.emplace(raw, std::make_unique<Connection>(std::move(fd), now));
  }
}

void NetServer::ShedAtAccept(UniqueFd fd) {
  shed_at_accept_.fetch_add(1, std::memory_order_relaxed);
  // Best-effort notice; a full socket buffer on a brand-new connection
  // means a hostile client — just close.
  (void)!::write(fd.get(), kShedReply, sizeof(kShedReply) - 1);
}

bool NetServer::EvictOldestIdle(std::uint64_t now) {
  int victim_fd = -1;
  std::uint64_t victim_idle = 0;
  for (const auto& [fd, conn] : connections_) {
    const std::uint64_t idle = conn->IdleNanos(now);
    if (idle >= options_.evict_min_idle_nanos && idle > victim_idle) {
      victim_idle = idle;
      victim_fd = fd;
    }
  }
  if (victim_fd < 0) return false;
  evicted_idle_.fetch_add(1, std::memory_order_relaxed);
  CloseConnection(victim_fd);
  return true;
}

NetServer::ReadResult NetServer::ReadSome(Connection* conn,
                                          std::uint64_t now) {
  char chunk[16384];
  std::size_t total = 0;
  while (total < kMaxReadPerPass) {
    const ssize_t n = ::read(conn->fd(), chunk, sizeof(chunk));
    if (n > 0) {
      conn->AppendInput(chunk, static_cast<std::size_t>(n), now);
      total += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      conn->set_read_eof();
      return total > 0 ? ReadResult::kProgress : ReadResult::kDry;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return total > 0 ? ReadResult::kProgress : ReadResult::kDry;
    }
    CloseConnection(conn->fd());
    return ReadResult::kClosed;
  }
  return ReadResult::kProgress;  // pass budget spent; more may be waiting
}

void NetServer::PumpConnection(Connection* conn, std::uint64_t now) {
  const int fd = conn->fd();
  bool socket_dry = false;
  for (;;) {
    DetectProtocol(conn);
    if (conn->protocol() == WireProtocol::kBinary) {
      ProcessFrames(conn);
    } else {
      ProcessLines(conn);
    }
    if (!FlushWrites(conn, now)) return;  // closed (or fully flushed quit)
    if (conn->paused()) {
      // Write backpressure: stop consuming input. Reading stops too, so
      // the kernel buffer fills and TCP pushes back on the sender. The
      // EPOLLOUT continuation re-enters this pump once replies drain.
      if (!conn->WriteResumable(options_.limits)) return;
      conn->set_paused(false);
      continue;  // answer the pipelined lines that were waiting
    }
    if (conn->close_after_flush() || conn->read_eof() || socket_dry) break;
    const ReadResult read = ReadSome(conn, now);
    if (read == ReadResult::kClosed) return;
    if (read == ReadResult::kDry) socket_dry = true;
  }
  if (conn->read_eof() && !conn->close_after_flush() &&
      conn->PendingWriteBytes() == 0) {
    // Every complete request was answered and flushed. A truncated
    // trailing request (partial line or frame) can never complete after
    // EOF, so it is dropped and the connection closed now instead of
    // lingering until the idle sweep.
    CloseConnection(fd);
  }
}

void NetServer::DetectProtocol(Connection* conn) {
  if (conn->protocol() != WireProtocol::kUndetected) return;
  unsigned char first = 0;
  if (!conn->PeekByte(&first)) return;  // nothing received yet
  // 0xB1 is outside ASCII and no text verb starts with it, so one byte
  // decides. Without a frame handler the byte falls through to the text
  // parser, which answers it with ERR (the pre-binary behavior).
  if (first == kWireRequestMagic && frame_handler_) {
    conn->set_protocol(WireProtocol::kBinary);
    binary_connections_.fetch_add(1, std::memory_order_relaxed);
  } else {
    conn->set_protocol(WireProtocol::kText);
  }
}

void NetServer::ProcessFrames(Connection* conn) {
  std::string frame;
  std::string reply;
  while (!conn->close_after_flush()) {
    if (conn->WriteBacklogged(options_.limits)) {
      conn->set_paused(true);
      return;
    }
    const FrameResult result = conn->NextFrame(options_.limits, &frame);
    if (result == FrameResult::kNone) return;
    if (result == FrameResult::kOversize) {
      // Same policy as an oversize text line: one structured error,
      // then the connection dies — judged on the declared length, so a
      // hostile prefix never grows the buffer.
      killed_oversize_.fetch_add(1, std::memory_order_relaxed);
      conn->QueueReply(EncodeErrorFrame("frame exceeds max request size"));
      conn->set_close_after_flush();
      return;
    }
    if (result == FrameResult::kBadMagic) {
      // The stream is desynced — frame boundaries are unrecoverable, so
      // unlike a bad version or opcode this cannot be answered
      // per-frame. One error frame, then close.
      killed_bad_magic_.fetch_add(1, std::memory_order_relaxed);
      conn->QueueReply(EncodeErrorFrame("bad frame magic: stream desynced"));
      conn->set_close_after_flush();
      return;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    reply.clear();
    const bool keep = frame_handler_(frame, &reply);
    conn->QueueReply(reply);
    if (!keep) conn->set_close_after_flush();
  }
}

void NetServer::ProcessLines(Connection* conn) {
  std::string line;
  std::string reply;
  while (!conn->close_after_flush()) {
    if (conn->WriteBacklogged(options_.limits)) {
      conn->set_paused(true);
      return;
    }
    const LineResult result = conn->NextLine(options_.limits, &line);
    if (result == LineResult::kNone) return;
    if (result == LineResult::kOversize) {
      // One ERR, then the connection dies: an unbounded line is an
      // attack, not a request.
      killed_oversize_.fetch_add(1, std::memory_order_relaxed);
      conn->QueueReply("ERR line too long\n");
      conn->set_close_after_flush();
      return;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    reply.clear();
    const bool keep = handler_(line, &reply);
    conn->QueueReply(reply);
    if (!keep) conn->set_close_after_flush();
  }
}

bool NetServer::FlushWrites(Connection* conn, std::uint64_t now) {
  FaultRegistry& faults = FaultRegistry::Global();
  while (conn->PendingWriteBytes() > 0) {
    std::size_t len = conn->PendingWriteBytes();
    bool injected = false;
    if (faults.AnyArmed() &&
        faults.ShouldFire(FaultPoint::kNetPartialWrite) && len > 1) {
      len = 1;  // clamp to force the continuation path
      injected = true;
    }
    const ssize_t n = ::write(conn->fd(), conn->PendingWriteData(), len);
    if (n > 0) {
      conn->ConsumeWritten(static_cast<std::size_t>(n), now);
      if (injected || static_cast<std::size_t>(n) < len) {
        partial_writes_.fetch_add(1, std::memory_order_relaxed);
      }
      if (injected && conn->PendingWriteBytes() > 0) {
        // Behave exactly like a kernel short write: keep the remainder
        // buffered and continue from EPOLLOUT. The socket never stopped
        // being writable, so force a fresh edge with an unconditional
        // re-MOD instead of waiting for one that will never come.
        ForceWriteEdge(conn);
        return true;
      }
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      partial_writes_.fetch_add(1, std::memory_order_relaxed);
      UpdateWriteInterest(conn);
      return true;
    }
    CloseConnection(conn->fd());
    return false;
  }
  UpdateWriteInterest(conn);
  if (conn->close_after_flush()) {
    CloseConnection(conn->fd());
    return false;
  }
  return true;
}

void NetServer::UpdateWriteInterest(Connection* conn) {
  const bool want = conn->PendingWriteBytes() > 0;
  if (want == conn->want_write()) return;
  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN | EPOLLRDHUP | EPOLLET | (want ? EPOLLOUT : 0u);
  event.data.fd = conn->fd();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn->fd(), &event) == 0) {
    conn->set_want_write(want);
  }
}

void NetServer::ForceWriteEdge(Connection* conn) {
  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN | EPOLLRDHUP | EPOLLET | EPOLLOUT;
  event.data.fd = conn->fd();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn->fd(), &event) == 0) {
    conn->set_want_write(true);
  }
}

void NetServer::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  if (draining_) drained_.fetch_add(1, std::memory_order_relaxed);
  connections_.erase(it);  // closes the fd (UniqueFd)
  admission_->Release();
}

void NetServer::SweepDeadlines(std::uint64_t now) {
  // Collect first: closing mutates the map.
  std::vector<int> expired_requests;
  std::vector<int> expired_idle;
  std::vector<int> expired_drain;
  for (const auto& [fd, conn] : connections_) {
    if (draining_) {
      if (now > drain_deadline_nanos_) expired_drain.push_back(fd);
      continue;
    }
    if (options_.request_timeout_nanos != 0 &&
        conn->RequestAgeNanos(now) > options_.request_timeout_nanos) {
      expired_requests.push_back(fd);
      continue;
    }
    if (options_.idle_timeout_nanos != 0 &&
        conn->IdleNanos(now) > options_.idle_timeout_nanos) {
      expired_idle.push_back(fd);
    }
  }
  for (const int fd : expired_requests) {
    // Slow-loris kill: an incomplete request outlived its deadline.
    // One explicit notice in the connection's own framing, best effort,
    // then close.
    const auto it = connections_.find(fd);
    if (it != connections_.end() &&
        it->second->protocol() == WireProtocol::kBinary) {
      const std::string notice = EncodeErrorFrame("request deadline exceeded");
      (void)!::write(fd, notice.data(), notice.size());
    } else {
      constexpr char kNotice[] = "ERR request deadline exceeded\n";
      (void)!::write(fd, kNotice, sizeof(kNotice) - 1);
    }
    evicted_idle_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(fd);
  }
  for (const int fd : expired_idle) {
    evicted_idle_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(fd);
  }
  for (const int fd : expired_drain) {
    CloseConnection(fd);
  }
}

void NetServer::BeginDrain(std::uint64_t now) {
  draining_ = true;
  drain_deadline_nanos_ = now + options_.drain_timeout_nanos;
  // Stop accepting: deregister and close the listener so the kernel
  // refuses new connections outright.
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.get(), nullptr);
  listener_.Reset();
  // Answer what is already buffered, then flush-and-close every
  // connection. Collect fds first: the pump may close and erase.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection* conn = it->second.get();
    DetectProtocol(conn);
    if (conn->protocol() == WireProtocol::kBinary) {
      ProcessFrames(conn);
    } else {
      ProcessLines(conn);
    }
    const auto again = connections_.find(fd);
    if (again == connections_.end()) continue;
    conn->set_close_after_flush();
    (void)FlushWrites(conn, now);  // closes once fully flushed
  }
}

}  // namespace himpact
