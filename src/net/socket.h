#ifndef HIMPACT_NET_SOCKET_H_
#define HIMPACT_NET_SOCKET_H_

#include <cstdint>
#include <utility>

#include "common/status.h"

/// \file
/// Thin POSIX socket layer under the TCP front end (net/server.h):
/// RAII file descriptors plus the handful of syscall wrappers the event
/// loop needs, each returning `Status` instead of errno so the loop's
/// error handling stays uniform. Everything here is non-blocking by
/// construction — a blocking fd in an edge-triggered epoll loop is a
/// latent wedge, so sockets are created with `O_NONBLOCK | O_CLOEXEC`
/// and there is deliberately no API to clear those flags.

namespace himpact {

/// An owned file descriptor: closes on destruction, moves, never copies.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the held fd (EINTR-safe) and becomes empty.
  void Reset();

  /// Relinquishes ownership without closing.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Creates a non-blocking IPv4 listener bound to 127.0.0.1:`port`
/// (`port` 0 picks an ephemeral port — read it back with `BoundPort`)
/// with `SO_REUSEADDR` and the given accept backlog.
StatusOr<UniqueFd> CreateListener(std::uint16_t port, int backlog);

/// The local port a bound socket actually listens on.
StatusOr<std::uint16_t> BoundPort(int fd);

/// Accepts one pending connection as a non-blocking, close-on-exec fd.
/// An empty accept queue is `kUnavailable` (the event-loop's "drained"
/// signal); real failures (EMFILE, ...) are `kInternal`.
StatusOr<UniqueFd> AcceptConnection(int listener_fd);

/// Starts a non-blocking IPv4 connect to 127.0.0.1:`port` (load
/// generators and tests). The returned fd is connecting or connected;
/// completion is observed via writability.
StatusOr<UniqueFd> ConnectLoopback(std::uint16_t port);

/// Raises `RLIMIT_NOFILE` to its hard limit (or `want` if smaller but
/// sufficient) and returns the resulting soft limit. Benchmarks and
/// tests that open thousands of sockets call this first and scale their
/// connection counts to what the process actually got.
std::uint64_t RaiseFdLimit(std::uint64_t want);

}  // namespace himpact

#endif  // HIMPACT_NET_SOCKET_H_
