#include "net/socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

namespace himpact {
namespace {

Status ErrnoStatus(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));
}

Status SetNonBlockingCloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  const int fd_flags = ::fcntl(fd, F_GETFD, 0);
  if (fd_flags < 0 || ::fcntl(fd, F_SETFD, fd_flags | FD_CLOEXEC) < 0) {
    return ErrnoStatus("fcntl(FD_CLOEXEC)");
  }
  return Status::OK();
}

sockaddr_in LoopbackAddr(std::uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ < 0) return;
  // EINTR after close leaves the fd closed on Linux; retrying would
  // race a concurrent open. Close once and move on.
  ::close(fd_);
  fd_ = -1;
}

StatusOr<UniqueFd> CreateListener(std::uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  const Status flags = SetNonBlockingCloexec(fd.get());
  if (!flags.ok()) return flags;
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return ErrnoStatus("listen");
  return fd;
}

StatusOr<std::uint16_t> BoundPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

StatusOr<UniqueFd> AcceptConnection(int listener_fd) {
  for (;;) {
    const int raw = ::accept4(listener_fd, nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw >= 0) return UniqueFd(raw);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("accept queue drained");
    }
    // ECONNABORTED is a connection that died in the backlog — skip it
    // and keep draining the queue.
    if (errno == ECONNABORTED) continue;
    return ErrnoStatus("accept4");
  }
}

StatusOr<UniqueFd> ConnectLoopback(std::uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  const Status flags = SetNonBlockingCloexec(fd.get());
  if (!flags.ok()) return flags;
  const sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0 ||
      errno == EINPROGRESS) {
    return fd;
  }
  return ErrnoStatus("connect");
}

std::uint64_t RaiseFdLimit(std::uint64_t want) {
  rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 0;
  rlim_t target = limit.rlim_max;
  if (want != 0 && static_cast<rlim_t>(want) < target) {
    target = static_cast<rlim_t>(want);
  }
  if (target > limit.rlim_cur) {
    limit.rlim_cur = target;
    // Best effort: a denied raise keeps the old soft limit, which the
    // caller reads back and scales to.
    (void)::setrlimit(RLIMIT_NOFILE, &limit);
    (void)::getrlimit(RLIMIT_NOFILE, &limit);
  }
  return static_cast<std::uint64_t>(limit.rlim_cur);
}

}  // namespace himpact
