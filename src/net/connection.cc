#include "net/connection.h"

#include "net/wire.h"

namespace himpact {

void Connection::AppendInput(const char* data, std::size_t n,
                             std::uint64_t now_nanos) {
  if (n == 0) return;
  if (!HasPartialRequest()) request_start_nanos_ = now_nanos;
  // Compact before growing: the consumed prefix is dead weight and the
  // buffer must stay bounded by max_line_bytes + one read chunk.
  if (rbuf_off_ > 0) {
    rbuf_.erase(0, rbuf_off_);
    rbuf_off_ = 0;
  }
  rbuf_.append(data, n);
  last_activity_nanos_ = now_nanos;
}

LineResult Connection::NextLine(const ConnectionLimits& limits,
                                std::string* line) {
  const std::size_t newline = rbuf_.find('\n', rbuf_off_);
  if (newline == std::string::npos) {
    if (rbuf_.size() - rbuf_off_ > limits.max_line_bytes) {
      return LineResult::kOversize;
    }
    return LineResult::kNone;
  }
  if (newline - rbuf_off_ > limits.max_line_bytes) {
    return LineResult::kOversize;
  }
  line->assign(rbuf_, rbuf_off_, newline - rbuf_off_);
  rbuf_off_ = newline + 1;
  if (rbuf_off_ >= rbuf_.size()) {
    rbuf_.clear();
    rbuf_off_ = 0;
  } else {
    // More pipelined bytes follow; the next request's clock starts at
    // the moment its first byte became the pending fragment — i.e. now,
    // when the previous line was consumed.
    request_start_nanos_ = last_activity_nanos_;
  }
  return LineResult::kLine;
}

FrameResult Connection::NextFrame(const ConnectionLimits& limits,
                                  std::string* frame) {
  const std::size_t pending = rbuf_.size() - rbuf_off_;
  if (pending == 0) return FrameResult::kNone;
  if (static_cast<unsigned char>(rbuf_[rbuf_off_]) != kWireRequestMagic) {
    return FrameResult::kBadMagic;
  }
  if (pending < kWirePreludeBytes) return FrameResult::kNone;
  const std::uint32_t payload_bytes =
      WirePayloadLength(rbuf_.data() + rbuf_off_);
  const std::uint64_t frame_bytes =
      static_cast<std::uint64_t>(kWirePreludeBytes) + payload_bytes;
  // Reject on the declared size, before the payload arrives: a hostile
  // length prefix must not grow the read buffer past the line bound.
  if (frame_bytes > limits.max_line_bytes) return FrameResult::kOversize;
  if (pending < frame_bytes) return FrameResult::kNone;
  frame->assign(rbuf_, rbuf_off_, static_cast<std::size_t>(frame_bytes));
  rbuf_off_ += static_cast<std::size_t>(frame_bytes);
  if (rbuf_off_ >= rbuf_.size()) {
    rbuf_.clear();
    rbuf_off_ = 0;
  } else {
    // Same pipelining rule as NextLine: the next request's clock starts
    // when the previous frame was consumed.
    request_start_nanos_ = last_activity_nanos_;
  }
  return FrameResult::kFrame;
}

void Connection::ConsumeWritten(std::size_t n, std::uint64_t now_nanos) {
  wbuf_off_ += n;
  if (wbuf_off_ >= wbuf_.size()) {
    wbuf_.clear();
    wbuf_off_ = 0;
  }
  last_activity_nanos_ = now_nanos;
}

}  // namespace himpact
