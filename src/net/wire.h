#ifndef HIMPACT_NET_WIRE_H_
#define HIMPACT_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "service/protocol.h"

/// \file
/// The length-prefixed binary wire protocol, version 1. The normative
/// byte-level specification — frame grammar, opcode table, status
/// codes, version rules, worked hex examples — is docs/PROTOCOL.md;
/// its test vectors are asserted against this codec by
/// tests/docs_vectors_test.cc, so spec and code cannot diverge
/// silently.
///
/// Every frame starts with the fixed six-byte prelude
///
///   offset 0  magic    0xB1 requests / 0xB2 replies
///   offset 1  version  0x01
///   offset 2  u32 LE   payload length N
///   offset 6  payload  (N bytes)
///
/// The prelude layout is frozen across protocol versions (the
/// forward-compatibility rule: a server can frame — and answer with a
/// structured error — a frame whose version it does not speak).
/// Request payloads are `opcode + fixed-width operands`; reply
/// payloads are `status + opcode + body`. All integers are
/// little-endian, estimates travel as raw IEEE-754 binary64 — the
/// exact doubles the text protocol would print via `FormatEstimate`,
/// which is what the text/binary parity tests assert.
///
/// The codec is pure (no I/O, no allocation beyond the returned
/// strings) and is shared by the server (`ServiceSession::HandleFrame`),
/// the client example (`examples/hstream_client.cpp`), the F8 bench,
/// and the fuzz/parity tests.

namespace himpact {

/// First frame byte. 0xB1/0xB2 are outside ASCII, so the first byte of
/// a connection cleanly separates binary clients from text clients
/// (every text verb starts with a lowercase ASCII letter).
inline constexpr unsigned char kWireRequestMagic = 0xB1;
inline constexpr unsigned char kWireReplyMagic = 0xB2;

/// The protocol version this codec speaks.
inline constexpr unsigned char kWireVersion = 0x01;

/// Frame prelude size: magic + version + u32 payload length.
inline constexpr std::size_t kWirePreludeBytes = 6;

/// Request opcodes, one per text verb (docs/PROTOCOL.md, "Opcodes").
enum class WireOpcode : unsigned char {
  kAdd = 0x01,
  kPaper = 0x02,
  kGet = 0x03,
  kTop = 0x04,
  kHeavy = 0x05,
  kStats = 0x06,
  kHealth = 0x07,
  kSave = 0x08,
  kQuit = 0x09,
};

/// Reply status byte, mirroring the text protocol's reply-code
/// vocabulary (`ERR` / `RESOURCE_EXHAUSTED` / `DEADLINE_EXCEEDED`,
/// docs/ROBUSTNESS.md).
enum class WireStatus : unsigned char {
  kOk = 0x00,
  kErr = 0x01,
  kResourceExhausted = 0x02,
  kDeadlineExceeded = 0x03,
};

/// The `tier` byte of a binary `get` reply for a never-seen user
/// (the text protocol's "none").
inline constexpr unsigned char kWireTierNone = 0xFF;

/// Reads the payload length out of a frame prelude. The caller must
/// have `kWirePreludeBytes` bytes available at `prelude`.
std::uint32_t WirePayloadLength(const char* prelude);

// ---------------------------------------------------------------------
// Requests.

/// Encodes one parsed command as a complete request frame (prelude +
/// payload). Every `Command` the text parser can produce is encodable.
std::string EncodeRequestFrame(const Command& command);

/// Decodes a complete request frame (prelude + payload, as extracted by
/// `Connection::NextFrame`). `kInvalidArgument` with a reason suitable
/// for an error reply on anything malformed: bad magic, unsupported
/// version, unknown opcode, short/long operands, or operand values the
/// text parser would reject (k = 0, empty/duplicate/oversized author
/// lists, empty save path).
StatusOr<Command> DecodeRequestFrame(const std::string& frame);

// ---------------------------------------------------------------------
// Replies.

/// Encodes a command outcome as a complete reply frame. Non-OK results
/// encode as `status + opcode + message bytes` regardless of kind.
std::string EncodeReplyFrame(const CommandResult& result);

/// Encodes the one error reply that can precede a connection kill when
/// no request was decodable at all (bad magic, oversized declared
/// length): status `kErr`, opcode 0x00, `reason` as the body.
std::string EncodeErrorFrame(const std::string& reason);

/// Decodes a complete reply frame back into the transport-neutral
/// result. Lossless against `EncodeReplyFrame`: re-encoding the decoded
/// result reproduces the frame byte-identically, and re-rendering it
/// with `FormatTextReply` reproduces the text-protocol reply — the
/// parity property the tests and `hstream_client` rely on.
StatusOr<CommandResult> DecodeReplyFrame(const std::string& frame);

}  // namespace himpact

#endif  // HIMPACT_NET_WIRE_H_
