#ifndef HIMPACT_NET_SERVER_H_
#define HIMPACT_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "fault/admission.h"
#include "net/connection.h"
#include "net/socket.h"

/// \file
/// The async TCP front end: a single-threaded, edge-triggered epoll
/// event loop hosting both wire protocols on one port. The loop is
/// protocol-agnostic — a `LineHandler` maps one request line to one
/// reply block, a `FrameHandler` maps one binary frame to one reply
/// frame, and the connection's first byte picks which one runs
/// (docs/PROTOCOL.md "Protocol selection") — so the hardened
/// `service/protocol.h` parser and the `net/wire.h` codec stay the
/// core and the network layer adds only transport concerns:
///
///  * **Accept-storm batching + socket-level shedding.** Each listener
///    wakeup drains the whole accept queue. Past the connection cap
///    (a PR 4 `AdmissionController` with `max_inflight` = cap, one
///    admission slot held per connection for its lifetime) a newcomer
///    either replaces the oldest sufficiently-idle connection
///    (slow-loris eviction) or is shed at `accept()` with a one-line
///    `RESOURCE_EXHAUSTED` notice — overload never reaches the parser.
///  * **Bounded buffers + pipelining + partial writes.** Requests may
///    be pipelined; replies queue into a bounded write buffer with
///    partial-write continuation via EPOLLOUT. A connection whose
///    reply backlog passes the high watermark stops being read until
///    it drains (write backpressure), and a request that exceeds
///    `max_line_bytes` — a text line with no newline, or a binary
///    frame by declared size — kills the connection with one
///    structured error reply. A binary stream whose next byte is not
///    the request magic is desynced and killed the same way.
///  * **Lifecycle deadlines off `FaultClock`.** Per-connection idle
///    and per-request (partial-line age) deadlines read the fault-aware
///    clock, so `clock-skew` injection exercises the network timeouts
///    like every other timeout in the system. `net-accept-fail` and
///    `net-partial-write` (docs/ROBUSTNESS.md) inject into the loop
///    itself.
///  * **Graceful drain.** `RequestDrain()` (async-signal-safe — wire it
///    to SIGTERM) stops accepting, answers what is already buffered,
///    flushes every reply under a drain deadline, then invokes the
///    drain callback (final checkpoint) and returns from `Run`.
///
/// All counters are relaxed atomics: the loop is single-threaded, but
/// benches, tests, and the `health` verb read them from outside.

namespace himpact {

/// Transport configuration; defaults suit tests. `hstream_serve` maps
/// its `--listen` flag family onto this.
struct NetServerOptions {
  /// Loopback port to bind (0 = ephemeral; read back via `port()`).
  std::uint16_t port = 0;
  int backlog = 511;
  /// Hard connection cap (admission watermark). At the cap a new
  /// arrival evicts the oldest connection idle for at least
  /// `evict_min_idle_nanos`, or is shed at accept.
  std::size_t max_connections = 1024;
  ConnectionLimits limits;
  /// Eviction deadline for a connection with no read/write progress
  /// (0 disables).
  std::uint64_t idle_timeout_nanos = 60ull * 1000 * 1000 * 1000;
  /// Kill deadline for an incomplete request line (slow-loris writers;
  /// 0 disables).
  std::uint64_t request_timeout_nanos = 10ull * 1000 * 1000 * 1000;
  /// Minimum idleness before a cap-hit arrival may evict a connection.
  std::uint64_t evict_min_idle_nanos = 100ull * 1000 * 1000;
  /// How long a drain waits for replies to flush before force-closing.
  std::uint64_t drain_timeout_nanos = 2ull * 1000 * 1000 * 1000;
};

/// Loop counters; every lifecycle decision is counted, never silent.
struct NetServerCounters {
  std::uint64_t accepted = 0;
  std::uint64_t shed_at_accept = 0;
  std::uint64_t evicted_idle = 0;
  std::uint64_t killed_oversize = 0;
  std::uint64_t killed_bad_magic = 0;
  std::uint64_t binary_connections = 0;  // connections latched to binary
  std::uint64_t drained = 0;
  std::uint64_t requests = 0;
  std::uint64_t partial_writes = 0;
  std::uint64_t accept_failures = 0;
  std::uint64_t connections = 0;  // currently open
};

/// Maps one request line to one reply block (must be '\n'-terminated).
/// Return false to close the connection after the reply flushes (quit).
using LineHandler = std::function<bool(const std::string& line,
                                       std::string* reply)>;

/// Maps one complete binary request frame (prelude + payload) to one
/// reply frame — never empty, even for undecodable frames (the handler
/// answers those with a structured error frame). Return false to close
/// after the reply flushes (quit).
using FrameHandler = std::function<bool(const std::string& frame,
                                        std::string* reply)>;

/// The epoll event loop. Create, then `Run()` on the owning thread;
/// `RequestDrain`/`Stop` may be called from any thread or signal
/// handler.
class NetServer {
 public:
  /// Binds and listens; the loop is not running yet. Without a
  /// `frame_handler` the server is text-only: a binary first byte is
  /// handed to the line handler as (malformed) text, which answers it
  /// with the text protocol's `ERR` — the pre-binary behavior.
  static StatusOr<std::unique_ptr<NetServer>> Create(
      const NetServerOptions& options, LineHandler handler,
      FrameHandler frame_handler = nullptr);

  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (resolves port 0).
  std::uint16_t port() const { return port_; }

  /// Runs the event loop until a drain completes or `Stop()`. Returns
  /// OK after a graceful drain/stop, an error if the loop itself broke.
  Status Run();

  /// Async-signal-safe graceful-shutdown request (one byte on the wake
  /// pipe): stop accepting, flush, invoke the drain callback, return.
  void RequestDrain();

  /// Async-signal-safe hard stop: close everything, no flush.
  void Stop();

  /// Runs `callback` on the loop thread after a drain fully flushed
  /// (the final-checkpoint hook). Set before `Run`.
  void set_drain_callback(std::function<void()> callback) {
    drain_callback_ = std::move(callback);
  }

  /// Relaxed snapshot of the loop counters.
  NetServerCounters Counters() const;

  /// The counters as one JSON object (the `health` verb's "net" field).
  std::string CountersJson() const;

  /// The connection-cap admission gate (counters feed health too).
  const AdmissionController& admission() const { return *admission_; }

 private:
  enum class ReadResult { kProgress, kDry, kClosed };

  NetServer(const NetServerOptions& options, LineHandler handler,
            FrameHandler frame_handler);

  Status Init();
  void AcceptBatch(std::uint64_t now);
  void ShedAtAccept(UniqueFd fd);
  bool EvictOldestIdle(std::uint64_t now);
  ReadResult ReadSome(Connection* conn, std::uint64_t now);
  void PumpConnection(Connection* conn, std::uint64_t now);
  void DetectProtocol(Connection* conn);
  void ProcessLines(Connection* conn);
  void ProcessFrames(Connection* conn);
  bool FlushWrites(Connection* conn, std::uint64_t now);
  void UpdateWriteInterest(Connection* conn);
  void ForceWriteEdge(Connection* conn);
  void CloseConnection(int fd);
  void SweepDeadlines(std::uint64_t now);
  void BeginDrain(std::uint64_t now);

  NetServerOptions options_;
  LineHandler handler_;
  FrameHandler frame_handler_;
  std::function<void()> drain_callback_;

  UniqueFd listener_;
  UniqueFd epoll_;
  UniqueFd wake_read_;
  UniqueFd wake_write_;
  std::uint16_t port_ = 0;

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::unique_ptr<AdmissionController> admission_;
  bool draining_ = false;
  bool stopped_ = false;
  std::uint64_t drain_deadline_nanos_ = 0;
  std::uint64_t last_sweep_nanos_ = 0;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_at_accept_{0};
  std::atomic<std::uint64_t> evicted_idle_{0};
  std::atomic<std::uint64_t> killed_oversize_{0};
  std::atomic<std::uint64_t> killed_bad_magic_{0};
  std::atomic<std::uint64_t> binary_connections_{0};
  std::atomic<std::uint64_t> drained_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> partial_writes_{0};
  std::atomic<std::uint64_t> accept_failures_{0};
};

}  // namespace himpact

#endif  // HIMPACT_NET_SERVER_H_
