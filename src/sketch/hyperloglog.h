#ifndef HIMPACT_SKETCH_HYPERLOGLOG_H_
#define HIMPACT_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/space.h"
#include "common/status.h"
#include "hash/tabulation.h"

/// \file
/// HyperLogLog distinct counter (Flajolet et al. 2007), with the standard
/// small-range (linear counting) correction.
///
/// Not used inside the paper's algorithms (those use the `(1±eps, delta)`
/// `DistinctCounter`); HLL is the industry-standard baseline the T7
/// experiment compares against on the space/accuracy axis.

namespace himpact {

/// A HyperLogLog sketch with `2^precision` 6-bit registers.
class HyperLogLog {
 public:
  /// Requires `4 <= precision <= 18`.
  HyperLogLog(int precision, std::uint64_t seed);

  /// Observes one element.
  void Add(std::uint64_t element);

  /// Batched `Add`: hashes four elements ahead so the tabulation-table
  /// loads pipeline, and computes ranks with a hardware leading-zero
  /// count. Registers take a max, so the final state is byte-identical to
  /// the scalar sequence in any order. Zero allocations.
  void AddBatch(std::span<const std::uint64_t> elements);

  /// Estimates the number of distinct elements observed.
  double Estimate() const;

  /// Merges another sketch built with the same `(precision, seed)`
  /// (register-wise max); afterwards the estimate covers the union of
  /// both streams. Exact merge: the merged registers are identical to
  /// those of a single sketch that saw both streams, in any order.
  void Merge(const HyperLogLog& other);

  /// Number of registers (`2^precision`).
  std::size_t num_registers() const { return registers_.size(); }

  /// Space used by the sketch.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (construction parameters + registers).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a sketch from a `SerializeTo` checkpoint.
  static StatusOr<HyperLogLog> DeserializeFrom(ByteReader& reader);

  /// Appends only the mutable registers.
  void SerializeStateTo(ByteWriter& writer) const;

  /// Restores the state written by `SerializeStateTo` into this sketch,
  /// which must have been constructed with the same `(precision, seed)`.
  Status DeserializeStateFrom(ByteReader& reader);

 private:
  int precision_;
  std::uint64_t seed_;  // construction seed (checkpoint reconstruction)
  TabulationHash hash_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace himpact

#endif  // HIMPACT_SKETCH_HYPERLOGLOG_H_
