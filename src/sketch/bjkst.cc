#include "sketch/bjkst.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "hash/mix.h"

namespace himpact {

BjkstDistinct::BjkstDistinct(double eps, std::uint64_t seed)
    : capacity_(0), hash_(/*k=*/2, SplitMix64(seed ^ 0x5be0cd19137e2179ULL)) {
  HIMPACT_CHECK(eps > 0.0 && eps < 1.0);
  // c/eps^2 buffer; c = 24 gives the textbook constant-probability bound.
  capacity_ = static_cast<std::size_t>(std::ceil(24.0 / (eps * eps)));
}

int BjkstDistinct::TrailingZeros(std::uint64_t x) {
  if (x == 0) return 64;
  int zeros = 0;
  while ((x & 1) == 0) {
    ++zeros;
    x >>= 1;
  }
  return zeros;
}

void BjkstDistinct::Add(std::uint64_t element) {
  const std::uint64_t h = hash_(element);
  if (TrailingZeros(h) < z_) return;
  buffer_.insert(h);
  while (buffer_.size() > capacity_) {
    ++z_;
    for (auto it = buffer_.begin(); it != buffer_.end();) {
      if (TrailingZeros(*it) < z_) {
        it = buffer_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

double BjkstDistinct::Estimate() const {
  return static_cast<double>(buffer_.size()) * std::ldexp(1.0, z_);
}

SpaceUsage BjkstDistinct::EstimateSpace() const {
  SpaceUsage usage = hash_.EstimateSpace();
  usage.words += buffer_.size() + 2;
  usage.bytes += sizeof(*this) + buffer_.size() * sizeof(std::uint64_t) * 2;
  return usage;
}

}  // namespace himpact
