#include "sketch/bjkst.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "hash/mix.h"

namespace himpact {

BjkstDistinct::BjkstDistinct(double eps, std::uint64_t seed)
    : eps_(eps),
      seed_(seed),
      capacity_(0),
      hash_(/*k=*/2, SplitMix64(seed ^ 0x5be0cd19137e2179ULL)) {
  HIMPACT_CHECK(eps > 0.0 && eps < 1.0);
  // c/eps^2 buffer; c = 24 gives the textbook constant-probability bound.
  capacity_ = static_cast<std::size_t>(std::ceil(24.0 / (eps * eps)));
}

int BjkstDistinct::TrailingZeros(std::uint64_t x) {
  if (x == 0) return 64;
  int zeros = 0;
  while ((x & 1) == 0) {
    ++zeros;
    x >>= 1;
  }
  return zeros;
}

void BjkstDistinct::Add(std::uint64_t element) {
  const std::uint64_t h = hash_(element);
  if (TrailingZeros(h) < z_) return;
  buffer_.insert(h);
  ShrinkToCapacity();
}

void BjkstDistinct::AddBatch(std::span<const std::uint64_t> elements) {
  // Hashing is independent of sketch state, so four hashes are computed
  // ahead to pipeline; the filter/insert below stays strictly in order
  // because an insert can raise `z_`, which filters later elements —
  // exactly the scalar sequence, so the final state is byte-identical.
  const std::size_t n = elements.size();
  std::size_t i = 0;
  std::uint64_t hashes[4];
  const auto apply = [this](std::uint64_t h) {
    // countr_zero == TrailingZeros for h != 0; h == 0 gives 64 in both.
    const int zeros = h == 0 ? 64 : std::countr_zero(h);
    if (zeros < z_) return;
    buffer_.insert(h);
    ShrinkToCapacity();
  };
  for (; i + 4 <= n; i += 4) {
    hashes[0] = hash_(elements[i]);
    hashes[1] = hash_(elements[i + 1]);
    hashes[2] = hash_(elements[i + 2]);
    hashes[3] = hash_(elements[i + 3]);
    apply(hashes[0]);
    apply(hashes[1]);
    apply(hashes[2]);
    apply(hashes[3]);
  }
  for (; i < n; ++i) apply(hash_(elements[i]));
}

void BjkstDistinct::ShrinkToCapacity() {
  while (buffer_.size() > capacity_) {
    ++z_;
    for (auto it = buffer_.begin(); it != buffer_.end();) {
      if (TrailingZeros(*it) < z_) {
        it = buffer_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void BjkstDistinct::Merge(const BjkstDistinct& other) {
  HIMPACT_CHECK_MSG(eps_ == other.eps_ && seed_ == other.seed_,
                    "merging BjkstDistincts with different parameters");
  if (other.z_ > z_) {
    z_ = other.z_;
    for (auto it = buffer_.begin(); it != buffer_.end();) {
      if (TrailingZeros(*it) < z_) {
        it = buffer_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::uint64_t h : other.buffer_) {
    if (TrailingZeros(h) >= z_) buffer_.insert(h);
  }
  ShrinkToCapacity();
}

double BjkstDistinct::Estimate() const {
  return static_cast<double>(buffer_.size()) * std::ldexp(1.0, z_);
}

namespace {
constexpr std::uint64_t kBjkstMagic = 0x48494d5042534b31ULL;
}  // namespace

void BjkstDistinct::SerializeTo(ByteWriter& writer) const {
  writer.U64(kBjkstMagic);
  writer.F64(eps_);
  writer.U64(seed_);
  SerializeStateTo(writer);
}

StatusOr<BjkstDistinct> BjkstDistinct::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kBjkstMagic) {
    return Status::InvalidArgument("not a BjkstDistinct checkpoint");
  }
  double eps = 0.0;
  std::uint64_t seed = 0;
  if (!reader.F64(&eps) || !reader.U64(&seed)) {
    return Status::InvalidArgument("truncated BjkstDistinct checkpoint");
  }
  // Bound eps below so capacity = 24/eps^2 cannot explode from a corrupt
  // field; the 1e-3 floor caps the buffer at 24M slots pre-allocation.
  if (!(eps > 1e-3) || !(eps < 1.0)) {
    return Status::InvalidArgument("corrupt BjkstDistinct parameters");
  }
  BjkstDistinct sketch(eps, seed);
  const Status status = sketch.DeserializeStateFrom(reader);
  if (!status.ok()) return status;
  return sketch;
}

void BjkstDistinct::SerializeStateTo(ByteWriter& writer) const {
  writer.U64(static_cast<std::uint64_t>(z_));
  // Sort for a deterministic byte stream (the set iterates in hash order,
  // which is not stable across runs or standard libraries).
  std::vector<std::uint64_t> sorted(buffer_.begin(), buffer_.end());
  std::sort(sorted.begin(), sorted.end());
  writer.U64(sorted.size());
  for (const std::uint64_t h : sorted) writer.U64(h);
}

Status BjkstDistinct::DeserializeStateFrom(ByteReader& reader) {
  std::uint64_t z = 0;
  std::uint64_t size = 0;
  if (!reader.U64(&z) || !reader.U64(&size)) {
    return Status::InvalidArgument("truncated BjkstDistinct state");
  }
  if (z > 64) {
    return Status::InvalidArgument("corrupt BjkstDistinct depth");
  }
  if (size > capacity_ || size * 8 > reader.remaining()) {
    return Status::InvalidArgument("corrupt BjkstDistinct buffer size");
  }
  std::unordered_set<std::uint64_t> buffer;
  buffer.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    std::uint64_t h = 0;
    if (!reader.U64(&h)) {
      return Status::InvalidArgument("truncated BjkstDistinct state");
    }
    // Every retained hash must respect the subsampling invariant.
    if (TrailingZeros(h) < static_cast<int>(z)) {
      return Status::InvalidArgument(
          "BjkstDistinct buffer entry violates depth invariant");
    }
    buffer.insert(h);
  }
  if (buffer.size() != size) {
    return Status::InvalidArgument("duplicate values in BjkstDistinct buffer");
  }
  z_ = static_cast<int>(z);
  buffer_ = std::move(buffer);
  return Status::OK();
}

SpaceUsage BjkstDistinct::EstimateSpace() const {
  SpaceUsage usage = hash_.EstimateSpace();
  usage.words += buffer_.size() + 2;
  usage.bytes += sizeof(*this) + buffer_.size() * sizeof(std::uint64_t) * 2;
  return usage;
}

}  // namespace himpact
