#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {

CountMinSketch::CountMinSketch(double eps, double delta, std::uint64_t seed)
    : eps_(eps), delta_(delta), seed_(seed) {
  HIMPACT_CHECK(eps > 0.0 && eps < 1.0);
  HIMPACT_CHECK(delta > 0.0 && delta < 1.0);
  width_ = static_cast<std::size_t>(std::ceil(std::exp(1.0) / eps));
  depth_ = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  if (depth_ < 1) depth_ = 1;

  std::uint64_t hash_seed = SplitMix64(seed ^ 0x5851f42d4c957f2dULL);
  hashes_.reserve(depth_);
  for (std::size_t d = 0; d < depth_; ++d) {
    hash_seed = SplitMix64(hash_seed);
    hashes_.emplace_back(width_, hash_seed);
  }
  counters_.assign(depth_ * width_, 0);
}

void CountMinSketch::Update(std::uint64_t key, std::uint64_t count) {
  total_ += count;
  for (std::size_t d = 0; d < depth_; ++d) {
    counters_[d * width_ + static_cast<std::size_t>(hashes_[d](key))] += count;
  }
}

void CountMinSketch::UpdateBatch(std::span<const std::uint64_t> keys) {
  // Row-outer with tiled hashing: each row's hash runs over a small tile
  // into a stack buffer (pure ALU/ILP, no aliasing with the counter
  // stores), then the increments land while the row stays cache-hot.
  // Counter rows are sums, so reordering increments across events leaves
  // every counter — and the serialized state — identical to the scalar
  // sequence.
  constexpr std::size_t kTile = 256;
  std::uint64_t buckets[kTile];
  total_ += keys.size();
  for (std::size_t d = 0; d < depth_; ++d) {
    const PairwiseRangeHash& hash = hashes_[d];
    std::uint64_t* const row = counters_.data() + d * width_;
    for (std::size_t base = 0; base < keys.size(); base += kTile) {
      const std::size_t m = std::min(kTile, keys.size() - base);
      hash.HashBatch(keys.data() + base, buckets, m);
      for (std::size_t i = 0; i < m; ++i) {
        ++row[static_cast<std::size_t>(buckets[i])];
      }
    }
  }
}

std::uint64_t CountMinSketch::Query(std::uint64_t key) const {
  std::uint64_t best = ~std::uint64_t{0};
  for (std::size_t d = 0; d < depth_; ++d) {
    best = std::min(
        best,
        counters_[d * width_ + static_cast<std::size_t>(hashes_[d](key))]);
  }
  return best;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  HIMPACT_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                        seed_ == other.seed_,
                    "merging CountMinSketches with different parameters");
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_ += other.total_;
}

namespace {
constexpr std::uint64_t kCountMinMagic = 0x48494d50434d5331ULL;
}  // namespace

void CountMinSketch::SerializeTo(ByteWriter& writer) const {
  writer.U64(kCountMinMagic);
  writer.F64(eps_);
  writer.F64(delta_);
  writer.U64(seed_);
  SerializeStateTo(writer);
}

StatusOr<CountMinSketch> CountMinSketch::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kCountMinMagic) {
    return Status::InvalidArgument("not a CountMinSketch checkpoint");
  }
  double eps = 0.0;
  double delta = 0.0;
  std::uint64_t seed = 0;
  if (!reader.F64(&eps) || !reader.F64(&delta) || !reader.U64(&seed)) {
    return Status::InvalidArgument("truncated CountMinSketch checkpoint");
  }
  // Bound eps below so width = e/eps cannot explode, and check that the
  // implied counter grid actually fits in the remaining buffer before the
  // constructor allocates it.
  if (!(eps > 1e-7) || !(eps < 1.0) || !(delta > 1e-12) || !(delta < 1.0)) {
    return Status::InvalidArgument("corrupt CountMinSketch parameters");
  }
  const double implied_width = std::ceil(std::exp(1.0) / eps);
  const double implied_depth = std::max(1.0, std::ceil(std::log(1.0 / delta)));
  if (implied_width * implied_depth * 8.0 >
      static_cast<double>(reader.remaining())) {
    return Status::InvalidArgument(
        "CountMinSketch checkpoint smaller than its declared geometry");
  }
  CountMinSketch sketch(eps, delta, seed);
  const Status status = sketch.DeserializeStateFrom(reader);
  if (!status.ok()) return status;
  return sketch;
}

void CountMinSketch::SerializeStateTo(ByteWriter& writer) const {
  writer.U64(total_);
  writer.U64(counters_.size());
  for (const std::uint64_t counter : counters_) writer.U64(counter);
}

Status CountMinSketch::DeserializeStateFrom(ByteReader& reader) {
  std::uint64_t total = 0;
  std::uint64_t num_counters = 0;
  if (!reader.U64(&total) || !reader.U64(&num_counters)) {
    return Status::InvalidArgument("truncated CountMinSketch state");
  }
  if (num_counters != counters_.size()) {
    return Status::InvalidArgument("CountMinSketch counter-count mismatch");
  }
  std::vector<std::uint64_t> counters;
  counters.reserve(num_counters);
  for (std::uint64_t i = 0; i < num_counters; ++i) {
    std::uint64_t counter = 0;
    if (!reader.U64(&counter)) {
      return Status::InvalidArgument("truncated CountMinSketch state");
    }
    counters.push_back(counter);
  }
  total_ = total;
  counters_ = std::move(counters);
  return Status::OK();
}

SpaceUsage CountMinSketch::EstimateSpace() const {
  SpaceUsage usage;
  for (const auto& hash : hashes_) usage += hash.EstimateSpace();
  usage.words += counters_.size();
  usage.bytes += sizeof(*this) + counters_.capacity() * sizeof(std::uint64_t);
  return usage;
}

}  // namespace himpact
