#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {

CountMinSketch::CountMinSketch(double eps, double delta, std::uint64_t seed)
    : seed_(seed) {
  HIMPACT_CHECK(eps > 0.0 && eps < 1.0);
  HIMPACT_CHECK(delta > 0.0 && delta < 1.0);
  width_ = static_cast<std::size_t>(std::ceil(std::exp(1.0) / eps));
  depth_ = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  if (depth_ < 1) depth_ = 1;

  std::uint64_t hash_seed = SplitMix64(seed ^ 0x5851f42d4c957f2dULL);
  hashes_.reserve(depth_);
  for (std::size_t d = 0; d < depth_; ++d) {
    hash_seed = SplitMix64(hash_seed);
    hashes_.emplace_back(width_, hash_seed);
  }
  counters_.assign(depth_ * width_, 0);
}

void CountMinSketch::Update(std::uint64_t key, std::uint64_t count) {
  total_ += count;
  for (std::size_t d = 0; d < depth_; ++d) {
    counters_[d * width_ + static_cast<std::size_t>(hashes_[d](key))] += count;
  }
}

std::uint64_t CountMinSketch::Query(std::uint64_t key) const {
  std::uint64_t best = ~std::uint64_t{0};
  for (std::size_t d = 0; d < depth_; ++d) {
    best = std::min(
        best,
        counters_[d * width_ + static_cast<std::size_t>(hashes_[d](key))]);
  }
  return best;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  HIMPACT_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                        seed_ == other.seed_,
                    "merging CountMinSketches with different parameters");
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_ += other.total_;
}

SpaceUsage CountMinSketch::EstimateSpace() const {
  SpaceUsage usage;
  for (const auto& hash : hashes_) usage += hash.EstimateSpace();
  usage.words += counters_.size();
  usage.bytes += sizeof(*this) + counters_.capacity() * sizeof(std::uint64_t);
  return usage;
}

}  // namespace himpact
