#include "sketch/s_sparse.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {
namespace {

std::uint64_t AddMod61(std::uint64_t a, std::uint64_t b) {
  std::uint64_t sum = a + b;
  if (sum >= kMersenne61) sum -= kMersenne61;
  return sum;
}

}  // namespace

SSparseRecovery::SSparseRecovery(std::size_t s, double delta,
                                 std::uint64_t seed)
    : s_(s),
      delta_(delta),
      rows_(0),
      cols_(2 * s),
      seed_(seed),
      cell_seed_(SplitMix64(seed ^ 0xd1b54a32d192ed03ULL)),
      total_(cell_seed_) {
  HIMPACT_CHECK(s >= 1);
  HIMPACT_CHECK(delta > 0.0 && delta < 1.0);
  // Each non-zero entry is isolated in a fixed row with probability >= 1/2
  // (pairwise independence, 2s columns, <= s other entries), so
  // log2(s/delta) rows drive the failure probability below delta by a
  // union bound over the s entries.
  const double rows_needed =
      std::log2(static_cast<double>(s) / delta);
  rows_ = static_cast<std::size_t>(std::max(2.0, std::ceil(rows_needed)));

  std::uint64_t hash_seed = SplitMix64(seed ^ 0x8bb84b93962eacc9ULL);
  row_hashes_.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    hash_seed = SplitMix64(hash_seed);
    row_hashes_.emplace_back(cols_, hash_seed);
  }
  // All cells share the fingerprint evaluation point so the completeness
  // certificate can be checked against `total_`.
  cells_.assign(rows_ * cols_, OneSparseCell(cell_seed_));
}

void SSparseRecovery::Update(std::uint64_t index, std::int64_t weight) {
  if (weight == 0) return;
  // One shared evaluation point means one modular exponentiation per
  // update, fanned out to every row's cell.
  const std::uint64_t term =
      FingerprintTerm(total_.evaluation_point(), index, weight);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t c = static_cast<std::size_t>(row_hashes_[r](index));
    cells_[r * cols_ + c].UpdateWithTerm(index, weight, term);
  }
  total_.UpdateWithTerm(index, weight, term);
}

void SSparseRecovery::Merge(const SSparseRecovery& other) {
  HIMPACT_CHECK_MSG(s_ == other.s_ && rows_ == other.rows_ &&
                        seed_ == other.seed_,
                    "merging SSparseRecovery with different parameters");
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].Merge(other.cells_[i]);
  }
  total_.Merge(other.total_);
}

SSparseResult SSparseRecovery::Recover() const {
  SSparseResult result;
  // Collect verified singletons across all cells; the same entry is
  // usually recovered from several rows, so dedupe by index.
  std::map<std::uint64_t, std::int64_t> found;
  for (const OneSparseCell& cell : cells_) {
    if (cell.IsZero()) continue;
    const std::optional<RecoveredEntry> entry = cell.Recover();
    if (!entry.has_value()) continue;
    found.emplace(entry->index, entry->weight);
  }

  // Completeness certificate: the fingerprint of the recovered set must
  // match the fingerprint of the full update stream.
  const std::uint64_t r_point = total_.evaluation_point();
  std::uint64_t recovered_fingerprint = 0;
  for (const auto& [index, weight] : found) {
    recovered_fingerprint = AddMod61(recovered_fingerprint,
                                     FingerprintTerm(r_point, index, weight));
  }
  result.exact = (recovered_fingerprint == total_.fingerprint());

  result.entries.reserve(found.size());
  for (const auto& [index, weight] : found) {
    result.entries.push_back(RecoveredEntry{index, weight});
  }
  return result;
}

namespace {
constexpr std::uint64_t kSSparseMagic = 0x48494d5053535031ULL;
}  // namespace

void SSparseRecovery::SerializeTo(ByteWriter& writer) const {
  writer.U64(kSSparseMagic);
  writer.U64(s_);
  writer.F64(delta_);
  writer.U64(seed_);
  SerializeStateTo(writer);
}

StatusOr<SSparseRecovery> SSparseRecovery::DeserializeFrom(
    ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kSSparseMagic) {
    return Status::InvalidArgument("not an SSparseRecovery checkpoint");
  }
  std::uint64_t s = 0;
  double delta = 0.0;
  std::uint64_t seed = 0;
  if (!reader.U64(&s) || !reader.F64(&delta) || !reader.U64(&seed)) {
    return Status::InvalidArgument("truncated SSparseRecovery checkpoint");
  }
  // Bound the parameters before the constructor sizes rows_ x cols_ from
  // them: a corrupt `s` or a denormal `delta` must not trigger a huge
  // allocation (or a CHECK-abort) while decoding untrusted bytes. The
  // implied cell state must actually fit in the remaining buffer.
  if (s < 1 || s > (std::size_t{1} << 20) || !(delta > 1e-12) ||
      !(delta < 1.0)) {
    return Status::InvalidArgument("corrupt SSparseRecovery parameters");
  }
  const double implied_rows =
      std::max(2.0, std::ceil(std::log2(static_cast<double>(s) / delta)));
  const double implied_cells = implied_rows * 2.0 * static_cast<double>(s);
  // Each serialized cell is 32 bytes (ell1 + iota lo/hi + tau).
  if (implied_cells * 32.0 > static_cast<double>(reader.remaining())) {
    return Status::InvalidArgument(
        "SSparseRecovery checkpoint smaller than its declared geometry");
  }
  SSparseRecovery sketch(static_cast<std::size_t>(s), delta, seed);
  const Status status = sketch.DeserializeStateFrom(reader);
  if (!status.ok()) return status;
  return sketch;
}

void SSparseRecovery::SerializeStateTo(ByteWriter& writer) const {
  writer.U64(cells_.size());
  for (const OneSparseCell& cell : cells_) cell.SerializeStateTo(writer);
  total_.SerializeStateTo(writer);
}

Status SSparseRecovery::DeserializeStateFrom(ByteReader& reader) {
  std::uint64_t num_cells = 0;
  if (!reader.U64(&num_cells)) {
    return Status::InvalidArgument("truncated SSparseRecovery state");
  }
  if (num_cells != cells_.size()) {
    return Status::InvalidArgument("SSparseRecovery cell-count mismatch");
  }
  for (OneSparseCell& cell : cells_) {
    const Status status = cell.DeserializeStateFrom(reader);
    if (!status.ok()) return status;
  }
  return total_.DeserializeStateFrom(reader);
}

SpaceUsage SSparseRecovery::EstimateSpace() const {
  SpaceUsage usage;
  for (const auto& hash : row_hashes_) usage += hash.EstimateSpace();
  // Cells are structurally identical; count words analytically.
  usage.words += (cells_.size() + 1) * 5;
  usage.bytes += sizeof(*this) + cells_.capacity() * sizeof(OneSparseCell);
  return usage;
}

}  // namespace himpact
