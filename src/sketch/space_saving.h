#ifndef HIMPACT_SKETCH_SPACE_SAVING_H_
#define HIMPACT_SKETCH_SPACE_SAVING_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/space.h"
#include "common/status.h"

/// \file
/// Deterministic count-based heavy-hitter summaries: SpaceSaving
/// (Metwally–Agrawal–El Abbadi) and Misra–Gries. These find users with a
/// large *total* response count; the T10 experiment contrasts them with
/// the paper's H-index heavy hitters (Algorithm 8), where a user with one
/// mega-viral publication is a count heavy hitter but not an H-index one.

namespace himpact {

/// One monitored key in a count-based summary.
struct HeavyEntry {
  std::uint64_t key = 0;
  /// Count estimate (upper bound for SpaceSaving; lower bound + error
  /// bound semantics for Misra–Gries).
  std::uint64_t count = 0;
  /// Maximum overestimation of `count` (SpaceSaving only; 0 for MG).
  std::uint64_t error = 0;
};

/// SpaceSaving summary with `capacity` monitored keys. Any key with true
/// count > total/capacity is guaranteed to be monitored.
class SpaceSaving {
 public:
  /// Requires `capacity >= 1`.
  explicit SpaceSaving(std::size_t capacity);

  /// Adds `count` occurrences of `key`.
  void Update(std::uint64_t key, std::uint64_t count = 1);

  /// Batched unit-count `Update`. Evictions depend on the running heap
  /// state, so the loop stays strictly in-order; the win is the inlined
  /// call and the index/heap staying cache-hot across the batch. Final
  /// state is byte-identical to the scalar sequence.
  void UpdateBatch(std::span<const std::uint64_t> keys);

  /// Merges another summary of the same capacity (mergeable-summaries
  /// semantics: keys absent from one side inherit that side's minimum
  /// count as both estimate and error, then the union is trimmed back to
  /// `capacity`). The count-bound guarantees are preserved.
  void Merge(const SpaceSaving& other);

  /// Monitored entries, sorted by descending count estimate.
  std::vector<HeavyEntry> Entries() const;

  /// Total weight observed.
  std::uint64_t total() const { return total_; }

  /// Space used by the summary.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (capacity + exact slot/heap state, so resume is
  /// bit-identical to the uninterrupted run).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a summary from a `SerializeTo` checkpoint, validating the
  /// heap permutation and ordering invariants.
  static StatusOr<SpaceSaving> DeserializeFrom(ByteReader& reader);

 private:
  struct Slot {
    std::uint64_t key;
    std::uint64_t count;
    std::uint64_t error;
    std::size_t heap_pos;
  };

  void SiftDown(std::size_t heap_index);
  void SiftUp(std::size_t heap_index);

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::size_t> heap_;  // min-heap over slots_ by count
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> slot
};

/// Misra–Gries summary: deterministic `count >= true - total/ (k+1)`
/// frequency lower bounds with `k` counters.
class MisraGries {
 public:
  /// Requires `k >= 1`.
  explicit MisraGries(std::size_t k);

  /// Adds one occurrence of `key`.
  void Update(std::uint64_t key, std::uint64_t count = 1);

  /// Merges another summary with the same `k` (add counters, then apply
  /// the Misra–Gries decrement so at most `k` survive; counts remain
  /// lower bounds within `total/(k+1)`).
  void Merge(const MisraGries& other);

  /// Surviving entries (counts are lower bounds), sorted descending.
  std::vector<HeavyEntry> Entries() const;

  /// Total weight observed.
  std::uint64_t total() const { return total_; }

  /// Space used by the summary.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (k + total + counters, sorted by key).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a summary from a `SerializeTo` checkpoint.
  static StatusOr<MisraGries> DeserializeFrom(ByteReader& reader);

 private:
  std::size_t k_;
  std::uint64_t total_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> counters_;
};

}  // namespace himpact

#endif  // HIMPACT_SKETCH_SPACE_SAVING_H_
