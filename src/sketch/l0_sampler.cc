#include "sketch/l0_sampler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "hash/mix.h"

namespace himpact {

L0Sampler::L0Sampler(std::uint64_t universe, double delta, std::uint64_t seed)
    : universe_(universe),
      delta_(delta),
      seed_(seed),
      sparsity_(0),
      level_hash_(
          /*k=*/std::max(2, CeilLog2(static_cast<std::uint64_t>(
                                std::ceil(1.0 / std::min(0.5, delta)))) +
                                2),
          SplitMix64(seed ^ 0x2bd6a1f6e94cbb01ULL)) {
  HIMPACT_CHECK(universe >= 1);
  HIMPACT_CHECK(delta > 0.0 && delta < 1.0);
  sparsity_ = static_cast<std::size_t>(
      std::max(8.0, 2.0 * std::log2(1.0 / delta) + 4.0));

  const std::size_t num_levels =
      static_cast<std::size_t>(CeilLog2(std::max<std::uint64_t>(2, universe))) +
      1;
  std::uint64_t level_seed = SplitMix64(seed ^ 0x71c3bc9cb4e8ff2dULL);
  levels_.reserve(num_levels);
  for (std::size_t l = 0; l < num_levels; ++l) {
    level_seed = SplitMix64(level_seed);
    // Per-level recovery failure is driven well below the level-hash
    // failure mode; delta/2 per structure suffices for the overall bound.
    levels_.emplace_back(sparsity_, delta / 2.0, level_seed);
  }
}

void L0Sampler::Update(std::uint64_t index, std::int64_t weight) {
  HIMPACT_CHECK(index < universe_);
  if (weight == 0) return;
  // One hash evaluation per update: the deepest level the index reaches
  // is determined by how small its hash is (levels are nested).
  const std::uint64_t h = level_hash_(index);
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (l > 0 && (l >= 61 ? h != 0 : h >= (kMersenne61 >> l))) break;
    levels_[l].Update(index, weight);
  }
}

void L0Sampler::UpdateBatch(const std::uint64_t* indices,
                            const std::int64_t* weights, std::size_t n) {
  SSparseRecovery* const levels = levels_.data();
  const std::size_t num_levels = levels_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t index = indices[i];
    const std::int64_t weight = weights[i];
    HIMPACT_DCHECK(index < universe_);
    if (weight == 0) continue;
    const std::uint64_t h = level_hash_(index);
    for (std::size_t l = 0; l < num_levels; ++l) {
      if (l > 0 && (l >= 61 ? h != 0 : h >= (kMersenne61 >> l))) break;
      levels[l].Update(index, weight);
    }
  }
}

void L0Sampler::Merge(const L0Sampler& other) {
  HIMPACT_CHECK_MSG(universe_ == other.universe_ && seed_ == other.seed_ &&
                        levels_.size() == other.levels_.size(),
                    "merging L0Samplers with different parameters");
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    levels_[l].Merge(other.levels_[l]);
  }
}

StatusOr<L0Sample> L0Sampler::Sample() const {
  bool saw_nonzero = false;
  for (std::size_t l = levels_.size(); l-- > 0;) {
    if (levels_[l].IsZero()) continue;
    saw_nonzero = true;
    const SSparseResult result = levels_[l].Recover();
    if (!result.exact || result.entries.empty()) {
      // Deeper levels were zero and this one is overloaded or damaged:
      // the sampler fails (probability <= delta by the level analysis).
      return Status::Unavailable("l0-sampler: no decodable level");
    }
    // Min-wise selection among the survivors of the deepest non-empty
    // level keeps the output distribution near-uniform.
    const RecoveredEntry* best = &result.entries.front();
    std::uint64_t best_hash = level_hash_(best->index);
    for (const RecoveredEntry& entry : result.entries) {
      const std::uint64_t h = level_hash_(entry.index);
      if (h < best_hash) {
        best_hash = h;
        best = &entry;
      }
    }
    return L0Sample{best->index, best->weight};
  }
  if (!saw_nonzero) {
    return Status::FailedPrecondition("l0-sampler: vector is zero");
  }
  return Status::Unavailable("l0-sampler: no decodable level");
}

namespace {
constexpr std::uint64_t kL0SamplerMagic = 0x48494d504c303101ULL;
}  // namespace

void L0Sampler::SerializeTo(ByteWriter& writer) const {
  writer.U64(kL0SamplerMagic);
  writer.U64(universe_);
  writer.F64(delta_);
  writer.U64(seed_);
  SerializeStateTo(writer);
}

StatusOr<L0Sampler> L0Sampler::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kL0SamplerMagic) {
    return Status::InvalidArgument("not an L0Sampler checkpoint");
  }
  std::uint64_t universe = 0;
  double delta = 0.0;
  std::uint64_t seed = 0;
  if (!reader.U64(&universe) || !reader.F64(&delta) || !reader.U64(&seed)) {
    return Status::InvalidArgument("truncated L0Sampler checkpoint");
  }
  if (universe < 1 || !(delta > 1e-9) || !(delta < 1.0)) {
    return Status::InvalidArgument("corrupt L0Sampler parameters");
  }
  // The constructor sizes levels x rows x cols from (universe, delta); a
  // corrupt pair must not trigger a huge allocation. Each serialized cell
  // is 32 bytes, so the implied state must fit in the remaining buffer.
  // floor() mirrors the constructor's size_t truncation of sparsity; the
  // bound must not exceed the true geometry or valid checkpoints fail.
  const double sparsity = std::floor(
      std::max(8.0, 2.0 * std::log2(1.0 / delta) + 4.0));
  const double rows =
      std::max(2.0, std::ceil(std::log2(sparsity / (delta / 2.0))));
  const double levels = static_cast<double>(
      CeilLog2(std::max<std::uint64_t>(2, universe)) + 1);
  if (levels * rows * 2.0 * sparsity * 32.0 >
      static_cast<double>(reader.remaining())) {
    return Status::InvalidArgument(
        "L0Sampler checkpoint smaller than its declared geometry");
  }
  L0Sampler sampler(universe, delta, seed);
  const Status status = sampler.DeserializeStateFrom(reader);
  if (!status.ok()) return status;
  return sampler;
}

void L0Sampler::SerializeStateTo(ByteWriter& writer) const {
  writer.U64(levels_.size());
  for (const SSparseRecovery& level : levels_) {
    level.SerializeStateTo(writer);
  }
}

Status L0Sampler::DeserializeStateFrom(ByteReader& reader) {
  std::uint64_t num_levels = 0;
  if (!reader.U64(&num_levels)) {
    return Status::InvalidArgument("truncated L0Sampler state");
  }
  if (num_levels != levels_.size()) {
    return Status::InvalidArgument("L0Sampler level-count mismatch");
  }
  for (SSparseRecovery& level : levels_) {
    const Status status = level.DeserializeStateFrom(reader);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

SpaceUsage L0Sampler::EstimateSpace() const {
  SpaceUsage usage = level_hash_.EstimateSpace();
  for (const auto& level : levels_) usage += level.EstimateSpace();
  usage.bytes += sizeof(*this);
  return usage;
}

}  // namespace himpact
