#include "sketch/count_sketch.h"

#include <algorithm>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {

CountSketch::CountSketch(std::size_t width, std::size_t depth,
                         std::uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  HIMPACT_CHECK(width >= 1);
  HIMPACT_CHECK(depth >= 1 && depth % 2 == 1);
  std::uint64_t hash_seed = SplitMix64(seed ^ 0x1f83d9abfb41bd6bULL);
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (std::size_t d = 0; d < depth; ++d) {
    hash_seed = SplitMix64(hash_seed);
    bucket_hashes_.emplace_back(/*k=*/2, hash_seed);
    hash_seed = SplitMix64(hash_seed);
    sign_hashes_.emplace_back(/*k=*/4, hash_seed);
  }
  counters_.assign(depth * width, 0);
}

std::size_t CountSketch::Bucket(std::size_t d, std::uint64_t key) const {
  return static_cast<std::size_t>(bucket_hashes_[d](key) % width_);
}

std::int64_t CountSketch::Sign(std::size_t d, std::uint64_t key) const {
  return (sign_hashes_[d](key) & 1) == 0 ? 1 : -1;
}

void CountSketch::Update(std::uint64_t key, std::int64_t count) {
  for (std::size_t d = 0; d < depth_; ++d) {
    counters_[d * width_ + Bucket(d, key)] += Sign(d, key) * count;
  }
}

std::int64_t CountSketch::Query(std::uint64_t key) const {
  std::vector<std::int64_t> estimates;
  estimates.reserve(depth_);
  for (std::size_t d = 0; d < depth_; ++d) {
    estimates.push_back(Sign(d, key) *
                        counters_[d * width_ + Bucket(d, key)]);
  }
  std::nth_element(estimates.begin(),
                   estimates.begin() + static_cast<std::ptrdiff_t>(depth_ / 2),
                   estimates.end());
  return estimates[depth_ / 2];
}

void CountSketch::Merge(const CountSketch& other) {
  HIMPACT_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                        seed_ == other.seed_,
                    "merging CountSketches with different parameters");
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

SpaceUsage CountSketch::EstimateSpace() const {
  SpaceUsage usage;
  for (const auto& hash : bucket_hashes_) usage += hash.EstimateSpace();
  for (const auto& hash : sign_hashes_) usage += hash.EstimateSpace();
  usage.words += counters_.size();
  usage.bytes += sizeof(*this) + counters_.capacity() * sizeof(std::int64_t);
  return usage;
}

}  // namespace himpact
