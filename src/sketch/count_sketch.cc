#include "sketch/count_sketch.h"

#include <algorithm>

#include "common/check.h"
#include "hash/mix.h"
#include "hash/simd_kernels.h"

namespace himpact {

CountSketch::CountSketch(std::size_t width, std::size_t depth,
                         std::uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  HIMPACT_CHECK(width >= 1);
  HIMPACT_CHECK(depth >= 1 && depth % 2 == 1);
  std::uint64_t hash_seed = SplitMix64(seed ^ 0x1f83d9abfb41bd6bULL);
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (std::size_t d = 0; d < depth; ++d) {
    hash_seed = SplitMix64(hash_seed);
    bucket_hashes_.emplace_back(/*k=*/2, hash_seed);
    hash_seed = SplitMix64(hash_seed);
    sign_hashes_.emplace_back(/*k=*/4, hash_seed);
  }
  counters_.assign(depth * width, 0);
}

std::size_t CountSketch::Bucket(std::size_t d, std::uint64_t key) const {
  return static_cast<std::size_t>(bucket_hashes_[d](key) % width_);
}

std::int64_t CountSketch::Sign(std::size_t d, std::uint64_t key) const {
  return (sign_hashes_[d](key) & 1) == 0 ? 1 : -1;
}

void CountSketch::Update(std::uint64_t key, std::int64_t count) {
  for (std::size_t d = 0; d < depth_; ++d) {
    counters_[d * width_ + Bucket(d, key)] += Sign(d, key) * count;
  }
}

void CountSketch::UpdateBatch(std::span<const std::uint64_t> keys) {
  // Row-outer with the polynomial coefficients hoisted into registers:
  // the Horner steps below mirror `KIndependentHash::operator()` exactly
  // (2-wise bucket, 4-wise sign), replacing two cross-TU calls plus
  // coefficient-vector loads per key with straight-line field arithmetic.
  // Counter rows are signed sums, so the reordering across events leaves
  // the serialized state identical to the scalar sequence.
  for (std::size_t d = 0; d < depth_; ++d) {
    const std::vector<std::uint64_t>& bc = bucket_hashes_[d].coefficients();
    const std::vector<std::uint64_t>& sc = sign_hashes_[d].coefficients();
    std::int64_t* const row = counters_.data() + d * width_;
    if (bc.size() != 2 || sc.size() != 4) {
      const KIndependentHash& bucket_hash = bucket_hashes_[d];
      const KIndependentHash& sign_hash = sign_hashes_[d];
      for (const std::uint64_t key : keys) {
        const std::size_t bucket =
            static_cast<std::size_t>(bucket_hash(key) % width_);
        row[bucket] += (sign_hash(key) & 1) == 0 ? 1 : -1;
      }
      continue;
    }
    const std::uint64_t width = width_;
    const std::uint64_t barrett = ~std::uint64_t{0} / width;
#ifdef HIMPACT_HAVE_AVX2_KERNELS
    if (width < (std::uint64_t{1} << 31) && simd::Avx2Active()) {
      // Tile the row hash through the vector kernel (buckets + signs
      // computed 4 lanes at a time, identical values to the Horner
      // below), then scatter the +/-1 increments while the row is hot.
      constexpr std::size_t kTile = 256;
      std::uint64_t buckets[kTile];
      std::int64_t signs[kTile];
      for (std::size_t base = 0; base < keys.size(); base += kTile) {
        const std::size_t m = std::min(kTile, keys.size() - base);
        simd::CountSketchRowHashBatchAvx2(bc.data(), sc.data(), width,
                                          barrett, keys.data() + base,
                                          buckets, signs, m);
        for (std::size_t i = 0; i < m; ++i) {
          row[static_cast<std::size_t>(buckets[i])] += signs[i];
        }
      }
      continue;
    }
#endif
    const std::uint64_t b0 = bc[0];
    const std::uint64_t b1 = bc[1];
    const std::uint64_t s0 = sc[0];
    const std::uint64_t s1 = sc[1];
    const std::uint64_t s2 = sc[2];
    const std::uint64_t s3 = sc[3];
    for (const std::uint64_t key : keys) {
      const std::uint64_t xr = key % kMersenne61;
      std::uint64_t b =
          ModMersenne61(static_cast<unsigned __int128>(b1) * xr);
      b += b0;
      if (b >= kMersenne61) b -= kMersenne61;
      std::uint64_t s = s3;
      s = ModMersenne61(static_cast<unsigned __int128>(s) * xr) + s2;
      if (s >= kMersenne61) s -= kMersenne61;
      s = ModMersenne61(static_cast<unsigned __int128>(s) * xr) + s1;
      if (s >= kMersenne61) s -= kMersenne61;
      s = ModMersenne61(static_cast<unsigned __int128>(s) * xr) + s0;
      if (s >= kMersenne61) s -= kMersenne61;
      row[static_cast<std::size_t>(BarrettMod(b, width, barrett))] +=
          (s & 1) == 0 ? 1 : -1;
    }
  }
}

std::int64_t CountSketch::Query(std::uint64_t key) const {
  std::vector<std::int64_t> estimates;
  estimates.reserve(depth_);
  for (std::size_t d = 0; d < depth_; ++d) {
    estimates.push_back(Sign(d, key) *
                        counters_[d * width_ + Bucket(d, key)]);
  }
  std::nth_element(estimates.begin(),
                   estimates.begin() + static_cast<std::ptrdiff_t>(depth_ / 2),
                   estimates.end());
  return estimates[depth_ / 2];
}

void CountSketch::Merge(const CountSketch& other) {
  HIMPACT_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_ &&
                        seed_ == other.seed_,
                    "merging CountSketches with different parameters");
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

namespace {
constexpr std::uint64_t kCountSketchMagic = 0x48494d5043534b31ULL;
}  // namespace

void CountSketch::SerializeTo(ByteWriter& writer) const {
  writer.U64(kCountSketchMagic);
  writer.U64(width_);
  writer.U64(depth_);
  writer.U64(seed_);
  SerializeStateTo(writer);
}

StatusOr<CountSketch> CountSketch::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kCountSketchMagic) {
    return Status::InvalidArgument("not a CountSketch checkpoint");
  }
  std::uint64_t width = 0;
  std::uint64_t depth = 0;
  std::uint64_t seed = 0;
  if (!reader.U64(&width) || !reader.U64(&depth) || !reader.U64(&seed)) {
    return Status::InvalidArgument("truncated CountSketch checkpoint");
  }
  if (width < 1 || depth < 1 || depth % 2 == 0) {
    return Status::InvalidArgument("corrupt CountSketch parameters");
  }
  // The counter grid must fit in the remaining buffer before allocation.
  if (static_cast<double>(width) * static_cast<double>(depth) * 8.0 >
      static_cast<double>(reader.remaining())) {
    return Status::InvalidArgument(
        "CountSketch checkpoint smaller than its declared geometry");
  }
  CountSketch sketch(static_cast<std::size_t>(width),
                     static_cast<std::size_t>(depth), seed);
  const Status status = sketch.DeserializeStateFrom(reader);
  if (!status.ok()) return status;
  return sketch;
}

void CountSketch::SerializeStateTo(ByteWriter& writer) const {
  writer.U64(counters_.size());
  for (const std::int64_t counter : counters_) writer.I64(counter);
}

Status CountSketch::DeserializeStateFrom(ByteReader& reader) {
  std::uint64_t num_counters = 0;
  if (!reader.U64(&num_counters)) {
    return Status::InvalidArgument("truncated CountSketch state");
  }
  if (num_counters != counters_.size()) {
    return Status::InvalidArgument("CountSketch counter-count mismatch");
  }
  std::vector<std::int64_t> counters;
  counters.reserve(num_counters);
  for (std::uint64_t i = 0; i < num_counters; ++i) {
    std::int64_t counter = 0;
    if (!reader.I64(&counter)) {
      return Status::InvalidArgument("truncated CountSketch state");
    }
    counters.push_back(counter);
  }
  counters_ = std::move(counters);
  return Status::OK();
}

SpaceUsage CountSketch::EstimateSpace() const {
  SpaceUsage usage;
  for (const auto& hash : bucket_hashes_) usage += hash.EstimateSpace();
  for (const auto& hash : sign_hashes_) usage += hash.EstimateSpace();
  usage.words += counters_.size();
  usage.bytes += sizeof(*this) + counters_.capacity() * sizeof(std::int64_t);
  return usage;
}

}  // namespace himpact
