#ifndef HIMPACT_SKETCH_COUNT_MIN_H_
#define HIMPACT_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/space.h"
#include "common/status.h"
#include "hash/k_independent.h"

/// \file
/// Count-Min sketch (Cormode–Muthukrishnan). Classic frequency/heavy-
/// hitter machinery; used by the T10 experiment to demonstrate that
/// count-based heavy hitters are *not* H-index heavy hitters (the gap the
/// paper's Section 4 fills).

namespace himpact {

/// A Count-Min sketch over 64-bit keys with additive counts.
class CountMinSketch {
 public:
  /// Point queries overestimate by at most `eps * total` with probability
  /// `1 - delta`. Requires `0 < eps < 1`, `0 < delta < 1`.
  CountMinSketch(double eps, double delta, std::uint64_t seed);

  /// Adds `count` to `key`'s frequency. Requires `count >= 0`.
  void Update(std::uint64_t key, std::uint64_t count = 1);

  /// Batched unit-count `Update`: iterates row-outer so one row's hash
  /// and counter segment stay hot across the whole batch. Counters are
  /// sums, so the final state is byte-identical to the scalar sequence.
  /// Zero allocations.
  void UpdateBatch(std::span<const std::uint64_t> keys);

  /// Upper-bound point estimate of `key`'s frequency.
  std::uint64_t Query(std::uint64_t key) const;

  /// Merges another sketch built with the same `(eps, delta, seed)`;
  /// afterwards point queries cover the sum of both streams.
  void Merge(const CountMinSketch& other);

  /// Total weight added.
  std::uint64_t total() const { return total_; }

  /// Width (columns per row).
  std::size_t width() const { return width_; }

  /// Depth (number of rows).
  std::size_t depth() const { return depth_; }

  /// Space used by the sketch.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (construction parameters + counters).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a sketch from a `SerializeTo` checkpoint.
  static StatusOr<CountMinSketch> DeserializeFrom(ByteReader& reader);

  /// Appends only the mutable state (total + counters).
  void SerializeStateTo(ByteWriter& writer) const;

  /// Restores the state written by `SerializeStateTo` into this sketch,
  /// which must have been constructed with the same parameters.
  Status DeserializeStateFrom(ByteReader& reader);

 private:
  double eps_;    // construction eps (checkpoint reconstruction)
  double delta_;  // construction delta (checkpoint reconstruction)
  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;  // construction seed (merge compatibility check)
  std::uint64_t total_ = 0;
  std::vector<PairwiseRangeHash> hashes_;
  std::vector<std::uint64_t> counters_;  // depth_ x width_, row-major
};

}  // namespace himpact

#endif  // HIMPACT_SKETCH_COUNT_MIN_H_
