#ifndef HIMPACT_SKETCH_COUNT_SKETCH_H_
#define HIMPACT_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/space.h"
#include "common/status.h"
#include "hash/k_independent.h"

/// \file
/// CountSketch (Charikar–Chen–Farach-Colton): the signed cousin of
/// Count-Min. Point estimates are unbiased with error `+- eps * ||f||_2`
/// (L2, not L1) with probability `1 - delta`, and the sketch supports
/// deletions. The paper's concluding section mentions "L2 heavy hitters"
/// as an open direction; CountSketch is the standard substrate for that
/// and rounds out this library's frequency toolbox.

namespace himpact {

/// A CountSketch over 64-bit keys with signed counts.
class CountSketch {
 public:
  /// `width` buckets per row, `depth` rows (estimate = median of rows).
  /// Requires `width >= 1`, odd `depth >= 1`.
  CountSketch(std::size_t width, std::size_t depth, std::uint64_t seed);

  /// Adds `count` (may be negative) to `key`'s frequency.
  void Update(std::uint64_t key, std::int64_t count = 1);

  /// Batched unit-count `Update` (+1 per key), row-outer like
  /// `CountMinSketch::UpdateBatch`. Counters are signed sums, so the
  /// final state is byte-identical to the scalar sequence. Zero
  /// allocations.
  void UpdateBatch(std::span<const std::uint64_t> keys);

  /// Median-of-rows unbiased point estimate of `key`'s frequency.
  std::int64_t Query(std::uint64_t key) const;

  /// Merges another sketch built with the same `(width, depth, seed)`.
  void Merge(const CountSketch& other);

  /// Width (columns per row).
  std::size_t width() const { return width_; }

  /// Depth (number of rows).
  std::size_t depth() const { return depth_; }

  /// Space used by the sketch.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (construction parameters + counters).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a sketch from a `SerializeTo` checkpoint.
  static StatusOr<CountSketch> DeserializeFrom(ByteReader& reader);

  /// Appends only the mutable counters.
  void SerializeStateTo(ByteWriter& writer) const;

  /// Restores the state written by `SerializeStateTo` into this sketch,
  /// which must have been constructed with the same parameters.
  Status DeserializeStateFrom(ByteReader& reader);

 private:
  /// Row `d`'s bucket and sign for `key`.
  std::size_t Bucket(std::size_t d, std::uint64_t key) const;
  std::int64_t Sign(std::size_t d, std::uint64_t key) const;

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  std::vector<KIndependentHash> bucket_hashes_;  // pairwise
  std::vector<KIndependentHash> sign_hashes_;    // 4-wise (variance bound)
  std::vector<std::int64_t> counters_;           // depth_ x width_
};

}  // namespace himpact

#endif  // HIMPACT_SKETCH_COUNT_SKETCH_H_
