#include "sketch/space_saving.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace himpact {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  HIMPACT_CHECK(capacity >= 1);
  slots_.reserve(capacity);
  heap_.reserve(capacity);
}

void SpaceSaving::SiftDown(std::size_t heap_index) {
  const std::size_t size = heap_.size();
  while (true) {
    const std::size_t left = 2 * heap_index + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = heap_index;
    if (left < size &&
        slots_[heap_[left]].count < slots_[heap_[smallest]].count) {
      smallest = left;
    }
    if (right < size &&
        slots_[heap_[right]].count < slots_[heap_[smallest]].count) {
      smallest = right;
    }
    if (smallest == heap_index) return;
    std::swap(heap_[heap_index], heap_[smallest]);
    slots_[heap_[heap_index]].heap_pos = heap_index;
    slots_[heap_[smallest]].heap_pos = smallest;
    heap_index = smallest;
  }
}

void SpaceSaving::SiftUp(std::size_t heap_index) {
  while (heap_index > 0) {
    const std::size_t parent = (heap_index - 1) / 2;
    if (slots_[heap_[parent]].count <= slots_[heap_[heap_index]].count) {
      return;
    }
    std::swap(heap_[heap_index], heap_[parent]);
    slots_[heap_[heap_index]].heap_pos = heap_index;
    slots_[heap_[parent]].heap_pos = parent;
    heap_index = parent;
  }
}

void SpaceSaving::Update(std::uint64_t key, std::uint64_t count) {
  total_ += count;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Slot& slot = slots_[it->second];
    slot.count += count;
    SiftDown(slot.heap_pos);
    return;
  }
  if (slots_.size() < capacity_) {
    const std::size_t slot_index = slots_.size();
    slots_.push_back(Slot{key, count, 0, heap_.size()});
    heap_.push_back(slot_index);
    index_.emplace(key, slot_index);
    SiftUp(slots_[slot_index].heap_pos);
    return;
  }
  // Evict the minimum-count slot: the newcomer inherits its count as the
  // classic SpaceSaving overestimate.
  const std::size_t victim = heap_.front();
  Slot& slot = slots_[victim];
  index_.erase(slot.key);
  index_.emplace(key, victim);
  slot.error = slot.count;
  slot.count += count;
  slot.key = key;
  SiftDown(slot.heap_pos);
}

void SpaceSaving::UpdateBatch(std::span<const std::uint64_t> keys) {
  // Order-dependent (the evicted victim changes with every update):
  // apply in order; Update() lives in this TU, so the call inlines.
  for (const std::uint64_t key : keys) Update(key, 1);
}

void SpaceSaving::Merge(const SpaceSaving& other) {
  HIMPACT_CHECK_MSG(capacity_ == other.capacity_,
                    "merging SpaceSaving summaries of different capacity");
  // Minimum monitored count per side: the count any unmonitored key may
  // have accumulated (0 while a side is below capacity).
  const auto side_min = [](const SpaceSaving& side) -> std::uint64_t {
    if (side.slots_.size() < side.capacity_) return 0;
    return side.slots_[side.heap_.front()].count;
  };
  const std::uint64_t min_this = side_min(*this);
  const std::uint64_t min_other = side_min(other);

  // Union with mergeable-summaries offsets: a key monitored on only one
  // side may have accumulated up to the other side's minimum count there,
  // so that minimum is added to both its estimate and its error bound.
  std::unordered_map<std::uint64_t, HeavyEntry> merged;
  for (const Slot& slot : slots_) {
    merged[slot.key] =
        HeavyEntry{slot.key, slot.count + min_other, slot.error + min_other};
  }
  for (const Slot& slot : other.slots_) {
    auto it = merged.find(slot.key);
    if (it == merged.end()) {
      merged[slot.key] =
          HeavyEntry{slot.key, slot.count + min_this, slot.error + min_this};
    } else {
      // Present on both sides: undo this side's min_other offset and add
      // the other side's true stored values.
      it->second.count += slot.count - min_other;
      it->second.error += slot.error - min_other;
    }
  }

  // Keep the `capacity` largest estimates.
  std::vector<HeavyEntry> entries;
  entries.reserve(merged.size());
  for (const auto& [key, entry] : merged) entries.push_back(entry);
  std::sort(entries.begin(), entries.end(),
            [](const HeavyEntry& a, const HeavyEntry& b) {
              return a.count > b.count;
            });
  if (entries.size() > capacity_) entries.resize(capacity_);

  const std::uint64_t new_total = total_ + other.total_;
  slots_.clear();
  heap_.clear();
  index_.clear();
  total_ = new_total;
  for (const HeavyEntry& entry : entries) {
    const std::size_t slot_index = slots_.size();
    slots_.push_back(Slot{entry.key, entry.count, entry.error, heap_.size()});
    heap_.push_back(slot_index);
    index_.emplace(entry.key, slot_index);
    SiftUp(slots_[slot_index].heap_pos);
  }
}

std::vector<HeavyEntry> SpaceSaving::Entries() const {
  std::vector<HeavyEntry> entries;
  entries.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    entries.push_back(HeavyEntry{slot.key, slot.count, slot.error});
  }
  std::sort(entries.begin(), entries.end(),
            [](const HeavyEntry& a, const HeavyEntry& b) {
              return a.count > b.count;
            });
  return entries;
}

SpaceUsage SpaceSaving::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = slots_.size() * 3 + heap_.size();
  usage.bytes = sizeof(*this) + slots_.capacity() * sizeof(Slot) +
                heap_.capacity() * sizeof(std::size_t) +
                index_.size() * (sizeof(std::uint64_t) + sizeof(std::size_t)) * 2;
  return usage;
}

namespace {
constexpr std::uint64_t kSpaceSavingMagic = 0x48494d5053535631ULL;
constexpr std::uint64_t kMisraGriesMagic = 0x48494d504d475231ULL;
}  // namespace

void SpaceSaving::SerializeTo(ByteWriter& writer) const {
  writer.U64(kSpaceSavingMagic);
  writer.U64(capacity_);
  writer.U64(total_);
  writer.U64(slots_.size());
  for (const Slot& slot : slots_) {
    writer.U64(slot.key);
    writer.U64(slot.count);
    writer.U64(slot.error);
  }
  for (const std::size_t slot_index : heap_) writer.U64(slot_index);
}

StatusOr<SpaceSaving> SpaceSaving::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kSpaceSavingMagic) {
    return Status::InvalidArgument("not a SpaceSaving checkpoint");
  }
  std::uint64_t capacity = 0;
  std::uint64_t total = 0;
  std::uint64_t num_slots = 0;
  if (!reader.U64(&capacity) || !reader.U64(&total) ||
      !reader.U64(&num_slots)) {
    return Status::InvalidArgument("truncated SpaceSaving checkpoint");
  }
  if (capacity < 1 || num_slots > capacity ||
      num_slots * 32 > reader.remaining()) {
    return Status::InvalidArgument("corrupt SpaceSaving geometry");
  }
  SpaceSaving summary(static_cast<std::size_t>(capacity));
  summary.total_ = total;
  for (std::uint64_t i = 0; i < num_slots; ++i) {
    Slot slot{0, 0, 0, 0};
    if (!reader.U64(&slot.key) || !reader.U64(&slot.count) ||
        !reader.U64(&slot.error)) {
      return Status::InvalidArgument("truncated SpaceSaving checkpoint");
    }
    if (summary.index_.contains(slot.key)) {
      return Status::InvalidArgument("duplicate key in SpaceSaving slots");
    }
    summary.index_.emplace(slot.key, summary.slots_.size());
    summary.slots_.push_back(slot);
  }
  // The heap must be a permutation of the slot indices that satisfies the
  // min-heap ordering by count; heap_pos is derived, not trusted.
  std::vector<bool> used(num_slots, false);
  for (std::uint64_t i = 0; i < num_slots; ++i) {
    std::uint64_t slot_index = 0;
    if (!reader.U64(&slot_index)) {
      return Status::InvalidArgument("truncated SpaceSaving checkpoint");
    }
    if (slot_index >= num_slots || used[slot_index]) {
      return Status::InvalidArgument("SpaceSaving heap is not a permutation");
    }
    used[slot_index] = true;
    summary.slots_[slot_index].heap_pos = summary.heap_.size();
    summary.heap_.push_back(static_cast<std::size_t>(slot_index));
  }
  for (std::size_t i = 1; i < summary.heap_.size(); ++i) {
    const std::size_t parent = (i - 1) / 2;
    if (summary.slots_[summary.heap_[parent]].count >
        summary.slots_[summary.heap_[i]].count) {
      return Status::InvalidArgument("SpaceSaving heap ordering violated");
    }
  }
  return summary;
}

void MisraGries::SerializeTo(ByteWriter& writer) const {
  writer.U64(kMisraGriesMagic);
  writer.U64(k_);
  writer.U64(total_);
  // Sort for a deterministic byte stream (map iteration order is not
  // stable across standard libraries).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(
      counters_.begin(), counters_.end());
  std::sort(sorted.begin(), sorted.end());
  writer.U64(sorted.size());
  for (const auto& [key, count] : sorted) {
    writer.U64(key);
    writer.U64(count);
  }
}

StatusOr<MisraGries> MisraGries::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kMisraGriesMagic) {
    return Status::InvalidArgument("not a MisraGries checkpoint");
  }
  std::uint64_t k = 0;
  std::uint64_t total = 0;
  std::uint64_t num_counters = 0;
  if (!reader.U64(&k) || !reader.U64(&total) || !reader.U64(&num_counters)) {
    return Status::InvalidArgument("truncated MisraGries checkpoint");
  }
  if (k < 1 || num_counters > k || num_counters * 16 > reader.remaining()) {
    return Status::InvalidArgument("corrupt MisraGries geometry");
  }
  MisraGries summary(static_cast<std::size_t>(k));
  summary.total_ = total;
  for (std::uint64_t i = 0; i < num_counters; ++i) {
    std::uint64_t key = 0;
    std::uint64_t count = 0;
    if (!reader.U64(&key) || !reader.U64(&count)) {
      return Status::InvalidArgument("truncated MisraGries checkpoint");
    }
    if (count == 0) {
      return Status::InvalidArgument("zero counter in MisraGries checkpoint");
    }
    if (!summary.counters_.emplace(key, count).second) {
      return Status::InvalidArgument("duplicate key in MisraGries counters");
    }
  }
  return summary;
}

MisraGries::MisraGries(std::size_t k) : k_(k) {
  HIMPACT_CHECK(k >= 1);
}

void MisraGries::Update(std::uint64_t key, std::uint64_t count) {
  total_ += count;
  const auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second += count;
    return;
  }
  if (counters_.size() < k_) {
    counters_.emplace(key, count);
    return;
  }
  // Decrement-all step: subtract the newcomer's weight (bounded by the
  // smallest counter) from every counter and drop the ones reaching zero.
  std::uint64_t decrement = count;
  for (const auto& [existing_key, existing_count] : counters_) {
    decrement = std::min(decrement, existing_count);
    (void)existing_key;
  }
  for (auto it2 = counters_.begin(); it2 != counters_.end();) {
    it2->second -= decrement;
    if (it2->second == 0) {
      it2 = counters_.erase(it2);
    } else {
      ++it2;
    }
  }
  if (count > decrement) {
    counters_.emplace(key, count - decrement);
  }
}

void MisraGries::Merge(const MisraGries& other) {
  HIMPACT_CHECK_MSG(k_ == other.k_,
                    "merging MisraGries summaries of different k");
  for (const auto& [key, count] : other.counters_) {
    counters_[key] += count;
  }
  total_ += other.total_;
  if (counters_.size() <= k_) return;
  // Classic MG merge step: subtract the (k+1)-th largest counter value
  // from everyone and drop the non-positive counters.
  std::vector<std::uint64_t> counts;
  counts.reserve(counters_.size());
  for (const auto& [key, count] : counters_) counts.push_back(count);
  std::nth_element(counts.begin(), counts.begin() + static_cast<std::ptrdiff_t>(k_),
                   counts.end(), std::greater<>());
  const std::uint64_t decrement = counts[k_];
  for (auto it = counters_.begin(); it != counters_.end();) {
    if (it->second <= decrement) {
      it = counters_.erase(it);
    } else {
      it->second -= decrement;
      ++it;
    }
  }
}

std::vector<HeavyEntry> MisraGries::Entries() const {
  std::vector<HeavyEntry> entries;
  entries.reserve(counters_.size());
  for (const auto& [key, count] : counters_) {
    entries.push_back(HeavyEntry{key, count, 0});
  }
  std::sort(entries.begin(), entries.end(),
            [](const HeavyEntry& a, const HeavyEntry& b) {
              return a.count > b.count;
            });
  return entries;
}

SpaceUsage MisraGries::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = counters_.size() * 2;
  usage.bytes = sizeof(*this) + counters_.size() * sizeof(std::uint64_t) * 3;
  return usage;
}

}  // namespace himpact
