#ifndef HIMPACT_SKETCH_ONE_SPARSE_H_
#define HIMPACT_SKETCH_ONE_SPARSE_H_

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "common/space.h"
#include "common/status.h"

/// \file
/// One-sparse recovery cell: the base primitive of the l0-sampler
/// (Definition 3 / Lemma 4 in the paper, following Jowhari–Saglam–Tardos).
///
/// The cell maintains three linear functions of the update stream
/// `(i, z)`:
///   - `ell1  = sum z`                 (total weight),
///   - `iota  = sum z * i`             (index-weighted sum),
///   - `tau   = sum z * r^i mod p`     (polynomial fingerprint at a random
///                                      point `r` in GF(2^61-1)).
/// If the underlying vector is exactly one-sparse with support `{j}` and
/// weight `w`, then `iota / ell1 == j` and `tau == w * r^j`; the
/// fingerprint makes false positives occur with probability <= n/p.

namespace himpact {

/// The value recovered from a verified one-sparse cell.
struct RecoveredEntry {
  std::uint64_t index = 0;
  std::int64_t weight = 0;

  friend bool operator==(const RecoveredEntry& a, const RecoveredEntry& b) {
    return a.index == b.index && a.weight == b.weight;
  }
};

/// A single one-sparse recovery cell over a universe of 64-bit indices.
///
/// The cell is a linear sketch: updates commute and negative weights
/// (deletions) are supported, as required by the turnstile-capable
/// l0-sampler of Lemma 4.
class OneSparseCell {
 public:
  /// Draws the fingerprint evaluation point from `seed`.
  explicit OneSparseCell(std::uint64_t seed);

  /// Applies the update `V[index] += weight`.
  void Update(std::uint64_t index, std::int64_t weight);

  /// Applies the update with a precomputed fingerprint term
  /// `term == FingerprintTerm(evaluation_point(), index, weight)`.
  ///
  /// `SSparseRecovery` shares one evaluation point across its cells, so
  /// it computes the (modular-exponentiation) term once per update and
  /// fans it out — the hot path of the l0-sampler.
  void UpdateWithTerm(std::uint64_t index, std::int64_t weight,
                      std::uint64_t term);

  /// Merges another cell sketching the same evaluation point into this one.
  /// Requires both cells to have been constructed with the same seed.
  void Merge(const OneSparseCell& other);

  /// True iff every linear measurement is zero (the sketched vector is
  /// zero unless a fingerprint collision occurred).
  bool IsZero() const;

  /// Returns the unique (index, weight) if the cell verifies as
  /// one-sparse, otherwise `nullopt`.
  std::optional<RecoveredEntry> Recover() const;

  /// The fingerprint value (exposed so `SSparseRecovery` can certify that
  /// a full recovery explains the entire structure).
  std::uint64_t fingerprint() const { return tau_; }

  /// The fingerprint evaluation point.
  std::uint64_t evaluation_point() const { return r_; }

  /// Space used by the cell.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint of the cell (evaluation point + linear sums).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a cell from a `SerializeTo` checkpoint.
  static StatusOr<OneSparseCell> DeserializeFrom(ByteReader& reader);

  /// Appends only the mutable linear sums, not the evaluation point.
  /// Composite sketches (`SSparseRecovery`, `L0Sampler`) re-derive the
  /// point from their construction seed and checkpoint just this state.
  void SerializeStateTo(ByteWriter& writer) const;

  /// Restores the sums written by `SerializeStateTo` into this cell.
  Status DeserializeStateFrom(ByteReader& reader);

 private:
  std::uint64_t r_;   // fingerprint evaluation point in [1, p)
  std::int64_t ell1_ = 0;
  __int128 iota_ = 0;
  std::uint64_t tau_ = 0;  // fingerprint, in [0, p)
};

/// Computes `base^exp mod 2^61-1` (used by the recovery verification and
/// by `SSparseRecovery`'s completeness certificate).
std::uint64_t PowModMersenne61(std::uint64_t base, std::uint64_t exp);

/// Computes `(weight mod p) * r^index mod p`, mapping negative weights to
/// their field representative.
std::uint64_t FingerprintTerm(std::uint64_t r, std::uint64_t index,
                              std::int64_t weight);

}  // namespace himpact

#endif  // HIMPACT_SKETCH_ONE_SPARSE_H_
