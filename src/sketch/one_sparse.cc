#include "sketch/one_sparse.h"

#include "common/check.h"
#include "hash/k_independent.h"
#include "hash/mix.h"

namespace himpact {
namespace {

std::uint64_t AddMod(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;  // < 2^62, no overflow
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b) {
  return ModMersenne61(static_cast<unsigned __int128>(a) * b);
}

}  // namespace

std::uint64_t PowModMersenne61(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  std::uint64_t b = base % kMersenne61;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, b);
    b = MulMod(b, b);
    exp >>= 1;
  }
  return result;
}

std::uint64_t FingerprintTerm(std::uint64_t r, std::uint64_t index,
                              std::int64_t weight) {
  const std::uint64_t r_pow = PowModMersenne61(r, index);
  if (weight >= 0) {
    return MulMod(static_cast<std::uint64_t>(weight) % kMersenne61, r_pow);
  }
  const std::uint64_t mag =
      static_cast<std::uint64_t>(-(weight + 1)) + 1;  // |weight|, no UB
  const std::uint64_t term = MulMod(mag % kMersenne61, r_pow);
  return term == 0 ? 0 : kMersenne61 - term;
}

OneSparseCell::OneSparseCell(std::uint64_t seed) {
  // Evaluation point in [1, p).
  r_ = SplitMix64(seed ^ 0xa0761d6478bd642fULL) % (kMersenne61 - 1) + 1;
}

void OneSparseCell::Update(std::uint64_t index, std::int64_t weight) {
  if (weight == 0) return;
  UpdateWithTerm(index, weight, FingerprintTerm(r_, index, weight));
}

void OneSparseCell::UpdateWithTerm(std::uint64_t index, std::int64_t weight,
                                   std::uint64_t term) {
  if (weight == 0) return;
  ell1_ += weight;
  iota_ += static_cast<__int128>(weight) * static_cast<__int128>(index);
  tau_ = AddMod(tau_, term);
}

void OneSparseCell::Merge(const OneSparseCell& other) {
  HIMPACT_CHECK_MSG(r_ == other.r_,
                    "merging OneSparseCells with different seeds");
  ell1_ += other.ell1_;
  iota_ += other.iota_;
  tau_ = AddMod(tau_, other.tau_);
}

bool OneSparseCell::IsZero() const {
  return ell1_ == 0 && iota_ == 0 && tau_ == 0;
}

std::optional<RecoveredEntry> OneSparseCell::Recover() const {
  if (ell1_ == 0) return std::nullopt;
  if (iota_ % ell1_ != 0) return std::nullopt;
  const __int128 index128 = iota_ / ell1_;
  if (index128 < 0 ||
      index128 > static_cast<__int128>(~std::uint64_t{0})) {
    return std::nullopt;
  }
  const std::uint64_t index = static_cast<std::uint64_t>(index128);
  if (tau_ != FingerprintTerm(r_, index, ell1_)) return std::nullopt;
  return RecoveredEntry{index, ell1_};
}

SpaceUsage OneSparseCell::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = 5;  // r, ell1, iota (2 words), tau
  usage.bytes = sizeof(*this);
  return usage;
}

}  // namespace himpact
