#include "sketch/one_sparse.h"

#include "common/check.h"
#include "hash/k_independent.h"
#include "hash/mix.h"

namespace himpact {
namespace {

std::uint64_t AddMod(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;  // < 2^62, no overflow
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b) {
  return ModMersenne61(static_cast<unsigned __int128>(a) * b);
}

}  // namespace

std::uint64_t PowModMersenne61(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  std::uint64_t b = base % kMersenne61;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, b);
    b = MulMod(b, b);
    exp >>= 1;
  }
  return result;
}

std::uint64_t FingerprintTerm(std::uint64_t r, std::uint64_t index,
                              std::int64_t weight) {
  const std::uint64_t r_pow = PowModMersenne61(r, index);
  if (weight >= 0) {
    return MulMod(static_cast<std::uint64_t>(weight) % kMersenne61, r_pow);
  }
  const std::uint64_t mag =
      static_cast<std::uint64_t>(-(weight + 1)) + 1;  // |weight|, no UB
  const std::uint64_t term = MulMod(mag % kMersenne61, r_pow);
  return term == 0 ? 0 : kMersenne61 - term;
}

OneSparseCell::OneSparseCell(std::uint64_t seed) {
  // Evaluation point in [1, p).
  r_ = SplitMix64(seed ^ 0xa0761d6478bd642fULL) % (kMersenne61 - 1) + 1;
}

void OneSparseCell::Update(std::uint64_t index, std::int64_t weight) {
  if (weight == 0) return;
  UpdateWithTerm(index, weight, FingerprintTerm(r_, index, weight));
}

void OneSparseCell::UpdateWithTerm(std::uint64_t index, std::int64_t weight,
                                   std::uint64_t term) {
  if (weight == 0) return;
  ell1_ += weight;
  iota_ += static_cast<__int128>(weight) * static_cast<__int128>(index);
  tau_ = AddMod(tau_, term);
}

void OneSparseCell::Merge(const OneSparseCell& other) {
  HIMPACT_CHECK_MSG(r_ == other.r_,
                    "merging OneSparseCells with different seeds");
  ell1_ += other.ell1_;
  iota_ += other.iota_;
  tau_ = AddMod(tau_, other.tau_);
}

bool OneSparseCell::IsZero() const {
  return ell1_ == 0 && iota_ == 0 && tau_ == 0;
}

std::optional<RecoveredEntry> OneSparseCell::Recover() const {
  if (ell1_ == 0) return std::nullopt;
  if (iota_ % ell1_ != 0) return std::nullopt;
  const __int128 index128 = iota_ / ell1_;
  if (index128 < 0 ||
      index128 > static_cast<__int128>(~std::uint64_t{0})) {
    return std::nullopt;
  }
  const std::uint64_t index = static_cast<std::uint64_t>(index128);
  if (tau_ != FingerprintTerm(r_, index, ell1_)) return std::nullopt;
  return RecoveredEntry{index, ell1_};
}

namespace {
constexpr std::uint64_t kOneSparseMagic = 0x48494d504f533101ULL;

/// Splits a signed 128-bit value into two little-endian 64-bit halves.
void WriteI128(ByteWriter& writer, __int128 value) {
  const unsigned __int128 bits = static_cast<unsigned __int128>(value);
  writer.U64(static_cast<std::uint64_t>(bits));
  writer.U64(static_cast<std::uint64_t>(bits >> 64));
}

bool ReadI128(ByteReader& reader, __int128* value) {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  if (!reader.U64(&lo) || !reader.U64(&hi)) return false;
  *value = static_cast<__int128>(
      (static_cast<unsigned __int128>(hi) << 64) | lo);
  return true;
}
}  // namespace

void OneSparseCell::SerializeTo(ByteWriter& writer) const {
  writer.U64(kOneSparseMagic);
  writer.U64(r_);
  SerializeStateTo(writer);
}

StatusOr<OneSparseCell> OneSparseCell::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kOneSparseMagic) {
    return Status::InvalidArgument("not a OneSparseCell checkpoint");
  }
  std::uint64_t r = 0;
  if (!reader.U64(&r)) {
    return Status::InvalidArgument("truncated OneSparseCell checkpoint");
  }
  if (r == 0 || r >= kMersenne61) {
    return Status::InvalidArgument(
        "corrupt OneSparseCell evaluation point");
  }
  OneSparseCell cell(/*seed=*/0);
  cell.r_ = r;
  const Status status = cell.DeserializeStateFrom(reader);
  if (!status.ok()) return status;
  return cell;
}

void OneSparseCell::SerializeStateTo(ByteWriter& writer) const {
  writer.I64(ell1_);
  WriteI128(writer, iota_);
  writer.U64(tau_);
}

Status OneSparseCell::DeserializeStateFrom(ByteReader& reader) {
  std::int64_t ell1 = 0;
  __int128 iota = 0;
  std::uint64_t tau = 0;
  if (!reader.I64(&ell1) || !ReadI128(reader, &iota) || !reader.U64(&tau)) {
    return Status::InvalidArgument("truncated OneSparseCell state");
  }
  if (tau >= kMersenne61) {
    return Status::InvalidArgument("corrupt OneSparseCell fingerprint");
  }
  ell1_ = ell1;
  iota_ = iota;
  tau_ = tau;
  return Status::OK();
}

SpaceUsage OneSparseCell::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = 5;  // r, ell1, iota (2 words), tau
  usage.bytes = sizeof(*this);
  return usage;
}

}  // namespace himpact
