#ifndef HIMPACT_SKETCH_BJKST_H_
#define HIMPACT_SKETCH_BJKST_H_

#include <cstdint>
#include <span>
#include <unordered_set>

#include "common/bytes.h"
#include "common/space.h"
#include "common/status.h"
#include "hash/k_independent.h"

/// \file
/// BJKST distinct counter (Bar-Yossef–Jayram–Kumar–Sivakumar–Trevisan,
/// algorithm 2): keep the elements whose hash has at least `z` trailing
/// zero bits, raising `z` whenever the buffer exceeds `c/eps^2`; the
/// estimate is `|buffer| * 2^z`. A third F0 algorithm alongside KMV and
/// HyperLogLog, with the textbook `(eps, delta)` analysis via
/// median-of-instances (callers who need the delta boost can run several
/// and take the median; a single instance is `(1 +/- eps)` with
/// constant probability).

namespace himpact {

/// A single BJKST instance.
class BjkstDistinct {
 public:
  /// Requires `0 < eps < 1`.
  BjkstDistinct(double eps, std::uint64_t seed);

  /// Observes one element.
  void Add(std::uint64_t element);

  /// Batched `Add` with a hardware trailing-zero count in place of the
  /// scalar bit loop. The depth `z` can rise mid-batch and filters later
  /// elements, so the loop stays in-order and shrinks after every insert,
  /// exactly like the scalar path; final state is byte-identical.
  void AddBatch(std::span<const std::uint64_t> elements);

  /// Estimated number of distinct elements: `|buffer| * 2^z`.
  double Estimate() const;

  /// Merges another instance built with the same `(eps, seed)`:
  /// both buffers are re-filtered at `max(z, other.z)` and unioned, then
  /// the capacity invariant re-established. Exact merge: the resulting
  /// state is identical to a single instance that saw both streams
  /// (the retained set is a pure function of the observed hash set).
  void Merge(const BjkstDistinct& other);

  /// Current subsampling depth `z`.
  int z() const { return z_; }

  /// Current buffer occupancy.
  std::size_t buffer_size() const { return buffer_.size(); }

  /// Space used by the instance.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (construction parameters + buffer contents).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores an instance from a `SerializeTo` checkpoint.
  static StatusOr<BjkstDistinct> DeserializeFrom(ByteReader& reader);

  /// Appends only the mutable state (`z` and the sorted buffer).
  void SerializeStateTo(ByteWriter& writer) const;

  /// Restores the state written by `SerializeStateTo` into this instance,
  /// which must have been constructed with the same `(eps, seed)`.
  Status DeserializeStateFrom(ByteReader& reader);

 private:
  /// Number of trailing zero bits of `x` (64 for x == 0).
  static int TrailingZeros(std::uint64_t x);

  /// Raises `z` (dropping now-unqualified entries) until the buffer fits.
  void ShrinkToCapacity();

  double eps_;          // construction eps (checkpoint reconstruction)
  std::uint64_t seed_;  // construction seed (checkpoint reconstruction)
  std::size_t capacity_;
  KIndependentHash hash_;
  int z_ = 0;
  // Stores hashed values (not raw elements): trailing zeros are a
  // function of the hash, and collisions at 61 bits are negligible.
  std::unordered_set<std::uint64_t> buffer_;
};

}  // namespace himpact

#endif  // HIMPACT_SKETCH_BJKST_H_
