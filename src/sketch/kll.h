#ifndef HIMPACT_SKETCH_KLL_H_
#define HIMPACT_SKETCH_KLL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/space.h"
#include "common/status.h"
#include "random/rng.h"

/// \file
/// KLL quantile sketch (Karnin–Lang–Liberty 2016), simplified variant:
/// a hierarchy of compactors where level `l` holds items of weight
/// `2^l`; a full compactor sorts itself and promotes a random half.
/// Rank queries are answered within `+- eps * n` with
/// `k = O(1/eps * sqrt(log 1/eps))`.
///
/// Role in this library: the *generic-machinery baseline* for H-index
/// estimation (`core/quantile_baseline.h`). A rank sketch can compute
/// the H-index fixed point, but only to additive `eps*n` error — the A4
/// experiment contrasts that with the paper's tailored exponential
/// histogram, which achieves multiplicative `(1-eps)` error in
/// comparable space.

namespace himpact {

/// A KLL sketch over 64-bit values.
class KllSketch {
 public:
  /// `k` is the top-compactor capacity (accuracy knob; rank error is
  /// ~ 1.77 n / k with the 2/3 capacity decay). Requires `k >= 8`.
  KllSketch(std::size_t k, std::uint64_t seed);

  /// Observes one value.
  void Add(std::uint64_t value);

  /// Batched `Add`. Compaction consumes promotion coins from `rng_`, so
  /// the loop is strictly in-order to keep the coin sequence — and hence
  /// the serialized state — byte-identical to the scalar sequence. The
  /// level-0 capacity is only recomputed after a compression instead of
  /// per event (it cannot change otherwise).
  void AddBatch(std::span<const std::uint64_t> values);

  /// Total number of values observed.
  std::uint64_t n() const { return n_; }

  /// Estimated number of observed values `< value`.
  double Rank(std::uint64_t value) const;

  /// Estimated number of observed values `>= value`.
  double CountGreaterEqual(std::uint64_t value) const {
    return static_cast<double>(n_) - Rank(value);
  }

  /// Estimated `q`-quantile (`0 <= q <= 1`): the smallest retained value
  /// whose estimated rank reaches `q * n`.
  std::uint64_t Quantile(double q) const;

  /// Merges another sketch built with the same `k` (seeds may differ:
  /// the promotion coins do not affect mergeability). Level-wise append
  /// followed by compaction; rank error after the merge stays within the
  /// `(a.n + b.n)`-stream guarantee — KLL is `(1±eps)`-preserving under
  /// merge, not bit-identical to a single-instance run.
  void Merge(const KllSketch& other);

  /// Number of retained items across all compactors.
  std::size_t NumRetained() const;

  /// Space used by the sketch.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (construction parameters + compactors + rng).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a sketch from a `SerializeTo` checkpoint. Resume is
  /// bit-identical: the rng state rides along, so a restored sketch makes
  /// the same promotion coin flips the original would have.
  static StatusOr<KllSketch> DeserializeFrom(ByteReader& reader);

  /// Appends only the mutable state (n, rng state, compactor contents).
  void SerializeStateTo(ByteWriter& writer) const;

  /// Restores the state written by `SerializeStateTo` into this sketch,
  /// which must have been constructed with the same `(k, seed)`.
  Status DeserializeStateFrom(ByteReader& reader);

 private:
  /// Capacity of `level` counted from the top compactor.
  std::size_t CapacityAt(std::size_t level) const;

  /// Compacts every over-full level once, bottom-up.
  void Compress();

  std::size_t k_;
  std::uint64_t seed_;  // construction seed (checkpoint reconstruction)
  std::uint64_t n_ = 0;
  Rng rng_;
  std::vector<std::vector<std::uint64_t>> compactors_;
};

}  // namespace himpact

#endif  // HIMPACT_SKETCH_KLL_H_
