#include "sketch/dgim.h"

#include <cmath>

#include "common/check.h"

namespace himpact {

DgimCounter::DgimCounter(std::uint64_t window, double eps) : window_(window) {
  HIMPACT_CHECK(window >= 1);
  HIMPACT_CHECK(eps > 0.0 && eps < 1.0);
  // With k+1 buckets allowed per size, the uncounted half of the oldest
  // bucket is at most a 1/k fraction of the window's ones.
  max_per_size_ = static_cast<std::size_t>(std::ceil(1.0 / eps)) + 1;
}

void DgimCounter::Add(bool one) {
  ++time_;
  // Expire buckets that have fallen out of the window.
  while (!buckets_.empty() && buckets_.back().time + window_ <= time_) {
    buckets_.pop_back();
  }
  if (!one) return;

  buckets_.push_front(Bucket{time_, 0});
  // Cascade merges: whenever more than max_per_size_ buckets share a
  // size, merge the two oldest of that size into one of twice the size
  // (keeping the newer timestamp of the two, i.e. the earlier position
  // in the deque).
  int log_size = 0;
  std::size_t scan_start = 0;
  while (true) {
    // Count buckets of `log_size` starting at scan_start (the deque is
    // sorted by size because sizes only grow toward the back).
    std::size_t count = 0;
    std::size_t first = scan_start;
    while (first + count < buckets_.size() &&
           buckets_[first + count].log_size == log_size) {
      ++count;
    }
    if (count <= max_per_size_) break;
    // Merge the two oldest buckets of this size (highest indices).
    const std::size_t oldest = first + count - 1;
    const std::size_t second_oldest = oldest - 1;
    buckets_[second_oldest].log_size = log_size + 1;
    // The merged bucket keeps the newer of the two timestamps, which is
    // already buckets_[second_oldest].time.
    buckets_.erase(buckets_.begin() +
                   static_cast<std::ptrdiff_t>(oldest));
    scan_start = second_oldest;
    ++log_size;
  }
}

double DgimCounter::Estimate() const {
  if (buckets_.empty()) return 0.0;
  double total = 0.0;
  for (const Bucket& bucket : buckets_) {
    total += std::ldexp(1.0, bucket.log_size);
  }
  // All of the oldest bucket's ones except (conventionally) half may have
  // left the window.
  total -= std::ldexp(1.0, buckets_.back().log_size) / 2.0 - 0.5;
  return total;
}

namespace {
constexpr std::uint64_t kDgimMagic = 0x48494d5044474931ULL;
}  // namespace

void DgimCounter::SerializeTo(ByteWriter& writer) const {
  writer.U64(kDgimMagic);
  writer.U64(window_);
  writer.U64(max_per_size_);
  writer.U64(time_);
  writer.U64(buckets_.size());
  for (const Bucket& bucket : buckets_) {
    writer.U64(bucket.time);
    writer.I64(bucket.log_size);
  }
}

StatusOr<DgimCounter> DgimCounter::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kDgimMagic) {
    return Status::InvalidArgument("not a DgimCounter checkpoint");
  }
  std::uint64_t window = 0, max_per_size = 0, time = 0, count = 0;
  if (!reader.U64(&window) || !reader.U64(&max_per_size) ||
      !reader.U64(&time) || !reader.U64(&count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  if (window < 1 || max_per_size < 2) {
    return Status::InvalidArgument("corrupt checkpoint parameters");
  }
  DgimCounter counter(window, 1.0 / static_cast<double>(max_per_size - 1));
  counter.max_per_size_ = max_per_size;
  counter.time_ = time;
  for (std::uint64_t i = 0; i < count; ++i) {
    Bucket bucket{0, 0};
    std::int64_t log_size = 0;
    if (!reader.U64(&bucket.time) || !reader.I64(&log_size)) {
      return Status::InvalidArgument("truncated checkpoint buckets");
    }
    if (log_size < 0 || log_size > 63 || bucket.time > time) {
      return Status::InvalidArgument("corrupt checkpoint bucket");
    }
    bucket.log_size = static_cast<int>(log_size);
    counter.buckets_.push_back(bucket);
  }
  return counter;
}

SpaceUsage DgimCounter::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = buckets_.size() + 2;
  usage.bytes = sizeof(*this) + buckets_.size() * sizeof(Bucket);
  return usage;
}

}  // namespace himpact
