#ifndef HIMPACT_SKETCH_DGIM_H_
#define HIMPACT_SKETCH_DGIM_H_

#include <cstdint>
#include <deque>

#include "common/bytes.h"
#include "common/space.h"
#include "common/status.h"

/// \file
/// DGIM sliding-window bit counter (Datar–Gionis–Indyk–Motwani 2002):
/// maintains a `(1±eps)`-approximate count of the ones among the last
/// `window` stream positions using `O(1/eps * log^2 window)` bits.
///
/// Substrate for the sliding-window H-index extension
/// (`core/sliding_window.h`): each citation-threshold counter of
/// Algorithm 1 becomes a DGIM counter so the estimate reflects only the
/// most recent `window` publications.

namespace himpact {

/// A `(1±eps)` count of ones within the trailing window.
class DgimCounter {
 public:
  /// Requires `window >= 1`, `0 < eps < 1`.
  DgimCounter(std::uint64_t window, double eps);

  /// Advances time by one position carrying a one (qualifying element)
  /// or a zero.
  void Add(bool one);

  /// Estimated number of ones among the last `window` positions.
  /// Over/under-estimates by at most half the oldest bucket, i.e. a
  /// `(1±eps)` factor.
  double Estimate() const;

  /// Exact stream position (number of Add calls so far).
  std::uint64_t position() const { return time_; }

  /// Number of live buckets.
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Space used by the counter.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint of parameters and buckets to `writer`.
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a counter from a `SerializeTo` checkpoint.
  static StatusOr<DgimCounter> DeserializeFrom(ByteReader& reader);

 private:
  struct Bucket {
    std::uint64_t time;  // position of the most recent one in the bucket
    int log_size;        // bucket holds 2^log_size ones
  };

  std::uint64_t window_;
  std::size_t max_per_size_;  // buckets allowed per size before merging
  std::uint64_t time_ = 0;
  std::deque<Bucket> buckets_;  // newest first
};

}  // namespace himpact

#endif  // HIMPACT_SKETCH_DGIM_H_
