#include "sketch/distinct.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {

KmvCore::KmvCore(std::size_t k, std::uint64_t seed)
    : k_(k), seed_(seed), hash_(SplitMix64(seed ^ 0x1f123bb5159a55e5ULL)) {
  HIMPACT_CHECK(k >= 2);
  heap_.reserve(k);
}

void KmvCore::Add(std::uint64_t element) { AddHash(hash_(element)); }

void KmvCore::Merge(const KmvCore& other) {
  HIMPACT_CHECK_MSG(k_ == other.k_ && seed_ == other.seed_,
                    "merging KmvCores with different parameters");
  for (const std::uint64_t h : other.heap_) AddHash(h);
}

void KmvCore::AddHash(std::uint64_t h) {
  if (heap_.size() == k_ && h >= heap_.front()) return;
  if (members_.contains(h)) return;
  if (heap_.size() == k_) {
    members_.erase(heap_.front());
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
  heap_.push_back(h);
  std::push_heap(heap_.begin(), heap_.end());
  members_.insert(h);
}

double KmvCore::Estimate() const {
  if (heap_.size() < k_) {
    // Nothing has ever been evicted, so the retained set is exactly the
    // set of distinct hashes observed.
    return static_cast<double>(heap_.size());
  }
  // kth-minimum-value estimator: E[(k-1) / v_k] = F0 for v_k the kth
  // smallest hash normalized into (0, 1].
  const double v_k =
      (static_cast<double>(heap_.front()) + 1.0) * 0x1.0p-64;
  return static_cast<double>(k_ - 1) / v_k;
}

SpaceUsage KmvCore::EstimateSpace() const {
  SpaceUsage usage = hash_.EstimateSpace();
  usage.words += k_;
  usage.bytes += sizeof(*this) + heap_.capacity() * sizeof(std::uint64_t) +
                 members_.size() * sizeof(std::uint64_t) * 2;
  return usage;
}

DistinctCounter::DistinctCounter(double eps, double delta, std::uint64_t seed)
    : k_(0) {
  HIMPACT_CHECK(eps > 0.0 && eps < 1.0);
  HIMPACT_CHECK(delta > 0.0 && delta < 1.0);
  // Var[1/v_k] gives relative std ~ 1/sqrt(k); k = 4/eps^2 puts a single
  // core within (1 +/- eps) with probability >= 3/4 (Chebyshev), and the
  // median over 8*ln(1/delta) cores boosts it to 1 - delta (Chernoff).
  k_ = static_cast<std::size_t>(std::ceil(4.0 / (eps * eps)));
  if (k_ < 2) k_ = 2;
  std::size_t num_cores = static_cast<std::size_t>(
      std::ceil(8.0 * std::log(1.0 / delta)));
  if (num_cores < 1) num_cores = 1;
  if (num_cores % 2 == 0) ++num_cores;  // odd count -> unambiguous median

  std::uint64_t core_seed = SplitMix64(seed ^ 0x96d5c2a1e2279db5ULL);
  cores_.reserve(num_cores);
  for (std::size_t i = 0; i < num_cores; ++i) {
    core_seed = SplitMix64(core_seed);
    cores_.emplace_back(k_, core_seed);
  }
}

void DistinctCounter::Add(std::uint64_t element) {
  for (KmvCore& core : cores_) core.Add(element);
}

void DistinctCounter::Merge(const DistinctCounter& other) {
  HIMPACT_CHECK_MSG(k_ == other.k_ && cores_.size() == other.cores_.size(),
                    "merging DistinctCounters with different parameters");
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cores_[i].Merge(other.cores_[i]);
  }
}

double DistinctCounter::Estimate() const {
  std::vector<double> estimates;
  estimates.reserve(cores_.size());
  for (const KmvCore& core : cores_) estimates.push_back(core.Estimate());
  std::nth_element(estimates.begin(),
                   estimates.begin() + static_cast<std::ptrdiff_t>(
                                           estimates.size() / 2),
                   estimates.end());
  return estimates[estimates.size() / 2];
}

SpaceUsage DistinctCounter::EstimateSpace() const {
  SpaceUsage usage;
  for (const KmvCore& core : cores_) usage += core.EstimateSpace();
  usage.bytes += sizeof(*this);
  return usage;
}

}  // namespace himpact
