#include "sketch/distinct.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {

KmvCore::KmvCore(std::size_t k, std::uint64_t seed)
    : k_(k), seed_(seed), hash_(SplitMix64(seed ^ 0x1f123bb5159a55e5ULL)) {
  HIMPACT_CHECK(k >= 2);
  heap_.reserve(k);
}

void KmvCore::Add(std::uint64_t element) { AddHash(hash_(element)); }

void KmvCore::AddBatch(const std::uint64_t* elements, std::size_t n) {
  // Hashing is independent of core state, so a whole tile hashes ahead
  // of the inserts (vectorized when the AVX2 gather kernel is active);
  // AddHash stays strictly in stream order because the heap's array
  // layout depends on insertion order.
  constexpr std::size_t kTile = 256;
  std::uint64_t hashes[kTile];
  for (std::size_t base = 0; base < n; base += kTile) {
    const std::size_t m = std::min(kTile, n - base);
    hash_.HashBatch(elements + base, hashes, m);
    for (std::size_t j = 0; j < m; ++j) AddHash(hashes[j]);
  }
}

void KmvCore::Merge(const KmvCore& other) {
  HIMPACT_CHECK_MSG(k_ == other.k_ && seed_ == other.seed_,
                    "merging KmvCores with different parameters");
  for (const std::uint64_t h : other.heap_) AddHash(h);
}

void KmvCore::AddHash(std::uint64_t h) {
  if (heap_.size() == k_ && h >= heap_.front()) return;
  if (members_.contains(h)) return;
  if (heap_.size() == k_) {
    members_.erase(heap_.front());
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
  heap_.push_back(h);
  std::push_heap(heap_.begin(), heap_.end());
  members_.insert(h);
}

double KmvCore::Estimate() const {
  if (heap_.size() < k_) {
    // Nothing has ever been evicted, so the retained set is exactly the
    // set of distinct hashes observed.
    return static_cast<double>(heap_.size());
  }
  // kth-minimum-value estimator: E[(k-1) / v_k] = F0 for v_k the kth
  // smallest hash normalized into (0, 1].
  const double v_k =
      (static_cast<double>(heap_.front()) + 1.0) * 0x1.0p-64;
  return static_cast<double>(k_ - 1) / v_k;
}

SpaceUsage KmvCore::EstimateSpace() const {
  SpaceUsage usage = hash_.EstimateSpace();
  usage.words += k_;
  usage.bytes += sizeof(*this) + heap_.capacity() * sizeof(std::uint64_t) +
                 members_.size() * sizeof(std::uint64_t) * 2;
  return usage;
}

void KmvCore::SerializeStateTo(ByteWriter& writer) const {
  writer.U64(heap_.size());
  for (const std::uint64_t h : heap_) writer.U64(h);
}

Status KmvCore::DeserializeStateFrom(ByteReader& reader) {
  std::uint64_t size = 0;
  if (!reader.U64(&size)) {
    return Status::InvalidArgument("truncated KmvCore state");
  }
  if (size > k_ || size * 8 > reader.remaining()) {
    return Status::InvalidArgument("corrupt KmvCore retained-set size");
  }
  std::vector<std::uint64_t> heap;
  heap.reserve(k_);
  for (std::uint64_t i = 0; i < size; ++i) {
    std::uint64_t h = 0;
    if (!reader.U64(&h)) {
      return Status::InvalidArgument("truncated KmvCore state");
    }
    heap.push_back(h);
  }
  // The heap is serialized verbatim so resume is bit-identical; reject
  // orderings that would break the eviction invariant.
  if (!std::is_heap(heap.begin(), heap.end())) {
    return Status::InvalidArgument("corrupt KmvCore heap ordering");
  }
  std::unordered_set<std::uint64_t> members(heap.begin(), heap.end());
  if (members.size() != heap.size()) {
    return Status::InvalidArgument("duplicate values in KmvCore heap");
  }
  heap_ = std::move(heap);
  members_ = std::move(members);
  return Status::OK();
}

DistinctCounter::DistinctCounter(double eps, double delta, std::uint64_t seed)
    : eps_(eps), delta_(delta), seed_(seed), k_(0) {
  HIMPACT_CHECK(eps > 0.0 && eps < 1.0);
  HIMPACT_CHECK(delta > 0.0 && delta < 1.0);
  // Var[1/v_k] gives relative std ~ 1/sqrt(k); k = 4/eps^2 puts a single
  // core within (1 +/- eps) with probability >= 3/4 (Chebyshev), and the
  // median over 8*ln(1/delta) cores boosts it to 1 - delta (Chernoff).
  k_ = static_cast<std::size_t>(std::ceil(4.0 / (eps * eps)));
  if (k_ < 2) k_ = 2;
  std::size_t num_cores = static_cast<std::size_t>(
      std::ceil(8.0 * std::log(1.0 / delta)));
  if (num_cores < 1) num_cores = 1;
  if (num_cores % 2 == 0) ++num_cores;  // odd count -> unambiguous median

  std::uint64_t core_seed = SplitMix64(seed ^ 0x96d5c2a1e2279db5ULL);
  cores_.reserve(num_cores);
  for (std::size_t i = 0; i < num_cores; ++i) {
    core_seed = SplitMix64(core_seed);
    cores_.emplace_back(k_, core_seed);
  }
}

void DistinctCounter::Add(std::uint64_t element) {
  for (KmvCore& core : cores_) core.Add(element);
}

void DistinctCounter::AddBatch(const std::uint64_t* elements, std::size_t n) {
  // Core-outer: cores are independent and each sees the batch in stream
  // order, so swapping the loops leaves every core's state identical to
  // the scalar sequence.
  for (KmvCore& core : cores_) core.AddBatch(elements, n);
}

void DistinctCounter::Merge(const DistinctCounter& other) {
  HIMPACT_CHECK_MSG(k_ == other.k_ && cores_.size() == other.cores_.size(),
                    "merging DistinctCounters with different parameters");
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cores_[i].Merge(other.cores_[i]);
  }
}

double DistinctCounter::Estimate() const {
  std::vector<double> estimates;
  estimates.reserve(cores_.size());
  for (const KmvCore& core : cores_) estimates.push_back(core.Estimate());
  std::nth_element(estimates.begin(),
                   estimates.begin() + static_cast<std::ptrdiff_t>(
                                           estimates.size() / 2),
                   estimates.end());
  return estimates[estimates.size() / 2];
}

namespace {
constexpr std::uint64_t kDistinctMagic = 0x48494d5044435431ULL;
}  // namespace

void DistinctCounter::SerializeTo(ByteWriter& writer) const {
  writer.U64(kDistinctMagic);
  writer.F64(eps_);
  writer.F64(delta_);
  writer.U64(seed_);
  SerializeStateTo(writer);
}

StatusOr<DistinctCounter> DistinctCounter::DeserializeFrom(
    ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kDistinctMagic) {
    return Status::InvalidArgument("not a DistinctCounter checkpoint");
  }
  double eps = 0.0;
  double delta = 0.0;
  std::uint64_t seed = 0;
  if (!reader.F64(&eps) || !reader.F64(&delta) || !reader.U64(&seed)) {
    return Status::InvalidArgument("truncated DistinctCounter checkpoint");
  }
  // Bound eps below so k = 4/eps^2 cannot explode from a corrupt field;
  // the 1e-3 floor caps k at 4M words before any allocation happens.
  if (!(eps > 1e-3) || !(eps < 1.0) || !(delta > 1e-12) || !(delta < 1.0)) {
    return Status::InvalidArgument("corrupt DistinctCounter parameters");
  }
  DistinctCounter counter(eps, delta, seed);
  const Status status = counter.DeserializeStateFrom(reader);
  if (!status.ok()) return status;
  return counter;
}

void DistinctCounter::SerializeStateTo(ByteWriter& writer) const {
  writer.U64(cores_.size());
  for (const KmvCore& core : cores_) core.SerializeStateTo(writer);
}

Status DistinctCounter::DeserializeStateFrom(ByteReader& reader) {
  std::uint64_t num_cores = 0;
  if (!reader.U64(&num_cores)) {
    return Status::InvalidArgument("truncated DistinctCounter state");
  }
  if (num_cores != cores_.size()) {
    return Status::InvalidArgument("DistinctCounter core-count mismatch");
  }
  for (KmvCore& core : cores_) {
    const Status status = core.DeserializeStateFrom(reader);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

SpaceUsage DistinctCounter::EstimateSpace() const {
  SpaceUsage usage;
  for (const KmvCore& core : cores_) usage += core.EstimateSpace();
  usage.bytes += sizeof(*this);
  return usage;
}

}  // namespace himpact
