#ifndef HIMPACT_SKETCH_S_SPARSE_H_
#define HIMPACT_SKETCH_S_SPARSE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/space.h"
#include "common/status.h"
#include "hash/k_independent.h"
#include "sketch/one_sparse.h"

/// \file
/// s-sparse recovery: a grid of one-sparse cells with pairwise-independent
/// row hashing. If the sketched vector has at most `s` non-zero entries,
/// every entry lands alone in some cell of some row with high probability
/// and can be read back exactly.
///
/// A "completeness certificate" — a global fingerprint over all updates —
/// lets callers distinguish *exact* recoveries from partial ones, which is
/// what the l0-sampler needs to decide whether a subsampling level was
/// light enough to decode.

namespace himpact {

/// The outcome of an s-sparse recovery attempt.
struct SSparseResult {
  /// True iff the recovered entries provably (up to fingerprint collision
  /// probability ~ n/2^61) account for the entire sketched vector.
  bool exact = false;

  /// Recovered (index, weight) pairs, sorted by index, weights non-zero.
  std::vector<RecoveredEntry> entries;
};

/// A linear sketch recovering vectors with at most `s` non-zero entries.
class SSparseRecovery {
 public:
  /// Builds a sketch for sparsity `s` with per-query failure probability
  /// roughly `delta`. Requires `s >= 1`, `0 < delta < 1`.
  SSparseRecovery(std::size_t s, double delta, std::uint64_t seed);

  /// Applies the update `V[index] += weight`.
  void Update(std::uint64_t index, std::int64_t weight);

  /// Merges another sketch built with the same `(s, delta, seed)`;
  /// afterwards this sketch reflects the sum of both update streams.
  void Merge(const SSparseRecovery& other);

  /// Attempts to recover all non-zero entries.
  SSparseResult Recover() const;

  /// True iff no net updates are present (vector is zero up to fingerprint
  /// collisions).
  bool IsZero() const { return total_.IsZero(); }

  /// The sparsity parameter `s`.
  std::size_t s() const { return s_; }

  /// Number of hash rows.
  std::size_t rows() const { return rows_; }

  /// Number of columns per row (`2s`).
  std::size_t cols() const { return cols_; }

  /// Space used by the structure.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (construction parameters + all cell sums).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a sketch from a `SerializeTo` checkpoint.
  static StatusOr<SSparseRecovery> DeserializeFrom(ByteReader& reader);

  /// Appends only the mutable cell sums; `L0Sampler` re-derives the
  /// structure from its own seed and checkpoints just this state.
  void SerializeStateTo(ByteWriter& writer) const;

  /// Restores the state written by `SerializeStateTo` into this sketch,
  /// which must have been constructed with the same `(s, delta, seed)`.
  Status DeserializeStateFrom(ByteReader& reader);

 private:
  std::size_t s_;
  double delta_;  // construction delta (checkpoint reconstruction)
  std::size_t rows_;
  std::size_t cols_;
  std::uint64_t seed_;  // construction seed (merge compatibility check)
  std::uint64_t cell_seed_;
  std::vector<PairwiseRangeHash> row_hashes_;
  std::vector<OneSparseCell> cells_;  // rows_ x cols_, row-major
  OneSparseCell total_;               // completeness certificate
};

}  // namespace himpact

#endif  // HIMPACT_SKETCH_S_SPARSE_H_
