#include "sketch/hyperloglog.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "hash/mix.h"

namespace himpact {

HyperLogLog::HyperLogLog(int precision, std::uint64_t seed)
    : precision_(precision),
      seed_(seed),
      hash_(SplitMix64(seed ^ 0x7a4a7b1cd2f6a1adULL)) {
  HIMPACT_CHECK(precision >= 4 && precision <= 18);
  registers_.assign(std::size_t{1} << precision, 0);
}

void HyperLogLog::Add(std::uint64_t element) {
  const std::uint64_t h = hash_(element);
  const std::size_t bucket =
      static_cast<std::size_t>(h >> (64 - precision_));
  const std::uint64_t rest = h << precision_ | (std::uint64_t{1} << (precision_ - 1));
  // Rank = number of leading zeros of the remaining bits, plus one.
  std::uint8_t rank = 1;
  std::uint64_t bits = rest;
  while ((bits & (std::uint64_t{1} << 63)) == 0 && rank < 64) {
    ++rank;
    bits <<= 1;
  }
  if (rank > registers_[bucket]) registers_[bucket] = rank;
}

void HyperLogLog::AddBatch(std::span<const std::uint64_t> elements) {
  // `rest` always carries the sentinel bit `1 << (precision_-1)`, so it is
  // never zero and `countl_zero(rest) + 1` equals the scalar Add() rank
  // loop exactly (both are 1 + the leading-zero count, <= 64).
  std::uint8_t* const registers = registers_.data();
  const int shift = 64 - precision_;
  const std::uint64_t sentinel = std::uint64_t{1} << (precision_ - 1);
  const auto apply = [&](std::uint64_t h) {
    const std::size_t bucket = static_cast<std::size_t>(h >> shift);
    const std::uint64_t rest = h << precision_ | sentinel;
    const std::uint8_t rank =
        static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
    if (rank > registers[bucket]) registers[bucket] = rank;
  };
  // Hash a tile through HashBatch (vectorized when the AVX2 gather
  // kernel is active, 4-ahead-equivalent scalar otherwise), then apply
  // the rank updates; register updates are max-merges, so order within
  // the tile does not matter and the state matches the scalar sequence.
  constexpr std::size_t kTile = 256;
  std::uint64_t hashes[kTile];
  for (std::size_t base = 0; base < elements.size(); base += kTile) {
    const std::size_t m = std::min(kTile, elements.size() - base);
    hash_.HashBatch(elements.data() + base, hashes, m);
    for (std::size_t j = 0; j < m; ++j) apply(hashes[j]);
  }
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() == 16) {
    alpha = 0.673;
  } else if (registers_.size() == 32) {
    alpha = 0.697;
  } else if (registers_.size() == 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double sum = 0.0;
  std::size_t zero_registers = 0;
  for (const std::uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zero_registers;
  }
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zero_registers > 0) {
    // Linear-counting correction for small cardinalities.
    estimate = m * std::log(m / static_cast<double>(zero_registers));
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  HIMPACT_CHECK_MSG(precision_ == other.precision_ && seed_ == other.seed_,
                    "merging HyperLogLogs with different parameters");
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
}

namespace {
constexpr std::uint64_t kHyperLogLogMagic = 0x48494d50484c4c31ULL;
}  // namespace

void HyperLogLog::SerializeTo(ByteWriter& writer) const {
  writer.U64(kHyperLogLogMagic);
  writer.U64(static_cast<std::uint64_t>(precision_));
  writer.U64(seed_);
  SerializeStateTo(writer);
}

StatusOr<HyperLogLog> HyperLogLog::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kHyperLogLogMagic) {
    return Status::InvalidArgument("not a HyperLogLog checkpoint");
  }
  std::uint64_t precision = 0;
  std::uint64_t seed = 0;
  if (!reader.U64(&precision) || !reader.U64(&seed)) {
    return Status::InvalidArgument("truncated HyperLogLog checkpoint");
  }
  if (precision < 4 || precision > 18) {
    return Status::InvalidArgument("corrupt HyperLogLog precision");
  }
  HyperLogLog sketch(static_cast<int>(precision), seed);
  const Status status = sketch.DeserializeStateFrom(reader);
  if (!status.ok()) return status;
  return sketch;
}

void HyperLogLog::SerializeStateTo(ByteWriter& writer) const {
  writer.U64(registers_.size());
  writer.Bytes(registers_.data(), registers_.size());
}

Status HyperLogLog::DeserializeStateFrom(ByteReader& reader) {
  std::uint64_t num_registers = 0;
  if (!reader.U64(&num_registers)) {
    return Status::InvalidArgument("truncated HyperLogLog state");
  }
  if (num_registers != registers_.size()) {
    return Status::InvalidArgument("HyperLogLog register-count mismatch");
  }
  std::vector<std::uint8_t> registers;
  if (!reader.Bytes(registers_.size(), &registers)) {
    return Status::InvalidArgument("truncated HyperLogLog state");
  }
  for (const std::uint8_t reg : registers) {
    // Rank never exceeds 64 (leading-zero count of a 64-bit word + 1).
    if (reg > 64) {
      return Status::InvalidArgument("corrupt HyperLogLog register value");
    }
  }
  registers_ = std::move(registers);
  return Status::OK();
}

SpaceUsage HyperLogLog::EstimateSpace() const {
  SpaceUsage usage = hash_.EstimateSpace();
  usage.words += CeilDiv(registers_.size() * 6, kBitsPerWord);
  usage.bytes += sizeof(*this) + registers_.capacity();
  return usage;
}

}  // namespace himpact
