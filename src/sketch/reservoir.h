#ifndef HIMPACT_SKETCH_RESERVOIR_H_
#define HIMPACT_SKETCH_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "common/space.h"
#include "common/status.h"
#include "random/rng.h"

/// \file
/// Reservoir sampling (Vitter's Algorithm R).
///
/// Algorithm 7 (1-Heavy-Hitter) keeps, for every threshold `(1+eps)^i`, a
/// uniform sample `T_i` of `s = 2 log(log(n)/delta)` papers among those
/// whose citation count reached the threshold; this class provides that
/// per-threshold sample.

namespace himpact {

/// A uniform sample without replacement of fixed capacity over a stream.
template <typename T>
class ReservoirSampler {
 public:
  /// Creates a reservoir of the given capacity. Requires `capacity >= 1`.
  explicit ReservoirSampler(std::size_t capacity) : capacity_(capacity) {
    HIMPACT_CHECK(capacity >= 1);
    sample_.reserve(capacity);
  }

  /// Offers one stream item; the reservoir stays a uniform sample of all
  /// items offered so far.
  void Add(const T& item, Rng& rng) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(item);
      return;
    }
    const std::uint64_t j = rng.UniformU64(seen_);
    if (j < capacity_) {
      sample_[static_cast<std::size_t>(j)] = item;
    }
  }

  /// Merges another reservoir of the same capacity; afterwards the
  /// sample is uniform over the union of both streams. The number of
  /// survivors taken from each side is drawn hypergeometrically (one
  /// sequential without-replacement draw per slot, weighted by the
  /// remaining stream sizes), and the survivors themselves are a uniform
  /// subset of each side's sample — a uniform subset of a uniform sample
  /// is uniform, so the merged reservoir keeps the Algorithm 7 sampling
  /// guarantee. `(1±eps)`-preserving in distribution, not bit-identical
  /// to a single-instance run.
  void Merge(const ReservoirSampler<T>& other, Rng& rng) {
    HIMPACT_CHECK(capacity_ == other.capacity_);
    if (other.seen_ == 0) return;
    if (seen_ == 0) {
      seen_ = other.seen_;
      sample_ = other.sample_;
      return;
    }
    std::vector<T> a = std::move(sample_);
    std::vector<T> b = other.sample_;
    // Remaining (not-yet-assigned) stream sizes on each side; drawing a
    // slot from side X with probability rx/(ra+rb) and decrementing makes
    // the per-side slot counts exactly hypergeometric. The count taken
    // from a side never exceeds its sample size: it is bounded by both
    // the target (<= capacity) and the side's stream size, and the
    // sample holds min(capacity, stream size) items.
    std::uint64_t ra = seen_;
    std::uint64_t rb = other.seen_;
    const std::uint64_t total = seen_ + other.seen_;
    const std::size_t target = static_cast<std::size_t>(
        total < capacity_ ? total : static_cast<std::uint64_t>(capacity_));
    std::vector<T> merged;
    merged.reserve(target);
    while (merged.size() < target) {
      const bool from_a = rng.UniformU64(ra + rb) < ra;
      std::vector<T>& side = from_a ? a : b;
      const std::size_t j = static_cast<std::size_t>(
          rng.UniformU64(static_cast<std::uint64_t>(side.size())));
      merged.push_back(side[j]);
      side[j] = side.back();
      side.pop_back();
      if (from_a) {
        --ra;
      } else {
        --rb;
      }
    }
    sample_ = std::move(merged);
    seen_ = total;
  }

  /// The current sample (size `min(capacity, items offered)`).
  const std::vector<T>& sample() const { return sample_; }

  /// Total number of items offered.
  std::uint64_t seen() const { return seen_; }

  /// The configured capacity.
  std::size_t capacity() const { return capacity_; }

  /// Space used by the reservoir.
  SpaceUsage EstimateSpace() const {
    SpaceUsage usage;
    usage.words = capacity_ * CeilDiv(sizeof(T), sizeof(std::uint64_t)) + 1;
    usage.bytes = sizeof(*this) + sample_.capacity() * sizeof(T);
    return usage;
  }

  /// Appends a checkpoint; `write_item(writer, item)` encodes one sample
  /// element (T is caller-defined, so the codec is too).
  template <typename WriteItem>
  void SerializeTo(ByteWriter& writer, WriteItem&& write_item) const {
    writer.U64(capacity_);
    writer.U64(seen_);
    writer.U64(sample_.size());
    for (const T& item : sample_) write_item(writer, item);
  }

  /// Restores a reservoir from a `SerializeTo` checkpoint;
  /// `read_item(reader, &item)` must return a Status and decode exactly
  /// what `write_item` wrote.
  template <typename ReadItem>
  static StatusOr<ReservoirSampler<T>> DeserializeFrom(ByteReader& reader,
                                                       ReadItem&& read_item) {
    std::uint64_t capacity = 0;
    std::uint64_t seen = 0;
    std::uint64_t size = 0;
    if (!reader.U64(&capacity) || !reader.U64(&seen) || !reader.U64(&size)) {
      return Status::InvalidArgument("truncated ReservoirSampler checkpoint");
    }
    // A reservoir never holds more than its capacity or more than it has
    // seen; a corrupt capacity must not drive a giant reserve().
    if (capacity < 1 || size > capacity || size > seen ||
        capacity > (std::uint64_t{1} << 32)) {
      return Status::InvalidArgument("corrupt ReservoirSampler geometry");
    }
    ReservoirSampler<T> sampler(static_cast<std::size_t>(capacity));
    sampler.seen_ = seen;
    for (std::uint64_t i = 0; i < size; ++i) {
      T item;
      const Status status = read_item(reader, &item);
      if (!status.ok()) return status;
      sampler.sample_.push_back(item);
    }
    return sampler;
  }

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::vector<T> sample_;
};

}  // namespace himpact

#endif  // HIMPACT_SKETCH_RESERVOIR_H_
