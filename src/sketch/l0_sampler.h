#ifndef HIMPACT_SKETCH_L0_SAMPLER_H_
#define HIMPACT_SKETCH_L0_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/space.h"
#include "common/status.h"
#include "hash/k_independent.h"
#include "sketch/s_sparse.h"

/// \file
/// l0-sampler (Definition 3 / Lemma 4, after Jowhari–Saglam–Tardos):
/// a linear sketch that, over a stream of updates `(i, z)` to a vector
/// `x`, returns a (near-)uniform non-zero coordinate of `x` together with
/// its value, or FAIL with probability at most `delta`.
///
/// Construction: `log2(n)+1` geometric subsampling levels; level `l`
/// retains index `i` iff a k-wise independent hash of `i` falls below a
/// `2^-l` fraction of the hash range. Each level feeds an s-sparse
/// recovery structure with `s = Theta(log 1/delta)`. At query time the
/// deepest level that decodes exactly and non-empty is used, and the
/// min-hash element among its survivors is returned — the standard
/// min-wise selection that makes the output close to uniform.
///
/// Space: `O(log^2 n * log(1/delta))` bits, matching Lemma 4.

namespace himpact {

/// One sampled coordinate: index plus its aggregated value `x[index]`.
struct L0Sample {
  std::uint64_t index = 0;
  std::int64_t value = 0;
};

/// A single l0-sampler instance over indices `[0, universe)`.
class L0Sampler {
 public:
  /// Creates a sampler with failure probability about `delta` for vectors
  /// over `[0, universe)`. Requires `universe >= 1`, `0 < delta < 1`.
  L0Sampler(std::uint64_t universe, double delta, std::uint64_t seed);

  /// Applies the update `x[index] += weight`. Requires `index < universe`.
  void Update(std::uint64_t index, std::int64_t weight);

  /// Batched `Update` over parallel arrays (`indices[i]` gains
  /// `weights[i]`). The level cells are linear, so the final state is
  /// byte-identical to the scalar sequence; the batch form hoists the
  /// level array and bounds checks out of the per-update path and makes
  /// zero allocations. Requires every index `< universe`.
  void UpdateBatch(const std::uint64_t* indices, const std::int64_t* weights,
                   std::size_t n);

  /// Merges another sampler built with the same `(universe, delta, seed)`;
  /// afterwards this sampler sketches the sum of both update streams —
  /// the linearity that makes sharded cash-register processing possible.
  void Merge(const L0Sampler& other);

  /// Draws the sample.
  ///
  /// Returns:
  ///  - an `L0Sample` on success,
  ///  - `FailedPrecondition` if the sketched vector is zero,
  ///  - `Unavailable` (probability <= delta) if no level decodes.
  StatusOr<L0Sample> Sample() const;

  /// Number of subsampling levels.
  std::size_t num_levels() const { return levels_.size(); }

  /// The per-level sparsity parameter.
  std::size_t sparsity() const { return sparsity_; }

  /// Space used by the sampler.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (construction parameters + all level states).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores a sampler from a `SerializeTo` checkpoint.
  static StatusOr<L0Sampler> DeserializeFrom(ByteReader& reader);

  /// Appends only the mutable level states; `CashRegisterEstimator`
  /// re-derives its samplers from its own seed and checkpoints just this.
  void SerializeStateTo(ByteWriter& writer) const;

  /// Restores the state written by `SerializeStateTo` into this sampler,
  /// which must have been constructed with the same parameters.
  Status DeserializeStateFrom(ByteReader& reader);

 private:
  std::uint64_t universe_;
  double delta_;        // construction delta (checkpoint reconstruction)
  std::uint64_t seed_;  // construction seed (merge compatibility check)
  std::size_t sparsity_;
  KIndependentHash level_hash_;
  std::vector<SSparseRecovery> levels_;
};

}  // namespace himpact

#endif  // HIMPACT_SKETCH_L0_SAMPLER_H_
