#include "sketch/kll.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {
namespace {

/// Capacity decay per level below the top (the KLL paper's c = 2/3).
constexpr double kDecay = 2.0 / 3.0;

}  // namespace

KllSketch::KllSketch(std::size_t k, std::uint64_t seed)
    : k_(k), seed_(seed), rng_(SplitMix64(seed ^ 0x9b05688c2b3e6c1fULL)) {
  HIMPACT_CHECK(k >= 8);
  compactors_.emplace_back();
}

std::size_t KllSketch::CapacityAt(std::size_t level) const {
  // Level indices count from the bottom; the top compactor has the full
  // capacity k and lower ones decay geometrically (floored at 2).
  const std::size_t height = compactors_.size();
  const double capacity =
      static_cast<double>(k_) *
      std::pow(kDecay, static_cast<double>(height - 1 - level));
  return std::max<std::size_t>(2, static_cast<std::size_t>(capacity));
}

void KllSketch::Add(std::uint64_t value) {
  compactors_[0].push_back(value);
  ++n_;
  if (compactors_[0].size() >= CapacityAt(0)) {
    Compress();
  }
}

void KllSketch::AddBatch(std::span<const std::uint64_t> values) {
  // CapacityAt(0) depends only on the compactor height, which changes
  // only inside Compress(); caching it removes a pow() per event.
  std::size_t cap0 = CapacityAt(0);
  for (const std::uint64_t value : values) {
    compactors_[0].push_back(value);
    ++n_;
    if (compactors_[0].size() >= cap0) {
      Compress();
      cap0 = CapacityAt(0);
    }
  }
}

void KllSketch::Compress() {
  for (std::size_t level = 0; level < compactors_.size(); ++level) {
    if (compactors_[level].size() < CapacityAt(level)) continue;
    if (level + 1 == compactors_.size()) {
      compactors_.emplace_back();
    }
    std::vector<std::uint64_t>& current = compactors_[level];
    std::sort(current.begin(), current.end());
    // Promote one item per sorted pair (random side): the classic
    // unbiased compaction — each promoted item of weight 2w represents
    // itself and its dropped neighbor. An odd leftover item stays in the
    // compactor so total weight is conserved exactly.
    const std::size_t even = current.size() - (current.size() % 2);
    const std::size_t offset = rng_.UniformU64(2);
    std::vector<std::uint64_t>& above = compactors_[level + 1];
    for (std::size_t i = offset; i < even; i += 2) {
      above.push_back(current[i]);
    }
    if (even < current.size()) {
      current[0] = current.back();
      current.resize(1);
    } else {
      current.clear();
    }
  }
}

void KllSketch::Merge(const KllSketch& other) {
  HIMPACT_CHECK_MSG(k_ == other.k_,
                    "merging KllSketches with different k");
  if (other.compactors_.size() > compactors_.size()) {
    compactors_.resize(other.compactors_.size());
  }
  for (std::size_t level = 0; level < other.compactors_.size(); ++level) {
    compactors_[level].insert(compactors_[level].end(),
                              other.compactors_[level].begin(),
                              other.compactors_[level].end());
  }
  n_ += other.n_;
  // Re-establish the capacity invariant; each pass halves every over-full
  // level, so this terminates in O(log) passes.
  const auto over_full = [this] {
    for (std::size_t level = 0; level < compactors_.size(); ++level) {
      if (compactors_[level].size() >= CapacityAt(level)) return true;
    }
    return false;
  };
  while (over_full()) Compress();
}

double KllSketch::Rank(std::uint64_t value) const {
  double rank = 0.0;
  double weight = 1.0;
  for (const std::vector<std::uint64_t>& compactor : compactors_) {
    for (const std::uint64_t item : compactor) {
      if (item < value) rank += weight;
    }
    weight *= 2.0;
  }
  return rank;
}

std::uint64_t KllSketch::Quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Gather (item, weight) pairs, sort by item, walk the cumulative
  // weight to the target rank.
  std::vector<std::pair<std::uint64_t, double>> items;
  double weight = 1.0;
  for (const std::vector<std::uint64_t>& compactor : compactors_) {
    for (const std::uint64_t item : compactor) {
      items.emplace_back(item, weight);
    }
    weight *= 2.0;
  }
  if (items.empty()) return 0;
  std::sort(items.begin(), items.end());
  const double target = q * static_cast<double>(n_);
  double cumulative = 0.0;
  for (const auto& [item, w] : items) {
    cumulative += w;
    if (cumulative >= target) return item;
  }
  return items.back().first;
}

namespace {
constexpr std::uint64_t kKllMagic = 0x48494d504b4c4c31ULL;
}  // namespace

void KllSketch::SerializeTo(ByteWriter& writer) const {
  writer.U64(kKllMagic);
  writer.U64(k_);
  writer.U64(seed_);
  SerializeStateTo(writer);
}

StatusOr<KllSketch> KllSketch::DeserializeFrom(ByteReader& reader) {
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kKllMagic) {
    return Status::InvalidArgument("not a KllSketch checkpoint");
  }
  std::uint64_t k = 0;
  std::uint64_t seed = 0;
  if (!reader.U64(&k) || !reader.U64(&seed)) {
    return Status::InvalidArgument("truncated KllSketch checkpoint");
  }
  if (k < 8 || k > (std::uint64_t{1} << 24)) {
    return Status::InvalidArgument("corrupt KllSketch parameters");
  }
  KllSketch sketch(static_cast<std::size_t>(k), seed);
  const Status status = sketch.DeserializeStateFrom(reader);
  if (!status.ok()) return status;
  return sketch;
}

void KllSketch::SerializeStateTo(ByteWriter& writer) const {
  writer.U64(n_);
  std::uint64_t rng_state[4];
  rng_.SaveState(rng_state);
  for (const std::uint64_t word : rng_state) writer.U64(word);
  writer.U64(compactors_.size());
  for (const std::vector<std::uint64_t>& compactor : compactors_) {
    writer.U64(compactor.size());
    for (const std::uint64_t item : compactor) writer.U64(item);
  }
}

Status KllSketch::DeserializeStateFrom(ByteReader& reader) {
  std::uint64_t n = 0;
  std::uint64_t rng_state[4] = {0, 0, 0, 0};
  std::uint64_t num_compactors = 0;
  if (!reader.U64(&n) || !reader.U64(&rng_state[0]) ||
      !reader.U64(&rng_state[1]) || !reader.U64(&rng_state[2]) ||
      !reader.U64(&rng_state[3]) || !reader.U64(&num_compactors)) {
    return Status::InvalidArgument("truncated KllSketch state");
  }
  // At most ~log2(n) levels ever exist; 64 is an absolute ceiling.
  if (num_compactors < 1 || num_compactors > 64) {
    return Status::InvalidArgument("corrupt KllSketch compactor count");
  }
  std::vector<std::vector<std::uint64_t>> compactors;
  compactors.reserve(num_compactors);
  for (std::uint64_t level = 0; level < num_compactors; ++level) {
    std::uint64_t size = 0;
    if (!reader.U64(&size)) {
      return Status::InvalidArgument("truncated KllSketch state");
    }
    if (size > k_ + 1 || size * 8 > reader.remaining()) {
      return Status::InvalidArgument("corrupt KllSketch compactor size");
    }
    std::vector<std::uint64_t> compactor;
    compactor.reserve(size);
    for (std::uint64_t i = 0; i < size; ++i) {
      std::uint64_t item = 0;
      if (!reader.U64(&item)) {
        return Status::InvalidArgument("truncated KllSketch state");
      }
      compactor.push_back(item);
    }
    compactors.push_back(std::move(compactor));
  }
  if (!rng_.RestoreState(rng_state)) {
    return Status::InvalidArgument("corrupt KllSketch rng state");
  }
  n_ = n;
  compactors_ = std::move(compactors);
  return Status::OK();
}

std::size_t KllSketch::NumRetained() const {
  std::size_t total = 0;
  for (const std::vector<std::uint64_t>& compactor : compactors_) {
    total += compactor.size();
  }
  return total;
}

SpaceUsage KllSketch::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = NumRetained() + compactors_.size();
  usage.bytes = sizeof(*this);
  for (const std::vector<std::uint64_t>& compactor : compactors_) {
    usage.bytes += compactor.capacity() * sizeof(std::uint64_t);
  }
  return usage;
}

}  // namespace himpact
