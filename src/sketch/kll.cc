#include "sketch/kll.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "hash/mix.h"

namespace himpact {
namespace {

/// Capacity decay per level below the top (the KLL paper's c = 2/3).
constexpr double kDecay = 2.0 / 3.0;

}  // namespace

KllSketch::KllSketch(std::size_t k, std::uint64_t seed)
    : k_(k), rng_(SplitMix64(seed ^ 0x9b05688c2b3e6c1fULL)) {
  HIMPACT_CHECK(k >= 8);
  compactors_.emplace_back();
}

std::size_t KllSketch::CapacityAt(std::size_t level) const {
  // Level indices count from the bottom; the top compactor has the full
  // capacity k and lower ones decay geometrically (floored at 2).
  const std::size_t height = compactors_.size();
  const double capacity =
      static_cast<double>(k_) *
      std::pow(kDecay, static_cast<double>(height - 1 - level));
  return std::max<std::size_t>(2, static_cast<std::size_t>(capacity));
}

void KllSketch::Add(std::uint64_t value) {
  compactors_[0].push_back(value);
  ++n_;
  if (compactors_[0].size() >= CapacityAt(0)) {
    Compress();
  }
}

void KllSketch::Compress() {
  for (std::size_t level = 0; level < compactors_.size(); ++level) {
    if (compactors_[level].size() < CapacityAt(level)) continue;
    if (level + 1 == compactors_.size()) {
      compactors_.emplace_back();
    }
    std::vector<std::uint64_t>& current = compactors_[level];
    std::sort(current.begin(), current.end());
    // Promote one item per sorted pair (random side): the classic
    // unbiased compaction — each promoted item of weight 2w represents
    // itself and its dropped neighbor. An odd leftover item stays in the
    // compactor so total weight is conserved exactly.
    const std::size_t even = current.size() - (current.size() % 2);
    const std::size_t offset = rng_.UniformU64(2);
    std::vector<std::uint64_t>& above = compactors_[level + 1];
    for (std::size_t i = offset; i < even; i += 2) {
      above.push_back(current[i]);
    }
    if (even < current.size()) {
      current[0] = current.back();
      current.resize(1);
    } else {
      current.clear();
    }
  }
}

double KllSketch::Rank(std::uint64_t value) const {
  double rank = 0.0;
  double weight = 1.0;
  for (const std::vector<std::uint64_t>& compactor : compactors_) {
    for (const std::uint64_t item : compactor) {
      if (item < value) rank += weight;
    }
    weight *= 2.0;
  }
  return rank;
}

std::uint64_t KllSketch::Quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Gather (item, weight) pairs, sort by item, walk the cumulative
  // weight to the target rank.
  std::vector<std::pair<std::uint64_t, double>> items;
  double weight = 1.0;
  for (const std::vector<std::uint64_t>& compactor : compactors_) {
    for (const std::uint64_t item : compactor) {
      items.emplace_back(item, weight);
    }
    weight *= 2.0;
  }
  if (items.empty()) return 0;
  std::sort(items.begin(), items.end());
  const double target = q * static_cast<double>(n_);
  double cumulative = 0.0;
  for (const auto& [item, w] : items) {
    cumulative += w;
    if (cumulative >= target) return item;
  }
  return items.back().first;
}

std::size_t KllSketch::NumRetained() const {
  std::size_t total = 0;
  for (const std::vector<std::uint64_t>& compactor : compactors_) {
    total += compactor.size();
  }
  return total;
}

SpaceUsage KllSketch::EstimateSpace() const {
  SpaceUsage usage;
  usage.words = NumRetained() + compactors_.size();
  usage.bytes = sizeof(*this);
  for (const std::vector<std::uint64_t>& compactor : compactors_) {
    usage.bytes += compactor.capacity() * sizeof(std::uint64_t);
  }
  return usage;
}

}  // namespace himpact
