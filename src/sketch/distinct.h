#ifndef HIMPACT_SKETCH_DISTINCT_H_
#define HIMPACT_SKETCH_DISTINCT_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/space.h"
#include "common/status.h"
#include "hash/tabulation.h"

/// \file
/// Distinct-count (F0 / L0-norm) estimation.
///
/// Algorithm 5 (Unbiased Sampling) needs a `(1 +/- eps)`-approximation `y`
/// of the number of non-zero coordinates of the citation vector — the
/// paper cites the Kane–Nelson–Woodruff optimal algorithm ([10]). We
/// provide a KMV (k-minimum-values / bottom-k) estimator with the same
/// `(eps, delta)` guarantee class: a single KMV core is `(1 +/- eps)` with
/// constant probability using `k = Theta(1/eps^2)` values, and a median
/// over `Theta(log 1/delta)` independent cores boosts the success
/// probability to `1 - delta`. See DESIGN.md for the substitution note.

namespace himpact {

/// A single bottom-k core: keeps the `k` smallest hash values seen.
class KmvCore {
 public:
  /// Requires `k >= 2`.
  KmvCore(std::size_t k, std::uint64_t seed);

  /// Observes one element (duplicates are ignored by construction).
  void Add(std::uint64_t element);

  /// Batched `Add`: hashes four elements ahead so the 8 tabulation-table
  /// loads per element pipeline across lanes, then applies the hashes in
  /// stream order (insertion order shapes the heap layout), so the final
  /// state is byte-identical to the scalar sequence.
  void AddBatch(const std::uint64_t* elements, std::size_t n);

  /// Merges another core built with the same `(k, seed)`; afterwards the
  /// retained set is the bottom-k of the union of both streams.
  void Merge(const KmvCore& other);

  /// Current estimate of the number of distinct elements observed.
  double Estimate() const;

  /// Space used by the core.
  SpaceUsage EstimateSpace() const;

  /// Appends only the retained hash values; `DistinctCounter` re-derives
  /// the core structure from its own seed and checkpoints just this.
  void SerializeStateTo(ByteWriter& writer) const;

  /// Restores the state written by `SerializeStateTo` into this core,
  /// which must have been constructed with the same `(k, seed)`.
  Status DeserializeStateFrom(ByteReader& reader);

 private:
  /// Inserts a precomputed hash value into the bottom-k set.
  void AddHash(std::uint64_t h);

  std::size_t k_;
  std::uint64_t seed_;
  TabulationHash hash_;
  // Max-heap of the k smallest hash values plus a membership set so
  // duplicates of a retained value are not double-counted.
  std::vector<std::uint64_t> heap_;
  std::unordered_set<std::uint64_t> members_;
};

/// Median-of-cores `(1 +/- eps, delta)` distinct-count estimator.
class DistinctCounter {
 public:
  /// Requires `0 < eps < 1`, `0 < delta < 1`.
  DistinctCounter(double eps, double delta, std::uint64_t seed);

  /// Observes one element.
  void Add(std::uint64_t element);

  /// Batched `Add` over a raw array (the caller typically borrows it
  /// from a BatchArena), iterated core-outer so one core's tabulation
  /// tables and bottom-k set stay hot across the whole batch. Each core
  /// still sees the elements in stream order, so the final state is
  /// byte-identical to the scalar sequence. Zero allocations beyond the
  /// cores' own steady-state inserts.
  void AddBatch(const std::uint64_t* elements, std::size_t n);

  /// Merges another counter built with the same `(eps, delta, seed)`;
  /// afterwards the estimate covers the union of both streams.
  void Merge(const DistinctCounter& other);

  /// Median estimate across the independent cores.
  double Estimate() const;

  /// Number of independent cores.
  std::size_t num_cores() const { return cores_.size(); }

  /// The bottom-k size per core.
  std::size_t k() const { return k_; }

  /// Space used by the estimator.
  SpaceUsage EstimateSpace() const;

  /// Appends a checkpoint (construction parameters + all core states).
  void SerializeTo(ByteWriter& writer) const;

  /// Restores an estimator from a `SerializeTo` checkpoint.
  static StatusOr<DistinctCounter> DeserializeFrom(ByteReader& reader);

  /// Appends only the mutable core states.
  void SerializeStateTo(ByteWriter& writer) const;

  /// Restores the state written by `SerializeStateTo` into this counter,
  /// which must have been constructed with the same parameters.
  Status DeserializeStateFrom(ByteReader& reader);

 private:
  double eps_;          // construction eps (checkpoint reconstruction)
  double delta_;        // construction delta (checkpoint reconstruction)
  std::uint64_t seed_;  // construction seed (checkpoint reconstruction)
  std::size_t k_;
  std::vector<KmvCore> cores_;
};

}  // namespace himpact

#endif  // HIMPACT_SKETCH_DISTINCT_H_
