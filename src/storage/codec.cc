#include "storage/codec.h"

namespace himpact {
namespace {

void PutVarint(std::uint64_t value, std::vector<std::uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(value));
}

bool GetVarint(const std::uint8_t* data, std::size_t size, std::size_t* pos,
               std::uint64_t* value) {
  std::uint64_t out = 0;
  int shift = 0;
  while (*pos < size && shift < 64) {
    const std::uint8_t byte = data[(*pos)++];
    out |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = out;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

std::vector<std::uint8_t> ZrleEncode(const std::vector<std::uint8_t>& raw) {
  std::vector<std::uint8_t> out;
  out.reserve(raw.size() / 2 + 16);
  std::size_t pos = 0;
  while (pos < raw.size()) {
    // Literal segment: up to the next zero run of at least kZrleMinRun.
    std::size_t lit_end = pos;
    std::size_t run_len = 0;
    while (lit_end < raw.size()) {
      if (raw[lit_end] == 0) {
        std::size_t run_end = lit_end;
        while (run_end < raw.size() && raw[run_end] == 0) ++run_end;
        run_len = run_end - lit_end;
        if (run_len >= kZrleMinRun || run_end == raw.size()) break;
        lit_end = run_end;  // short interior run stays literal
        run_len = 0;
        continue;
      }
      ++lit_end;
    }
    PutVarint(lit_end - pos, &out);
    out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(pos),
               raw.begin() + static_cast<std::ptrdiff_t>(lit_end));
    PutVarint(run_len, &out);
    pos = lit_end + run_len;
  }
  return out;
}

StatusOr<std::vector<std::uint8_t>> ZrleDecode(const std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t raw_len) {
  std::vector<std::uint8_t> out;
  out.reserve(raw_len);
  std::size_t pos = 0;
  while (pos < size) {
    std::uint64_t lit_len = 0;
    if (!GetVarint(data, size, &pos, &lit_len)) {
      return Status::InvalidArgument("zrle: truncated literal length");
    }
    if (lit_len > size - pos || out.size() + lit_len > raw_len) {
      return Status::InvalidArgument("zrle: literal overruns block");
    }
    out.insert(out.end(), data + pos, data + pos + lit_len);
    pos += static_cast<std::size_t>(lit_len);
    std::uint64_t run_len = 0;
    if (!GetVarint(data, size, &pos, &run_len)) {
      return Status::InvalidArgument("zrle: truncated run length");
    }
    if (out.size() + run_len > raw_len) {
      return Status::InvalidArgument("zrle: zero run overruns block");
    }
    out.resize(out.size() + static_cast<std::size_t>(run_len), 0);
  }
  if (out.size() != raw_len) {
    return Status::InvalidArgument("zrle: decoded length mismatch");
  }
  return out;
}

std::uint64_t Fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t Fnv1a64(const std::vector<std::uint8_t>& data) {
  return Fnv1a64(data.data(), data.size());
}

}  // namespace himpact
