#ifndef HIMPACT_STORAGE_CODEC_H_
#define HIMPACT_STORAGE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

/// \file
/// Block codec for segment files: zero-run-length encoding plus the
/// FNV-1a content hash used for block dedup.
///
/// Serialized sketch state is dominated by small counters stored in
/// fixed 64-bit little-endian slots, i.e. long runs of zero bytes
/// between low-order payload bytes. ZRLE exploits exactly that shape —
/// alternating groups of literal bytes and zero runs — with no tables,
/// no entropy coder, and no external dependency, so it stays
/// deterministic across platforms (a requirement for content-hash dedup
/// and byte-identical restore).
///
/// Encoded form: a sequence of groups, each
///
///   varint(literal_len) ++ literal bytes ++ varint(zero_run)
///
/// covering the input exactly (both lengths may be zero; varints are
/// LEB128). Decoding requires the expected raw length up front and
/// rejects encodings that do not reproduce it exactly.

namespace himpact {

/// ZRLE-compresses `raw`. Worst case (no zero run of length >=
/// `kZrleMinRun`) the output is `raw.size()` plus ~2 bytes per 127
/// literals of group framing.
std::vector<std::uint8_t> ZrleEncode(const std::vector<std::uint8_t>& raw);

/// Minimum zero-run length worth a group break (shorter runs are
/// cheaper as literals).
inline constexpr std::size_t kZrleMinRun = 4;

/// Decompresses exactly `raw_len` bytes from `data`. `kInvalidArgument`
/// when the encoding is truncated, overruns `raw_len`, or leaves
/// trailing bytes.
StatusOr<std::vector<std::uint8_t>> ZrleDecode(const std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t raw_len);

/// FNV-1a 64-bit hash (the segment/block content hash).
std::uint64_t Fnv1a64(const std::uint8_t* data, std::size_t size);
std::uint64_t Fnv1a64(const std::vector<std::uint8_t>& data);

}  // namespace himpact

#endif  // HIMPACT_STORAGE_CODEC_H_
