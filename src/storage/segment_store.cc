#include "storage/segment_store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "io/checkpoint.h"

namespace himpact {
namespace {

/// mkdir -p: creates every missing component of `dir`.
Status MakeDirs(const std::string& dir) {
  std::string partial;
  std::size_t start = 0;
  while (start <= dir.size()) {
    std::size_t slash = dir.find('/', start);
    if (slash == std::string::npos) slash = dir.size();
    partial = dir.substr(0, slash);
    if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      return Status::Internal("mkdir(" + partial +
                              "): " + std::strerror(errno));
    }
    start = slash + 1;
  }
  return Status::OK();
}

/// Parses "<prefix><gen>.seg" -> gen; false for foreign filenames.
bool ParseGeneration(const std::string& name, const std::string& prefix,
                     std::uint64_t* generation) {
  const std::string suffix = ".seg";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::uint64_t out = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *generation = out;
  return true;
}

}  // namespace

std::string SegmentStore::SegmentPath(std::uint64_t generation) const {
  return options_.dir + "/stripe-" + std::to_string(options_.stripe) +
         "-gen-" + std::to_string(generation) + ".seg";
}

StatusOr<std::unique_ptr<SegmentStore>> SegmentStore::Open(
    const SegmentStoreOptions& options) {
  Status made = MakeDirs(options.dir);
  if (!made.ok()) return made;
  auto store = std::unique_ptr<SegmentStore>(new SegmentStore());
  store->options_ = options;

  // Adopt existing generations in ascending order so later records win
  // the index.
  const std::string prefix =
      "stripe-" + std::to_string(options.stripe) + "-gen-";
  std::vector<std::uint64_t> generations;
  DIR* dir = ::opendir(options.dir.c_str());
  if (dir == nullptr) {
    return Status::Internal("opendir(" + options.dir +
                            "): " + std::strerror(errno));
  }
  while (const struct dirent* entry = ::readdir(dir)) {
    std::uint64_t generation = 0;
    if (ParseGeneration(entry->d_name, prefix, &generation)) {
      generations.push_back(generation);
    }
  }
  ::closedir(dir);
  std::sort(generations.begin(), generations.end());
  for (const std::uint64_t generation : generations) {
    StatusOr<SegmentReader> reader =
        SegmentReader::Open(store->SegmentPath(generation));
    if (!reader.ok()) {
      // A damaged generation costs its records (they degrade to frozen
      // floors), never the whole store.
      ++store->counters_.corrupt_segments;
      continue;
    }
    store->AdoptSegment(std::move(reader).value());
    store->next_generation_ = generation + 1;
  }
  return store;
}

void SegmentStore::AdoptSegment(SegmentReader reader) {
  const std::uint32_t segment = static_cast<std::uint32_t>(segments_.size());
  segment_bytes_ += reader.file_bytes();
  for (const SegmentRecord& record : reader.records()) {
    auto [it, inserted] = index_.try_emplace(record.id);
    // Newest generation wins; a superseded copy stays on disk as dead
    // space until a restore rebuilds the store (compaction fodder).
    if (!inserted) dead_record_bytes_ += it->second.len;
    it->second = Loc{segment, record.block, record.offset, record.len};
  }
  segments_.push_back(std::move(reader));
}

Status SegmentStore::Put(std::uint64_t id, std::vector<std::uint8_t> record) {
  ++counters_.appends;
  auto [it, inserted] = pending_.try_emplace(id);
  if (!inserted) pending_bytes_ -= it->second.size();
  pending_bytes_ += record.size();
  it->second = std::move(record);
  if (pending_bytes_ >= options_.seal_threshold_bytes) return Flush();
  return Status::OK();
}

Status SegmentStore::Flush() {
  if (pending_.empty()) return Status::OK();
  SegmentWriter writer(options_.stripe, next_generation_,
                       options_.block_bytes);
  for (const auto& [id, record] : pending_) {
    writer.Add(id, record);  // copies: a failed seal must keep pending intact
  }
  const std::string path = SegmentPath(next_generation_);
  Status written = WriteFileAtomic(path, writer.Seal());
  if (written.ok()) {
    StatusOr<SegmentReader> reader = SegmentReader::Open(path);
    if (reader.ok()) {
      AdoptSegment(std::move(reader).value());
      ++next_generation_;
      ++counters_.seals;
      pending_.clear();
      pending_bytes_ = 0;
      return Status::OK();
    }
    written = reader.status();
  }
  // The seal failed before the records became readable: they stay
  // pending and the next Put/Flush retries into the same generation.
  ++counters_.flush_failures;
  return written;
}

StatusOr<std::vector<std::uint8_t>> SegmentStore::Get(std::uint64_t id) {
  const auto pending = pending_.find(id);
  if (pending != pending_.end()) {
    ++counters_.cache_hits;
    return pending->second;
  }
  const auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::Unavailable("no segment record for this id");
  }
  const Loc& loc = it->second;
  StatusOr<const std::vector<std::uint8_t>*> block =
      CachedBlock(loc.segment, loc.block);
  if (!block.ok()) {
    ++counters_.page_in_failures;
    return block.status();
  }
  SegmentRecord record;
  record.id = id;
  record.block = loc.block;
  record.offset = loc.offset;
  record.len = loc.len;
  StatusOr<std::vector<std::uint8_t>> bytes =
      SegmentReader::Slice(record, *block.value());
  if (!bytes.ok()) ++counters_.page_in_failures;
  return bytes;
}

StatusOr<const std::vector<std::uint8_t>*> SegmentStore::CachedBlock(
    std::uint32_t segment, std::uint32_t block) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(segment) << 32) | block;
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->first == key) {
      cache_.splice(cache_.begin(), cache_, it);  // move to front (MRU)
      ++counters_.cache_hits;
      return &cache_.front().second;
    }
  }
  StatusOr<std::vector<std::uint8_t>> raw =
      segments_[segment].ReadBlock(block);
  if (!raw.ok()) return raw.status();
  ++counters_.page_ins;
  cache_.emplace_front(key, std::move(raw).value());
  while (cache_.size() > options_.block_cache_blocks) cache_.pop_back();
  return &cache_.front().second;
}

bool SegmentStore::Contains(std::uint64_t id) const {
  return pending_.count(id) > 0 || index_.count(id) > 0;
}

void SegmentStore::Forget(std::uint64_t id) {
  const auto pending = pending_.find(id);
  if (pending != pending_.end()) {
    pending_bytes_ -= pending->second.size();
    pending_.erase(pending);
  }
  const auto sealed = index_.find(id);
  if (sealed != index_.end()) {
    // The sealed copy is unreachable from here on (a re-demotion
    // re-Puts a fresh record), so its bytes are dead, not merely stale.
    dead_record_bytes_ += sealed->second.len;
    index_.erase(sealed);
  }
}

}  // namespace himpact
