#ifndef HIMPACT_STORAGE_DELTA_CHAIN_H_
#define HIMPACT_STORAGE_DELTA_CHAIN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/segment.h"

/// \file
/// Incremental checkpoint deltas chained back to a full save.
///
/// A full service checkpoint at `path` writes the usual per-stripe
/// envelopes (`path.stripe-<i>`) plus a head file (`path.head`, a
/// `kDeltaHead` envelope) pinning generation 0. Each incremental save
/// then writes one delta segment `path.delta-<g>` — a segment container
/// whose records are the sealed `kServiceStripe` envelopes of only the
/// stripes whose dirty epochs moved, plus one `kDeltaManifest` record
/// (id `kDeltaManifestRecordId`) mapping EVERY stripe to the generation
/// holding its current payload (0 = the full file) with its content
/// hash — and finally rewrites the head atomically to generation g.
///
/// Restore reads the head, opens the newest readable delta's manifest,
/// and loads each stripe from wherever the coverage map points; a
/// truncated or corrupt delta falls back generation by generation to
/// the last good chain (ultimately the full save), preserving the
/// `RestoreOrFallback` discipline. Because the head is written last and
/// atomically, a torn delta write (the `segment-torn-delta` fault)
/// leaves the previous chain untouched. See docs/CHECKPOINTS.md.

namespace himpact {

/// Record id carrying the manifest inside a delta segment (reserved —
/// stripe indices are far below it).
inline constexpr std::uint64_t kDeltaManifestRecordId = ~0ull;

/// The `stripe` field of a delta segment's header (deltas span stripes).
inline constexpr std::uint64_t kDeltaSegmentStripeId = ~0ull;

/// Where one stripe's current payload lives and what it hashes to.
struct DeltaStripeLoc {
  std::uint64_t generation = 0;  // 0 = path.stripe-<i>, else path.delta-<g>
  std::uint64_t payload_hash = 0;  // FNV-1a of the kServiceStripe payload
};

/// The coverage map embedded in every delta segment.
struct DeltaManifest {
  std::uint64_t generation = 0;
  std::uint64_t parent = 0;  // generation - 1 (0 parents the full save)
  std::uint64_t total_events = 0;
  std::vector<DeltaStripeLoc> stripes;
};

/// `path.delta-<generation>` / `path.head`.
std::string DeltaPath(const std::string& path, std::uint64_t generation);
std::string HeadPath(const std::string& path);

/// Serializes / parses the `kDeltaManifest` envelope payload.
std::vector<std::uint8_t> SerializeDeltaManifest(const DeltaManifest& m);
StatusOr<DeltaManifest> ParseDeltaManifest(
    const std::vector<std::uint8_t>& payload);

/// Writes the delta segment for `manifest.generation`: `stripe_records`
/// are (stripe index, sealed `kServiceStripe` envelope) pairs for the
/// dirty stripes only. The write is atomic — except under an armed
/// `segment-torn-delta` fault, which lands half the image at the final
/// path (a genuinely truncated delta) and reports `kInternal`.
Status WriteDeltaSegment(
    const std::string& path, const DeltaManifest& manifest,
    const std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>&
        stripe_records);

/// Opens a delta segment and extracts its manifest / a stripe's sealed
/// envelope bytes.
StatusOr<SegmentReader> OpenDeltaSegment(const std::string& path);
StatusOr<DeltaManifest> ReadDeltaManifest(const SegmentReader& reader);
StatusOr<std::vector<std::uint8_t>> ReadDeltaStripeEnvelope(
    const SegmentReader& reader, std::uint64_t stripe);

/// Atomically (re)writes / reads the head generation pointer.
Status WriteHead(const std::string& path, std::uint64_t generation);
StatusOr<std::uint64_t> ReadHead(const std::string& path);

}  // namespace himpact

#endif  // HIMPACT_STORAGE_DELTA_CHAIN_H_
