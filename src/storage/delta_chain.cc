#include "storage/delta_chain.h"

#include <cstdio>

#include "common/bytes.h"
#include "common/envelope.h"
#include "fault/fault.h"
#include "io/checkpoint.h"

namespace himpact {
namespace {

constexpr std::uint64_t kDeltaManifestMagic =
    0x31464D44504D4948ULL;  // HIMPDMF1
constexpr std::uint64_t kDeltaHeadMagic = 0x31444844504D4948ULL;  // HIMPDHD1

/// The torn write: half the image lands at the FINAL path (no tmp+rename),
/// leaving a genuinely truncated delta on disk, exactly the damage the
/// chain-restore fallback must absorb.
Status TearWrite(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file != nullptr) {
    std::fwrite(bytes.data(), 1, bytes.size() / 2, file);
    std::fclose(file);
  }
  return Status::Internal("injected segment-torn-delta on " + path);
}

}  // namespace

std::string DeltaPath(const std::string& path, std::uint64_t generation) {
  return path + ".delta-" + std::to_string(generation);
}

std::string HeadPath(const std::string& path) { return path + ".head"; }

std::vector<std::uint8_t> SerializeDeltaManifest(const DeltaManifest& m) {
  ByteWriter writer;
  writer.U64(kDeltaManifestMagic);
  writer.U64(m.generation);
  writer.U64(m.parent);
  writer.U64(m.total_events);
  writer.U64(m.stripes.size());
  for (const DeltaStripeLoc& loc : m.stripes) {
    writer.U64(loc.generation);
    writer.U64(loc.payload_hash);
  }
  return writer.Take();
}

StatusOr<DeltaManifest> ParseDeltaManifest(
    const std::vector<std::uint8_t>& payload) {
  ByteReader reader(payload);
  std::uint64_t magic = 0;
  if (!reader.U64(&magic) || magic != kDeltaManifestMagic) {
    return Status::InvalidArgument("not a delta manifest");
  }
  DeltaManifest m;
  std::uint64_t num_stripes = 0;
  if (!reader.U64(&m.generation) || !reader.U64(&m.parent) ||
      !reader.U64(&m.total_events) || !reader.U64(&num_stripes) ||
      num_stripes > reader.remaining() / 16) {
    return Status::InvalidArgument("truncated delta manifest");
  }
  m.stripes.resize(static_cast<std::size_t>(num_stripes));
  for (DeltaStripeLoc& loc : m.stripes) {
    if (!reader.U64(&loc.generation) || !reader.U64(&loc.payload_hash)) {
      return Status::InvalidArgument("truncated delta coverage map");
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("delta manifest has trailing bytes");
  }
  return m;
}

Status WriteDeltaSegment(
    const std::string& path, const DeltaManifest& manifest,
    const std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>&
        stripe_records) {
  SegmentWriter writer(kDeltaSegmentStripeId, manifest.generation);
  for (const auto& [stripe, envelope] : stripe_records) {
    writer.Add(stripe, envelope);
  }
  writer.Add(kDeltaManifestRecordId,
             SealEnvelope(CheckpointTag::kDeltaManifest,
                          SerializeDeltaManifest(manifest)));
  const std::vector<std::uint8_t> image = writer.Seal();
  if (FaultRegistry::Global().AnyArmed() &&
      FaultRegistry::Global().ShouldFire(FaultPoint::kSegmentTornDelta)) {
    return TearWrite(path, image);
  }
  return WriteFileAtomic(path, image);
}

StatusOr<SegmentReader> OpenDeltaSegment(const std::string& path) {
  StatusOr<SegmentReader> reader = SegmentReader::Open(path);
  if (!reader.ok()) return reader.status();
  if (reader.value().stripe() != kDeltaSegmentStripeId) {
    return Status::InvalidArgument(path + ": not a delta segment");
  }
  return reader;
}

StatusOr<DeltaManifest> ReadDeltaManifest(const SegmentReader& reader) {
  StatusOr<std::vector<std::uint8_t>> record =
      reader.ReadRecord(kDeltaManifestRecordId);
  if (!record.ok()) return record.status();
  StatusOr<std::vector<std::uint8_t>> payload =
      OpenEnvelope(record.value(), CheckpointTag::kDeltaManifest);
  if (!payload.ok()) return payload.status();
  return ParseDeltaManifest(payload.value());
}

StatusOr<std::vector<std::uint8_t>> ReadDeltaStripeEnvelope(
    const SegmentReader& reader, std::uint64_t stripe) {
  return reader.ReadRecord(stripe);
}

Status WriteHead(const std::string& path, std::uint64_t generation) {
  ByteWriter writer;
  writer.U64(kDeltaHeadMagic);
  writer.U64(generation);
  return WriteCheckpointFile(path, CheckpointTag::kDeltaHead,
                             writer.buffer());
}

StatusOr<std::uint64_t> ReadHead(const std::string& path) {
  StatusOr<std::vector<std::uint8_t>> payload =
      ReadCheckpointFile(path, CheckpointTag::kDeltaHead);
  if (!payload.ok()) return payload.status();
  ByteReader reader(payload.value());
  std::uint64_t magic = 0;
  std::uint64_t generation = 0;
  if (!reader.U64(&magic) || magic != kDeltaHeadMagic ||
      !reader.U64(&generation) || !reader.AtEnd()) {
    return Status::InvalidArgument("bad checkpoint head file");
  }
  return generation;
}

}  // namespace himpact
