#ifndef HIMPACT_STORAGE_SEGMENT_STORE_H_
#define HIMPACT_STORAGE_SEGMENT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/segment.h"

/// \file
/// Per-stripe out-of-core record store over sealed segment files.
///
/// One `SegmentStore` backs one registry stripe: demotions `Put` the
/// user's serialized state, cold gets `Get` it back. Records accumulate
/// in a RAM pending buffer until `seal_threshold_bytes`, then seal into
/// `stripe-<i>-gen-<g>.seg` (atomic write, then mmap'd read-only). The
/// in-RAM index maps id -> (segment, block, offset); a `Get` for a
/// sealed record decompresses one block, served through a small LRU
/// block cache. Reopening a directory rescans the generations, newest
/// record wins — so the cold tier survives restarts with no replay.
///
/// NOT thread-safe: the owning registry stripe calls every method under
/// its own stripe mutex, which is the store's required external lock.

namespace himpact {

/// Configuration for one stripe's store.
struct SegmentStoreOptions {
  /// Directory holding this store's segment files (shared across
  /// stripes; filenames carry the stripe index). Created if absent.
  std::string dir;
  /// The owning stripe's index (part of the filename and the segment
  /// header; `Open` only adopts matching files).
  std::uint64_t stripe = 0;
  /// Pending-buffer size that triggers a seal.
  std::size_t seal_threshold_bytes = 256u << 10;
  /// Raw block cut size inside sealed segments.
  std::size_t block_bytes = kSegmentBlockBytes;
  /// Decompressed blocks kept hot per store (LRU).
  std::size_t block_cache_blocks = 4;
};

/// Monotone per-store counters (runtime-only, surfaced via `health`).
struct SegmentStoreCounters {
  std::uint64_t appends = 0;
  std::uint64_t seals = 0;
  std::uint64_t page_ins = 0;    // block reads that went to a segment
  std::uint64_t cache_hits = 0;  // gets served from the block cache
  std::uint64_t page_in_failures = 0;
  std::uint64_t flush_failures = 0;
  std::uint64_t corrupt_segments = 0;  // skipped while reopening a dir
};

/// The store. Move via unique_ptr only (owns mmaps and an LRU).
class SegmentStore {
 public:
  /// Creates `options.dir` if needed and adopts every existing sealed
  /// generation for this stripe (a damaged segment is skipped and
  /// counted, not fatal — its records degrade to floors).
  static StatusOr<std::unique_ptr<SegmentStore>> Open(
      const SegmentStoreOptions& options);

  /// Buffers `record` for `id` (newest wins), sealing a segment when
  /// the pending buffer crosses the threshold. A failed seal keeps the
  /// records pending (retried by the next Put/Flush), so a Put never
  /// loses the record even when the disk misbehaves.
  Status Put(std::uint64_t id, std::vector<std::uint8_t> record);

  /// The newest record for `id`: from the pending buffer, else paged in
  /// from its segment block. `kUnavailable` when the id was never put
  /// (or its segment was skipped as corrupt), `kInternal` on page-in
  /// failure (including an armed `segment-map-fail`) — failures are
  /// counted and the caller degrades, never crashes.
  StatusOr<std::vector<std::uint8_t>> Get(std::uint64_t id);

  /// True iff `Get` would find a record.
  bool Contains(std::uint64_t id) const;

  /// Drops `id` from the pending buffer and the index (reactivation:
  /// the paged-in state lives in RAM again). On-disk bytes are
  /// reclaimed only by future generations superseding them.
  void Forget(std::uint64_t id);

  /// Seals the pending buffer (no-op when empty). Called by checkpoints
  /// so every segment-resident record a checkpoint references is
  /// durable.
  Status Flush();

  /// Records reachable through the index (sealed) plus pending ones.
  std::size_t num_records() const {
    return index_.size() + pending_.size();
  }
  std::size_t pending_records() const { return pending_.size(); }
  std::uint64_t segment_files() const { return segments_.size(); }
  std::uint64_t segment_bytes() const { return segment_bytes_; }

  /// Sealed record bytes no longer reachable through the index: a newer
  /// generation superseded the record (same id re-demoted after a
  /// page-in) or `Forget` dropped it. The space a compactor would
  /// reclaim; surfaced per-registry as `RegistryStats::
  /// segment_dead_bytes`. Payload bytes only — framing and block
  /// headers around dead records are not counted.
  std::uint64_t dead_record_bytes() const { return dead_record_bytes_; }

  const SegmentStoreCounters& counters() const { return counters_; }

 private:
  struct Loc {
    std::uint32_t segment = 0;  // index into segments_
    std::uint32_t block = 0;
    std::uint32_t offset = 0;
    std::uint32_t len = 0;
  };

  SegmentStore() = default;

  std::string SegmentPath(std::uint64_t generation) const;
  void AdoptSegment(SegmentReader reader);
  StatusOr<const std::vector<std::uint8_t>*> CachedBlock(
      std::uint32_t segment, std::uint32_t block);

  SegmentStoreOptions options_;
  std::uint64_t next_generation_ = 1;
  std::vector<SegmentReader> segments_;
  std::uint64_t segment_bytes_ = 0;
  std::unordered_map<std::uint64_t, Loc> index_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pending_;
  std::size_t pending_bytes_ = 0;
  std::uint64_t dead_record_bytes_ = 0;
  /// LRU of decompressed blocks, keyed by (segment << 32 | block).
  std::list<std::pair<std::uint64_t, std::vector<std::uint8_t>>> cache_;
  SegmentStoreCounters counters_;
};

}  // namespace himpact

#endif  // HIMPACT_STORAGE_SEGMENT_STORE_H_
