#ifndef HIMPACT_STORAGE_SEGMENT_H_
#define HIMPACT_STORAGE_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/mmap_file.h"

/// \file
/// Sealed, compressed, mmap-backed segment files.
///
/// A segment is an immutable container of keyed records — evicted users'
/// envelope-framed state in the registry's cold tier, per-stripe
/// checkpoint envelopes in incremental-delta files. Records are packed
/// into ZRLE-compressed blocks so a `get` decompresses one block, not
/// the file; the record and block tables live at the tail and are small
/// enough to keep in RAM, which is what makes the in-memory
/// id -> (block, offset) index cheap.
///
/// On-disk layout (all integers little-endian):
///
///   header   48B  magic, version, stripe, generation, counts
///   blocks        concatenated ZRLE-compressed blocks
///   records  20B/record   id u64, block u32, offset u32, len u32
///   blocks   32B/block    data_offset u64, comp_len u32, raw_len u32,
///                         content_hash u64 (FNV-1a of raw bytes),
///                         crc32 u32 (of compressed bytes), reserved u32
///   footer   16B  crc32 u32 (header ++ record table ++ block table),
///                 footer magic u32, total_len u64
///
/// Truncation is caught by `total_len`, table corruption by the footer
/// CRC, block corruption lazily by the per-block CRC on first page-in —
/// so opening a large segment validates only its tables. Identical raw
/// blocks within one file are written once and referenced twice
/// (content-hash dedup; the block table may alias data ranges).
/// See docs/CHECKPOINTS.md for the compatibility rules.

namespace himpact {

/// Default block cut size (raw bytes) for segment writers.
inline constexpr std::size_t kSegmentBlockBytes = 64u << 10;

/// One record-table entry.
struct SegmentRecord {
  std::uint64_t id = 0;
  std::uint32_t block = 0;
  std::uint32_t offset = 0;
  std::uint32_t len = 0;
};

/// One block-table entry.
struct SegmentBlockMeta {
  std::uint64_t data_offset = 0;
  std::uint32_t comp_len = 0;
  std::uint32_t raw_len = 0;
  std::uint64_t content_hash = 0;
  std::uint32_t crc32 = 0;
};

/// Accumulates keyed records and seals them into a segment image.
/// Adding the same id twice keeps the later record. One-shot: `Seal`
/// consumes the writer.
class SegmentWriter {
 public:
  SegmentWriter(std::uint64_t stripe, std::uint64_t generation,
                std::size_t block_bytes = kSegmentBlockBytes);

  /// Buffers one record (moved).
  void Add(std::uint64_t id, std::vector<std::uint8_t> record);

  bool empty() const { return records_.empty(); }
  std::size_t num_records() const { return records_.size(); }
  std::size_t pending_bytes() const { return pending_bytes_; }

  /// Builds the segment file image: packs records into blocks in id
  /// order, compresses, dedups identical raw blocks, appends tables and
  /// footer.
  std::vector<std::uint8_t> Seal();

 private:
  std::uint64_t stripe_;
  std::uint64_t generation_;
  std::size_t block_bytes_;
  std::map<std::uint64_t, std::vector<std::uint8_t>> records_;
  std::size_t pending_bytes_ = 0;
};

/// Read access to a sealed segment, mmap-backed (`Open`) or over an
/// owned buffer (`FromBytes`). Validates header, footer, and tables up
/// front; block payloads are CRC-checked lazily on `ReadBlock`.
class SegmentReader {
 public:
  /// Maps and validates `path`. `kUnavailable` when missing,
  /// `kInvalidArgument` on any structural damage, `kInternal` on mmap
  /// failure (including an armed `segment-map-fail`).
  static StatusOr<SegmentReader> Open(const std::string& path);

  /// Validates an in-memory segment image (tests, small deltas).
  static StatusOr<SegmentReader> FromBytes(std::vector<std::uint8_t> bytes);

  std::uint64_t stripe() const { return stripe_; }
  std::uint64_t generation() const { return generation_; }
  std::uint64_t file_bytes() const { return size_; }
  const std::vector<SegmentRecord>& records() const { return records_; }
  const std::vector<SegmentBlockMeta>& blocks() const { return blocks_; }

  /// Record-table entry for `id` (binary search), nullptr when absent.
  const SegmentRecord* Find(std::uint64_t id) const;

  /// Decompresses block `index` after verifying its CRC. The
  /// `segment-map-fail` fault point probes here (the page-in path).
  StatusOr<std::vector<std::uint8_t>> ReadBlock(std::size_t index) const;

  /// `Find` + `ReadBlock` + slice: the record's bytes, or
  /// `kUnavailable` when the id is not present.
  StatusOr<std::vector<std::uint8_t>> ReadRecord(std::uint64_t id) const;

  /// Slices `record` out of its decompressed block (callers that cache
  /// blocks use this to skip the re-read).
  static StatusOr<std::vector<std::uint8_t>> Slice(
      const SegmentRecord& record, const std::vector<std::uint8_t>& raw_block);

 private:
  Status Parse();
  const std::uint8_t* data() const {
    return map_.valid() ? map_.data() : owned_.data();
  }

  MmapFile map_;
  std::vector<std::uint8_t> owned_;
  std::size_t size_ = 0;
  std::uint64_t stripe_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<SegmentRecord> records_;
  std::vector<SegmentBlockMeta> blocks_;
};

}  // namespace himpact

#endif  // HIMPACT_STORAGE_SEGMENT_H_
