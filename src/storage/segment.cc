#include "storage/segment.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/bytes.h"
#include "common/envelope.h"
#include "fault/fault.h"
#include "storage/codec.h"

namespace himpact {
namespace {

constexpr std::uint64_t kSegmentMagic = 0x31474553504D4948ULL;  // HIMPSEG1
constexpr std::uint32_t kSegmentVersion = 1;
constexpr std::uint32_t kSegmentFooterMagic = 0x31474553u;  // SEG1
constexpr std::size_t kHeaderBytes = 48;
constexpr std::size_t kRecordEntryBytes = 20;
constexpr std::size_t kBlockEntryBytes = 32;
constexpr std::size_t kFooterBytes = 16;

std::uint32_t ReadU32(const std::uint8_t* p) {
  std::uint32_t out = 0;
  for (int b = 0; b < 4; ++b) out |= static_cast<std::uint32_t>(p[b]) << (8 * b);
  return out;
}

std::uint64_t ReadU64(const std::uint8_t* p) {
  std::uint64_t out = 0;
  for (int b = 0; b < 8; ++b) out |= static_cast<std::uint64_t>(p[b]) << (8 * b);
  return out;
}

}  // namespace

SegmentWriter::SegmentWriter(std::uint64_t stripe, std::uint64_t generation,
                             std::size_t block_bytes)
    : stripe_(stripe),
      generation_(generation),
      block_bytes_(block_bytes == 0 ? kSegmentBlockBytes : block_bytes) {}

void SegmentWriter::Add(std::uint64_t id, std::vector<std::uint8_t> record) {
  auto [it, inserted] = records_.try_emplace(id);
  if (!inserted) pending_bytes_ -= it->second.size();
  pending_bytes_ += record.size();
  it->second = std::move(record);
}

std::vector<std::uint8_t> SegmentWriter::Seal() {
  // Pack records (already in id order — std::map) into raw blocks.
  std::vector<std::vector<std::uint8_t>> raw_blocks;
  std::vector<SegmentRecord> records;
  records.reserve(records_.size());
  for (auto& [id, bytes] : records_) {
    if (raw_blocks.empty() ||
        (!raw_blocks.back().empty() &&
         raw_blocks.back().size() + bytes.size() > block_bytes_)) {
      raw_blocks.emplace_back();
    }
    std::vector<std::uint8_t>& block = raw_blocks.back();
    SegmentRecord record;
    record.id = id;
    record.block = static_cast<std::uint32_t>(raw_blocks.size() - 1);
    record.offset = static_cast<std::uint32_t>(block.size());
    record.len = static_cast<std::uint32_t>(bytes.size());
    records.push_back(record);
    block.insert(block.end(), bytes.begin(), bytes.end());
  }
  records_.clear();
  pending_bytes_ = 0;

  ByteWriter out;
  out.U64(kSegmentMagic);
  out.U32(kSegmentVersion);
  out.U32(0);  // reserved
  out.U64(stripe_);
  out.U64(generation_);
  out.U64(records.size());
  out.U64(raw_blocks.size());

  // Compress each raw block; identical raw blocks (content hash, then a
  // byte compare to rule out collisions) alias the first copy's data.
  std::vector<SegmentBlockMeta> metas(raw_blocks.size());
  std::unordered_map<std::uint64_t, std::size_t> first_by_hash;
  for (std::size_t b = 0; b < raw_blocks.size(); ++b) {
    SegmentBlockMeta& meta = metas[b];
    meta.raw_len = static_cast<std::uint32_t>(raw_blocks[b].size());
    meta.content_hash = Fnv1a64(raw_blocks[b]);
    const auto seen = first_by_hash.find(meta.content_hash);
    if (seen != first_by_hash.end() &&
        raw_blocks[seen->second] == raw_blocks[b]) {
      const SegmentBlockMeta& prior = metas[seen->second];
      meta.data_offset = prior.data_offset;
      meta.comp_len = prior.comp_len;
      meta.crc32 = prior.crc32;
      continue;
    }
    first_by_hash.emplace(meta.content_hash, b);
    const std::vector<std::uint8_t> comp = ZrleEncode(raw_blocks[b]);
    meta.data_offset = out.buffer().size();
    meta.comp_len = static_cast<std::uint32_t>(comp.size());
    meta.crc32 = Crc32(comp);
    out.Bytes(comp.data(), comp.size());
  }

  // Tables, then a footer whose CRC covers header + tables (blocks carry
  // their own CRCs, verified lazily on page-in).
  ByteWriter tables;
  for (const SegmentRecord& record : records) {
    tables.U64(record.id);
    tables.U32(record.block);
    tables.U32(record.offset);
    tables.U32(record.len);
  }
  for (const SegmentBlockMeta& meta : metas) {
    tables.U64(meta.data_offset);
    tables.U32(meta.comp_len);
    tables.U32(meta.raw_len);
    tables.U64(meta.content_hash);
    tables.U32(meta.crc32);
    tables.U32(0);  // reserved
  }
  ByteWriter covered;
  covered.Bytes(out.buffer().data(), kHeaderBytes);
  covered.Bytes(tables.buffer().data(), tables.buffer().size());
  out.Bytes(tables.buffer().data(), tables.buffer().size());
  out.U32(Crc32(covered.buffer()));
  out.U32(kSegmentFooterMagic);
  out.U64(out.buffer().size() + 8);  // total_len including this field
  return out.Take();
}

StatusOr<SegmentReader> SegmentReader::Open(const std::string& path) {
  StatusOr<MmapFile> map = MmapFile::Open(path);
  if (!map.ok()) return map.status();
  SegmentReader reader;
  reader.map_ = std::move(map).value();
  reader.size_ = reader.map_.size();
  Status parsed = reader.Parse();
  if (!parsed.ok()) {
    return Status(parsed.code(), path + ": " + parsed.message());
  }
  return reader;
}

StatusOr<SegmentReader> SegmentReader::FromBytes(
    std::vector<std::uint8_t> bytes) {
  SegmentReader reader;
  reader.owned_ = std::move(bytes);
  reader.size_ = reader.owned_.size();
  Status parsed = reader.Parse();
  if (!parsed.ok()) return parsed;
  return reader;
}

Status SegmentReader::Parse() {
  const std::uint8_t* p = data();
  if (size_ < kHeaderBytes + kFooterBytes) {
    return Status::InvalidArgument("segment shorter than header + footer");
  }
  const std::uint8_t* footer = p + size_ - kFooterBytes;
  if (ReadU32(footer + 4) != kSegmentFooterMagic) {
    return Status::InvalidArgument("bad segment footer magic");
  }
  if (ReadU64(footer + 8) != size_) {
    return Status::InvalidArgument("segment truncated (total_len mismatch)");
  }
  if (ReadU64(p) != kSegmentMagic) {
    return Status::InvalidArgument("bad segment magic");
  }
  if (ReadU32(p + 8) != kSegmentVersion) {
    return Status::InvalidArgument("unknown segment version");
  }
  stripe_ = ReadU64(p + 16);
  generation_ = ReadU64(p + 24);
  const std::uint64_t num_records = ReadU64(p + 32);
  const std::uint64_t num_blocks = ReadU64(p + 40);
  const std::uint64_t tables_bytes =
      num_records * kRecordEntryBytes + num_blocks * kBlockEntryBytes;
  if (num_records > size_ / kRecordEntryBytes ||
      num_blocks > size_ / kBlockEntryBytes ||
      kHeaderBytes + tables_bytes + kFooterBytes > size_) {
    return Status::InvalidArgument("segment tables overrun the file");
  }
  const std::size_t tables_offset =
      size_ - kFooterBytes - static_cast<std::size_t>(tables_bytes);

  std::vector<std::uint8_t> covered(p, p + kHeaderBytes);
  covered.insert(covered.end(), p + tables_offset, p + size_ - kFooterBytes);
  if (Crc32(covered) != ReadU32(footer)) {
    return Status::InvalidArgument("segment table CRC mismatch");
  }

  const std::uint8_t* cursor = p + tables_offset;
  blocks_.resize(static_cast<std::size_t>(num_blocks));
  records_.resize(static_cast<std::size_t>(num_records));
  for (SegmentRecord& record : records_) {
    record.id = ReadU64(cursor);
    record.block = ReadU32(cursor + 8);
    record.offset = ReadU32(cursor + 12);
    record.len = ReadU32(cursor + 16);
    cursor += kRecordEntryBytes;
  }
  for (SegmentBlockMeta& meta : blocks_) {
    meta.data_offset = ReadU64(cursor);
    meta.comp_len = ReadU32(cursor + 8);
    meta.raw_len = ReadU32(cursor + 12);
    meta.content_hash = ReadU64(cursor + 16);
    meta.crc32 = ReadU32(cursor + 24);
    cursor += kBlockEntryBytes;
    if (meta.data_offset < kHeaderBytes ||
        meta.data_offset + meta.comp_len > tables_offset) {
      return Status::InvalidArgument("segment block overruns the data region");
    }
  }
  for (std::size_t r = 0; r < records_.size(); ++r) {
    const SegmentRecord& record = records_[r];
    if (r > 0 && records_[r - 1].id >= record.id) {
      return Status::InvalidArgument("segment record table not sorted");
    }
    if (record.block >= blocks_.size() ||
        static_cast<std::uint64_t>(record.offset) + record.len >
            blocks_[record.block].raw_len) {
      return Status::InvalidArgument("segment record overruns its block");
    }
  }
  return Status::OK();
}

const SegmentRecord* SegmentReader::Find(std::uint64_t id) const {
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), id,
      [](const SegmentRecord& record, std::uint64_t key) {
        return record.id < key;
      });
  if (it == records_.end() || it->id != id) return nullptr;
  return &*it;
}

StatusOr<std::vector<std::uint8_t>> SegmentReader::ReadBlock(
    std::size_t index) const {
  if (index >= blocks_.size()) {
    return Status::InvalidArgument("segment block index out of range");
  }
  // The page-in probe: an armed `segment-map-fail` models the mapped
  // page being unreadable (I/O error surfacing through the mapping).
  if (FaultRegistry::Global().AnyArmed() &&
      FaultRegistry::Global().ShouldFire(FaultPoint::kSegmentMapFail)) {
    return Status::Internal("injected segment-map-fail on block read");
  }
  const SegmentBlockMeta& meta = blocks_[index];
  const std::uint8_t* comp = data() + meta.data_offset;
  if (Crc32(comp, meta.comp_len) != meta.crc32) {
    return Status::InvalidArgument("segment block CRC mismatch");
  }
  return ZrleDecode(comp, meta.comp_len, meta.raw_len);
}

StatusOr<std::vector<std::uint8_t>> SegmentReader::Slice(
    const SegmentRecord& record, const std::vector<std::uint8_t>& raw_block) {
  if (static_cast<std::size_t>(record.offset) + record.len >
      raw_block.size()) {
    return Status::InvalidArgument("segment record overruns its block");
  }
  return std::vector<std::uint8_t>(
      raw_block.begin() + record.offset,
      raw_block.begin() + record.offset + record.len);
}

StatusOr<std::vector<std::uint8_t>> SegmentReader::ReadRecord(
    std::uint64_t id) const {
  const SegmentRecord* record = Find(id);
  if (record == nullptr) {
    return Status::Unavailable("record not in segment");
  }
  StatusOr<std::vector<std::uint8_t>> block = ReadBlock(record->block);
  if (!block.ok()) return block.status();
  return Slice(*record, block.value());
}

}  // namespace himpact
