#!/bin/sh
# Markdown link checker: verifies that every relative link and every
# file path mentioned in backticks across the repo's documentation
# resolves to a real file, so README/DESIGN/docs cross-links cannot rot.
#
# Usage: tools/check_docs_links.sh [repo-root]
# Exit status: 0 when every reference resolves, 1 otherwise (each
# broken reference is printed as "<doc>: <target>").
#
# Two kinds of references are checked:
#   1. Markdown inline links `[text](target)` whose target is relative
#      (external http(s)/mailto links and pure #anchors are skipped).
#   2. Backticked repo paths like `docs/CHECKPOINTS.md` or
#      `src/engine/sharded_engine.h` — the dominant cross-reference
#      style in this repo's prose (paths containing a `/` and ending in
#      a known source/doc extension).

set -u

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
cd "$root" || exit 1

docs=$(find . -path ./build -prune -o -name '*.md' -print | sort)
status=0

check() {
  # $1 = referencing doc, $2 = target path (relative to repo root or doc)
  doc="$1"; target="$2"
  case "$target" in
    http://*|https://*|mailto:*|\#*) return 0 ;;
  esac
  # Strip an anchor suffix, if any.
  file="${target%%#*}"
  [ -n "$file" ] || return 0
  docdir=$(dirname -- "$doc")
  # Resolve against the repo root, the referencing doc's directory, and
  # the include root (prose cites headers as `core/exact.h`, the path
  # used in #include directives).
  if [ -e "$file" ] || [ -e "$docdir/$file" ] || [ -e "src/$file" ]; then
    return 0
  fi
  printf '%s: %s\n' "$doc" "$target"
  status=1
}

for doc in $docs; do
  # 1. Inline markdown links [text](target).
  for target in $(grep -o '\[[^][]*\]([^()[:space:]]*)' "$doc" 2>/dev/null |
                  sed 's/.*](\([^)]*\))/\1/'); do
    check "$doc" "$target"
  done
  # 2. Backticked repo paths with a directory component and a source or
  #    markdown extension.
  for target in $(grep -o '`[A-Za-z0-9_./-]*`' "$doc" 2>/dev/null |
                  tr -d '`' |
                  grep '/' |
                  grep -E '\.(md|h|cc|cpp|sh|txt)$' |
                  sort -u); do
    check "$doc" "$target"
  done
done

if [ "$status" -eq 0 ]; then
  echo "check_docs_links: all documentation references resolve"
fi
exit "$status"
