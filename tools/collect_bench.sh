#!/usr/bin/env bash
# Runs every BENCH-emitting experiment binary and aggregates their json
# lines into one machine-readable report, stamped with the git revision
# the numbers were measured at.
#
#   tools/collect_bench.sh                      # full run -> BENCH_PR10.json
#   tools/collect_bench.sh --quick              # CI sizing, same schema
#   tools/collect_bench.sh --build-dir build-x --output /tmp/bench.json
#
# BENCH emitters (each prints lines of the form `BENCH{...json...}`):
#   bench_f2_throughput   sharded ingestion-engine sweep + batch-size sweep
#   bench_a5_checkpoint_sizes   checkpoint envelope sizes
#   bench_f4_service_qps  multi-tenant service closed-loop load harness
#   bench_f5_overload     overload ramp (shed rate, p99) + stall recovery
#   bench_f6_hotpath      batch-vs-scalar speedups + merge-cache latency
#   bench_f7_net_load     TCP front-end connection sweep (qps, p99, shed)
#   bench_f8_wire         text-vs-binary wire framing (docs/PROTOCOL.md)
#   bench_f9_coldtier     paged cold tier page-in latency + delta sizing
#   bench_f10_durability  WAL fsync-policy qps/p99 + replay throughput
#   bench_f11_scaling     shard scaling curves + skew-rebalancing win
#
# The aggregate is a single json object: {"git_sha", "quick", "host",
# "results"} where results is the array of BENCH payloads in emission
# order and host records the capabilities the numbers were measured
# under (cores, ISA level, whether the build was -march=native) — the
# fields needed to tell a scaling result from an oversubscription
# artifact. A ctest registration (`collect_bench_quick`) runs the
# --quick variant so the pipeline breaks loudly if a bench stops
# emitting parseable lines.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
output="${repo_root}/BENCH_PR10.json"
quick=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --output) output="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,24p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

# Every emitter is checked up front and ALL absentees are listed before
# the nonzero exit — a partial build should fail with the full shopping
# list, not one binary per rerun.
bench_dir="${build_dir}/bench"
missing=()
for binary in bench_f2_throughput bench_a5_checkpoint_sizes \
              bench_f4_service_qps bench_f5_overload bench_f6_hotpath \
              bench_f7_net_load bench_f8_wire bench_f9_coldtier \
              bench_f10_durability bench_f11_scaling; do
  if [[ ! -x "${bench_dir}/${binary}" ]]; then
    missing+=("${bench_dir}/${binary}")
  fi
done
if [[ ${#missing[@]} -gt 0 ]]; then
  echo "missing ${#missing[@]} bench emitter(s); build the repo first:" >&2
  printf '  %s\n' "${missing[@]}" >&2
  exit 1
fi

# Flag sets: --quick shrinks the work, never the schema.
if [[ "${quick}" -eq 1 ]]; then
  f2_flags=(--shards 2)
  f4_flags=(--users 10000 --ops 50000 --threads 2)
  f5_flags=(--stage-ms 100 --stall-ms 100 --recovery-ms 500)
  f6_flags=(--quick)
  f7_flags=(--quick)
  f8_flags=(--quick)
  f9_flags=(--quick)
  f10_flags=(--quick)
  f11_flags=(--quick)
else
  f2_flags=()
  f4_flags=()
  f5_flags=()
  f6_flags=()
  f7_flags=()
  f8_flags=()
  f9_flags=()
  f10_flags=()
  f11_flags=()
fi

lines_file="$(mktemp)"
trap 'rm -f "${lines_file}"' EXIT

run_bench() {
  # Keep only the BENCH lines; everything else (google-benchmark tables,
  # progress chatter) goes to stderr so interactive runs stay readable.
  "$@" | tee /dev/stderr | grep '^BENCH{' >> "${lines_file}" || {
    echo "$1 emitted no BENCH lines" >&2
    exit 1
  }
}

# --benchmark_filter that matches nothing: only the sweep's BENCH lines.
run_bench "${bench_dir}/bench_f2_throughput" \
    --benchmark_filter='^$' "${f2_flags[@]+"${f2_flags[@]}"}"
run_bench "${bench_dir}/bench_a5_checkpoint_sizes"
run_bench "${bench_dir}/bench_f4_service_qps" \
    "${f4_flags[@]+"${f4_flags[@]}"}"
run_bench "${bench_dir}/bench_f5_overload" \
    "${f5_flags[@]+"${f5_flags[@]}"}"
run_bench "${bench_dir}/bench_f6_hotpath" \
    "${f6_flags[@]+"${f6_flags[@]}"}"
run_bench "${bench_dir}/bench_f7_net_load" \
    "${f7_flags[@]+"${f7_flags[@]}"}"
run_bench "${bench_dir}/bench_f8_wire" \
    "${f8_flags[@]+"${f8_flags[@]}"}"
run_bench "${bench_dir}/bench_f9_coldtier" \
    "${f9_flags[@]+"${f9_flags[@]}"}"
run_bench "${bench_dir}/bench_f10_durability" \
    "${f10_flags[@]+"${f10_flags[@]}"}"
run_bench "${bench_dir}/bench_f11_scaling" \
    "${f11_flags[@]+"${f11_flags[@]}"}"

# HEAD sha, with a -dirty suffix when the numbers were measured from an
# uncommitted tree (the honest stamp for a pre-commit run).
git_sha="$(git -C "${repo_root}" rev-parse HEAD 2>/dev/null || echo unknown)"
if ! git -C "${repo_root}" diff --quiet HEAD 2>/dev/null; then
  git_sha="${git_sha}-dirty"
fi

# Host capability stamp: every number in this file was measured under
# these cores / this ISA / this build tuning, and a curve collected on
# 1 core reads very differently from the same curve on 16.
cores="$(nproc 2>/dev/null || echo 1)"
simd=scalar
if grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
  simd=avx2
fi
native=false
if grep -q '^HIMPACT_NATIVE:BOOL=ON$' "${build_dir}/CMakeCache.txt" \
    2>/dev/null; then
  native=true
fi

{
  printf '{\n'
  printf '  "git_sha": "%s",\n' "${git_sha}"
  printf '  "quick": %s,\n' "$([[ ${quick} -eq 1 ]] && echo true || echo false)"
  printf '  "host": {"hardware_concurrency": %s, "simd": "%s", "himpact_native": %s},\n' \
      "${cores}" "${simd}" "${native}"
  printf '  "results": [\n'
  # Strip the BENCH prefix and join the payloads with commas.
  sed -e 's/^BENCH//' -e 's/^/    /' "${lines_file}" | sed '$!s/$/,/'
  printf '  ]\n'
  printf '}\n'
} > "${output}"

count="$(wc -l < "${lines_file}")"
echo "wrote ${output} (${count} results @ ${git_sha})"
