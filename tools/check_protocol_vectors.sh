#!/usr/bin/env bash
# check_protocol_vectors.sh — compiler-free sanity pass over the test
# vectors in docs/PROTOCOL.md, for the docs CI job (which has no C++
# toolchain). The full semantic assertion — vectors round-tripped
# through the real codec — is the docs_vectors_test ctest; this script
# catches the editing mistakes that don't need a codec to detect:
#
#   * malformed vector lines (wrong arity, missing '->')
#   * hex that is not lowercase, even-length hex
#   * request/reply/bad frames whose magic byte is wrong for their kind
#   * version bytes other than 01 (except vectors documenting the
#     bad-version rejection itself)
#   * a declared u32 LE payload length that disagrees with the actual
#     payload byte count (except vectors documenting that rejection)
#
# Usage: check_protocol_vectors.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
spec="$root/docs/PROTOCOL.md"
fail=0

err() {
  echo "$spec:$1: $2" >&2
  fail=1
}

if [[ ! -f "$spec" ]]; then
  echo "missing $spec" >&2
  exit 1
fi

count_request=0
count_reply=0
count_bad=0
lineno=0
while IFS= read -r line; do
  lineno=$((lineno + 1))
  # Vector lines are indented code lines beginning with "vector".
  [[ "$line" =~ ^[[:space:]]*vector[[:space:]] ]] || continue
  # shellcheck disable=SC2086
  set -- $line
  if [[ $# -lt 4 || "$4" != "->" ]]; then
    err "$lineno" "malformed vector line (want: vector <kind> <hex> -> <text>)"
    continue
  fi
  kind="$2"
  hex="$3"
  case "$kind" in
    request) count_request=$((count_request + 1)) ;;
    reply) count_reply=$((count_reply + 1)) ;;
    bad) count_bad=$((count_bad + 1)) ;;
    *)
      err "$lineno" "unknown vector kind '$kind'"
      continue
      ;;
  esac
  if [[ ! "$hex" =~ ^[0-9a-f]+$ ]]; then
    err "$lineno" "hex must be lowercase [0-9a-f]: '$hex'"
    continue
  fi
  if (((${#hex} % 2) != 0)); then
    err "$lineno" "odd-length hex: '$hex'"
    continue
  fi
  nbytes=$((${#hex} / 2))
  magic="${hex:0:2}"
  case "$kind" in
    request)
      [[ "$magic" == "b1" ]] || err "$lineno" "request magic must be b1, got $magic"
      ;;
    reply)
      [[ "$magic" == "b2" ]] || err "$lineno" "reply magic must be b2, got $magic"
      ;;
    bad)
      # Bad vectors may document a bad magic; nothing to check.
      ;;
  esac
  # Prelude checks only apply once the prelude is complete; truncated
  # preludes are legitimate bad vectors.
  ((nbytes >= 6)) || continue
  version="${hex:2:2}"
  if [[ "$kind" != "bad" && "$version" != "01" ]]; then
    err "$lineno" "version byte must be 01, got $version"
  fi
  # u32 LE declared payload length vs actual payload bytes.
  declared=$((16#${hex:10:2} * 16777216 + 16#${hex:8:2} * 65536 \
              + 16#${hex:6:2} * 256 + 16#${hex:4:2}))
  actual=$((nbytes - 6))
  if [[ "$kind" != "bad" && "$declared" -ne "$actual" ]]; then
    err "$lineno" "declared payload length $declared != actual $actual bytes"
  fi
done < "$spec"

if ((count_request == 0 || count_reply == 0 || count_bad == 0)); then
  echo "$spec: vector set incomplete" \
       "(request=$count_request reply=$count_reply bad=$count_bad)" >&2
  fail=1
fi

if ((fail == 0)); then
  echo "protocol vectors OK" \
       "(request=$count_request reply=$count_reply bad=$count_bad)"
fi
exit "$fail"
