#!/usr/bin/env bash
# Compares quick runs of the perf-sensitive benches against the newest
# committed baseline (highest-numbered BENCH_*.json in the repo root,
# overridable with --baseline) and reports per-metric drift.
#
#   tools/check_bench_regression.sh                  # warn-only (exit 0)
#   tools/check_bench_regression.sh --strict         # regressions fail
#   tools/check_bench_regression.sh --build-dir build-x --baseline b.json
#   tools/check_bench_regression.sh --tolerance 0.5  # 50% slack
#
# Gate table (one row per checked metric family):
#   f6_batch_vs_scalar  per-sketch batch speedup       lower  = regression
#   f6_merge_cache      per-layer cold/warm ratio      lower  = regression
#   f7_net_load         per-point client shed rate     higher = regression
#   f8_wire_speedup     framing binary-vs-text ratio   lower  = regression,
#                       plus an absolute floor: framing mode must stay
#                       >= 1.5x regardless of what the baseline says
#   f10_replay          WAL replay events/s            lower  = regression
#                       (non-gating even under --strict: replay speed is
#                       a recovery-time tripwire, not a serving-path SLO,
#                       and the bench is skipped when not built)
#   f11_shard_scaling   per-shard-count apply ns/event higher = regression
#                       (non-gating even under --strict: the counter is
#                       wall time inside ApplyBatch, so on a host with
#                       fewer cores than shards it absorbs preemption
#                       and only large, repeated moves mean anything;
#                       the bench is skipped when not built)
#
# Quick runs are noisy and CI machines differ, so the default mode only
# warns: a regression prints a WARN line per metric and the script still
# exits 0. `--strict` turns any WARN into exit 1 for local perf work.
# A missing baseline or bench binary exits 77 (the ctest SKIP code) so
# fresh checkouts and partial builds skip instead of failing. Metrics
# whose family is absent from the baseline (older aggregates) are
# skipped individually; the f8 absolute floor always applies.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
baseline=""
tolerance=0.4
strict=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --strict) strict=1; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --baseline) baseline="$2"; shift 2 ;;
    --tolerance) tolerance="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,25p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

# Default baseline: the newest committed aggregate, so a PR that lands a
# fresh BENCH_PRn.json is measured against it automatically instead of a
# hard-coded (and silently aging) predecessor.
if [[ -z "${baseline}" ]]; then
  baseline="$(ls "${repo_root}"/BENCH_*.json 2>/dev/null | sort -V | tail -n 1 || true)"
  if [[ -z "${baseline}" ]]; then
    echo "SKIP: no BENCH_*.json baseline in ${repo_root}" >&2
    exit 77
  fi
fi

for binary in bench_f6_hotpath bench_f7_net_load bench_f8_wire; do
  if [[ ! -x "${build_dir}/bench/${binary}" ]]; then
    echo "SKIP: ${build_dir}/bench/${binary} not built" >&2
    exit 77
  fi
done
if [[ ! -f "${baseline}" ]]; then
  echo "SKIP: baseline ${baseline} not found" >&2
  exit 77
fi
echo "baseline: ${baseline}"

current="$(mktemp)"
trap 'rm -f "${current}"' EXIT
"${build_dir}/bench/bench_f6_hotpath" --quick | grep '^BENCH{' > "${current}"
"${build_dir}/bench/bench_f7_net_load" --quick | grep '^BENCH{' >> "${current}"
"${build_dir}/bench/bench_f8_wire" --quick | grep '^BENCH{' >> "${current}"
# The durability and scaling benches are optional (older checkouts):
# their rows are informational and never block.
if [[ -x "${build_dir}/bench/bench_f10_durability" ]]; then
  "${build_dir}/bench/bench_f10_durability" --quick | grep '^BENCH{' >> "${current}"
fi
if [[ -x "${build_dir}/bench/bench_f11_scaling" ]]; then
  "${build_dir}/bench/bench_f11_scaling" --quick | grep '^BENCH{' >> "${current}"
fi

# Extract "key":value pairs from a json-ish line without a json tool.
field() {
  sed -n 's/.*"'"$2"'":"\{0,1\}\([^,"}]*\)"\{0,1\}[,}].*/\1/p' <<< "$1"
}

# Baseline lines live inside the aggregate's "results" array, one payload
# per line (collect_bench.sh's formatting), so grep recovers them intact.
baseline_metric() {  # baseline_metric <bench> <key-field> <key> <value-field>
  local line
  line="$(grep '"bench":"'"$1"'"' "${baseline}" | grep '"'"$2"'":"\{0,1\}'"$3"'[,"}]' | head -n 1)"
  [[ -n "${line}" ]] || return 1
  field "${line}" "$4"
}

warns=0
check() {  # check <label> <baseline-value> <current-value>
  local label="$1" base="$2" cur="$3"
  [[ -n "${base}" && -n "${cur}" ]] || return 0
  # Regression when current < baseline * (1 - tolerance).
  if awk -v b="${base}" -v c="${cur}" -v t="${tolerance}" \
         'BEGIN { exit !(c < b * (1 - t)) }'; then
    echo "WARN: ${label} regressed: ${cur} vs baseline ${base} (tolerance $(awk -v t="${tolerance}" 'BEGIN { printf "%.0f%%", t * 100 }'))"
    warns=$((warns + 1))
  else
    echo "ok: ${label} ${cur} (baseline ${base})"
  fi
}

check_upper() {  # check_upper <label> <baseline-value> <current-value>
  # For metrics where higher is worse (shed rate). Multiplicative slack
  # plus a small absolute band, since healthy baselines sit near zero.
  local label="$1" base="$2" cur="$3"
  [[ -n "${base}" && -n "${cur}" ]] || return 0
  if awk -v b="${base}" -v c="${cur}" -v t="${tolerance}" \
         'BEGIN { exit !(c > b * (1 + t) + 0.02) }'; then
    echo "WARN: ${label} regressed: ${cur} vs baseline ${base} (bound $(awk -v b="${base}" -v t="${tolerance}" 'BEGIN { printf "%.4f", b * (1 + t) + 0.02 }'))"
    warns=$((warns + 1))
  else
    echo "ok: ${label} ${cur} (baseline ${base})"
  fi
}

check_info() {  # check_info <label> <baseline-value> <current-value>
  # Like check(), but informational: a drop prints a note and never
  # counts toward the strict gate (recovery speed is not a serving SLO).
  local label="$1" base="$2" cur="$3"
  [[ -n "${base}" && -n "${cur}" ]] || return 0
  if awk -v b="${base}" -v c="${cur}" -v t="${tolerance}" \
         'BEGIN { exit !(c < b * (1 - t)) }'; then
    echo "note: ${label} slower than baseline: ${cur} vs ${base} (non-gating)"
  else
    echo "ok: ${label} ${cur} (baseline ${base})"
  fi
}

check_info_upper() {  # check_info_upper <label> <baseline-value> <current-value>
  # Informational with higher-is-worse polarity (ns/event). Never
  # counts toward the strict gate.
  local label="$1" base="$2" cur="$3"
  [[ -n "${base}" && -n "${cur}" ]] || return 0
  if awk -v b="${base}" -v c="${cur}" -v t="${tolerance}" \
         'BEGIN { exit !(c > b * (1 + t)) }'; then
    echo "note: ${label} slower than baseline: ${cur} vs ${base} (non-gating)"
  else
    echo "ok: ${label} ${cur} (baseline ${base})"
  fi
}

check_floor() {  # check_floor <label> <floor> <current-value>
  local label="$1" floor="$2" cur="$3"
  [[ -n "${cur}" ]] || return 0
  if awk -v f="${floor}" -v c="${cur}" 'BEGIN { exit !(c < f) }'; then
    echo "WARN: ${label} below absolute floor: ${cur} < ${floor}"
    warns=$((warns + 1))
  else
    echo "ok: ${label} ${cur} (floor ${floor})"
  fi
}

while IFS= read -r line; do
  bench_name="$(field "${line}" bench)"
  case "${bench_name}" in
    f6_batch_vs_scalar)
      sketch="$(field "${line}" sketch)"
      base="$(baseline_metric f6_batch_vs_scalar sketch "${sketch}" speedup || true)"
      check "batch speedup [${sketch}]" "${base}" "$(field "${line}" speedup)"
      ;;
    f6_merge_cache)
      layer="$(field "${line}" layer)"
      base="$(baseline_metric f6_merge_cache layer "${layer}" cold_over_warm || true)"
      check "merge-cache ratio [${layer}]" "${base}" "$(field "${line}" cold_over_warm)"
      ;;
    f7_net_load)
      connections="$(field "${line}" connections)"
      base="$(baseline_metric f7_net_load connections "${connections}" shed_rate || true)"
      check_upper "net shed rate [${connections} conns]" "${base}" \
          "$(field "${line}" shed_rate)"
      ;;
    f8_wire_speedup)
      mode="$(field "${line}" mode)"
      depth="$(field "${line}" depth)"
      ratio="$(field "${line}" binary_vs_text)"
      base="$(baseline_metric f8_wire_speedup mode "\"${mode}\"" binary_vs_text || true)"
      check "wire binary/text [${mode} depth ${depth}]" "${base}" "${ratio}"
      if [[ "${mode}" == "framing" ]]; then
        check_floor "wire framing ratio [depth ${depth}]" 1.5 "${ratio}"
      fi
      ;;
    f10_replay)
      base="$(baseline_metric f10_replay bench f10_replay replay_events_per_s || true)"
      check_info "WAL replay throughput (events/s)" "${base}" \
          "$(field "${line}" replay_events_per_s)"
      ;;
    f11_shard_scaling)
      shards="$(field "${line}" shards)"
      base="$(baseline_metric f11_shard_scaling shards "${shards}" apply_ns_per_event || true)"
      check_info_upper "engine apply ns/event [${shards} shards]" "${base}" \
          "$(field "${line}" apply_ns_per_event)"
      ;;
  esac
done < "${current}"

if [[ "${warns}" -gt 0 ]]; then
  echo "${warns} metric(s) outside baseline (quick mode is noisy; rerun full-size before reverting)"
  [[ "${strict}" -eq 1 ]] && exit 1
fi
exit 0
