// A5 — Checkpoint sizes: the serialized footprint of each aggregate
// estimator across eps, next to its live word count. Deployments that
// checkpoint sketches across restarts (or ship shard state to a merger)
// pay exactly these bytes; they track the theorems' space bounds.

#include <cstdio>

#include "common/bytes.h"
#include "core/exponential_histogram.h"
#include "core/generalized.h"
#include "core/shifting_window.h"
#include "core/sliding_window_hindex.h"
#include "eval/table.h"
#include "random/rng.h"
#include "workload/citation_vectors.h"

namespace {

using namespace himpact;

template <typename Estimator>
std::size_t CheckpointBytes(const Estimator& estimator) {
  ByteWriter writer;
  estimator.SerializeTo(writer);
  return writer.buffer().size();
}

}  // namespace

int main() {
  const std::uint64_t n = 1 << 20;
  std::printf("A5: checkpoint sizes (bytes) after 100k Zipf elements, "
              "n-bound = %llu\n\n",
              static_cast<unsigned long long>(n));

  Table table({"eps", "alg1 bytes", "alg1 words", "alg2 bytes", "alg2 words",
               "phi(k^2) bytes", "window-h bytes"});
  for (const double eps : {0.3, 0.1, 0.05}) {
    Rng rng(static_cast<std::uint64_t>(eps * 1000));
    VectorSpec spec;
    spec.kind = VectorKind::kZipf;
    spec.n = 100000;
    spec.max_value = n;
    const AggregateStream values = MakeVector(spec, rng);

    auto histogram = ExponentialHistogramEstimator::Create(eps, n).value();
    auto window = ShiftingWindowEstimator::Create(eps).value();
    auto phi = PhiIndexEstimator::Create(eps, n, PhiSpec::Squared()).value();
    auto sliding = SlidingWindowHIndex::Create(eps, 4096).value();
    for (const std::uint64_t v : values) {
      histogram.Add(v);
      window.Add(v);
      phi.Add(v);
      sliding.Add(v);
    }
    table.NewRow()
        .Cell(eps, 2)
        .Cell(static_cast<std::uint64_t>(CheckpointBytes(histogram)))
        .Cell(histogram.EstimateSpace().words)
        .Cell(static_cast<std::uint64_t>(CheckpointBytes(window)))
        .Cell(window.EstimateSpace().words)
        .Cell(static_cast<std::uint64_t>(CheckpointBytes(phi)))
        .Cell(static_cast<std::uint64_t>(CheckpointBytes(sliding)));
  }
  table.Print();
  std::printf(
      "\nexpected shape: checkpoint bytes ~ 8 bytes x live words (plus a\n"
      "small header) for the counter-based estimators; the sliding-window\n"
      "checkpoint carries every DGIM bucket and is the largest; all grow\n"
      "as eps shrinks, mirroring the space theorems.\n");
  return 0;
}
