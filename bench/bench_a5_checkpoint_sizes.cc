// A5 — Checkpoint sizes: the serialized footprint of each aggregate
// estimator across eps, next to its live word count, plus — for every
// serializable type — the sealed (envelope-framed) size and the write /
// restore latency. Deployments that checkpoint sketches across restarts
// (or ship shard state to a merger) pay exactly these bytes; they track
// the theorems' space bounds. Each per-type row is also emitted as a
// BENCH{...} json line for machine consumption.

#include <chrono>
#include <cstdio>
#include <string>

#include "common/bytes.h"
#include "common/envelope.h"
#include "core/cash_register.h"
#include "core/exact.h"
#include "core/exponential_histogram.h"
#include "core/generalized.h"
#include "core/random_order.h"
#include "core/shifting_window.h"
#include "core/sliding_window_hindex.h"
#include "eval/table.h"
#include "heavy/heavy_hitters.h"
#include "heavy/one_heavy_hitter.h"
#include "random/rng.h"
#include "sketch/bjkst.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/distinct.h"
#include "sketch/hyperloglog.h"
#include "sketch/kll.h"
#include "sketch/l0_sampler.h"
#include "sketch/space_saving.h"
#include "workload/citation_vectors.h"

namespace {

using namespace himpact;

template <typename Estimator>
std::size_t CheckpointBytes(const Estimator& estimator) {
  ByteWriter writer;
  estimator.SerializeTo(writer);
  return writer.buffer().size();
}

// Measures sealed size plus write (serialize + seal) and restore (open +
// deserialize) latency for one stocked sketch, averaged over `reps`.
template <typename Sketch>
void ReportCheckpointLatency(Table& table, const char* name,
                             CheckpointTag tag, const Sketch& sketch,
                             int reps = 20) {
  using Clock = std::chrono::steady_clock;

  std::vector<std::uint8_t> sealed;
  const auto write_start = Clock::now();
  for (int r = 0; r < reps; ++r) {
    ByteWriter writer;
    sketch.SerializeTo(writer);
    sealed = SealEnvelope(tag, writer.Take());
  }
  const auto write_end = Clock::now();

  const auto restore_start = Clock::now();
  for (int r = 0; r < reps; ++r) {
    auto payload = OpenEnvelope(sealed, tag);
    if (!payload.ok()) {
      std::fprintf(stderr, "%s: open failed: %s\n", name,
                   payload.status().ToString().c_str());
      return;
    }
    ByteReader reader(payload.value());
    auto restored = Sketch::DeserializeFrom(reader);
    if (!restored.ok()) {
      std::fprintf(stderr, "%s: restore failed: %s\n", name,
                   restored.status().ToString().c_str());
      return;
    }
  }
  const auto restore_end = Clock::now();

  const auto micros = [&](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::micro>(b - a).count() / reps;
  };
  const double write_us = micros(write_start, write_end);
  const double restore_us = micros(restore_start, restore_end);
  table.NewRow()
      .Cell(name)
      .Cell(static_cast<std::uint64_t>(sealed.size()))
      .Cell(write_us, 1)
      .Cell(restore_us, 1);
  std::printf(
      "BENCH{\"bench\":\"a5_checkpoint\",\"type\":\"%s\",\"sealed_bytes\":%zu,"
      "\"write_us\":%.2f,\"restore_us\":%.2f}\n",
      name, sealed.size(), write_us, restore_us);
}

void RunLatencySection() {
  std::printf("\nA5b: sealed checkpoint size and write/restore latency per "
              "type (avg of 20 reps)\n\n");
  Table table({"type", "sealed bytes", "write us", "restore us"});

  {
    DistinctCounter sketch(0.1, 0.05, 1);
    for (std::uint64_t i = 0; i < 100000; ++i) sketch.Add(i % 40000);
    ReportCheckpointLatency(table, "distinct_kmv", CheckpointTag::kDistinct,
                            sketch);
  }
  {
    BjkstDistinct sketch(0.1, 2);
    for (std::uint64_t i = 0; i < 100000; ++i) sketch.Add(i % 40000);
    ReportCheckpointLatency(table, "bjkst", CheckpointTag::kBjkst, sketch);
  }
  {
    HyperLogLog sketch(12, 3);
    for (std::uint64_t i = 0; i < 100000; ++i) sketch.Add(i % 40000);
    ReportCheckpointLatency(table, "hyperloglog", CheckpointTag::kHyperLogLog,
                            sketch);
  }
  {
    KllSketch sketch(200, 4);
    for (std::uint64_t i = 0; i < 100000; ++i) sketch.Add(i * 2654435761u);
    ReportCheckpointLatency(table, "kll", CheckpointTag::kKll, sketch);
  }
  {
    CountMinSketch sketch(0.01, 0.01, 5);
    for (std::uint64_t i = 0; i < 100000; ++i) sketch.Update(i % 5000);
    ReportCheckpointLatency(table, "count_min", CheckpointTag::kCountMin,
                            sketch);
  }
  {
    CountSketch sketch(512, 5, 6);
    for (std::uint64_t i = 0; i < 100000; ++i) sketch.Update(i % 5000);
    ReportCheckpointLatency(table, "count_sketch", CheckpointTag::kCountSketch,
                            sketch);
  }
  {
    SpaceSaving sketch(256);
    for (std::uint64_t i = 0; i < 100000; ++i) sketch.Update(i % 1000);
    ReportCheckpointLatency(table, "space_saving", CheckpointTag::kSpaceSaving,
                            sketch);
  }
  {
    MisraGries sketch(256);
    for (std::uint64_t i = 0; i < 100000; ++i) sketch.Update(i % 1000);
    ReportCheckpointLatency(table, "misra_gries", CheckpointTag::kMisraGries,
                            sketch);
  }
  {
    L0Sampler sketch(1 << 16, 0.05, 7);
    for (std::uint64_t i = 0; i < 20000; ++i) sketch.Update(i % (1 << 16), 1);
    ReportCheckpointLatency(table, "l0_sampler", CheckpointTag::kL0Sampler,
                            sketch);
  }
  {
    CashRegisterOptions options;
    options.num_samplers_override = 16;
    auto sketch =
        CashRegisterEstimator::Create(0.2, 0.1, 1 << 16, 8, options).value();
    for (std::uint64_t i = 0; i < 20000; ++i) sketch.Update(i % (1 << 16), 1);
    ReportCheckpointLatency(table, "cash_register",
                            CheckpointTag::kCashRegister, sketch);
  }
  {
    auto sketch = RandomOrderEstimator::Create(0.2, 100000).value();
    for (std::uint64_t i = 0; i < 50000; ++i) sketch.Add(i % 3000);
    ReportCheckpointLatency(table, "random_order", CheckpointTag::kRandomOrder,
                            sketch);
  }
  {
    OneHeavyHitter::Options options;
    options.eps = 0.2;
    options.delta = 0.1;
    options.max_papers = 1 << 16;
    auto sketch = OneHeavyHitter::Create(options, 9).value();
    for (std::uint64_t p = 0; p < 5000; ++p) {
      PaperTuple paper;
      paper.paper = p;
      paper.citations = 1 + p % 100;
      paper.authors.PushBack(p % 50);
      sketch.AddPaper(paper);
    }
    ReportCheckpointLatency(table, "one_heavy_hitter",
                            CheckpointTag::kOneHeavyHitter, sketch);
  }
  {
    HeavyHitters::Options options;
    options.eps = 0.25;
    options.delta = 0.1;
    options.max_papers = 1 << 16;
    auto sketch = HeavyHitters::Create(options, 10).value();
    for (std::uint64_t p = 0; p < 5000; ++p) {
      PaperTuple paper;
      paper.paper = p;
      paper.citations = 1 + p % 100;
      paper.authors.PushBack(p % 50);
      sketch.AddPaper(paper);
    }
    ReportCheckpointLatency(table, "heavy_hitters",
                            CheckpointTag::kHeavyHitters, sketch, 5);
  }
  {
    IncrementalExactHIndex exact;
    for (std::uint64_t i = 0; i < 100000; ++i) exact.Add(i % 700);
    ReportCheckpointLatency(table, "incremental_exact",
                            CheckpointTag::kIncrementalExact, exact);
  }
  {
    ExactCashRegisterHIndex exact;
    for (std::uint64_t i = 0; i < 100000; ++i) exact.Update(i % 20000, 1);
    ReportCheckpointLatency(table, "exact_cash_register",
                            CheckpointTag::kExactCashRegister, exact);
  }

  table.Print();
  std::printf(
      "\nexpected shape: write latency is linear in the sealed size (one\n"
      "serialize + one CRC pass); restores of seed-reconstructed sketches\n"
      "(l0_sampler, cash_register, heavy_hitters) cost extra because the\n"
      "hash structures are re-derived before the state is overlaid.\n");
}

}  // namespace

int main() {
  const std::uint64_t n = 1 << 20;
  std::printf("A5: checkpoint sizes (bytes) after 100k Zipf elements, "
              "n-bound = %llu\n\n",
              static_cast<unsigned long long>(n));

  Table table({"eps", "alg1 bytes", "alg1 words", "alg2 bytes", "alg2 words",
               "phi(k^2) bytes", "window-h bytes"});
  for (const double eps : {0.3, 0.1, 0.05}) {
    Rng rng(static_cast<std::uint64_t>(eps * 1000));
    VectorSpec spec;
    spec.kind = VectorKind::kZipf;
    spec.n = 100000;
    spec.max_value = n;
    const AggregateStream values = MakeVector(spec, rng);

    auto histogram = ExponentialHistogramEstimator::Create(eps, n).value();
    auto window = ShiftingWindowEstimator::Create(eps).value();
    auto phi = PhiIndexEstimator::Create(eps, n, PhiSpec::Squared()).value();
    auto sliding = SlidingWindowHIndex::Create(eps, 4096).value();
    for (const std::uint64_t v : values) {
      histogram.Add(v);
      window.Add(v);
      phi.Add(v);
      sliding.Add(v);
    }
    table.NewRow()
        .Cell(eps, 2)
        .Cell(static_cast<std::uint64_t>(CheckpointBytes(histogram)))
        .Cell(histogram.EstimateSpace().words)
        .Cell(static_cast<std::uint64_t>(CheckpointBytes(window)))
        .Cell(window.EstimateSpace().words)
        .Cell(static_cast<std::uint64_t>(CheckpointBytes(phi)))
        .Cell(static_cast<std::uint64_t>(CheckpointBytes(sliding)));
  }
  table.Print();
  std::printf(
      "\nexpected shape: checkpoint bytes ~ 8 bytes x live words (plus a\n"
      "small header) for the counter-based estimators; the sliding-window\n"
      "checkpoint carries every DGIM bucket and is the largest; all grow\n"
      "as eps shrinks, mirroring the space theorems.\n");
  RunLatencySection();
  return 0;
}
