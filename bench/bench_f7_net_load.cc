// F7 — Closed-loop TCP load against the async front end (src/net/):
// an in-process epoll NetServer hosts the real multi-tenant service
// (ServiceSession dispatch, exactly what `hstream_serve --listen`
// runs), and a poll(2)-driven client state machine sweeps the
// concurrent-connection count across {1, 64, 1000, 10000}, reporting
// per point the sustained request rate, reply-latency quantiles, and
// the shed rate once the sweep passes the connection cap — the
// socket-level overload story as numbers, one BENCH json line per
// sweep point.
//
//   ./bench_f7_net_load                      # cap 4096, 2s per point
//   ./bench_f7_net_load --cap 128 --duration-ms 5000
//   ./bench_f7_net_load --quick              # CI sizing, ~300ms points
//
// Each connection is closed-loop: one request in flight, the next sent
// the moment the reply's newline arrives. Past the cap, a connection
// either gets served by evicting nobody (eviction is disabled here —
// idle closed-loop clients are healthy, not loris) or is shed at
// accept() with the one-line RESOURCE_EXHAUSTED notice; shed
// connections count toward shed_rate and leave the loop. The traffic
// is add-heavy with a Zipf user draw, the same shape as F4, so served
// requests exercise the real registry hot path, not an echo stub.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/flags.h"
#include "net/server.h"
#include "net/socket.h"
#include "random/rng.h"
#include "random/zipf.h"
#include "service/service.h"
#include "service/session.h"

namespace {

using namespace himpact;

struct HarnessOptions {
  std::uint64_t cap = 4096;          // server connection cap
  std::uint64_t duration_ms = 2000;  // measured window per sweep point
  std::uint64_t users = 100000;
  std::uint64_t stripes = 4;
  std::uint64_t seed = 2017;
  bool quick = false;
};

bool ParseArgs(int argc, char** argv, HarnessOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_text = [&](const char** out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return false;
      }
      *out = argv[++i];
      return true;
    };
    const char* text = nullptr;
    if (arg == "--cap") {
      if (!next_text(&text) ||
          !ParseUint64FlagInRange("--cap", text, 1, 1u << 20, &options->cap))
        return false;
    } else if (arg == "--duration-ms") {
      if (!next_text(&text) ||
          !ParseUint64FlagInRange("--duration-ms", text, 1, 1u << 20,
                                  &options->duration_ms))
        return false;
    } else if (arg == "--users") {
      if (!next_text(&text) ||
          !ParseUint64FlagInRange("--users", text, 1, 1ull << 32,
                                  &options->users))
        return false;
    } else if (arg == "--stripes") {
      if (!next_text(&text) ||
          !ParseUint64FlagInRange("--stripes", text, 1, 4096,
                                  &options->stripes))
        return false;
    } else if (arg == "--seed") {
      if (!next_text(&text) ||
          !ParseUint64Flag("--seed", text, &options->seed))
        return false;
    } else if (arg == "--quick") {
      options->quick = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (options->quick) options->duration_ms = 300;
  return true;
}

double Quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

// One closed-loop client connection's state.
struct LoadClient {
  UniqueFd fd;
  enum class Phase { kConnecting, kSending, kReceiving, kShed, kDead };
  Phase phase = Phase::kConnecting;
  std::string request;
  std::size_t request_off = 0;
  std::string reply;
  std::chrono::steady_clock::time_point sent_at;
  bool first_reply = true;
};

struct SweepResult {
  std::size_t attempted = 0;
  std::size_t shed = 0;
  std::size_t dead = 0;
  std::uint64_t requests = 0;
  double seconds = 0;
  std::vector<double> latencies_us;
};

std::string NextRequest(Rng& rng, const ZipfSampler& users) {
  const std::uint64_t user = 1 + users.Sample(rng);
  if (rng.UniformU64(10) < 8) {
    return "add " + std::to_string(user) + " " +
           std::to_string(1 + rng.UniformU64(50)) + "\n";
  }
  return "get " + std::to_string(user) + "\n";
}

SweepResult RunSweepPoint(std::uint16_t port, std::size_t connections,
                          const HarnessOptions& options) {
  Rng rng(options.seed * 2654435761u + connections);
  const ZipfSampler users(options.users, 1.1);

  SweepResult result;
  result.attempted = connections;
  std::vector<LoadClient> clients(connections);
  for (LoadClient& client : clients) {
    auto connected = ConnectLoopback(port);
    if (!connected.ok()) {
      client.phase = LoadClient::Phase::kDead;
      ++result.dead;
      continue;
    }
    client.fd = std::move(connected).value();
  }

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(options.duration_ms);
  std::vector<pollfd> pollfds;
  std::vector<std::size_t> owners;
  while (std::chrono::steady_clock::now() < deadline) {
    pollfds.clear();
    owners.clear();
    for (std::size_t i = 0; i < clients.size(); ++i) {
      LoadClient& client = clients[i];
      if (client.phase == LoadClient::Phase::kShed ||
          client.phase == LoadClient::Phase::kDead) {
        continue;
      }
      pollfd entry{};
      entry.fd = client.fd.get();
      entry.events =
          client.phase == LoadClient::Phase::kReceiving ? POLLIN : POLLOUT;
      pollfds.push_back(entry);
      owners.push_back(i);
    }
    if (pollfds.empty()) break;  // everything shed or dead
    const int ready =
        ::poll(pollfds.data(), static_cast<nfds_t>(pollfds.size()), 50);
    if (ready <= 0) continue;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t p = 0; p < pollfds.size(); ++p) {
      if (pollfds[p].revents == 0) continue;
      LoadClient& client = clients[owners[p]];
      if (client.phase == LoadClient::Phase::kConnecting) {
        int error = 0;
        socklen_t len = sizeof(error);
        (void)::getsockopt(client.fd.get(), SOL_SOCKET, SO_ERROR, &error,
                           &len);
        if (error != 0) {
          client.phase = LoadClient::Phase::kDead;
          client.fd.Reset();
          ++result.dead;
          continue;
        }
        client.request = NextRequest(rng, users);
        client.request_off = 0;
        client.phase = LoadClient::Phase::kSending;
        client.sent_at = now;
      }
      if (client.phase == LoadClient::Phase::kSending) {
        const ssize_t n = ::write(
            client.fd.get(), client.request.data() + client.request_off,
            client.request.size() - client.request_off);
        if (n < 0) {
          if (errno == EAGAIN || errno == EINTR) continue;
          // Reset before the request landed: the shed close raced us.
          client.phase = client.first_reply ? LoadClient::Phase::kShed
                                            : LoadClient::Phase::kDead;
          ++(client.first_reply ? result.shed : result.dead);
          client.fd.Reset();
          continue;
        }
        client.request_off += static_cast<std::size_t>(n);
        if (client.request_off == client.request.size()) {
          client.phase = LoadClient::Phase::kReceiving;
        }
        continue;
      }
      if (client.phase == LoadClient::Phase::kReceiving) {
        char chunk[512];
        const ssize_t n = ::read(client.fd.get(), chunk, sizeof(chunk));
        if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
        if (n <= 0) {
          client.phase = client.first_reply ? LoadClient::Phase::kShed
                                            : LoadClient::Phase::kDead;
          ++(client.first_reply ? result.shed : result.dead);
          client.fd.Reset();
          continue;
        }
        client.reply.append(chunk, static_cast<std::size_t>(n));
        const std::size_t newline = client.reply.find('\n');
        if (newline == std::string::npos) continue;
        if (client.first_reply &&
            client.reply.rfind("RESOURCE_EXHAUSTED", 0) == 0) {
          client.phase = LoadClient::Phase::kShed;
          ++result.shed;
          client.fd.Reset();
          continue;
        }
        client.first_reply = false;
        ++result.requests;
        result.latencies_us.push_back(
            std::chrono::duration<double, std::micro>(now - client.sent_at)
                .count());
        // Closed loop: next request immediately.
        client.reply.erase(0, newline + 1);
        client.request = NextRequest(rng, users);
        client.request_off = 0;
        client.sent_at = now;
        client.phase = LoadClient::Phase::kSending;
      }
    }
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

int Run(const HarnessOptions& options) {
  const std::uint64_t fd_limit = RaiseFdLimit(16384);

  ServiceOptions service_options;
  service_options.num_stripes = static_cast<std::size_t>(options.stripes);
  service_options.enable_heavy_hitters = false;
  service_options.seed = options.seed;
  auto service_or = HImpactService::Create(service_options);
  if (!service_or.ok()) {
    std::fprintf(stderr, "%s\n", service_or.status().ToString().c_str());
    return 1;
  }
  HImpactService service = std::move(service_or).value();
  ServiceSession session(&service, SessionOptions{});

  NetServerOptions net_options;
  net_options.port = 0;
  net_options.backlog = 4096;
  net_options.max_connections = static_cast<std::size_t>(options.cap);
  net_options.idle_timeout_nanos = 0;
  net_options.request_timeout_nanos = 0;
  // Closed-loop clients are healthy; the overload response under
  // measurement is shedding, not eviction.
  net_options.evict_min_idle_nanos = 3600ull * 1000 * 1000 * 1000;
  auto server_or = NetServer::Create(
      net_options, [&session](const std::string& line, std::string* reply) {
        return session.HandleLine(line, reply);
      });
  if (!server_or.ok()) {
    std::fprintf(stderr, "%s\n", server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<NetServer> server = std::move(server_or).value();
  std::thread loop([&server] { (void)server->Run(); });

  const std::size_t sweep[] = {1, 64, 1000, 10000};
  for (const std::size_t requested : sweep) {
    // Client + server fds both live in this process; stay under the
    // limit with headroom for the accept churn.
    std::size_t connections = requested;
    const std::size_t usable =
        fd_limit > 4096 ? static_cast<std::size_t>((fd_limit - 2048) / 2)
                        : static_cast<std::size_t>(fd_limit / 3);
    if (connections > usable) {
      std::fprintf(stderr,
                   "sweep point %zu clamped to %zu (fd limit %llu)\n",
                   requested, usable,
                   static_cast<unsigned long long>(fd_limit));
      connections = usable;
    }

    const NetServerCounters before = server->Counters();
    SweepResult result = RunSweepPoint(server->port(), connections, options);
    const NetServerCounters after = server->Counters();

    std::sort(result.latencies_us.begin(), result.latencies_us.end());
    const double shed_rate =
        result.attempted > 0
            ? static_cast<double>(result.shed) /
                  static_cast<double>(result.attempted)
            : 0.0;
    std::printf(
        "BENCH{\"bench\":\"f7_net_load\",\"connections\":%zu,"
        "\"cap\":%llu,\"duration_ms\":%llu,\"seconds\":%.3f,"
        "\"requests\":%llu,\"qps\":%.0f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
        "\"shed_conns\":%zu,\"shed_rate\":%.4f,\"dead_conns\":%zu,"
        "\"srv_accepted\":%llu,\"srv_shed_at_accept\":%llu,"
        "\"srv_requests\":%llu,\"srv_partial_writes\":%llu,"
        "\"hardware_concurrency\":%u}\n",
        result.attempted, static_cast<unsigned long long>(options.cap),
        static_cast<unsigned long long>(options.duration_ms), result.seconds,
        static_cast<unsigned long long>(result.requests),
        static_cast<double>(result.requests) / result.seconds,
        Quantile(result.latencies_us, 0.5),
        Quantile(result.latencies_us, 0.99), result.shed, shed_rate,
        result.dead,
        static_cast<unsigned long long>(after.accepted - before.accepted),
        static_cast<unsigned long long>(after.shed_at_accept -
                                        before.shed_at_accept),
        static_cast<unsigned long long>(after.requests - before.requests),
        static_cast<unsigned long long>(after.partial_writes -
                                        before.partial_writes),
        std::thread::hardware_concurrency());
    std::fflush(stdout);
    // Give the loop a beat to reap the sweep's closes before the next
    // point measures admission from a clean slate.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  server->Stop();
  loop.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  HarnessOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    std::fprintf(stderr,
                 "usage: bench_f7_net_load [--cap N] [--duration-ms MS] "
                 "[--users N]\n"
                 "                         [--stripes S] [--seed S] "
                 "[--quick]\n");
    return 2;
  }
  return Run(options);
}
