// F9 — Out-of-core cold tier (src/storage/, docs/CHECKPOINTS.md). Two
// families of BENCH{...} json lines:
//
//  * `f9_coldtier` — per population size, the cost of answering a
//    paged-out user. A fixed RAM budget forces most of the population
//    into the mmap-backed segment tier; the measurement is the per-get
//    latency of `PointHIndex` on sampled segment-tier users (each get
//    pages one block in), reported as p50/p99 against the pre-PR
//    alternative: restoring the whole checkpoint before answering
//    (timed as one `RestoreFrom` into a fresh budget-matched service
//    with no segment store — demotions freeze, the way the repo worked
//    before the cold tier existed).
//  * `f9_incremental` — delta-checkpoint sizing. A 128-stripe service
//    saves in full, one stripe is dirtied (<1% of the population), and
//    the incremental save is compared byte-for-byte against the full
//    one. The interesting number is `incr_over_full` (target <= 0.10).
//
//   ./bench_f9_coldtier [--quick] [--users N[,N...]] [--budget-mb B]
//
// Timing is wall clock (steady_clock); per-get latencies are sorted
// for exact sample percentiles. Run in Release for meaningful numbers.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "random/rng.h"
#include "service/registry.h"
#include "service/service.h"

namespace {

using namespace himpact;

struct F9Options {
  std::vector<std::uint64_t> populations = {1'000'000, 10'000'000};
  std::uint64_t budget_bytes = 64ull << 20;
  std::uint64_t incr_users = 100'000;
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string TempDir(const char* name) {
  std::string path = "/tmp/himpact_f9_";
  path += name;
  path += ".";
  path += std::to_string(static_cast<long long>(::getpid()));
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

/// Percentile of an already-sorted sample (exact order statistic).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

void RunColdTier(const F9Options& options, std::uint64_t users) {
  const std::string root = TempDir("cold");
  const std::string segment_dir = root + "/segments";
  std::filesystem::create_directories(segment_dir);

  ServiceOptions service_options;
  service_options.num_stripes = 8;
  service_options.promote_threshold = 8;
  service_options.memory_budget_bytes = options.budget_bytes;
  service_options.enable_heavy_hitters = false;
  service_options.segment_dir = segment_dir;
  auto service_or = HImpactService::Create(service_options);
  if (!service_or.ok()) std::exit(1);
  HImpactService& service = service_or.value();

  // Population: every user exists; most stay on the exact cold path (3
  // events), every 97th accumulates enough to promote to a hot sketch.
  // The sequential sweep makes early users LRU victims, so by the end
  // the bulk of the population lives in the segment tier.
  Rng rng(2024);
  std::uint64_t events = 0;
  const double ingest_start = NowSeconds();
  for (std::uint64_t user = 1; user <= users; ++user) {
    const int per_user = (user % 97 == 0) ? 10 : 3;
    for (int e = 0; e < per_user; ++e) {
      service.RecordResponseCount(user, 1 + rng.UniformU64(100));
      ++events;
    }
  }
  const double ingest_s = NowSeconds() - ingest_start;

  // One full checkpoint: the baseline artifact, and the flush that
  // seals every pending segment record so cold gets page in from disk.
  const std::string checkpoint = root + "/ckpt";
  if (!service.CheckpointTo(checkpoint).ok()) std::exit(1);

  // Sample segment-tier users from the older (LRU-evicted) half of the
  // population; measure one PointHIndex each. The verifying Lookup
  // itself pages blocks in, so the measured section separately reports
  // real page-ins vs block-cache hits — at full sizes the caches (a few
  // MB across stripes) cover a sliver of the segment data and the p99
  // is a true page-in.
  constexpr std::size_t kSampleTarget = 512;
  std::vector<AuthorId> sample;
  sample.reserve(kSampleTarget);
  for (std::uint64_t probe = 0;
       probe < users * 4 && sample.size() < kSampleTarget; ++probe) {
    const AuthorId user = 1 + rng.UniformU64(std::max<std::uint64_t>(
                                  1, users / 2));
    UserSnapshot snapshot;
    if (service.Lookup(user, &snapshot) &&
        snapshot.tier == UserTier::kSegment) {
      sample.push_back(user);
    }
  }
  const std::uint64_t page_ins_before = service.Stats().registry.page_ins;
  const std::uint64_t cache_hits_before =
      service.Stats().registry.page_in_cache_hits;
  std::vector<double> get_us;
  get_us.reserve(sample.size());
  double checksum = 0.0;
  for (const AuthorId user : sample) {
    const double start = NowSeconds();
    checksum += service.PointHIndex(user);
    get_us.push_back((NowSeconds() - start) * 1e6);
  }
  if (checksum <= 0.0 && !sample.empty()) std::exit(1);
  std::sort(get_us.begin(), get_us.end());
  const ServiceStats stats = service.Stats();

  // Baseline: answering the same question the pre-cold-tier way means
  // restoring the entire checkpoint first. Budget-matched, no segment
  // store (demotion freezes), so the restore is as cheap as it gets.
  ServiceOptions baseline_options = service_options;
  baseline_options.segment_dir.clear();
  auto baseline_or = HImpactService::Create(baseline_options);
  if (!baseline_or.ok()) std::exit(1);
  const double restore_start = NowSeconds();
  if (!baseline_or.value().RestoreFrom(checkpoint).ok()) std::exit(1);
  const double restore_ms = (NowSeconds() - restore_start) * 1e3;

  const double p50 = Percentile(get_us, 0.50);
  const double p99 = Percentile(get_us, 0.99);
  std::printf(
      "BENCH{\"bench\":\"f9_coldtier\",\"users\":%llu,\"events\":%llu,"
      "\"budget_mb\":%llu,\"ingest_s\":%.2f,\"segment_users\":%llu,"
      "\"segment_files\":%llu,\"segment_mb\":%.1f,\"sampled_gets\":%zu,"
      "\"cold_get_p50_us\":%.1f,\"cold_get_p99_us\":%.1f,\"page_ins\":%llu,"
      "\"cache_hits\":%llu,\"restore_full_ms\":%.1f,"
      "\"p99_speedup_vs_restore\":%.1f}\n",
      static_cast<unsigned long long>(users),
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(options.budget_bytes >> 20), ingest_s,
      static_cast<unsigned long long>(stats.registry.segment_users),
      static_cast<unsigned long long>(stats.registry.segment_files),
      static_cast<double>(stats.registry.segment_bytes) / (1 << 20),
      sample.size(), p50, p99,
      static_cast<unsigned long long>(stats.registry.page_ins -
                                      page_ins_before),
      static_cast<unsigned long long>(stats.registry.page_in_cache_hits -
                                      cache_hits_before),
      restore_ms, p99 > 0.0 ? restore_ms * 1e3 / p99 : 0.0);

  std::filesystem::remove_all(root);
}

void RunIncremental(const F9Options& options) {
  const std::string root = TempDir("incr");
  const std::string checkpoint = root + "/ckpt";

  ServiceOptions service_options;
  service_options.num_stripes = 128;
  service_options.enable_heavy_hitters = false;
  auto service_or = HImpactService::Create(service_options);
  if (!service_or.ok()) std::exit(1);
  HImpactService& service = service_or.value();

  Rng rng(7);
  for (std::uint64_t user = 1; user <= options.incr_users; ++user) {
    service.RecordResponseCount(user, 1 + rng.UniformU64(50));
    service.RecordResponseCount(user, 1 + rng.UniformU64(50));
  }

  const double full_start = NowSeconds();
  if (!service.CheckpointTo(checkpoint, SaveMode::kFull).ok()) std::exit(1);
  const double full_ms = (NowSeconds() - full_start) * 1e3;

  // Dirty exactly one stripe — one user's stream moves, 127 stripes
  // stay clean — then extend the chain with an incremental save.
  service.RecordResponseCount(1, 42);
  const double incr_start = NowSeconds();
  if (!service.CheckpointTo(checkpoint, SaveMode::kIncremental).ok()) {
    std::exit(1);
  }
  const double incr_ms = (NowSeconds() - incr_start) * 1e3;

  const CheckpointCounters counters = service.Stats().checkpoint;
  const double ratio =
      counters.bytes_full > 0
          ? static_cast<double>(counters.bytes_incremental) /
                static_cast<double>(counters.bytes_full)
          : 0.0;
  std::printf(
      "BENCH{\"bench\":\"f9_incremental\",\"stripes\":%zu,\"users\":%llu,"
      "\"dirty_stripes\":%llu,\"stripes_skipped_clean\":%llu,"
      "\"bytes_full\":%llu,\"bytes_incremental\":%llu,"
      "\"incr_over_full\":%.4f,\"full_save_ms\":%.1f,\"incr_save_ms\":%.1f}"
      "\n",
      service_options.num_stripes,
      static_cast<unsigned long long>(options.incr_users),
      static_cast<unsigned long long>(counters.stripes_written -
                                      service_options.num_stripes),
      static_cast<unsigned long long>(counters.stripes_skipped_clean),
      static_cast<unsigned long long>(counters.bytes_full),
      static_cast<unsigned long long>(counters.bytes_incremental), ratio,
      full_ms, incr_ms);

  std::filesystem::remove_all(root);
}

std::vector<std::uint64_t> ParsePopulations(const char* text) {
  std::vector<std::uint64_t> out;
  const char* cursor = text;
  while (*cursor != '\0') {
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(cursor, &end, 10);
    if (end == cursor || value == 0) return {};
    out.push_back(value);
    cursor = (*end == ',') ? end + 1 : end;
    if (*end != ',' && *end != '\0') return {};
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  F9Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.populations = {20'000};
      options.budget_bytes = 1 << 20;
      options.incr_users = 10'000;
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      options.populations = ParsePopulations(argv[++i]);
      if (options.populations.empty()) {
        std::fprintf(stderr, "--users wants N[,N...]\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--budget-mb") == 0 && i + 1 < argc) {
      options.budget_bytes =
          std::strtoull(argv[++i], nullptr, 10) << 20;
    } else {
      std::fprintf(stderr,
                   "usage: bench_f9_coldtier [--quick] [--users N[,N...]] "
                   "[--budget-mb B]\n");
      return 2;
    }
  }
  for (const std::uint64_t users : options.populations) {
    RunColdTier(options, users);
  }
  RunIncremental(options);
  return 0;
}
