// F6 — Hot-path microbenchmarks for the batched ingest APIs and the
// epoch-cached merge-on-query path (docs/PERFORMANCE.md). Two families
// of BENCH{...} json lines:
//
//  * `f6_batch_vs_scalar` — per sketch, ns/event of the pre-PR hot path
//    (one call per event; through the virtual estimator interface where
//    one exists, since that is what generic callers used) against the
//    batched path (one `AddBatch`/`UpdateBatch` call per 1024-event
//    chunk on the concrete type), plus the speedup. Both sides ingest
//    the identical stream and the final estimates are cross-checked.
//  * `f6_simd_vs_scalar` — per sketch, the batched path measured twice
//    in-process with the dispatch level pinned (`SetSimdLevelOverride`):
//    once forced-scalar, once at the detected SIMD level, repeats
//    alternating between the two so slow clock drift cancels. The
//    speedup isolates what the hand-vectorized kernels buy on top of
//    the batch API; both sides are cross-checked for identical results.
//  * `f6_simd_kernels` — the hand-vectorized kernels in isolation
//    (tabulation hash, pairwise-range row hash, count-sketch row
//    hash+sign, EH level search) on full-range keys, scalar twin vs
//    AVX2 kernel, repeats alternating. Full-range keys matter: the
//    scalar Mersenne/Barrett paths carry data-dependent fixup branches
//    that predict well on small-universe streams and mispredict at full
//    range, so small-key end-to-end rows understate what the branch-free
//    vector arithmetic buys. Rows are emitted only on hosts whose
//    detected level is avx2; outputs are cross-checked byte-identical.
//  * `f6_merge_cache` — cold vs warm latency of the engine's
//    `MergedEstimatorCached()` and the registry's epoch-cached `TopK`:
//    cold re-merges because an epoch advanced (or the cache was
//    invalidated), warm serves the cached snapshot after a version
//    check. Reports the hit/miss counters so the cache is visibly
//    exercised.
//
//   ./bench_f6_hotpath [--quick] [--events N] [--repeats R]
//
// Timing is min-of-R wall clock (steady_clock) per measurement: the
// minimum is the least noisy estimator of the true cost on a shared
// machine. Run in Release/RelWithDebInfo for meaningful numbers.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "common/batch.h"
#include "hash/cpu_features.h"
#include "hash/k_independent.h"
#include "hash/simd_kernels.h"
#include "hash/tabulation.h"
#include "core/cash_register.h"
#include "core/estimator.h"
#include "core/exponential_histogram.h"
#include "core/shifting_window.h"
#include "engine/sharded_engine.h"
#include "engine/traits.h"
#include "random/rng.h"
#include "service/registry.h"
#include "sketch/bjkst.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/distinct.h"
#include "sketch/hyperloglog.h"
#include "sketch/kll.h"
#include "sketch/l0_sampler.h"
#include "sketch/space_saving.h"
#include "stream/types.h"

namespace {

using namespace himpact;

constexpr std::size_t kChunk = 1024;

struct F6Options {
  std::size_t events = 1 << 18;
  int repeats = 5;
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Min-of-repeats wall clock of `fn()`, in seconds. `fn` must redo the
/// full measured work on every call (fresh estimator inside).
template <typename Fn>
double MinSeconds(int repeats, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double start = NowSeconds();
    fn();
    const double elapsed = NowSeconds() - start;
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// Min-of-repeats for two workloads with the repeats interleaved
/// (a, b, a, b, ...): both see the same share of any machine-wide slow
/// drift, so their ratio stays honest on a noisy host.
template <typename FnA, typename FnB>
void MinSecondsAlternating(int repeats, FnA&& fn_a, FnB&& fn_b,
                           double* best_a, double* best_b) {
  for (int r = 0; r < repeats; ++r) {
    double start = NowSeconds();
    fn_a();
    const double elapsed_a = NowSeconds() - start;
    if (r == 0 || elapsed_a < *best_a) *best_a = elapsed_a;
    start = NowSeconds();
    fn_b();
    const double elapsed_b = NowSeconds() - start;
    if (r == 0 || elapsed_b < *best_b) *best_b = elapsed_b;
  }
}

void EmitSimdLine(const char* sketch, std::size_t events, double forced_s,
                  double simd_s) {
  const double forced_ns = forced_s * 1e9 / static_cast<double>(events);
  const double simd_ns = simd_s * 1e9 / static_cast<double>(events);
  std::printf(
      "BENCH{\"bench\":\"f6_simd_vs_scalar\",\"sketch\":\"%s\","
      "\"events\":%zu,\"chunk\":%zu,\"simd_level\":\"%s\","
      "\"scalar_batch_ns_per_event\":%.2f,\"simd_batch_ns_per_event\":%.2f,"
      "\"simd_speedup\":%.2f}\n",
      sketch, events, kChunk, SimdLevelName(DetectedSimdLevel()), forced_ns,
      simd_ns, simd_ns > 0.0 ? forced_ns / simd_ns : 0.0);
}

/// Measures `run()` (the batched ingest) under forced-scalar and
/// detected-SIMD dispatch, alternating, and emits `f6_simd_vs_scalar`.
/// `run` must return the probed result so the two paths are
/// cross-checked for exact equality.
template <typename Run>
void RunSimdCase(const char* name, const F6Options& options,
                 std::size_t events, Run run) {
  double forced_result = 0.0;
  double simd_result = 0.0;
  double forced_s = 0.0;
  double simd_s = 0.0;
  MinSecondsAlternating(
      options.repeats,
      [&] {
        SetSimdLevelOverride(SimdLevel::kScalar);
        forced_result = run();
      },
      [&] {
        SetSimdLevelOverride(SimdLevel::kAvx2);  // clamped to detection
        simd_result = run();
      },
      &forced_s, &simd_s);
  ClearSimdLevelOverride();
  if (forced_result != simd_result) {
    std::fprintf(stderr, "f6 %s: scalar/simd dispatch results diverge\n",
                 name);
    std::exit(1);
  }
  EmitSimdLine(name, events, forced_s, simd_s);
}

void EmitBatchLine(const char* sketch, std::size_t events, double scalar_s,
                   double batch_s) {
  const double scalar_ns = scalar_s * 1e9 / static_cast<double>(events);
  const double batch_ns = batch_s * 1e9 / static_cast<double>(events);
  std::printf(
      "BENCH{\"bench\":\"f6_batch_vs_scalar\",\"sketch\":\"%s\","
      "\"events\":%zu,\"chunk\":%zu,\"scalar_ns_per_event\":%.2f,"
      "\"batch_ns_per_event\":%.2f,\"speedup\":%.2f}\n",
      sketch, events, kChunk, scalar_ns, batch_ns,
      batch_ns > 0.0 ? scalar_ns / batch_ns : 0.0);
}

/// One batch-vs-scalar measurement. `make` builds a fresh estimator,
/// `scalar(est, value)` applies one event the pre-PR way, `batch(est,
/// span)` applies a chunk, and `probe` reads a result (cross-checked
/// between the two sides, and keeps the work observable).
template <typename Make, typename Scalar, typename Batch, typename Probe>
void RunBatchCase(const char* name, const F6Options& options,
                  const std::vector<std::uint64_t>& stream, Make make,
                  Scalar scalar, Batch batch, Probe probe) {
  double scalar_result = 0.0;
  const double scalar_s = MinSeconds(options.repeats, [&] {
    auto estimator = make();
    for (const std::uint64_t v : stream) scalar(estimator, v);
    scalar_result = probe(estimator);
  });
  double batch_result = 0.0;
  const double batch_s = MinSeconds(options.repeats, [&] {
    auto estimator = make();
    for (std::size_t i = 0; i < stream.size(); i += kChunk) {
      const std::size_t n = std::min(kChunk, stream.size() - i);
      batch(estimator, std::span<const std::uint64_t>(&stream[i], n));
    }
    batch_result = probe(estimator);
  });
  if (scalar_result != batch_result) {
    std::fprintf(stderr, "f6 %s: scalar/batch results diverge (%f vs %f)\n",
                 name, scalar_result, batch_result);
    std::exit(1);
  }
  EmitBatchLine(name, stream.size(), scalar_s, batch_s);
  RunSimdCase(name, options, stream.size(), [&] {
    auto estimator = make();
    for (std::size_t i = 0; i < stream.size(); i += kChunk) {
      const std::size_t n = std::min(kChunk, stream.size() - i);
      batch(estimator, std::span<const std::uint64_t>(&stream[i], n));
    }
    return probe(estimator);
  });
}

void RunBatchVsScalar(const F6Options& options) {
  Rng rng(17);
  std::vector<std::uint64_t> values;
  values.reserve(options.events);
  for (std::size_t i = 0; i < options.events; ++i) {
    values.push_back(1 + rng.UniformU64(1u << 20));
  }
  const std::uint64_t universe = 1 << 16;
  std::vector<std::uint64_t> keys;
  keys.reserve(options.events);
  for (std::size_t i = 0; i < options.events; ++i) {
    keys.push_back(rng.UniformU64(universe));
  }

  // Aggregate estimators with a virtual interface: the scalar side calls
  // through `AggregateHIndexEstimator&` — the pre-PR generic hot path.
  RunBatchCase(
      "exponential_histogram", options, values,
      [&] { return ExponentialHistogramEstimator::Create(0.1, 1u << 20).value(); },
      [](ExponentialHistogramEstimator& e, std::uint64_t v) {
        static_cast<AggregateHIndexEstimator&>(e).Add(v);
      },
      [](ExponentialHistogramEstimator& e,
         std::span<const std::uint64_t> chunk) { e.AddBatch(chunk); },
      [](ExponentialHistogramEstimator& e) { return e.Estimate(); });
  RunBatchCase(
      "shifting_window", options, values,
      [&] { return ShiftingWindowEstimator::Create(0.1).value(); },
      [](ShiftingWindowEstimator& e, std::uint64_t v) {
        static_cast<AggregateHIndexEstimator&>(e).Add(v);
      },
      [](ShiftingWindowEstimator& e, std::span<const std::uint64_t> chunk) {
        e.AddBatch(chunk);
      },
      [](ShiftingWindowEstimator& e) { return e.Estimate(); });

  // Plain sketches: scalar is one (cross-TU) call per event.
  RunBatchCase(
      "hyperloglog", options, keys, [&] { return HyperLogLog(12, 23); },
      [](HyperLogLog& e, std::uint64_t v) { e.Add(v); },
      [](HyperLogLog& e, std::span<const std::uint64_t> chunk) {
        e.AddBatch(chunk);
      },
      [](HyperLogLog& e) { return e.Estimate(); });
  RunBatchCase(
      "bjkst", options, keys, [&] { return BjkstDistinct(0.1, 29); },
      [](BjkstDistinct& e, std::uint64_t v) { e.Add(v); },
      [](BjkstDistinct& e, std::span<const std::uint64_t> chunk) {
        e.AddBatch(chunk);
      },
      [](BjkstDistinct& e) { return e.Estimate(); });
  RunBatchCase(
      "distinct_counter", options, keys,
      [&] { return DistinctCounter(0.1, 0.1, 43); },
      [](DistinctCounter& e, std::uint64_t v) { e.Add(v); },
      [](DistinctCounter& e, std::span<const std::uint64_t> chunk) {
        e.AddBatch(chunk.data(), chunk.size());
      },
      [](DistinctCounter& e) { return e.Estimate(); });
  RunBatchCase(
      "kll", options, values, [&] { return KllSketch(256, 31); },
      [](KllSketch& e, std::uint64_t v) { e.Add(v); },
      [](KllSketch& e, std::span<const std::uint64_t> chunk) {
        e.AddBatch(chunk);
      },
      [](KllSketch& e) { return e.Rank(1u << 19); });
  RunBatchCase(
      "count_min", options, keys,
      [&] { return CountMinSketch(0.001, 0.01, 37); },
      [](CountMinSketch& e, std::uint64_t v) { e.Update(v, 1); },
      [](CountMinSketch& e, std::span<const std::uint64_t> chunk) {
        e.UpdateBatch(chunk);
      },
      [](CountMinSketch& e) { return static_cast<double>(e.Query(7)); });
  RunBatchCase(
      "count_sketch", options, keys, [&] { return CountSketch(2048, 5, 41); },
      [](CountSketch& e, std::uint64_t v) { e.Update(v, 1); },
      [](CountSketch& e, std::span<const std::uint64_t> chunk) {
        e.UpdateBatch(chunk);
      },
      [](CountSketch& e) { return static_cast<double>(e.Query(7)); });
  RunBatchCase(
      "space_saving", options, keys, [&] { return SpaceSaving(256); },
      [](SpaceSaving& e, std::uint64_t v) { e.Update(v, 1); },
      [](SpaceSaving& e, std::span<const std::uint64_t> chunk) {
        e.UpdateBatch(chunk);
      },
      [](SpaceSaving& e) { return static_cast<double>(e.total()); });

  // Cash-register estimator: scalar through the virtual interface,
  // batch through `UpdateBatch` with a caller-owned arena (the engine's
  // exact calling convention).
  {
    // A deliberately bounded sampler count: the default geometry makes
    // each update cost hundreds of microseconds, which measures the same
    // loops at benchmark-hostile runtimes. 32 samplers keep the shape
    // (sampler-outer locality is what the batch path buys) and the run
    // finite; the stream is trimmed to match.
    const std::size_t cr_events = std::min<std::size_t>(keys.size(), 1 << 14);
    std::vector<CitationEvent> events;
    events.reserve(cr_events);
    for (std::size_t i = 0; i < cr_events; ++i) {
      events.push_back(CitationEvent{keys[i], 1});
    }
    CashRegisterOptions cr_options;
    cr_options.num_samplers_override = 32;
    const auto make = [&] {
      return CashRegisterEstimator::Create(0.2, 0.1, universe, 13, cr_options)
          .value();
    };
    double scalar_result = 0.0;
    const double scalar_s = MinSeconds(options.repeats, [&] {
      auto estimator = make();
      CashRegisterHIndexEstimator& base = estimator;
      for (const CitationEvent& event : events) {
        base.Update(event.paper, event.delta);
      }
      scalar_result = estimator.Estimate();
    });
    BatchArena arena;
    double batch_result = 0.0;
    const double batch_s = MinSeconds(options.repeats, [&] {
      auto estimator = make();
      for (std::size_t i = 0; i < events.size(); i += kChunk) {
        const std::size_t n = std::min(kChunk, events.size() - i);
        estimator.UpdateBatch(std::span<const CitationEvent>(&events[i], n),
                              arena);
      }
      batch_result = estimator.Estimate();
    });
    if (scalar_result != batch_result) {
      std::fprintf(stderr,
                   "f6 cash_register: scalar/batch results diverge\n");
      std::exit(1);
    }
    EmitBatchLine("cash_register", events.size(), scalar_s, batch_s);
    RunSimdCase("cash_register", options, events.size(), [&] {
      auto estimator = make();
      for (std::size_t i = 0; i < events.size(); i += kChunk) {
        const std::size_t n = std::min(kChunk, events.size() - i);
        estimator.UpdateBatch(std::span<const CitationEvent>(&events[i], n),
                              arena);
      }
      return estimator.Estimate();
    });
  }
}

void RunSimdKernels(const F6Options& options) {
#ifdef HIMPACT_HAVE_AVX2_KERNELS
  if (DetectedSimdLevel() != SimdLevel::kAvx2) return;
  const std::size_t n = options.events;
  Rng rng(71);
  std::vector<std::uint64_t> keys(n);
  for (auto& key : keys) key = rng.UniformU64(~std::uint64_t{0});
  std::vector<std::uint64_t> out_a(n);
  std::vector<std::uint64_t> out_b(n);

  const auto emit = [&](const char* kernel, double scalar_s, double simd_s) {
    const double scalar_ns = scalar_s * 1e9 / static_cast<double>(n);
    const double simd_ns = simd_s * 1e9 / static_cast<double>(n);
    std::printf(
        "BENCH{\"bench\":\"f6_simd_kernels\",\"kernel\":\"%s\",\"keys\":%zu,"
        "\"simd_level\":\"avx2\",\"scalar_ns_per_key\":%.2f,"
        "\"simd_ns_per_key\":%.2f,\"simd_speedup\":%.2f}\n",
        kernel, n, scalar_ns, simd_ns,
        simd_ns > 0.0 ? scalar_ns / simd_ns : 0.0);
  };
  const auto check_equal = [&](const char* kernel) {
    if (out_a != out_b) {
      std::fprintf(stderr, "f6 simd kernel %s: outputs diverge\n", kernel);
      std::exit(1);
    }
  };

  // Tabulation and pairwise-range measure through the public HashBatch
  // under pinned dispatch; the two sketch-internal kernels (count-sketch
  // row, EH search) call their scalar twin / kernel directly.
  {
    TabulationHash hash(11);
    double scalar_s = 0.0;
    double simd_s = 0.0;
    MinSecondsAlternating(
        options.repeats,
        [&] {
          SetSimdLevelOverride(SimdLevel::kScalar);
          hash.HashBatch(keys.data(), out_a.data(), n);
        },
        [&] {
          SetSimdLevelOverride(SimdLevel::kAvx2);
          hash.HashBatch(keys.data(), out_b.data(), n);
        },
        &scalar_s, &simd_s);
    ClearSimdLevelOverride();
    check_equal("tabulation");
    emit("tabulation", scalar_s, simd_s);
  }
  {
    PairwiseRangeHash hash(2719, 13);
    double scalar_s = 0.0;
    double simd_s = 0.0;
    MinSecondsAlternating(
        options.repeats,
        [&] {
          SetSimdLevelOverride(SimdLevel::kScalar);
          hash.HashBatch(keys.data(), out_a.data(), n);
        },
        [&] {
          SetSimdLevelOverride(SimdLevel::kAvx2);
          hash.HashBatch(keys.data(), out_b.data(), n);
        },
        &scalar_s, &simd_s);
    ClearSimdLevelOverride();
    check_equal("pairwise_range");
    emit("pairwise_range", scalar_s, simd_s);
  }
  {
    const KIndependentHash bucket_hash(2, 17);
    const KIndependentHash sign_hash(4, 19);
    const std::uint64_t width = 2048;
    const std::uint64_t barrett = ~std::uint64_t{0} / width;
    const std::uint64_t* bc = bucket_hash.coefficients().data();
    const std::uint64_t* sc = sign_hash.coefficients().data();
    std::vector<std::int64_t> signs_a(n);
    std::vector<std::int64_t> signs_b(n);
    double scalar_s = 0.0;
    double simd_s = 0.0;
    MinSecondsAlternating(
        options.repeats,
        [&] {
          // The count-sketch row's scalar twin: hoisted-coefficient
          // Horner for bucket (deg 1) and sign (deg 3), as in
          // CountSketch::UpdateBatch.
          for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t xr = keys[i] % kMersenne61;
            std::uint64_t b =
                ModMersenne61(static_cast<unsigned __int128>(bc[1]) * xr);
            b += bc[0];
            if (b >= kMersenne61) b -= kMersenne61;
            std::uint64_t s = sc[3];
            for (int c = 2; c >= 0; --c) {
              s = ModMersenne61(static_cast<unsigned __int128>(s) * xr) +
                  sc[c];
              if (s >= kMersenne61) s -= kMersenne61;
            }
            out_a[i] = BarrettMod(b, width, barrett);
            signs_a[i] = (s & 1) == 0 ? 1 : -1;
          }
        },
        [&] {
          simd::CountSketchRowHashBatchAvx2(bc, sc, width, barrett,
                                            keys.data(), out_b.data(),
                                            signs_b.data(), n);
        },
        &scalar_s, &simd_s);
    check_equal("count_sketch_row");
    if (signs_a != signs_b) std::exit(1);
    emit("count_sketch_row", scalar_s, simd_s);
  }
  {
    // The EH grid for eps = 0.1, cap 2^20 (the f6 sketch geometry), with
    // values drawn like the sketch rows' streams.
    const auto grid_holder =
        ExponentialHistogramEstimator::Create(0.1, 1u << 20).value();
    const std::vector<double>& powers_vec = grid_holder.grid().powers();
    const double* powers = powers_vec.data();
    const std::size_t levels = powers_vec.size();
    std::vector<std::uint64_t> values(n);
    for (auto& v : values) v = 1 + rng.UniformU64(1u << 20);
    double scalar_s = 0.0;
    double simd_s = 0.0;
    MinSecondsAlternating(
        options.repeats,
        [&] {
          // The scalar twin: the 4-wide branchless search from
          // ExponentialHistogramEstimator::AddBatch.
          std::size_t i = 0;
          for (; i + 4 <= n; i += 4) {
            const double x0 = static_cast<double>(values[i]);
            const double x1 = static_cast<double>(values[i + 1]);
            const double x2 = static_cast<double>(values[i + 2]);
            const double x3 = static_cast<double>(values[i + 3]);
            std::size_t b0 = 0;
            std::size_t b1 = 0;
            std::size_t b2 = 0;
            std::size_t b3 = 0;
            std::size_t len = levels;
            while (len > 1) {
              const std::size_t half = len >> 1;
              b0 += powers[b0 + half] <= x0 ? half : 0;
              b1 += powers[b1 + half] <= x1 ? half : 0;
              b2 += powers[b2 + half] <= x2 ? half : 0;
              b3 += powers[b3 + half] <= x3 ? half : 0;
              len -= half;
            }
            out_a[i] = b0;
            out_a[i + 1] = b1;
            out_a[i + 2] = b2;
            out_a[i + 3] = b3;
          }
          for (; i < n; ++i) {
            const double x = static_cast<double>(values[i]);
            std::size_t b = 0;
            std::size_t len = levels;
            while (len > 1) {
              const std::size_t half = len >> 1;
              b += powers[b + half] <= x ? half : 0;
              len -= half;
            }
            out_a[i] = b;
          }
        },
        [&] {
          simd::EhLevelSearchAvx2(powers, levels, values.data(),
                                  out_b.data(), n);
        },
        &scalar_s, &simd_s);
    check_equal("eh_level_search");
    emit("eh_level_search", scalar_s, simd_s);
  }
#else
  (void)options;
#endif
}

void RunMergeCache(const F6Options& options) {
  // Engine: 8 shards of fine-grained EH estimators (eps 0.01 so the
  // merged state is big enough that re-merging visibly costs), ingested
  // then quiesced; the cached merge is re-measured cold (after an
  // explicit invalidation — the same state a bumped shard epoch
  // produces) and warm. The timed region is the merged-estimator
  // acquisition alone: queries on top of it cost the same either way.
  using Engine =
      ShardedEngine<AggregateEngineTraits<ExponentialHistogramEstimator>>;
  EngineOptions engine_options;
  engine_options.num_shards = 8;
  auto engine = Engine::Create(engine_options, [&](std::size_t) {
                  return ExponentialHistogramEstimator::Create(0.01, 1u << 20)
                      .value();
                }).value();
  engine.Start();
  Rng rng(43);
  for (std::size_t i = 0; i < options.events; ++i) {
    engine.Ingest(1 + rng.UniformU64(1u << 20));
  }
  engine.Finish();

  const ExponentialHistogramEstimator* sink = nullptr;
  const double cold_s = MinSeconds(options.repeats, [&] {
    engine.InvalidateMergeCache();
    sink = &engine.MergedEstimatorCached();
  });
  const double warm_s = MinSeconds(options.repeats, [&] {
    sink = &engine.MergedEstimatorCached();
  });
  if (sink == nullptr || sink->Estimate() < 0.0) std::exit(1);
  std::printf(
      "BENCH{\"bench\":\"f6_merge_cache\",\"layer\":\"engine\","
      "\"shards\":%zu,\"events\":%zu,\"cold_ns\":%.0f,\"warm_ns\":%.0f,"
      "\"cold_over_warm\":%.1f,\"hits\":%llu,\"misses\":%llu}\n",
      engine_options.num_shards, options.events, cold_s * 1e9, warm_s * 1e9,
      warm_s > 0.0 ? cold_s / warm_s : 0.0,
      static_cast<unsigned long long>(engine.merge_cache_hits()),
      static_cast<unsigned long long>(engine.merge_cache_misses()));

  // Registry: the epoch-cached TopK. One Add between cold probes bumps
  // a stripe's board epoch, forcing the re-merge the way live ingest
  // does; the warm probe repeats the query with no epoch change.
  ServiceOptions service_options;
  service_options.num_stripes = 8;
  auto registry = TieredUserRegistry::Create(service_options).value();
  const std::size_t num_users = std::min<std::size_t>(options.events, 4096);
  for (std::size_t i = 0; i < num_users; ++i) {
    for (int e = 0; e < 4; ++e) {
      registry.Add(static_cast<AuthorId>(i), 1 + rng.UniformU64(100));
    }
  }
  const double topk_cold_s = MinSeconds(options.repeats, [&] {
    registry.Add(1, 1 + rng.UniformU64(100));  // bump one stripe's epoch
    if (registry.TopK(10).size() > 1u << 20) std::exit(1);
  });
  const double topk_warm_s = MinSeconds(options.repeats, [&] {
    if (registry.TopK(10).size() > 1u << 20) std::exit(1);
  });
  const RegistryStats stats = registry.Stats();
  std::printf(
      "BENCH{\"bench\":\"f6_merge_cache\",\"layer\":\"registry_topk\","
      "\"stripes\":%zu,\"users\":%zu,\"cold_ns\":%.0f,\"warm_ns\":%.0f,"
      "\"cold_over_warm\":%.1f,\"hits\":%llu,\"misses\":%llu}\n",
      service_options.num_stripes, num_users, topk_cold_s * 1e9,
      topk_warm_s * 1e9,
      topk_warm_s > 0.0 ? topk_cold_s / topk_warm_s : 0.0,
      static_cast<unsigned long long>(stats.topk_cache_hits),
      static_cast<unsigned long long>(stats.topk_cache_misses));
}

}  // namespace

int main(int argc, char** argv) {
  F6Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.events = 1 << 15;
      options.repeats = 3;
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      options.events = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      options.repeats = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_f6_hotpath [--quick] [--events N] "
                   "[--repeats R]\n");
      return 2;
    }
  }
  if (options.events < kChunk) options.events = kChunk;
  if (options.repeats < 1) options.repeats = 1;
  RunBatchVsScalar(options);
  RunSimdKernels(options);
  RunMergeCache(options);
  return 0;
}
