// F6 — Hot-path microbenchmarks for the batched ingest APIs and the
// epoch-cached merge-on-query path (docs/PERFORMANCE.md). Two families
// of BENCH{...} json lines:
//
//  * `f6_batch_vs_scalar` — per sketch, ns/event of the pre-PR hot path
//    (one call per event; through the virtual estimator interface where
//    one exists, since that is what generic callers used) against the
//    batched path (one `AddBatch`/`UpdateBatch` call per 1024-event
//    chunk on the concrete type), plus the speedup. Both sides ingest
//    the identical stream and the final estimates are cross-checked.
//  * `f6_merge_cache` — cold vs warm latency of the engine's
//    `MergedEstimatorCached()` and the registry's epoch-cached `TopK`:
//    cold re-merges because an epoch advanced (or the cache was
//    invalidated), warm serves the cached snapshot after a version
//    check. Reports the hit/miss counters so the cache is visibly
//    exercised.
//
//   ./bench_f6_hotpath [--quick] [--events N] [--repeats R]
//
// Timing is min-of-R wall clock (steady_clock) per measurement: the
// minimum is the least noisy estimator of the true cost on a shared
// machine. Run in Release/RelWithDebInfo for meaningful numbers.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "common/batch.h"
#include "core/cash_register.h"
#include "core/estimator.h"
#include "core/exponential_histogram.h"
#include "core/shifting_window.h"
#include "engine/sharded_engine.h"
#include "engine/traits.h"
#include "random/rng.h"
#include "service/registry.h"
#include "sketch/bjkst.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/distinct.h"
#include "sketch/hyperloglog.h"
#include "sketch/kll.h"
#include "sketch/l0_sampler.h"
#include "sketch/space_saving.h"
#include "stream/types.h"

namespace {

using namespace himpact;

constexpr std::size_t kChunk = 1024;

struct F6Options {
  std::size_t events = 1 << 18;
  int repeats = 5;
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Min-of-repeats wall clock of `fn()`, in seconds. `fn` must redo the
/// full measured work on every call (fresh estimator inside).
template <typename Fn>
double MinSeconds(int repeats, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double start = NowSeconds();
    fn();
    const double elapsed = NowSeconds() - start;
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

void EmitBatchLine(const char* sketch, std::size_t events, double scalar_s,
                   double batch_s) {
  const double scalar_ns = scalar_s * 1e9 / static_cast<double>(events);
  const double batch_ns = batch_s * 1e9 / static_cast<double>(events);
  std::printf(
      "BENCH{\"bench\":\"f6_batch_vs_scalar\",\"sketch\":\"%s\","
      "\"events\":%zu,\"chunk\":%zu,\"scalar_ns_per_event\":%.2f,"
      "\"batch_ns_per_event\":%.2f,\"speedup\":%.2f}\n",
      sketch, events, kChunk, scalar_ns, batch_ns,
      batch_ns > 0.0 ? scalar_ns / batch_ns : 0.0);
}

/// One batch-vs-scalar measurement. `make` builds a fresh estimator,
/// `scalar(est, value)` applies one event the pre-PR way, `batch(est,
/// span)` applies a chunk, and `probe` reads a result (cross-checked
/// between the two sides, and keeps the work observable).
template <typename Make, typename Scalar, typename Batch, typename Probe>
void RunBatchCase(const char* name, const F6Options& options,
                  const std::vector<std::uint64_t>& stream, Make make,
                  Scalar scalar, Batch batch, Probe probe) {
  double scalar_result = 0.0;
  const double scalar_s = MinSeconds(options.repeats, [&] {
    auto estimator = make();
    for (const std::uint64_t v : stream) scalar(estimator, v);
    scalar_result = probe(estimator);
  });
  double batch_result = 0.0;
  const double batch_s = MinSeconds(options.repeats, [&] {
    auto estimator = make();
    for (std::size_t i = 0; i < stream.size(); i += kChunk) {
      const std::size_t n = std::min(kChunk, stream.size() - i);
      batch(estimator, std::span<const std::uint64_t>(&stream[i], n));
    }
    batch_result = probe(estimator);
  });
  if (scalar_result != batch_result) {
    std::fprintf(stderr, "f6 %s: scalar/batch results diverge (%f vs %f)\n",
                 name, scalar_result, batch_result);
    std::exit(1);
  }
  EmitBatchLine(name, stream.size(), scalar_s, batch_s);
}

void RunBatchVsScalar(const F6Options& options) {
  Rng rng(17);
  std::vector<std::uint64_t> values;
  values.reserve(options.events);
  for (std::size_t i = 0; i < options.events; ++i) {
    values.push_back(1 + rng.UniformU64(1u << 20));
  }
  const std::uint64_t universe = 1 << 16;
  std::vector<std::uint64_t> keys;
  keys.reserve(options.events);
  for (std::size_t i = 0; i < options.events; ++i) {
    keys.push_back(rng.UniformU64(universe));
  }

  // Aggregate estimators with a virtual interface: the scalar side calls
  // through `AggregateHIndexEstimator&` — the pre-PR generic hot path.
  RunBatchCase(
      "exponential_histogram", options, values,
      [&] { return ExponentialHistogramEstimator::Create(0.1, 1u << 20).value(); },
      [](ExponentialHistogramEstimator& e, std::uint64_t v) {
        static_cast<AggregateHIndexEstimator&>(e).Add(v);
      },
      [](ExponentialHistogramEstimator& e,
         std::span<const std::uint64_t> chunk) { e.AddBatch(chunk); },
      [](ExponentialHistogramEstimator& e) { return e.Estimate(); });
  RunBatchCase(
      "shifting_window", options, values,
      [&] { return ShiftingWindowEstimator::Create(0.1).value(); },
      [](ShiftingWindowEstimator& e, std::uint64_t v) {
        static_cast<AggregateHIndexEstimator&>(e).Add(v);
      },
      [](ShiftingWindowEstimator& e, std::span<const std::uint64_t> chunk) {
        e.AddBatch(chunk);
      },
      [](ShiftingWindowEstimator& e) { return e.Estimate(); });

  // Plain sketches: scalar is one (cross-TU) call per event.
  RunBatchCase(
      "hyperloglog", options, keys, [&] { return HyperLogLog(12, 23); },
      [](HyperLogLog& e, std::uint64_t v) { e.Add(v); },
      [](HyperLogLog& e, std::span<const std::uint64_t> chunk) {
        e.AddBatch(chunk);
      },
      [](HyperLogLog& e) { return e.Estimate(); });
  RunBatchCase(
      "bjkst", options, keys, [&] { return BjkstDistinct(0.1, 29); },
      [](BjkstDistinct& e, std::uint64_t v) { e.Add(v); },
      [](BjkstDistinct& e, std::span<const std::uint64_t> chunk) {
        e.AddBatch(chunk);
      },
      [](BjkstDistinct& e) { return e.Estimate(); });
  RunBatchCase(
      "distinct_counter", options, keys,
      [&] { return DistinctCounter(0.1, 0.1, 43); },
      [](DistinctCounter& e, std::uint64_t v) { e.Add(v); },
      [](DistinctCounter& e, std::span<const std::uint64_t> chunk) {
        e.AddBatch(chunk.data(), chunk.size());
      },
      [](DistinctCounter& e) { return e.Estimate(); });
  RunBatchCase(
      "kll", options, values, [&] { return KllSketch(256, 31); },
      [](KllSketch& e, std::uint64_t v) { e.Add(v); },
      [](KllSketch& e, std::span<const std::uint64_t> chunk) {
        e.AddBatch(chunk);
      },
      [](KllSketch& e) { return e.Rank(1u << 19); });
  RunBatchCase(
      "count_min", options, keys,
      [&] { return CountMinSketch(0.001, 0.01, 37); },
      [](CountMinSketch& e, std::uint64_t v) { e.Update(v, 1); },
      [](CountMinSketch& e, std::span<const std::uint64_t> chunk) {
        e.UpdateBatch(chunk);
      },
      [](CountMinSketch& e) { return static_cast<double>(e.Query(7)); });
  RunBatchCase(
      "count_sketch", options, keys, [&] { return CountSketch(2048, 5, 41); },
      [](CountSketch& e, std::uint64_t v) { e.Update(v, 1); },
      [](CountSketch& e, std::span<const std::uint64_t> chunk) {
        e.UpdateBatch(chunk);
      },
      [](CountSketch& e) { return static_cast<double>(e.Query(7)); });
  RunBatchCase(
      "space_saving", options, keys, [&] { return SpaceSaving(256); },
      [](SpaceSaving& e, std::uint64_t v) { e.Update(v, 1); },
      [](SpaceSaving& e, std::span<const std::uint64_t> chunk) {
        e.UpdateBatch(chunk);
      },
      [](SpaceSaving& e) { return static_cast<double>(e.total()); });

  // Cash-register estimator: scalar through the virtual interface,
  // batch through `UpdateBatch` with a caller-owned arena (the engine's
  // exact calling convention).
  {
    // A deliberately bounded sampler count: the default geometry makes
    // each update cost hundreds of microseconds, which measures the same
    // loops at benchmark-hostile runtimes. 32 samplers keep the shape
    // (sampler-outer locality is what the batch path buys) and the run
    // finite; the stream is trimmed to match.
    const std::size_t cr_events = std::min<std::size_t>(keys.size(), 1 << 14);
    std::vector<CitationEvent> events;
    events.reserve(cr_events);
    for (std::size_t i = 0; i < cr_events; ++i) {
      events.push_back(CitationEvent{keys[i], 1});
    }
    CashRegisterOptions cr_options;
    cr_options.num_samplers_override = 32;
    const auto make = [&] {
      return CashRegisterEstimator::Create(0.2, 0.1, universe, 13, cr_options)
          .value();
    };
    double scalar_result = 0.0;
    const double scalar_s = MinSeconds(options.repeats, [&] {
      auto estimator = make();
      CashRegisterHIndexEstimator& base = estimator;
      for (const CitationEvent& event : events) {
        base.Update(event.paper, event.delta);
      }
      scalar_result = estimator.Estimate();
    });
    BatchArena arena;
    double batch_result = 0.0;
    const double batch_s = MinSeconds(options.repeats, [&] {
      auto estimator = make();
      for (std::size_t i = 0; i < events.size(); i += kChunk) {
        const std::size_t n = std::min(kChunk, events.size() - i);
        estimator.UpdateBatch(std::span<const CitationEvent>(&events[i], n),
                              arena);
      }
      batch_result = estimator.Estimate();
    });
    if (scalar_result != batch_result) {
      std::fprintf(stderr,
                   "f6 cash_register: scalar/batch results diverge\n");
      std::exit(1);
    }
    EmitBatchLine("cash_register", events.size(), scalar_s, batch_s);
  }
}

void RunMergeCache(const F6Options& options) {
  // Engine: 8 shards of fine-grained EH estimators (eps 0.01 so the
  // merged state is big enough that re-merging visibly costs), ingested
  // then quiesced; the cached merge is re-measured cold (after an
  // explicit invalidation — the same state a bumped shard epoch
  // produces) and warm. The timed region is the merged-estimator
  // acquisition alone: queries on top of it cost the same either way.
  using Engine =
      ShardedEngine<AggregateEngineTraits<ExponentialHistogramEstimator>>;
  EngineOptions engine_options;
  engine_options.num_shards = 8;
  auto engine = Engine::Create(engine_options, [&](std::size_t) {
                  return ExponentialHistogramEstimator::Create(0.01, 1u << 20)
                      .value();
                }).value();
  engine.Start();
  Rng rng(43);
  for (std::size_t i = 0; i < options.events; ++i) {
    engine.Ingest(1 + rng.UniformU64(1u << 20));
  }
  engine.Finish();

  const ExponentialHistogramEstimator* sink = nullptr;
  const double cold_s = MinSeconds(options.repeats, [&] {
    engine.InvalidateMergeCache();
    sink = &engine.MergedEstimatorCached();
  });
  const double warm_s = MinSeconds(options.repeats, [&] {
    sink = &engine.MergedEstimatorCached();
  });
  if (sink == nullptr || sink->Estimate() < 0.0) std::exit(1);
  std::printf(
      "BENCH{\"bench\":\"f6_merge_cache\",\"layer\":\"engine\","
      "\"shards\":%zu,\"events\":%zu,\"cold_ns\":%.0f,\"warm_ns\":%.0f,"
      "\"cold_over_warm\":%.1f,\"hits\":%llu,\"misses\":%llu}\n",
      engine_options.num_shards, options.events, cold_s * 1e9, warm_s * 1e9,
      warm_s > 0.0 ? cold_s / warm_s : 0.0,
      static_cast<unsigned long long>(engine.merge_cache_hits()),
      static_cast<unsigned long long>(engine.merge_cache_misses()));

  // Registry: the epoch-cached TopK. One Add between cold probes bumps
  // a stripe's board epoch, forcing the re-merge the way live ingest
  // does; the warm probe repeats the query with no epoch change.
  ServiceOptions service_options;
  service_options.num_stripes = 8;
  auto registry = TieredUserRegistry::Create(service_options).value();
  const std::size_t num_users = std::min<std::size_t>(options.events, 4096);
  for (std::size_t i = 0; i < num_users; ++i) {
    for (int e = 0; e < 4; ++e) {
      registry.Add(static_cast<AuthorId>(i), 1 + rng.UniformU64(100));
    }
  }
  const double topk_cold_s = MinSeconds(options.repeats, [&] {
    registry.Add(1, 1 + rng.UniformU64(100));  // bump one stripe's epoch
    if (registry.TopK(10).size() > 1u << 20) std::exit(1);
  });
  const double topk_warm_s = MinSeconds(options.repeats, [&] {
    if (registry.TopK(10).size() > 1u << 20) std::exit(1);
  });
  const RegistryStats stats = registry.Stats();
  std::printf(
      "BENCH{\"bench\":\"f6_merge_cache\",\"layer\":\"registry_topk\","
      "\"stripes\":%zu,\"users\":%zu,\"cold_ns\":%.0f,\"warm_ns\":%.0f,"
      "\"cold_over_warm\":%.1f,\"hits\":%llu,\"misses\":%llu}\n",
      service_options.num_stripes, num_users, topk_cold_s * 1e9,
      topk_warm_s * 1e9,
      topk_warm_s > 0.0 ? topk_cold_s / topk_warm_s : 0.0,
      static_cast<unsigned long long>(stats.topk_cache_hits),
      static_cast<unsigned long long>(stats.topk_cache_misses));
}

}  // namespace

int main(int argc, char** argv) {
  F6Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.events = 1 << 15;
      options.repeats = 3;
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      options.events = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      options.repeats = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_f6_hotpath [--quick] [--events N] "
                   "[--repeats R]\n");
      return 2;
    }
  }
  if (options.events < kChunk) options.events = kChunk;
  if (options.repeats < 1) options.repeats = 1;
  RunBatchVsScalar(options);
  RunMergeCache(options);
  return 0;
}
