// A2 — Ablation: Algorithm 8's grid dimensions. Theorem 18 uses
// l = 2/eps^2 buckets (isolation of heavy authors via Markov + pairwise
// hashing) and x = log(1/(eps delta)) rows (independent repetitions).
// Sweeping each dimension down shows recall degrading — the constants
// are not slack.

#include <cstdio>
#include <vector>

#include "eval/metrics.h"
#include "eval/table.h"
#include "heavy/baseline.h"
#include "heavy/heavy_hitters.h"
#include "random/rng.h"
#include "workload/academic.h"

namespace {

using namespace himpact;

double MeanRecall(std::size_t buckets, std::size_t rows, int trials,
                  Rng& rng) {
  double recall_sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    AcademicConfig config;
    config.num_authors = 400;
    config.max_papers = 8;
    config.citation_mu = 0.4;
    config.citation_sigma = 1.0;
    const std::vector<PlantedAuthor> stars = {
        {900001, 130, 130}, {900002, 110, 110}, {900003, 95, 95}};
    const PaperStream papers = MakeAcademicCorpus(config, stars, rng);

    HeavyHitters::Options options;
    options.eps = 0.2;
    options.delta = 0.05;
    options.max_papers = 1u << 16;
    options.num_buckets_override = buckets;
    options.num_rows_override = rows;
    auto sketch =
        HeavyHitters::Create(options, static_cast<std::uint64_t>(t) * 61 + 19)
            .value();
    for (const PaperTuple& paper : papers) sketch.AddPaper(paper);

    std::vector<std::uint64_t> reported;
    for (const HeavyHitterReport& report : sketch.Report()) {
      reported.push_back(report.author);
    }
    recall_sum += CompareSets(reported, {900001, 900002, 900003}).recall;
  }
  return recall_sum / trials;
}

}  // namespace

int main() {
  const int trials = 8;
  std::printf("A2: Algorithm 8 grid ablation (3 planted stars, eps = 0.2, "
              "%d trials per cell)\n\n",
              trials);
  std::printf("theorem values: l = 2/eps^2 = 50 buckets, "
              "x = log2(1/(eps*delta)) = 7 rows\n\n");

  Rng rng(14);
  Table table({"buckets l", "rows x", "cells", "mean recall"});
  for (const std::size_t buckets : {2ull, 8ull, 20ull, 50ull}) {
    for (const std::size_t rows : {1ull, 3ull, 7ull}) {
      table.NewRow()
          .Cell(static_cast<std::uint64_t>(buckets))
          .Cell(static_cast<std::uint64_t>(rows))
          .Cell(static_cast<std::uint64_t>(buckets * rows))
          .Cell(MeanRecall(buckets, rows, trials, rng), 3);
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: recall rises toward 1.0 with more buckets (less\n"
      "inter-author collision noise) and more rows (more chances for a\n"
      "clean bucket); tiny grids (2 buckets) cram all stars together and\n"
      "the 1-HH detectors reject the mixed sub-streams.\n");
  return 0;
}
