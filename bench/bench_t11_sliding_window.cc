// T11 — Sliding-window H-index (the Section 5 "publication dates"
// extension): accuracy of the DGIM-based windowed estimator against the
// exact H-index of the trailing window, and its space against buffering
// the window, over a non-stationary stream (a career with a hot streak
// and a decline).

#include <cstdio>
#include <deque>
#include <vector>

#include "core/exact.h"
#include "core/sliding_window_hindex.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "random/rng.h"
#include "random/zipf.h"

namespace {

using namespace himpact;

std::uint64_t ExactWindowedH(const std::deque<std::uint64_t>& window) {
  return ExactHIndex(
      std::vector<std::uint64_t>(window.begin(), window.end()));
}

}  // namespace

int main() {
  const std::uint64_t window = 2000;
  const double eps = 0.15;
  std::printf("T11: sliding-window H-index, window = %llu, eps = %.2f\n\n",
              static_cast<unsigned long long>(window), eps);

  // Non-stationary career: cold start, hot streak, decline.
  Rng rng(15);
  std::vector<std::uint64_t> stream;
  const ZipfSampler cold(50, 1.3);
  const ZipfSampler hot(5000, 1.1);
  for (int i = 0; i < 4000; ++i) stream.push_back(cold.Sample(rng));
  for (int i = 0; i < 4000; ++i) stream.push_back(hot.Sample(rng));
  for (int i = 0; i < 4000; ++i) stream.push_back(cold.Sample(rng));

  auto estimator = SlidingWindowHIndex::Create(eps, window).value();
  std::deque<std::uint64_t> exact_window;
  Table table({"position", "phase", "exact windowed h", "estimate",
               "rel err"});
  std::size_t position = 0;
  for (const std::uint64_t v : stream) {
    estimator.Add(v);
    exact_window.push_front(v);
    if (exact_window.size() > window) exact_window.pop_back();
    ++position;
    if (position % 2000 == 0) {
      const double truth = static_cast<double>(ExactWindowedH(exact_window));
      const char* phase = position <= 4000   ? "cold"
                          : position <= 8000 ? "hot"
                                             : "decline";
      table.NewRow()
          .Cell(static_cast<std::uint64_t>(position))
          .Cell(phase)
          .Cell(truth, 0)
          .Cell(estimator.Estimate(), 1)
          .Cell(RelativeError(estimator.Estimate(), truth), 4);
    }
  }
  table.Print();

  std::printf("\nspace: %llu words (vs %llu words to buffer the window)\n",
              static_cast<unsigned long long>(
                  estimator.EstimateSpace().words),
              static_cast<unsigned long long>(window));

  // Space-vs-window sweep: the DGIM state is polylog in the window, so
  // buffering loses once the window outgrows the constant.
  std::printf("\nspace vs window (eps = 0.2, uniform values):\n");
  Table space_table({"window", "sketch words", "buffer words"});
  for (const std::uint64_t w : {1ull << 12, 1ull << 14, 1ull << 16,
                                1ull << 18}) {
    auto sweep = SlidingWindowHIndex::Create(0.2, w).value();
    Rng sweep_rng(w);
    for (std::uint64_t i = 0; i < w; ++i) {
      sweep.Add(sweep_rng.UniformU64(w));
    }
    space_table.NewRow()
        .Cell(w)
        .Cell(sweep.EstimateSpace().words)
        .Cell(w);
  }
  space_table.Print();

  std::printf(
      "\nexpected shape: the estimate tracks the windowed truth through\n"
      "the hot streak AND back down in the decline (a whole-stream\n"
      "H-index can never decrease); rel err stays within ~eps. The sketch\n"
      "words grow ~logarithmically with the window and cross below the\n"
      "buffer around window ~2^15.\n");
  return 0;
}
