// F5 — Overload and recovery harness for the fault-tolerance layer
// (src/fault/, docs/ROBUSTNESS.md). Two phases, both emitting BENCH
// json lines:
//
//  * Ramp: closed-loop worker counts climb past the admission gate's
//    --max-inflight watermark. Per stage we report sustained qps, the
//    shed rate (RESOURCE_EXHAUSTED per offered op), deadline misses,
//    and client-observed p50/p99 latency. The design claim under test:
//    past saturation, admitted-op p99 stays flat and the excess load is
//    shed explicitly instead of queueing into latency collapse.
//
//  * Recovery: a fresh single-stripe service takes a 500ms injected
//    worker stall (FaultPoint::kWorkerStall wedges the stripe mutex)
//    under steady load; completions are bucketed to measure how long
//    throughput takes to return to steady state after the stall clears.
//
//   ./bench_f5_overload                            # full sizing
//   ./bench_f5_overload --stage-ms 200 --stall-ms 150   # quick/CI sizing
//
// Run in Release for meaningful numbers; the shed-rate and recovery
// numbers are meaningful in any build.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "fault/fault.h"
#include "random/rng.h"
#include "random/zipf.h"
#include "service/service.h"

namespace {

using namespace himpact;
using Clock = std::chrono::steady_clock;

struct HarnessOptions {
  std::uint64_t users = 1u << 16;
  std::uint64_t stage_ms = 1000;       // wall time per ramp stage
  std::uint64_t max_inflight = 4;      // admission watermark under ramp
  std::uint64_t deadline_us = 2000;    // per-op deadline under ramp
  std::uint64_t stall_ms = 500;        // injected stall in the recovery phase
  std::uint64_t recovery_ms = 2000;    // wall time of the recovery phase
  std::uint64_t stripes = 8;
  std::uint64_t seed = 2017;
};

bool ParseArgs(int argc, char** argv, HarnessOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_text = [&](const char** out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return false;
      }
      *out = argv[++i];
      return true;
    };
    const char* text = nullptr;
    if (arg == "--users") {
      if (!next_text(&text) ||
          !ParseUint64FlagInRange("--users", text, 1, 1ull << 40,
                                  &options->users))
        return false;
    } else if (arg == "--stage-ms") {
      if (!next_text(&text) ||
          !ParseUint64FlagInRange("--stage-ms", text, 50, 600000,
                                  &options->stage_ms))
        return false;
    } else if (arg == "--max-inflight") {
      if (!next_text(&text) ||
          !ParseUint64FlagInRange("--max-inflight", text, 1, 4096,
                                  &options->max_inflight))
        return false;
    } else if (arg == "--deadline-us") {
      if (!next_text(&text) ||
          !ParseUint64Flag("--deadline-us", text, &options->deadline_us))
        return false;
    } else if (arg == "--stall-ms") {
      if (!next_text(&text) ||
          !ParseUint64FlagInRange("--stall-ms", text, 10, 60000,
                                  &options->stall_ms))
        return false;
    } else if (arg == "--recovery-ms") {
      if (!next_text(&text) ||
          !ParseUint64FlagInRange("--recovery-ms", text, 100, 600000,
                                  &options->recovery_ms))
        return false;
    } else if (arg == "--stripes") {
      if (!next_text(&text) ||
          !ParseUint64FlagInRange("--stripes", text, 1, 4096,
                                  &options->stripes))
        return false;
    } else if (arg == "--seed") {
      if (!next_text(&text) ||
          !ParseUint64Flag("--seed", text, &options->seed))
        return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

double QuantileMicros(std::vector<double>& sorted_micros, double q) {
  if (sorted_micros.empty()) return 0.0;
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_micros.size() - 1));
  return sorted_micros[index];
}

// One ramp stage: `threads` closed-loop workers hammer Try* ops until
// the deadline. Shed ops are retried after a short client-side pause
// (a real client's backoff), and every op's client-observed latency is
// recorded — including the shed ones, which is the point: shedding must
// be cheap.
struct StageResult {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_missed = 0;
  std::vector<double> latencies_us;
};

StageResult RunStage(HImpactService& service, const HarnessOptions& options,
                     std::uint64_t threads) {
  std::vector<StageResult> per_thread(threads);
  std::vector<std::thread> workers;
  const Clock::time_point stop =
      Clock::now() + std::chrono::milliseconds(options.stage_ms);
  for (std::uint64_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      StageResult& mine = per_thread[t];
      Rng rng(options.seed * 2654435761u + t);
      const ZipfSampler user_sampler(options.users, 1.1);
      while (Clock::now() < stop) {
        const AuthorId user = user_sampler.Sample(rng);
        const Clock::time_point begin = Clock::now();
        StatusOr<double> result =
            service.TryRecordResponseCount(user, 1 + rng.UniformU64(50));
        const double micros =
            std::chrono::duration<double, std::micro>(Clock::now() - begin)
                .count();
        ++mine.offered;
        mine.latencies_us.push_back(micros);
        if (result.ok()) {
          ++mine.admitted;
        } else if (result.status().code() ==
                   StatusCode::kResourceExhausted) {
          ++mine.shed;
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        } else if (result.status().code() ==
                   StatusCode::kDeadlineExceeded) {
          ++mine.deadline_missed;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  StageResult total;
  for (StageResult& part : per_thread) {
    total.offered += part.offered;
    total.admitted += part.admitted;
    total.shed += part.shed;
    total.deadline_missed += part.deadline_missed;
    total.latencies_us.insert(total.latencies_us.end(),
                              part.latencies_us.begin(),
                              part.latencies_us.end());
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  return total;
}

int RunRamp(const HarnessOptions& options) {
  ServiceOptions service_options;
  service_options.num_stripes = static_cast<std::size_t>(options.stripes);
  service_options.enable_heavy_hitters = false;
  service_options.seed = options.seed;
  OverloadOptions overload;
  overload.max_inflight = options.max_inflight;
  overload.op_deadline_nanos = options.deadline_us * 1000;
  auto service_or = HImpactService::Create(service_options, overload);
  if (!service_or.ok()) {
    std::fprintf(stderr, "%s\n", service_or.status().ToString().c_str());
    return 1;
  }
  HImpactService service = std::move(service_or).value();

  const std::uint64_t ramp[] = {1, 2, 4, 8, 16};
  for (const std::uint64_t threads : ramp) {
    StageResult stage = RunStage(service, options, threads);
    const double seconds = static_cast<double>(options.stage_ms) / 1000.0;
    const double shed_rate =
        stage.offered == 0
            ? 0.0
            : static_cast<double>(stage.shed) /
                  static_cast<double>(stage.offered);
    std::printf(
        "BENCH{\"bench\":\"f5_overload_ramp\",\"threads\":%llu,"
        "\"max_inflight\":%llu,\"deadline_us\":%llu,\"stage_ms\":%llu,"
        "\"offered\":%llu,\"admitted\":%llu,\"shed\":%llu,"
        "\"deadline_missed\":%llu,\"shed_rate\":%.4f,"
        "\"admitted_qps\":%.0f,\"client_p50_us\":%.2f,"
        "\"client_p99_us\":%.2f}\n",
        static_cast<unsigned long long>(threads),
        static_cast<unsigned long long>(options.max_inflight),
        static_cast<unsigned long long>(options.deadline_us),
        static_cast<unsigned long long>(options.stage_ms),
        static_cast<unsigned long long>(stage.offered),
        static_cast<unsigned long long>(stage.admitted),
        static_cast<unsigned long long>(stage.shed),
        static_cast<unsigned long long>(stage.deadline_missed), shed_rate,
        static_cast<double>(stage.admitted) / seconds,
        QuantileMicros(stage.latencies_us, 0.5),
        QuantileMicros(stage.latencies_us, 0.99));
  }
  return 0;
}

// Recovery phase: a single-stripe service (so the stall blocks every
// writer, worst case) takes one kWorkerStall of --stall-ms at the start
// of the load window. Completion timestamps are bucketed; recovery time
// is the end of the last bucket whose throughput is under half the
// steady-state (second-half median) rate.
int RunRecovery(const HarnessOptions& options) {
  ServiceOptions service_options;
  service_options.num_stripes = 1;
  service_options.enable_heavy_hitters = false;
  service_options.seed = options.seed;
  auto service_or = HImpactService::Create(service_options);
  if (!service_or.ok()) {
    std::fprintf(stderr, "%s\n", service_or.status().ToString().c_str());
    return 1;
  }
  HImpactService service = std::move(service_or).value();

  const std::string spec = std::string(FaultRegistry::Name(
                               FaultPoint::kWorkerStall)) +
                           ":0:1:" + std::to_string(options.stall_ms * 1000);
  const Status armed = FaultRegistry::Global().ArmFromText(spec);
  if (!armed.ok()) {
    std::fprintf(stderr, "%s\n", armed.ToString().c_str());
    return 1;
  }

  constexpr std::uint64_t kBinMs = 20;
  constexpr std::uint64_t kThreads = 2;
  std::vector<std::vector<double>> offsets(kThreads);
  std::vector<double> max_latency(kThreads, 0.0);
  std::vector<std::thread> workers;
  const Clock::time_point start = Clock::now();
  const Clock::time_point stop =
      start + std::chrono::milliseconds(options.recovery_ms);
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(options.seed * 40503u + t);
      const ZipfSampler user_sampler(options.users, 1.1);
      while (Clock::now() < stop) {
        const Clock::time_point begin = Clock::now();
        service.RecordResponseCount(user_sampler.Sample(rng),
                                    1 + rng.UniformU64(50));
        const Clock::time_point end = Clock::now();
        const double latency_ms =
            std::chrono::duration<double, std::milli>(end - begin).count();
        max_latency[t] = std::max(max_latency[t], latency_ms);
        offsets[t].push_back(
            std::chrono::duration<double, std::milli>(end - start).count());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  FaultRegistry::Global().Reset();

  const std::size_t num_bins =
      static_cast<std::size_t>(options.recovery_ms / kBinMs) + 1;
  std::vector<std::uint64_t> bins(num_bins, 0);
  std::uint64_t completions = 0;
  double worst_latency_ms = 0.0;
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    worst_latency_ms = std::max(worst_latency_ms, max_latency[t]);
    for (const double offset_ms : offsets[t]) {
      const std::size_t bin = static_cast<std::size_t>(offset_ms / kBinMs);
      if (bin < num_bins) ++bins[bin];
      ++completions;
    }
  }

  // Steady rate: median bucket of the second half of the window, which
  // is past any plausible stall + catch-up.
  std::vector<std::uint64_t> tail(bins.begin() + num_bins / 2, bins.end());
  std::sort(tail.begin(), tail.end());
  const std::uint64_t steady = tail.empty() ? 0 : tail[tail.size() / 2];
  std::size_t last_depressed = 0;
  bool saw_dip = false;
  for (std::size_t bin = 0; bin < num_bins / 2; ++bin) {
    if (bins[bin] < steady / 2) {
      last_depressed = bin;
      saw_dip = true;
    }
  }
  const double recovery_time_ms =
      saw_dip ? static_cast<double>((last_depressed + 1) * kBinMs) : 0.0;

  std::printf(
      "BENCH{\"bench\":\"f5_overload_recovery\",\"stall_ms\":%llu,"
      "\"window_ms\":%llu,\"completions\":%llu,"
      "\"steady_per_bin\":%llu,\"bin_ms\":%llu,"
      "\"recovery_time_ms\":%.0f,\"worst_op_latency_ms\":%.1f,"
      "\"stall_fired\":%s}\n",
      static_cast<unsigned long long>(options.stall_ms),
      static_cast<unsigned long long>(options.recovery_ms),
      static_cast<unsigned long long>(completions),
      static_cast<unsigned long long>(steady),
      static_cast<unsigned long long>(kBinMs), recovery_time_ms,
      worst_latency_ms,
      FaultRegistry::Global().fires(FaultPoint::kWorkerStall) > 0 ||
              worst_latency_ms >= static_cast<double>(options.stall_ms)
          ? "true"
          : "false");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  HarnessOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    std::fprintf(stderr,
                 "usage: bench_f5_overload [--users N] [--stage-ms MS] "
                 "[--max-inflight N]\n"
                 "                         [--deadline-us U] [--stall-ms MS] "
                 "[--recovery-ms MS]\n"
                 "                         [--stripes P] [--seed S]\n");
    return 2;
  }
  const int ramp_status = RunRamp(options);
  if (ramp_status != 0) return ramp_status;
  return RunRecovery(options);
}
