// bench_f8_wire: text vs binary wire-protocol framing cost
// (docs/PROTOCOL.md, docs/BENCHMARKS.md).
//
// The question PR 7 asks: how much CPU does the length-prefixed binary
// protocol save over the text line protocol for the service's small
// fixed-shape requests? Both protocols are pumped through the real
// per-connection framing (`Connection::NextLine` / `NextFrame` on
// pre-generated request byte streams) and the real codecs
// (ParseCommandLine/FormatTextReply vs DecodeRequestFrame/
// EncodeReplyFrame), entirely in memory — no sockets, so the numbers
// isolate the protocol layer instead of drowning it in syscalls.
//
// Two measurement modes per batch depth:
//
//   * framing  — dispatch is a stub that fills a canned CommandResult,
//     so the text-vs-binary delta is pure protocol cost. This is the
//     headline number: the acceptance gate is binary >= 1.5x text
//     request throughput at batch depth 1.
//   * end_to_end — dispatch is a real HImpactService via
//     ServiceSession::HandleLine / HandleFrame, for an honest view of
//     how much of a full request the protocol layer is.
//
// Batch depth = requests appended to the connection buffer before the
// pump runs (client-side pipelining). Depth 1 is the request/reply
// ping-pong shape; deeper batches amortize the per-wakeup costs.
//
// Emits one BENCH{...} json line per (mode, protocol, depth), plus a
// speedup line per (mode, depth):
//
//   ./bench_f8_wire [--quick] [--requests N] [--repeats R]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/flags.h"
#include "net/connection.h"
#include "net/wire.h"
#include "service/protocol.h"
#include "service/service.h"
#include "service/session.h"

namespace himpact {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double MinSeconds(int repeats, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double start = NowSeconds();
    fn();
    const double elapsed = NowSeconds() - start;
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

struct F8Options {
  std::size_t requests = 200000;
  int repeats = 5;
};

/// The request mix: mostly `add`, with periodic `get` and `top` — the
/// point-query shape the service is built for (f4/f7 use the same mix).
std::vector<Command> MakeWorkload(std::size_t requests) {
  std::vector<Command> commands;
  commands.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    Command command;
    if (i % 10 == 9) {
      command.kind = CommandKind::kGet;
      command.user = i % 512;
    } else if (i % 100 == 57) {
      command.kind = CommandKind::kTop;
      command.value = 8;
    } else {
      command.kind = CommandKind::kAdd;
      command.user = i % 512;
      command.value = 1 + i % 7;
    }
    commands.push_back(command);
  }
  return commands;
}

/// Renders a command as its text-protocol line (what a text client
/// sends). Only the three workload verbs are needed.
std::string TextLine(const Command& command) {
  switch (command.kind) {
    case CommandKind::kAdd:
      return "add " + std::to_string(command.user) + " " +
             std::to_string(command.value) + "\n";
    case CommandKind::kGet:
      return "get " + std::to_string(command.user) + "\n";
    default:
      return "top " + std::to_string(command.value) + "\n";
  }
}

/// Pre-rendered request byte stream, one blob per batch: `depth`
/// requests per blob (the bytes one pipelining client would have on
/// the wire before waiting for replies).
std::vector<std::string> RenderBatches(const std::vector<Command>& workload,
                                       std::size_t depth, bool binary) {
  std::vector<std::string> batches;
  batches.reserve(workload.size() / depth + 1);
  std::string blob;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    blob += binary ? EncodeRequestFrame(workload[i]) : TextLine(workload[i]);
    if ((i + 1) % depth == 0) {
      batches.push_back(std::move(blob));
      blob.clear();
    }
  }
  if (!blob.empty()) batches.push_back(std::move(blob));
  return batches;
}

/// One server-side pump over the pre-rendered batches: append a batch,
/// extract every request, dispatch, encode the reply. Returns a byte
/// checksum so no stage can be optimized away. `handle(line_or_frame,
/// reply)` is the dispatch under test.
template <typename Handle>
std::uint64_t Pump(const std::vector<std::string>& batches, bool binary,
                   Handle&& handle) {
  const ConnectionLimits limits;
  Connection conn(UniqueFd(), 0);
  std::string request;
  std::string reply;
  std::uint64_t checksum = 0;
  for (const std::string& batch : batches) {
    conn.AppendInput(batch.data(), batch.size(), 0);
    for (;;) {
      if (binary) {
        if (conn.NextFrame(limits, &request) != FrameResult::kFrame) break;
      } else {
        if (conn.NextLine(limits, &request) != LineResult::kLine) break;
      }
      reply.clear();
      handle(request, &reply);
      checksum += reply.size() +
                  static_cast<unsigned char>(reply.empty() ? 0 : reply[0]);
    }
  }
  return checksum;
}

void EmitLine(const char* mode, const char* protocol, std::size_t depth,
              std::size_t requests, double seconds) {
  std::printf(
      "BENCH{\"bench\":\"f8_wire\",\"mode\":\"%s\",\"protocol\":\"%s\","
      "\"depth\":%zu,\"requests\":%zu,\"ns_per_request\":%.2f,"
      "\"requests_per_sec\":%.0f}\n",
      mode, protocol, depth, requests,
      seconds * 1e9 / static_cast<double>(requests),
      static_cast<double>(requests) / seconds);
}

void EmitSpeedup(const char* mode, std::size_t depth, double text_s,
                 double binary_s) {
  std::printf(
      "BENCH{\"bench\":\"f8_wire_speedup\",\"mode\":\"%s\",\"depth\":%zu,"
      "\"binary_vs_text\":%.2f}\n",
      mode, depth, binary_s > 0.0 ? text_s / binary_s : 0.0);
}

/// Framing mode: stub dispatch, identical for both protocols, so the
/// measured delta is the protocol layer alone. The stub still fills the
/// CommandResult fields a real reply would carry.
void RunFraming(const F8Options& options, const std::vector<Command>& workload,
                std::size_t depth) {
  const auto dispatch = [](const Command& command, CommandResult* result) {
    *result = CommandResult{};
    result->kind = command.kind;
    switch (command.kind) {
      case CommandKind::kAdd:
        result->estimate = static_cast<double>(command.value);
        break;
      case CommandKind::kGet:
        result->user = command.user;
        result->estimate = 2.0;
        result->tier = 0;
        result->events = 3;
        break;
      default:
        result->stripes_skipped = 0;
        result->entries = {{7, 3.0}, {11, 2.0}};
        break;
    }
  };

  const std::vector<std::string> text = RenderBatches(workload, depth, false);
  const std::vector<std::string> binary = RenderBatches(workload, depth, true);
  std::uint64_t text_sum = 0;
  std::uint64_t binary_sum = 0;
  const double text_s = MinSeconds(options.repeats, [&] {
    text_sum = Pump(text, false, [&](const std::string& line,
                                     std::string* reply) {
      StatusOr<Command> parsed = ParseCommandLine(line);
      CommandResult result;
      dispatch(parsed.value(), &result);
      *reply = FormatTextReply(result);
    });
  });
  const double binary_s = MinSeconds(options.repeats, [&] {
    binary_sum = Pump(binary, true, [&](const std::string& frame,
                                        std::string* reply) {
      StatusOr<Command> decoded = DecodeRequestFrame(frame);
      CommandResult result;
      dispatch(decoded.value(), &result);
      *reply = EncodeReplyFrame(result);
    });
  });
  if (text_sum == 0 || binary_sum == 0) {
    std::fprintf(stderr, "empty pump — bench invalid\n");
  }
  EmitLine("framing", "text", depth, workload.size(), text_s);
  EmitLine("framing", "binary", depth, workload.size(), binary_s);
  EmitSpeedup("framing", depth, text_s, binary_s);
}

/// End-to-end mode: the same pumps, but dispatch is a real service via
/// the real session (a fresh one per repeat so growth doesn't compound
/// across measurements).
void RunEndToEnd(const F8Options& options,
                 const std::vector<Command>& workload, std::size_t depth) {
  ServiceOptions service_options;
  service_options.num_stripes = 2;
  OverloadOptions overload;
  const std::vector<std::string> text = RenderBatches(workload, depth, false);
  const std::vector<std::string> binary = RenderBatches(workload, depth, true);

  const double text_s = MinSeconds(options.repeats, [&] {
    auto service_or = HImpactService::Create(service_options, overload);
    ServiceSession session(&service_or.value(), SessionOptions{});
    Pump(text, false, [&](const std::string& line, std::string* reply) {
      session.HandleLine(line, reply);
    });
  });
  const double binary_s = MinSeconds(options.repeats, [&] {
    auto service_or = HImpactService::Create(service_options, overload);
    ServiceSession session(&service_or.value(), SessionOptions{});
    Pump(binary, true, [&](const std::string& frame, std::string* reply) {
      session.HandleFrame(frame, reply);
    });
  });
  EmitLine("end_to_end", "text", depth, workload.size(), text_s);
  EmitLine("end_to_end", "binary", depth, workload.size(), binary_s);
  EmitSpeedup("end_to_end", depth, text_s, binary_s);
}

}  // namespace
}  // namespace himpact

int main(int argc, char** argv) {
  himpact::F8Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t u64 = 0;
    if (arg == "--quick") {
      options.requests = 20000;
      options.repeats = 2;
    } else if (arg == "--requests" && i + 1 < argc) {
      if (!himpact::ParseUint64FlagInRange("--requests", argv[++i], 1000,
                                           1u << 28, &u64))
        return 2;
      options.requests = static_cast<std::size_t>(u64);
    } else if (arg == "--repeats" && i + 1 < argc) {
      if (!himpact::ParseUint64FlagInRange("--repeats", argv[++i], 1, 100,
                                           &u64))
        return 2;
      options.repeats = static_cast<int>(u64);
    } else {
      std::fprintf(stderr,
                   "usage: bench_f8_wire [--quick] [--requests N] "
                   "[--repeats R]\n");
      return 2;
    }
  }
  const std::vector<himpact::Command> workload =
      himpact::MakeWorkload(options.requests);
  for (const std::size_t depth : {std::size_t{1}, std::size_t{16},
                                  std::size_t{128}}) {
    himpact::RunFraming(options, workload, depth);
    himpact::RunEndToEnd(options, workload, depth);
  }
  return 0;
}
