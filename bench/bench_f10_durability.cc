// F10 — WAL durability cost and recovery speed (src/io/wal.h,
// src/service/wal_apply.h, docs/CHECKPOINTS.md). Two families of
// BENCH{...} json lines:
//
//  * `f10_durability` — ingest throughput under each fsync policy. The
//    same add/paper stream runs with no WAL (the pre-WAL baseline),
//    then with `--wal-fsync never`, `group`, and `always`; each line
//    reports qps, per-op p50/p99, and the log's flush/fsync counts —
//    the table behind the policy guidance in docs/CHECKPOINTS.md
//    (group buys near-baseline qps; always pays one fsync per event).
//  * `f10_replay` — recovery speed: the `group` run's log is replayed
//    into a fresh service (the cold-start path `hstream_serve --wal-dir`
//    takes after a crash), reported as µs/event and events/s.
//
//   ./bench_f10_durability [--quick] [--events N]
//
// Timing is wall clock (steady_clock); per-op latencies are sorted for
// exact sample percentiles. Run in Release for meaningful numbers.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "io/wal.h"
#include "service/service.h"
#include "service/wal_apply.h"
#include "stream/types.h"

namespace {

using namespace himpact;

struct F10Options {
  std::uint64_t events = 200'000;
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string TempDir(const char* name) {
  std::string path = "/tmp/himpact_f10_";
  path += name;
  path += ".";
  path += std::to_string(static_cast<long long>(::getpid()));
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

/// Percentile of an already-sorted sample (exact order statistic).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

ServiceOptions BenchServiceOptions() {
  ServiceOptions options;
  options.num_stripes = 8;
  options.promote_threshold = 8;
  options.enable_heavy_hitters = false;
  return options;
}

/// Applies event `i` of the fixed mixed workload (7 adds : 1 paper) and
/// appends it to `wal` when one is attached — the exact sequence the
/// session's ingest hot path runs per mutation.
void ApplyEvent(HImpactService* service, WalWriter* wal, std::uint64_t i) {
  if (i % 8 != 0) {
    const AuthorId user = 1 + (i * 2654435761ull) % 50'000;
    const std::uint64_t value = 1 + i % 60;
    service->RecordResponseCount(user, value);
    if (wal != nullptr) (void)AppendWalAdd(wal, *service, user, value);
    return;
  }
  PaperTuple paper;
  paper.paper = 1 + i;
  paper.citations = 1 + i % 45;
  paper.authors.PushBack(1 + (i * 2654435761ull) % 50'000);
  paper.authors.PushBack(1 + (i * 40503ull) % 50'000);
  service->IngestPaper(paper);
  if (wal != nullptr) (void)AppendWalPaper(wal, *service, paper);
}

/// One policy sweep: ingest `events` mutations, WAL attached unless
/// `policy` is null. Returns the WAL directory (kept for the replay
/// measurement) or "" for the baseline.
std::string RunPolicy(const F10Options& options, const char* policy,
                      bool keep_dir) {
  auto service_or = HImpactService::Create(BenchServiceOptions());
  if (!service_or.ok()) std::exit(1);
  HImpactService& service = service_or.value();

  std::string dir;
  std::unique_ptr<WalWriter> wal;
  if (policy != nullptr) {
    dir = TempDir(policy);
    WalOptions wal_options;
    wal_options.dir = dir;
    if (!ParseWalFsyncText(policy, &wal_options.fsync)) std::exit(1);
    auto wal_or = WalWriter::Open(wal_options);
    if (!wal_or.ok()) std::exit(1);
    wal = std::move(wal_or).value();
  }

  // Per-op latencies on a 1-in-16 sample (cheap enough to keep the
  // measured loop honest at full size).
  std::vector<double> op_us;
  op_us.reserve(options.events / 16 + 1);
  const double start = NowSeconds();
  for (std::uint64_t i = 0; i < options.events; ++i) {
    if (i % 16 == 0) {
      const double op_start = NowSeconds();
      ApplyEvent(&service, wal.get(), i);
      op_us.push_back((NowSeconds() - op_start) * 1e6);
    } else {
      ApplyEvent(&service, wal.get(), i);
    }
  }
  if (wal != nullptr && !wal->Flush().ok()) std::exit(1);
  const double elapsed = NowSeconds() - start;
  std::sort(op_us.begin(), op_us.end());

  WalCounters counters;
  if (wal != nullptr) counters = wal->counters();
  wal.reset();  // close + final fsync before sizing the log

  std::uint64_t wal_bytes = 0;
  if (!dir.empty()) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      wal_bytes += static_cast<std::uint64_t>(
          std::filesystem::file_size(entry.path()));
    }
  }
  std::printf(
      "BENCH{\"bench\":\"f10_durability\",\"policy\":\"%s\",\"events\":%llu,"
      "\"qps\":%.0f,\"op_p50_us\":%.2f,\"op_p99_us\":%.2f,\"wal_mb\":%.1f,"
      "\"records\":%llu,\"flushes\":%llu,\"fsyncs\":%llu}\n",
      policy != nullptr ? policy : "none",
      static_cast<unsigned long long>(options.events),
      elapsed > 0.0 ? static_cast<double>(options.events) / elapsed : 0.0,
      Percentile(op_us, 0.50), Percentile(op_us, 0.99),
      static_cast<double>(wal_bytes) / (1 << 20),
      static_cast<unsigned long long>(counters.records),
      static_cast<unsigned long long>(counters.flushes),
      static_cast<unsigned long long>(counters.fsyncs));

  if (!keep_dir && !dir.empty()) {
    std::filesystem::remove_all(dir);
    dir.clear();
  }
  return dir;
}

/// Replays `dir`'s log into a fresh service — the crash-recovery path —
/// and reports per-event replay cost.
void RunReplay(const std::string& dir) {
  auto service_or = HImpactService::Create(BenchServiceOptions());
  if (!service_or.ok()) std::exit(1);
  HImpactService& service = service_or.value();

  WalReplayStats read_stats;
  WalApplyStats apply_stats;
  const double start = NowSeconds();
  if (!ReplayWal(dir, &service, &read_stats, &apply_stats).ok()) {
    std::exit(1);
  }
  const double replay_ms = (NowSeconds() - start) * 1e3;
  const std::uint64_t applied = apply_stats.applied_adds +
                                apply_stats.applied_papers +
                                apply_stats.partial_papers;
  std::printf(
      "BENCH{\"bench\":\"f10_replay\",\"records\":%llu,\"applied\":%llu,"
      "\"replay_ms\":%.1f,\"replay_us_per_event\":%.2f,"
      "\"replay_events_per_s\":%.0f}\n",
      static_cast<unsigned long long>(read_stats.records),
      static_cast<unsigned long long>(applied), replay_ms,
      applied > 0 ? replay_ms * 1e3 / static_cast<double>(applied) : 0.0,
      replay_ms > 0.0 ? static_cast<double>(applied) * 1e3 / replay_ms : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  F10Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.events = 10'000;
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      char* end = nullptr;
      options.events = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || options.events == 0) {
        std::fprintf(stderr, "--events wants a positive integer\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--events N]\n", argv[0]);
      return 2;
    }
  }

  (void)RunPolicy(options, nullptr, false);
  (void)RunPolicy(options, "never", false);
  const std::string group_dir = RunPolicy(options, "group", true);
  (void)RunPolicy(options, "always", false);
  RunReplay(group_dir);
  std::filesystem::remove_all(group_dir);
  return 0;
}
