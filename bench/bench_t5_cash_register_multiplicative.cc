// T5 — Cash-register model, multiplicative regime (Theorem 14, first
// bullet): given a lower bound beta <= h*, x = 3 eps^-2 (n/beta)
// ln(2/delta) samplers give (1 +/- eps) h*. Sweeps the true h* for a
// fixed beta and shows the relative error collapsing once h* >= beta.

#include <cstdio>
#include <vector>

#include "core/cash_register.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "random/rng.h"
#include "stream/expand.h"
#include "workload/citation_vectors.h"

int main() {
  using namespace himpact;

  const double eps = 0.2;
  const double delta = 0.1;
  const std::uint64_t n = 300;
  const double beta = 100.0;
  const int trials = 4;
  std::printf("T5: cash-register multiplicative regime, eps = %.2f, "
              "beta = %.0f, n = %llu, %d trials/row\n\n",
              eps, beta, static_cast<unsigned long long>(n), trials);

  Table table({"true h*", "beta holds?", "samplers x", "mean rel err",
               "max rel err", "within eps"});
  Rng rng(6);
  for (const std::uint64_t target : {50ull, 100ull, 150ull, 250ull}) {
    std::vector<double> errors;
    std::size_t samplers = 0;
    for (int t = 0; t < trials; ++t) {
      VectorSpec spec;
      spec.kind = VectorKind::kPlanted;
      spec.n = n;
      spec.target_h = target;
      const AggregateStream totals = MakeVector(spec, rng);
      // Batched events (the sketch is linear; equivalent to unit updates).
      const CashRegisterStream events =
          ExpandToBatchedCashRegister(totals, /*mean_batch=*/16.0, rng);

      CashRegisterOptions options;
      options.mode = CashRegisterMode::kMultiplicative;
      options.beta = beta;
      auto estimator =
          CashRegisterEstimator::Create(
              eps, delta, n, static_cast<std::uint64_t>(t) * 97 + 3, options)
              .value();
      samplers = estimator.num_samplers();
      for (const CitationEvent& event : events) {
        estimator.Update(event.paper, event.delta);
      }
      errors.push_back(
          RelativeError(estimator.Estimate(), static_cast<double>(target)));
    }
    const ErrorStats stats = Summarize(errors);
    table.NewRow()
        .Cell(target)
        .Cell(static_cast<double>(target) >= beta ? "yes" : "no")
        .Cell(static_cast<std::uint64_t>(samplers))
        .Cell(stats.mean, 4)
        .Cell(stats.max, 4)
        .Cell(FormatDouble(100.0 * FractionWithin(errors, eps + 1e-9), 0) +
              "%");
  }
  table.Print();
  std::printf(
      "\nexpected shape: rows with 'beta holds? = yes' achieve relative\n"
      "error <= eps (w.p. >= 1-delta); the h* < beta row may exceed it —\n"
      "the regime's precondition is violated there by design.\n");
  return 0;
}
