// T10 — Why count-based heavy hitters are the wrong tool for H-impact:
// a head-to-head between Algorithm 8 and SpaceSaving-on-total-citations
// on a stream mixing "deep" authors (many well-cited papers) with
// "one-hit wonders" (one mega-viral paper). This is the gap Section 4's
// algorithms close; no prior heavy-hitter machinery ranks by H-index.

#include <cstdio>

#include "eval/table.h"
#include "heavy/baseline.h"
#include "heavy/heavy_hitters.h"
#include "random/rng.h"
#include "workload/academic.h"

int main() {
  using namespace himpact;

  Rng rng(10);
  // Deep authors: h = 120 and h = 90. One-hit wonders: single papers with
  // 10^6 and 5*10^5 citations (h = 1 each, but dominant total counts).
  AcademicConfig config;
  config.num_authors = 800;
  config.max_papers = 6;
  config.citation_mu = 0.3;
  config.citation_sigma = 1.0;
  const std::vector<PlantedAuthor> deep = {
      {700001, 120, 120},
      {700002, 90, 90},
  };
  PaperStream papers = MakeAcademicCorpus(config, deep, rng);
  PaperId next = 5000000;
  for (const auto& [wonder, cites] :
       std::vector<std::pair<AuthorId, std::uint64_t>>{
           {800001, 1000000}, {800002, 500000}}) {
    PaperTuple paper;
    paper.paper = next++;
    paper.authors.PushBack(wonder);
    paper.citations = cites;
    papers.push_back(paper);
  }
  Shuffle(papers, rng);

  HeavyHitters::Options options;
  options.eps = 0.25;
  options.delta = 0.05;
  options.max_papers = 1u << 16;
  auto sketch = HeavyHitters::Create(options, 11).value();
  CountHeavyHitterBaseline count_baseline(64);
  for (const PaperTuple& paper : papers) {
    sketch.AddPaper(paper);
    count_baseline.AddPaper(paper);
  }

  std::printf("T10: H-impact heavy hitters vs count heavy hitters\n\n");
  Table h_table({"rank", "Alg 8 (by H-index)", "h estimate"});
  const auto reports = sketch.Report();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    h_table.NewRow()
        .Cell(static_cast<std::uint64_t>(i + 1))
        .Cell(reports[i].author)
        .Cell(reports[i].h_estimate, 1);
  }
  h_table.Print();

  std::printf("\n");
  Table c_table({"rank", "SpaceSaving (by count)", "total citations"});
  const auto top = count_baseline.Top(4);
  for (std::size_t i = 0; i < top.size(); ++i) {
    c_table.NewRow()
        .Cell(static_cast<std::uint64_t>(i + 1))
        .Cell(top[i].key)
        .Cell(top[i].count);
  }
  c_table.Print();

  std::printf("\n");
  Table e_table({"rank", "exact (by H-index)", "exact h"});
  const auto exact = ExactAuthorHIndices(papers);
  for (std::size_t i = 0; i < exact.size() && i < 4; ++i) {
    e_table.NewRow()
        .Cell(static_cast<std::uint64_t>(i + 1))
        .Cell(exact[i].author)
        .Cell(exact[i].h_index);
  }
  e_table.Print();

  std::printf(
      "\nexpected shape: Alg 8's ranking matches the exact H-index ranking\n"
      "(700001, 700002 on top); the count baseline crowns the one-hit\n"
      "wonders 800001/800002 — heavy in responses, H-index 1.\n");
  return 0;
}
