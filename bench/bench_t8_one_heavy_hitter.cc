// T8 — 1-Heavy-Hitter detector (Theorem 17): detection probability when
// a single author dominates the stream versus the rejection rate on
// noisy streams (no dominant author / two balanced heavy authors).

#include <cstdio>

#include "eval/table.h"
#include "heavy/one_heavy_hitter.h"
#include "random/rng.h"
#include "workload/academic.h"

namespace {

using namespace himpact;

PaperStream StarPlusNoise(std::uint64_t star_papers, std::uint64_t star_cites,
                          int noise_authors, std::uint64_t noise_cites,
                          Rng& rng) {
  PaperStream papers;
  PaperId next = 0;
  for (std::uint64_t p = 0; p < star_papers; ++p) {
    PaperTuple paper;
    paper.paper = next++;
    paper.authors.PushBack(1);
    paper.citations = star_cites;
    papers.push_back(paper);
  }
  for (int a = 0; a < noise_authors; ++a) {
    for (int p = 0; p < 3; ++p) {
      PaperTuple paper;
      paper.paper = next++;
      paper.authors.PushBack(static_cast<AuthorId>(100 + a));
      paper.citations = noise_cites;
      papers.push_back(paper);
    }
  }
  Shuffle(papers, rng);
  return papers;
}

}  // namespace

int main() {
  std::printf("T8: 1-heavy-hitter detection vs rejection (Theorem 17)\n\n");

  const double eps = 0.25;
  const double delta = 0.05;
  const int trials = 40;
  Rng rng(8);

  Table table({"scenario", "should detect", "detected", "correct author",
               "rate"});

  // Scenario A: one dominant star (h = 150) over weak noise.
  {
    int detected = 0, correct = 0;
    for (int t = 0; t < trials; ++t) {
      OneHeavyHitter::Options options;
      options.eps = eps;
      options.delta = delta;
      options.max_papers = 1u << 16;
      auto detector =
          OneHeavyHitter::Create(options, static_cast<std::uint64_t>(t) + 1)
              .value();
      for (const PaperTuple& paper :
           StarPlusNoise(150, 150, 20, 2, rng)) {
        detector.AddPaper(paper);
      }
      const auto result = detector.Detect();
      if (result.has_value()) {
        ++detected;
        if (result->author == 1) ++correct;
      }
    }
    table.NewRow()
        .Cell("single star, weak noise")
        .Cell("yes")
        .Cell(static_cast<std::uint64_t>(static_cast<unsigned>(detected)))
        .Cell(static_cast<std::uint64_t>(static_cast<unsigned>(correct)))
        .Cell(FormatDouble(100.0 * detected / trials, 0) + "%");
  }

  // Scenario B: two balanced heavy authors — must be rejected.
  {
    int detected = 0;
    for (int t = 0; t < trials; ++t) {
      OneHeavyHitter::Options options;
      options.eps = eps;
      options.delta = delta;
      options.max_papers = 1u << 16;
      auto detector =
          OneHeavyHitter::Create(options, static_cast<std::uint64_t>(t) + 500)
              .value();
      PaperStream papers;
      PaperId next = 0;
      for (const AuthorId author : {AuthorId{1}, AuthorId{2}}) {
        for (int p = 0; p < 100; ++p) {
          PaperTuple paper;
          paper.paper = next++;
          paper.authors.PushBack(author);
          paper.citations = 100;
          papers.push_back(paper);
        }
      }
      Shuffle(papers, rng);
      for (const PaperTuple& paper : papers) detector.AddPaper(paper);
      if (detector.Detect().has_value()) ++detected;
    }
    table.NewRow()
        .Cell("two balanced heavy authors")
        .Cell("no")
        .Cell(static_cast<std::uint64_t>(static_cast<unsigned>(detected)))
        .Cell("-")
        .Cell(FormatDouble(100.0 * detected / trials, 0) + "%");
  }

  // Scenario C: fully noisy stream (100 one-paper authors).
  {
    int detected = 0;
    for (int t = 0; t < trials; ++t) {
      OneHeavyHitter::Options options;
      options.eps = eps;
      options.delta = delta;
      options.max_papers = 1u << 16;
      auto detector =
          OneHeavyHitter::Create(options, static_cast<std::uint64_t>(t) + 900)
              .value();
      for (AuthorId a = 0; a < 100; ++a) {
        PaperTuple paper;
        paper.paper = a;
        paper.authors.PushBack(a);
        paper.citations = 40;
        detector.AddPaper(paper);
      }
      if (detector.Detect().has_value()) ++detected;
    }
    table.NewRow()
        .Cell("100 one-paper authors")
        .Cell("no")
        .Cell(static_cast<std::uint64_t>(static_cast<unsigned>(detected)))
        .Cell("-")
        .Cell(FormatDouble(100.0 * detected / trials, 0) + "%");
  }

  table.Print();
  std::printf(
      "\nexpected shape: the star scenario detects (and names) author 1 at\n"
      "~100%%; both noisy scenarios stay at ~0%% detections — the two cases\n"
      "Theorem 17 distinguishes.\n");
  return 0;
}
