// T9 — Heavy hitters of H-indices (Theorem 18): precision/recall of
// Algorithm 8 against the exact eps-heavy set, and the (1 +/- eps)
// quality of the reported H-index estimates, as the number of planted
// heavy authors grows toward the 1/eps limit.

#include <cstdio>
#include <vector>

#include "eval/metrics.h"
#include "eval/table.h"
#include "heavy/baseline.h"
#include "heavy/heavy_hitters.h"
#include "random/rng.h"
#include "workload/academic.h"

int main() {
  using namespace himpact;

  const double eps = 0.2;
  const double delta = 0.05;
  const int trials = 10;
  std::printf("T9: Algorithm 8 precision/recall vs planted heavy authors, "
              "eps = %.2f, %d trials/row\n\n",
              eps, trials);

  Table table({"planted stars", "mean precision", "mean recall",
               "h-est rel err (mean)", "grid cells"});
  Rng rng(9);
  for (const int num_stars : {1, 2, 3, 4}) {
    double precision_sum = 0.0, recall_sum = 0.0;
    std::vector<double> h_errors;
    std::size_t cells = 0;
    for (int t = 0; t < trials; ++t) {
      // A small background keeps the stars genuinely eps-heavy: with
      // h(star) = 100 each and ~25 background authors of h <= 5, the
      // total H-impact stays below 100/eps for up to 4 stars.
      AcademicConfig config;
      config.num_authors = 25;
      config.max_papers = 8;
      config.citation_mu = 0.4;
      config.citation_sigma = 1.0;
      std::vector<PlantedAuthor> stars;
      for (int s = 0; s < num_stars; ++s) {
        stars.push_back(
            PlantedAuthor{900000 + static_cast<AuthorId>(s), 100, 100});
      }
      const PaperStream papers = MakeAcademicCorpus(config, stars, rng);

      HeavyHitters::Options options;
      options.eps = eps;
      options.delta = delta;
      options.max_papers = 1u << 16;
      auto sketch =
          HeavyHitters::Create(options, static_cast<std::uint64_t>(t) * 37 + 5)
              .value();
      for (const PaperTuple& paper : papers) sketch.AddPaper(paper);
      cells = sketch.num_rows() * sketch.num_buckets();

      // Ground truth: the exact eps-heavy set.
      std::vector<std::uint64_t> truth_ids;
      std::vector<AuthorHIndex> truth = ExactHeavyHitters(papers, eps);
      for (const AuthorHIndex& entry : truth) {
        truth_ids.push_back(entry.author);
      }
      std::vector<std::uint64_t> reported_ids;
      for (const HeavyHitterReport& report : sketch.ReportHeavy()) {
        reported_ids.push_back(report.author);
        for (const AuthorHIndex& entry : truth) {
          if (entry.author == report.author) {
            h_errors.push_back(RelativeError(
                report.h_estimate, static_cast<double>(entry.h_index)));
          }
        }
      }
      const SetQuality quality = CompareSets(reported_ids, truth_ids);
      precision_sum += quality.precision;
      recall_sum += quality.recall;
    }
    const ErrorStats h_stats = Summarize(h_errors);
    table.NewRow()
        .Cell(num_stars)
        .Cell(precision_sum / trials, 3)
        .Cell(recall_sum / trials, 3)
        .Cell(h_stats.mean, 4)
        .Cell(static_cast<std::uint64_t>(cells));
  }
  table.Print();
  std::printf(
      "\nexpected shape: recall ~1.0 (every planted star found, w.p.\n"
      ">= 1-delta per star); precision ~1.0 (background authors are far\n"
      "from eps-heavy); reported h within ~eps of the planted value.\n");
  return 0;
}
